package topo

import "math/bits"

// Partition assigns every cluster of a topology to one of a fixed
// number of shards, for parallel simulation. Clusters are the natural
// grain: intra-cluster traffic (bus arbitration, up-link hops, local
// delivery) stays on one shard's event queue, and only cube-link
// traffic crosses shards — which is exactly the traffic whose minimum
// latency (the fixed per-hop cost plus wire time) funds the
// conservative lookahead.
type Partition struct {
	shards    int
	byCluster []int
}

// PartitionClusters splits t's clusters over the requested number of
// shards in contiguous, balanced runs: cluster c goes to shard
// c*shards/nClusters. Contiguity keeps hypercube neighbors (which
// differ in one address bit) on the same shard more often than a
// round-robin split would, and the assignment is a pure function of
// (topology, shards), so a given configuration always partitions the
// same way. shards is clamped to [1, clusters].
func PartitionClusters(t *Topology, shards int) *Partition {
	n := t.Clusters()
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	p := &Partition{shards: shards, byCluster: make([]int, n)}
	for c := 0; c < n; c++ {
		p.byCluster[c] = c * shards / n
	}
	return p
}

// Shards returns the shard count after clamping.
func (p *Partition) Shards() int { return p.shards }

// OfCluster returns the shard that owns cluster c.
func (p *Partition) OfCluster(c ClusterID) int { return p.byCluster[c] }

// OfEndpoint returns the shard that owns e's cluster.
func (p *Partition) OfEndpoint(t *Topology, e EndpointID) int {
	return p.byCluster[t.AttachmentOf(e).Cluster]
}

// RouteHops returns the minimum cube-route distance between every
// shard pair: hops[s][d] is the fewest cluster-to-cluster links any
// message can traverse between a cluster of s and a cluster of d
// (0 on the diagonal). Cluster distance is the Hamming distance of
// the cluster addresses — a lower bound on every real route, including
// the detours an incomplete cube forces — so hops[s][d] cube hops is a
// floor on the latency of any signal between the two shards. That
// floor funds the conservative lookahead matrix: shard pairs that
// share a cube link get the single-hop minimum, while pairs whose
// clusters are k>1 links apart can promise k hops of slack, because
// every fabric signal between them must relay through k-1 intermediate
// boundary crossings (each itself at least one hop).
func (p *Partition) RouteHops(t *Topology) [][]int {
	n := p.shards
	hops := make([][]int, n)
	for s := range hops {
		hops[s] = make([]int, n)
	}
	for a := range p.byCluster {
		for b := range p.byCluster {
			sa, sb := p.byCluster[a], p.byCluster[b]
			if sa == sb {
				continue
			}
			h := bits.OnesCount(uint(a) ^ uint(b))
			if hops[sa][sb] == 0 || h < hops[sa][sb] {
				hops[sa][sb] = h
			}
		}
	}
	return hops
}
