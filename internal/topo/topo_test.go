package topo

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSingleCluster(t *testing.T) {
	tp, err := SingleCluster(12)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Clusters() != 1 || tp.Endpoints() != 12 || tp.Dimension() != 0 {
		t.Fatalf("bad topology: %v", tp)
	}
	for e := 0; e < 12; e++ {
		a := tp.AttachmentOf(EndpointID(e))
		if a.Cluster != 0 || a.Port != e {
			t.Errorf("endpoint %d attachment = %+v", e, a)
		}
	}
	if got := tp.Hops(0, 11); got != 0 {
		t.Errorf("hops within cluster = %d", got)
	}
}

func TestSingleClusterBounds(t *testing.T) {
	if _, err := SingleCluster(0); err == nil {
		t.Error("0 endpoints should fail")
	}
	if _, err := SingleCluster(13); err == nil {
		t.Error("13 endpoints should fail")
	}
}

func TestPaperConstruction1024Nodes(t *testing.T) {
	// Paper §1: "A hypercube-based system with 1024 nodes can be
	// built with 256 clusters by using 8 of the 12 ports on each
	// cluster for connections to other clusters and the other four
	// for connections to processing nodes."
	tp, err := IncompleteHypercube(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Endpoints() != 1024 {
		t.Fatalf("endpoints = %d, want 1024", tp.Endpoints())
	}
	if tp.Dimension() != 8 {
		t.Fatalf("dimension = %d, want 8", tp.Dimension())
	}
	if tp.Diameter() != 8 {
		t.Fatalf("diameter = %d, want 8", tp.Diameter())
	}
	for c := 0; c < 256; c++ {
		if used := tp.PortsUsed(ClusterID(c)); used != 12 {
			t.Fatalf("cluster %d uses %d ports, want 12", c, used)
		}
	}
}

func TestPortOverflowRejected(t *testing.T) {
	// dim(256)=8, so 5 endpoints/cluster needs 13 ports.
	if _, err := IncompleteHypercube(256, 5); err == nil {
		t.Fatal("expected port overflow error")
	}
}

func TestDimFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 256: 8, 257: 9}
	for n, want := range cases {
		if got := dimFor(n); got != want {
			t.Errorf("dimFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNeighborsIncomplete(t *testing.T) {
	tp, err := IncompleteHypercube(5, 1) // clusters 0..4, dim 3
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 4 (100) has cube neighbors 101,110 missing; only 000.
	n := tp.Neighbors(4)
	if len(n) != 1 || n[0] != 0 {
		t.Fatalf("neighbors(4) = %v, want [0]", n)
	}
	// Cluster 0 has neighbors 1, 2, 4.
	n = tp.Neighbors(0)
	if len(n) != 3 || n[0] != 1 || n[1] != 2 || n[2] != 4 {
		t.Fatalf("neighbors(0) = %v", n)
	}
}

func TestHasLink(t *testing.T) {
	tp, _ := IncompleteHypercube(6, 1)
	if !tp.HasLink(0, 4) || !tp.HasLink(4, 5) || !tp.HasLink(1, 3) {
		t.Error("expected cube links missing")
	}
	if tp.HasLink(1, 2) || tp.HasLink(3, 3) || tp.HasLink(0, 7) || tp.HasLink(-1, 0) {
		t.Error("unexpected link reported")
	}
}

func TestClusterRouteUpAndDown(t *testing.T) {
	tp, _ := IncompleteHypercube(5, 1) // 0..4, dim 3
	// 1 (001) -> 4 (100): clear bit0, set bit2: 001 -> 000 -> 100.
	r := tp.ClusterRoute(1, 4)
	want := []ClusterID{1, 0, 4}
	if len(r) != len(want) {
		t.Fatalf("route = %v, want %v", r, want)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("route = %v, want %v", r, want)
		}
	}
	// 4 -> 3: clear bit2, then set bits 0,1: 100 -> 000 -> 001 -> 011.
	r = tp.ClusterRoute(4, 3)
	want = []ClusterID{4, 0, 1, 3}
	if len(r) != len(want) {
		t.Fatalf("route = %v, want %v", r, want)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("route = %v, want %v", r, want)
		}
	}
}

func TestRouteEndpointLevel(t *testing.T) {
	tp, _ := IncompleteHypercube(4, 2)
	// endpoints 0,1 on cluster 0; 6,7 on cluster 3.
	r := tp.Route(0, 7)
	if r[0] != 0 || r[len(r)-1] != 3 {
		t.Fatalf("route = %v", r)
	}
	if tp.Hops(0, 7) != 2 {
		t.Fatalf("hops = %d, want 2", tp.Hops(0, 7))
	}
	if tp.Hops(0, 1) != 0 {
		t.Fatalf("same-cluster hops = %d", tp.Hops(0, 1))
	}
}

// Property: in any incomplete hypercube, every route (a) starts and
// ends correctly, (b) uses only existing clusters, (c) only traverses
// real cube links, and (d) has length equal to Hamming distance + 1.
func TestRouteValidityProperty(t *testing.T) {
	f := func(nRaw uint8, aRaw, bRaw uint16) bool {
		n := int(nRaw%200) + 1
		tp, err := IncompleteHypercube(n, 1)
		if err != nil {
			return false
		}
		a := ClusterID(int(aRaw) % n)
		b := ClusterID(int(bRaw) % n)
		r := tp.ClusterRoute(a, b)
		if r[0] != a || r[len(r)-1] != b {
			return false
		}
		if len(r) != bits.OnesCount(uint(a)^uint(b))+1 {
			return false
		}
		for i, c := range r {
			if int(c) < 0 || int(c) >= n {
				return false
			}
			if i > 0 && !tp.HasLink(r[i-1], c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the diameter of an incomplete hypercube never exceeds its
// dimension.
func TestDiameterBoundProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		tp, err := IncompleteHypercube(n, 1)
		if err != nil {
			return false
		}
		return tp.Diameter() <= tp.Dimension()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummaries(t *testing.T) {
	tp, _ := SingleCluster(3)
	if tp.String() != "HPC: 1 cluster, 3 endpoints" {
		t.Errorf("got %q", tp.String())
	}
	tp, _ = IncompleteHypercube(256, 4)
	want := "HPC: 256 clusters (dim-8 incomplete hypercube), 1024 endpoints, diameter 8"
	if tp.String() != want {
		t.Errorf("got %q, want %q", tp.String(), want)
	}
}

func TestAvgHopsAndCubeLinks(t *testing.T) {
	tp, _ := IncompleteHypercube(4, 1) // complete 2-cube
	// Distances: 1,1,2 per vertex pattern; avg = (8*1+4*2)/12 = 4/3.
	if got := tp.AvgHops(); got < 1.32 || got > 1.35 {
		t.Fatalf("avg hops = %f", got)
	}
	if got := tp.CubeLinks(); got != 4 {
		t.Fatalf("cube links = %d, want 4", got)
	}
	single, _ := SingleCluster(3)
	if single.AvgHops() != 0 || single.CubeLinks() != 0 {
		t.Fatal("single cluster should have no cube structure")
	}
	big, _ := IncompleteHypercube(256, 4)
	// Complete 8-cube: average Hamming distance = 4 * 256/255.
	want := 4.0 * 256 / 255
	if got := big.AvgHops(); got < want-0.01 || got > want+0.01 {
		t.Fatalf("256-cluster avg hops = %f, want %f", got, want)
	}
	if got := big.CubeLinks(); got != 256*8/2 {
		t.Fatalf("256-cluster links = %d, want 1024", got)
	}
}

func TestRouteAvoidingMatchesShortestWhenClean(t *testing.T) {
	tp, _ := IncompleteHypercube(8, 1)
	up := func(a, b ClusterID) bool { return false }
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			r := tp.RouteAvoiding(ClusterID(a), ClusterID(b), up)
			if r == nil {
				t.Fatalf("no route %d->%d on a healthy cube", a, b)
			}
			want := bitsOn(uint(a) ^ uint(b))
			if len(r)-1 != want {
				t.Fatalf("route %d->%d has %d hops, want %d", a, b, len(r)-1, want)
			}
			if r[0] != ClusterID(a) || r[len(r)-1] != ClusterID(b) {
				t.Fatalf("route endpoints wrong: %v", r)
			}
		}
	}
}

func bitsOn(x uint) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestRouteAvoidingDetours(t *testing.T) {
	tp, _ := IncompleteHypercube(4, 1) // complete 2-cube: 0-1-3, 0-2-3
	bad := map[[2]ClusterID]bool{{0, 1}: true, {1, 0}: true}
	down := func(a, b ClusterID) bool { return bad[[2]ClusterID{a, b}] }
	r := tp.RouteAvoiding(0, 1, down)
	if len(r) != 4 { // 0 -> 2 -> 3 -> 1
		t.Fatalf("detour route = %v", r)
	}
	for i := 1; i < len(r); i++ {
		if down(r[i-1], r[i]) {
			t.Fatalf("route %v uses a down link", r)
		}
		if !tp.HasLink(r[i-1], r[i]) {
			t.Fatalf("route %v uses a non-link", r)
		}
	}
}

func TestRouteAvoidingPartition(t *testing.T) {
	tp, _ := IncompleteHypercube(2, 1) // one link only
	bad := func(a, b ClusterID) bool { return true }
	if r := tp.RouteAvoiding(0, 1, bad); r != nil {
		t.Fatalf("partitioned pair yielded route %v", r)
	}
	if r := tp.RouteAvoiding(1, 1, bad); len(r) != 1 || r[0] != 1 {
		t.Fatalf("self route = %v", r)
	}
}

func TestPartitionClusters(t *testing.T) {
	topo, err := IncompleteHypercube(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := PartitionClusters(topo, 4)
	if p.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", p.Shards())
	}
	prev := 0
	counts := make([]int, p.Shards())
	for c := 0; c < topo.Clusters(); c++ {
		sh := p.OfCluster(ClusterID(c))
		if sh < prev {
			t.Fatalf("cluster %d on shard %d after shard %d: not contiguous", c, sh, prev)
		}
		prev = sh
		counts[sh]++
	}
	for sh, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no clusters", sh)
		}
	}
	for e := 0; e < topo.Endpoints(); e++ {
		id := EndpointID(e)
		want := p.OfCluster(topo.AttachmentOf(id).Cluster)
		if got := p.OfEndpoint(topo, id); got != want {
			t.Fatalf("endpoint %d on shard %d, cluster says %d", e, got, want)
		}
	}
}

func TestPartitionClustersClamps(t *testing.T) {
	topo, err := IncompleteHypercube(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := PartitionClusters(topo, 0).Shards(); got != 1 {
		t.Fatalf("shards=0 clamped to %d, want 1", got)
	}
	if got := PartitionClusters(topo, 99).Shards(); got != 3 {
		t.Fatalf("shards=99 clamped to %d, want 3", got)
	}
	p := PartitionClusters(topo, 1)
	for c := 0; c < topo.Clusters(); c++ {
		if p.OfCluster(ClusterID(c)) != 0 {
			t.Fatalf("single shard: cluster %d not on shard 0", c)
		}
	}
}

// TestPartitionPropertiesQuick drives PartitionClusters and RouteHops
// over random pool shapes and shard requests: the split must be
// contiguous, cover every cluster, balance shard sizes within one
// cluster, honor the [1, clusters] clamp, and yield a lookahead
// distance matrix that is zero on the diagonal, symmetric and
// positive off it, and exactly 1 for every shard pair sharing a cube
// link.
func TestPartitionPropertiesQuick(t *testing.T) {
	f := func(rawClusters, rawShards uint8) bool {
		clusters := 1 + int(rawClusters)%24
		shards := int(rawShards) % 32 // includes 0 and > clusters
		tp, err := IncompleteHypercube(clusters, 4)
		if err != nil {
			t.Fatalf("clusters=%d: %v", clusters, err)
		}
		p := PartitionClusters(tp, shards)
		n := p.Shards()
		want := shards
		if want < 1 {
			want = 1
		}
		if want > clusters {
			want = clusters
		}
		if n != want {
			t.Fatalf("clusters=%d shards=%d: got %d shards, want %d", clusters, shards, n, want)
		}
		counts := make([]int, n)
		prev := 0
		for c := 0; c < clusters; c++ {
			sh := p.OfCluster(ClusterID(c))
			if sh < prev || sh > prev+1 {
				t.Fatalf("clusters=%d shards=%d: cluster %d on shard %d after shard %d (not contiguous)",
					clusters, shards, c, sh, prev)
			}
			prev = sh
			counts[sh]++
		}
		lo, hi := counts[0], counts[0]
		for sh, k := range counts {
			if k == 0 {
				t.Fatalf("clusters=%d shards=%d: shard %d owns no clusters", clusters, shards, sh)
			}
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		if hi-lo > 1 {
			t.Fatalf("clusters=%d shards=%d: shard sizes %v differ by more than one cluster",
				clusters, shards, counts)
		}
		hops := p.RouteHops(tp)
		for s := 0; s < n; s++ {
			if hops[s][s] != 0 {
				t.Fatalf("clusters=%d shards=%d: hops[%d][%d] = %d, want 0", clusters, shards, s, s, hops[s][s])
			}
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				if hops[s][d] < 1 || hops[s][d] != hops[d][s] {
					t.Fatalf("clusters=%d shards=%d: hops[%d][%d]=%d hops[%d][%d]=%d",
						clusters, shards, s, d, hops[s][d], d, s, hops[d][s])
				}
			}
		}
		for c := 0; c < clusters; c++ {
			sc := p.OfCluster(ClusterID(c))
			for _, nb := range tp.Neighbors(ClusterID(c)) {
				if sn := p.OfCluster(nb); sn != sc && hops[sc][sn] != 1 {
					t.Fatalf("clusters=%d shards=%d: boundary pair (%d,%d) has distance %d, want 1",
						clusters, shards, sc, sn, hops[sc][sn])
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
