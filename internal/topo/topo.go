// Package topo builds and routes HPC interconnect topologies.
//
// The HPC consists of twelve-port self-routing star clusters. A system
// of up to twelve endpoints uses a single cluster; larger systems
// dedicate some ports of each cluster to inter-cluster links. Following
// the paper (and Katseff, "Incomplete Hypercubes", IEEE ToC 1988) the
// clusters are connected as an incomplete hypercube, so any number of
// clusters — not just powers of two — forms a connected, low-diameter
// network. The paper's flagship construction is 1024 nodes from 256
// clusters, with 8 ports per cluster used for cube links and 4 for
// processing nodes.
package topo

import (
	"fmt"
	"math/bits"
)

// PortsPerCluster is the port count of an HPC cluster.
const PortsPerCluster = 12

// EndpointID identifies an endpoint (processing node or workstation
// attachment) in a topology. IDs are dense, starting at zero.
type EndpointID int

// ClusterID identifies a cluster. IDs are dense, starting at zero.
type ClusterID int

// Attachment records where an endpoint plugs into the interconnect.
type Attachment struct {
	Cluster ClusterID
	Port    int // port index on the cluster, 0-based
}

// Topology is an immutable description of an HPC interconnect: a set
// of clusters joined as an incomplete hypercube, with endpoints
// attached to the remaining ports.
type Topology struct {
	nClusters int
	dim       int // hypercube dimension (0 for a single cluster)
	attach    []Attachment
	// perCluster[c] lists the endpoints attached to cluster c.
	perCluster [][]EndpointID
}

// SingleCluster returns a topology of one cluster with n endpoints
// (1 ≤ n ≤ 12).
func SingleCluster(n int) (*Topology, error) {
	if n < 1 || n > PortsPerCluster {
		return nil, fmt.Errorf("topo: single cluster supports 1..%d endpoints, got %d", PortsPerCluster, n)
	}
	t := &Topology{nClusters: 1, dim: 0, perCluster: make([][]EndpointID, 1)}
	for i := 0; i < n; i++ {
		t.attach = append(t.attach, Attachment{Cluster: 0, Port: i})
		t.perCluster[0] = append(t.perCluster[0], EndpointID(i))
	}
	return t, nil
}

// IncompleteHypercube returns a topology of nClusters clusters joined
// as an incomplete hypercube, each with perCluster endpoints attached.
// The hypercube dimension is ceil(log2(nClusters)); that many ports of
// every cluster are reserved for cube links, so
// dim + perCluster must not exceed 12.
func IncompleteHypercube(nClusters, perCluster int) (*Topology, error) {
	if nClusters < 1 {
		return nil, fmt.Errorf("topo: need at least one cluster, got %d", nClusters)
	}
	if perCluster < 0 {
		return nil, fmt.Errorf("topo: negative endpoints per cluster")
	}
	dim := dimFor(nClusters)
	if dim+perCluster > PortsPerCluster {
		return nil, fmt.Errorf("topo: %d cube ports + %d endpoint ports exceeds %d ports per cluster",
			dim, perCluster, PortsPerCluster)
	}
	t := &Topology{
		nClusters:  nClusters,
		dim:        dim,
		perCluster: make([][]EndpointID, nClusters),
	}
	id := EndpointID(0)
	for c := 0; c < nClusters; c++ {
		for p := 0; p < perCluster; p++ {
			// Endpoint ports sit above the cube-link ports.
			t.attach = append(t.attach, Attachment{Cluster: ClusterID(c), Port: dim + p})
			t.perCluster[c] = append(t.perCluster[c], id)
			id++
		}
	}
	return t, nil
}

// dimFor returns ceil(log2(n)) with dimFor(1) == 0.
func dimFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Clusters returns the number of clusters.
func (t *Topology) Clusters() int { return t.nClusters }

// Dimension returns the hypercube dimension (ports per cluster used
// for inter-cluster links).
func (t *Topology) Dimension() int { return t.dim }

// Endpoints returns the number of attached endpoints.
func (t *Topology) Endpoints() int { return len(t.attach) }

// AttachmentOf returns where endpoint e plugs in.
func (t *Topology) AttachmentOf(e EndpointID) Attachment { return t.attach[e] }

// EndpointsOn returns the endpoints attached to cluster c.
func (t *Topology) EndpointsOn(c ClusterID) []EndpointID { return t.perCluster[c] }

// HasLink reports whether clusters a and b are joined by a cube link:
// their ids differ in exactly one bit and both exist.
func (t *Topology) HasLink(a, b ClusterID) bool {
	if a == b || int(a) >= t.nClusters || int(b) >= t.nClusters || a < 0 || b < 0 {
		return false
	}
	x := uint(a) ^ uint(b)
	return x&(x-1) == 0
}

// Neighbors returns the clusters directly linked to c, in dimension
// order.
func (t *Topology) Neighbors(c ClusterID) []ClusterID {
	var out []ClusterID
	for d := 0; d < t.dim; d++ {
		n := ClusterID(uint(c) ^ (1 << d))
		if int(n) < t.nClusters {
			out = append(out, n)
		}
	}
	return out
}

// ClusterRoute returns the sequence of clusters a message visits from
// cluster a to cluster b, inclusive of both. Routing is the
// incomplete-hypercube rule in two phases: first clear (descending
// dimension order) every bit where a has 1 and b has 0, moving through
// clusters numbered below a; then set (ascending order) every bit
// where b has 1, moving through subsets of b's address. Every
// intermediate therefore exists in the incomplete cube, the path is a
// shortest path, and — because every message acquires link classes in
// the same global order (clear-high … clear-low, set-low … set-high) —
// the store-and-forward buffer dependency graph is acyclic, so the
// fabric cannot deadlock.
func (t *Topology) ClusterRoute(a, b ClusterID) []ClusterID {
	route := []ClusterID{a}
	if a == b {
		return route
	}
	cur := uint(a)
	dst := uint(b)
	for d := t.dim - 1; d >= 0; d-- {
		bit := uint(1) << d
		if cur&bit != 0 && dst&bit == 0 {
			cur &^= bit
			route = append(route, ClusterID(cur))
		}
	}
	for d := 0; d < t.dim; d++ {
		bit := uint(1) << d
		if cur&bit == 0 && dst&bit != 0 {
			cur |= bit
			route = append(route, ClusterID(cur))
		}
	}
	return route
}

// RouteAvoiding returns a shortest cluster route from a to b that
// traverses no cube link for which down reports true, or nil when the
// failures partition a from b. Unlike ClusterRoute's fixed dimension-
// order rule, this is a breadth-first search over the surviving links
// — the route a self-routing cluster would discover after the failed
// port is masked out. Neighbors are explored in dimension order, so
// the result is deterministic for a given failure set. down is
// consulted with the directed pair (from, to) of every candidate hop.
func (t *Topology) RouteAvoiding(a, b ClusterID, down func(from, to ClusterID) bool) []ClusterID {
	if a == b {
		return []ClusterID{a}
	}
	prev := make([]ClusterID, t.nClusters)
	seen := make([]bool, t.nClusters)
	seen[a] = true
	queue := []ClusterID{a}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(c) {
			if seen[nb] || down(c, nb) {
				continue
			}
			seen[nb] = true
			prev[nb] = c
			if nb == b {
				var rev []ClusterID
				for x := b; ; x = prev[x] {
					rev = append(rev, x)
					if x == a {
						break
					}
				}
				route := make([]ClusterID, len(rev))
				for i, x := range rev {
					route[len(rev)-1-i] = x
				}
				return route
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// Nearest returns the candidate endpoint closest (fewest cluster hops)
// to from, breaking ties by lowest endpoint id so the choice is
// deterministic. Returns -1 when candidates is empty. The supervisor
// uses this to place a reincarnated subprocess on the spare node whose
// traffic to the surviving peers disturbs the fabric least.
func (t *Topology) Nearest(from EndpointID, candidates []EndpointID) EndpointID {
	best := EndpointID(-1)
	bestHops := 0
	for _, c := range candidates {
		h := t.Hops(from, c)
		if best < 0 || h < bestHops || (h == bestHops && c < best) {
			best, bestHops = c, h
		}
	}
	return best
}

// Route returns the clusters a message visits from endpoint src to
// endpoint dst (at least one cluster; src and dst may share it).
func (t *Topology) Route(src, dst EndpointID) []ClusterID {
	return t.ClusterRoute(t.attach[src].Cluster, t.attach[dst].Cluster)
}

// Hops returns the number of cluster-to-cluster links on the route
// between two endpoints (0 when they share a cluster).
func (t *Topology) Hops(src, dst EndpointID) int {
	a, b := t.attach[src].Cluster, t.attach[dst].Cluster
	return bits.OnesCount(uint(a) ^ uint(b))
}

// Diameter returns the maximum cluster-to-cluster distance over all
// cluster pairs present in the (possibly incomplete) cube.
func (t *Topology) Diameter() int {
	max := 0
	for a := 0; a < t.nClusters; a++ {
		for b := a + 1; b < t.nClusters; b++ {
			if d := bits.OnesCount(uint(a) ^ uint(b)); d > max {
				max = d
			}
		}
	}
	return max
}

// PortsUsed returns how many ports cluster c consumes: cube links that
// actually exist plus attached endpoints.
func (t *Topology) PortsUsed(c ClusterID) int {
	return len(t.Neighbors(c)) + len(t.perCluster[c])
}

// String summarizes the topology.
func (t *Topology) String() string {
	if t.nClusters == 1 {
		return fmt.Sprintf("HPC: 1 cluster, %d endpoints", len(t.attach))
	}
	return fmt.Sprintf("HPC: %d clusters (dim-%d incomplete hypercube), %d endpoints, diameter %d",
		t.nClusters, t.dim, len(t.attach), t.Diameter())
}

// AvgHops returns the mean cluster-to-cluster distance over all
// ordered cluster pairs (0 for a single cluster).
func (t *Topology) AvgHops() float64 {
	if t.nClusters < 2 {
		return 0
	}
	total, pairs := 0, 0
	for a := 0; a < t.nClusters; a++ {
		for b := 0; b < t.nClusters; b++ {
			if a == b {
				continue
			}
			total += bits.OnesCount(uint(a) ^ uint(b))
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}

// CubeLinks returns the number of bidirectional inter-cluster links
// present in the (possibly incomplete) hypercube.
func (t *Topology) CubeLinks() int {
	n := 0
	for c := 0; c < t.nClusters; c++ {
		for _, nb := range t.Neighbors(ClusterID(c)) {
			if nb > ClusterID(c) {
				n++
			}
		}
	}
	return n
}
