package m68k

import (
	"testing"
	"testing/quick"

	"hpcvorx/internal/sim"
)

func TestDefaultCalibrationAnchors(t *testing.T) {
	c := DefaultCosts()
	// Paper §5: 80 µs context switch with fixed and floating point
	// registers.
	if c.ContextSwitch != sim.Microseconds(80) {
		t.Errorf("context switch = %v", c.ContextSwitch)
	}
	// 160 Mbit/s port = 0.05 µs/byte.
	if c.WirePerByte != sim.Microseconds(0.05) {
		t.Errorf("wire = %v", c.WirePerByte)
	}
	// Hardware message limit (paper §2: 1060 bytes).
	if c.MaxMessage != 1060 {
		t.Errorf("max message = %d", c.MaxMessage)
	}
	// S/NET FIFO (paper §2: 2048 bytes).
	if c.SNETFifoCap != 2048 {
		t.Errorf("fifo = %d", c.SNETFifoCap)
	}
	// SunOS fd limit (paper §3.3: 32).
	if c.HostMaxFDs != 32 {
		t.Errorf("fds = %d", c.HostMaxFDs)
	}
	// Channel slope: two kernel copies + two wire hops must total the
	// 0.68 µs/byte slope of Table 2.
	slope := 2*c.KernelCopy + 2*c.WirePerByte
	if slope != sim.Microseconds(0.68) {
		t.Errorf("channel per-byte slope = %v, want 0.68µs", slope)
	}
}

func TestWireTimeExact(t *testing.T) {
	c := DefaultCosts()
	// 1024 bytes at 160 Mbit/s: 51.2 µs.
	if got := c.WireTime(1024); got != sim.Microseconds(51.2) {
		t.Errorf("wire(1024) = %v", got)
	}
}

// Property: all the *Time helpers are linear and non-negative.
func TestCostHelpersLinearProperty(t *testing.T) {
	c := DefaultCosts()
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw), int(bRaw)
		return c.CopyTime(a)+c.CopyTime(b) == c.CopyTime(a+b) &&
			c.KernelCopyTime(a)+c.KernelCopyTime(b) == c.KernelCopyTime(a+b) &&
			c.WireTime(a)+c.WireTime(b) == c.WireTime(a+b) &&
			c.HostCopyTime(a)+c.HostCopyTime(b) == c.HostCopyTime(a+b) &&
			c.CopyTime(a) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoroutineCheaperThanContextSwitch(t *testing.T) {
	c := DefaultCosts()
	if c.CoroutineSwitch*4 > c.ContextSwitch {
		t.Fatalf("coroutine switch %v not clearly below context switch %v",
			c.CoroutineSwitch, c.ContextSwitch)
	}
}

func TestHostFasterThanNodeCopies(t *testing.T) {
	c := DefaultCosts()
	if c.HostCopy >= c.Copy {
		t.Fatalf("host copy %v should be below node copy %v", c.HostCopy, c.Copy)
	}
}
