// Package m68k models the execution costs of the HPC/VORX hardware:
// 25 MHz Motorola 68020 processing nodes with 68882 floating-point
// coprocessors, SUN 3 host workstations, and the 160 Mbit/s HPC links.
//
// Every latency the simulation produces is a sum of these constants,
// which are calibrated against the numbers the paper itself reports
// (Tables 1 and 2, the 303 µs channel latency, the 60 µs user-defined
// object latency, the 80 µs context switch, the 3.2 Mbyte/s bitmap
// rate, and the 12 s vs 2 s download times). See DESIGN.md for the
// calibration notes.
package m68k

import "hpcvorx/internal/sim"

// Costs is the cost model for one node or host CPU plus the interconnect
// constants. A zero Costs is invalid; use DefaultCosts.
type Costs struct {
	// --- raw CPU ---

	// Copy is the per-byte cost of a user-level copy loop
	// (move.l-based memcpy on a 25 MHz 68020).
	Copy sim.Duration
	// KernelCopy is the per-byte cost of a kernel copy with bounds
	// and protection checks (slightly slower than Copy).
	KernelCopy sim.Duration
	// ContextSwitch is a full preemptive context switch including all
	// fixed and floating point registers (paper §5: 80 µs).
	ContextSwitch sim.Duration
	// CoroutineSwitch is a cooperative switch saving only the
	// callee-save registers at a well-defined point (paper §5:
	// coroutines have much less overhead than subprocesses).
	CoroutineSwitch sim.Duration
	// InterruptEntry is the cost of taking an interrupt and
	// dispatching to a service routine.
	InterruptEntry sim.Duration
	// SchedulerWake is the cost of making a blocked subprocess
	// runnable and dispatching it (shorter than ContextSwitch when
	// the processor was idle: no full register image to preserve).
	SchedulerWake sim.Duration
	// Syscall is the supervisor-call entry/exit overhead.
	Syscall sim.Duration
	// SemOp is the cost of one semaphore P or V operation.
	SemOp sim.Duration

	// --- HPC interconnect ---

	// WirePerByte is the transmission time per byte of a 160 Mbit/s
	// link section (0.05 µs/byte).
	WirePerByte sim.Duration
	// HopFixed is the fixed self-routing latency through one cluster
	// (header decode + switch setup).
	HopFixed sim.Duration
	// FiberPerKm is the light propagation delay per kilometer of
	// fiber (paper §1: "Fiber optic cables permit these connections
	// to be over a kilometer in length").
	FiberPerKm sim.Duration
	// MaxMessage is the HPC hardware message size limit in bytes.
	MaxMessage int

	// --- VORX channel protocol (stop-and-wait, in-kernel) ---

	// ChanSendProto is kernel protocol processing on the sending
	// side of a channel write (header build, channel table lookup).
	ChanSendProto sim.Duration
	// ChanRecvProto is kernel protocol processing on the receiving
	// side (demultiplex, side-buffer management).
	ChanRecvProto sim.Duration
	// ChanAckProto is the cost of generating or absorbing the
	// software acknowledgement message.
	ChanAckProto sim.Duration

	// --- user-defined communications objects ---

	// UDOSend is the fixed user-level cost to push a message at the
	// hardware registers directly (no kernel, no protocol).
	UDOSend sim.Duration
	// UDORecvISR is the fixed user-level interrupt-service cost to
	// pull a message from the input section.
	UDORecvISR sim.Duration

	// --- S/NET baseline interconnect ---

	// SNETBusPerByte is the shared-bus transfer time per byte.
	SNETBusPerByte sim.Duration
	// SNETBusFixed is the per-transfer bus arbitration/setup cost.
	SNETBusFixed sim.Duration
	// SNETFifoCap is the per-processor receive FIFO capacity in
	// bytes (paper §2: 2048).
	SNETFifoCap int
	// SNETReadFixed is the receiver's fixed cost to read one message
	// (or one rejected-message fragment) out of its FIFO.
	SNETReadFixed sim.Duration

	// --- host workstations (SUN 3) ---

	// HostFork is the host cost to create one stub process.
	HostFork sim.Duration
	// HostSyscall is the host-side cost to execute one forwarded
	// UNIX system call.
	HostSyscall sim.Duration
	// HostCopy is the host per-byte copy cost.
	HostCopy sim.Duration
	// HostMaxFDs is the SunOS per-process open file limit (paper
	// §3.3: 32).
	HostMaxFDs int
}

// DefaultCosts returns the calibrated model for the 1988 HPC/VORX
// installation: 25 MHz 68020 + 68882 nodes, SUN 3 hosts, 160 Mbit/s
// HPC ports, 1060-byte hardware message limit.
func DefaultCosts() *Costs {
	return &Costs{
		Copy:            sim.Microseconds(0.28),
		KernelCopy:      sim.Microseconds(0.29),
		ContextSwitch:   sim.Microseconds(80),
		CoroutineSwitch: sim.Microseconds(9),
		InterruptEntry:  sim.Microseconds(25),
		SchedulerWake:   sim.Microseconds(42),
		Syscall:         sim.Microseconds(18),
		SemOp:           sim.Microseconds(8),

		WirePerByte: sim.Microseconds(0.05),
		HopFixed:    sim.Microseconds(1.0),
		FiberPerKm:  sim.Microseconds(5.0),
		MaxMessage:  1060,

		ChanSendProto: sim.Microseconds(81),
		ChanRecvProto: sim.Microseconds(81),
		ChanAckProto:  sim.Microseconds(16),

		UDOSend:    sim.Microseconds(14),
		UDORecvISR: sim.Microseconds(15),

		SNETBusPerByte: sim.Microseconds(0.10),
		SNETBusFixed:   sim.Microseconds(5),
		SNETFifoCap:    2048,
		SNETReadFixed:  sim.Microseconds(45),

		HostFork:    sim.Milliseconds(95),
		HostSyscall: sim.Microseconds(400),
		HostCopy:    sim.Microseconds(0.10),
		HostMaxFDs:  32,
	}
}

// CopyTime returns the time for a user-level copy of n bytes.
func (c *Costs) CopyTime(n int) sim.Duration {
	return sim.Duration(n) * c.Copy
}

// KernelCopyTime returns the time for a kernel copy of n bytes.
func (c *Costs) KernelCopyTime(n int) sim.Duration {
	return sim.Duration(n) * c.KernelCopy
}

// WireTime returns the link transmission time of an n-byte message
// over one 160 Mbit/s link section, excluding routing latency.
func (c *Costs) WireTime(n int) sim.Duration {
	return sim.Duration(n) * c.WirePerByte
}

// HostCopyTime returns the time for a host copy of n bytes.
func (c *Costs) HostCopyTime(n int) sim.Duration {
	return sim.Duration(n) * c.HostCopy
}
