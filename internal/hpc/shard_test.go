package hpc

import (
	"fmt"
	"testing"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// delivRec is one observed delivery: destination, tag, and virtual
// time. Each shard records only deliveries to its own endpoints, so
// per-shard logs are race-free and in dispatch order.
type delivRec struct {
	dst topo.EndpointID
	tag string
	at  sim.Time
}

// shardedFabric wires one Interconnect per shard over a shared
// topology and partition, exactly as core.BuildSharded does, with a
// recording deliver handler on every endpoint.
type shardedFabric struct {
	g    *sim.Group
	ics  []*Interconnect
	part *topo.Partition
	t    *topo.Topology
	logs [][]delivRec
}

func newShardedFabric(t *topo.Topology, shards int) *shardedFabric {
	part := topo.PartitionClusters(t, shards)
	n := part.Shards()
	costs := m68k.DefaultCosts()
	kerns := make([]*sim.Kernel, n)
	for i := range kerns {
		kerns[i] = sim.NewKernel(1)
	}
	var g *sim.Group
	if n > 1 {
		g = sim.NewGroup(sim.UniformLookahead(n, costs.HopFixed), kerns...)
	}
	f := &shardedFabric{g: g, part: part, t: t, logs: make([][]delivRec, n)}
	shardOf := make([]int, t.Clusters())
	for c := 0; c < t.Clusters(); c++ {
		shardOf[c] = part.OfCluster(topo.ClusterID(c))
	}
	f.ics = make([]*Interconnect, n)
	for i := 0; i < n; i++ {
		f.ics[i] = New(kerns[i], costs, t)
	}
	for i := 0; i < n; i++ {
		if n > 1 {
			f.ics[i].ConnectShards(i, shardOf, f.ics)
		}
		i := i
		for e := 0; e < t.Endpoints(); e++ {
			id := topo.EndpointID(e)
			if part.OfEndpoint(t, id) != i {
				continue
			}
			ic := f.ics[i]
			ic.SetDeliver(id, func(d *Delivery) {
				f.logs[i] = append(f.logs[i], delivRec{dst: d.Msg.Dst, tag: d.Msg.Tag, at: ic.k.Now()})
				ic.FreeMessage(d.Msg)
				d.Release()
			})
		}
	}
	return f
}

// icOf returns the fabric owning endpoint e.
func (f *shardedFabric) icOf(e topo.EndpointID) *Interconnect {
	return f.ics[f.part.OfEndpoint(f.t, e)]
}

func (f *shardedFabric) run(tt *testing.T) {
	tt.Helper()
	var err error
	if f.g != nil {
		err = f.g.Run()
	} else {
		err = f.ics[0].k.Run()
	}
	if err != nil {
		tt.Fatalf("run: %v", err)
	}
}

// crossTraffic schedules a deterministic burst: every endpoint sends a
// distinct-size message to the endpoint diametrically across the
// topology, at staggered tie-free starts, with some same-cluster pairs
// mixed in. Sends are scheduled on the sender's own shard.
func crossTraffic(f *shardedFabric, done *int) {
	n := f.t.Endpoints()
	for e := 0; e < n; e++ {
		src := topo.EndpointID(e)
		dst := topo.EndpointID((e + n/2) % n)
		size := 64 + 16*e
		tag := fmt.Sprintf("x%d", e)
		ic := f.icOf(src)
		start := sim.Time(1 + 13*e)
		ic.k.At(start, func() {
			msg := ic.AllocMessage()
			msg.Src, msg.Dst, msg.Size, msg.Tag = src, dst, size, tag
			ok, err := ic.TrySend(msg, nil)
			if err != nil {
				panic(err)
			}
			if ok {
				*done++
			}
		})
	}
}

func flattenSorted(logs [][]delivRec) []delivRec {
	var all []delivRec
	for _, l := range logs {
		all = append(all, l...)
	}
	// Per-destination delivery order is deterministic; the global sort
	// key (at, dst, tag) gives a canonical cross-shard view.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			if a.at < b.at || (a.at == b.at && (a.dst < b.dst || (a.dst == b.dst && a.tag <= b.tag))) {
				break
			}
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	return all
}

func TestShardedFabricMatchesSerial(t *testing.T) {
	top, err := topo.IncompleteHypercube(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial := newShardedFabric(top, 1)
	var sd int
	crossTraffic(serial, &sd)
	serial.run(t)
	want := flattenSorted(serial.logs)
	if len(want) == 0 {
		t.Fatal("serial run delivered nothing")
	}

	for _, shards := range []int{2, 3, 6} {
		f := newShardedFabric(top, shards)
		var fd int
		crossTraffic(f, &fd)
		f.run(t)
		got := flattenSorted(f.logs)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d deliveries, serial %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: delivery %d = %+v, serial %+v", shards, i, got[i], want[i])
			}
		}
		var out, in int
		for _, ic := range f.ics {
			out += ic.Stats().HandoffsOut
			in += ic.Stats().HandoffsIn
		}
		if out == 0 || out != in {
			t.Fatalf("shards=%d: handoffs out=%d in=%d", shards, out, in)
		}
	}
}

// TestShardedFabricBackpressure drives many messages through one
// boundary link so transfers queue behind the reserved cube buffer,
// exercising boundaryFreed re-arming, and checks totals against
// serial.
func TestShardedFabricBackpressure(t *testing.T) {
	top, err := topo.IncompleteHypercube(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 12
	load := func(f *shardedFabric) {
		// Every endpoint of cluster 0 fires a burst at the same source,
		// all destined for endpoint 4 (cluster 1): one boundary link
		// serves everything.
		for e := 0; e < 4; e++ {
			src := topo.EndpointID(e)
			ic := f.icOf(src)
			for b := 0; b < burst; b++ {
				tag := fmt.Sprintf("b%d-%d", e, b)
				start := sim.Time(1 + 3*e + 50*b)
				ic.k.At(start, func() {
					msg := ic.AllocMessage()
					msg.Src, msg.Dst, msg.Size, msg.Tag = src, 4, 256, tag
					if ok, err := ic.TrySend(msg, nil); err != nil {
						panic(err)
					} else if !ok {
						// Output section busy: retry via room interrupt.
						ic.NotifyRoom(src, func() {
							m2 := ic.AllocMessage()
							m2.Src, m2.Dst, m2.Size, m2.Tag = src, 4, 256, tag
							if _, err := ic.TrySend(m2, nil); err != nil {
								panic(err)
							}
						})
					}
				})
			}
		}
	}
	serial := newShardedFabric(top, 1)
	load(serial)
	serial.run(t)
	want := flattenSorted(serial.logs)

	f := newShardedFabric(top, 2)
	load(f)
	f.run(t)
	got := flattenSorted(f.logs)
	if len(got) != len(want) {
		t.Fatalf("sharded delivered %d, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, serial %+v", i, got[i], want[i])
		}
	}
}

func TestShardedModeRejectsLinkFaults(t *testing.T) {
	top, err := topo.IncompleteHypercube(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := newShardedFabric(top, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetCubeLinkDown in sharded mode did not panic")
		}
	}()
	f.ics[0].SetCubeLinkDown(0, 1, true)
}
