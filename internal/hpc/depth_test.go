package hpc

import (
	"testing"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// TestOutputDepthMultiSlot: SetOutputDepth(4) turns the single-slot
// output section into a 4-deep queue, and nothing else. With a stuck
// receiver the fabric holds input(1) + cluster buffer(1) + output(4)
// messages — three more than classic — and the depth-5 send is refused
// exactly as the classic depth-2 send was: refuse-until-room
// backpressure, just with a deeper port.
func TestOutputDepthMultiSlot(t *testing.T) {
	k, ic := newFabric(t, 2)
	ic.SetOutputDepth(4)
	var stuck []*Delivery
	ic.SetDeliver(1, func(d *Delivery) { stuck = append(stuck, d) })
	const capacity = 6 // input 1 + cluster 1 + output 4
	for i := 0; i < capacity; i++ {
		ok, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: 1000, Payload: i}, nil)
		if !ok || err != nil {
			t.Fatalf("send %d: ok=%v err=%v (multi-slot port should hold it)", i, ok, err)
		}
		k.RunFor(sim.Seconds(1))
	}
	ok, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: 1000}, nil)
	if ok || err != nil {
		t.Fatalf("fabric full at %d messages: send should be refused (ok=%v err=%v)", capacity, ok, err)
	}
	// Draining one input-section occupant must vacate an output slot
	// (the train shuffles forward) and fire the room interrupt.
	roomAt := sim.Time(-1)
	ic.NotifyRoom(0, func() { roomAt = k.Now() })
	var got []int
	drain := func(d *Delivery) {
		got = append(got, d.Msg.Payload.(int))
		d.Release()
	}
	drain(stuck[0])
	stuck = stuck[:0]
	k.RunFor(sim.Seconds(1))
	if roomAt < 0 {
		t.Fatal("room-available interrupt never fired after drain")
	}
	// Release everything else; the whole train must arrive in FIFO
	// order with nothing lost or duplicated.
	ic.SetDeliver(1, func(d *Delivery) { drain(d) })
	for _, d := range stuck {
		drain(d)
	}
	k.RunFor(sim.Seconds(5))
	if len(got) != capacity {
		t.Fatalf("delivered %d, want %d", len(got), capacity)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO broken at %d: %v", i, got)
		}
	}
	if !ic.OutputFree(0) {
		t.Fatal("output section should be free after the drain")
	}
}

// TestOutputDepthLeavesInputSingle: only output sections deepen —
// input sections stay single-slot, preserving the classic receive-side
// pacing (and the deadlock-freedom argument that rests on it).
func TestOutputDepthLeavesInputSingle(t *testing.T) {
	k, ic := newFabric(t, 2)
	ic.SetOutputDepth(8)
	held := 0
	ic.SetDeliver(1, func(d *Delivery) { held++ }) // never releases
	for i := 0; i < 3; i++ {
		ic.TrySend(&Message{Src: 0, Dst: 1, Size: 100}, nil)
		k.RunFor(sim.Seconds(1))
	}
	if held != 1 {
		t.Fatalf("input section admitted %d unreleased deliveries, want 1", held)
	}
}

// TestOutputDepthManyToOneFairness: deep output ports must not starve
// anyone — every sender into one sink is still serviced completely.
func TestOutputDepthManyToOneFairness(t *testing.T) {
	k, ic := newFabric(t, 12)
	ic.SetOutputDepth(4)
	const perSender = 20
	received := map[topo.EndpointID]int{}
	ic.SetDeliver(0, func(d *Delivery) {
		received[d.Msg.Src]++
		d.Release()
	})
	for s := 1; s < 12; s++ {
		s := s
		k.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < perSender; i++ {
				if err := ic.Send(p, &Message{Src: topo.EndpointID(s), Dst: 0, Size: 1000}, nil); err != nil {
					t.Error(err)
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 1; s < 12; s++ {
		if received[topo.EndpointID(s)] != perSender {
			t.Fatalf("sender %d delivered %d of %d", s, received[topo.EndpointID(s)], perSender)
		}
	}
}
