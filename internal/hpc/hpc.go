// Package hpc models the HPC interconnect: self-routing twelve-port
// star clusters joined per a topo.Topology, with flow control done
// entirely in hardware.
//
// The modeled guarantees are exactly the ones the paper claims (§2):
//
//   - Messages are limited to a hardware maximum (1060 bytes).
//   - Every link refuses to accept a message until it has room to
//     buffer the entire message, so the interconnect never drops data.
//   - A fair scheduling mechanism (FIFO arbitration per link) ensures
//     every sender is eventually serviced.
//   - A sending processor whose output section is full receives an
//     interrupt when room becomes available.
//
// Transmission is store-and-forward with a one-message buffer at the
// downstream end of every link, which is how the original hardware's
// "room for an entire message" rule behaves.
package hpc

import (
	"fmt"
	"sort"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Message is a hardware message in flight. Payload is opaque to the
// interconnect; Size drives all timing.
type Message struct {
	Src, Dst topo.EndpointID
	Size     int
	Payload  any
	Tag      string // optional label for tracing and debugging
}

// Delivery hands an arrived message to an endpoint. The endpoint owns
// the input section while it drains the message and must call Release
// exactly once to free it; until then the interconnect cannot deliver
// the next message to this endpoint.
type Delivery struct {
	Msg     *Message
	release func()
}

// Release frees the endpoint's input section. Calling it more than
// once is a no-op.
func (d *Delivery) Release() {
	if d.release != nil {
		d.release()
		d.release = nil
	}
}

// DeliverFunc is an endpoint's input interrupt handler.
type DeliverFunc func(d *Delivery)

// Stats aggregates interconnect activity.
type Stats struct {
	MessagesDelivered int
	BytesDelivered    int64
	MessagesSent      int
	MulticastsSent    int
}

// Interconnect simulates one HPC fabric.
type Interconnect struct {
	k     *sim.Kernel
	costs *m68k.Costs
	topo  *topo.Topology

	outSec  []*buffer // per-endpoint output section
	inSec   []*buffer // per-endpoint input section
	upLink  []*link   // endpoint -> cluster
	dnLink  []*link   // cluster -> endpoint
	cubeLnk map[[2]topo.ClusterID]*link

	deliver []DeliverFunc
	onRoom  [][]func() // room-available interrupt handlers per endpoint

	stats Stats
}

// New builds an interconnect over the given topology.
func New(k *sim.Kernel, costs *m68k.Costs, t *topo.Topology) *Interconnect {
	n := t.Endpoints()
	ic := &Interconnect{
		k:       k,
		costs:   costs,
		topo:    t,
		outSec:  make([]*buffer, n),
		inSec:   make([]*buffer, n),
		upLink:  make([]*link, n),
		dnLink:  make([]*link, n),
		cubeLnk: make(map[[2]topo.ClusterID]*link),
		deliver: make([]DeliverFunc, n),
		onRoom:  make([][]func(), n),
	}
	for e := 0; e < n; e++ {
		ic.outSec[e] = &buffer{name: fmt.Sprintf("out%d", e)}
		ic.inSec[e] = &buffer{name: fmt.Sprintf("in%d", e)}
		ic.upLink[e] = &link{ic: ic, name: fmt.Sprintf("up%d", e), into: &buffer{name: fmt.Sprintf("clbuf-up%d", e)}}
		ic.dnLink[e] = &link{ic: ic, name: fmt.Sprintf("dn%d", e), into: ic.inSec[e]}
	}
	for c := 0; c < t.Clusters(); c++ {
		for _, nb := range t.Neighbors(topo.ClusterID(c)) {
			key := [2]topo.ClusterID{topo.ClusterID(c), nb}
			ic.cubeLnk[key] = &link{
				ic:   ic,
				name: fmt.Sprintf("cube%d-%d", c, nb),
				into: &buffer{name: fmt.Sprintf("clbuf%d-%d", c, nb)},
			}
		}
	}
	return ic
}

// Topology returns the interconnect's topology.
func (ic *Interconnect) Topology() *topo.Topology { return ic.topo }

// Costs returns the cost model in use.
func (ic *Interconnect) Costs() *m68k.Costs { return ic.costs }

// Stats returns a snapshot of interconnect counters.
func (ic *Interconnect) Stats() Stats { return ic.stats }

// LinkStat reports one directed link's activity.
type LinkStat struct {
	Name     string
	Busy     sim.Duration
	Messages int
}

// LinkStats returns activity for every directed link, sorted by name —
// the hot-link diagnostic view for tuning application placement.
func (ic *Interconnect) LinkStats() []LinkStat {
	var links []*link
	for e := range ic.upLink {
		links = append(links, ic.upLink[e], ic.dnLink[e])
	}
	for _, l := range ic.cubeLnk {
		links = append(links, l)
	}
	out := make([]LinkStat, 0, len(links))
	for _, l := range links {
		out = append(out, LinkStat{Name: l.name, Busy: l.busyTime, Messages: l.count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetEndpointCable sets the fiber length, in kilometers, of endpoint
// e's connection to its cluster (both directions). Workstations "may
// be geographically distributed within the area of a large building"
// — over a kilometer of fiber adds light-propagation delay to every
// message.
func (ic *Interconnect) SetEndpointCable(e topo.EndpointID, km float64) {
	d := sim.Duration(km * float64(ic.costs.FiberPerKm))
	ic.upLink[e].propagation = d
	ic.dnLink[e].propagation = d
}

// HottestLink returns the link with the most busy time.
func (ic *Interconnect) HottestLink() LinkStat {
	var best LinkStat
	for _, ls := range ic.LinkStats() {
		if ls.Busy > best.Busy {
			best = ls
		}
	}
	return best
}

// SetDeliver installs the input interrupt handler for endpoint e.
func (ic *Interconnect) SetDeliver(e topo.EndpointID, fn DeliverFunc) {
	ic.deliver[e] = fn
}

// OutputFree reports whether endpoint e's output section has room.
func (ic *Interconnect) OutputFree(e topo.EndpointID) bool {
	return ic.outSec[e].occupant == nil
}

// NotifyRoom registers a one-shot callback invoked when endpoint e's
// output section next becomes free (the "room available" interrupt).
// If it is already free the callback fires at the current instant.
func (ic *Interconnect) NotifyRoom(e topo.EndpointID, fn func()) {
	if ic.OutputFree(e) {
		ic.k.After(0, fn)
		return
	}
	ic.onRoom[e] = append(ic.onRoom[e], fn)
}

// TrySend starts transmission of msg if the sender's output section is
// free, reporting whether the message was accepted. onDelivered (may
// be nil) fires when the message lands in the destination's input
// section. A message over the hardware limit is rejected with an
// error regardless of room.
func (ic *Interconnect) TrySend(msg *Message, onDelivered func(*Message)) (bool, error) {
	if msg.Size > ic.costs.MaxMessage {
		return false, fmt.Errorf("hpc: message of %d bytes exceeds hardware limit %d", msg.Size, ic.costs.MaxMessage)
	}
	if msg.Size < 0 {
		return false, fmt.Errorf("hpc: negative message size")
	}
	out := ic.outSec[msg.Src]
	if out.occupant != nil {
		return false, nil
	}
	t := &transfer{msg: msg, links: ic.routeLinks(msg.Src, msg.Dst), onDelivered: onDelivered}
	out.occupant = t
	t.holder = out
	ic.stats.MessagesSent++
	t.links[0].request(t)
	return true, nil
}

// Send blocks proc p until the output section accepts msg (the room-
// available interrupt), then queues it. onDelivered may be nil.
func (ic *Interconnect) Send(p *sim.Proc, msg *Message, onDelivered func(*Message)) error {
	for {
		ok, err := ic.TrySend(msg, onDelivered)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		wake := p.Park("hpc-output " + fmt.Sprint(msg.Src))
		ic.NotifyRoom(msg.Src, wake)
		p.Block()
	}
}

// SendMulticast transmits one message to several destinations. The
// hardware replicates the message at the source cluster: the sender's
// output section and up-link are charged once, and a separate
// flow-controlled transfer then carries a copy to each destination.
// onDelivered (may be nil) fires once per destination.
func (ic *Interconnect) SendMulticast(p *sim.Proc, src topo.EndpointID, dsts []topo.EndpointID, size int, payload any, tag string, onDelivered func(dst topo.EndpointID, m *Message)) error {
	if size > ic.costs.MaxMessage {
		return fmt.Errorf("hpc: multicast of %d bytes exceeds hardware limit %d", size, ic.costs.MaxMessage)
	}
	if len(dsts) == 0 {
		return fmt.Errorf("hpc: multicast with no destinations")
	}
	out := ic.outSec[src]
	for out.occupant != nil {
		wake := p.Park("hpc-output-mc")
		ic.NotifyRoom(src, wake)
		p.Block()
	}
	ic.stats.MulticastsSent++
	// Phase 1: one trip up to the source cluster's replication buffer.
	up := ic.upLink[src]
	mt := &mcastRoot{ic: ic, src: src, size: size, payload: payload, tag: tag, dsts: dsts, onDelivered: onDelivered}
	t := &transfer{
		msg:   &Message{Src: src, Dst: src, Size: size, Payload: payload, Tag: tag + "/mc-up"},
		links: []*link{up},
		onArrivedAtBuffer: func(tr *transfer) {
			// Message is in the cluster replication buffer; fan out.
			mt.fanOut(tr)
		},
	}
	out.occupant = t
	t.holder = out
	up.request(t)
	return nil
}

// mcastRoot tracks a multicast's replication state.
type mcastRoot struct {
	ic          *Interconnect
	src         topo.EndpointID
	size        int
	payload     any
	tag         string
	dsts        []topo.EndpointID
	onDelivered func(topo.EndpointID, *Message)
	pending     int
	rootBuf     *buffer
	rootLink    *link
}

// fanOut launches one transfer per destination from the replication
// buffer. The buffer frees when every branch has left it.
func (m *mcastRoot) fanOut(root *transfer) {
	m.rootBuf = root.holder
	m.rootLink = root.links[len(root.links)-1]
	m.pending = len(m.dsts)
	srcCluster := m.ic.topo.AttachmentOf(m.src).Cluster
	for _, d := range m.dsts {
		d := d
		msg := &Message{Src: m.src, Dst: d, Size: m.size, Payload: m.payload, Tag: m.tag}
		links := ic_linksFromCluster(m.ic, srcCluster, d)
		bt := &transfer{msg: msg, onDelivered: func(mm *Message) {
			if m.onDelivered != nil {
				m.onDelivered(d, mm)
			}
		}}
		bt.links = links
		bt.holder = nil // replication buffer ownership handled by root
		bt.onLeftFirstBuffer = func() {
			m.pending--
			if m.pending == 0 {
				m.rootBuf.occupant = nil
				m.rootLink.tryStart()
			}
		}
		links[0].request(bt)
	}
}

// ic_linksFromCluster returns the link path from cluster c to endpoint
// dst (inter-cluster hops plus the final down-link).
func ic_linksFromCluster(ic *Interconnect, c topo.ClusterID, dst topo.EndpointID) []*link {
	route := ic.topo.ClusterRoute(c, ic.topo.AttachmentOf(dst).Cluster)
	var links []*link
	for i := 1; i < len(route); i++ {
		links = append(links, ic.cubeLnk[[2]topo.ClusterID{route[i-1], route[i]}])
	}
	links = append(links, ic.dnLink[dst])
	return links
}

// routeLinks returns the full link path from src's output section to
// dst's input section.
func (ic *Interconnect) routeLinks(src, dst topo.EndpointID) []*link {
	links := []*link{ic.upLink[src]}
	links = append(links, ic_linksFromCluster(ic, ic.topo.AttachmentOf(src).Cluster, dst)...)
	return links
}

// buffer is a one-message hardware buffer.
type buffer struct {
	name     string
	occupant *transfer
}

// transfer is one message making its way along a link path.
type transfer struct {
	msg    *Message
	links  []*link
	pos    int     // next link index to traverse
	holder *buffer // buffer currently holding the message (nil for multicast branches still in the shared buffer)

	onDelivered       func(*Message)
	onArrivedAtBuffer func(*transfer) // fires instead of delivery (multicast root)
	onLeftFirstBuffer func()          // multicast branch bookkeeping
}

// link is a directed link with FIFO (fair) arbitration into a
// one-message downstream buffer.
type link struct {
	ic          *Interconnect
	name        string
	into        *buffer
	busy        bool
	waitQ       []*transfer
	propagation sim.Duration // fiber length delay

	busyTime  sim.Duration
	lastStart sim.Time
	count     int
}

// request queues t for transmission over l.
func (l *link) request(t *transfer) {
	l.waitQ = append(l.waitQ, t)
	l.tryStart()
}

// tryStart begins the next queued transmission if the link is idle and
// the downstream buffer is free.
func (l *link) tryStart() {
	if l.busy || l.into.occupant != nil || len(l.waitQ) == 0 {
		return
	}
	t := l.waitQ[0]
	l.waitQ = l.waitQ[1:]
	l.busy = true
	l.into.occupant = t // reserve: "room for an entire message"
	l.lastStart = l.ic.k.Now()
	dur := l.ic.costs.HopFixed + l.ic.costs.WireTime(t.msg.Size) + l.propagation
	l.ic.k.After(dur, func() { l.complete(t) })
}

// complete finishes a transmission: the message now sits in l's
// downstream buffer and has fully left its previous buffer.
func (l *link) complete(t *transfer) {
	l.busy = false
	l.busyTime += l.ic.k.Now().Sub(l.lastStart)
	l.count++

	// Free the upstream buffer the message just vacated.
	if t.holder != nil {
		prev := t.holder
		prev.occupant = nil
		l.ic.freed(prev, t.pos, t)
	} else if t.onLeftFirstBuffer != nil {
		t.onLeftFirstBuffer()
		t.onLeftFirstBuffer = nil
	}
	t.holder = l.into
	t.pos++

	if t.onArrivedAtBuffer != nil && t.pos == len(t.links) {
		t.onArrivedAtBuffer(t)
		return
	}
	if t.pos < len(t.links) {
		t.links[t.pos].request(t)
		return
	}
	// Arrived in the destination input section.
	l.ic.stats.MessagesDelivered++
	l.ic.stats.BytesDelivered += int64(t.msg.Size)
	d := &Delivery{Msg: t.msg, release: func() {
		l.into.occupant = nil
		l.tryStart()
	}}
	if fn := l.ic.deliver[t.msg.Dst]; fn != nil {
		fn(d)
	} else {
		// No handler installed: drain immediately so the fabric
		// cannot wedge (the VORX kernel reads messages immediately).
		d.Release()
	}
	if t.onDelivered != nil {
		t.onDelivered(t.msg)
	}
}

// freed handles the bookkeeping after a buffer is vacated: restart the
// link feeding it, or fire the sender's room-available interrupt when
// the freed buffer was an output section.
func (ic *Interconnect) freed(b *buffer, posOfVacatingLink int, t *transfer) {
	// Output section freed: room-available interrupt.
	for e := range ic.outSec {
		if ic.outSec[e] == b {
			handlers := ic.onRoom[e]
			ic.onRoom[e] = nil
			for _, fn := range handlers {
				fn()
			}
			return
		}
	}
	// Cluster buffer freed: the link feeding it may proceed.
	if posOfVacatingLink >= 1 {
		t.links[posOfVacatingLink-1].tryStart()
	}
}
