// Package hpc models the HPC interconnect: self-routing twelve-port
// star clusters joined per a topo.Topology, with flow control done
// entirely in hardware.
//
// The modeled guarantees are exactly the ones the paper claims (§2):
//
//   - Messages are limited to a hardware maximum (1060 bytes).
//   - Every link refuses to accept a message until it has room to
//     buffer the entire message, so the interconnect never drops data.
//   - A fair scheduling mechanism (FIFO arbitration per link) ensures
//     every sender is eventually serviced.
//   - A sending processor whose output section is full receives an
//     interrupt when room becomes available.
//
// Transmission is store-and-forward with a one-message buffer at the
// downstream end of every link, which is how the original hardware's
// "room for an entire message" rule behaves.
package hpc

import (
	"fmt"
	"sort"
	"sync"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Message is a hardware message in flight. Payload is opaque to the
// interconnect; Size drives all timing.
type Message struct {
	Src, Dst topo.EndpointID
	Size     int
	Payload  any
	Tag      string // optional label for tracing and debugging
	// Trace is the causal trace ID threading this message's journey
	// through the event tracer. Zero (tracing off, or an untraced
	// send) means the fabric assigns one itself when tracing is on.
	Trace uint64
	// Inc is the sender machine's incarnation (boot count) at send
	// time, stamped by the netif. A receiver that has fenced the
	// sender at a higher floor refuses the frame — the structural
	// defense against zombie survivors of a healed partition.
	Inc uint32

	// pooled marks a shell born from the interconnect's message arena
	// (AllocMessage); FreeMessage ignores caller-constructed Messages.
	pooled bool
}

// AllocMessage takes a Message shell from the interconnect's arena.
// The caller fills the fields; whoever consumes the message hands the
// shell back with FreeMessage once nothing can touch it again.
func (ic *Interconnect) AllocMessage() *Message {
	m := ic.msgPool.Get().(*Message)
	m.pooled = true
	return m
}

// FreeMessage returns an arena-born shell for reuse and zeroes it; a
// Message built by hand is ignored, so consumers can call this on
// every delivery without tracking provenance. Callers must ensure no
// reference survives — in particular, a receiver may only free
// synchronously from its deliver callback when the sender attached no
// onDelivered (arena messages come from netif, which never reads the
// message there).
func (ic *Interconnect) FreeMessage(m *Message) {
	if m == nil || !m.pooled {
		return
	}
	*m = Message{}
	ic.msgPool.Put(m)
}

// Delivery hands an arrived message to an endpoint. The endpoint owns
// the input section while it drains the message and must call Release
// exactly once to free it; until then the interconnect cannot deliver
// the next message to this endpoint.
type Delivery struct {
	Msg     *Message
	release func()
}

// Release frees the endpoint's input section. Calling it more than
// once is a no-op.
func (d *Delivery) Release() {
	if d.release != nil {
		d.release()
		d.release = nil
	}
}

// DeliverFunc is an endpoint's input interrupt handler.
type DeliverFunc func(d *Delivery)

// Stats aggregates interconnect activity.
type Stats struct {
	MessagesDelivered int
	BytesDelivered    int64
	MessagesSent      int
	MulticastsSent    int
	// Reroutes counts transfers that were re-pathed around a failed
	// cube link after they had already been committed to a route.
	Reroutes int
	// HandoffsOut/HandoffsIn count transfers that crossed a shard
	// boundary over a cube link (see shard.go); zero when unsharded.
	HandoffsOut int
	HandoffsIn  int
}

// Interconnect simulates one HPC fabric.
type Interconnect struct {
	k     *sim.Kernel
	costs *m68k.Costs
	topo  *topo.Topology

	outSec  []*buffer // per-endpoint output section
	inSec   []*buffer // per-endpoint input section
	upLink  []*link   // endpoint -> cluster
	dnLink  []*link   // cluster -> endpoint
	cubeLnk map[[2]topo.ClusterID]*link

	deliver []DeliverFunc
	onRoom  [][]func() // room-available interrupt handlers per endpoint

	// downCubes counts directed cube links currently marked down. When
	// it is zero every route uses the canonical dimension-order rule,
	// so an idle fault engine leaves behaviour bit-identical.
	downCubes int

	// cubePaths caches the canonical cube-link sequence per cluster
	// pair. Dimension-order routes are topology-static, so entries
	// never invalidate; the cache is bypassed whenever downCubes != 0.
	cubePaths map[[2]topo.ClusterID][]*link

	// tPool and msgPool recycle transfer and Message shells so the
	// steady-state send path allocates nothing. Shells are reset on
	// recycle; a transfer's completion and release thunks are bound
	// once, at first construction, and survive reuse.
	tPool   sync.Pool
	msgPool sync.Pool

	// Sharded execution (see shard.go): this fabric's shard index, the
	// cluster→shard map, and the peer fabrics, all nil/zero when the
	// simulation is unsharded.
	shardSelf int
	shardOf   []int
	peers     []*Interconnect

	stats  Stats
	tracer *trace.Tracer
}

// SetTracer installs the unified event tracer. Fabric events land
// under the "fabric" process, one lane per directed link, so a message
// can be followed hop-by-hop; per-link wait-queue depth is exported as
// a gauge and backpressure stalls as a counter.
func (ic *Interconnect) SetTracer(t *trace.Tracer) { ic.tracer = t }

// Tracer returns the interconnect's tracer (possibly nil).
func (ic *Interconnect) Tracer() *trace.Tracer { return ic.tracer }

// msgDetail renders the constant facts of a message for event details.
func msgDetail(m *Message) string {
	if m.Tag != "" {
		return fmt.Sprintf("%s %dB %d->%d", m.Tag, m.Size, m.Src, m.Dst)
	}
	return fmt.Sprintf("%dB %d->%d", m.Size, m.Src, m.Dst)
}

// New builds an interconnect over the given topology.
func New(k *sim.Kernel, costs *m68k.Costs, t *topo.Topology) *Interconnect {
	n := t.Endpoints()
	ic := &Interconnect{
		k:       k,
		costs:   costs,
		topo:    t,
		outSec:  make([]*buffer, n),
		inSec:   make([]*buffer, n),
		upLink:  make([]*link, n),
		dnLink:  make([]*link, n),
		cubeLnk: make(map[[2]topo.ClusterID]*link),
		deliver: make([]DeliverFunc, n),
		onRoom:  make([][]func(), n),
	}
	ic.cubePaths = make(map[[2]topo.ClusterID][]*link)
	ic.tPool.New = func() any { return newBoundTransfer(ic) }
	ic.msgPool.New = func() any { return &Message{} }
	for e := 0; e < n; e++ {
		ic.outSec[e] = &buffer{name: fmt.Sprintf("out%d", e), outEP: int32(e + 1)}
		ic.inSec[e] = &buffer{name: fmt.Sprintf("in%d", e)}
		ic.upLink[e] = &link{ic: ic, name: fmt.Sprintf("up%d", e), into: &buffer{name: fmt.Sprintf("clbuf-up%d", e)}}
		ic.dnLink[e] = &link{ic: ic, name: fmt.Sprintf("dn%d", e), into: ic.inSec[e]}
	}
	for c := 0; c < t.Clusters(); c++ {
		for _, nb := range t.Neighbors(topo.ClusterID(c)) {
			key := [2]topo.ClusterID{topo.ClusterID(c), nb}
			ic.cubeLnk[key] = &link{
				ic:     ic,
				name:   fmt.Sprintf("cube%d-%d", c, nb),
				into:   &buffer{name: fmt.Sprintf("clbuf%d-%d", c, nb)},
				isCube: true,
				from:   topo.ClusterID(c),
				to:     nb,
			}
		}
	}
	return ic
}

// Topology returns the interconnect's topology.
func (ic *Interconnect) Topology() *topo.Topology { return ic.topo }

// Costs returns the cost model in use.
func (ic *Interconnect) Costs() *m68k.Costs { return ic.costs }

// Stats returns a snapshot of interconnect counters.
func (ic *Interconnect) Stats() Stats { return ic.stats }

// LinkStat reports one directed link's activity.
type LinkStat struct {
	Name     string
	Busy     sim.Duration
	Messages int
}

// LinkStats returns activity for every directed link, sorted by name —
// the hot-link diagnostic view for tuning application placement.
func (ic *Interconnect) LinkStats() []LinkStat {
	var links []*link
	for e := range ic.upLink {
		links = append(links, ic.upLink[e], ic.dnLink[e])
	}
	for _, l := range ic.cubeLnk {
		links = append(links, l)
	}
	out := make([]LinkStat, 0, len(links))
	for _, l := range links {
		out = append(out, LinkStat{Name: l.name, Busy: l.busyTime, Messages: l.count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetEndpointCable sets the fiber length, in kilometers, of endpoint
// e's connection to its cluster (both directions). Workstations "may
// be geographically distributed within the area of a large building"
// — over a kilometer of fiber adds light-propagation delay to every
// message.
func (ic *Interconnect) SetEndpointCable(e topo.EndpointID, km float64) {
	d := sim.Duration(km * float64(ic.costs.FiberPerKm))
	ic.upLink[e].propagation = d
	ic.dnLink[e].propagation = d
}

// HottestLink returns the link with the most busy time.
func (ic *Interconnect) HottestLink() LinkStat {
	var best LinkStat
	for _, ls := range ic.LinkStats() {
		if ls.Busy > best.Busy {
			best = ls
		}
	}
	return best
}

// SetDeliver installs the input interrupt handler for endpoint e.
func (ic *Interconnect) SetDeliver(e topo.EndpointID, fn DeliverFunc) {
	ic.deliver[e] = fn
}

// SetCubeLinkDown fails or repairs the bidirectional cube link between
// clusters a and b. Failing a link reroutes every transfer queued at
// it around the failure; a transfer for which no surviving path exists
// stays parked at the link until repair (the fabric still never loses
// a message — store-and-forward buffers hold it). A transmission
// already on the wire completes normally. Repairing a link restarts
// its queue. Unknown links are ignored.
func (ic *Interconnect) SetCubeLinkDown(a, b topo.ClusterID, down bool) {
	if ic.sharded() {
		// Rerouting around a failed link is a zero-lookahead operation
		// (the detour decision must take effect at the failing instant on
		// every shard), which the conservative protocol cannot fund.
		panic("hpc: cube link faults are not supported in sharded mode")
	}
	ic.setDirDown(a, b, down)
	ic.setDirDown(b, a, down)
}

func (ic *Interconnect) setDirDown(from, to topo.ClusterID, down bool) {
	l := ic.cubeLnk[[2]topo.ClusterID{from, to}]
	if l == nil || l.down == down {
		return
	}
	l.down = down
	if down {
		ic.downCubes++
		q := l.waitQ
		l.waitQ = nil
		for _, t := range q {
			if !ic.rerouteFrom(t, from) {
				l.waitQ = append(l.waitQ, t) // partitioned: await repair
			}
		}
	} else {
		ic.downCubes--
		l.tryStart()
	}
}

// CubeLinkDown reports whether the directed cube link from a to b is
// currently failed.
func (ic *Interconnect) CubeLinkDown(a, b topo.ClusterID) bool {
	l := ic.cubeLnk[[2]topo.ClusterID{a, b}]
	return l != nil && l.down
}

// DownCubeLinks returns the number of directed cube links currently
// failed (a bidirectional failure counts twice).
func (ic *Interconnect) DownCubeLinks() int { return ic.downCubes }

// SetCubeLinkSlowdown degrades (factor > 1) or restores (factor <= 1)
// the bandwidth of the cube link between a and b in both directions:
// wire time is multiplied by factor, modeling a link renegotiated to a
// lower rate. Unknown links are ignored.
func (ic *Interconnect) SetCubeLinkSlowdown(a, b topo.ClusterID, factor float64) {
	for _, key := range [][2]topo.ClusterID{{a, b}, {b, a}} {
		if l := ic.cubeLnk[key]; l != nil {
			l.slowdown = factor
		}
	}
}

// cubeDown is the down-link predicate fed to topo.RouteAvoiding.
func (ic *Interconnect) cubeDown(from, to topo.ClusterID) bool {
	return ic.CubeLinkDown(from, to)
}

// clusterPath returns the cluster route from a to b. With no failed
// links it is the canonical dimension-order route; with failures it is
// a deterministic shortest path over the surviving links, or an error
// when the failures partition a from b.
func (ic *Interconnect) clusterPath(a, b topo.ClusterID) ([]topo.ClusterID, error) {
	if ic.downCubes == 0 {
		return ic.topo.ClusterRoute(a, b), nil
	}
	if r := ic.topo.RouteAvoiding(a, b, ic.cubeDown); r != nil {
		return r, nil
	}
	return nil, fmt.Errorf("hpc: cluster %d unreachable from cluster %d (links down)", b, a)
}

// rerouteFrom re-paths a transfer currently held at cluster `at`
// around the failed links, reporting whether a surviving path exists.
func (ic *Interconnect) rerouteFrom(t *transfer, at topo.ClusterID) bool {
	dstCluster := ic.topo.AttachmentOf(t.msg.Dst).Cluster
	route := ic.topo.RouteAvoiding(at, dstCluster, ic.cubeDown)
	if route == nil {
		return false
	}
	newLinks := make([]*link, 0, len(route))
	for i := 1; i < len(route); i++ {
		newLinks = append(newLinks, ic.cubeLnk[[2]topo.ClusterID{route[i-1], route[i]}])
	}
	newLinks = append(newLinks, ic.dnLink[t.msg.Dst])
	t.links = append(t.links[:t.pos:t.pos], newLinks...)
	ic.stats.Reroutes++
	t.links[t.pos].request(t)
	return true
}

// OutputFree reports whether endpoint e's output section has room.
func (ic *Interconnect) OutputFree(e topo.EndpointID) bool {
	return !ic.outSec[e].full()
}

// SetOutputDepth deepens every endpoint's output section to k message
// slots (the pipelined profile's multi-slot port). k <= 1 restores the
// classic single-slot behaviour. Backpressure is unchanged in kind:
// TrySend still refuses when the section is full, and room-available
// interrupts still fire only when a slot frees. Only output sections
// are deepened; the fabric's cluster buffers and input sections keep
// their single slot, so link arbitration and deadlock-freedom are
// exactly the classic argument.
func (ic *Interconnect) SetOutputDepth(k int) {
	if k < 1 {
		k = 1
	}
	for _, b := range ic.outSec {
		b.depth = int32(k)
	}
}

// NotifyRoom registers a one-shot callback invoked when endpoint e's
// output section next becomes free (the "room available" interrupt).
// If it is already free the callback fires at the current instant.
func (ic *Interconnect) NotifyRoom(e topo.EndpointID, fn func()) {
	if ic.OutputFree(e) {
		ic.k.After(0, fn)
		return
	}
	ic.onRoom[e] = append(ic.onRoom[e], fn)
}

// TrySend starts transmission of msg if the sender's output section is
// free, reporting whether the message was accepted. onDelivered (may
// be nil) fires when the message lands in the destination's input
// section. A message over the hardware limit is rejected with an
// error regardless of room.
func (ic *Interconnect) TrySend(msg *Message, onDelivered func(*Message)) (bool, error) {
	if msg.Size > ic.costs.MaxMessage {
		return false, fmt.Errorf("hpc: message of %d bytes exceeds hardware limit %d", msg.Size, ic.costs.MaxMessage)
	}
	if msg.Size < 0 {
		return false, fmt.Errorf("hpc: negative message size")
	}
	out := ic.outSec[msg.Src]
	if out.full() {
		return false, nil
	}
	t := ic.newTransfer()
	if err := ic.routeLinksInto(t, msg.Src, msg.Dst); err != nil {
		t.links = t.links[:0]
		ic.tPool.Put(t)
		return false, err
	}
	if ic.tracer.Enabled() && msg.Trace == 0 {
		msg.Trace = ic.tracer.NewTraceID()
	}
	t.msg = msg
	t.onDelivered = onDelivered
	out.occ++
	t.holder = out
	ic.stats.MessagesSent++
	if ic.tracer.Enabled() {
		ic.tracer.Emit(trace.KEnqueue, msg.Trace, "fabric", out.name, msgDetail(msg))
	}
	t.links[0].request(t)
	return true, nil
}

// Send blocks proc p until the output section accepts msg (the room-
// available interrupt), then queues it. onDelivered may be nil.
func (ic *Interconnect) Send(p *sim.Proc, msg *Message, onDelivered func(*Message)) error {
	for {
		ok, err := ic.TrySend(msg, onDelivered)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		wake := p.Park("hpc-output " + fmt.Sprint(msg.Src))
		ic.NotifyRoom(msg.Src, wake)
		p.Block()
	}
}

// SendMulticast transmits one message to several destinations. The
// hardware replicates the message at the source cluster: the sender's
// output section and up-link are charged once, and a separate
// flow-controlled transfer then carries a copy to each destination.
// onDelivered (may be nil) fires once per destination.
func (ic *Interconnect) SendMulticast(p *sim.Proc, src topo.EndpointID, dsts []topo.EndpointID, size int, payload any, tag string, onDelivered func(dst topo.EndpointID, m *Message)) error {
	if size > ic.costs.MaxMessage {
		return fmt.Errorf("hpc: multicast of %d bytes exceeds hardware limit %d", size, ic.costs.MaxMessage)
	}
	if len(dsts) == 0 {
		return fmt.Errorf("hpc: multicast with no destinations")
	}
	out := ic.outSec[src]
	for out.full() {
		wake := p.Park("hpc-output-mc")
		ic.NotifyRoom(src, wake)
		p.Block()
	}
	ic.stats.MulticastsSent++
	// Phase 1: one trip up to the source cluster's replication buffer.
	up := ic.upLink[src]
	mt := &mcastRoot{ic: ic, src: src, size: size, payload: payload, tag: tag, dsts: dsts, onDelivered: onDelivered}
	t := &transfer{
		msg:   &Message{Src: src, Dst: src, Size: size, Payload: payload, Tag: tag + "/mc-up"},
		links: []*link{up},
		onArrivedAtBuffer: func(tr *transfer) {
			// Message is in the cluster replication buffer; fan out.
			mt.fanOut(tr)
		},
	}
	out.occ++
	t.holder = out
	up.request(t)
	return nil
}

// mcastRoot tracks a multicast's replication state.
type mcastRoot struct {
	ic          *Interconnect
	src         topo.EndpointID
	size        int
	payload     any
	tag         string
	dsts        []topo.EndpointID
	onDelivered func(topo.EndpointID, *Message)
	pending     int
	rootBuf     *buffer
	rootLink    *link
}

// fanOut launches one transfer per destination from the replication
// buffer. The buffer frees when every branch has left it.
func (m *mcastRoot) fanOut(root *transfer) {
	m.rootBuf = root.holder
	m.rootLink = root.links[len(root.links)-1]
	m.pending = len(m.dsts)
	srcCluster := m.ic.topo.AttachmentOf(m.src).Cluster
	for _, d := range m.dsts {
		d := d
		msg := &Message{Src: m.src, Dst: d, Size: m.size, Payload: m.payload, Tag: m.tag}
		links := ic_linksFromCluster(m.ic, srcCluster, d)
		bt := &transfer{msg: msg, onDelivered: func(mm *Message) {
			if m.onDelivered != nil {
				m.onDelivered(d, mm)
			}
		}}
		bt.notifySh = int32(m.ic.shardSelf)
		bt.links = links
		bt.holder = nil // replication buffer ownership handled by root
		bt.onLeftFirstBuffer = func() {
			m.pending--
			if m.pending == 0 {
				m.rootBuf.occ--
				m.rootLink.tryStart()
			}
		}
		links[0].request(bt)
	}
}

// ic_linksFromCluster returns the link path from cluster c to endpoint
// dst (inter-cluster hops plus the final down-link). With failed links
// it routes around them; when dst is unreachable it falls back to the
// canonical route, so the transfer parks at the failed link until
// repair — used by multicast, which has no per-branch error path.
func ic_linksFromCluster(ic *Interconnect, c topo.ClusterID, dst topo.EndpointID) []*link {
	links, err := ic.linksFromCluster(c, dst)
	if err == nil {
		return links
	}
	route := ic.topo.ClusterRoute(c, ic.topo.AttachmentOf(dst).Cluster)
	links = nil
	for i := 1; i < len(route); i++ {
		links = append(links, ic.cubeLnk[[2]topo.ClusterID{route[i-1], route[i]}])
	}
	return append(links, ic.dnLink[dst])
}

// linksFromCluster returns the link path from cluster c to endpoint
// dst over surviving links, or an error when dst is unreachable.
func (ic *Interconnect) linksFromCluster(c topo.ClusterID, dst topo.EndpointID) ([]*link, error) {
	route, err := ic.clusterPath(c, ic.topo.AttachmentOf(dst).Cluster)
	if err != nil {
		return nil, err
	}
	var links []*link
	for i := 1; i < len(route); i++ {
		links = append(links, ic.cubeLnk[[2]topo.ClusterID{route[i-1], route[i]}])
	}
	return append(links, ic.dnLink[dst]), nil
}

// cubePath returns the canonical cube-link sequence from cluster a to
// cluster b, memoized. Valid only while no cube links are down.
func (ic *Interconnect) cubePath(a, b topo.ClusterID) []*link {
	key := [2]topo.ClusterID{a, b}
	if p, ok := ic.cubePaths[key]; ok {
		return p
	}
	route := ic.topo.ClusterRoute(a, b)
	p := make([]*link, 0, len(route))
	for i := 1; i < len(route); i++ {
		p = append(p, ic.cubeLnk[[2]topo.ClusterID{route[i-1], route[i]}])
	}
	ic.cubePaths[key] = p
	return p
}

// routeLinksInto fills t.links with the full link path from src's
// output section to dst's input section, reusing the slice's capacity.
// With a healthy fabric the inter-cluster hops come from the memoized
// canonical path; with failures it falls back to the allocating
// avoidance router. Errors only when failures have left dst
// unreachable.
func (ic *Interconnect) routeLinksInto(t *transfer, src, dst topo.EndpointID) error {
	t.links = append(t.links[:0], ic.upLink[src])
	if ic.downCubes == 0 {
		a := ic.topo.AttachmentOf(src).Cluster
		b := ic.topo.AttachmentOf(dst).Cluster
		t.links = append(t.links, ic.cubePath(a, b)...)
		t.links = append(t.links, ic.dnLink[dst])
		return nil
	}
	rest, err := ic.linksFromCluster(ic.topo.AttachmentOf(src).Cluster, dst)
	if err != nil {
		return err
	}
	t.links = append(t.links, rest...)
	return nil
}

// buffer is a hardware buffer holding whole messages. Historically
// every buffer held exactly one message; output sections may be
// deepened to K slots (SetOutputDepth) so a port can accept a fragment
// train while the previous fragment drains. occ counts resident or
// reserved messages; depth 0 means the classic single slot.
type buffer struct {
	name  string
	occ   int32
	depth int32
	// outEP is endpoint+1 when this buffer is an endpoint's output
	// section (so freed() finds the room-interrupt list in O(1)), else 0.
	outEP int32
}

func (b *buffer) cap() int32 {
	if b.depth > 0 {
		return b.depth
	}
	return 1
}

func (b *buffer) full() bool { return b.occ >= b.cap() }

// transfer is one message making its way along a link path.
//
// Transfer shells are pooled: newTransfer draws one from the
// interconnect's pool and maybeRecycle returns it once the message has
// both finished its hops (onDelivered ran) and had its input section
// released by the endpoint — whichever happens last. The completion
// and release thunks are bound once per shell, so a steady-state send
// schedules and delivers without allocating.
type transfer struct {
	ic     *Interconnect
	msg    *Message
	links  []*link
	pos    int     // next link index to traverse
	holder *buffer // buffer currently holding the message (nil for multicast branches still in the shared buffer)

	onDelivered       func(*Message)
	onArrivedAtBuffer func(*transfer) // fires instead of delivery (multicast root)
	onLeftFirstBuffer func()          // multicast branch bookkeeping

	curLink    *link  // link currently transmitting (read by completeFn)
	lastLink   *link  // final link, whose buffer releaseFn frees
	completeFn func() // bound once: curLink.complete(this)
	releaseFn  func() // bound once: free input section, recycle
	dlv        Delivery

	// Sharded execution (see shard.go). onFirstHopStart fires once, at
	// the start of this transfer's first transmission, with the hop's
	// completion time — the pre-announcement hook that funds cross-shard
	// signals with a full hop of lookahead. notifySh is the shard whose
	// state the onDelivered callback closes over; when it is not the
	// delivering shard, the completion notice is posted back instead of
	// called.
	onFirstHopStart func(doneAt sim.Time)
	notifySh        int32

	doneHops bool // delivery (or terminal callback) has finished
	released bool // the endpoint freed the input section
	recycled bool
}

// newBoundTransfer mints a shell with its thunks pre-bound.
func newBoundTransfer(ic *Interconnect) *transfer {
	t := &transfer{ic: ic}
	t.completeFn = func() { t.curLink.complete(t) }
	t.releaseFn = func() {
		l := t.lastLink
		l.into.occ--
		t.released = true
		t.maybeRecycle()
		l.tryStart()
	}
	return t
}

// newTransfer draws a reset shell from the pool.
func (ic *Interconnect) newTransfer() *transfer {
	t := ic.tPool.Get().(*transfer)
	t.doneHops = false
	t.released = false
	t.recycled = false
	t.notifySh = int32(ic.shardSelf)
	return t
}

// maybeRecycle returns the shell to the pool once the last of the two
// lifetime ends (hop completion, input-section release) has passed.
// Both orders occur: a handler may Release inside its deliver callback
// (before onDelivered runs) or hold the Delivery long after.
func (t *transfer) maybeRecycle() {
	if !t.doneHops || !t.released || t.recycled {
		return
	}
	t.recycled = true
	t.msg = nil
	t.links = t.links[:0]
	t.pos = 0
	t.holder = nil
	t.onDelivered = nil
	t.onArrivedAtBuffer = nil
	t.onLeftFirstBuffer = nil
	t.curLink = nil
	t.lastLink = nil
	t.dlv = Delivery{}
	t.onFirstHopStart = nil
	t.notifySh = int32(t.ic.shardSelf)
	t.ic.tPool.Put(t)
}

// link is a directed link with FIFO (fair) arbitration into a
// one-message downstream buffer.
type link struct {
	ic          *Interconnect
	name        string
	into        *buffer
	busy        bool
	waitQ       []*transfer
	propagation sim.Duration // fiber length delay

	// Fault state (cube links only). down refuses new transmissions;
	// slowdown > 1 multiplies wire time (degraded bandwidth).
	isCube   bool
	from, to topo.ClusterID
	down     bool
	slowdown float64

	busyTime  sim.Duration
	lastStart sim.Time
	count     int
}

// request queues t for transmission over l. A request arriving at a
// failed cube link is rerouted around the failure when a surviving
// path exists; otherwise it parks here until repair.
func (l *link) request(t *transfer) {
	if l.down && l.isCube && l.ic.rerouteFrom(t, l.from) {
		return
	}
	l.waitQ = append(l.waitQ, t)
	l.tryStart()
	if tr := l.ic.tracer; tr.Enabled() {
		// Still queued after tryStart ⇒ the transfer is stalled here.
		for _, q := range l.waitQ {
			if q == t {
				tr.Emit(trace.KBlocked, t.msg.Trace, "fabric", l.name, l.stallReason())
				tr.Count("hpc.blocked", 1)
				tr.GaugeSet("hpc.q."+l.name, float64(len(l.waitQ)))
				break
			}
		}
	}
}

// stallReason explains why the link cannot transmit right now.
func (l *link) stallReason() string {
	switch {
	case l.down:
		return "link-down"
	case l.busy:
		return "link-busy"
	case l.into.full():
		return "buffer-full"
	default:
		return "queued"
	}
}

// tryStart begins the next queued transmission if the link is up and
// idle and the downstream buffer is free.
func (l *link) tryStart() {
	if l.busy || l.down || l.into.full() || len(l.waitQ) == 0 {
		return
	}
	t := l.waitQ[0]
	// Shift rather than re-slice so the queue keeps its capacity: a
	// [1:] pop erodes cap and forces a fresh array on every push.
	copy(l.waitQ, l.waitQ[1:])
	l.waitQ[len(l.waitQ)-1] = nil
	l.waitQ = l.waitQ[:len(l.waitQ)-1]
	l.busy = true
	l.into.occ++ // reserve: "room for an entire message"
	l.lastStart = l.ic.k.Now()
	if tr := l.ic.tracer; tr.Enabled() {
		tr.Emit(trace.KAcquire, t.msg.Trace, "fabric", l.name, msgDetail(t.msg))
		tr.GaugeSet("hpc.q."+l.name, float64(len(l.waitQ)))
	}
	wire := l.ic.costs.WireTime(t.msg.Size)
	if l.slowdown > 1 {
		wire = sim.Duration(float64(wire) * l.slowdown)
	}
	dur := l.ic.costs.HopFixed + wire + l.propagation
	t.ic = l.ic
	// Sharded execution: the hop's completion time is known now, a full
	// HopFixed (= the group lookahead) ahead, so every cross-shard
	// consequence of this transmission is announced at its start.
	if t.onFirstHopStart != nil {
		t.onFirstHopStart(l.ic.k.Now().Add(dur))
		t.onFirstHopStart = nil
	}
	if l.isCube && l.ic.shardOf != nil && l.ic.shardOf[l.to] != l.ic.shardSelf {
		l.ic.handoff(l, t, dur)
		return
	}
	if t.onDelivered != nil && int(t.notifySh) != l.ic.shardSelf && t.pos == len(t.links)-1 {
		l.ic.carryBack(t, l.ic.k.Now().Add(dur))
	}
	// Hand-built transfers (multicast) bind their thunk on first use;
	// pooled shells carry one from birth.
	if t.completeFn == nil {
		tt := t
		t.completeFn = func() { tt.curLink.complete(tt) }
	}
	t.curLink = l
	l.ic.k.After(dur, t.completeFn)
}

// complete finishes a transmission: the message now sits in l's
// downstream buffer and has fully left its previous buffer.
func (l *link) complete(t *transfer) {
	l.busy = false
	l.busyTime += l.ic.k.Now().Sub(l.lastStart)
	l.count++
	if tr := l.ic.tracer; tr.Enabled() {
		tr.EmitSpan(trace.KHop, t.msg.Trace, "fabric", l.name, l.lastStart, msgDetail(t.msg))
		// Cumulative utilization: busy virtual time over elapsed
		// virtual time, sampled at each hop completion so the series
		// sampler can plot per-link load without touching sim state.
		if now := l.ic.k.Now(); now > 0 {
			tr.GaugeSet("hpc.util."+l.name, float64(l.busyTime)/float64(now))
		}
	}

	// Free the upstream buffer the message just vacated.
	if t.holder != nil {
		prev := t.holder
		prev.occ--
		l.ic.freed(prev, t.pos, t)
	} else if t.onLeftFirstBuffer != nil {
		t.onLeftFirstBuffer()
		t.onLeftFirstBuffer = nil
	}
	t.holder = l.into
	t.pos++

	if t.onArrivedAtBuffer != nil && t.pos == len(t.links) {
		t.onArrivedAtBuffer(t)
		return
	}
	if t.pos < len(t.links) {
		t.links[t.pos].request(t)
		return
	}
	// Arrived in the destination input section.
	l.ic.stats.MessagesDelivered++
	l.ic.stats.BytesDelivered += int64(t.msg.Size)
	if tr := l.ic.tracer; tr.Enabled() {
		tr.Emit(trace.KDeliver, t.msg.Trace, "fabric", l.into.name, msgDetail(t.msg))
		tr.Count("hpc.delivered", 1)
		tr.Count("hpc.bytes", float64(t.msg.Size))
	}
	t.lastLink = l
	if t.releaseFn == nil {
		tt := t
		t.releaseFn = func() {
			ll := tt.lastLink
			ll.into.occ--
			tt.released = true
			tt.maybeRecycle()
			ll.tryStart()
		}
	}
	t.dlv = Delivery{Msg: t.msg, release: t.releaseFn}
	d := &t.dlv
	if fn := l.ic.deliver[t.msg.Dst]; fn != nil {
		fn(d)
	} else {
		// No handler installed: drain immediately so the fabric
		// cannot wedge (the VORX kernel reads messages immediately).
		d.Release()
	}
	if t.onDelivered != nil {
		t.onDelivered(t.msg)
	}
	t.doneHops = true
	t.maybeRecycle()
}

// freed handles the bookkeeping after a buffer is vacated: restart the
// link feeding it, or fire the sender's room-available interrupt when
// the freed buffer was an output section.
func (ic *Interconnect) freed(b *buffer, posOfVacatingLink int, t *transfer) {
	// Output section freed: room-available interrupt.
	if b.outEP != 0 {
		e := int(b.outEP - 1)
		handlers := ic.onRoom[e]
		ic.onRoom[e] = nil
		for _, fn := range handlers {
			fn()
		}
		return
	}
	// Cluster buffer freed: the link feeding it may proceed.
	if posOfVacatingLink >= 1 {
		t.links[posOfVacatingLink-1].tryStart()
	}
}
