package hpc

import (
	"fmt"
	"testing"
	"testing/quick"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

func newFabric(t *testing.T, endpoints int) (*sim.Kernel, *Interconnect) {
	t.Helper()
	k := sim.NewKernel(1)
	tp, err := topo.SingleCluster(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	return k, New(k, m68k.DefaultCosts(), tp)
}

func TestPointToPointDelivery(t *testing.T) {
	k, ic := newFabric(t, 2)
	var got *Message
	var at sim.Time
	ic.SetDeliver(1, func(d *Delivery) {
		got = d.Msg
		at = k.Now()
		d.Release()
	})
	k.Spawn("sender", func(p *sim.Proc) {
		err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 100, Payload: "hi"}, nil)
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Payload != "hi" {
		t.Fatal("message not delivered")
	}
	// Two store-and-forward hops: 2 * (HopFixed + 100*WirePerByte)
	// = 2 * (1 + 5) = 12 µs.
	if want := sim.Time(sim.Microseconds(12)); at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	st := ic.Stats()
	if st.MessagesDelivered != 1 || st.BytesDelivered != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	_, ic := newFabric(t, 2)
	_, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: 1061}, nil)
	if err == nil {
		t.Fatal("1061-byte message should exceed the 1060-byte hardware limit")
	}
	ok, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: 1060}, nil)
	if err != nil || !ok {
		t.Fatalf("1060-byte message should be accepted: ok=%v err=%v", ok, err)
	}
	if _, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: -1}, nil); err == nil {
		t.Fatal("negative size should be rejected")
	}
}

func TestOutputSectionBackpressure(t *testing.T) {
	k, ic := newFabric(t, 2)
	// Receiver that never releases: the fabric backs up to the sender.
	var stuck *Delivery
	ic.SetDeliver(1, func(d *Delivery) { stuck = d })
	ok, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: 1000}, nil)
	if !ok || err != nil {
		t.Fatal("first send should be accepted")
	}
	k.RunFor(sim.Seconds(1))
	// First message sits in endpoint 1's input section. Second fills
	// the cluster buffer, third the output section; fourth must be
	// refused.
	for i := 0; i < 2; i++ {
		ok, err = ic.TrySend(&Message{Src: 0, Dst: 1, Size: 1000}, nil)
		if !ok || err != nil {
			t.Fatalf("send %d: ok=%v err=%v", i+2, ok, err)
		}
		k.RunFor(sim.Seconds(1))
	}
	ok, _ = ic.TrySend(&Message{Src: 0, Dst: 1, Size: 1000}, nil)
	if ok {
		t.Fatal("fabric full: send should be refused, not accepted")
	}
	// Interrupt fires once the receiver drains.
	roomAt := sim.Time(-1)
	ic.NotifyRoom(0, func() { roomAt = k.Now() })
	stuck.Release()
	k.RunFor(sim.Seconds(1))
	if roomAt < 0 {
		t.Fatal("room-available interrupt never fired")
	}
	if !ic.OutputFree(0) {
		t.Fatal("output section should be free after drain")
	}
}

func TestNoLossUnderManyToOne(t *testing.T) {
	// Paper §2: HPC flow control makes loss impossible and every
	// sender is eventually serviced. 11 senders blast one receiver.
	k, ic := newFabric(t, 12)
	const perSender = 20
	received := map[topo.EndpointID]int{}
	ic.SetDeliver(0, func(d *Delivery) {
		received[d.Msg.Src]++
		d.Release()
	})
	for s := 1; s < 12; s++ {
		s := s
		k.Spawn(fmt.Sprintf("sender%d", s), func(p *sim.Proc) {
			for i := 0; i < perSender; i++ {
				if err := ic.Send(p, &Message{Src: topo.EndpointID(s), Dst: 0, Size: 1000}, nil); err != nil {
					t.Error(err)
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 1; s < 12; s++ {
		if received[topo.EndpointID(s)] != perSender {
			t.Errorf("sender %d: delivered %d, want %d", s, received[topo.EndpointID(s)], perSender)
		}
		total += received[topo.EndpointID(s)]
	}
	if total != 11*perSender {
		t.Fatalf("total = %d", total)
	}
}

func TestFairnessUnderContention(t *testing.T) {
	// While all senders are continuously backlogged, deliveries from
	// each should interleave rather than starve anyone: after the
	// first k deliveries, every sender should appear at least once
	// within any window of 2*senders deliveries.
	k, ic := newFabric(t, 5)
	var order []topo.EndpointID
	ic.SetDeliver(0, func(d *Delivery) {
		order = append(order, d.Msg.Src)
		d.Release()
	})
	const perSender = 30
	for s := 1; s < 5; s++ {
		s := s
		k.Spawn(fmt.Sprintf("sender%d", s), func(p *sim.Proc) {
			for i := 0; i < perSender; i++ {
				_ = ic.Send(p, &Message{Src: topo.EndpointID(s), Dst: 0, Size: 500}, nil)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Check no starvation in the steady-state middle of the run.
	window := 8
	for start := 8; start+window < len(order)-8; start++ {
		seen := map[topo.EndpointID]bool{}
		for _, s := range order[start : start+window] {
			seen[s] = true
		}
		if len(seen) < 4 {
			t.Fatalf("window at %d: only %d distinct senders in %v", start, len(seen), order[start:start+window])
		}
	}
}

func TestMultiClusterRouting(t *testing.T) {
	k := sim.NewKernel(1)
	tp, err := topo.IncompleteHypercube(4, 2) // 8 endpoints, dim 2
	if err != nil {
		t.Fatal(err)
	}
	ic := New(k, m68k.DefaultCosts(), tp)
	var at sim.Time
	ic.SetDeliver(7, func(d *Delivery) { at = k.Now(); d.Release() })
	k.Spawn("s", func(p *sim.Proc) {
		// endpoint 0 on cluster 0 -> endpoint 7 on cluster 3: 2 cube
		// hops + up + down = 4 store-and-forward link traversals.
		if err := ic.Send(p, &Message{Src: 0, Dst: 7, Size: 200}, nil); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(4 * (sim.Microseconds(1) + 200*sim.Microseconds(0.05)))
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestMulticastDeliversToAll(t *testing.T) {
	k, ic := newFabric(t, 6)
	got := map[topo.EndpointID]int{}
	for e := 1; e < 6; e++ {
		e := topo.EndpointID(e)
		ic.SetDeliver(e, func(d *Delivery) { got[e]++; d.Release() })
	}
	k.Spawn("mc", func(p *sim.Proc) {
		dsts := []topo.EndpointID{1, 2, 3, 4, 5}
		err := ic.SendMulticast(p, 0, dsts, 512, "blob", "mc", nil)
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for e := 1; e < 6; e++ {
		if got[topo.EndpointID(e)] != 1 {
			t.Errorf("endpoint %d got %d copies", e, got[topo.EndpointID(e)])
		}
	}
	if ic.Stats().MulticastsSent != 1 {
		t.Fatalf("stats = %+v", ic.Stats())
	}
}

func TestMulticastChargesUplinkOnce(t *testing.T) {
	// The sender's output section must be reusable after one up-link
	// transmission, not len(dsts) of them.
	k, ic := newFabric(t, 4)
	var mcDone, p2pStart sim.Time
	delivered := 0
	for e := 1; e < 4; e++ {
		e := topo.EndpointID(e)
		ic.SetDeliver(e, func(d *Delivery) { delivered++; d.Release() })
	}
	k.Spawn("mc", func(p *sim.Proc) {
		if err := ic.SendMulticast(p, 0, []topo.EndpointID{1, 2, 3}, 1000, nil, "mc", nil); err != nil {
			t.Error(err)
		}
		mcDone = p.Now()
		// Next unicast: must wait only for the single up transfer to
		// drain the replication buffer, not 3 sequential sends.
		if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 4}, nil); err != nil {
			t.Error(err)
		}
		p2pStart = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 4 {
		t.Fatalf("delivered = %d, want 4", delivered)
	}
	// up transfer = 1 + 50 = 51 µs; all three branches then leave the
	// replication buffer in parallel (separate down links), so the
	// output section frees after ~102 µs, far less than 3 serialized
	// 1000-byte transfers.
	if gap := p2pStart.Sub(mcDone); gap > sim.Microseconds(150) {
		t.Fatalf("output section blocked for %v after multicast", gap)
	}
}

func TestDeliveryReleaseIdempotent(t *testing.T) {
	k, ic := newFabric(t, 2)
	ic.SetDeliver(1, func(d *Delivery) {
		d.Release()
		d.Release() // must be a no-op
	})
	k.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 10}, nil); err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ic.Stats().MessagesDelivered != 3 {
		t.Fatalf("delivered = %d", ic.Stats().MessagesDelivered)
	}
}

func TestNoDeliverHandlerAutoDrains(t *testing.T) {
	k, ic := newFabric(t, 2)
	k.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 10}, nil); err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ic.Stats().MessagesDelivered != 5 {
		t.Fatalf("delivered = %d", ic.Stats().MessagesDelivered)
	}
}

// Property: under arbitrary all-to-all traffic on an incomplete
// hypercube, every message is delivered exactly once (no loss, no
// duplication, no fabric deadlock).
func TestAllToAllExactlyOnceProperty(t *testing.T) {
	f := func(nClRaw, perRaw, msgsRaw uint8, size uint16) bool {
		nCl := int(nClRaw%6) + 1
		per := int(perRaw%3) + 1
		msgs := int(msgsRaw%5) + 1
		sz := int(size%1060) + 1
		k := sim.NewKernel(int64(nCl*100 + per))
		tp, err := topo.IncompleteHypercube(nCl, per)
		if err != nil {
			return false
		}
		ic := New(k, m68k.DefaultCosts(), tp)
		n := tp.Endpoints()
		recv := make([]int, n)
		for e := 0; e < n; e++ {
			e := e
			ic.SetDeliver(topo.EndpointID(e), func(d *Delivery) {
				recv[e]++
				d.Release()
			})
		}
		for s := 0; s < n; s++ {
			s := s
			k.Spawn(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
				for i := 0; i < msgs; i++ {
					for d := 0; d < n; d++ {
						if d == s {
							continue
						}
						if err := ic.Send(p, &Message{Src: topo.EndpointID(s), Dst: topo.EndpointID(d), Size: sz}, nil); err != nil {
							t.Error(err)
						}
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for e := 0; e < n; e++ {
			if recv[e] != msgs*(n-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkStatsTrackTraffic(t *testing.T) {
	k, ic := newFabric(t, 3)
	k.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 500}, nil); err != nil {
				t.Error(err)
			}
		}
		if err := ic.Send(p, &Message{Src: 0, Dst: 2, Size: 100}, nil); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	stats := map[string]LinkStat{}
	for _, ls := range ic.LinkStats() {
		stats[ls.Name] = ls
	}
	if stats["up0"].Messages != 6 {
		t.Errorf("up0 carried %d messages, want 6", stats["up0"].Messages)
	}
	if stats["dn1"].Messages != 5 || stats["dn2"].Messages != 1 {
		t.Errorf("down links: dn1=%d dn2=%d", stats["dn1"].Messages, stats["dn2"].Messages)
	}
	if hot := ic.HottestLink(); hot.Name != "up0" {
		t.Errorf("hottest = %+v, want up0", hot)
	}
	// Busy time for up0: 6 transmissions = 5*(1+25) + (1+5) = 136 µs.
	if want := 5*(sim.Microseconds(1)+sim.Microseconds(25)) + sim.Microseconds(6); stats["up0"].Busy != want {
		t.Errorf("up0 busy = %v, want %v", stats["up0"].Busy, want)
	}
}

func TestCableLengthAddsPropagation(t *testing.T) {
	// Paper §1: fiber connections may be over a kilometer long. A
	// 1.2 km workstation drop adds light-time each way but changes
	// nothing else.
	k, ic := newFabric(t, 2)
	ic.SetEndpointCable(1, 1.2)
	var at sim.Time
	ic.SetDeliver(1, func(d *Delivery) { at = k.Now(); d.Release() })
	k.Spawn("s", func(p *sim.Proc) {
		if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 100}, nil); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Base 12 µs + 1.2 km * 5 µs/km on the down link only (the up
	// link belongs to endpoint 0, whose cable is zero-length).
	want := sim.Time(sim.Microseconds(12) + sim.Microseconds(6))
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}
