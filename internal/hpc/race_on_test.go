//go:build race

package hpc

const raceEnabled = true
