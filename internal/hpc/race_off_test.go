//go:build !race

package hpc

const raceEnabled = false
