package hpc

import (
	"testing"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// TestSendPathZeroAllocSteadyState is the allocation guard for the
// fabric's hot path: once the transfer pool, event pool, and route
// cache are warm, a full send/hop/deliver/release cycle allocates
// nothing on the Go heap.
func TestSendPathZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		// The race detector makes sync.Pool.Put drop items at random,
		// so allocation counts are meaningless under -race.
		t.Skip("allocation counts are not stable under the race detector")
	}
	k := sim.NewKernel(1)
	tp, err := topo.IncompleteHypercube(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ic := New(k, m68k.DefaultCosts(), tp)
	// Cross-cluster message; no deliver handler, so the fabric drains
	// the input section itself.
	msg := &Message{Src: 0, Dst: topo.EndpointID(tp.Endpoints() - 1), Size: 512}
	cycle := func() {
		ok, err := ic.TrySend(msg, nil)
		if err != nil || !ok {
			t.Fatalf("TrySend: ok=%v err=%v", ok, err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs != 0 {
		t.Fatalf("warm send path allocates %v/op, want 0", allocs)
	}
}

// TestTransferPoolSurvivesLateRelease exercises the out-of-order
// lifetime: the receiver holds the Delivery past the sender's next
// message, so recycling must wait for the release.
func TestTransferPoolSurvivesLateRelease(t *testing.T) {
	k := sim.NewKernel(1)
	tp, err := topo.SingleCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	ic := New(k, m68k.DefaultCosts(), tp)
	var held []*Delivery
	seen := 0
	ic.SetDeliver(1, func(d *Delivery) {
		seen++
		held = append(held, d) // release later, out of band
	})
	for i := 0; i < 8; i++ {
		if ok, err := ic.TrySend(&Message{Src: 0, Dst: 2, Size: 64}, nil); err != nil || !ok {
			t.Fatalf("send %d: ok=%v err=%v", i, ok, err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: 64}, nil); err != nil || !ok {
		t.Fatalf("held send: ok=%v err=%v", ok, err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("endpoint 1 saw %d deliveries, want 1", seen)
	}
	// A second message to the held endpoint must park until release.
	arrived := false
	ic.SetDeliver(1, func(d *Delivery) { arrived = true; d.Release() })
	if ok, err := ic.TrySend(&Message{Src: 0, Dst: 1, Size: 64}, nil); err != nil || !ok {
		t.Fatalf("parked send: ok=%v err=%v", ok, err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived {
		t.Fatal("second delivery bypassed the held input section")
	}
	held[0].Release()
	held[0].Release() // double release stays a no-op
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !arrived {
		t.Fatal("second delivery never arrived after release")
	}
}
