package hpc

import (
	"testing"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// newCube builds a 4-cluster (dim-2) fabric with one endpoint per
// cluster: endpoint e sits on cluster e.
func newCube(t *testing.T) (*sim.Kernel, *Interconnect) {
	t.Helper()
	k := sim.NewKernel(1)
	tp, err := topo.IncompleteHypercube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return k, New(k, m68k.DefaultCosts(), tp)
}

// TestLinkDownReroutesWithoutLoss: fail the canonical link before the
// send; the message takes the detour and nothing is lost.
func TestLinkDownReroutesWithoutLoss(t *testing.T) {
	k, ic := newCube(t)
	// Canonical route 0→1 uses cube link 0-1. Fail it.
	ic.SetCubeLinkDown(0, 1, true)
	delivered := 0
	ic.SetDeliver(1, func(d *Delivery) { delivered++; d.Release() })
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 200}, nil); err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d of 3 across the detour", delivered)
	}
	// The detour 0→2→3→1 exists; the failed link must stay unused.
	for _, ls := range ic.LinkStats() {
		if (ls.Name == "cube0-1" || ls.Name == "cube1-0") && ls.Messages > 0 {
			t.Fatalf("failed link %s carried %d messages", ls.Name, ls.Messages)
		}
	}
}

// TestLinkDownMidFlightReroute: a message already queued at a link
// when it fails is re-pathed and still arrives; Stats.Reroutes counts
// the rescue.
func TestLinkDownMidFlightReroute(t *testing.T) {
	k, ic := newCube(t)
	delivered := 0
	ic.SetDeliver(1, func(d *Delivery) { delivered++; d.Release() })
	k.Spawn("sender", func(p *sim.Proc) {
		// Two back-to-back messages: the second queues behind the first.
		for i := 0; i < 2; i++ {
			if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 1000}, nil); err != nil {
				t.Error(err)
			}
		}
	})
	// Fail the canonical link while traffic is queued on it. 8 µs is
	// after the first message entered the fabric but before the second
	// clears cube0-1 (each hop of a 1000-byte message takes 51 µs).
	k.After(8*sim.Microsecond, func() { ic.SetCubeLinkDown(0, 1, true) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d of 2 after mid-flight failure", delivered)
	}
	if ic.Stats().Reroutes == 0 {
		t.Fatal("expected at least one mid-flight reroute")
	}
}

// TestPartitionReportsUnreachable: with every path to the destination
// failed, TrySend returns an error instead of wedging, and repair
// restores service.
func TestPartitionReportsUnreachable(t *testing.T) {
	k, ic := newCube(t)
	// Cluster 3 reaches the rest via 3-1 and 3-2 only.
	ic.SetCubeLinkDown(3, 1, true)
	ic.SetCubeLinkDown(3, 2, true)
	ok, err := ic.TrySend(&Message{Src: 0, Dst: 3, Size: 100}, nil)
	if ok || err == nil {
		t.Fatalf("partitioned destination: ok=%v err=%v, want unreachable error", ok, err)
	}
	// Same-side traffic still flows.
	delivered := 0
	ic.SetDeliver(2, func(d *Delivery) { delivered++; d.Release() })
	k.Spawn("sender", func(p *sim.Proc) {
		if err := ic.Send(p, &Message{Src: 0, Dst: 2, Size: 100}, nil); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("traffic on the surviving side must be unaffected")
	}
	// Repair and verify reachability returns.
	ic.SetCubeLinkDown(3, 1, false)
	ic.SetCubeLinkDown(3, 2, false)
	if ok, err := ic.TrySend(&Message{Src: 0, Dst: 3, Size: 100}, nil); !ok || err != nil {
		t.Fatalf("after repair: ok=%v err=%v", ok, err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLinkUpResumesParkedTraffic: a transfer with no surviving path
// parks at the failed link and completes after repair — the "never
// loses messages" guarantee holds across the outage.
func TestLinkUpResumesParkedTraffic(t *testing.T) {
	k, ic := newCube(t)
	delivered := 0
	ic.SetDeliver(3, func(d *Delivery) { delivered++; d.Release() })
	k.Spawn("sender", func(p *sim.Proc) {
		if err := ic.Send(p, &Message{Src: 0, Dst: 3, Size: 1000}, nil); err != nil {
			t.Error(err)
		}
	})
	// Isolate cluster 3 while the message is in flight (committed at
	// send time, so no unreachable error), then repair one link later.
	k.After(8*sim.Microsecond, func() {
		ic.SetCubeLinkDown(3, 1, true)
		ic.SetCubeLinkDown(3, 2, true)
	})
	k.After(2*sim.Millisecond, func() { ic.SetCubeLinkDown(3, 1, false) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("parked message must deliver after link repair")
	}
}

// TestDegradedLinkSlowsTransfer: a slowdown factor stretches wire time
// on the degraded link and restoring it returns latency to normal.
func TestDegradedLinkSlowsTransfer(t *testing.T) {
	timeOnce := func(factor float64) sim.Time {
		k, ic := newCube(t)
		if factor > 0 {
			ic.SetCubeLinkSlowdown(0, 1, factor)
		}
		var at sim.Time
		ic.SetDeliver(1, func(d *Delivery) { at = k.Now(); d.Release() })
		k.Spawn("sender", func(p *sim.Proc) {
			if err := ic.Send(p, &Message{Src: 0, Dst: 1, Size: 1000}, nil); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	clean := timeOnce(0)
	slow := timeOnce(4.0)
	restored := timeOnce(1.0) // factor <= 1 restores full rate
	if slow <= clean {
		t.Fatalf("degraded link not slower: clean %v, degraded %v", clean, slow)
	}
	if restored != clean {
		t.Fatalf("restored link latency %v, want %v", restored, clean)
	}
}
