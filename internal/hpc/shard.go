package hpc

// Sharded fabric execution. When the simulation is partitioned over a
// sim.Group (one kernel per shard, clusters assigned by a
// topo.Partition), each shard runs its own Interconnect over the full
// shared topology but only ever simulates the links its shard owns: a
// cluster's up/down links, its internal arbitration, and every cube
// link *leaving* one of its clusters — including that link's
// store-and-forward buffer at the downstream end. Intra-shard traffic
// takes exactly the serial code path; only a cube hop into a foreign
// cluster crosses shards.
//
// The boundary protocol rides on one physical fact: a cube hop costs
// at least HopFixed, which is precisely the group's lookahead. When
// shard A starts transmitting over a boundary link a→b it already
// knows the completion time T, a full lookahead away, so everything
// the hop causes elsewhere is posted at its start:
//
//   - the message's arrival in b's cluster buffer (remoteArrive on
//     shard B, at T);
//   - nothing else yet — the buffer stays reserved on shard A until
//     shard B's continuation vacates it.
//
// Shard B rebuilds the remaining route from cluster b (sound because
// sharded mode forbids link faults, so routes are the canonical
// dimension-order paths both shards agree on). When the continuation
// starts its own first hop at U — again knowing its completion U+d —
// it posts the buffer release back to shard A at U+d (boundaryFreed),
// re-arming the boundary link. A delivered message whose onDelivered
// callback closes over another shard's state gets the same treatment:
// the final down-link hop posts the completion notice home at its
// start (carryBack). Every such signal therefore clears the lookahead
// with no slack to spare, and none needs rollback.
//
// Determinism: each directed boundary link serializes its hand-offs
// (the buffer reservation admits one in-flight message), and all
// cross-shard posts merge through the group's (time, source shard,
// sequence) order, so a sharded run dispatches identically to the
// serial one — CI diffs the two byte-for-byte.
//
// With tracing enabled the source shard would read message fields at
// hand-off completion while the far shard may already have delivered
// and recycled the shell (virtual times are ordered; wall-clock is
// not). Sharded builds therefore keep tracers disabled; the vorx
// subcommands that need tracing clamp to one shard.

import (
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// ConnectShards registers this fabric as shard self of a sharded
// simulation: shardOf maps every cluster to its owning shard and peers
// lists all shard fabrics (peers[self] == ic). Call once, before any
// traffic, on every shard's fabric. The fabrics' kernels must belong
// to one sim.Group whose pairwise lookahead is at most the cost
// model's HopFixed across every boundary cube link, in both directions
// — remoteArrive rides the hop forward and boundaryFreed rides it
// back, each with exactly one hop of slack. Non-adjacent shard pairs
// may carry wider promises (route-aware lookahead); they exchange no
// direct fabric signals.
func (ic *Interconnect) ConnectShards(self int, shardOf []int, peers []*Interconnect) {
	if ic.k.Group() == nil && len(peers) > 1 {
		panic("hpc: ConnectShards on a kernel outside a sim.Group")
	}
	if g := ic.k.Group(); g != nil && len(peers) > 1 {
		for c := 0; c < ic.topo.Clusters(); c++ {
			sc := shardOf[c]
			for _, nb := range ic.topo.Neighbors(topo.ClusterID(c)) {
				sn := shardOf[nb]
				if sc == sn {
					continue
				}
				if g.PairLookahead(sc, sn) > ic.costs.HopFixed ||
					g.PairLookahead(sn, sc) > ic.costs.HopFixed {
					panic("hpc: group lookahead across a boundary link exceeds the minimum cube-hop cost")
				}
			}
		}
	}
	ic.shardSelf = self
	ic.shardOf = shardOf
	ic.peers = peers
}

// sharded reports whether this fabric is one shard of several.
func (ic *Interconnect) sharded() bool { return len(ic.peers) > 1 }

// handoff ships a transfer whose next cube hop lands in a foreign
// shard's cluster. The transmission itself (duration dur, already
// charged with wire time and slowdown by tryStart) is simulated here
// on the owning shard; the arrival is posted to the destination shard
// at the completion time, which clears the lookahead because
// dur >= HopFixed. The local bookkeeping happens at the same virtual
// instant via handoffDone.
func (ic *Interconnect) handoff(l *link, t *transfer, dur sim.Duration) {
	doneAt := ic.k.Now().Add(dur)
	ic.stats.HandoffsOut++
	msg := t.msg
	origin := t.notifySh
	onDel := t.onDelivered
	t.onDelivered = nil
	dstShard := ic.shardOf[l.to]
	if onDel != nil {
		// A delivery notice posts home from the final shard with one
		// hop of slack (carryBack); under route-aware lookahead that
		// only clears the promise when the delivering shard and the
		// notice's home are boundary-adjacent. No sharded workload
		// sends cross-shard completion notices between distant shards
		// (only multicast produces them), so this is a declared
		// restriction like link faults, not a silent wrong answer.
		fin := ic.shardOf[ic.topo.AttachmentOf(msg.Dst).Cluster]
		if fin != int(origin) && ic.k.Group().PairLookahead(fin, int(origin)) > ic.costs.HopFixed {
			panic("hpc: cross-shard delivery notice between non-adjacent shards is not supported under route-aware lookahead; run multicast workloads on the serial kernel")
		}
	}
	peer := ic.peers[dstShard]
	from, to := l.from, l.to
	ic.k.Post(dstShard, doneAt, func() {
		peer.remoteArrive(from, to, msg, origin, onDel)
	})
	ic.k.At(doneAt, func() { l.handoffDone(t) })
}

// handoffDone is the source-shard half of a boundary hop's completion:
// identical to complete() except that the message's onward journey now
// belongs to the far shard, and the downstream buffer — owned here —
// stays reserved until the far shard's continuation vacates it.
func (l *link) handoffDone(t *transfer) {
	ic := l.ic
	l.busy = false
	l.busyTime += ic.k.Now().Sub(l.lastStart)
	l.count++
	if tr := ic.tracer; tr.Enabled() {
		tr.EmitSpan(trace.KHop, t.msg.Trace, "fabric", l.name, l.lastStart, msgDetail(t.msg))
	}
	if t.holder != nil {
		prev := t.holder
		prev.occ--
		ic.freed(prev, t.pos, t)
	} else if t.onLeftFirstBuffer != nil {
		t.onLeftFirstBuffer()
		t.onLeftFirstBuffer = nil
	}
	t.holder = nil
	t.doneHops = true
	t.released = true
	t.maybeRecycle()
}

// remoteArrive runs on the destination shard at the instant a boundary
// transmission over from→to completes: the message now sits in that
// link's downstream buffer, owned by the sending shard. A fresh
// transfer carries it the rest of the way along the canonical route;
// when its first onward hop starts — completion time in hand — the
// buffer release is posted back to the sender's shard.
func (ic *Interconnect) remoteArrive(from, to topo.ClusterID, msg *Message, origin int32, onDel func(*Message)) {
	ic.stats.HandoffsIn++
	t := ic.newTransfer()
	dstCluster := ic.topo.AttachmentOf(msg.Dst).Cluster
	t.links = append(t.links[:0], ic.cubePath(to, dstCluster)...)
	t.links = append(t.links, ic.dnLink[msg.Dst])
	t.msg = msg
	t.onDelivered = onDel
	t.notifySh = origin
	t.holder = nil
	srcShard := ic.shardOf[from]
	peer := ic.peers[srcShard]
	t.onFirstHopStart = func(doneAt sim.Time) {
		ic.k.Post(srcShard, doneAt, func() { peer.boundaryFreed(from, to) })
	}
	t.links[0].request(t)
}

// boundaryFreed runs on the shard owning cube link a→b when the far
// shard's continuation has fully vacated the link's downstream buffer:
// the link may transmit its next queued message.
func (ic *Interconnect) boundaryFreed(a, b topo.ClusterID) {
	l := ic.cubeLnk[[2]topo.ClusterID{a, b}]
	l.into.occ--
	l.tryStart()
}

// carryBack reroutes a delivered message's completion notice to the
// shard whose state the callback closes over, posted at the final
// hop's start for its completion time. The callback receives nil
// rather than the message: the shell's lifetime ends on the delivering
// shard, and every async sender treats the notice as a pure signal.
func (ic *Interconnect) carryBack(t *transfer, doneAt sim.Time) {
	onDel := t.onDelivered
	t.onDelivered = nil
	ic.k.Post(int(t.notifySh), doneAt, func() { onDel(nil) })
}
