// Package profiler is the prof-style flat execution profiler of paper
// §6.2: run on a process, it shows how execution time is divided
// among the different parts of the program, so the programmer can
// find the small section of code where most of the time goes and
// rewrite it.
//
// Programs mark their phases explicitly:
//
//	p := profiler.New()
//	stop := p.Enter(sp, "factor")
//	... compute ...
//	stop()
//
// Phases may nest (and overlap: stops need not come in LIFO order).
// Time is attributed two ways, like prof's self/cumulative split:
// self time counts only while a phase is the innermost open phase;
// cumulative time counts while it is open at any depth, with recursive
// re-entry counted once. Phases still open when Report runs are
// accounted up to the report instant rather than dropped.
//
// Report lists phases by descending share of self time.
package profiler

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/trace"
)

// Profile accumulates per-phase execution time for one process.
type Profile struct {
	name   string
	phases map[string]*phase
	stack  []*entry
	// lastSelf is the instant up to which self time has been credited
	// to the current stack top.
	lastSelf sim.Time
	// clock reads current virtual time; captured from the first Enter
	// so Report can close still-open phases.
	clock func() sim.Time

	tracer    *trace.Tracer
	traceNode string
}

type phase struct {
	name  string
	self  sim.Duration // innermost-open time
	cum   sim.Duration // open-at-any-depth time, recursion counted once
	calls int
	open  int      // current nesting depth
	since sim.Time // when open went 0 -> 1
}

type entry struct {
	ph    *phase
	start sim.Time
	done  bool
}

// New creates an empty profile.
func New(name string) *Profile {
	return &Profile{name: name, phases: map[string]*phase{}}
}

// SetTracer mirrors every completed phase into the unified event
// tracer as a KPhase span on node's "prof" lane.
func (p *Profile) SetTracer(tr *trace.Tracer, node string) {
	p.tracer = tr
	p.traceNode = node
}

func (p *Profile) phaseFor(name string) *phase {
	ph := p.phases[name]
	if ph == nil {
		ph = &phase{name: name}
		p.phases[name] = ph
	}
	return ph
}

// creditSelf attributes the self time since the last stack change to
// the innermost open phase.
func (p *Profile) creditSelf(now sim.Time) {
	if n := len(p.stack); n > 0 {
		p.stack[n-1].ph.self += now.Sub(p.lastSelf)
	}
	p.lastSelf = now
}

// Enter marks the start of a named phase on the subprocess; the
// returned stop function records the elapsed virtual time. Calling
// stop twice is harmless. Nested or repeated phases accumulate.
func (p *Profile) Enter(sp *kern.Subprocess, name string) (stop func()) {
	if p.clock == nil {
		p.clock = sp.Now
	}
	now := sp.Now()
	p.creditSelf(now)
	ph := p.phaseFor(name)
	if ph.open == 0 {
		ph.since = now
	}
	ph.open++
	e := &entry{ph: ph, start: now}
	p.stack = append(p.stack, e)
	return func() {
		if e.done {
			return
		}
		e.done = true
		end := sp.Now()
		p.creditSelf(end)
		for i := len(p.stack) - 1; i >= 0; i-- {
			if p.stack[i] == e {
				p.stack = append(p.stack[:i], p.stack[i+1:]...)
				break
			}
		}
		ph.open--
		if ph.open == 0 {
			ph.cum += end.Sub(ph.since)
		}
		ph.calls++
		p.tracer.EmitSpan(trace.KPhase, 0, p.traceNode, "prof", e.start, name)
	}
}

// Add records d against a phase directly (for interrupt-level code
// with no subprocess context). Direct samples are flat: self and
// cumulative both advance by d.
func (p *Profile) Add(name string, d sim.Duration) {
	ph := p.phaseFor(name)
	ph.self += d
	ph.cum += d
	ph.calls++
}

// now returns the report instant: the captured clock, or the last
// stack-change instant when no subprocess was ever seen.
func (p *Profile) now() sim.Time {
	if p.clock != nil {
		return p.clock()
	}
	return p.lastSelf
}

// snapshot returns self/cum for a phase with any still-open time
// accounted up to now, without mutating the profile.
func (ph *phase) snapshot(now sim.Time, innermost bool, lastSelf sim.Time) (self, cum sim.Duration) {
	self, cum = ph.self, ph.cum
	if innermost {
		self += now.Sub(lastSelf)
	}
	if ph.open > 0 {
		cum += now.Sub(ph.since)
	}
	return self, cum
}

func (p *Profile) snapshots() (map[string][2]sim.Duration, sim.Duration) {
	now := p.now()
	var top *phase
	if n := len(p.stack); n > 0 {
		top = p.stack[n-1].ph
	}
	out := make(map[string][2]sim.Duration, len(p.phases))
	var total sim.Duration
	for name, ph := range p.phases {
		self, cum := ph.snapshot(now, ph == top, p.lastSelf)
		out[name] = [2]sim.Duration{self, cum}
		total += self
	}
	return out, total
}

// Total returns the accumulated self time across all phases — the
// wall time actually accounted, with no double counting under nesting.
func (p *Profile) Total() sim.Duration {
	_, total := p.snapshots()
	return total
}

// Phase returns the cumulative time for one phase (open time counted
// up to now).
func (p *Profile) Phase(name string) sim.Duration {
	snaps, _ := p.snapshots()
	return snaps[name][1]
}

// Self returns the self (innermost-open) time for one phase.
func (p *Profile) Self(name string) sim.Duration {
	snaps, _ := p.snapshots()
	return snaps[name][0]
}

// Hottest returns the phase with the most cumulative time.
func (p *Profile) Hottest() (string, sim.Duration) {
	snaps, _ := p.snapshots()
	best, bestD := "", sim.Duration(-1)
	for name, sc := range snaps {
		if sc[1] > bestD || (sc[1] == bestD && name < best) {
			best, bestD = name, sc[1]
		}
	}
	if best == "" {
		return "", 0
	}
	return best, bestD
}

// Report writes the flat profile, hottest (by self time) first.
// Percentages are shares of total self time, so they sum to 100 even
// when phases nest.
func (p *Profile) Report(w io.Writer) {
	snaps, total := p.snapshots()
	fmt.Fprintf(w, "prof: %s — %v accounted\n", p.name, total)
	fmt.Fprintf(w, "%7s %10s %10s %8s  %s\n", "%time", "self", "cum", "calls", "name")
	type row struct {
		name      string
		self, cum sim.Duration
		calls     int
		open      int
	}
	var list []row
	for name, ph := range p.phases {
		sc := snaps[name]
		list = append(list, row{name: name, self: sc[0], cum: sc[1], calls: ph.calls, open: ph.open})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].self != list[j].self {
			return list[i].self > list[j].self
		}
		return list[i].name < list[j].name
	})
	for _, r := range list {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.self) / float64(total)
		}
		mark := ""
		if r.open > 0 {
			mark = " (open)"
		}
		fmt.Fprintf(w, "%6.1f%% %10v %10v %8d  %s%s\n", pct, r.self, r.cum, r.calls, r.name, mark)
	}
}

// String renders the report.
func (p *Profile) String() string {
	var b strings.Builder
	p.Report(&b)
	return b.String()
}
