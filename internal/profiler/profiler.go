// Package profiler is the prof-style flat execution profiler of paper
// §6.2: run on a process, it shows how execution time is divided
// among the different parts of the program, so the programmer can
// find the small section of code where most of the time goes and
// rewrite it.
//
// Programs mark their phases explicitly:
//
//	p := profiler.New()
//	stop := p.Enter(sp, "factor")
//	... compute ...
//	stop()
//
// Report lists phases by descending share of accounted time.
package profiler

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

// Profile accumulates per-phase execution time for one process.
type Profile struct {
	name   string
	phases map[string]*phase
}

type phase struct {
	name  string
	total sim.Duration
	calls int
}

// New creates an empty profile.
func New(name string) *Profile {
	return &Profile{name: name, phases: map[string]*phase{}}
}

// Enter marks the start of a named phase on the subprocess; the
// returned stop function records the elapsed virtual time. Nested or
// repeated phases accumulate.
func (p *Profile) Enter(sp *kern.Subprocess, name string) (stop func()) {
	start := sp.Now()
	return func() {
		ph := p.phases[name]
		if ph == nil {
			ph = &phase{name: name}
			p.phases[name] = ph
		}
		ph.total += sp.Now().Sub(start)
		ph.calls++
	}
}

// Add records d against a phase directly (for interrupt-level code
// with no subprocess context).
func (p *Profile) Add(name string, d sim.Duration) {
	ph := p.phases[name]
	if ph == nil {
		ph = &phase{name: name}
		p.phases[name] = ph
	}
	ph.total += d
	ph.calls++
}

// Total returns the accumulated time across all phases.
func (p *Profile) Total() sim.Duration {
	var t sim.Duration
	for _, ph := range p.phases {
		t += ph.total
	}
	return t
}

// Phase returns the accumulated time for one phase.
func (p *Profile) Phase(name string) sim.Duration {
	if ph := p.phases[name]; ph != nil {
		return ph.total
	}
	return 0
}

// Hottest returns the phase with the most accumulated time.
func (p *Profile) Hottest() (string, sim.Duration) {
	var best *phase
	for _, ph := range p.phases {
		if best == nil || ph.total > best.total ||
			(ph.total == best.total && ph.name < best.name) {
			best = ph
		}
	}
	if best == nil {
		return "", 0
	}
	return best.name, best.total
}

// Report writes the flat profile, hottest phase first.
func (p *Profile) Report(w io.Writer) {
	total := p.Total()
	fmt.Fprintf(w, "prof: %s — %v accounted\n", p.name, total)
	fmt.Fprintf(w, "%7s %10s %8s  %s\n", "%time", "total", "calls", "name")
	var list []*phase
	for _, ph := range p.phases {
		list = append(list, ph)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].total != list[j].total {
			return list[i].total > list[j].total
		}
		return list[i].name < list[j].name
	})
	for _, ph := range list {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(ph.total) / float64(total)
		}
		fmt.Fprintf(w, "%6.1f%% %10v %8d  %s\n", pct, ph.total, ph.calls, ph.name)
	}
}

// String renders the report.
func (p *Profile) String() string {
	var b strings.Builder
	p.Report(&b)
	return b.String()
}
