package profiler_test

import (
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/profiler"
	"hpcvorx/internal/sim"
)

func TestPhaseAccounting(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New("app")
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		stop := p.Enter(sp, "setup")
		sp.Compute(sim.Milliseconds(1))
		stop()
		for i := 0; i < 3; i++ {
			stop := p.Enter(sp, "solve")
			sp.Compute(sim.Milliseconds(3))
			stop()
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Phase("solve"); got != sim.Milliseconds(9) {
		t.Fatalf("solve = %v", got)
	}
	if got := p.Phase("setup"); got < sim.Milliseconds(1) {
		t.Fatalf("setup = %v", got)
	}
	name, d := p.Hottest()
	if name != "solve" || d != sim.Milliseconds(9) {
		t.Fatalf("hottest = %s %v", name, d)
	}
}

func TestReportOrderAndPercentages(t *testing.T) {
	p := profiler.New("x")
	p.Add("small", sim.Milliseconds(1))
	p.Add("big", sim.Milliseconds(9))
	out := p.String()
	bigIdx := strings.Index(out, "big")
	smallIdx := strings.Index(out, "small")
	if bigIdx < 0 || smallIdx < 0 || bigIdx > smallIdx {
		t.Fatalf("hottest-first ordering broken:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") || !strings.Contains(out, "10.0%") {
		t.Fatalf("percentages missing:\n%s", out)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := profiler.New("empty")
	if p.Total() != 0 {
		t.Fatal("empty total nonzero")
	}
	if name, _ := p.Hottest(); name != "" {
		t.Fatalf("hottest of empty = %q", name)
	}
	if !strings.Contains(p.String(), "empty") {
		t.Fatal("report should carry the profile name")
	}
}

// TestNestedPhasesSplitSelfAndCumulative is the regression test for
// the nested-Enter fix: an outer phase wrapping an inner one must not
// double-count the inner time in the total, and self/cumulative must
// be reported separately.
func TestNestedPhasesSplitSelfAndCumulative(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New("nested")
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		sp.Compute(sim.Milliseconds(1)) // absorb the initial context switch
		stopOuter := p.Enter(sp, "outer")
		sp.Compute(sim.Milliseconds(2))
		stopInner := p.Enter(sp, "inner")
		sp.Compute(sim.Milliseconds(6))
		stopInner()
		sp.Compute(sim.Milliseconds(2))
		stopOuter()
		stopOuter() // double stop must be harmless
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Self("outer"); got != sim.Milliseconds(4) {
		t.Fatalf("outer self = %v, want 4ms", got)
	}
	if got := p.Phase("outer"); got != sim.Milliseconds(10) {
		t.Fatalf("outer cum = %v, want 10ms", got)
	}
	if got := p.Self("inner"); got != sim.Milliseconds(6) {
		t.Fatalf("inner self = %v, want 6ms", got)
	}
	if got := p.Total(); got != sim.Milliseconds(10) {
		t.Fatalf("total = %v, want 10ms (no double counting)", got)
	}
	out := p.String()
	if !strings.Contains(out, "self") || !strings.Contains(out, "cum") {
		t.Fatalf("report lacks self/cum columns:\n%s", out)
	}
}

// TestOverlappingStops covers non-LIFO stop order: A enters, B enters,
// A stops, B stops. Both phases must account their full open window.
func TestOverlappingStops(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New("overlap")
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		sp.Compute(sim.Milliseconds(1)) // absorb the initial context switch
		stopA := p.Enter(sp, "A")
		sp.Compute(sim.Milliseconds(1))
		stopB := p.Enter(sp, "B")
		sp.Compute(sim.Milliseconds(1))
		stopA()
		sp.Compute(sim.Milliseconds(1))
		stopB()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Phase("A"); got != sim.Milliseconds(2) {
		t.Fatalf("A cum = %v, want 2ms", got)
	}
	if got := p.Phase("B"); got != sim.Milliseconds(2) {
		t.Fatalf("B cum = %v, want 2ms", got)
	}
	if got := p.Total(); got != sim.Milliseconds(3) {
		t.Fatalf("total = %v, want 3ms", got)
	}
}

// TestRecursiveReentryCountedOnce: re-entering an open phase must not
// double its cumulative time.
func TestRecursiveReentryCountedOnce(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New("rec")
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		sp.Compute(sim.Milliseconds(1)) // absorb the initial context switch
		stop1 := p.Enter(sp, "fib")
		sp.Compute(sim.Milliseconds(1))
		stop2 := p.Enter(sp, "fib")
		sp.Compute(sim.Milliseconds(3))
		stop2()
		sp.Compute(sim.Milliseconds(1))
		stop1()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Phase("fib"); got != sim.Milliseconds(5) {
		t.Fatalf("fib cum = %v, want 5ms (recursion counted once)", got)
	}
	if got := p.Self("fib"); got != sim.Milliseconds(5) {
		t.Fatalf("fib self = %v, want 5ms", got)
	}
}

// TestOpenPhaseAccountedAtReport: a phase never stopped still shows
// its time up to the report instant instead of vanishing.
func TestOpenPhaseAccountedAtReport(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New("open")
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		p.Enter(sp, "forever") // stop intentionally discarded
		sp.Compute(sim.Milliseconds(7))
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Phase("forever"); got < sim.Milliseconds(7) {
		t.Fatalf("open phase cum = %v, want >= 7ms", got)
	}
	if got := p.Total(); got < sim.Milliseconds(7) {
		t.Fatalf("open phase total = %v, want >= 7ms", got)
	}
	if !strings.Contains(p.String(), "(open)") {
		t.Fatalf("report should mark open phases:\n%s", p.String())
	}
}

func TestTypicalHotSpotDominates(t *testing.T) {
	// §6.2: "Typically one finds that a large portion of the
	// execution time is spent in a small section of the code."
	p := profiler.New("hot")
	p.Add("inner-loop", sim.Milliseconds(80))
	p.Add("io", sim.Milliseconds(15))
	p.Add("init", sim.Milliseconds(5))
	name, d := p.Hottest()
	if name != "inner-loop" || float64(d)/float64(p.Total()) < 0.75 {
		t.Fatalf("hottest = %s (%.2f)", name, float64(d)/float64(p.Total()))
	}
}
