package profiler_test

import (
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/profiler"
	"hpcvorx/internal/sim"
)

func TestPhaseAccounting(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New("app")
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		stop := p.Enter(sp, "setup")
		sp.Compute(sim.Milliseconds(1))
		stop()
		for i := 0; i < 3; i++ {
			stop := p.Enter(sp, "solve")
			sp.Compute(sim.Milliseconds(3))
			stop()
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Phase("solve"); got != sim.Milliseconds(9) {
		t.Fatalf("solve = %v", got)
	}
	if got := p.Phase("setup"); got < sim.Milliseconds(1) {
		t.Fatalf("setup = %v", got)
	}
	name, d := p.Hottest()
	if name != "solve" || d != sim.Milliseconds(9) {
		t.Fatalf("hottest = %s %v", name, d)
	}
}

func TestReportOrderAndPercentages(t *testing.T) {
	p := profiler.New("x")
	p.Add("small", sim.Milliseconds(1))
	p.Add("big", sim.Milliseconds(9))
	out := p.String()
	bigIdx := strings.Index(out, "big")
	smallIdx := strings.Index(out, "small")
	if bigIdx < 0 || smallIdx < 0 || bigIdx > smallIdx {
		t.Fatalf("hottest-first ordering broken:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") || !strings.Contains(out, "10.0%") {
		t.Fatalf("percentages missing:\n%s", out)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := profiler.New("empty")
	if p.Total() != 0 {
		t.Fatal("empty total nonzero")
	}
	if name, _ := p.Hottest(); name != "" {
		t.Fatalf("hottest of empty = %q", name)
	}
	if !strings.Contains(p.String(), "empty") {
		t.Fatal("report should carry the profile name")
	}
}

func TestTypicalHotSpotDominates(t *testing.T) {
	// §6.2: "Typically one finds that a large portion of the
	// execution time is spent in a small section of the code."
	p := profiler.New("hot")
	p.Add("inner-loop", sim.Milliseconds(80))
	p.Add("io", sim.Milliseconds(15))
	p.Add("init", sim.Milliseconds(5))
	name, d := p.Hottest()
	if name != "inner-loop" || float64(d)/float64(p.Total()) < 0.75 {
		t.Fatalf("hottest = %s (%.2f)", name, float64(d)/float64(p.Total()))
	}
}
