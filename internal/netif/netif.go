// Package netif is the VORX communications driver: it connects a
// node's kernel (package kern) to its HPC port (package hpc) and
// demultiplexes incoming messages to registered services — the channel
// protocol, the object manager, host stubs, and user-defined
// communications objects all receive their traffic through one
// interface.
//
// Each arriving message raises an interrupt on the node; the service's
// declared ISR cost (interrupt entry plus whatever reading the message
// out of the input section takes) is charged to the node's CPU before
// the handler body runs, and the hardware input section is released at
// that point — the VORX kernel "reads in messages immediately when
// they arrive" (paper §2), which is what keeps the fabric deadlock
// free.
package netif

import (
	"fmt"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Envelope is the payload wrapper that names the destination service.
type Envelope struct {
	Service string
	Body    any
}

// fenceService is the driver-internal service that distributes
// incarnation fences. A fence note names a target endpoint and the
// minimum acceptable incarnation; a machine receiving a note about
// *itself* has been declared dead by the supervisor and reboots under
// the floor, killing its zombie subprocesses.
const fenceService = "netif.fence"

// FenceNoteBytes is the wire size of a fence note.
const FenceNoteBytes = 16

// fenceISR is the interrupt-level cost of absorbing a fence note.
const fenceISR = 4 * sim.Microsecond

// selfFenceReboot is the cold-boot delay a self-fencing machine pays
// between crashing its zombie state and coming back under the floor.
const selfFenceReboot = 1 * sim.Millisecond

type fenceNote struct {
	Target topo.EndpointID
	Min    uint32
}

// Verifier observes frame-level accept/refuse decisions; the chaos
// harness's invariant checker implements it. Nil when unused — the
// hooks cost one predicate each.
type Verifier interface {
	// FrameAccepted fires for every frame handed to a registered
	// service on dst.
	FrameAccepted(dst, src topo.EndpointID, inc uint32, service string)
	// FrameRefused fires for every frame dropped by an incarnation
	// fence (the frame's inc was below the floor min for src).
	FrameRefused(dst, src topo.EndpointID, inc, min uint32, service string)
}

// Service handles one class of incoming messages.
type Service struct {
	// Cost returns the interrupt-level CPU time needed to accept the
	// message (excluding the fixed interrupt entry, which netif adds).
	// Ignored when NoInterrupt is set.
	Cost func(m *hpc.Message) sim.Duration
	// BatchCost, when non-nil, is the cost of absorbing the message as
	// a non-first member of a coalesced interrupt batch: the protocol
	// entry work is done once per batch, so riders pay only their
	// per-message copy. Nil falls back to Cost. Unused unless
	// coalescing is enabled.
	BatchCost func(m *hpc.Message) sim.Duration
	// Handle runs at interrupt level after Cost has elapsed. It must
	// not block; wake a subprocess for long work.
	Handle func(m *hpc.Message)
	// NoInterrupt delivers without raising a CPU interrupt: the
	// message is handed to HandleRaw (with its hardware Delivery, so
	// the handler controls when the input section frees) and costs
	// nothing — the receiving program polls for it (paper §5:
	// "communications interrupts are disabled and user-defined
	// objects are used to test for input at convenient places").
	NoInterrupt bool
	// HandleRaw is used instead of Handle when NoInterrupt is set.
	HandleRaw func(d *hpc.Delivery)
}

// IF is one node's network interface.
type IF struct {
	node     *kern.Node
	ic       *hpc.Interconnect
	ep       topo.EndpointID
	services map[string]Service
	trace    *MsgTrace

	// pending holds deliveries accepted from the fabric but not yet
	// released (their interrupt has not run). Released en masse if the
	// node crashes, so a dead node never wedges the interconnect.
	pending []*hpc.Delivery

	// Receive-interrupt coalescing (the pipelined profile): deliveries
	// landing at the same virtual instant — or within coalesceHorizon of
	// the first — are drained by one interrupt, charged a single
	// interrupt-entry cost plus every message's per-copy cost.
	coalesce        bool
	coalesceHorizon sim.Duration
	batch           []batchEntry
	batchArmed      bool
	batchPending    bool
	batchTimer      sim.Timer

	// CoalescedIntr counts deliveries that rode an already-armed batch
	// interrupt instead of raising their own.
	CoalescedIntr int

	// Dropped counts messages that arrived for an unregistered
	// service (a programming error in the simulated application).
	Dropped int
	// DroppedDead counts messages drained because this node was
	// crashed — the hardware input section auto-frees, the software
	// never sees them.
	DroppedDead int
	// AsyncDropped counts asynchronous sends abandoned because link
	// failures made the destination unreachable.
	AsyncDropped int

	// Incarnation fencing (PR 6). fences maps a source endpoint to the
	// minimum incarnation this interface still accepts from it; frames
	// stamped below the floor are refused before any service sees them
	// and the sender is told to reboot.
	fences map[topo.EndpointID]uint32
	// FencedDrops counts frames refused by an incarnation fence.
	FencedDrops int
	// SelfFences counts reboots forced by a fence note naming this
	// machine.
	SelfFences int

	// Gray degradation (PR 6): a flaky-but-alive receiver. graySlow
	// multiplies every ISR service cost; grayDrop, when non-nil, is
	// consulted per arriving frame and true means the frame vanishes
	// as if the NIC lost it.
	graySlow float64
	grayDrop func(m *hpc.Message) bool
	// GrayDropped counts frames lost to gray degradation.
	GrayDropped int

	verifier Verifier
}

// Attach wires node to endpoint ep of ic and returns the interface.
func Attach(node *kern.Node, ic *hpc.Interconnect, ep topo.EndpointID) *IF {
	f := &IF{node: node, ic: ic, ep: ep, services: make(map[string]Service)}
	node.OnCrash(func() {
		// The crash discarded the queued ISRs (kern nils the interrupt
		// queue), so this is the last reference to these messages.
		for _, d := range f.pending {
			f.DroppedDead++
			msg := d.Msg
			d.Release()
			ic.FreeMessage(msg)
		}
		f.pending = nil
		// Batched messages were already read out of the hardware; the
		// crash discards them before their drain interrupt ran.
		for _, e := range f.batch {
			f.DroppedDead++
			ic.FreeMessage(e.msg)
		}
		f.batch = nil
		f.batchArmed = false
		f.batchPending = false
		f.batchTimer.Stop()
	})
	f.services[fenceService] = Service{
		Cost:   func(*hpc.Message) sim.Duration { return fenceISR },
		Handle: f.handleFenceNote,
	}
	ic.SetDeliver(ep, func(d *hpc.Delivery) {
		if node.Crashed() {
			f.DroppedDead++
			msg := d.Msg
			d.Release()
			ic.FreeMessage(msg)
			return
		}
		if f.grayDrop != nil && f.grayDrop(d.Msg) {
			f.GrayDropped++
			msg := d.Msg
			d.Release()
			ic.FreeMessage(msg)
			return
		}
		if len(f.fences) > 0 {
			if min := f.fences[d.Msg.Src]; min > 0 && d.Msg.Inc < min {
				f.refuse(d, min)
				return
			}
		}
		env, ok := d.Msg.Payload.(Envelope)
		if !ok {
			f.Dropped++
			d.Release()
			return
		}
		if f.trace != nil {
			f.trace.record(TraceRecord{
				At: f.node.Kernel().Now(), Src: d.Msg.Src, Dst: d.Msg.Dst,
				Service: env.Service, Size: d.Msg.Size,
			})
		}
		svc, ok := f.services[env.Service]
		if !ok {
			f.Dropped++
			msg := d.Msg
			d.Release()
			ic.FreeMessage(msg)
			return
		}
		if v := f.verifier; v != nil {
			v.FrameAccepted(f.ep, d.Msg.Src, d.Msg.Inc, env.Service)
		}
		node.Tracer().Emit(trace.KService, d.Msg.Trace, node.Name(), "svc/"+env.Service,
			fmt.Sprintf("%dB from %d", d.Msg.Size, d.Msg.Src))
		if svc.NoInterrupt {
			// Raw deliveries hand the Delivery to the service, which
			// owns releasing it; they are not crash-tracked.
			svc.HandleRaw(d)
			return
		}
		msg := d.Msg
		if f.coalesce {
			// The driver reads the message out of the input section
			// immediately (freeing the hardware so the next fragment of
			// a train can land) and queues it for one batch interrupt.
			// While a drain is already queued or running the arrival
			// simply joins the accumulating batch — the drain chains
			// into it when it finishes, with no horizon wait.
			d.Release()
			f.batch = append(f.batch, batchEntry{msg: msg, svc: svc})
			if tr := node.Tracer(); tr.Enabled() {
				tr.GaugeSet("netif.batch."+node.Name(), float64(len(f.batch)))
			}
			if !f.batchArmed && !f.batchPending {
				f.batchArmed = true
				f.batchTimer = node.Kernel().After(f.coalesceHorizon, f.fireBatch)
			}
			return
		}
		f.pending = append(f.pending, d)
		if tr := node.Tracer(); tr.Enabled() {
			tr.GaugeSet("netif.pending."+node.Name(), float64(len(f.pending)))
		}
		node.Interrupt(f.isrCost(svc.Cost(msg)), func() {
			f.unpend(d)
			d.Release() // message has been read out of the input section
			svc.Handle(msg)
			// Handlers copy what they need out of the message before
			// returning (they model the ISR's read-out), so an
			// arena-born shell can go back for reuse here.
			ic.FreeMessage(msg)
		})
	})
	return f
}

// batchEntry is one read-out message awaiting a coalesced drain.
type batchEntry struct {
	msg *hpc.Message
	svc Service
}

// SetCoalesce enables receive-interrupt coalescing: deliveries that
// land while a batch interrupt is armed join it instead of raising
// their own. horizon is how long the first delivery of a batch waits
// for company; 0 coalesces only back-to-back deliveries at the same
// virtual instant. The batch is charged one interrupt entry plus each
// message's per-copy service cost, and messages are handled in arrival
// order — FIFO is preserved.
func (f *IF) SetCoalesce(horizon sim.Duration) {
	f.coalesce = true
	f.coalesceHorizon = horizon
}

// fireBatch raises the single interrupt that drains the armed batch.
func (f *IF) fireBatch() {
	f.batchArmed = false
	entries := f.batch
	f.batch = nil
	if tr := f.node.Tracer(); tr.Enabled() && len(entries) > 0 {
		tr.GaugeSet("netif.batch."+f.node.Name(), 0)
	}
	if len(entries) == 0 || f.node.Crashed() {
		return
	}
	if n := len(entries) - 1; n > 0 {
		f.CoalescedIntr += n
		f.node.Tracer().Count("netif.intr.coalesced", float64(n))
	}
	// First message pays the full ISR service cost (the protocol entry
	// work runs once per batch); riders pay only their per-message copy.
	cost := entries[0].svc.Cost(entries[0].msg)
	for _, e := range entries[1:] {
		if e.svc.BatchCost != nil {
			cost += e.svc.BatchCost(e.msg)
		} else {
			cost += e.svc.Cost(e.msg)
		}
	}
	f.batchPending = true
	f.node.Interrupt(f.isrCost(cost), func() {
		for _, e := range entries {
			e.svc.Handle(e.msg)
			f.ic.FreeMessage(e.msg)
		}
		f.batchPending = false
		// Arrivals that landed while this drain was queued or running
		// chain straight into the next one, like an ISR re-scanning the
		// ring before returning.
		if len(f.batch) > 0 {
			f.fireBatch()
		}
	})
}

// isrCost scales an ISR cost by the gray slow-down factor (identity
// when the node is not gray).
func (f *IF) isrCost(d sim.Duration) sim.Duration {
	if f.graySlow > 1 {
		return sim.Duration(float64(d) * f.graySlow)
	}
	return d
}

// SetGray makes the receive side flaky: slow (> 1) multiplies every
// ISR service cost, and drop — when non-nil — is consulted per
// arriving frame; true loses the frame silently. SetGray(0, nil)
// restores a healthy interface. The fault engine drives this with a
// seeded per-node generator so gray runs stay deterministic.
func (f *IF) SetGray(slow float64, drop func(m *hpc.Message) bool) {
	f.graySlow = slow
	f.grayDrop = drop
}

// Gray reports whether the interface is currently degraded.
func (f *IF) Gray() bool { return f.graySlow > 1 || f.grayDrop != nil }

// SetVerifier installs the invariant checker's frame observer (nil to
// remove).
func (f *IF) SetVerifier(v Verifier) { f.verifier = v }

// Fence refuses future frames from src stamped with an incarnation
// below min. Raising an existing floor is allowed; lowering is a no-op
// (fences only tighten).
func (f *IF) Fence(src topo.EndpointID, min uint32) {
	if f.fences == nil {
		f.fences = make(map[topo.EndpointID]uint32)
	}
	if f.fences[src] < min {
		f.fences[src] = min
	}
}

// FenceFloor returns the minimum incarnation accepted from src (0 when
// unfenced).
func (f *IF) FenceFloor(src topo.EndpointID) uint32 { return f.fences[src] }

// SendFenceNote ships a fence note to the machine at dst: "refuse
// frames from target stamped below min" — or, when dst is target
// itself, "you are fenced; reboot". The supervisor broadcasts these
// when it confirms a death with fencing enabled.
func (f *IF) SendFenceNote(dst, target topo.EndpointID, min uint32) {
	f.SendAsync(dst, fenceService, FenceNoteBytes, fenceNote{Target: target, Min: min}, nil)
}

// refuse drops a fenced frame and tells the stale sender to reboot.
func (f *IF) refuse(d *hpc.Delivery, min uint32) {
	msg := d.Msg
	f.FencedDrops++
	svcName := ""
	if env, ok := msg.Payload.(Envelope); ok {
		svcName = env.Service
	}
	f.node.Tracer().Emit(trace.KFence, msg.Trace, f.node.Name(), "svc/"+fenceService,
		fmt.Sprintf("refused %s inc %d < %d from %d", svcName, msg.Inc, min, msg.Src))
	if v := f.verifier; v != nil {
		v.FrameRefused(f.ep, msg.Src, msg.Inc, min, svcName)
	}
	src := msg.Src
	d.Release()
	f.ic.FreeMessage(msg)
	// Answer every refused frame with a note (like a RST): the zombie
	// may be unreachable when the fence is installed, so the note that
	// finally lands is the one riding its first post-heal retransmit.
	f.SendAsync(src, fenceService, FenceNoteBytes, fenceNote{Target: src, Min: min}, nil)
}

// handleFenceNote processes a fence note: notes about other machines
// install the floor locally (supervisor broadcast); a note naming this
// machine means the cluster has moved on without it — crash the zombie
// state and cold-boot under the floor.
func (f *IF) handleFenceNote(m *hpc.Message) {
	note, ok := m.Payload.(Envelope).Body.(fenceNote)
	if !ok {
		return
	}
	if note.Target != f.ep {
		f.Fence(note.Target, note.Min)
		return
	}
	if note.Min <= f.node.Incarnation() {
		return // already rebooted past the floor
	}
	f.SelfFences++
	f.node.Tracer().Emit(trace.KFence, 0, f.node.Name(), "cpu",
		fmt.Sprintf("self-fence: reboot to inc >= %d", note.Min))
	min := note.Min
	f.node.Crash()
	f.node.Kernel().After(selfFenceReboot, func() { f.node.RestartAt(min) })
}

// unpend forgets a delivery that has been read out of the hardware.
func (f *IF) unpend(d *hpc.Delivery) {
	for i, p := range f.pending {
		if p == d {
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			if tr := f.node.Tracer(); tr.Enabled() {
				tr.GaugeSet("netif.pending."+f.node.Name(), float64(len(f.pending)))
			}
			return
		}
	}
}

// Node returns the attached kernel node.
func (f *IF) Node() *kern.Node { return f.node }

// Interconnect returns the attached fabric.
func (f *IF) Interconnect() *hpc.Interconnect { return f.ic }

// Endpoint returns this interface's endpoint id.
func (f *IF) Endpoint() topo.EndpointID { return f.ep }

// Register installs the handler for a service name. Registering the
// same name twice panics: it is a wiring bug.
func (f *IF) Register(name string, svc Service) {
	if _, dup := f.services[name]; dup {
		panic(fmt.Sprintf("netif: service %q registered twice on %s", name, f.node.Name()))
	}
	f.services[name] = svc
}

// Send transmits an Envelope-wrapped message, blocking the subprocess
// until the output section accepts it. size is the wire size in bytes
// (headers included). No CPU is charged here: callers model their own
// protocol costs.
func (f *IF) Send(sp *kern.Subprocess, dst topo.EndpointID, service string, size int, body any) error {
	return f.SendCtx(sp, 0, dst, service, size, body)
}

// SendCtx is Send carrying an explicit trace ID (0 for untraced), so a
// protocol layer can thread one causal ID through every wire message a
// logical operation produces.
func (f *IF) SendCtx(sp *kern.Subprocess, tid uint64, dst topo.EndpointID, service string, size int, body any) error {
	m := f.ic.AllocMessage()
	m.Src, m.Dst, m.Size = f.ep, dst, size
	m.Payload = Envelope{Service: service, Body: body}
	m.Tag = service
	m.Trace = tid
	m.Inc = f.node.Incarnation()
	if err := f.ic.Send(sp.Proc(), m, nil); err != nil {
		f.ic.FreeMessage(m) // never entered the fabric
		return err
	}
	return nil
}

// SendAsync transmits from interrupt or event context: if the output
// section is full the send is retried on the room-available interrupt.
// onDelivered may be nil.
func (f *IF) SendAsync(dst topo.EndpointID, service string, size int, body any, onDelivered func()) {
	f.SendAsyncCtx(0, dst, service, size, body, onDelivered)
}

// SendAsyncCtx is SendAsync carrying an explicit trace ID (0 for
// untraced).
func (f *IF) SendAsyncCtx(tid uint64, dst topo.EndpointID, service string, size int, body any, onDelivered func()) {
	msg := f.ic.AllocMessage()
	msg.Src, msg.Dst, msg.Size = f.ep, dst, size
	msg.Payload = Envelope{Service: service, Body: body}
	msg.Tag = service
	msg.Trace = tid
	msg.Inc = f.node.Incarnation()
	var cb func(*hpc.Message)
	if onDelivered != nil {
		cb = func(*hpc.Message) { onDelivered() }
	}
	var try func()
	try = func() {
		ok, err := f.ic.TrySend(msg, cb)
		if err != nil {
			// Unreachable (partitioned) or oversize: drop. End-to-end
			// recovery — channel timeouts, peer-death — is the caller's
			// protocol layer's job.
			f.AsyncDropped++
			f.ic.FreeMessage(msg)
			return
		}
		if !ok {
			f.ic.NotifyRoom(f.ep, try)
		}
	}
	try()
}
