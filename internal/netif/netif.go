// Package netif is the VORX communications driver: it connects a
// node's kernel (package kern) to its HPC port (package hpc) and
// demultiplexes incoming messages to registered services — the channel
// protocol, the object manager, host stubs, and user-defined
// communications objects all receive their traffic through one
// interface.
//
// Each arriving message raises an interrupt on the node; the service's
// declared ISR cost (interrupt entry plus whatever reading the message
// out of the input section takes) is charged to the node's CPU before
// the handler body runs, and the hardware input section is released at
// that point — the VORX kernel "reads in messages immediately when
// they arrive" (paper §2), which is what keeps the fabric deadlock
// free.
package netif

import (
	"fmt"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Envelope is the payload wrapper that names the destination service.
type Envelope struct {
	Service string
	Body    any
}

// Service handles one class of incoming messages.
type Service struct {
	// Cost returns the interrupt-level CPU time needed to accept the
	// message (excluding the fixed interrupt entry, which netif adds).
	// Ignored when NoInterrupt is set.
	Cost func(m *hpc.Message) sim.Duration
	// BatchCost, when non-nil, is the cost of absorbing the message as
	// a non-first member of a coalesced interrupt batch: the protocol
	// entry work is done once per batch, so riders pay only their
	// per-message copy. Nil falls back to Cost. Unused unless
	// coalescing is enabled.
	BatchCost func(m *hpc.Message) sim.Duration
	// Handle runs at interrupt level after Cost has elapsed. It must
	// not block; wake a subprocess for long work.
	Handle func(m *hpc.Message)
	// NoInterrupt delivers without raising a CPU interrupt: the
	// message is handed to HandleRaw (with its hardware Delivery, so
	// the handler controls when the input section frees) and costs
	// nothing — the receiving program polls for it (paper §5:
	// "communications interrupts are disabled and user-defined
	// objects are used to test for input at convenient places").
	NoInterrupt bool
	// HandleRaw is used instead of Handle when NoInterrupt is set.
	HandleRaw func(d *hpc.Delivery)
}

// IF is one node's network interface.
type IF struct {
	node     *kern.Node
	ic       *hpc.Interconnect
	ep       topo.EndpointID
	services map[string]Service
	trace    *MsgTrace

	// pending holds deliveries accepted from the fabric but not yet
	// released (their interrupt has not run). Released en masse if the
	// node crashes, so a dead node never wedges the interconnect.
	pending []*hpc.Delivery

	// Receive-interrupt coalescing (the pipelined profile): deliveries
	// landing at the same virtual instant — or within coalesceHorizon of
	// the first — are drained by one interrupt, charged a single
	// interrupt-entry cost plus every message's per-copy cost.
	coalesce        bool
	coalesceHorizon sim.Duration
	batch           []batchEntry
	batchArmed      bool
	batchPending    bool
	batchTimer      sim.Timer

	// CoalescedIntr counts deliveries that rode an already-armed batch
	// interrupt instead of raising their own.
	CoalescedIntr int

	// Dropped counts messages that arrived for an unregistered
	// service (a programming error in the simulated application).
	Dropped int
	// DroppedDead counts messages drained because this node was
	// crashed — the hardware input section auto-frees, the software
	// never sees them.
	DroppedDead int
	// AsyncDropped counts asynchronous sends abandoned because link
	// failures made the destination unreachable.
	AsyncDropped int
}

// Attach wires node to endpoint ep of ic and returns the interface.
func Attach(node *kern.Node, ic *hpc.Interconnect, ep topo.EndpointID) *IF {
	f := &IF{node: node, ic: ic, ep: ep, services: make(map[string]Service)}
	node.OnCrash(func() {
		// The crash discarded the queued ISRs (kern nils the interrupt
		// queue), so this is the last reference to these messages.
		for _, d := range f.pending {
			f.DroppedDead++
			msg := d.Msg
			d.Release()
			ic.FreeMessage(msg)
		}
		f.pending = nil
		// Batched messages were already read out of the hardware; the
		// crash discards them before their drain interrupt ran.
		for _, e := range f.batch {
			f.DroppedDead++
			ic.FreeMessage(e.msg)
		}
		f.batch = nil
		f.batchArmed = false
		f.batchPending = false
		f.batchTimer.Stop()
	})
	ic.SetDeliver(ep, func(d *hpc.Delivery) {
		if node.Crashed() {
			f.DroppedDead++
			msg := d.Msg
			d.Release()
			ic.FreeMessage(msg)
			return
		}
		env, ok := d.Msg.Payload.(Envelope)
		if !ok {
			f.Dropped++
			d.Release()
			return
		}
		if f.trace != nil {
			f.trace.record(TraceRecord{
				At: f.node.Kernel().Now(), Src: d.Msg.Src, Dst: d.Msg.Dst,
				Service: env.Service, Size: d.Msg.Size,
			})
		}
		svc, ok := f.services[env.Service]
		if !ok {
			f.Dropped++
			msg := d.Msg
			d.Release()
			ic.FreeMessage(msg)
			return
		}
		node.Tracer().Emit(trace.KService, d.Msg.Trace, node.Name(), "svc/"+env.Service,
			fmt.Sprintf("%dB from %d", d.Msg.Size, d.Msg.Src))
		if svc.NoInterrupt {
			// Raw deliveries hand the Delivery to the service, which
			// owns releasing it; they are not crash-tracked.
			svc.HandleRaw(d)
			return
		}
		msg := d.Msg
		if f.coalesce {
			// The driver reads the message out of the input section
			// immediately (freeing the hardware so the next fragment of
			// a train can land) and queues it for one batch interrupt.
			// While a drain is already queued or running the arrival
			// simply joins the accumulating batch — the drain chains
			// into it when it finishes, with no horizon wait.
			d.Release()
			f.batch = append(f.batch, batchEntry{msg: msg, svc: svc})
			if !f.batchArmed && !f.batchPending {
				f.batchArmed = true
				f.batchTimer = node.Kernel().After(f.coalesceHorizon, f.fireBatch)
			}
			return
		}
		f.pending = append(f.pending, d)
		node.Interrupt(svc.Cost(msg), func() {
			f.unpend(d)
			d.Release() // message has been read out of the input section
			svc.Handle(msg)
			// Handlers copy what they need out of the message before
			// returning (they model the ISR's read-out), so an
			// arena-born shell can go back for reuse here.
			ic.FreeMessage(msg)
		})
	})
	return f
}

// batchEntry is one read-out message awaiting a coalesced drain.
type batchEntry struct {
	msg *hpc.Message
	svc Service
}

// SetCoalesce enables receive-interrupt coalescing: deliveries that
// land while a batch interrupt is armed join it instead of raising
// their own. horizon is how long the first delivery of a batch waits
// for company; 0 coalesces only back-to-back deliveries at the same
// virtual instant. The batch is charged one interrupt entry plus each
// message's per-copy service cost, and messages are handled in arrival
// order — FIFO is preserved.
func (f *IF) SetCoalesce(horizon sim.Duration) {
	f.coalesce = true
	f.coalesceHorizon = horizon
}

// fireBatch raises the single interrupt that drains the armed batch.
func (f *IF) fireBatch() {
	f.batchArmed = false
	entries := f.batch
	f.batch = nil
	if len(entries) == 0 || f.node.Crashed() {
		return
	}
	if n := len(entries) - 1; n > 0 {
		f.CoalescedIntr += n
		f.node.Tracer().Count("netif.intr.coalesced", float64(n))
	}
	// First message pays the full ISR service cost (the protocol entry
	// work runs once per batch); riders pay only their per-message copy.
	cost := entries[0].svc.Cost(entries[0].msg)
	for _, e := range entries[1:] {
		if e.svc.BatchCost != nil {
			cost += e.svc.BatchCost(e.msg)
		} else {
			cost += e.svc.Cost(e.msg)
		}
	}
	f.batchPending = true
	f.node.Interrupt(cost, func() {
		for _, e := range entries {
			e.svc.Handle(e.msg)
			f.ic.FreeMessage(e.msg)
		}
		f.batchPending = false
		// Arrivals that landed while this drain was queued or running
		// chain straight into the next one, like an ISR re-scanning the
		// ring before returning.
		if len(f.batch) > 0 {
			f.fireBatch()
		}
	})
}

// unpend forgets a delivery that has been read out of the hardware.
func (f *IF) unpend(d *hpc.Delivery) {
	for i, p := range f.pending {
		if p == d {
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			return
		}
	}
}

// Node returns the attached kernel node.
func (f *IF) Node() *kern.Node { return f.node }

// Interconnect returns the attached fabric.
func (f *IF) Interconnect() *hpc.Interconnect { return f.ic }

// Endpoint returns this interface's endpoint id.
func (f *IF) Endpoint() topo.EndpointID { return f.ep }

// Register installs the handler for a service name. Registering the
// same name twice panics: it is a wiring bug.
func (f *IF) Register(name string, svc Service) {
	if _, dup := f.services[name]; dup {
		panic(fmt.Sprintf("netif: service %q registered twice on %s", name, f.node.Name()))
	}
	f.services[name] = svc
}

// Send transmits an Envelope-wrapped message, blocking the subprocess
// until the output section accepts it. size is the wire size in bytes
// (headers included). No CPU is charged here: callers model their own
// protocol costs.
func (f *IF) Send(sp *kern.Subprocess, dst topo.EndpointID, service string, size int, body any) error {
	return f.SendCtx(sp, 0, dst, service, size, body)
}

// SendCtx is Send carrying an explicit trace ID (0 for untraced), so a
// protocol layer can thread one causal ID through every wire message a
// logical operation produces.
func (f *IF) SendCtx(sp *kern.Subprocess, tid uint64, dst topo.EndpointID, service string, size int, body any) error {
	m := f.ic.AllocMessage()
	m.Src, m.Dst, m.Size = f.ep, dst, size
	m.Payload = Envelope{Service: service, Body: body}
	m.Tag = service
	m.Trace = tid
	if err := f.ic.Send(sp.Proc(), m, nil); err != nil {
		f.ic.FreeMessage(m) // never entered the fabric
		return err
	}
	return nil
}

// SendAsync transmits from interrupt or event context: if the output
// section is full the send is retried on the room-available interrupt.
// onDelivered may be nil.
func (f *IF) SendAsync(dst topo.EndpointID, service string, size int, body any, onDelivered func()) {
	f.SendAsyncCtx(0, dst, service, size, body, onDelivered)
}

// SendAsyncCtx is SendAsync carrying an explicit trace ID (0 for
// untraced).
func (f *IF) SendAsyncCtx(tid uint64, dst topo.EndpointID, service string, size int, body any, onDelivered func()) {
	msg := f.ic.AllocMessage()
	msg.Src, msg.Dst, msg.Size = f.ep, dst, size
	msg.Payload = Envelope{Service: service, Body: body}
	msg.Tag = service
	msg.Trace = tid
	var cb func(*hpc.Message)
	if onDelivered != nil {
		cb = func(*hpc.Message) { onDelivered() }
	}
	var try func()
	try = func() {
		ok, err := f.ic.TrySend(msg, cb)
		if err != nil {
			// Unreachable (partitioned) or oversize: drop. End-to-end
			// recovery — channel timeouts, peer-death — is the caller's
			// protocol layer's job.
			f.AsyncDropped++
			f.ic.FreeMessage(msg)
			return
		}
		if !ok {
			f.ic.NotifyRoom(f.ep, try)
		}
	}
	try()
}
