package netif

import (
	"fmt"
	"io"
	"sort"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Message tracing — the third leg of "Debugging and Performance
// Monitoring in HPC/VORX" (the paper's reference [20], which produced
// cdb and the software oscilloscope): record every delivered message
// with its endpoints, service, and size, then summarize traffic
// per-service and as an endpoint matrix.

// TraceRecord is one delivered message.
type TraceRecord struct {
	At       sim.Time
	Src, Dst topo.EndpointID
	Service  string
	Size     int
}

// MsgTrace collects trace records from any number of interfaces.
type MsgTrace struct {
	records []TraceRecord
	enabled bool
}

// NewMsgTrace returns an enabled trace.
func NewMsgTrace() *MsgTrace { return &MsgTrace{enabled: true} }

// Attach starts recording deliveries arriving at f. Call before
// traffic flows.
func (mt *MsgTrace) Attach(f *IF) {
	f.trace = mt
}

// record is called from the interface's delivery path.
func (mt *MsgTrace) record(r TraceRecord) {
	if mt.enabled {
		mt.records = append(mt.records, r)
	}
}

// SetEnabled pauses or resumes collection.
func (mt *MsgTrace) SetEnabled(on bool) { mt.enabled = on }

// Records returns the collected records in delivery order.
func (mt *MsgTrace) Records() []TraceRecord { return mt.records }

// ByService aggregates message counts and bytes per service name.
func (mt *MsgTrace) ByService() map[string]struct{ Messages, Bytes int } {
	out := map[string]struct{ Messages, Bytes int }{}
	for _, r := range mt.records {
		e := out[r.Service]
		e.Messages++
		e.Bytes += r.Size
		out[r.Service] = e
	}
	return out
}

// Matrix returns the endpoint-to-endpoint byte counts.
func (mt *MsgTrace) Matrix() map[[2]topo.EndpointID]int {
	out := map[[2]topo.EndpointID]int{}
	for _, r := range mt.records {
		out[[2]topo.EndpointID{r.Src, r.Dst}] += r.Size
	}
	return out
}

// Window returns the records within [from, to).
func (mt *MsgTrace) Window(from, to sim.Time) []TraceRecord {
	var out []TraceRecord
	for _, r := range mt.records {
		if r.At >= from && r.At < to {
			out = append(out, r)
		}
	}
	return out
}

// Summarize writes a per-service traffic report, busiest first.
func (mt *MsgTrace) Summarize(w io.Writer) {
	type row struct {
		svc    string
		msgs   int
		nbytes int
	}
	var rows []row
	for svc, e := range mt.ByService() {
		rows = append(rows, row{svc, e.Messages, e.Bytes})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].nbytes != rows[j].nbytes {
			return rows[i].nbytes > rows[j].nbytes
		}
		return rows[i].svc < rows[j].svc
	})
	fmt.Fprintf(w, "msgtrace: %d messages\n", len(mt.records))
	fmt.Fprintf(w, "%-18s %10s %12s\n", "SERVICE", "MESSAGES", "BYTES")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10d %12d\n", r.svc, r.msgs, r.nbytes)
	}
}
