package netif_test

import (
	"strings"
	"testing"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

func rig(t *testing.T) (*sim.Kernel, *hpc.Interconnect, [2]*netif.IF, [2]*kern.Node) {
	t.Helper()
	k := sim.NewKernel(1)
	costs := m68k.DefaultCosts()
	tp, err := topo.SingleCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	ic := hpc.New(k, costs, tp)
	var ifs [2]*netif.IF
	var nodes [2]*kern.Node
	for i := 0; i < 2; i++ {
		nodes[i] = kern.NewNode(k, costs, "n")
		ifs[i] = netif.Attach(nodes[i], ic, topo.EndpointID(i))
	}
	return k, ic, ifs, nodes
}

func TestDispatchToService(t *testing.T) {
	k, _, ifs, _ := rig(t)
	var got any
	ifs[1].Register("svc", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return sim.Microseconds(10) },
		Handle: func(m *hpc.Message) { got = m.Payload.(netif.Envelope).Body },
	})
	ifs[0].SendAsync(1, "svc", 64, "payload", nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("got %v", got)
	}
}

func TestISRCostChargedToNode(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	ifs[1].Register("svc", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return sim.Microseconds(100) },
		Handle: func(*hpc.Message) {},
	})
	ifs[0].SendAsync(1, "svc", 64, nil, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Interrupt entry (25) + declared cost (100) as system time.
	if got := nodes[1].Totals()[kern.CatSystem]; got != sim.Microseconds(125) {
		t.Fatalf("system time = %v, want 125µs", got)
	}
	if nodes[1].Interrupts != 1 {
		t.Fatalf("interrupts = %d", nodes[1].Interrupts)
	}
}

func TestUnknownServiceDropped(t *testing.T) {
	k, _, ifs, _ := rig(t)
	ifs[0].SendAsync(1, "nobody-home", 64, nil, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ifs[1].Dropped != 1 {
		t.Fatalf("dropped = %d", ifs[1].Dropped)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, _, ifs, _ := rig(t)
	ifs[0].Register("dup", netif.Service{Cost: func(*hpc.Message) sim.Duration { return 0 }, Handle: func(*hpc.Message) {}})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	ifs[0].Register("dup", netif.Service{})
}

func TestSendBlocksOnOutputSection(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	// A receiver that never releases its input section backs the
	// fabric up; the third blocking Send must wait for room.
	delivered := 0
	ifs[1].Register("slow", netif.Service{
		NoInterrupt: true,
		HandleRaw:   func(d *hpc.Delivery) { delivered++ /* never release */ },
	})
	sent := 0
	nodes[0].SpawnSubprocess("sender", 0, func(sp *kern.Subprocess) {
		for i := 0; i < 5; i++ {
			if err := ifs[0].Send(sp, 1, "slow", 1000, nil); err != nil {
				t.Error(err)
			}
			sent++
		}
	})
	k.RunFor(sim.Seconds(1))
	if sent >= 5 {
		t.Fatalf("sent %d messages into a wedged fabric", sent)
	}
	k.Shutdown()
}

func TestSendAsyncRetriesOnRoomAvailable(t *testing.T) {
	k, ic, ifs, _ := rig(t)
	var deliveries []*hpc.Delivery
	ifs[1].Register("hold", netif.Service{
		NoInterrupt: true,
		HandleRaw:   func(d *hpc.Delivery) { deliveries = append(deliveries, d) },
	})
	// Fill the fabric: input section + cluster buffer + output section.
	for i := 0; i < 4; i++ {
		ifs[0].SendAsync(1, "hold", 1000, i, nil)
	}
	k.RunFor(sim.Milliseconds(10))
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1 (rest queued in hardware)", len(deliveries))
	}
	// Drain one: the room-available retry should push the next through.
	deliveries[0].Release()
	k.RunFor(sim.Milliseconds(10))
	if len(deliveries) != 2 {
		t.Fatalf("deliveries after release = %d, want 2", len(deliveries))
	}
	_ = ic
}

func TestPolledServiceCostsNothing(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	ifs[1].Register("polled", netif.Service{
		NoInterrupt: true,
		HandleRaw:   func(d *hpc.Delivery) { d.Release() },
	})
	ifs[0].SendAsync(1, "polled", 100, nil, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := nodes[1].Totals()[kern.CatSystem]; got != 0 {
		t.Fatalf("polled delivery charged %v CPU", got)
	}
	if nodes[1].Interrupts != 0 {
		t.Fatalf("polled delivery raised %d interrupts", nodes[1].Interrupts)
	}
}

func TestMsgTraceRecordsDeliveries(t *testing.T) {
	k, _, ifs, _ := rig(t)
	mt := netif.NewMsgTrace()
	mt.Attach(ifs[1])
	ifs[1].Register("svcA", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return 0 },
		Handle: func(*hpc.Message) {},
	})
	ifs[1].Register("svcB", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return 0 },
		Handle: func(*hpc.Message) {},
	})
	ifs[0].SendAsync(1, "svcA", 100, nil, nil)
	ifs[0].SendAsync(1, "svcA", 200, nil, nil)
	ifs[0].SendAsync(1, "svcB", 50, nil, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(mt.Records()) != 3 {
		t.Fatalf("records = %d", len(mt.Records()))
	}
	by := mt.ByService()
	if by["svcA"].Messages != 2 || by["svcA"].Bytes != 300 {
		t.Fatalf("svcA = %+v", by["svcA"])
	}
	if by["svcB"].Bytes != 50 {
		t.Fatalf("svcB = %+v", by["svcB"])
	}
	mat := mt.Matrix()
	if mat[[2]topo.EndpointID{0, 1}] != 350 {
		t.Fatalf("matrix = %v", mat)
	}
	var b strings.Builder
	mt.Summarize(&b)
	if !strings.Contains(b.String(), "svcA") || !strings.Contains(b.String(), "3 messages") {
		t.Fatalf("summary:\n%s", b.String())
	}
}

func TestMsgTracePauseAndWindow(t *testing.T) {
	k, _, ifs, _ := rig(t)
	mt := netif.NewMsgTrace()
	mt.Attach(ifs[1])
	ifs[1].Register("s", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return 0 },
		Handle: func(*hpc.Message) {},
	})
	ifs[0].SendAsync(1, "s", 10, nil, nil)
	k.RunFor(sim.Milliseconds(1))
	mt.SetEnabled(false)
	ifs[0].SendAsync(1, "s", 10, nil, nil)
	k.RunFor(sim.Milliseconds(1))
	mt.SetEnabled(true)
	ifs[0].SendAsync(1, "s", 10, nil, nil)
	k.RunFor(sim.Milliseconds(1))
	if len(mt.Records()) != 2 {
		t.Fatalf("records = %d, want 2 (one suppressed)", len(mt.Records()))
	}
	early := mt.Window(0, sim.Time(sim.Milliseconds(1)))
	if len(early) != 1 {
		t.Fatalf("window = %d", len(early))
	}
}

// TestCrashedNodeDrainsDeliveries: messages to a dead node are drained
// by the hardware (DroppedDead), its handlers never run, and the
// fabric keeps flowing — a crash must not wedge the interconnect.
func TestCrashedNodeDrainsDeliveries(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	handled := 0
	ifs[1].Register("svc", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return sim.Microseconds(10) },
		Handle: func(m *hpc.Message) { handled++ },
	})
	nodes[1].Crash()
	for i := 0; i < 3; i++ {
		ifs[0].SendAsync(1, "svc", 64, i, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 0 {
		t.Fatalf("dead node handled %d messages", handled)
	}
	if ifs[1].DroppedDead != 3 {
		t.Fatalf("DroppedDead = %d, want 3", ifs[1].DroppedDead)
	}
}

// TestCrashReleasesPendingDeliveries: a message whose interrupt is
// still pending when the node crashes is released (not leaked), so the
// sender's next message is not blocked forever.
func TestCrashReleasesPendingDeliveries(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	handled := 0
	ifs[1].Register("svc", netif.Service{
		// Interrupt service is slow: 1 ms per message.
		Cost:   func(*hpc.Message) sim.Duration { return sim.Milliseconds(1) },
		Handle: func(m *hpc.Message) { handled++ },
	})
	delivered := 0
	for i := 0; i < 2; i++ {
		ifs[0].SendAsync(1, "svc", 64, i, func() { delivered++ })
	}
	// Crash while the first message's ISR is still accruing cost.
	k.After(sim.Microseconds(100), func() { nodes[1].Crash() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 0 {
		t.Fatalf("handler ran %d times after crash", handled)
	}
	if delivered != 2 {
		t.Fatalf("fabric delivered %d of 2 (input section wedged?)", delivered)
	}
	if ifs[1].DroppedDead == 0 {
		t.Fatal("pending delivery must be drained on crash")
	}
}
