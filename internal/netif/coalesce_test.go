package netif_test

import (
	"testing"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/sim"
)

// TestCoalescedBatchChargesOneEntry: under receive-interrupt
// coalescing a burst of deliveries is drained by fewer interrupts than
// messages, and the virtual-time accounting is exactly one
// interrupt-entry plus one full service cost per batch, plus the
// copy-only BatchCost for every rider. Whatever way the arrivals
// happen to batch, interrupts + coalesced must equal the message count
// and the node's system time must match the formula — there is no
// per-rider entry charge.
func TestCoalescedBatchChargesOneEntry(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	const (
		msgs      = 6
		fullCost  = sim.Duration(100 * sim.Microsecond)
		rideCost  = sim.Duration(30 * sim.Microsecond)
		entryCost = sim.Duration(25 * sim.Microsecond) // m68k InterruptEntry
	)
	handled := 0
	ifs[1].SetCoalesce(0)
	ifs[1].Register("svc", netif.Service{
		Cost:      func(*hpc.Message) sim.Duration { return fullCost },
		BatchCost: func(*hpc.Message) sim.Duration { return rideCost },
		Handle:    func(*hpc.Message) { handled++ },
	})
	for i := 0; i < msgs; i++ {
		ifs[0].SendAsync(1, "svc", 64, i, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != msgs {
		t.Fatalf("handled %d of %d", handled, msgs)
	}
	intr := nodes[1].Interrupts
	coal := ifs[1].CoalescedIntr
	if intr+coal != msgs {
		t.Fatalf("interrupts(%d) + coalesced(%d) != %d messages", intr, coal, msgs)
	}
	if coal == 0 {
		t.Fatal("burst arrivals during a busy drain must coalesce; scenario is vacuous")
	}
	want := sim.Duration(intr)*(entryCost+fullCost) + sim.Duration(coal)*rideCost
	if got := nodes[1].Totals()[kern.CatSystem]; got != want {
		t.Fatalf("system time = %v, want %v (%d batches x (entry+full) + %d riders x copy)",
			got, want, intr, coal)
	}
}

// TestCoalesceOffIsClassic: without SetCoalesce every delivery raises
// its own interrupt and pays entry + full cost — byte-identical
// accounting to the pre-coalescing driver.
func TestCoalesceOffIsClassic(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	const msgs = 4
	ifs[1].Register("svc", netif.Service{
		Cost:      func(*hpc.Message) sim.Duration { return 100 * sim.Microsecond },
		BatchCost: func(*hpc.Message) sim.Duration { return 30 * sim.Microsecond },
		Handle:    func(*hpc.Message) {},
	})
	for i := 0; i < msgs; i++ {
		ifs[0].SendAsync(1, "svc", 64, i, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if nodes[1].Interrupts != msgs || ifs[1].CoalescedIntr != 0 {
		t.Fatalf("interrupts=%d coalesced=%d, want %d/0", nodes[1].Interrupts, ifs[1].CoalescedIntr, msgs)
	}
	if got, want := nodes[1].Totals()[kern.CatSystem], sim.Duration(msgs)*125*sim.Microsecond; got != want {
		t.Fatalf("system time = %v, want %v", got, want)
	}
}

// TestCoalescedBatchFreedOnCrash: messages read out of the hardware
// but still waiting for their drain interrupt are discarded when the
// node dies — counted dead, never handled, and the batch machinery
// rearms cleanly after restart.
func TestCoalescedBatchFreedOnCrash(t *testing.T) {
	k, _, ifs, nodes := rig(t)
	handled := 0
	ifs[1].SetCoalesce(10 * sim.Millisecond) // wide horizon: batch sits armed
	ifs[1].Register("svc", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return 100 * sim.Microsecond },
		Handle: func(*hpc.Message) { handled++ },
	})
	for i := 0; i < 3; i++ {
		ifs[0].SendAsync(1, "svc", 64, i, nil)
	}
	k.After(time2ms, func() { nodes[1].Crash() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 0 {
		t.Fatalf("handled %d messages that should have died with the node", handled)
	}
	if ifs[1].DroppedDead != 3 {
		t.Fatalf("DroppedDead = %d, want 3", ifs[1].DroppedDead)
	}
	// The interface must be usable again after restart.
	nodes[1].Restart()
	ifs[0].SendAsync(1, "svc", 64, 99, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Fatalf("post-restart delivery handled %d, want 1", handled)
	}
}

const time2ms = 2 * sim.Millisecond
