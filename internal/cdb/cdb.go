// Package cdb is the VORX communications debugger (paper §6.1): a
// tool for examining the communications state of an application,
// built for the surprisingly common bug where "the application stops
// running with each process waiting for input from another process".
//
// For each channel, cdb reports the channel name, which two endpoints
// it connects, how many messages have been sent in each direction,
// and — most importantly — the state of each end: whether the
// application is blocked waiting for input or output on it. Filters
// isolate the channels of interest, and a waits-for cycle detector
// points at the processes responsible for a deadlock.
//
// As the paper notes, cdb was easy to implement because the
// communications driver already encodes everything it needs; here it
// reads the channel service's Snapshot on every machine.
package cdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// End is one channel end, annotated with its machine name.
type End struct {
	channels.EndState
	Machine string
}

// Snapshot is the communications state of the whole system at one
// instant.
type Snapshot struct {
	At      sim.Time
	Ends    []End
	Blocked []sim.BlockedProc
}

// Capture reads the channel state of every machine.
func Capture(sys *core.System) Snapshot {
	s := Snapshot{At: sys.K.Now()}
	for _, m := range sys.Machines() {
		for _, e := range m.Chans.Snapshot() {
			s.Ends = append(s.Ends, End{EndState: e, Machine: m.Name()})
		}
	}
	for _, p := range sys.K.Blocked() {
		s.Blocked = append(s.Blocked, sim.BlockedProc{Name: p.Name(), Reason: p.WaitReason()})
	}
	sort.Slice(s.Ends, func(i, j int) bool {
		if s.Ends[i].Name != s.Ends[j].Name {
			return s.Ends[i].Name < s.Ends[j].Name
		}
		return s.Ends[i].Local < s.Ends[j].Local
	})
	return s
}

// Filter selects channel ends of interest.
type Filter func(e End) bool

// ByName keeps ends whose channel name contains substr.
func ByName(substr string) Filter {
	return func(e End) bool { return strings.Contains(e.Name, substr) }
}

// BlockedOnly keeps ends with a blocked reader or writer.
func BlockedOnly() Filter {
	return func(e End) bool { return e.ReaderBlocked || e.WriterBlocked }
}

// OnMachine keeps ends living on the named machine.
func OnMachine(name string) Filter {
	return func(e End) bool { return e.Machine == name }
}

// Open keeps ends that are not closed.
func Open() Filter {
	return func(e End) bool { return !e.Closed }
}

// Select returns a copy of the snapshot containing only ends passing
// every filter.
func (s Snapshot) Select(filters ...Filter) Snapshot {
	out := Snapshot{At: s.At, Blocked: s.Blocked}
	for _, e := range s.Ends {
		keep := true
		for _, f := range filters {
			if !f(e) {
				keep = false
				break
			}
		}
		if keep {
			out.Ends = append(out.Ends, e)
		}
	}
	return out
}

// WaitCycles finds endpoint-level waits-for cycles: a blocked reader
// or writer on a channel waits on the channel's peer endpoint. Each
// returned cycle lists the endpoints involved, smallest first —
// usually enough to "isolate the process that caused the deadlock to
// occur".
func (s Snapshot) WaitCycles() [][]topo.EndpointID {
	adj := map[topo.EndpointID][]topo.EndpointID{}
	for _, e := range s.Ends {
		if e.ReaderBlocked || e.WriterBlocked {
			adj[e.Local] = append(adj[e.Local], e.Peer)
		}
	}
	var cycles [][]topo.EndpointID
	seenCycle := map[string]bool{}
	var stack []topo.EndpointID
	onStack := map[topo.EndpointID]bool{}
	var dfs func(v topo.EndpointID)
	visited := map[topo.EndpointID]bool{}
	dfs = func(v topo.EndpointID) {
		visited[v] = true
		onStack[v] = true
		stack = append(stack, v)
		for _, w := range adj[v] {
			if onStack[w] {
				// Extract the cycle from the stack.
				var cyc []topo.EndpointID
				for i := len(stack) - 1; i >= 0; i-- {
					cyc = append(cyc, stack[i])
					if stack[i] == w {
						break
					}
				}
				sort.Slice(cyc, func(i, j int) bool { return cyc[i] < cyc[j] })
				key := fmt.Sprint(cyc)
				if !seenCycle[key] {
					seenCycle[key] = true
					cycles = append(cycles, cyc)
				}
				continue
			}
			if !visited[w] {
				dfs(w)
			}
		}
		onStack[v] = false
		stack = stack[:len(stack)-1]
	}
	var verts []topo.EndpointID
	for v := range adj {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	for _, v := range verts {
		if !visited[v] {
			dfs(v)
		}
	}
	return cycles
}

// endState renders one end's blocking state.
func endState(e End) string {
	switch {
	case e.ReaderBlocked:
		return "blocked-read"
	case e.WriterBlocked:
		return "blocked-write"
	case e.Closed:
		return "closed"
	default:
		return "idle"
	}
}

// Format writes the snapshot as the cdb report.
func (s Snapshot) Format(w io.Writer) {
	fmt.Fprintf(w, "cdb: communications state at %v — %d channel end(s)\n", s.At, len(s.Ends))
	fmt.Fprintf(w, "%-18s %-8s %-6s %-6s %6s %6s %6s  %s\n",
		"CHANNEL", "MACHINE", "LOCAL", "PEER", "SENT", "RECVD", "BUF", "STATE")
	for _, e := range s.Ends {
		fmt.Fprintf(w, "%-18s %-8s %-6d %-6d %6d %6d %6d  %s\n",
			e.Name, e.Machine, e.Local, e.Peer, e.Sent, e.Received, e.Buffered, endState(e))
	}
	if cycles := s.WaitCycles(); len(cycles) > 0 {
		fmt.Fprintf(w, "deadlock: %d waits-for cycle(s):\n", len(cycles))
		for _, c := range cycles {
			parts := make([]string, len(c))
			for i, ep := range c {
				parts[i] = fmt.Sprintf("ep%d", ep)
			}
			fmt.Fprintf(w, "  %s\n", strings.Join(parts, " -> "))
		}
	}
	if len(s.Blocked) > 0 {
		fmt.Fprintf(w, "blocked processes:\n")
		for _, b := range s.Blocked {
			fmt.Fprintf(w, "  %-24s %s\n", b.Name, b.Reason)
		}
	}
}

// String renders the snapshot to a string.
func (s Snapshot) String() string {
	var b strings.Builder
	s.Format(&b)
	return b.String()
}

// JSON renders the snapshot as machine-readable JSON (for tooling
// layered on cdb, the way the original grew filters).
func (s Snapshot) JSON() ([]byte, error) {
	type end struct {
		Name     string `json:"name"`
		Machine  string `json:"machine"`
		Local    int    `json:"local"`
		Peer     int    `json:"peer"`
		Sent     int    `json:"sent"`
		Received int    `json:"received"`
		Buffered int    `json:"buffered"`
		State    string `json:"state"`
	}
	type report struct {
		AtMicros float64           `json:"at_us"`
		Ends     []end             `json:"ends"`
		Cycles   [][]int           `json:"wait_cycles,omitempty"`
		Blocked  map[string]string `json:"blocked,omitempty"`
	}
	r := report{AtMicros: s.At.Microseconds()}
	for _, e := range s.Ends {
		r.Ends = append(r.Ends, end{
			Name: e.Name, Machine: e.Machine,
			Local: int(e.Local), Peer: int(e.Peer),
			Sent: e.Sent, Received: e.Received, Buffered: e.Buffered,
			State: endState(e),
		})
	}
	for _, cyc := range s.WaitCycles() {
		var ints []int
		for _, ep := range cyc {
			ints = append(ints, int(ep))
		}
		r.Cycles = append(r.Cycles, ints)
	}
	if len(s.Blocked) > 0 {
		r.Blocked = map[string]string{}
		for _, b := range s.Blocked {
			r.Blocked[b.Name] = b.Reason
		}
	}
	return json.MarshalIndent(r, "", "  ")
}
