package cdb_test

import (
	"encoding/json"
	"strings"
	"testing"

	"hpcvorx/internal/cdb"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
)

// deadlockedSystem builds the classic bug of §6.1: two processes each
// waiting for input from the other.
func deadlockedSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn(sys.Node(0), "p0", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "dead", objmgr.OpenAny)
		ch.Read(sp) // waits for p1, who also reads first
	})
	sys.Spawn(sys.Node(1), "p1", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "dead", objmgr.OpenAny)
		ch.Read(sp)
	})
	if err := sys.Run(); err == nil {
		t.Fatal("expected a deadlock")
	}
	return sys
}

func TestSnapshotShowsBlockedReaders(t *testing.T) {
	sys := deadlockedSystem(t)
	defer sys.Shutdown()
	snap := cdb.Capture(sys)
	if len(snap.Ends) != 2 {
		t.Fatalf("ends = %d", len(snap.Ends))
	}
	for _, e := range snap.Ends {
		if !e.ReaderBlocked {
			t.Errorf("end %+v should be blocked reading", e)
		}
	}
	if len(snap.Blocked) != 2 {
		t.Fatalf("blocked procs = %+v", snap.Blocked)
	}
}

func TestWaitCycleDetection(t *testing.T) {
	sys := deadlockedSystem(t)
	defer sys.Shutdown()
	snap := cdb.Capture(sys)
	cycles := snap.WaitCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
	if len(cycles[0]) != 2 {
		t.Fatalf("cycle = %v, want both endpoints", cycles[0])
	}
}

func TestFormatIncludesCycleAndStates(t *testing.T) {
	sys := deadlockedSystem(t)
	defer sys.Shutdown()
	out := cdb.Capture(sys).String()
	for _, want := range []string{"dead", "blocked-read", "waits-for cycle", "chan-read dead"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFilters(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		a := sys.Node(0).Chans.Open(sp, "busy-one", objmgr.OpenAny)
		a.Write(sp, 10, nil)
		b := sys.Node(0).Chans.Open(sp, "quiet-two", objmgr.OpenAny)
		b.Write(sp, 10, nil)
	})
	sys.Spawn(sys.Node(1), "r1", 0, func(sp *kern.Subprocess) {
		a := sys.Node(1).Chans.Open(sp, "busy-one", objmgr.OpenAny)
		a.Read(sp)
		a.Read(sp) // blocks forever
	})
	sys.Spawn(sys.Node(2), "r2", 0, func(sp *kern.Subprocess) {
		b := sys.Node(2).Chans.Open(sp, "quiet-two", objmgr.OpenAny)
		b.Read(sp)
	})
	_ = sys.Run() // r1 deadlocks by design
	defer sys.Shutdown()

	snap := cdb.Capture(sys)
	if got := len(snap.Select(cdb.ByName("busy")).Ends); got != 2 {
		t.Errorf("ByName(busy) = %d ends, want 2", got)
	}
	blocked := snap.Select(cdb.BlockedOnly())
	if len(blocked.Ends) != 1 || blocked.Ends[0].Name != "busy-one" {
		t.Errorf("BlockedOnly = %+v", blocked.Ends)
	}
	if got := len(snap.Select(cdb.OnMachine("node2")).Ends); got != 1 {
		t.Errorf("OnMachine(node2) = %d ends, want 1", got)
	}
	if got := len(snap.Select(cdb.ByName("busy"), cdb.OnMachine("node1")).Ends); got != 1 {
		t.Errorf("combined filters = %d ends, want 1", got)
	}
}

func TestMessageCountsInBothDirections(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn(sys.Node(0), "a", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "duplex", objmgr.OpenAny)
		ch.Write(sp, 10, nil)
		ch.Write(sp, 10, nil)
		ch.Write(sp, 10, nil)
		ch.Read(sp)
	})
	sys.Spawn(sys.Node(1), "b", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "duplex", objmgr.OpenAny)
		for i := 0; i < 3; i++ {
			ch.Read(sp)
		}
		ch.Write(sp, 10, nil)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	snap := cdb.Capture(sys)
	var e0, e1 *cdb.End
	for i := range snap.Ends {
		switch snap.Ends[i].Machine {
		case "node0":
			e0 = &snap.Ends[i]
		case "node1":
			e1 = &snap.Ends[i]
		}
	}
	if e0 == nil || e1 == nil {
		t.Fatalf("missing ends: %+v", snap.Ends)
	}
	if e0.Sent != 3 || e0.Received != 1 || e1.Sent != 1 || e1.Received != 3 {
		t.Fatalf("counts: node0 %d/%d node1 %d/%d", e0.Sent, e0.Received, e1.Sent, e1.Received)
	}
}

func TestNoCyclesOnHealthySystem(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "ok", objmgr.OpenAny)
		ch.Write(sp, 10, nil)
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "ok", objmgr.OpenAny)
		ch.Read(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if cycles := cdb.Capture(sys).WaitCycles(); len(cycles) != 0 {
		t.Fatalf("cycles on healthy system: %v", cycles)
	}
}

func TestJSONOutput(t *testing.T) {
	sys := deadlockedSystem(t)
	defer sys.Shutdown()
	data, err := cdb.Capture(sys).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if _, ok := parsed["ends"].([]any); !ok {
		t.Fatalf("missing ends: %s", data)
	}
	if _, ok := parsed["wait_cycles"]; !ok {
		t.Fatalf("missing wait_cycles on a deadlocked app: %s", data)
	}
	if _, ok := parsed["blocked"]; !ok {
		t.Fatalf("missing blocked: %s", data)
	}
}
