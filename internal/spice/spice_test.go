package spice_test

import (
	"math"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/spice"
)

func TestSequentialJacobiConverges(t *testing.T) {
	g := spice.NewGrid(16)
	x := g.SolveSequential(200)
	if r := g.Residual(x); r > 1e-6 {
		t.Fatalf("residual after 200 sweeps = %g", r)
	}
}

func solve(t *testing.T, gridN, procs, iters int, tr spice.Transport) (*spice.Result, []float64) {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := spice.NewGrid(gridN)
	res, x, err := spice.Solve(sys, g, procs, iters, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res, x
}

func TestDistributedMatchesSequential(t *testing.T) {
	for _, tr := range []spice.Transport{spice.Channels, spice.UDO} {
		res, x := solve(t, 16, 4, 30, tr)
		want := spice.NewGrid(16).SolveSequential(30)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				t.Fatalf("%v: x[%d] = %g, want %g", tr, i, x[i], want[i])
			}
		}
		if res.Messages != 2*(4-1)*30 {
			t.Fatalf("%v: messages = %d, want %d", tr, res.Messages, 2*3*30)
		}
	}
}

func TestUDOFasterThanChannels(t *testing.T) {
	// §4.1: SPICE needed very low latency comms and bypassed the
	// channel protocol with user-defined objects. The boundary
	// messages here are small (n×4 bytes), so the per-message fixed
	// cost — 303 µs channels vs ~60 µs UDO — dominates exchange time.
	chRes, _ := solve(t, 16, 4, 40, spice.Channels)
	udoRes, _ := solve(t, 16, 4, 40, spice.UDO)
	if udoRes.Elapsed >= chRes.Elapsed {
		t.Fatalf("UDO (%v) should beat channels (%v)", udoRes.Elapsed, chRes.Elapsed)
	}
	speedup := float64(chRes.Elapsed) / float64(udoRes.Elapsed)
	if speedup < 1.05 {
		t.Fatalf("speedup only %.3f", speedup)
	}
}

func TestResidualDropsWithIterations(t *testing.T) {
	short, _ := solve(t, 16, 4, 5, spice.UDO)
	long, _ := solve(t, 16, 4, 80, spice.UDO)
	if long.Residual >= short.Residual {
		t.Fatalf("residual did not drop: %g -> %g", short.Residual, long.Residual)
	}
	if long.Residual > 1e-3 {
		t.Fatalf("residual after 80 sweeps = %g", long.Residual)
	}
}

func TestSolveValidation(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := spice.NewGrid(16)
	if _, _, err := spice.Solve(sys, g, 3, 5, spice.UDO); err == nil {
		t.Fatal("3 procs do not divide 16")
	}
	if _, _, err := spice.Solve(sys, g, 4, 5, spice.UDO); err == nil {
		t.Fatal("only 3 nodes available")
	}
}

func TestMoreProcessorsShortenSolve(t *testing.T) {
	one, _ := solve(t, 16, 1, 20, spice.UDO)
	four, _ := solve(t, 16, 4, 20, spice.UDO)
	if four.Elapsed >= one.Elapsed {
		t.Fatalf("4 procs (%v) not faster than 1 (%v)", four.Elapsed, one.Elapsed)
	}
}
