// Package spice is the parallel circuit-simulation workload of paper
// §4.1: a distributed iterative solver for the large sparse linear
// systems at the heart of SPICE. The paper reports that the parallel
// SPICE implementation needed very low latency communications and got
// it from user-defined communications objects — 60 µs software
// latency for 64-byte messages, with direct hardware access and no
// low-level protocol.
//
// The substrate here is a resistor-grid (Laplacian-like) system
// solved by Jacobi iteration, row-striped across processors; each
// iteration exchanges strip-boundary values with the two neighboring
// processors. The same solve can run over VORX channels or over
// user-defined objects, which is exactly the comparison that made the
// SPICE group bypass the channel protocol.
package spice

import (
	"fmt"
	"math"
	"sort"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/udo"
)

// FlopCost is the 68882 time per floating point operation in the
// solver's inner loop.
var FlopCost = sim.Microseconds(6.5)

// ValueBytes is the wire size of one unknown (32-bit float in 1988).
const ValueBytes = 4

// System is the sparse linear system A x = b for an n×n resistor
// grid: A is the grid Laplacian plus a conductance to ground, so it
// is strictly diagonally dominant and Jacobi converges.
type System struct {
	N    int // grid side; unknowns = N*N
	Diag float64
	B    []float64
}

// NewGrid builds the n×n grid system with unit off-diagonal
// conductances and a source vector derived deterministically from the
// node index.
func NewGrid(n int) *System {
	s := &System{N: n, Diag: 4.5, B: make([]float64, n*n)}
	for i := range s.B {
		s.B[i] = math.Sin(float64(i)) + 2
	}
	return s
}

// Unknowns returns the number of unknowns.
func (s *System) Unknowns() int { return s.N * s.N }

// neighbors iterates the off-diagonal entries of row (r,c); every
// entry has coefficient -1.
func (s *System) neighbors(r, c int, f func(j int)) {
	if r > 0 {
		f((r-1)*s.N + c)
	}
	if r < s.N-1 {
		f((r+1)*s.N + c)
	}
	if c > 0 {
		f(r*s.N + c - 1)
	}
	if c < s.N-1 {
		f(r*s.N + c + 1)
	}
}

// JacobiStep computes one Jacobi sweep sequentially: xNew from x.
func (s *System) JacobiStep(x, xNew []float64) {
	for r := 0; r < s.N; r++ {
		for c := 0; c < s.N; c++ {
			i := r*s.N + c
			sum := s.B[i]
			s.neighbors(r, c, func(j int) { sum += x[j] })
			xNew[i] = sum / s.Diag
		}
	}
}

// Residual returns the max-norm residual of A x = b.
func (s *System) Residual(x []float64) float64 {
	max := 0.0
	for r := 0; r < s.N; r++ {
		for c := 0; c < s.N; c++ {
			i := r*s.N + c
			ax := s.Diag * x[i]
			s.neighbors(r, c, func(j int) { ax -= x[j] })
			if d := math.Abs(ax - s.B[i]); d > max {
				max = d
			}
		}
	}
	return max
}

// SolveSequential runs iters Jacobi sweeps on one (virtual) CPU and
// returns the solution — the correctness reference.
func (s *System) SolveSequential(iters int) []float64 {
	x := make([]float64, s.Unknowns())
	xn := make([]float64, s.Unknowns())
	for it := 0; it < iters; it++ {
		s.JacobiStep(x, xn)
		x, xn = xn, x
	}
	return x
}

// Transport selects the communications mechanism for boundary
// exchange.
type Transport int

const (
	// Channels uses the standard VORX channel protocol.
	Channels Transport = iota
	// UDO uses interrupt-driven user-defined objects: direct
	// hardware access, no kernel protocol.
	UDO
)

func (tr Transport) String() string {
	if tr == Channels {
		return "channels"
	}
	return "udo"
}

// Result reports one distributed solve.
type Result struct {
	Transport  Transport
	Procs      int
	Iterations int
	Elapsed    sim.Duration
	Residual   float64
	// Messages is the total boundary-exchange messages sent.
	Messages int
}

// boundary is one strip-edge exchange message.
type boundary struct {
	from int
	iter int
	vals []float64
}

// Solve runs iters distributed Jacobi sweeps on P processors of the
// system (P must divide the grid side) and returns the measured result
// and the solution vector. Strips exchange their edge rows with both
// neighbors every iteration; messages are n values of 4 bytes — small
// and latency-sensitive, which is why the transport matters.
func Solve(sys *core.System, grid *System, procs, iters int, tr Transport) (*Result, []float64, error) {
	n := grid.N
	if procs <= 0 || n%procs != 0 {
		return nil, nil, fmt.Errorf("spice: %d processors must divide grid side %d", procs, n)
	}
	if len(sys.Nodes()) < procs {
		return nil, nil, fmt.Errorf("spice: need %d nodes, have %d", procs, len(sys.Nodes()))
	}
	rows := n / procs
	x := make([]float64, grid.Unknowns())
	res := &Result{Transport: tr, Procs: procs, Iterations: iters}

	send := make([]func(sp *kern.Subprocess, to int, b boundary), procs)
	recvFrom := make([]func(sp *kern.Subprocess, from, iter int) []float64, procs)

	switch tr {
	case UDO:
		// One receiving object per processor; senders use remote
		// handles. Out-of-order iterations (a fast neighbor can be
		// one sweep ahead) are reordered in a local pending buffer.
		rx := make([]*udo.Object, procs)
		pending := make([]map[[2]int][]float64, procs)
		for p := 0; p < procs; p++ {
			rx[p] = udo.New(sys.Node(p).IF, fmt.Sprintf("spice.rx.%d", p), false)
			pending[p] = map[[2]int][]float64{}
		}
		for p := 0; p < procs; p++ {
			p := p
			remotes := map[int]*udo.Remote{}
			send[p] = func(sp *kern.Subprocess, to int, b boundary) {
				r := remotes[to]
				if r == nil {
					r = udo.NewRemote(sys.Node(p).IF, fmt.Sprintf("spice.rx.%d", to))
					remotes[to] = r
				}
				if err := r.Send(sp, sys.Node(to).EP, len(b.vals)*ValueBytes, b); err != nil {
					panic(err)
				}
				res.Messages++
			}
			recvFrom[p] = func(sp *kern.Subprocess, from, iter int) []float64 {
				key := [2]int{from, iter}
				for {
					if vals, ok := pending[p][key]; ok {
						delete(pending[p], key)
						return vals
					}
					m := rx[p].Recv(sp)
					b := m.Payload.(boundary)
					pending[p][[2]int{b.from, b.iter}] = b.vals
				}
			}
		}
	case Channels:
		// One channel per directed neighbor pair, opened in globally
		// sorted name order (deadlock-free rendezvous). Channels
		// preserve per-neighbor order, and the stop-and-wait flow
		// control keeps neighbors within one sweep of each other, so
		// reads can be taken in order with an iteration check.
		type key struct{ from, to int }
		chans := make([]map[key]*channels.Channel, procs)
		openAll := func(sp *kern.Subprocess, p int) {
			if chans[p] != nil {
				return
			}
			chans[p] = map[key]*channels.Channel{}
			var names []string
			byName := map[string]key{}
			add := func(a, b int) {
				nm := fmt.Sprintf("spice.ch.%03d.%03d", a, b)
				names = append(names, nm)
				byName[nm] = key{a, b}
			}
			if p > 0 {
				add(p, p-1)
				add(p-1, p)
			}
			if p < procs-1 {
				add(p, p+1)
				add(p+1, p)
			}
			sort.Strings(names)
			for _, nm := range names {
				chans[p][byName[nm]] = sys.Node(p).Chans.Open(sp, nm, objmgr.OpenAny)
			}
		}
		pending := make([]map[[2]int][]float64, procs)
		for p := 0; p < procs; p++ {
			pending[p] = map[[2]int][]float64{}
		}
		for p := 0; p < procs; p++ {
			p := p
			send[p] = func(sp *kern.Subprocess, to int, b boundary) {
				openAll(sp, p)
				if err := chans[p][key{p, to}].Write(sp, len(b.vals)*ValueBytes, b); err != nil {
					panic(err)
				}
				res.Messages++
			}
			recvFrom[p] = func(sp *kern.Subprocess, from, iter int) []float64 {
				openAll(sp, p)
				k := [2]int{from, iter}
				for {
					if vals, ok := pending[p][k]; ok {
						delete(pending[p], k)
						return vals
					}
					m, ok := chans[p][key{from, p}].Read(sp)
					if !ok {
						panic("spice: channel closed mid-solve")
					}
					b := m.Payload.(boundary)
					pending[p][[2]int{b.from, b.iter}] = b.vals
				}
			}
		}
	}

	start := sys.K.Now()
	var finish sim.Time
	for p := 0; p < procs; p++ {
		p := p
		sys.Spawn(sys.Node(p), fmt.Sprintf("spice%d", p), 0, func(sp *kern.Subprocess) {
			r0 := p * rows
			// Local strip with one halo row on each side: local rows
			// 1..rows hold global rows r0..r0+rows-1.
			loc := make([]float64, (rows+2)*n)
			nxt := make([]float64, (rows+2)*n)
			lrow := func(buf []float64, lr int) []float64 { return buf[lr*n : (lr+1)*n] }
			for it := 0; it < iters; it++ {
				// Send my edge rows to the neighbors that need them.
				if p > 0 {
					send[p](sp, p-1, boundary{from: p, iter: it, vals: append([]float64(nil), lrow(loc, 1)...)})
				}
				if p < procs-1 {
					send[p](sp, p+1, boundary{from: p, iter: it, vals: append([]float64(nil), lrow(loc, rows)...)})
				}
				// Receive the neighbors' edge rows into my halos.
				if p > 0 {
					copy(lrow(loc, 0), recvFrom[p](sp, p-1, it))
				}
				if p < procs-1 {
					copy(lrow(loc, rows+1), recvFrom[p](sp, p+1, it))
				}
				// Jacobi sweep over my strip: ~5 flops per unknown.
				sp.Compute(sim.Duration(rows*n*5) * FlopCost)
				for lr := 1; lr <= rows; lr++ {
					gr := r0 + lr - 1
					for c := 0; c < n; c++ {
						sum := grid.B[gr*n+c]
						if gr > 0 {
							sum += loc[(lr-1)*n+c]
						}
						if gr < n-1 {
							sum += loc[(lr+1)*n+c]
						}
						if c > 0 {
							sum += loc[lr*n+c-1]
						}
						if c < n-1 {
							sum += loc[lr*n+c+1]
						}
						nxt[lr*n+c] = sum / grid.Diag
					}
				}
				copy(loc[n:(rows+1)*n], nxt[n:(rows+1)*n])
			}
			// Publish my strip into the assembled solution.
			copy(x[r0*n:(r0+rows)*n], loc[n:(rows+1)*n])
			if sp.Now() > finish {
				finish = sp.Now()
			}
		})
	}
	if err := sys.Run(); err != nil {
		return nil, nil, fmt.Errorf("spice: %w", err)
	}
	res.Elapsed = finish.Sub(start)
	res.Residual = grid.Residual(x)
	return res, x, nil
}
