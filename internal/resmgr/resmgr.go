// Package resmgr implements the two processor-allocation policies of
// paper §3.1.
//
// Meglos allocated processors to an application when it started
// running and returned them to the free pool the moment it finished —
// maximizing sharing (up to 15 protected processes per processor,
// with an "exclusive access" capability bolted on later), but
// creating the classic failure: while a programmer recompiles,
// somebody else starts an application with exclusive access on the
// remaining processors, and the rerun is greeted with "processors not
// available".
//
// VORX formalizes allocation: a user allocates all the processors he
// needs *before* running anything, and they stay his until explicitly
// freed. The residual problem — users forgetting to free processors —
// is handled the way the paper describes: a force-free command that
// can release another user's processors, "and request that it be used
// carefully".
package resmgr

import (
	"fmt"
	"sort"

	"hpcvorx/internal/sim"
)

// NodeID identifies a processing node in the pool.
type NodeID int

// ErrNotAvailable is the Meglos diagnostic the paper quotes.
var ErrNotAvailable = fmt.Errorf("processors not available")

// MaxProcessesPerNode is the Meglos per-processor process limit.
const MaxProcessesPerNode = 15

// --- Meglos policy ---

// Meglos is the allocate-at-run policy.
type Meglos struct {
	k     *sim.Kernel
	nodes []meglosNode
	apps  map[int]*MeglosApp
	seq   int
}

type meglosNode struct {
	procs     int // processes currently placed
	exclusive int // app id holding exclusive access, -1 if none
}

// MeglosApp is a running application's allocation.
type MeglosApp struct {
	ID        int
	User      string
	Nodes     []NodeID
	Exclusive bool
}

// NewMeglos creates the policy over a pool of n processors.
func NewMeglos(k *sim.Kernel, n int) *Meglos {
	m := &Meglos{k: k, nodes: make([]meglosNode, n), apps: make(map[int]*MeglosApp)}
	for i := range m.nodes {
		m.nodes[i].exclusive = -1
	}
	return m
}

// StartApp places an application of `procs` processes, one per
// processor, allocating at start time. With exclusive set, the chosen
// processors admit no other processes while the app runs. Returns
// ErrNotAvailable when not enough processors qualify — the failure
// mode §3.1 describes.
func (m *Meglos) StartApp(user string, procs int, exclusive bool) (*MeglosApp, error) {
	var chosen []NodeID
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.exclusive != -1 {
			continue
		}
		if exclusive && n.procs > 0 {
			continue
		}
		if n.procs >= MaxProcessesPerNode {
			continue
		}
		chosen = append(chosen, NodeID(i))
		if len(chosen) == procs {
			break
		}
	}
	if len(chosen) < procs {
		return nil, ErrNotAvailable
	}
	app := &MeglosApp{ID: m.seq, User: user, Nodes: chosen, Exclusive: exclusive}
	m.seq++
	m.apps[app.ID] = app
	for _, id := range chosen {
		m.nodes[id].procs++
		if exclusive {
			m.nodes[id].exclusive = app.ID
		}
	}
	return app, nil
}

// EndApp finishes the application; its processors return to the free
// pool immediately and are available to anyone.
func (m *Meglos) EndApp(app *MeglosApp) {
	if _, ok := m.apps[app.ID]; !ok {
		return
	}
	delete(m.apps, app.ID)
	for _, id := range app.Nodes {
		m.nodes[id].procs--
		if m.nodes[id].exclusive == app.ID {
			m.nodes[id].exclusive = -1
		}
	}
}

// FreeProcessors counts processors with no exclusive holder and spare
// process slots.
func (m *Meglos) FreeProcessors() int {
	free := 0
	for i := range m.nodes {
		if m.nodes[i].exclusive == -1 && m.nodes[i].procs < MaxProcessesPerNode {
			free++
		}
	}
	return free
}

// --- VORX policy ---

// VORX is the allocate-before-run policy.
type VORX struct {
	k       *sim.Kernel
	owner   []string
	since   []sim.Time
	lastUse []sim.Time
	// ForceFrees counts uses of the force-free command.
	ForceFrees int
}

// NewVORX creates the policy over a pool of n processors.
func NewVORX(k *sim.Kernel, n int) *VORX {
	return &VORX{k: k, owner: make([]string, n), since: make([]sim.Time, n), lastUse: make([]sim.Time, n)}
}

// Allocate reserves n processors for user until explicitly freed.
func (v *VORX) Allocate(user string, n int) ([]NodeID, error) {
	return v.AllocateWhere(user, n, nil)
}

// AllocateWhere reserves n free processors satisfying ok, scanning in
// ascending id order like Allocate. The supervisor uses it to pick
// spare nodes for reincarnated subprocesses while excluding machines
// that are themselves crashed. A nil ok admits every free processor.
func (v *VORX) AllocateWhere(user string, n int, ok func(NodeID) bool) ([]NodeID, error) {
	if user == "" {
		return nil, fmt.Errorf("resmgr: empty user")
	}
	var chosen []NodeID
	for i := range v.owner {
		if v.owner[i] != "" {
			continue
		}
		if ok != nil && !ok(NodeID(i)) {
			continue
		}
		chosen = append(chosen, NodeID(i))
		if len(chosen) == n {
			break
		}
	}
	if len(chosen) < n {
		return nil, ErrNotAvailable
	}
	now := v.k.Now()
	for _, id := range chosen {
		v.owner[id] = user
		v.since[id] = now
		v.lastUse[id] = now
	}
	return chosen, nil
}

// Use records activity on a processor (running an application touches
// it); feeds the idle-reclaim report.
func (v *VORX) Use(id NodeID) { v.lastUse[id] = v.k.Now() }

// OwnerOf returns the user holding a processor ("" = free).
func (v *VORX) OwnerOf(id NodeID) string { return v.owner[id] }

// Owned returns the processors held by user, ascending.
func (v *VORX) Owned(user string) []NodeID {
	var out []NodeID
	for i, o := range v.owner {
		if o == user {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Free releases processors the user owns. Releasing someone else's
// processor is an error — use ForceFree for that.
func (v *VORX) Free(user string, ids []NodeID) error {
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(v.owner) {
			return fmt.Errorf("resmgr: bad processor %d", id)
		}
		if v.owner[id] != user {
			return fmt.Errorf("resmgr: processor %d owned by %q, not %q", id, v.owner[id], user)
		}
	}
	for _, id := range ids {
		v.owner[id] = ""
	}
	return nil
}

// ForceFree releases processors regardless of owner — the command the
// paper provides for abandoned allocations, "and request that it be
// used carefully". It returns the owners whose processors were taken.
func (v *VORX) ForceFree(ids []NodeID) []string {
	ownersSet := map[string]bool{}
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(v.owner) {
			continue
		}
		if v.owner[id] != "" {
			ownersSet[v.owner[id]] = true
		}
		v.owner[id] = ""
	}
	v.ForceFrees++
	owners := make([]string, 0, len(ownersSet))
	for o := range ownersSet {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	return owners
}

// IdleFor returns the processors owned by someone but unused for at
// least d — the candidates the paper's rejected automatic-reclaim
// schemes would have targeted; here they are only reported.
func (v *VORX) IdleFor(d sim.Duration) []NodeID {
	var out []NodeID
	now := v.k.Now()
	for i, o := range v.owner {
		if o != "" && now.Sub(v.lastUse[i]) >= d {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// FreeProcessors counts unowned processors.
func (v *VORX) FreeProcessors() int {
	n := 0
	for _, o := range v.owner {
		if o == "" {
			n++
		}
	}
	return n
}

// AutoReclaim frees every processor idle for at least d and returns
// the reclaimed ids. The paper *considered* automatic reclamation
// ("automatically freeing them when a user logs off ... or when there
// is no activity for several hours") and rejected it because every
// variant has objectionable properties — demonstrated by the tests:
// a user who is thinking, not typing, loses the processors mid-
// session. It is provided as an explicitly invoked policy only.
func (v *VORX) AutoReclaim(d sim.Duration) []NodeID {
	idle := v.IdleFor(d)
	for _, id := range idle {
		v.owner[id] = ""
	}
	return idle
}
