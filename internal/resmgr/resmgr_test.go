package resmgr

import (
	"errors"
	"testing"
	"testing/quick"

	"hpcvorx/internal/sim"
)

func TestMeglosRecompileRace(t *testing.T) {
	// Paper §3.1, verbatim scenario: a programmer runs, finishes,
	// recompiles; meanwhile somebody else starts an exclusive app on
	// the remaining processors; the rerun gets "processors not
	// available".
	k := sim.NewKernel(1)
	m := NewMeglos(k, 8)

	app, err := m.StartApp("alice", 8, true)
	if err != nil {
		t.Fatal(err)
	}
	m.EndApp(app) // run finished; processors return to the pool

	// While alice recompiles, bob grabs everything exclusively.
	if _, err := m.StartApp("bob", 8, true); err != nil {
		t.Fatalf("bob should get the freed processors: %v", err)
	}

	// Alice's rerun fails with the famous diagnostic.
	_, err = m.StartApp("alice", 8, true)
	if !errors.Is(err, ErrNotAvailable) {
		t.Fatalf("want %q, got %v", ErrNotAvailable, err)
	}
}

func TestMeglosSharingWithoutExclusive(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMeglos(k, 2)
	// Up to 15 protected processes share one processor.
	var apps []*MeglosApp
	for i := 0; i < 15; i++ {
		app, err := m.StartApp("u", 1, false)
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
		apps = append(apps, app)
		if app.Nodes[0] != 0 {
			t.Fatalf("app %d placed on %v", i, app.Nodes)
		}
	}
	// 16th process on node 0 is refused; it lands on node 1.
	app, err := m.StartApp("u", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if app.Nodes[0] != 1 {
		t.Fatalf("16th process placed on %v, want node 1", app.Nodes)
	}
	for _, a := range apps {
		m.EndApp(a)
	}
	if m.FreeProcessors() != 2 {
		t.Fatalf("free = %d", m.FreeProcessors())
	}
}

func TestMeglosExclusiveExcludesSharing(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMeglos(k, 1)
	if _, err := m.StartApp("a", 1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartApp("b", 1, false); !errors.Is(err, ErrNotAvailable) {
		t.Fatalf("sharing with an exclusive holder should fail, got %v", err)
	}
}

func TestVORXAllocationSurvivesRecompile(t *testing.T) {
	// The VORX fix: processors allocated before the session stay with
	// the user through the whole edit-compile-run loop.
	k := sim.NewKernel(1)
	v := NewVORX(k, 8)
	mine, err := v.Allocate("alice", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Bob cannot take them, during alice's recompile or ever.
	if _, err := v.Allocate("bob", 1); !errors.Is(err, ErrNotAvailable) {
		t.Fatalf("bob should be refused, got %v", err)
	}
	// Alice's rerun uses her own processors.
	if got := v.Owned("alice"); len(got) != 8 {
		t.Fatalf("alice owns %v", got)
	}
	if err := v.Free("alice", mine); err != nil {
		t.Fatal(err)
	}
	if v.FreeProcessors() != 8 {
		t.Fatalf("free = %d", v.FreeProcessors())
	}
}

func TestVORXCannotFreeOthersProcessors(t *testing.T) {
	k := sim.NewKernel(1)
	v := NewVORX(k, 4)
	ids, _ := v.Allocate("alice", 2)
	if err := v.Free("bob", ids); err == nil {
		t.Fatal("bob freeing alice's processors should fail")
	}
	if len(v.Owned("alice")) != 2 {
		t.Fatal("alice's allocation must be intact after failed free")
	}
}

func TestVORXForceFree(t *testing.T) {
	// Users sometimes forget to free processors; the force-free
	// command reclaims them.
	k := sim.NewKernel(1)
	v := NewVORX(k, 4)
	v.Allocate("forgetful", 4)
	if _, err := v.Allocate("needy", 2); !errors.Is(err, ErrNotAvailable) {
		t.Fatalf("pool should be exhausted, got %v", err)
	}
	owners := v.ForceFree([]NodeID{0, 1})
	if len(owners) != 1 || owners[0] != "forgetful" {
		t.Fatalf("owners = %v", owners)
	}
	if _, err := v.Allocate("needy", 2); err != nil {
		t.Fatalf("allocation after force-free: %v", err)
	}
	if v.ForceFrees != 1 {
		t.Fatalf("force-free count = %d", v.ForceFrees)
	}
}

func TestVORXIdleReport(t *testing.T) {
	k := sim.NewKernel(1)
	v := NewVORX(k, 3)
	ids, _ := v.Allocate("u", 2)
	k.After(sim.Seconds(3600), func() {
		v.Use(ids[0]) // processor 0 active after an hour
	})
	k.After(sim.Seconds(7200), func() {
		idle := v.IdleFor(sim.Seconds(5400))
		if len(idle) != 1 || idle[0] != ids[1] {
			t.Errorf("idle = %v, want [%d]", idle, ids[1])
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: under any sequence of VORX allocate/free pairs, ownership
// accounting stays consistent: owned + free == total, and no processor
// has two owners.
func TestVORXAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		k := sim.NewKernel(1)
		const total = 16
		v := NewVORX(k, total)
		users := []string{"a", "b", "c"}
		for _, op := range ops {
			u := users[int(op)%len(users)]
			if op%2 == 0 {
				n := int(op/16)%4 + 1
				if ids, err := v.Allocate(u, n); err == nil {
					for _, id := range ids {
						if v.OwnerOf(id) != u {
							return false
						}
					}
				}
			} else {
				owned := v.Owned(u)
				if len(owned) > 0 {
					if err := v.Free(u, owned[:1+int(op/16)%len(owned)]); err != nil {
						return false
					}
				}
			}
			sum := v.FreeProcessors()
			for _, u := range users {
				sum += len(v.Owned(u))
			}
			if sum != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoReclaimIsObjectionable(t *testing.T) {
	// The property that made the paper reject automatic reclamation:
	// a user who is debugging — allocated, but idle while reading
	// code — silently loses processors mid-session.
	k := sim.NewKernel(1)
	v := NewVORX(k, 4)
	ids, _ := v.Allocate("thinker", 4)
	k.After(sim.Seconds(7200), func() {
		// Two hours of reading the source, no runs.
		reclaimed := v.AutoReclaim(sim.Seconds(3600))
		if len(reclaimed) != 4 {
			t.Errorf("reclaimed %v", reclaimed)
		}
		// The user's next run now fails even though nobody else
		// needed the processors.
		if got := v.Owned("thinker"); len(got) != 0 {
			t.Errorf("thinker still owns %v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	_ = ids
}

func TestAutoReclaimSparesActiveUsers(t *testing.T) {
	k := sim.NewKernel(1)
	v := NewVORX(k, 2)
	ids, _ := v.Allocate("active", 2)
	k.After(sim.Seconds(3000), func() { v.Use(ids[0]); v.Use(ids[1]) })
	k.After(sim.Seconds(5000), func() {
		if got := v.AutoReclaim(sim.Seconds(3600)); len(got) != 0 {
			t.Errorf("reclaimed active user's processors: %v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
