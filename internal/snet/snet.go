// Package snet models the S/NET, the single-bus interconnect that
// preceded the HPC (Ahuja 1983), together with the flow-control
// behaviour that paper §2 describes:
//
//   - All processors share one bus; transfers serialize on it.
//   - Each processor has a 2048-byte FIFO input buffer holding several
//     incoming messages.
//   - When a message does not fit, the FIFO *retains the portion
//     received up to the overflow*, rejects the message, and returns a
//     fifo-full signal to the transmitter. The receiving software must
//     read and discard the partial fragment — which is precisely what
//     makes retry loops livelock under many-to-one traffic.
//
// Recovery strategies (spin-retry, random backoff, reservation) are
// layered on top in package flowctl.
package snet

import (
	"fmt"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/trace"
)

// Result reports the hardware outcome of one bus transfer.
type Result int

const (
	// Delivered means the whole message entered the receiver's FIFO.
	Delivered Result = iota
	// FifoFull means the receiver's FIFO lacked room; a fragment of
	// the message (possibly empty) was deposited and must be read
	// and discarded by the receiver.
	FifoFull
)

func (r Result) String() string {
	if r == Delivered {
		return "delivered"
	}
	return "fifo-full"
}

// Message is a delivered S/NET message.
type Message struct {
	Src     int
	Size    int
	Payload any
	// Corrupt marks a message damaged in transit (fault injection:
	// the paper's early S/NET work "was unsure of its error
	// characteristics" and added detection/recovery in software).
	Corrupt bool
}

// Stats counts network-level activity.
type Stats struct {
	Transfers   int // bus transfers attempted
	Delivered   int // complete messages deposited
	Rejected    int // fifo-full results
	Lost        int // transfers destroyed in flight by fault injection
	JunkBytes   int64
	DataBytes   int64
	BusBusyTime sim.Duration
}

// Fate is an injector's verdict on one bus transfer.
type Fate int

const (
	// FateDeliver deposits the message intact (the default).
	FateDeliver Fate = iota
	// FateCorrupt deposits the bytes damaged; software checksums must
	// catch it.
	FateCorrupt
	// FateDrop destroys the message in flight: the bus transfer
	// completes and the transmitter sees success, but nothing reaches
	// the receiver's FIFO. Only an end-to-end timeout can detect it.
	FateDrop
)

// Injector decides the fate of each bus transfer that fit the
// receiver's FIFO. It is the single fault-injection point of the
// S/NET model; package fault installs probabilistic loss/corruption
// models through it. Injectors are consulted in bus-transfer order,
// which is deterministic, so a seeded injector yields reproducible
// fault patterns.
type Injector interface {
	Transfer(src, dst, size int) Fate
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(src, dst, size int) Fate

// Transfer implements Injector.
func (f InjectorFunc) Transfer(src, dst, size int) Fate { return f(src, dst, size) }

// Network is one S/NET: a bus plus n stations.
type Network struct {
	k        *sim.Kernel
	costs    *m68k.Costs
	stations []*Station
	busSem   *sim.Semaphore
	stats    Stats

	injector Injector
	tracer   *trace.Tracer
}

// SetTracer installs the unified event tracer: bus transfers become
// spans on the "snet"/"bus" lane, FIFO overflows become instants on
// the receiving station's lane, and FIFO occupancy is exported as a
// per-station gauge.
func (nw *Network) SetTracer(t *trace.Tracer) { nw.tracer = t }

// SetInjector installs the network's fault injector (nil disables
// injection).
func (nw *Network) SetInjector(inj Injector) { nw.injector = inj }

// SetCorruptEvery makes every nth accepted data transfer arrive
// corrupted (0 disables injection). It is a thin shim over
// SetInjector kept for existing callers; installing it replaces any
// other injector.
func (nw *Network) SetCorruptEvery(n int) {
	if n <= 0 {
		nw.SetInjector(nil)
		return
	}
	transferred := 0
	nw.SetInjector(InjectorFunc(func(src, dst, size int) Fate {
		transferred++
		if transferred%n == 0 {
			return FateCorrupt
		}
		return FateDeliver
	}))
}

// NewNetwork creates an S/NET with n stations. The paper's largest
// system had 12; most had 8.
func NewNetwork(k *sim.Kernel, costs *m68k.Costs, n int) *Network {
	nw := &Network{k: k, costs: costs, busSem: sim.NewSemaphore(k, "snet-bus", 1)}
	for i := 0; i < n; i++ {
		st := &Station{nw: nw, id: i, fifoCap: costs.SNETFifoCap}
		st.fifoCond = sim.NewCond(k, fmt.Sprintf("snet-fifo%d", i))
		nw.stations = append(nw.stations, st)
	}
	return nw
}

// Stations returns the number of stations.
func (nw *Network) Stations() int { return len(nw.stations) }

// Station returns station i.
func (nw *Network) Station(i int) *Station { return nw.stations[i] }

// Stats returns a snapshot of the network counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Station is one processor's S/NET interface: its bus port and its
// receive FIFO.
type Station struct {
	nw       *Network
	id       int
	fifoCap  int
	fifoUsed int
	records  []fifoRecord
	fifoCond *sim.Cond
	deliver  func(m Message)
	draining bool

	// Gray degradation (PR 6): a flaky-but-alive station. graySlow
	// multiplies the per-record read cost of the drain process;
	// grayDrop, when non-nil, is consulted per incoming transfer and
	// true loses the deposit as if the FIFO logic glitched.
	graySlow float64
	grayDrop func(src, size int) bool

	// Counters.
	DeliveredMsgs int
	DiscardedJunk int
	// GrayDropped counts transfers lost to gray degradation.
	GrayDropped int
}

// fifoRecord is one entry in a receive FIFO: either a whole message or
// a junk fragment of a rejected one.
type fifoRecord struct {
	size    int
	junk    bool
	src     int
	payload any
	corrupt bool
}

// ID returns the station index.
func (s *Station) ID() int { return s.id }

// FifoUsed returns the bytes currently occupying the FIFO.
func (s *Station) FifoUsed() int { return s.fifoUsed }

// FifoFree returns the free FIFO bytes.
func (s *Station) FifoFree() int { return s.fifoCap - s.fifoUsed }

// SetDeliver installs the callback invoked (from the station's drain
// process) for each complete message read out of the FIFO.
func (s *Station) SetDeliver(fn func(m Message)) { s.deliver = fn }

// SetGray makes the station flaky without killing it: slow (> 1)
// multiplies the fixed per-record cost of the kernel drain process,
// and drop — when non-nil — is consulted per incoming transfer; true
// loses the deposit while the transmitter still sees a clean bus
// transfer. SetGray(0, nil) restores a healthy station. The fault
// engine drives this with a seeded generator so runs stay
// deterministic.
func (s *Station) SetGray(slow float64, drop func(src, size int) bool) {
	s.graySlow = slow
	s.grayDrop = drop
}

// StartKernel spawns the station's low-level input process, which
// reads records out of the FIFO as fast as the CPU allows: a fixed
// per-record cost plus the per-byte copy cost. Junk fragments are
// read and discarded exactly like real data, which is what limits the
// drain rate under overflow.
func (s *Station) StartKernel() {
	if s.draining {
		return
	}
	s.draining = true
	pr := s.nw.k.Spawn(fmt.Sprintf("snet-kern%d", s.id), func(p *sim.Proc) {
		// The FIFO frees space word by word as the processor reads it
		// out, not record-at-a-time. That gradual freeing is what lets
		// spinning retransmitters consume every opening as a junk
		// fragment before room for a whole message ever accumulates —
		// the lockout of paper §2. We model it with 32-byte chunks.
		const chunk = 32
		for {
			for len(s.records) == 0 {
				s.fifoCond.Wait(p)
			}
			rec := s.records[0]
			s.records = s.records[1:]
			rd := s.nw.costs.SNETReadFixed
			if s.graySlow > 1 {
				rd = sim.Duration(float64(rd) * s.graySlow)
			}
			p.Sleep(rd)
			for done := 0; done < rec.size; {
				n := chunk
				if rec.size-done < n {
					n = rec.size - done
				}
				p.Sleep(s.nw.costs.CopyTime(n))
				s.fifoUsed -= n
				done += n
			}
			if rec.junk {
				s.DiscardedJunk++
			} else {
				s.DeliveredMsgs++
				if s.deliver != nil {
					s.deliver(Message{Src: rec.src, Size: rec.size, Payload: rec.payload, Corrupt: rec.corrupt})
				}
			}
		}
	})
	pr.SetDaemon(true)
}

// Send performs one bus transfer of size bytes to station dst,
// blocking p for bus arbitration and the transfer time. The result
// reports whether the message fit in dst's FIFO; on FifoFull the
// fragment that fit (possibly zero bytes) was deposited as junk the
// receiver must discard.
func (s *Station) Send(p *sim.Proc, dst, size int, payload any) Result {
	if dst < 0 || dst >= len(s.nw.stations) {
		panic(fmt.Sprintf("snet: bad destination %d", dst))
	}
	if size <= 0 {
		panic("snet: message size must be positive")
	}
	nw := s.nw
	nw.busSem.Acquire(p)
	start := p.Now()
	p.Sleep(nw.costs.SNETBusFixed + sim.Duration(size)*nw.costs.SNETBusPerByte)
	nw.stats.BusBusyTime += p.Now().Sub(start)
	nw.busSem.Release()

	nw.stats.Transfers++
	if tr := nw.tracer; tr.Enabled() {
		tr.EmitSpan(trace.KBus, 0, "snet", "bus", start, fmt.Sprintf("%d->%d %dB", s.id, dst, size))
		tr.Count("snet.transfers", 1)
	}
	d := nw.stations[dst]
	if d.fifoUsed+size <= d.fifoCap {
		fate := FateDeliver
		if nw.injector != nil {
			fate = nw.injector.Transfer(s.id, dst, size)
		}
		if fate == FateDrop {
			// The transmitter saw a clean transfer; the bytes are gone.
			nw.stats.Lost++
			return Delivered
		}
		if d.grayDrop != nil && d.grayDrop(s.id, size) {
			// Gray receiver hardware lost the deposit; like FateDrop,
			// only an end-to-end timeout can tell.
			d.GrayDropped++
			nw.stats.Lost++
			return Delivered
		}
		d.push(fifoRecord{size: size, src: s.id, payload: payload, corrupt: fate == FateCorrupt})
		nw.stats.Delivered++
		nw.stats.DataBytes += int64(size)
		return Delivered
	}
	// Overflow: the fragment received before the FIFO filled stays
	// behind as junk.
	frag := d.fifoCap - d.fifoUsed
	if frag > 0 {
		d.push(fifoRecord{size: frag, junk: true, src: s.id})
		nw.stats.JunkBytes += int64(frag)
	}
	nw.stats.Rejected++
	if tr := nw.tracer; tr.Enabled() {
		tr.Emit(trace.KFifoFull, 0, "snet", fmt.Sprintf("fifo%d", dst),
			fmt.Sprintf("from %d %dB (junk %dB)", s.id, size, frag))
		tr.Count("snet.fifo_full", 1)
	}
	return FifoFull
}

func (s *Station) push(rec fifoRecord) {
	s.fifoUsed += rec.size
	s.records = append(s.records, rec)
	if tr := s.nw.tracer; tr.Enabled() {
		tr.GaugeSet(fmt.Sprintf("snet.fifo%d.used", s.id), float64(s.fifoUsed))
	}
	s.fifoCond.Signal()
}

