package snet

import (
	"fmt"
	"testing"
	"testing/quick"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
)

func newNet(n int) (*sim.Kernel, *Network) {
	k := sim.NewKernel(1)
	return k, NewNetwork(k, m68k.DefaultCosts(), n)
}

func TestBasicDelivery(t *testing.T) {
	k, nw := newNet(2)
	var got []Message
	nw.Station(1).SetDeliver(func(m Message) { got = append(got, m) })
	nw.Station(1).StartKernel()
	k.Spawn("s", func(p *sim.Proc) {
		if r := nw.Station(0).Send(p, 1, 200, "x"); r != Delivered {
			t.Errorf("result = %v", r)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Size != 200 || got[0].Src != 0 || got[0].Payload != "x" {
		t.Fatalf("got %+v", got)
	}
	if nw.Stats().Delivered != 1 || nw.Stats().DataBytes != 200 {
		t.Fatalf("stats = %+v", nw.Stats())
	}
}

func TestFifoOverflowLeavesFragment(t *testing.T) {
	// Paper §2: "the fifo retained the portion of the message that
	// was received up to the time of the overflow. The communications
	// software in the receiving processor had to read and discard
	// this initial portion."
	k, nw := newNet(2)
	st := nw.Station(1) // no drain kernel: FIFO only fills
	k.Spawn("s", func(p *sim.Proc) {
		if r := nw.Station(0).Send(p, 1, 1500, nil); r != Delivered {
			t.Errorf("first send = %v", r)
		}
		if r := nw.Station(0).Send(p, 1, 1000, nil); r != FifoFull {
			t.Errorf("overflow send = %v, want fifo-full", r)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1500 data + 548 fragment fills the 2048-byte FIFO exactly.
	if st.FifoUsed() != 2048 {
		t.Fatalf("fifo used = %d, want 2048", st.FifoUsed())
	}
	if nw.Stats().JunkBytes != 548 || nw.Stats().Rejected != 1 {
		t.Fatalf("stats = %+v", nw.Stats())
	}
}

func TestJunkIsReadAndDiscarded(t *testing.T) {
	k, nw := newNet(2)
	st := nw.Station(1)
	delivered := 0
	st.SetDeliver(func(m Message) { delivered++ })
	k.Spawn("s", func(p *sim.Proc) {
		nw.Station(0).Send(p, 1, 1500, nil)
		nw.Station(0).Send(p, 1, 1000, nil) // rejected, leaves 548 junk
		st.StartKernel()                    // drain only now
		p.Sleep(sim.Milliseconds(5))
		if st.FifoUsed() != 0 {
			t.Errorf("fifo not drained: %d", st.FifoUsed())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (junk must not be delivered)", delivered)
	}
	if st.DiscardedJunk != 1 {
		t.Fatalf("junk discarded = %d", st.DiscardedJunk)
	}
}

func TestBusSerializes(t *testing.T) {
	k, nw := newNet(3)
	nw.Station(2).StartKernel()
	var ends []sim.Time
	for s := 0; s < 2; s++ {
		s := s
		k.Spawn(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
			nw.Station(s).Send(p, 2, 1000, nil)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Each transfer holds the bus for 5 + 100 = 105 µs; the second
	// must finish a full transfer after the first.
	if len(ends) != 2 {
		t.Fatal("missing senders")
	}
	if ends[1].Sub(ends[0]) != sim.Microseconds(105) {
		t.Fatalf("bus overlap: ends %v", ends)
	}
}

func TestTwelve150ByteBurstFits(t *testing.T) {
	// Paper §2: "12 processors could each send a 150 byte message to
	// a single processor without overflowing its fifo."
	k, nw := newNet(13)
	delivered := 0
	nw.Station(0).SetDeliver(func(m Message) { delivered++ })
	nw.Station(0).StartKernel()
	rejects := 0
	for s := 1; s <= 12; s++ {
		s := s
		k.Spawn(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
			if nw.Station(s).Send(p, 0, 150, nil) == FifoFull {
				rejects++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rejects != 0 {
		t.Fatalf("rejects = %d, want 0", rejects)
	}
	if delivered != 12 {
		t.Fatalf("delivered = %d, want 12", delivered)
	}
}

func TestThirteenLongMessagesOverflow(t *testing.T) {
	// The complement: a simultaneous burst that exceeds 2048 bytes
	// must reject at least one message.
	k, nw := newNet(13)
	nw.Station(0).StartKernel()
	rejects := 0
	for s := 1; s <= 12; s++ {
		s := s
		k.Spawn(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
			if nw.Station(s).Send(p, 0, 600, nil) == FifoFull {
				rejects++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rejects == 0 {
		t.Fatal("expected at least one fifo-full result")
	}
}

func TestSendValidation(t *testing.T) {
	k, nw := newNet(2)
	k.Spawn("s", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("bad destination should panic")
			}
		}()
		nw.Station(0).Send(p, 9, 10, nil)
	})
	defer func() { recover() }()
	_ = k.Run()
}

func TestStartKernelIdempotent(t *testing.T) {
	k, nw := newNet(2)
	st := nw.Station(1)
	st.StartKernel()
	st.StartKernel()
	delivered := 0
	st.SetDeliver(func(m Message) { delivered++ })
	k.Spawn("s", func(p *sim.Proc) { nw.Station(0).Send(p, 1, 100, nil) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d (double drain?)", delivered)
	}
}

// Property: bus accounting conserves messages — Delivered + Rejected
// equals Transfers, and FIFO occupancy never exceeds capacity or goes
// negative, across arbitrary burst patterns.
func TestSNETConservationProperty(t *testing.T) {
	f := func(sendersRaw, msgsRaw uint8, sizeRaw uint16) bool {
		senders := int(sendersRaw%6) + 1
		msgs := int(msgsRaw%6) + 1
		size := int(sizeRaw%1200) + 1
		k := sim.NewKernel(3)
		nw := NewNetwork(k, m68k.DefaultCosts(), senders+1)
		nw.Station(0).StartKernel()
		violated := false
		check := func() {
			st := nw.Station(0)
			if st.FifoUsed() < 0 || st.FifoUsed() > 2048 {
				violated = true
			}
		}
		for s := 1; s <= senders; s++ {
			s := s
			k.Spawn(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
				for m := 0; m < msgs; m++ {
					nw.Station(s).Send(p, 0, size, nil)
					check()
				}
			})
		}
		k.RunFor(sim.Seconds(2))
		k.Shutdown()
		st := nw.Stats()
		if violated {
			return false
		}
		return st.Delivered+st.Rejected == st.Transfers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
