// Package stub implements the VORX execution environment (paper
// §3.3). Each process running on a processing node has a stub process
// on a host workstation: the stub downloads the program and then
// provides the UNIX environment — every system call the node process
// issues is forwarded over a channel to its stub, executed on the
// host, and the result passed back.
//
// Two arrangements are modeled, with the trade-offs the paper
// describes:
//
//   - Per-process stubs: the host forks one stub per process, each
//     independently downloading a copy of the program. Perfect
//     environment replication, but slow to start: ~12 s for 70
//     processes, dominated by work centralized on the host.
//   - Shared stub + tree download: one stub downloads to one node,
//     which copies the text to two other nodes as it is received, and
//     so on — ~2 s for 70 processes. The costs: a blocking system
//     call from any process stalls the shared stub for all of them,
//     and the SunOS 32-descriptor limit is shared by every process of
//     the application.
package stub

import (
	"fmt"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// Image is the program to download.
type Image struct {
	// Bytes is the program text+data size. The default (see
	// DefaultImage) is calibrated so that 70 per-process downloads
	// take ≈12 s, as the paper reports.
	Bytes int
}

// DefaultImage is the calibrated program image.
func DefaultImage() Image { return Image{Bytes: 368 * 1024} }

// ChunkBytes is the tree-download forwarding unit.
const ChunkBytes = 1024

// ProcessInit is the node-side cost to initialize a downloaded
// process before it reports ready.
var ProcessInit = sim.Milliseconds(5)

// Mode selects the stub arrangement.
type Mode int

const (
	// PerProcess forks one stub per node process.
	PerProcess Mode = iota
	// SharedTree uses one stub and the fan-out-2 tree download.
	SharedTree
)

func (m Mode) String() string {
	if m == PerProcess {
		return "per-process"
	}
	return "shared-tree"
}

// App is a launched application.
type App struct {
	Mode  Mode
	uid   int
	Procs []*Proc
	Stubs []*Stub

	// StartedAt is when the last process reported running.
	StartedAt sim.Time
	started   int
	onReady   func()
}

// Ready reports whether every process has started.
func (a *App) Ready() bool { return a.started == len(a.Procs) }

func (a *App) processStarted(now sim.Time) {
	a.started++
	if a.started == len(a.Procs) {
		a.StartedAt = now
		if a.onReady != nil {
			a.onReady()
		}
	}
}

// Stub is a host-side stub process.
type Stub struct {
	app    *App
	host   *core.Machine
	id     int
	fds    map[int]string
	nextFD int
	// Syscalls counts forwarded calls executed by this stub.
	Syscalls int
}

// Proc is a node-side application process handle.
type Proc struct {
	app     *App
	node    *core.Machine
	id      int
	sc      *channels.Channel // syscall channel to the stub
	started bool
}

// Node returns the machine the process runs on.
func (p *Proc) Node() *core.Machine { return p.node }

// syscall wire messages
type scReq struct {
	proc int
	kind string // "open", "write", "block", ...
	arg  string
	dur  sim.Duration // host execution time beyond the base cost
}

type scRep struct {
	fd  int
	err string
}

type startedMsg struct{ proc int }

const (
	reqBytes = 96
	repBytes = 64
)

// Launch downloads img onto the given nodes from host and starts one
// process per node. It spawns everything needed and returns the App;
// drive the simulation (sys.Run or RunFor) to completion, after which
// App.StartedAt holds the makespan. onReady (may be nil) fires inside
// the simulation when the last process starts.
func Launch(sys *core.System, host *core.Machine, nodes []*core.Machine, img Image, mode Mode, onReady func()) *App {
	app := &App{Mode: mode, uid: sys.NextUID("stub"), onReady: onReady}
	for i, n := range nodes {
		app.Procs = append(app.Procs, &Proc{app: app, node: n, id: i})
	}
	if mode == PerProcess {
		launchPerProcess(sys, host, app, img)
	} else {
		launchTree(sys, host, app, img, 2)
	}
	return app
}

// LaunchTree is Launch in SharedTree mode with a configurable fan-out
// (the paper's tree copies to two other processors; the ablation
// benchmark varies this).
func LaunchTree(sys *core.System, host *core.Machine, nodes []*core.Machine, img Image, fanout int, onReady func()) *App {
	if fanout < 1 {
		fanout = 1
	}
	app := &App{Mode: SharedTree, uid: sys.NextUID("stub"), onReady: onReady}
	for i, n := range nodes {
		app.Procs = append(app.Procs, &Proc{app: app, node: n, id: i})
	}
	launchTree(sys, host, app, img, fanout)
	return app
}

// launchPerProcess: the host shell forks one stub per process; each
// stub opens a channel to its process's loader and downloads a full
// copy of the image, then serves system calls on the same channel.
func launchPerProcess(sys *core.System, host *core.Machine, app *App, img Image) {
	sys.Spawn(host, "shell", 0, func(sp *kern.Subprocess) {
		for i := range app.Procs {
			i := i
			sp.Compute(sys.Costs.HostFork) // fork(2) the stub
			st := &Stub{app: app, host: host, id: i, fds: map[int]string{}}
			app.Stubs = append(app.Stubs, st)
			sys.Spawn(host, fmt.Sprintf("stub%d", i), 0, func(ssp *kern.Subprocess) {
				ssp.Proc().SetDaemon(true)
				ch := host.Chans.Open(ssp, scName(app, i), objmgr.Serve)
				if err := ch.Write(ssp, img.Bytes, "text"); err != nil {
					panic(err)
				}
				// Wait for the process to report running, then serve
				// system calls forever.
				if m, ok := ch.Read(ssp); !ok {
					return
				} else if _, isStart := m.Payload.(startedMsg); !isStart {
					panic("stub: expected start message")
				}
				app.processStarted(ssp.Now())
				st.serve(ssp, ch)
			})
		}
	})
	for i := range app.Procs {
		i := i
		p := app.Procs[i]
		sys.Spawn(p.node, fmt.Sprintf("loader%d", i), 0, func(sp *kern.Subprocess) {
			ch := p.node.Chans.Open(sp, scName(app, i), objmgr.Connect)
			if _, ok := ch.Read(sp); !ok { // the program image
				return
			}
			sp.Compute(ProcessInit)
			p.sc = ch
			p.started = true
			ch.Write(sp, 32, startedMsg{proc: i})
		})
	}
}

// launchTree: one stub downloads to process 0; each process copies the
// text to its `fanout` tree children as it is received.
func launchTree(sys *core.System, host *core.Machine, app *App, img Image, fanout int) {
	chunks := (img.Bytes + ChunkBytes - 1) / ChunkBytes
	sys.Spawn(host, "shell", 0, func(sp *kern.Subprocess) {
		sp.Compute(sys.Costs.HostFork) // one fork only
		st := &Stub{app: app, host: host, id: 0, fds: map[int]string{}}
		app.Stubs = append(app.Stubs, st)
		sys.Spawn(host, "stub", 0, func(ssp *kern.Subprocess) {
			ssp.Proc().SetDaemon(true)
			dl := host.Chans.Open(ssp, treeName(app, 0), objmgr.Serve)
			for c := 0; c < chunks; c++ {
				n := ChunkBytes
				if rem := img.Bytes - c*ChunkBytes; rem < n {
					n = rem
				}
				if err := dl.Write(ssp, n, chunkMsg{seq: c, of: chunks}); err != nil {
					panic(err)
				}
			}
			// Collect per-process syscall channels and start notices,
			// then serve everything through one multiplexed loop.
			scs := make([]*channels.Channel, len(app.Procs))
			for i := range app.Procs {
				scs[i] = host.Chans.Open(ssp, scName(app, i), objmgr.Serve)
			}
			for range app.Procs {
				_, m, ok := channels.MuxRead(ssp, scs...)
				if !ok {
					return
				}
				sm := m.Payload.(startedMsg)
				app.Procs[sm.proc].started = true
				app.processStarted(ssp.Now())
			}
			st.serveMux(ssp, scs)
		})
	})
	n := len(app.Procs)
	for i := 0; i < n; i++ {
		i := i
		p := app.Procs[i]
		sys.Spawn(p.node, fmt.Sprintf("loader%d", i), 0, func(sp *kern.Subprocess) {
			// Order matters for rendezvous: connect to the parent
			// first, then serve the children.
			parent := p.node.Chans.Open(sp, treeName(app, i), objmgr.Connect)
			var kids []*channels.Channel
			for f := 1; f <= fanout; f++ {
				if c := fanout*i + f; c < n {
					kids = append(kids, p.node.Chans.Open(sp, treeName(app, c), objmgr.Serve))
				}
			}
			got := 0
			for got < chunks {
				m, ok := parent.Read(sp)
				if !ok {
					return
				}
				got++
				// Copy to both children as the text is received.
				for _, kc := range kids {
					if err := kc.Write(sp, m.Size, m.Payload); err != nil {
						panic(err)
					}
				}
			}
			sp.Compute(ProcessInit)
			sc := p.node.Chans.Open(sp, scName(app, i), objmgr.Connect)
			p.sc = sc
			p.started = true
			sc.Write(sp, 32, startedMsg{proc: i})
		})
	}
}

type chunkMsg struct{ seq, of int }


func scName(app *App, i int) string   { return fmt.Sprintf("stub.sc.%d.%d", app.uid, i) }
func treeName(app *App, i int) string { return fmt.Sprintf("stub.tree.%d.%d", app.uid, i) }

// serve handles system calls arriving on one channel (per-process
// stub): each is executed on the host and answered.
func (st *Stub) serve(sp *kern.Subprocess, ch *channels.Channel) {
	for {
		m, ok := ch.Read(sp)
		if !ok {
			return
		}
		rep := st.execute(sp, m.Payload.(scReq))
		if ch.Write(sp, repBytes, rep) != nil {
			return
		}
	}
}

// serveMux handles system calls from all processes of the application
// through one shared stub. A blocking call stalls every other
// process's system calls — the §3.3 problem.
func (st *Stub) serveMux(sp *kern.Subprocess, scs []*channels.Channel) {
	for {
		ch, m, ok := channels.MuxRead(sp, scs...)
		if !ok {
			return
		}
		rep := st.execute(sp, m.Payload.(scReq))
		if ch.Write(sp, repBytes, rep) != nil {
			return
		}
	}
}

// execute runs one forwarded UNIX system call on the host.
func (st *Stub) execute(sp *kern.Subprocess, req scReq) scRep {
	st.Syscalls++
	costs := st.host.Kern.Costs()
	sp.Compute(costs.HostSyscall)
	switch req.kind {
	case "open":
		if len(st.fds) >= costs.HostMaxFDs {
			return scRep{fd: -1, err: "too many open files"}
		}
		fd := st.nextFD
		st.nextFD++
		st.fds[fd] = req.arg
		return scRep{fd: fd}
	case "close":
		delete(st.fds, int(req.dur)) // dur doubles as the fd argument
		return scRep{}
	case "block":
		// A blocking call (e.g. a read from the keyboard): the stub
		// is held for the duration.
		sp.SleepFor(req.dur)
		return scRep{}
	default: // "write", "read", ... : plain host work
		sp.Compute(req.dur)
		return scRep{}
	}
}

// Syscall issues a forwarded UNIX system call from the node process:
// the request crosses to the stub, executes on the host, and the
// reply comes back. kind is "open", "close", "block", or anything
// else for plain host work of duration dur. For "open", arg names the
// file and the returned fd is >= 0 on success.
func (p *Proc) Syscall(sp *kern.Subprocess, kind, arg string, dur sim.Duration) (int, error) {
	if !p.started {
		return -1, fmt.Errorf("stub: process %d not started", p.id)
	}
	if err := p.sc.Write(sp, reqBytes, scReq{proc: p.id, kind: kind, arg: arg, dur: dur}); err != nil {
		return -1, err
	}
	m, ok := p.sc.Read(sp)
	if !ok {
		return -1, fmt.Errorf("stub: syscall channel closed")
	}
	rep := m.Payload.(scRep)
	if rep.err != "" {
		return rep.fd, fmt.Errorf("stub: %s", rep.err)
	}
	return rep.fd, nil
}
