package stub_test

import (
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/stub"
)

// launch builds a system with one host and n nodes, launches the app
// in the given mode, and returns the startup makespan in seconds.
func launch(t *testing.T, n int, mode stub.Mode) (*core.System, *stub.App, float64) {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	app := stub.Launch(sys, sys.Host(0), sys.Nodes(), stub.DefaultImage(), mode, nil)
	sys.RunFor(sim.Seconds(120))
	if !app.Ready() {
		t.Fatalf("app (%v) not started after 120 simulated seconds: %d/%d", mode, len(app.Procs), n)
	}
	return sys, app, app.StartedAt.Seconds()
}

func TestPerProcessDownload70TakesAbout12s(t *testing.T) {
	// Paper §3.3: "it takes 12 seconds to download and initialize a
	// process on each of 70 processors", dominated by host-
	// centralized work.
	sys, _, secs := launch(t, 70, stub.PerProcess)
	if secs < 10.5 || secs > 13.5 {
		t.Fatalf("per-process startup = %.2f s, paper reports ~12", secs)
	}
	sys.Shutdown()
}

func TestTreeDownload70TakesAboutTwoSeconds(t *testing.T) {
	// Paper §3.3: "With this method, it takes only two seconds to
	// download and start 70 processes."
	sys, _, secs := launch(t, 70, stub.SharedTree)
	if secs < 0.8 || secs > 3.2 {
		t.Fatalf("tree startup = %.2f s, paper reports ~2", secs)
	}
	sys.Shutdown()
}

func TestTreeBeatsPerProcessByLargeFactor(t *testing.T) {
	sysA, _, per := launch(t, 24, stub.PerProcess)
	sysA.Shutdown()
	sysB, _, tree := launch(t, 24, stub.SharedTree)
	sysB.Shutdown()
	if per/tree < 3 {
		t.Fatalf("speedup only %.1fx (per=%.2fs tree=%.2fs)", per/tree, per, tree)
	}
}

func TestSyscallForwarding(t *testing.T) {
	sys, app, _ := launch(t, 2, stub.PerProcess)
	done := false
	p := app.Procs[0]
	sys.Spawn(p.Node(), "app", 0, func(sp *kern.Subprocess) {
		fd, err := p.Syscall(sp, "open", "/tmp/results", 0)
		if err != nil || fd < 0 {
			t.Errorf("open: fd=%d err=%v", fd, err)
		}
		if _, err := p.Syscall(sp, "write", "", sim.Microseconds(500)); err != nil {
			t.Errorf("write: %v", err)
		}
		done = true
	})
	sys.RunFor(sim.Seconds(5))
	if !done {
		t.Fatal("syscalls did not complete")
	}
	if app.Stubs[0].Syscalls != 2 {
		t.Fatalf("stub executed %d syscalls, want 2", app.Stubs[0].Syscalls)
	}
	sys.Shutdown()
}

func TestPerProcessStubsIsolateBlockingSyscalls(t *testing.T) {
	// With one stub per process, a blocking call (read from the
	// keyboard) on process 0 does not delay process 1's syscalls.
	sys, app, _ := launch(t, 2, stub.PerProcess)
	var elapsed sim.Duration
	sys.Spawn(app.Procs[0].Node(), "blocker", 0, func(sp *kern.Subprocess) {
		app.Procs[0].Syscall(sp, "block", "", sim.Seconds(30))
	})
	sys.Spawn(app.Procs[1].Node(), "worker", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(10)) // let the blocker get in first
		start := sp.Now()
		app.Procs[1].Syscall(sp, "write", "", sim.Microseconds(100))
		elapsed = sp.Now().Sub(start)
	})
	sys.RunFor(sim.Seconds(5))
	if elapsed == 0 {
		t.Fatal("worker syscall never completed")
	}
	if elapsed > sim.Seconds(1) {
		t.Fatalf("worker stalled %v behind an unrelated blocking call", elapsed)
	}
	sys.Shutdown()
}

func TestSharedStubBlockingSyscallStallsEveryone(t *testing.T) {
	// §3.3: "if one of the processes issues a UNIX system call that
	// blocks ... the stub does not process system calls from any of
	// the other processes served by that stub until the original
	// system call completes."
	sys, app, _ := launch(t, 2, stub.SharedTree)
	var elapsed sim.Duration
	sys.Spawn(app.Procs[0].Node(), "blocker", 0, func(sp *kern.Subprocess) {
		app.Procs[0].Syscall(sp, "block", "", sim.Seconds(3))
	})
	sys.Spawn(app.Procs[1].Node(), "worker", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(10))
		start := sp.Now()
		app.Procs[1].Syscall(sp, "write", "", sim.Microseconds(100))
		elapsed = sp.Now().Sub(start)
	})
	sys.RunFor(sim.Seconds(30))
	if elapsed == 0 {
		t.Fatal("worker syscall never completed")
	}
	if elapsed < sim.Seconds(2.5) {
		t.Fatalf("worker only waited %v — should have been stalled ~3s by the shared stub", elapsed)
	}
	sys.Shutdown()
}

func TestSharedStubFDLimitIsShared(t *testing.T) {
	// §3.3: one shared stub means 32 open files for ALL processes of
	// the application combined.
	sys, app, _ := launch(t, 2, stub.SharedTree)
	opened, failedAt := 0, -1
	sys.Spawn(app.Procs[0].Node(), "opener0", 0, func(sp *kern.Subprocess) {
		for i := 0; i < 20; i++ {
			if fd, _ := app.Procs[0].Syscall(sp, "open", "f", 0); fd >= 0 {
				opened++
			}
		}
	})
	sys.Spawn(app.Procs[1].Node(), "opener1", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Seconds(1)) // strictly after proc 0's opens
		for i := 0; i < 20; i++ {
			fd, err := app.Procs[1].Syscall(sp, "open", "f", 0)
			if err != nil {
				failedAt = opened
				return
			}
			if fd >= 0 {
				opened++
			}
		}
	})
	sys.RunFor(sim.Seconds(30))
	if opened != 32 {
		t.Fatalf("opened %d fds, want exactly 32 shared", opened)
	}
	if failedAt != 32 {
		t.Fatalf("second process failed at %d, want 32", failedAt)
	}
	sys.Shutdown()
}

func TestPerProcessFDLimitIsPerProcess(t *testing.T) {
	sys, app, _ := launch(t, 2, stub.PerProcess)
	opened := 0
	for pi := 0; pi < 2; pi++ {
		pi := pi
		sys.Spawn(app.Procs[pi].Node(), "opener", 0, func(sp *kern.Subprocess) {
			for i := 0; i < 32; i++ {
				if fd, err := app.Procs[pi].Syscall(sp, "open", "f", 0); err == nil && fd >= 0 {
					opened++
				}
			}
		})
	}
	sys.RunFor(sim.Seconds(60))
	if opened != 64 {
		t.Fatalf("opened %d fds, want 64 (32 per process)", opened)
	}
	sys.Shutdown()
}

func TestDownloadScalesLinearlyPerProcessButNotTree(t *testing.T) {
	// The per-process cost grows ~linearly with N; the tree grows far
	// slower (pipeline + log-depth).
	sysA, _, per10 := launch(t, 10, stub.PerProcess)
	sysA.Shutdown()
	sysB, _, per40 := launch(t, 40, stub.PerProcess)
	sysB.Shutdown()
	ratioPer := per40 / per10
	if ratioPer < 3.2 || ratioPer > 4.8 {
		t.Fatalf("per-process scaling 10→40 nodes = %.2fx, want ~4x", ratioPer)
	}
	sysC, _, tree10 := launch(t, 10, stub.SharedTree)
	sysC.Shutdown()
	sysD, _, tree40 := launch(t, 40, stub.SharedTree)
	sysD.Shutdown()
	if ratioTree := tree40 / tree10; ratioTree > 2.0 {
		t.Fatalf("tree scaling 10→40 nodes = %.2fx, should be far sublinear", ratioTree)
	}
}

func TestLaunchTreeCustomFanout(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	app := stub.LaunchTree(sys, sys.Host(0), sys.Nodes(), stub.Image{Bytes: 64 * 1024}, 3, nil)
	sys.RunFor(sim.Seconds(60))
	if !app.Ready() {
		t.Fatal("fanout-3 tree did not complete")
	}
	sys.Shutdown()
}

func TestModeString(t *testing.T) {
	if stub.PerProcess.String() != "per-process" || stub.SharedTree.String() != "shared-tree" {
		t.Fatal("mode names")
	}
}

func TestSyscallBeforeStartFails(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	app := stub.Launch(sys, sys.Host(0), sys.Nodes(), stub.Image{Bytes: 1024}, stub.PerProcess, nil)
	// Do not run the simulation: the process has not started.
	sys.Spawn(sys.Node(0), "early", 0, func(sp *kern.Subprocess) {
		if _, err := app.Procs[0].Syscall(sp, "write", "", 0); err == nil {
			t.Error("syscall before start should fail")
		}
	})
	sys.RunFor(sim.Milliseconds(1))
	sys.Shutdown()
}

func TestCloseSyscall(t *testing.T) {
	sys, app, _ := launch(t, 1, stub.PerProcess)
	sys.Spawn(app.Procs[0].Node(), "app", 0, func(sp *kern.Subprocess) {
		fd, err := app.Procs[0].Syscall(sp, "open", "/tmp/x", 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := app.Procs[0].Syscall(sp, "close", "", sim.Duration(fd)); err != nil {
			t.Error(err)
		}
		// The slot is reusable: 32 more opens all succeed.
		for i := 0; i < 31; i++ {
			if _, err := app.Procs[0].Syscall(sp, "open", "f", 0); err != nil {
				t.Errorf("open %d after close: %v", i, err)
				return
			}
		}
	})
	sys.RunFor(sim.Seconds(10))
	sys.Shutdown()
}
