package stub

import (
	"fmt"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// SyscallPool is the decentralized system-call scheme paper §3.3
// closes with: "a better solution ... that will alleviate the
// bottleneck of using a single host for all the system calls of an
// application. It uses a decentralized scheme that distributes the
// overhead of system calls by allowing a process to direct system
// calls to any of the host workstations."
//
// Each participating host runs a syscall server; a node process
// spreads its calls across all of them round-robin (or pins a host
// explicitly), opening one channel per (process, host) lazily.
type SyscallPool struct {
	sys   *core.System
	hosts []*core.Machine
	uid   int

	// Served counts syscalls executed per host (load distribution).
	Served []int
}

// NewSyscallPool starts a syscall server on each host. Servers are
// daemons: they accept connections and serve forever.
func NewSyscallPool(sys *core.System, hosts []*core.Machine) *SyscallPool {
	p := &SyscallPool{sys: sys, hosts: hosts, uid: sys.NextUID("stub"), Served: make([]int, len(hosts))}
	for hi, h := range hosts {
		hi, h := hi, h
		acceptor := sys.Spawn(h, fmt.Sprintf("scpool-accept%d", hi), 0, func(sp *kern.Subprocess) {
			for connID := 0; ; connID++ {
				ch := h.Chans.Open(sp, p.name(hi), objmgr.Serve)
				connID := connID
				worker := sys.Spawn(h, fmt.Sprintf("scpool%d.%d", hi, connID), 0, func(wsp *kern.Subprocess) {
					for {
						m, ok := ch.Read(wsp)
						if !ok {
							return
						}
						req := m.Payload.(scReq)
						wsp.Compute(h.Kern.Costs().HostSyscall)
						if req.kind == "block" {
							wsp.SleepFor(req.dur)
						} else {
							wsp.Compute(req.dur)
						}
						p.Served[hi]++
						if ch.Write(wsp, repBytes, scRep{}) != nil {
							return
						}
					}
				})
				worker.Proc().SetDaemon(true)
			}
		})
		acceptor.Proc().SetDaemon(true)
	}
	return p
}

func (p *SyscallPool) name(host int) string {
	return fmt.Sprintf("scpool.%d.%d", p.uid, host)
}

// Client is one node process's connection state to the pool.
type Client struct {
	pool  *SyscallPool
	m     *core.Machine
	chans []*channels.Channel
	next  int
}

// NewClient prepares a pool client for a process on machine m.
func (p *SyscallPool) NewClient(m *core.Machine) *Client {
	return &Client{pool: p, m: m, chans: make([]*channels.Channel, len(p.hosts))}
}

// Syscall directs one forwarded call to the next host round-robin —
// spreading the application's system-call overhead over every
// workstation instead of centralizing it.
func (c *Client) Syscall(sp *kern.Subprocess, kind string, dur sim.Duration) error {
	return c.SyscallOn(sp, c.pickHost(), kind, dur)
}

func (c *Client) pickHost() int {
	h := c.next
	c.next = (c.next + 1) % len(c.pool.hosts)
	return h
}

// SyscallOn directs one call to a specific host.
func (c *Client) SyscallOn(sp *kern.Subprocess, host int, kind string, dur sim.Duration) error {
	if host < 0 || host >= len(c.pool.hosts) {
		return fmt.Errorf("stub: pool has no host %d", host)
	}
	if c.chans[host] == nil {
		c.chans[host] = c.m.Chans.Open(sp, c.pool.name(host), objmgr.Connect)
	}
	ch := c.chans[host]
	if err := ch.Write(sp, reqBytes, scReq{kind: kind, dur: dur}); err != nil {
		return err
	}
	if _, ok := ch.Read(sp); !ok {
		return fmt.Errorf("stub: pool channel closed")
	}
	return nil
}
