package stub_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/stub"
)

// runPool measures the makespan of procs node processes each issuing
// calls syscalls through a pool of nHosts workstations.
func runPool(t *testing.T, nHosts, procs, calls int) (sim.Duration, *stub.SyscallPool) {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: nHosts, Nodes: procs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := stub.NewSyscallPool(sys, sys.Hosts())
	var end sim.Time
	for i := 0; i < procs; i++ {
		i := i
		m := sys.Node(i)
		sys.Spawn(m, fmt.Sprintf("app%d", i), 0, func(sp *kern.Subprocess) {
			c := pool.NewClient(m)
			for j := 0; j < calls; j++ {
				if err := c.Syscall(sp, "write", sim.Microseconds(300)); err != nil {
					t.Error(err)
					return
				}
			}
			if sp.Now() > end {
				end = sp.Now()
			}
		})
	}
	sys.RunFor(sim.Seconds(30))
	sys.Shutdown()
	if end == 0 {
		t.Fatal("no process finished")
	}
	return end.Sub(0), pool
}

func TestPoolDistributesLoad(t *testing.T) {
	_, pool := runPool(t, 4, 8, 12)
	total := 0
	for hi, n := range pool.Served {
		if n == 0 {
			t.Errorf("host %d served nothing", hi)
		}
		total += n
	}
	if total != 8*12 {
		t.Fatalf("served %d, want %d", total, 8*12)
	}
	// Round-robin: perfectly even.
	for hi, n := range pool.Served {
		if n != total/4 {
			t.Errorf("host %d served %d, want %d", hi, n, total/4)
		}
	}
}

func TestMoreHostsShortenSyscallMakespan(t *testing.T) {
	// The point of the decentralized scheme: the single-host
	// bottleneck disappears when calls spread over the workstations.
	one, _ := runPool(t, 1, 8, 12)
	four, _ := runPool(t, 4, 8, 12)
	if speedup := float64(one) / float64(four); speedup < 2 {
		t.Fatalf("4 hosts gave only %.2fx over 1 (one=%v four=%v)", speedup, one, four)
	}
}

func TestSyscallOnPinsHost(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := stub.NewSyscallPool(sys, sys.Hosts())
	m := sys.Node(0)
	sys.Spawn(m, "app", 0, func(sp *kern.Subprocess) {
		c := pool.NewClient(m)
		for j := 0; j < 5; j++ {
			if err := c.SyscallOn(sp, 1, "write", sim.Microseconds(100)); err != nil {
				t.Error(err)
			}
		}
		if err := c.SyscallOn(sp, 7, "write", 0); err == nil {
			t.Error("bad host index should fail")
		}
	})
	sys.RunFor(sim.Seconds(5))
	sys.Shutdown()
	if pool.Served[0] != 0 || pool.Served[1] != 5 {
		t.Fatalf("served = %v", pool.Served)
	}
}

func TestPoolBlockingCallOnlyStallsOneConnection(t *testing.T) {
	// Unlike the shared stub, a blocking call through the pool holds
	// only its own per-connection server.
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := stub.NewSyscallPool(sys, sys.Hosts())
	var elapsed sim.Duration
	sys.Spawn(sys.Node(0), "blocker", 0, func(sp *kern.Subprocess) {
		c := pool.NewClient(sys.Node(0))
		c.Syscall(sp, "block", sim.Seconds(10))
	})
	sys.Spawn(sys.Node(1), "worker", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(20))
		c := pool.NewClient(sys.Node(1))
		start := sp.Now()
		c.Syscall(sp, "write", sim.Microseconds(100))
		elapsed = sp.Now().Sub(start)
	})
	sys.RunFor(sim.Seconds(30))
	sys.Shutdown()
	if elapsed == 0 {
		t.Fatal("worker never completed")
	}
	if elapsed > sim.Seconds(1) {
		t.Fatalf("worker stalled %v behind another process's blocking call", elapsed)
	}
}
