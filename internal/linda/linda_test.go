package linda_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/linda"
	"hpcvorx/internal/sim"
)

func newSpace(t *testing.T, nodes int) (*core.System, *linda.Space) {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys, linda.New(sys, sys.Nodes())
}

func TestOutThenIn(t *testing.T) {
	sys, sp8 := newSpace(t, 3)
	var got linda.Tuple
	sys.Spawn(sys.Node(0), "producer", 0, func(sp *kern.Subprocess) {
		h := sp8.HandleOn(sys.Node(0))
		if err := h.Out(sp, "point", 3, 4); err != nil {
			t.Error(err)
		}
	})
	sys.Spawn(sys.Node(1), "consumer", 0, func(sp *kern.Subprocess) {
		h := sp8.HandleOn(sys.Node(1))
		tp, err := h.In(sp, "point", linda.Any, linda.Any)
		if err != nil {
			t.Error(err)
		}
		got = tp
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("got %v", got)
	}
	if sp8.Stored("point") != 0 {
		t.Fatal("In should withdraw the tuple")
	}
}

func TestInBlocksUntilOut(t *testing.T) {
	sys, sp8 := newSpace(t, 2)
	var gotAt sim.Time
	sys.Spawn(sys.Node(0), "consumer", 0, func(sp *kern.Subprocess) {
		h := sp8.HandleOn(sys.Node(0))
		if _, err := h.In(sp, "late", linda.Any); err != nil {
			t.Error(err)
		}
		gotAt = sp.Now()
	})
	sys.Spawn(sys.Node(1), "producer", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(5))
		h := sp8.HandleOn(sys.Node(1))
		h.Out(sp, "late", 42)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt < sim.Time(sim.Milliseconds(5)) {
		t.Fatalf("In returned at %v, before the Out", gotAt)
	}
}

func TestRdDoesNotWithdraw(t *testing.T) {
	sys, sp8 := newSpace(t, 2)
	reads := 0
	sys.Spawn(sys.Node(0), "p", 0, func(sp *kern.Subprocess) {
		h := sp8.HandleOn(sys.Node(0))
		h.Out(sp, "config", "threshold", 7)
		for i := 0; i < 3; i++ {
			tp, err := h.Rd(sp, "config", linda.Any, linda.Any)
			if err != nil || tp[2] != 7 {
				t.Errorf("rd %d: %v %v", i, tp, err)
			}
			reads++
		}
		// Still present: In succeeds immediately.
		if _, err := h.In(sp, "config", linda.Any, linda.Any); err != nil {
			t.Error(err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if reads != 3 {
		t.Fatalf("reads = %d", reads)
	}
	if sp8.Stored("config") != 0 {
		t.Fatal("final In should have withdrawn the tuple")
	}
}

func TestPatternMatching(t *testing.T) {
	cases := []struct {
		tuple, pattern linda.Tuple
		want           bool
	}{
		{linda.Tuple{"a", 1}, linda.Tuple{"a", 1}, true},
		{linda.Tuple{"a", 1}, linda.Tuple{"a", linda.Any}, true},
		{linda.Tuple{"a", 1}, linda.Tuple{"a", 2}, false},
		{linda.Tuple{"a", 1}, linda.Tuple{"a"}, false},
		{linda.Tuple{"a", 1, "x"}, linda.Tuple{linda.Any, linda.Any, linda.Any}, true},
		{linda.Tuple{"a", []int{1, 2}}, linda.Tuple{"a", []int{1, 2}}, true},
	}
	for i, c := range cases {
		if got := c.tuple.Matches(c.pattern); got != c.want {
			t.Errorf("case %d: %v ~ %v = %v", i, c.tuple, c.pattern, got)
		}
	}
}

func TestTupleNameValidation(t *testing.T) {
	if _, err := (linda.Tuple{}).Name(); err == nil {
		t.Error("empty tuple should fail")
	}
	if _, err := (linda.Tuple{42}).Name(); err == nil {
		t.Error("non-string name should fail")
	}
}

func TestBagOfTasks(t *testing.T) {
	// The classic Linda pattern: a master Outs tasks, workers In
	// them, compute, and Out results.
	const tasks = 12
	const workers = 3
	sys, sp8 := newSpace(t, workers+1)
	sys.Spawn(sys.Node(0), "master", 0, func(sp *kern.Subprocess) {
		h := sp8.HandleOn(sys.Node(0))
		for i := 0; i < tasks; i++ {
			h.Out(sp, "task", i)
		}
		sum := 0
		for i := 0; i < tasks; i++ {
			tp, err := h.In(sp, "result", linda.Any, linda.Any)
			if err != nil {
				t.Error(err)
				return
			}
			sum += tp[2].(int)
		}
		want := 0
		for i := 0; i < tasks; i++ {
			want += i * i
		}
		if sum != want {
			t.Errorf("sum = %d, want %d", sum, want)
		}
		// Poison pills stop the workers.
		for w := 0; w < workers; w++ {
			h.Out(sp, "task", -1)
		}
	})
	for w := 0; w < workers; w++ {
		w := w
		m := sys.Node(w + 1)
		sys.Spawn(m, fmt.Sprintf("worker%d", w), 0, func(sp *kern.Subprocess) {
			h := sp8.HandleOn(m)
			for {
				tp, err := h.In(sp, "task", linda.Any)
				if err != nil {
					t.Error(err)
					return
				}
				n := tp[1].(int)
				if n < 0 {
					return
				}
				sp.Compute(sim.Microseconds(500)) // the "work"
				h.Out(sp, "result", n, n*n)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sp8.Ins != tasks+tasks+workers || sp8.Outs != tasks+tasks+workers {
		t.Fatalf("ops: ins=%d outs=%d", sp8.Ins, sp8.Outs)
	}
}

func TestNamesSpreadOverManagers(t *testing.T) {
	sys, sp8 := newSpace(t, 4)
	done := false
	sys.Spawn(sys.Node(0), "p", 0, func(sp *kern.Subprocess) {
		h := sp8.HandleOn(sys.Node(0))
		for i := 0; i < 20; i++ {
			if err := h.Out(sp, fmt.Sprintf("key%d", i), i); err != nil {
				t.Error(err)
			}
		}
		done = true
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("producer did not finish")
	}
	stored := 0
	for i := 0; i < 20; i++ {
		stored += sp8.Stored(fmt.Sprintf("key%d", i))
	}
	if stored != 20 {
		t.Fatalf("stored = %d", stored)
	}
}

// Property (model-based): a random interleaving of Outs and Ins over a
// single name behaves like a bag — every In returns a tuple that was
// Out and not yet withdrawn, and everything balances.
func TestTupleSpaceBagProperty(t *testing.T) {
	f := func(opsRaw []uint8) bool {
		if len(opsRaw) > 24 {
			opsRaw = opsRaw[:24]
		}
		// Guarantee at least as many outs as ins by prefixing outs.
		sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
		if err != nil {
			return false
		}
		space := linda.New(sys, sys.Nodes())
		outs, ins := 0, 0
		for _, op := range opsRaw {
			if op%2 == 0 {
				outs++
			} else {
				ins++
			}
		}
		if ins > outs {
			outs, ins = ins, outs // just rebalance counts
		}
		taken := map[int]bool{}
		ok := true
		sys.Spawn(sys.Node(0), "producer", 0, func(sp *kern.Subprocess) {
			h := space.HandleOn(sys.Node(0))
			for i := 0; i < outs; i++ {
				if err := h.Out(sp, "bag", i); err != nil {
					ok = false
					return
				}
				sp.SleepFor(sim.Microseconds(137)) // interleave
			}
		})
		sys.Spawn(sys.Node(1), "consumer", 0, func(sp *kern.Subprocess) {
			h := space.HandleOn(sys.Node(1))
			for i := 0; i < ins; i++ {
				tp, err := h.In(sp, "bag", linda.Any)
				if err != nil {
					ok = false
					return
				}
				v := tp[1].(int)
				if v < 0 || v >= outs || taken[v] {
					ok = false
					return
				}
				taken[v] = true
			}
		})
		if err := sys.Run(); err != nil {
			return false
		}
		return ok && len(taken) == ins && space.Stored("bag") == outs-ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
