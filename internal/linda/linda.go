// Package linda is a distributed tuple space in the style of the
// S/Net's Linda kernel (Carriero & Gelernter 1986), which the paper
// cites as the canonical user that needed to bypass the channel
// protocol: "the implementors of Linda needed a different type of
// semantics: multicast with no explicit flow control" (§4.1).
//
// This implementation runs on VORX user-defined communications
// objects: tuples are hashed by their name (first element) to an
// owning node, whose kernel-level tuple manager stores them and
// matches in/rd requests at interrupt level — no per-message software
// flow control, exactly the access pattern user-defined objects exist
// for. The HPC's hardware flow control keeps it safe anyway.
//
// Operations are the classic three: Out places a tuple, In withdraws
// a matching tuple (blocking until one exists), Rd reads one without
// withdrawing it. Patterns match by position; Any is the wildcard.
package linda

import (
	"fmt"
	"hash/fnv"
	"reflect"

	"hpcvorx/internal/core"
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Any is the pattern wildcard.
var Any = anyT{}

type anyT struct{}

func (anyT) String() string { return "?" }

// Tuple is an ordered sequence of values whose first element is a
// string name.
type Tuple []any

// Name returns the tuple's name.
func (t Tuple) Name() (string, error) {
	if len(t) == 0 {
		return "", fmt.Errorf("linda: empty tuple")
	}
	s, ok := t[0].(string)
	if !ok {
		return "", fmt.Errorf("linda: tuple name must be a string, got %T", t[0])
	}
	return s, nil
}

// Matches reports whether the tuple matches the pattern: equal
// length, and each pattern element either Any or equal.
func (t Tuple) Matches(pattern Tuple) bool {
	if len(t) != len(pattern) {
		return false
	}
	for i, p := range pattern {
		if _, wild := p.(anyT); wild {
			continue
		}
		if !reflect.DeepEqual(t[i], p) {
			return false
		}
	}
	return true
}

// WireBytes estimates the tuple's size on the wire.
func (t Tuple) WireBytes() int {
	n := 16
	for _, e := range t {
		switch v := e.(type) {
		case string:
			n += len(v) + 4
		default:
			n += 8
		}
	}
	return n
}

// Kernel-level manager costs.
var (
	// MatchFixed is the manager's fixed cost to process one
	// operation at interrupt level.
	MatchFixed = sim.Microseconds(22)
	// MatchPerTuple is the scan cost per stored tuple examined.
	MatchPerTuple = sim.Microseconds(2)
)

// wire messages
type outMsg struct{ tuple Tuple }
type reqMsg struct {
	pattern Tuple
	from    topo.EndpointID
	token   uint64
	take    bool
}
type repMsg struct {
	tuple Tuple
	token uint64
}

// Space is a distributed tuple space over a set of processing nodes.
type Space struct {
	sys   *core.System
	nodes []*core.Machine
	uid   int

	store   []map[string][]Tuple // per manager node, by name
	waiters []map[string][]reqMsg
	replies map[uint64]*waiter
	tokens  uint64

	// Outs, Ins, Rds count completed operations.
	Outs, Ins, Rds int
}

type waiter struct {
	wake  func()
	tuple Tuple
}

// New builds a tuple space whose managers run on the given nodes.
func New(sys *core.System, nodes []*core.Machine) *Space {
	s := &Space{
		sys: sys, nodes: nodes, uid: sys.NextUID("linda"),
		store:   make([]map[string][]Tuple, len(nodes)),
		waiters: make([]map[string][]reqMsg, len(nodes)),
		replies: map[uint64]*waiter{},
	}
	for i, m := range nodes {
		i := i
		s.store[i] = map[string][]Tuple{}
		s.waiters[i] = map[string][]reqMsg{}
		m.IF.Register(s.svc(i), netif.Service{
			Cost: func(msg *hpc.Message) sim.Duration {
				// Scan cost depends on what is stored under the name.
				body := msg.Payload.(netif.Envelope).Body
				stored := 0
				switch b := body.(type) {
				case outMsg:
					if name, err := b.tuple.Name(); err == nil {
						stored = len(s.waiters[i][name])
					}
				case reqMsg:
					if name, err := b.pattern.Name(); err == nil {
						stored = len(s.store[i][name])
					}
				}
				return MatchFixed + sim.Duration(stored)*MatchPerTuple
			},
			Handle: func(msg *hpc.Message) { s.handle(i, msg) },
		})
	}
	// Reply service on every machine in the system (processes can
	// live anywhere).
	for _, m := range sys.Machines() {
		m.IF.Register(s.repSvc(), netif.Service{
			Cost:   func(*hpc.Message) sim.Duration { return sim.Microseconds(10) },
			Handle: s.handleReply,
		})
	}
	return s
}

func (s *Space) svc(i int) string { return fmt.Sprintf("linda.%d.%d", s.uid, i) }
func (s *Space) repSvc() string   { return fmt.Sprintf("linda.rep.%d", s.uid) }

// ownerOf hashes a tuple name to its managing node index.
func (s *Space) ownerOf(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32()) % len(s.nodes)
}

// handle runs at interrupt level on the owning node.
func (s *Space) handle(i int, msg *hpc.Message) {
	switch b := msg.Payload.(netif.Envelope).Body.(type) {
	case outMsg:
		name, err := b.tuple.Name()
		if err != nil {
			return
		}
		// Serve the oldest waiting matching request first.
		ws := s.waiters[i][name]
		for wi, req := range ws {
			if b.tuple.Matches(req.pattern) {
				if req.take {
					s.waiters[i][name] = append(ws[:wi:wi], ws[wi+1:]...)
					s.reply(i, req, b.tuple)
					return
				}
				// rd: satisfy the reader and keep the tuple; also
				// satisfy every other pending rd that matches.
				s.waiters[i][name] = append(ws[:wi:wi], ws[wi+1:]...)
				s.reply(i, req, b.tuple)
				s.handle(i, msg) // re-run for remaining waiters/store
				return
			}
		}
		s.store[i][name] = append(s.store[i][name], b.tuple)
	case reqMsg:
		name, err := b.pattern.Name()
		if err != nil {
			return
		}
		tuples := s.store[i][name]
		for ti, tp := range tuples {
			if tp.Matches(b.pattern) {
				if b.take {
					s.store[i][name] = append(tuples[:ti:ti], tuples[ti+1:]...)
				}
				s.reply(i, b, tp)
				return
			}
		}
		s.waiters[i][name] = append(s.waiters[i][name], b)
	}
}

func (s *Space) reply(i int, req reqMsg, tp Tuple) {
	s.nodes[i].IF.SendAsync(req.from, s.repSvc(), tp.WireBytes()+16,
		repMsg{tuple: tp, token: req.token}, nil)
}

func (s *Space) handleReply(msg *hpc.Message) {
	rep := msg.Payload.(netif.Envelope).Body.(repMsg)
	w := s.replies[rep.token]
	if w == nil {
		return
	}
	delete(s.replies, rep.token)
	w.tuple = rep.tuple
	w.wake()
}

// Handle is a process's connection to the space.
type Handle struct {
	s *Space
	m *core.Machine
}

// HandleOn returns an operation handle for a process on machine m.
func (s *Space) HandleOn(m *core.Machine) *Handle {
	return &Handle{s: s, m: m}
}

// Out places a tuple into the space. Like the Linda the paper
// describes, there is no software flow control: the send goes
// straight at the hardware and returns.
func (h *Handle) Out(sp *kern.Subprocess, elems ...any) error {
	tp := Tuple(elems)
	name, err := tp.Name()
	if err != nil {
		return err
	}
	costs := h.m.Kern.Costs()
	sp.Compute(costs.UDOSend + costs.CopyTime(tp.WireBytes()))
	owner := h.s.ownerOf(name)
	h.s.Outs++
	return h.m.IF.Send(sp, h.s.nodes[owner].EP, h.s.svc(owner), tp.WireBytes(), outMsg{tuple: tp})
}

// In withdraws a tuple matching the pattern, blocking until one
// exists.
func (h *Handle) In(sp *kern.Subprocess, pattern ...any) (Tuple, error) {
	t, err := h.request(sp, Tuple(pattern), true)
	if err == nil {
		h.s.Ins++
	}
	return t, err
}

// Rd reads a tuple matching the pattern without withdrawing it,
// blocking until one exists.
func (h *Handle) Rd(sp *kern.Subprocess, pattern ...any) (Tuple, error) {
	t, err := h.request(sp, Tuple(pattern), false)
	if err == nil {
		h.s.Rds++
	}
	return t, err
}

func (h *Handle) request(sp *kern.Subprocess, pattern Tuple, take bool) (Tuple, error) {
	name, err := pattern.Name()
	if err != nil {
		return nil, err
	}
	costs := h.m.Kern.Costs()
	sp.Compute(costs.UDOSend + costs.CopyTime(pattern.WireBytes()))
	token := h.s.tokens
	h.s.tokens++
	w := &waiter{}
	w.wake = sp.Block(kern.WaitInput, "linda "+name)
	h.s.replies[token] = w
	owner := h.s.ownerOf(name)
	req := reqMsg{pattern: pattern, from: h.m.EP, token: token, take: take}
	if err := h.m.IF.Send(sp, h.s.nodes[owner].EP, h.s.svc(owner), pattern.WireBytes()+16, req); err != nil {
		return nil, err
	}
	sp.BlockNow()
	sp.System(costs.SchedulerWake)
	return w.tuple, nil
}

// Stored returns the number of tuples currently stored under a name.
func (s *Space) Stored(name string) int {
	return len(s.store[s.ownerOf(name)][name])
}
