// Package kern is the VORX node kernel: it runs subprocesses —
// independently scheduled threads of execution sharing one address
// space, each with its own stack — under a preemptive priority
// scheduler on one simulated 68020 CPU (paper §5).
//
// The kernel charges the calibrated m68k costs for context switches
// (80 µs full register save/restore), interrupt entry, semaphore
// operations, and system calls, and partitions every microsecond of
// CPU time into the categories the software oscilloscope displays
// (paper §6.2): user, system, and idle — with idle subdivided into
// waiting-for-input, waiting-for-output, mixed, and other.
package kern

import (
	"container/heap"
	"fmt"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/trace"
)

// Category classifies how a node spends its time.
type Category int

// Time categories, exactly the partition of paper §6.2.
const (
	CatUser Category = iota
	CatSystem
	CatIdleInput  // all blocked threads wait for input
	CatIdleOutput // all blocked threads wait for output
	CatIdleMixed  // some wait for input, others for output
	CatIdleOther  // waiting on something else (timer, device, ...)
	numCategories
)

// String returns the oscilloscope label for the category.
func (c Category) String() string {
	switch c {
	case CatUser:
		return "user"
	case CatSystem:
		return "system"
	case CatIdleInput:
		return "idle-input"
	case CatIdleOutput:
		return "idle-output"
	case CatIdleMixed:
		return "idle-mixed"
	case CatIdleOther:
		return "idle-other"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Categories lists all categories in display order.
func Categories() []Category {
	return []Category{CatUser, CatSystem, CatIdleInput, CatIdleOutput, CatIdleMixed, CatIdleOther}
}

// ParseCategory resolves an oscilloscope label back to its Category
// (the inverse of String), for loading recorded traces.
func ParseCategory(s string) (Category, bool) {
	for _, c := range Categories() {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// Interval is one accounted span of node time.
type Interval struct {
	Start, End sim.Time
	Cat        Category
}

// TraceSink receives accounting intervals as they close (used by the
// software oscilloscope).
type TraceSink func(node *Node, iv Interval)

// WaitKind tags what a blocked subprocess is waiting for.
type WaitKind int

// Wait kinds feeding the idle-time partition.
const (
	WaitNone WaitKind = iota
	WaitInput
	WaitOutput
	WaitOther
)

// Node is one processing node: a CPU, its scheduler, and its clock
// accounting. Create with NewNode, then spawn subprocesses.
type Node struct {
	k     *sim.Kernel
	costs *m68k.Costs
	name  string

	ready     taskHeap
	current   *task
	curTimer  sim.Timer
	curStart  sim.Time
	suspended *task // preempted by interrupt, resumes without a switch
	intrQ     []intrWork
	inIntr    bool
	lastSP    *Subprocess // last subprocess that held the CPU
	seq       uint64

	subs []*Subprocess

	crashed     bool
	incarnation uint32
	onCrash     []func()

	acctCat   Category
	acctSince sim.Time
	acctBusy  bool // accounting an active (non-idle) span
	totals    [numCategories]sim.Duration
	sink      TraceSink
	tracer    *trace.Tracer

	// CtxSwitches counts full context switches performed.
	CtxSwitches int
	// Interrupts counts interrupt work items serviced.
	Interrupts int
}

type intrWork struct {
	d  sim.Duration
	fn func()
}

// NewNode creates a node with its own CPU.
func NewNode(k *sim.Kernel, costs *m68k.Costs, name string) *Node {
	return &Node{k: k, costs: costs, name: name, acctCat: CatIdleOther, incarnation: 1}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Kernel returns the simulation kernel.
func (n *Node) Kernel() *sim.Kernel { return n.k }

// Costs returns the node's cost model.
func (n *Node) Costs() *m68k.Costs { return n.costs }

// Subprocesses returns all subprocesses ever spawned on this node.
func (n *Node) Subprocesses() []*Subprocess { return n.subs }

// SetTraceSink installs the oscilloscope trace consumer.
func (n *Node) SetTraceSink(s TraceSink) { n.sink = s }

// SetTracer installs the unified event tracer: every closed accounting
// interval becomes a KAccount span on this node's "cpu" lane, and
// crash/restart become instants. Nil-safe; a disabled tracer costs one
// predicate per interval.
func (n *Node) SetTracer(t *trace.Tracer) { n.tracer = t }

// Tracer returns the node's unified tracer (possibly nil).
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Totals returns the accumulated time per category, closing the
// in-progress interval as of now.
func (n *Node) Totals() map[Category]sim.Duration {
	n.account(n.idleCategory())
	out := make(map[Category]sim.Duration, numCategories)
	for c := Category(0); c < numCategories; c++ {
		out[c] = n.totals[c]
	}
	return out
}

// account closes the current accounting interval and switches the node
// to category cat.
func (n *Node) account(cat Category) {
	now := n.k.Now()
	if now > n.acctSince {
		n.totals[n.acctCat] += now.Sub(n.acctSince)
		if n.sink != nil {
			n.sink(n, Interval{Start: n.acctSince, End: now, Cat: n.acctCat})
		}
		n.tracer.EmitSpan(trace.KAccount, 0, n.name, "cpu", n.acctSince, n.acctCat.String())
	}
	n.acctCat = cat
	n.acctSince = now
}

// idleCategory derives the idle flavor from what the node's blocked
// subprocesses are waiting for.
func (n *Node) idleCategory() Category {
	in, out := false, false
	for _, sp := range n.subs {
		switch sp.waitKind {
		case WaitInput:
			in = true
		case WaitOutput:
			out = true
		}
	}
	switch {
	case in && out:
		return CatIdleMixed
	case in:
		return CatIdleInput
	case out:
		return CatIdleOutput
	default:
		return CatIdleOther
	}
}

// Crash halts the node as a hardware failure would: the running
// segment stops mid-flight (its remainder is never charged), the ready
// queue, suspended task, and pending interrupts are discarded, and
// every subprocess is abandoned where it stands — exactly what a node
// that "vanishes mid-session" (§3.1) looks like to the rest of the
// LAM. Abandoned subprocesses are marked daemons so the simulation's
// deadlock detector ignores them; they never run again, even after
// Restart. OnCrash hooks fire last. Idempotent.
func (n *Node) Crash() {
	if n.crashed {
		return
	}
	n.crashed = true
	n.curTimer.Stop()
	n.current = nil
	n.suspended = nil
	n.ready = nil
	n.intrQ = nil
	n.inIntr = false
	for _, sp := range n.subs {
		sp.proc.SetDaemon(true)
		sp.waitKind = WaitNone
	}
	n.account(CatIdleOther)
	n.tracer.Emit(trace.KCrash, 0, n.name, "cpu", "")
	for _, fn := range n.onCrash {
		fn()
	}
}

// Restart brings a crashed node's CPU back with empty state (a cold
// boot): subprocesses from before the crash stay dead; new ones may be
// spawned. Every boot gets a fresh incarnation number. No-op on a live
// node.
func (n *Node) Restart() {
	n.RestartAt(0)
}

// RestartAt restarts a crashed node with an incarnation of at least
// min — a machine fenced at incarnation floor F reboots with RestartAt
// (F) so its frames clear the fence. No-op on a live node.
func (n *Node) RestartAt(min uint32) {
	if !n.crashed {
		return
	}
	n.crashed = false
	n.incarnation++
	if n.incarnation < min {
		n.incarnation = min
	}
	n.lastSP = nil
	n.account(n.idleCategory())
	n.tracer.Emit(trace.KRestart, 0, n.name, "cpu", "")
}

// Crashed reports whether the node is currently down.
func (n *Node) Crashed() bool { return n.crashed }

// Incarnation returns the node's boot count: 1 on first boot, bumped
// by every Restart. Frames stamped with a stale incarnation identify a
// zombie — a machine the supervisor has already declared dead and
// replaced — and can be fenced at the receiving netif.
func (n *Node) Incarnation() uint32 { return n.incarnation }

// Beacon schedules fn every d of virtual time until the returned stop
// function is called. Ticks that land while the node is crashed are
// skipped — a dead machine emits nothing — but the chain keeps ticking
// so a restarted node resumes emitting without rearming. The kernel
// uses this for supervision heartbeats; fn runs in event context and
// must not block.
func (n *Node) Beacon(d sim.Duration, fn func()) (stop func()) {
	if d <= 0 {
		panic("kern: Beacon needs a positive period")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		if !n.crashed {
			fn()
		}
		n.k.After(d, tick)
	}
	n.k.After(d, tick)
	return func() { stopped = true }
}

// OnCrash registers a hook run when the node crashes (used by the
// network interface to free fabric buffers the dead node held).
func (n *Node) OnCrash(fn func()) { n.onCrash = append(n.onCrash, fn) }

// task is one CPU request: a sequence of (category, duration) segments
// consumed under preemption.
type task struct {
	sp   *Subprocess
	segs []seg
	wake func()
	prio int
	seq  uint64
	idx  int // heap index
}

type seg struct {
	cat Category
	rem sim.Duration
}

type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio // higher priority first
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	t := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return t
}

// exec runs the calling subprocess's CPU request to completion,
// blocking the subprocess until the CPU has delivered every segment.
func (n *Node) exec(sp *Subprocess, segs []seg) {
	if n.crashed {
		// The CPU is dead: the subprocess is stranded forever.
		sp.proc.SetDaemon(true)
		sp.proc.Park("crashed " + n.name)
		sp.proc.Block()
		return
	}
	t := &task{sp: sp, segs: segs, prio: sp.prio, seq: n.seq}
	n.seq++
	t.wake = sp.proc.Park("cpu " + n.name)
	heap.Push(&n.ready, t)
	n.preemptIfNeeded(t)
	n.schedule()
	sp.proc.Block()
}

// preemptIfNeeded preempts the running task when t outranks it. The
// context switch back is charged when the victim is re-dispatched.
func (n *Node) preemptIfNeeded(t *task) {
	if n.current != nil && !n.inIntr && t.prio > n.current.prio {
		cur := n.stopCurrent()
		heap.Push(&n.ready, cur)
	}
}

// refreshIdle re-derives the idle category after a subprocess's wait
// kind changed while the CPU was idle.
func (n *Node) refreshIdle() {
	if n.current == nil && !n.inIntr && n.suspended == nil {
		n.account(n.idleCategory())
	}
}

// stopCurrent halts the running slice, accounting the elapsed portion,
// and returns the (partially consumed) task. current becomes nil.
func (n *Node) stopCurrent() *task {
	cur := n.current
	n.curTimer.Stop()
	elapsed := n.k.Now().Sub(n.curStart)
	cur.sp.chargeCPU(cur.segs[0].cat, elapsed)
	cur.segs[0].rem -= elapsed
	if cur.segs[0].rem <= 0 {
		cur.segs = cur.segs[1:]
	}
	n.current = nil
	n.account(n.idleCategory())
	return cur
}

// schedule dispatches the best ready task if the CPU is free.
func (n *Node) schedule() {
	if n.crashed || n.current != nil || n.inIntr || n.suspended != nil {
		return
	}
	if n.ready.Len() == 0 {
		return
	}
	t := heap.Pop(&n.ready).(*task)
	if t.sp != n.lastSP {
		// Full context switch: save/restore all registers (80 µs).
		t.segs = append([]seg{{CatSystem, n.costs.ContextSwitch}}, t.segs...)
		n.CtxSwitches++
	}
	n.lastSP = t.sp
	n.current = t
	n.runSegment()
}

// runSegment starts (or resumes) the head segment of the current task.
func (n *Node) runSegment() {
	t := n.current
	for len(t.segs) > 0 && t.segs[0].rem <= 0 {
		t.segs = t.segs[1:]
	}
	if len(t.segs) == 0 {
		n.finish(t)
		return
	}
	n.account(t.segs[0].cat)
	n.curStart = n.k.Now()
	seg0 := t.segs[0]
	n.curTimer = n.k.After(seg0.rem, func() {
		if n.crashed {
			return
		}
		t.sp.chargeCPU(seg0.cat, seg0.rem)
		t.segs[0].rem = 0
		t.segs = t.segs[1:]
		if len(t.segs) > 0 {
			n.runSegment()
			return
		}
		n.finish(t)
	})
}

// finish completes the current task: wake its subprocess and run the
// next one.
func (n *Node) finish(t *task) {
	n.current = nil
	n.account(n.idleCategory())
	t.wake()
	n.schedule()
}

// Interrupt delivers an interrupt to the node: the CPU preempts
// whatever is running, spends the interrupt entry cost plus extra in
// system mode, then calls fn (still at interrupt level — fn must not
// block) and resumes the preempted work without a full context switch.
// Safe to call from any simulation context.
func (n *Node) Interrupt(extra sim.Duration, fn func()) {
	if n.crashed {
		return // a dead CPU takes no interrupts
	}
	n.intrQ = append(n.intrQ, intrWork{d: n.costs.InterruptEntry + extra, fn: fn})
	n.Interrupts++
	if n.inIntr {
		return // will be drained by the active interrupt loop
	}
	if n.current != nil {
		n.suspended = n.stopCurrent()
	}
	n.inIntr = true
	n.account(CatSystem)
	n.runInterrupts()
}

// runInterrupts drains the interrupt queue, then resumes the suspended
// task (no context-switch charge: the interrupt overhead covers the
// partial save/restore) unless a higher-priority task became ready.
func (n *Node) runInterrupts() {
	if n.crashed {
		return
	}
	if len(n.intrQ) == 0 {
		n.inIntr = false
		n.account(n.idleCategory())
		if n.suspended != nil {
			s := n.suspended
			n.suspended = nil
			if n.ready.Len() > 0 && n.ready[0].prio > s.prio {
				heap.Push(&n.ready, s)
			} else {
				n.current = s
				n.runSegment()
				return
			}
		}
		n.schedule()
		return
	}
	w := n.intrQ[0]
	n.intrQ = n.intrQ[1:]
	n.k.After(w.d, func() {
		if n.crashed {
			return
		}
		if w.fn != nil {
			w.fn()
		}
		n.runInterrupts()
	})
}
