package kern

import (
	"fmt"
	"testing"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
)

func newNode() (*sim.Kernel, *Node) {
	k := sim.NewKernel(1)
	return k, NewNode(k, m68k.DefaultCosts(), "node0")
}

func TestComputeConsumesTime(t *testing.T) {
	k, n := newNode()
	var end sim.Time
	n.SpawnSubprocess("worker", 0, func(sp *Subprocess) {
		sp.Compute(sim.Microseconds(100))
		end = sp.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// First dispatch charges one 80 µs context switch + 100 µs work.
	if want := sim.Time(sim.Microseconds(180)); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	tot := n.Totals()
	if tot[CatUser] != sim.Microseconds(100) {
		t.Fatalf("user time = %v", tot[CatUser])
	}
	if tot[CatSystem] != sim.Microseconds(80) {
		t.Fatalf("system time = %v", tot[CatSystem])
	}
}

func TestEqualPriorityRunsFIFOWithoutPreemption(t *testing.T) {
	k, n := newNode()
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		n.SpawnSubprocess(name, 0, func(sp *Subprocess) {
			sp.Compute(sim.Microseconds(50))
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b]" {
		t.Fatalf("order = %v", order)
	}
}

func TestPriorityPreemption(t *testing.T) {
	// A high-priority subprocess woken mid-computation preempts the
	// low-priority one (paper §5: the scheduler is preemptive so
	// real-time applications can be implemented).
	k, n := newNode()
	var highDone, lowDone sim.Time
	n.SpawnSubprocess("low", 0, func(sp *Subprocess) {
		sp.Compute(sim.Milliseconds(10))
		lowDone = sp.Now()
	})
	n.SpawnSubprocess("high", 5, func(sp *Subprocess) {
		sp.SleepFor(sim.Milliseconds(1))
		sp.Compute(sim.Microseconds(100))
		highDone = sp.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if highDone >= lowDone {
		t.Fatalf("high finished at %v, low at %v: no preemption", highDone, lowDone)
	}
	// High wakes at 1 ms, pays a context switch, runs 100 µs.
	if want := sim.Time(sim.Milliseconds(1) + sim.Microseconds(180)); highDone != want {
		t.Fatalf("high done at %v, want %v", highDone, want)
	}
	// Low still completes: 80 (switch) + 10000 (work) + 80+100+80
	// (preemption: high's switch, work, and switch back).
	if want := sim.Time(sim.Microseconds(80 + 10000 + 80 + 100 + 80)); lowDone != want {
		t.Fatalf("low done at %v, want %v", lowDone, want)
	}
	if n.CtxSwitches != 3 {
		t.Fatalf("context switches = %d, want 3", n.CtxSwitches)
	}
}

func TestContextSwitchCostIs80Microseconds(t *testing.T) {
	// Paper §5: "A context switch, which includes saving both fixed
	// and floating point registers takes 80 µsec". Two subprocesses
	// hand off via semaphores; each handoff costs one switch.
	k, n := newNode()
	const rounds = 100
	semA := n.NewSemaphore("a", 0)
	semB := n.NewSemaphore("b", 0)
	var start, end sim.Time
	n.SpawnSubprocess("ping", 0, func(sp *Subprocess) {
		start = sp.Now()
		for i := 0; i < rounds; i++ {
			semA.V(sp)
			semB.P(sp)
		}
		end = sp.Now()
	})
	n.SpawnSubprocess("pong", 0, func(sp *Subprocess) {
		for i := 0; i < rounds; i++ {
			semA.P(sp)
			semB.V(sp)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	perRound := end.Sub(start).Microseconds() / rounds
	// Each round: 2 context switches (160) + 4 semaphore ops (32).
	if perRound < 170 || perRound > 210 {
		t.Fatalf("per-round cost %.1f µs, want ~192", perRound)
	}
	if n.CtxSwitches < 2*rounds {
		t.Fatalf("switches = %d, want >= %d", n.CtxSwitches, 2*rounds)
	}
}

func TestSemaphoreFIFOOrder(t *testing.T) {
	k, n := newNode()
	s := n.NewSemaphore("s", 0)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		n.SpawnSubprocess(name, 0, func(sp *Subprocess) {
			s.P(sp)
			order = append(order, name)
		})
	}
	n.SpawnSubprocess("releaser", 0, func(sp *Subprocess) {
		sp.SleepFor(sim.Milliseconds(1))
		for i := 0; i < 3; i++ {
			s.V(sp)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[w1 w2 w3]" {
		t.Fatalf("order = %v", order)
	}
}

func TestInterruptPreemptsAndResumesWithoutSwitch(t *testing.T) {
	k, n := newNode()
	var isrAt, doneAt sim.Time
	n.SpawnSubprocess("worker", 0, func(sp *Subprocess) {
		sp.Compute(sim.Microseconds(1000))
		doneAt = sp.Now()
	})
	k.After(sim.Microseconds(500), func() {
		n.Interrupt(sim.Microseconds(10), func() { isrAt = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ISR runs at 500 + 25 (entry) + 10 (work) = 535 µs.
	if want := sim.Time(sim.Microseconds(535)); isrAt != want {
		t.Fatalf("isr at %v, want %v", isrAt, want)
	}
	// Worker: 80 switch + 1000 work + 35 interrupt = 1115, with no
	// second context switch.
	if want := sim.Time(sim.Microseconds(1115)); doneAt != want {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
	if n.CtxSwitches != 1 {
		t.Fatalf("switches = %d, want 1", n.CtxSwitches)
	}
}

func TestInterruptWakingHigherPrioritySubprocess(t *testing.T) {
	k, n := newNode()
	var events []string
	var wakeHigh func()
	n.SpawnSubprocess("high", 9, func(sp *Subprocess) {
		wakeHigh = sp.Block(WaitInput, "device")
		sp.BlockNow()
		sp.Compute(sim.Microseconds(10))
		events = append(events, "high")
	})
	n.SpawnSubprocess("low", 0, func(sp *Subprocess) {
		sp.Compute(sim.Milliseconds(2))
		events = append(events, "low")
	})
	k.After(sim.Milliseconds(1), func() {
		n.Interrupt(sim.Microseconds(5), func() { wakeHigh() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(events) != "[high low]" {
		t.Fatalf("events = %v", events)
	}
}

func TestIdleCategories(t *testing.T) {
	k, n := newNode()
	n.SpawnSubprocess("reader", 0, func(sp *Subprocess) {
		wake := sp.Block(WaitInput, "net-in")
		k.After(sim.Milliseconds(1), wake)
		sp.BlockNow()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tot := n.Totals()
	if tot[CatIdleInput] < sim.Microseconds(900) {
		t.Fatalf("idle-input = %v, want ~1ms", tot[CatIdleInput])
	}
}

func TestIdleMixed(t *testing.T) {
	k, n := newNode()
	n.SpawnSubprocess("in", 0, func(sp *Subprocess) {
		wake := sp.Block(WaitInput, "in")
		k.After(sim.Milliseconds(2), wake)
		sp.BlockNow()
	})
	n.SpawnSubprocess("out", 0, func(sp *Subprocess) {
		wake := sp.Block(WaitOutput, "out")
		k.After(sim.Milliseconds(2), wake)
		sp.BlockNow()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tot := n.Totals()
	if tot[CatIdleMixed] < sim.Milliseconds(1.5) {
		t.Fatalf("idle-mixed = %v; totals %v", tot[CatIdleMixed], tot)
	}
}

func TestTraceSinkReceivesIntervals(t *testing.T) {
	k, n := newNode()
	var ivs []Interval
	n.SetTraceSink(func(_ *Node, iv Interval) { ivs = append(ivs, iv) })
	n.SpawnSubprocess("w", 0, func(sp *Subprocess) {
		sp.Compute(sim.Microseconds(50))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Totals() // close final interval
	if len(ivs) < 2 {
		t.Fatalf("intervals = %v", ivs)
	}
	// Intervals must be contiguous and non-overlapping.
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start != ivs[i-1].End {
			t.Fatalf("gap between %+v and %+v", ivs[i-1], ivs[i])
		}
	}
	// Must include a system (switch) and a user interval.
	var haveUser, haveSys bool
	for _, iv := range ivs {
		switch iv.Cat {
		case CatUser:
			haveUser = true
		case CatSystem:
			haveSys = true
		}
	}
	if !haveUser || !haveSys {
		t.Fatalf("missing categories in %v", ivs)
	}
}

func TestCoroutineSwitchesAreCheap(t *testing.T) {
	// Paper §5: coroutines have less overhead than subprocesses
	// because most registers need not be saved.
	k, n := newNode()
	const rounds = 50
	var elapsed sim.Duration
	n.SpawnSubprocess("host", 0, func(sp *Subprocess) {
		g := NewCoroutineGroup(sp)
		g.Add("a", func(c *Coroutine) {
			for i := 0; i < rounds; i++ {
				c.Yield()
			}
		})
		g.Add("b", func(c *Coroutine) {
			for i := 0; i < rounds; i++ {
				c.Yield()
			}
		})
		start := sp.Now()
		g.Run()
		elapsed = sp.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ~2*rounds switches at 9 µs — far below the 80 µs/switch a
	// subprocess pair would pay.
	perSwitch := elapsed.Microseconds() / (2 * rounds)
	if perSwitch > 15 {
		t.Fatalf("coroutine switch = %.1f µs, want ~9", perSwitch)
	}
}

func TestCoroutineComputeChargesOwner(t *testing.T) {
	k, n := newNode()
	n.SpawnSubprocess("host", 0, func(sp *Subprocess) {
		g := NewCoroutineGroup(sp)
		g.Add("c", func(c *Coroutine) { c.Compute(sim.Microseconds(100)) })
		g.Run()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tot := n.Totals()[CatUser]; tot != sim.Microseconds(100) {
		t.Fatalf("user time = %v", tot)
	}
}

func TestCoroutineRoundRobinOrder(t *testing.T) {
	k, n := newNode()
	var order []string
	n.SpawnSubprocess("host", 0, func(sp *Subprocess) {
		g := NewCoroutineGroup(sp)
		for _, name := range []string{"a", "b", "c"} {
			name := name
			g.Add(name, func(c *Coroutine) {
				for i := 0; i < 2; i++ {
					order = append(order, name)
					c.Yield()
				}
			})
		}
		g.Run()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b c a b c]" {
		t.Fatalf("order = %v", order)
	}
}

func TestSyscallChargesOverheadPlusWork(t *testing.T) {
	k, n := newNode()
	var end sim.Time
	n.SpawnSubprocess("w", 0, func(sp *Subprocess) {
		sp.Syscall(sim.Microseconds(10))
		end = sp.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 80 switch + 18 syscall + 10 work.
	if want := sim.Time(sim.Microseconds(108)); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestInterruptsQueueWhileServicing(t *testing.T) {
	k, n := newNode()
	var order []int
	k.After(0, func() {
		n.Interrupt(sim.Microseconds(100), func() { order = append(order, 1) })
		n.Interrupt(sim.Microseconds(10), func() { order = append(order, 2) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2]" {
		t.Fatalf("order = %v", order)
	}
	if n.Interrupts != 2 {
		t.Fatalf("interrupts = %d", n.Interrupts)
	}
}

func TestTotalsSumMatchesElapsed(t *testing.T) {
	k, n := newNode()
	n.SpawnSubprocess("w", 0, func(sp *Subprocess) {
		sp.Compute(sim.Microseconds(300))
		sp.SleepFor(sim.Microseconds(200))
		sp.System(sim.Microseconds(100))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var sum sim.Duration
	for _, d := range n.Totals() {
		sum += d
	}
	if sum != k.Now().Sub(0) {
		t.Fatalf("accounted %v, elapsed %v", sum, k.Now())
	}
}

func TestPerSubprocessCPUAccounting(t *testing.T) {
	k, n := newNode()
	var spA, spB *Subprocess
	spA = n.SpawnSubprocess("a", 0, func(sp *Subprocess) {
		sp.Compute(sim.Microseconds(100))
		sp.System(sim.Microseconds(50))
	})
	spB = n.SpawnSubprocess("b", 0, func(sp *Subprocess) {
		sp.Compute(sim.Microseconds(300))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ua, sa := spA.CPUTime()
	ub, sb := spB.CPUTime()
	if ua != sim.Microseconds(100) {
		t.Errorf("a user = %v", ua)
	}
	// a: 80 (first switch) + 50 system work + 80 (switch back after
	// b's FIFO slice ran between a's two requests).
	if sa != sim.Microseconds(210) {
		t.Errorf("a system = %v", sa)
	}
	if ub != sim.Microseconds(300) {
		t.Errorf("b user = %v", ub)
	}
	// b: one switch from a.
	if sb != sim.Microseconds(80) {
		t.Errorf("b system = %v", sb)
	}
	// Node totals equal the per-subprocess sums.
	tot := n.Totals()
	if tot[CatUser] != ua+ub || tot[CatSystem] != sa+sb {
		t.Errorf("totals %v vs per-sp sums %v/%v", tot, ua+ub, sa+sb)
	}
}

func TestCPUAccountingSurvivesPreemption(t *testing.T) {
	k, n := newNode()
	var low *Subprocess
	low = n.SpawnSubprocess("low", 0, func(sp *Subprocess) {
		sp.Compute(sim.Milliseconds(5))
	})
	n.SpawnSubprocess("high", 9, func(sp *Subprocess) {
		sp.SleepFor(sim.Milliseconds(1))
		sp.Compute(sim.Microseconds(100))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	u, _ := low.CPUTime()
	if u != sim.Milliseconds(5) {
		t.Fatalf("low user time = %v despite preemption", u)
	}
}

func TestThreePriorityLevels(t *testing.T) {
	k, n := newNode()
	var order []string
	mark := func(name string) { order = append(order, name) }
	// All become ready at t=1ms while a long low job runs.
	n.SpawnSubprocess("low", 0, func(sp *Subprocess) {
		sp.Compute(sim.Milliseconds(5))
		mark("low")
	})
	for _, c := range []struct {
		name string
		prio int
	}{{"mid", 5}, {"high", 9}} {
		c := c
		n.SpawnSubprocess(c.name, c.prio, func(sp *Subprocess) {
			sp.SleepFor(sim.Milliseconds(1))
			sp.Compute(sim.Microseconds(100))
			mark(c.name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[high mid low]" {
		t.Fatalf("order = %v", order)
	}
}

func TestInterruptDuringIdle(t *testing.T) {
	k, n := newNode()
	fired := sim.Time(-1)
	k.After(sim.Milliseconds(1), func() {
		n.Interrupt(sim.Microseconds(5), func() { fired = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Milliseconds(1) + sim.Microseconds(30)); fired != want {
		t.Fatalf("isr at %v, want %v", fired, want)
	}
	tot := n.Totals()
	if tot[CatSystem] != sim.Microseconds(30) {
		t.Fatalf("system = %v", tot[CatSystem])
	}
}

func TestSemaphoreValueAndVFromInterrupt(t *testing.T) {
	k, n := newNode()
	s := n.NewSemaphore("vi", 0)
	got := false
	n.SpawnSubprocess("w", 0, func(sp *Subprocess) {
		s.P(sp)
		got = true
	})
	k.After(sim.Milliseconds(1), func() {
		n.Interrupt(sim.Microseconds(2), func() { s.VFromInterrupt() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("V from interrupt did not wake the waiter")
	}
	s2 := n.NewSemaphore("v2", 0)
	s2.VFromInterrupt()
	if s2.Value() != 1 {
		t.Fatalf("value = %d", s2.Value())
	}
}

func TestZeroAndNegativeComputeAreFree(t *testing.T) {
	k, n := newNode()
	var end sim.Time
	n.SpawnSubprocess("w", 0, func(sp *Subprocess) {
		sp.Compute(0)
		sp.Compute(-5)
		sp.System(0)
		end = sp.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Fatalf("free operations consumed %v", end)
	}
}

func TestCategoriesStringAndList(t *testing.T) {
	if CatUser.String() != "user" || CatIdleMixed.String() != "idle-mixed" {
		t.Fatal("category names")
	}
	if len(Categories()) != 6 {
		t.Fatalf("categories = %v", Categories())
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category should still print")
	}
}

func TestSubprocessAccessors(t *testing.T) {
	k, n := newNode()
	n.SpawnSubprocess("acc", 3, func(sp *Subprocess) {
		if sp.Name() != "acc" || sp.Priority() != 3 || sp.Node() != n {
			t.Error("accessors broken")
		}
		if sp.Proc() == nil {
			t.Error("proc handle missing")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(n.Subprocesses()) != 1 {
		t.Fatalf("subprocesses = %d", len(n.Subprocesses()))
	}
}

func TestInterruptLevelProgramming(t *testing.T) {
	// Paper §5's third structuring technique: "a single subprocess
	// starts application-specific input and output interrupt service
	// routines and then suspends itself. The entire computation is
	// done by the interrupt service routines. This technique runs
	// efficiently in VORX because it does not incur the overhead of
	// restoring or saving registers."
	k, n := newNode()
	results := 0
	var chain func(i int)
	chain = func(i int) {
		n.Interrupt(sim.Microseconds(15), func() {
			results++
			if i+1 < 50 {
				k.After(sim.Microseconds(100), func() { chain(i + 1) })
			}
		})
	}
	n.SpawnSubprocess("app", 0, func(sp *Subprocess) {
		// Start the ISR-driven computation, then suspend forever.
		k.After(sim.Microseconds(10), func() { chain(0) })
		wake := sp.Block(WaitOther, "suspended")
		_ = wake // never woken: the ISRs do all the work
		sp.Proc().SetDaemon(true)
		sp.BlockNow()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if results != 50 {
		t.Fatalf("ISR computation produced %d results", results)
	}
	// No context switches beyond the initial dispatch: the suspended
	// subprocess never resumes, and ISRs save no register image.
	if n.CtxSwitches > 1 {
		t.Fatalf("context switches = %d; interrupt-level code should avoid them", n.CtxSwitches)
	}
	// Per-event system time: 25 entry + 15 handler = 40 µs each.
	if got := n.Totals()[CatSystem]; got != 50*sim.Microseconds(40) {
		t.Fatalf("system time = %v", got)
	}
}
