package kern

// Coroutines provide multiple threads of execution *within* one
// subprocess, as the CEMU circuit simulator did (paper §5). Switches
// happen only at well-defined places in the application code, so most
// registers need not be saved: a coroutine switch costs a small
// fraction of the 80 µs subprocess context switch.
//
// A CoroutineGroup belongs to one subprocess. The subprocess calls
// Run, which cycles through the coroutines round-robin; a coroutine
// runs until it Yields or returns. All CPU consumed by coroutine
// bodies is charged to the owning subprocess.

import "hpcvorx/internal/sim"

// CoroutineGroup schedules coroutines inside one subprocess.
type CoroutineGroup struct {
	sp    *Subprocess
	coros []*Coroutine
	yield chan struct{}
	// Switches counts coroutine switches performed.
	Switches int
}

// Coroutine is one cooperative thread within a subprocess.
type Coroutine struct {
	g      *CoroutineGroup
	name   string
	body   func(c *Coroutine)
	resume chan struct{}
	done   bool
}

// NewCoroutineGroup creates an empty group owned by sp.
func NewCoroutineGroup(sp *Subprocess) *CoroutineGroup {
	return &CoroutineGroup{sp: sp, yield: make(chan struct{})}
}

// Add registers a coroutine; call before Run.
func (g *CoroutineGroup) Add(name string, body func(c *Coroutine)) *Coroutine {
	c := &Coroutine{g: g, name: name, body: body, resume: make(chan struct{})}
	g.coros = append(g.coros, c)
	return c
}

// Run executes the group round-robin until every coroutine has
// returned. It must be called from the owning subprocess's body. Each
// handoff charges the coroutine-switch cost to the subprocess.
func (g *CoroutineGroup) Run() {
	for _, c := range g.coros {
		c := c
		go func() {
			<-c.resume
			c.body(c)
			c.done = true
			g.yield <- struct{}{}
		}()
	}
	for {
		c := g.next()
		if c == nil {
			return
		}
		g.Switches++
		g.sp.System(g.sp.node.costs.CoroutineSwitch)
		c.resume <- struct{}{}
		<-g.yield
	}
}

// next returns a not-yet-finished coroutine in round-robin order.
func (g *CoroutineGroup) next() *Coroutine {
	for i := 0; i < len(g.coros); i++ {
		c := g.coros[0]
		g.coros = append(g.coros[1:], c)
		if !c.done {
			return c
		}
	}
	return nil
}

// Name returns the coroutine's name.
func (c *Coroutine) Name() string { return c.name }

// Subprocess returns the owning subprocess. Coroutine bodies use it
// for Compute and other CPU operations; because exactly one thread of
// the group runs at a time, delegation is safe.
func (c *Coroutine) Subprocess() *Subprocess { return c.g.sp }

// Compute consumes d of user CPU, delegated to the owning subprocess.
// Safe because exactly one thread of the group runs at a time.
func (c *Coroutine) Compute(d sim.Duration) {
	c.g.sp.Compute(d)
}

// Yield switches to the next runnable coroutine in the group.
func (c *Coroutine) Yield() {
	c.g.yield <- struct{}{}
	<-c.resume
}
