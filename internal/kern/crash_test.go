package kern

import (
	"testing"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
)

// TestCrashHaltsExecution: work stops at the crash instant and the
// simulation still terminates (stranded subprocesses don't deadlock).
func TestCrashHaltsExecution(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, m68k.DefaultCosts(), "victim")
	steps := 0
	n.SpawnSubprocess("worker", 0, func(sp *Subprocess) {
		for i := 0; i < 100; i++ {
			sp.Compute(sim.Milliseconds(1))
			steps++
		}
	})
	k.After(sim.Milliseconds(5)+sim.Microseconds(500), func() { n.Crash() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Crashed() {
		t.Fatal("node should report crashed")
	}
	// 80 µs context switch + 5 whole 1 ms slices fit before the crash.
	if steps != 5 {
		t.Fatalf("worker completed %d steps, want 5 (halt mid-slice)", steps)
	}
}

// TestCrashDropsInterrupts: a dead CPU takes no interrupts and fires
// its OnCrash hooks exactly once.
func TestCrashDropsInterrupts(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, m68k.DefaultCosts(), "victim")
	hooks, handled := 0, 0
	n.OnCrash(func() { hooks++ })
	n.Crash()
	n.Crash() // idempotent
	n.Interrupt(0, func() { handled++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if hooks != 1 {
		t.Fatalf("OnCrash ran %d times, want 1", hooks)
	}
	if handled != 0 || n.Interrupts != 0 {
		t.Fatalf("dead node serviced %d interrupts (counted %d)", handled, n.Interrupts)
	}
}

// TestRestartRunsNewWork: after Restart the node schedules freshly
// spawned subprocesses, while pre-crash ones stay dead.
func TestRestartRunsNewWork(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, m68k.DefaultCosts(), "victim")
	oldDone, newDone := false, false
	n.SpawnSubprocess("old", 0, func(sp *Subprocess) {
		sp.SleepFor(sim.Milliseconds(2)) // asleep across the crash
		sp.Compute(sim.Milliseconds(1))  // stranded: CPU was dead
		oldDone = true
	})
	k.After(sim.Milliseconds(1), func() { n.Crash() })
	k.After(sim.Milliseconds(3), func() {
		n.Restart()
		n.SpawnSubprocess("new", 0, func(sp *Subprocess) {
			sp.Compute(sim.Milliseconds(1))
			newDone = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if oldDone {
		t.Fatal("pre-crash subprocess must not survive a cold boot")
	}
	if !newDone {
		t.Fatal("post-restart subprocess must run")
	}
	if n.Crashed() {
		t.Fatal("node should be live after Restart")
	}
}

// TestCrashAccountsIdle: a crashed node accumulates idle-other time,
// not user time.
func TestCrashAccountsIdle(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, m68k.DefaultCosts(), "victim")
	n.SpawnSubprocess("worker", 0, func(sp *Subprocess) {
		sp.Compute(sim.Seconds(1))
	})
	k.After(sim.Milliseconds(1), func() { n.Crash() })
	k.RunFor(sim.Milliseconds(11))
	k.Shutdown()
	tot := n.Totals()
	if tot[CatIdleOther] < sim.Milliseconds(10) {
		t.Fatalf("crashed node idle-other = %v, want >= 10ms", tot[CatIdleOther])
	}
}
