package kern

import (
	"fmt"

	"hpcvorx/internal/sim"
)

// Subprocess is a VORX thread of execution: independently scheduled,
// sharing its process's address space, with its own stack and an
// execution priority (paper §5). All methods must be called from the
// subprocess's own body function.
type Subprocess struct {
	node     *Node
	proc     *sim.Proc
	name     string
	prio     int
	waitKind WaitKind

	cpuUser, cpuSystem sim.Duration
}

// chargeCPU attributes consumed CPU to the subprocess.
func (sp *Subprocess) chargeCPU(cat Category, d sim.Duration) {
	if cat == CatUser {
		sp.cpuUser += d
	} else {
		sp.cpuSystem += d
	}
}

// CPUTime returns the user and system CPU the subprocess has consumed
// (system time includes context switches performed on its behalf).
func (sp *Subprocess) CPUTime() (user, system sim.Duration) {
	return sp.cpuUser, sp.cpuSystem
}

// SpawnSubprocess starts a subprocess on the node at the given
// priority (higher runs first, preemptively).
func (n *Node) SpawnSubprocess(name string, prio int, body func(sp *Subprocess)) *Subprocess {
	sp := &Subprocess{node: n, name: name, prio: prio}
	sp.proc = n.k.Spawn(fmt.Sprintf("%s/%s", n.name, name), func(p *sim.Proc) {
		body(sp)
	})
	n.subs = append(n.subs, sp)
	return sp
}

// Name returns the subprocess name.
func (sp *Subprocess) Name() string { return sp.name }

// Node returns the node the subprocess runs on.
func (sp *Subprocess) Node() *Node { return sp.node }

// Priority returns the subprocess's scheduling priority.
func (sp *Subprocess) Priority() int { return sp.prio }

// Proc returns the underlying simulation process.
func (sp *Subprocess) Proc() *sim.Proc { return sp.proc }

// Now returns the current virtual time.
func (sp *Subprocess) Now() sim.Time { return sp.node.k.Now() }

// Compute consumes d of CPU at the subprocess's priority as user time,
// preemptible by interrupts and higher-priority subprocesses.
func (sp *Subprocess) Compute(d sim.Duration) {
	if d <= 0 {
		return
	}
	sp.node.exec(sp, []seg{{CatUser, d}})
}

// System consumes d of CPU as system time (kernel work done on the
// subprocess's behalf).
func (sp *Subprocess) System(d sim.Duration) {
	if d <= 0 {
		return
	}
	sp.node.exec(sp, []seg{{CatSystem, d}})
}

// Syscall charges the supervisor-call overhead plus d of kernel work.
func (sp *Subprocess) Syscall(d sim.Duration) {
	sp.node.exec(sp, []seg{{CatSystem, sp.node.costs.Syscall + d}})
}

// Block suspends the subprocess until the returned wake function is
// called (from any simulation context). kind feeds the idle-time
// partition; reason appears in deadlock reports and cdb output.
func (sp *Subprocess) Block(kind WaitKind, reason string) (wake func()) {
	sp.waitKind = kind
	sp.node.refreshIdle()
	w := sp.proc.Park(reason)
	return func() {
		sp.waitKind = WaitNone
		sp.node.refreshIdle()
		w()
	}
}

// BlockNow arms Block and immediately waits; use when the waker was
// registered beforehand.
func (sp *Subprocess) BlockNow() { sp.proc.Block() }

// SleepFor blocks the subprocess for d of virtual time (idle-other).
func (sp *Subprocess) SleepFor(d sim.Duration) {
	sp.waitKind = WaitOther
	sp.node.refreshIdle()
	wake := sp.proc.Park("sleep " + sp.name)
	sp.node.k.After(d, func() {
		sp.waitKind = WaitNone
		sp.node.refreshIdle()
		wake()
	})
	sp.proc.Block()
}

// Yield lets equal-priority work run (cooperative reschedule).
func (sp *Subprocess) Yield() { sp.proc.Yield() }

// Semaphore is a VORX counting semaphore: the communication mechanism
// between subprocesses of a process (paper §5). P and V charge the
// semaphore-operation cost to the calling subprocess.
type Semaphore struct {
	node    *Node
	name    string
	count   int
	waiters []waiter
}

type waiter struct {
	sp   *Subprocess
	wake func()
}

// NewSemaphore creates a semaphore on the node with an initial count.
func (n *Node) NewSemaphore(name string, count int) *Semaphore {
	return &Semaphore{node: n, name: name, count: count}
}

// Value returns the semaphore's current count.
func (s *Semaphore) Value() int { return s.count }

// P decrements the semaphore, blocking the subprocess while zero.
func (s *Semaphore) P(sp *Subprocess) {
	sp.System(s.node.costs.SemOp)
	if s.count > 0 {
		s.count--
		return
	}
	wake := sp.Block(WaitOther, "sem "+s.name)
	s.waiters = append(s.waiters, waiter{sp: sp, wake: wake})
	sp.BlockNow()
}

// V increments the semaphore, waking the oldest waiter.
func (s *Semaphore) V(sp *Subprocess) {
	sp.System(s.node.costs.SemOp)
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.wake()
		return
	}
	s.count++
}

// VFromInterrupt increments the semaphore from interrupt level (no
// subprocess context, no charge — the interrupt already paid).
func (s *Semaphore) VFromInterrupt() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.wake()
		return
	}
	s.count++
}
