// Package obs is the analysis layer on top of internal/trace: it
// consumes the causal event stream (live through a Sink, or replayed
// from a flight-recorder dump) and turns per-write trace IDs into an
// exact decomposition of where each write's virtual time went. It
// also samples the metrics registry into virtual-time series
// (sampler.go) and exports both in open formats (openmetrics.go).
//
// Everything here is host-side: attaching an Analyzer or Sampler never
// schedules a simulation event, so analyzed runs are byte-identical to
// unanalyzed ones — the same discipline internal/trace established.
package obs

import (
	"fmt"
	"io"
	"sort"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/trace"
)

// Component names one destination a slice of a write's end-to-end
// virtual-time latency is attributed to. The components partition the
// interval [KWrite.At, last KAck.At] exactly: every nanosecond lands
// in exactly one bucket, which is what makes the decomposition an
// accounting identity rather than an estimate (asserted by
// Report.Check).
type Component int

const (
	// CompWire is link transmission: arbitration won through hop
	// complete (fixed hop cost + bytes on the wire + propagation,
	// including degraded-link slowdown), plus vchan broker forwards.
	CompWire Component = iota
	// CompQueue is output-port and buffer queueing: waiting for an
	// output section, stalled behind busy/failed links, and sitting
	// in intermediate cube buffers between hops.
	CompQueue
	// CompInterrupt is receive-side cost: input-section arrival
	// through interrupt dispatch (including coalescing holds) and the
	// kernel-copy/service path down to channel delivery and ack
	// generation.
	CompInterrupt
	// CompBusy is refuse/busy stall: from the receiver discarding a
	// fragment for want of side buffers until the sender re-sends.
	CompBusy
	// CompRetransmit is retransmit penalty: the re-sent fragment's
	// whole journey (and any timeout wait preceding it) until the
	// receiver finally accepts the message.
	CompRetransmit
	// CompMigration is outage/migration gap: time during which an
	// involved machine was crashed (crash..restart window), plus the
	// wait after a fence or stale-term refusal until replay delivers.
	CompMigration

	NumComponents
)

var compNames = [NumComponents]string{
	"wire", "queue", "interrupt", "busy", "retransmit", "migration",
}

func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return compNames[c]
}

// WriteLatency is the attribution of one traced write.
type WriteLatency struct {
	TID        uint64
	Node       string // writer's machine
	Lane       string // channel lane ("chan/<name>")
	Start, End sim.Time
	Total      sim.Duration // End - Start; == sum(Comp) exactly
	Comp       [NumComponents]sim.Duration
	Frags      int // fragments first-sent
	Hops       int // completed link transmissions (all tid traffic)
	Busies     int // busy refusals suffered
	Rexmits    int // fragments re-sent
	Complete   bool
}

// Analyzer buffers a trace event stream for analysis. It implements
// trace.Sink, so it can ride a Tracer's forward slot live (see Tee),
// or be fed a replayed dump via Analyze. Analysis itself is batch —
// Report walks whatever has arrived so far.
type Analyzer struct {
	events []trace.Event
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

// TraceEvent implements trace.Sink: record and move on. Nil-safe.
func (a *Analyzer) TraceEvent(e trace.Event) {
	if a == nil {
		return
	}
	a.events = append(a.events, e)
}

// Len reports how many events have been captured.
func (a *Analyzer) Len() int {
	if a == nil {
		return 0
	}
	return len(a.events)
}

// Report analyzes the captured stream.
func (a *Analyzer) Report() *Report { return Analyze(a.events) }

// span is a closed-open virtual-time interval.
type span struct{ from, to sim.Time }

const timeInf = sim.Time(1<<63 - 1)

// mark is one causally ordered point on a write's timeline. Synthetic
// hop-end marks reuse the KHop event's Seq: complete() records the
// hop span at the completion instant before any downstream
// processing, so that Seq sorts correctly among the completion-time
// marks even though the event's At is the transmission start.
type mark struct {
	at     sim.Time
	seq    uint64
	kind   trace.Kind
	node   string
	lane   string
	hopEnd bool
}

// Analyze attributes every traced write in the event slice. Events
// need not be sorted; ring-truncated streams degrade gracefully (a
// write whose KWrite or KAck fell off the ring is reported
// incomplete and excluded from aggregates).
func Analyze(events []trace.Event) *Report {
	rep := &Report{
		Events: len(events),
		reg:    trace.NewRegistry(nil),
	}

	// Pass 1: crash windows per machine, and per-tid mark lists.
	down := make(map[string][]span)
	open := make(map[string]sim.Time)
	byTID := make(map[uint64][]mark)
	var tids []uint64
	for _, e := range events {
		switch e.Kind {
		case trace.KCrash:
			if _, ok := open[e.Node]; !ok {
				open[e.Node] = e.At
			}
		case trace.KRestart:
			if from, ok := open[e.Node]; ok {
				down[e.Node] = append(down[e.Node], span{from, e.At})
				delete(open, e.Node)
			}
		}
		if e.TID == 0 {
			continue
		}
		if _, ok := byTID[e.TID]; !ok {
			tids = append(tids, e.TID)
		}
		m := mark{at: e.At, seq: e.Seq, kind: e.Kind, node: e.Node, lane: e.Lane}
		if e.Kind == trace.KHop && e.Dur > 0 {
			// Fabric hop span: the start instant is already marked
			// by KAcquire; keep only the completion.
			m.at = e.At + sim.Time(e.Dur)
			m.hopEnd = true
		}
		byTID[e.TID] = append(byTID[e.TID], m)
	}
	for node, from := range open {
		down[node] = append(down[node], span{from, timeInf})
	}

	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		// The fabric stamps a trace ID on every message it carries;
		// only those with channel-protocol marks are writes. Pure
		// fabric/control flows (objmgr lookups, heartbeats, vchan
		// control) are counted but not attributed.
		if !isWriteFlow(byTID[tid]) {
			rep.Flows++
			continue
		}
		wl := attribute(tid, byTID[tid], down)
		rep.Writes = append(rep.Writes, wl)
		if !wl.Complete {
			rep.Incomplete++
			continue
		}
		rep.TotalLat += wl.Total
		rep.reg.Histogram("lat.end_to_end", obsBounds...).Observe(float64(wl.Total))
		for c := Component(0); c < NumComponents; c++ {
			rep.CompTotal[c] += wl.Comp[c]
			if wl.Comp[c] > 0 {
				rep.reg.Histogram("lat."+compNames[c], obsBounds...).Observe(float64(wl.Comp[c]))
			}
		}
	}
	sort.Slice(rep.Writes, func(i, j int) bool {
		a, b := rep.Writes[i], rep.Writes[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.TID < b.TID
	})
	return rep
}

// isWriteFlow reports whether a tid's marks belong to a channel write:
// either the KWrite root survived, or (ring truncation) some other
// channel-protocol mark did.
func isWriteFlow(marks []mark) bool {
	for _, m := range marks {
		if m.hopEnd {
			continue
		}
		switch m.kind {
		case trace.KWrite, trace.KFragment, trace.KChanDel, trace.KAck,
			trace.KBusy, trace.KResume, trace.KRetransmit, trace.KWindow:
			return true
		}
	}
	return false
}

// attribute walks one write's marks and partitions [KWrite, last KAck]
// into components. The walk keeps a base phase derived from the most
// recent mark kind, overridden by an epoch when the write is inside a
// busy stall, a retransmission, or a fence/migration recovery — the
// control traffic those episodes generate rides the same trace ID and
// would otherwise be mislabeled wire/queue time.
func attribute(tid uint64, marks []mark, down map[string][]span) WriteLatency {
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].at != marks[j].at {
			return marks[i].at < marks[j].at
		}
		return marks[i].seq < marks[j].seq
	})

	wl := WriteLatency{TID: tid}
	end := sim.Time(-1)
	for _, m := range marks {
		switch {
		case m.hopEnd:
			wl.Hops++
		case m.kind == trace.KWrite:
			wl.Node, wl.Lane = m.node, m.lane
		case m.kind == trace.KFragment:
			wl.Frags++
		case m.kind == trace.KBusy:
			wl.Busies++
		case m.kind == trace.KRetransmit:
			wl.Rexmits++
		}
		if m.kind == trace.KAck && !m.hopEnd {
			end = m.at
		}
	}
	if len(marks) == 0 || marks[0].kind != trace.KWrite || end < 0 {
		return wl // head or tail lost (ring wrap, crash): incomplete
	}
	wl.Start, wl.End, wl.Complete = marks[0].at, end, true
	wl.Total = sim.Duration(end - marks[0].at)

	// Crash windows of every machine this write touched, merged.
	outages := participantOutages(marks, down)

	const epochNone = -1
	epoch := Component(epochNone)
	base := CompQueue
	for i := 0; i+1 < len(marks); i++ {
		m, next := marks[i], marks[i+1]
		if m.at >= end {
			break
		}
		// State transition on the mark we just passed.
		if !m.hopEnd {
			switch m.kind {
			case trace.KBusy, trace.KResume:
				epoch = CompBusy
			case trace.KRetransmit:
				epoch = CompRetransmit
			case trace.KFence, trace.KMigrate:
				epoch = CompMigration
			case trace.KChanDel:
				epoch = epochNone
				base = CompInterrupt
			default:
				if epoch == epochNone {
					if b, ok := baseFor(m.kind); ok {
						base = b
					}
				}
			}
		} else if epoch == epochNone {
			base = CompQueue // sitting in the downstream hop buffer
		}
		a, b := m.at, next.at
		if b > end {
			b = end
		}
		if b <= a {
			continue
		}
		label := base
		if epoch != epochNone {
			label = epoch
		}
		gap := overlap(outages, a, b)
		wl.Comp[CompMigration] += gap
		if label != CompMigration {
			wl.Comp[label] += sim.Duration(b-a) - gap
		} else if rest := sim.Duration(b-a) - gap; rest > 0 {
			wl.Comp[CompMigration] += rest
		}
	}
	return wl
}

// baseFor maps a mark kind to the component that accounts for the
// time FOLLOWING it, in the normal (no-episode) epoch. The bool is
// false for kinds that say nothing about what comes next (window
// credits, reads, flow control notes) — the previous phase holds.
func baseFor(k trace.Kind) (Component, bool) {
	switch k {
	case trace.KWrite, trace.KFragment, trace.KEnqueue, trace.KBlocked:
		return CompQueue, true
	case trace.KAcquire, trace.KHop: // KHop here: instant vchan broker forward
		return CompWire, true
	case trace.KDeliver, trace.KService:
		return CompInterrupt, true
	}
	return 0, false
}

// participantOutages merges the crash windows of every machine named
// in the write's marks. Merging first keeps the later overlap sum
// from double-counting instants when two participants were down at
// once — exactness depends on it.
func participantOutages(marks []mark, down map[string][]span) []span {
	var spans []span
	seen := map[string]bool{}
	for _, m := range marks {
		if m.node == "" || seen[m.node] {
			continue
		}
		seen[m.node] = true
		spans = append(spans, down[m.node]...)
	}
	if len(spans) <= 1 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.from <= last.to {
			if s.to > last.to {
				last.to = s.to
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// overlap sums the intersection of [a, b) with the merged outage set.
func overlap(outages []span, a, b sim.Time) sim.Duration {
	var d sim.Duration
	for _, s := range outages {
		lo, hi := s.from, s.to
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			d += sim.Duration(hi - lo)
		}
	}
	return d
}

// obsBounds is a 1-2-5 ladder from 1µs to 1s (in ns): finer than
// trace.DefaultBounds so Quantile interpolation has something to work
// with at the p999 tail.
var obsBounds = []float64{
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
	1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
}

// Report is the result of one analysis pass.
type Report struct {
	Events     int
	Writes     []WriteLatency // sorted by (Start, TID)
	Incomplete int
	Flows      int          // traced non-write flows (control, objmgr, heartbeats)
	TotalLat   sim.Duration // sum over complete writes
	CompTotal  [NumComponents]sim.Duration

	reg *trace.Registry // lat.* histograms feeding the quantiles
}

// Metrics exposes the report's latency histograms (lat.end_to_end,
// lat.<component>) — the registry OpenMetrics export reads.
func (r *Report) Metrics() *trace.Registry { return r.reg }

// CompleteWrites counts writes whose full causal chain was observed.
func (r *Report) CompleteWrites() int { return len(r.Writes) - r.Incomplete }

// Check asserts the accounting identity on every complete write: the
// component sums must equal the observed end-to-end latency to the
// nanosecond. A non-nil error means the analyzer (not the run) is
// wrong.
func (r *Report) Check() error {
	for _, w := range r.Writes {
		if !w.Complete {
			continue
		}
		var sum sim.Duration
		for _, d := range w.Comp {
			sum += d
		}
		if sum != w.Total {
			return fmt.Errorf("obs: tid %d components sum to %v, end-to-end is %v", w.TID, sum, w.Total)
		}
		if sim.Duration(w.End-w.Start) != w.Total {
			return fmt.Errorf("obs: tid %d span %v..%v disagrees with total %v", w.TID, w.Start, w.End, w.Total)
		}
	}
	return nil
}

// Quantile reports the q-th quantile of a component's per-write
// latency contribution in nanoseconds (series "end_to_end" for the
// full latency). Zero when no complete write touched the component.
func (r *Report) Quantile(series string, q float64) float64 {
	return r.reg.Histogram("lat."+series, obsBounds...).Quantile(q)
}

// Share is a component's fraction of all attributed virtual time.
func (r *Report) Share(c Component) float64 {
	if r.TotalLat == 0 {
		return 0
	}
	return float64(r.CompTotal[c]) / float64(r.TotalLat)
}

func us(d sim.Duration) float64 { return float64(d) / 1e3 }

// WriteTable renders the aggregate decomposition. Deterministic: all
// numbers are virtual-time.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "latency attribution: %d events, %d writes (%d complete, %d incomplete), %d other flows\n",
		r.Events, len(r.Writes), r.CompleteWrites(), r.Incomplete, r.Flows)
	if r.CompleteWrites() == 0 {
		return
	}
	fmt.Fprintf(w, "  %-12s %12s %7s %10s %10s %10s\n",
		"component", "total(µs)", "share", "p50(µs)", "p99(µs)", "p999(µs)")
	for c := Component(0); c < NumComponents; c++ {
		h := r.reg.Histogram("lat."+compNames[c], obsBounds...)
		fmt.Fprintf(w, "  %-12s %12.1f %6.1f%% %10.1f %10.1f %10.1f\n",
			compNames[c], us(r.CompTotal[c]), 100*r.Share(c),
			h.Quantile(0.50)/1e3, h.Quantile(0.99)/1e3, h.Quantile(0.999)/1e3)
	}
	h := r.reg.Histogram("lat.end_to_end", obsBounds...)
	fmt.Fprintf(w, "  %-12s %12.1f %6.1f%% %10.1f %10.1f %10.1f\n",
		"end-to-end", us(r.TotalLat), 100.0,
		h.Quantile(0.50)/1e3, h.Quantile(0.99)/1e3, h.Quantile(0.999)/1e3)
	if err := r.Check(); err != nil {
		fmt.Fprintf(w, "  ATTRIBUTION BROKEN: %v\n", err)
	} else {
		fmt.Fprintf(w, "  sums exact: %d/%d writes\n", r.CompleteWrites(), r.CompleteWrites())
	}
}

// TopN returns the n slowest complete writes (ties broken by TID).
func (r *Report) TopN(n int) []WriteLatency {
	var c []WriteLatency
	for _, w := range r.Writes {
		if w.Complete {
			c = append(c, w)
		}
	}
	sort.Slice(c, func(i, j int) bool {
		if c[i].Total != c[j].Total {
			return c[i].Total > c[j].Total
		}
		return c[i].TID < c[j].TID
	})
	if n < len(c) {
		c = c[:n]
	}
	return c
}

// WriteTop renders the n slowest writes with their breakdowns.
func (r *Report) WriteTop(w io.Writer, n int) {
	top := r.TopN(n)
	if len(top) == 0 {
		return
	}
	fmt.Fprintf(w, "slowest writes:\n")
	for _, wl := range top {
		fmt.Fprintf(w, "  tid %-5d %-8s %-16s start=%-12v total=%8.1fµs ", wl.TID, wl.Node, wl.Lane, wl.Start, us(wl.Total))
		for c := Component(0); c < NumComponents; c++ {
			if wl.Comp[c] > 0 {
				fmt.Fprintf(w, " %s=%.1fµs", compNames[c], us(wl.Comp[c]))
			}
		}
		fmt.Fprintf(w, "  (frags=%d hops=%d busy=%d rexmit=%d)\n", wl.Frags, wl.Hops, wl.Busies, wl.Rexmits)
	}
}

// Tee fans one event stream out to several sinks — a Tracer's forward
// slot holds a single Sink, and live analysis wants both an Analyzer
// and a Sampler attached. Nil sinks are dropped.
func Tee(sinks ...trace.Sink) trace.Sink {
	var t tee
	for _, s := range sinks {
		if s != nil {
			t = append(t, s)
		}
	}
	return t
}

type tee []trace.Sink

func (t tee) TraceEvent(e trace.Event) {
	for _, s := range t {
		s.TraceEvent(e)
	}
}
