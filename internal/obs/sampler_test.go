package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"hpcvorx/internal/obs"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/trace"
)

func ev(at sim.Time) trace.Event {
	return trace.Event{At: at, Kind: trace.KFlow}
}

func TestSamplerBoundaries(t *testing.T) {
	reg := trace.NewRegistry(nil)
	s := obs.NewSampler(reg, 100)

	reg.Counter("c").Add(1)
	s.TraceEvent(ev(50)) // before the first boundary: nothing
	if s.Len() != 0 {
		t.Fatalf("len = %d before first boundary", s.Len())
	}
	reg.Counter("c").Add(1)
	s.TraceEvent(ev(250)) // crosses boundaries 100 and 200
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	reg.Counter("c").Add(40)
	s.TraceEvent(ev(300)) // exactly on a boundary: inclusive
	ss := s.Samples()
	if len(ss) != 3 || ss[0].At != 100 || ss[1].At != 200 || ss[2].At != 300 {
		t.Fatalf("sample times = %+v", ss)
	}
	// Boundaries 100 and 200 were both materialized at the t=250
	// event, so they share the state as of that instant.
	if ss[0].Snap["c"] != 2 || ss[1].Snap["c"] != 2 || ss[2].Snap["c"] != 42 {
		t.Fatalf("sample values = %v %v %v", ss[0].Snap["c"], ss[1].Snap["c"], ss[2].Snap["c"])
	}
}

func TestSamplerRingLimit(t *testing.T) {
	reg := trace.NewRegistry(nil)
	s := obs.NewSampler(reg, 10)
	s.SetLimit(3)
	s.TraceEvent(ev(100)) // boundaries 10..100
	if s.Len() != 3 || s.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", s.Len(), s.Dropped())
	}
	ss := s.Samples()
	if ss[0].At != 80 || ss[2].At != 100 {
		t.Fatalf("ring kept %v..%v, want newest 80..100", ss[0].At, ss[2].At)
	}
}

func TestSamplerFlush(t *testing.T) {
	reg := trace.NewRegistry(nil)
	s := obs.NewSampler(reg, 100)
	s.TraceEvent(ev(120))
	s.Flush(450) // boundaries 200..400 plus the end instant itself
	ss := s.Samples()
	if len(ss) != 5 || ss[len(ss)-1].At != 450 {
		t.Fatalf("flush produced %+v", ss)
	}
	// Flushing again at the same instant must not duplicate.
	s.Flush(450)
	if s.Len() != 5 {
		t.Fatalf("double flush grew the series to %d", s.Len())
	}
}

func TestSamplerNilSafe(t *testing.T) {
	var s *obs.Sampler
	s.TraceEvent(ev(10))
	s.Flush(100)
	s.SetLimit(2)
	if s.Len() != 0 || s.Dropped() != 0 || s.Samples() != nil || s.Period() != 0 {
		t.Fatal("nil sampler must be inert")
	}
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "at_ns\n" {
		t.Fatalf("nil CSV = %q", b.String())
	}
}

func TestSamplerCSV(t *testing.T) {
	reg := trace.NewRegistry(nil)
	s := obs.NewSampler(reg, 100)
	reg.Counter("b.count").Add(3)
	s.TraceEvent(ev(100))
	reg.Gauge("a.depth").Set(1.5)
	s.TraceEvent(ev(200))
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "at_ns,a.depth,b.count\n100,0,3\n200,1.5,3\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestOpenMetricsFormat(t *testing.T) {
	reg := trace.NewRegistry(nil)
	reg.Counter("chan.written").Add(64)
	reg.Gauge("hpc.q.up5").Set(2)
	h := reg.Histogram("lat.e2e", 10, 20)
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)

	var b bytes.Buffer
	if err := obs.WriteOpenMetrics(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE vorx_chan_written counter\n",
		"vorx_chan_written_total 64\n",
		"# TYPE vorx_hpc_q_up5 gauge\n",
		"vorx_hpc_q_up5 2\n",
		"# TYPE vorx_lat_e2e histogram\n",
		"vorx_lat_e2e_bucket{le=\"10\"} 1\n",
		"vorx_lat_e2e_bucket{le=\"20\"} 2\n", // cumulative
		"vorx_lat_e2e_bucket{le=\"+Inf\"} 3\n",
		"vorx_lat_e2e_sum 119\n",
		"vorx_lat_e2e_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", out)
	}
	var b2 bytes.Buffer
	if err := obs.WriteOpenMetrics(&b2, reg); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("OpenMetrics export is not deterministic")
	}
}
