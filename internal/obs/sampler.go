package obs

import (
	"fmt"
	"io"
	"math"
	"sort"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/trace"
)

// Sample is one point of the virtual-time series: the registry's
// flattened state as of the sample boundary.
type Sample struct {
	At   sim.Time
	Snap trace.Snap
}

// Sampler snapshots a metrics Registry into a ring-buffered series at
// a fixed virtual-time period. It implements trace.Sink and
// piggybacks entirely on the event stream: when a forwarded event's
// timestamp crosses the next boundary, the boundary sample is taken
// before anything else advances. The sampler therefore never
// schedules a simulation event — zero perturbation of virtual time —
// and a sample reflects the registry "as of the first recorded event
// at or after the boundary", which is a deterministic function of the
// run.
//
// A nil Sampler is a no-op on every method, so call sites can thread
// one through unconditionally.
type Sampler struct {
	reg     *trace.Registry
	period  sim.Duration
	next    sim.Time
	limit   int
	ring    []Sample
	start   int
	dropped int
}

// DefaultSamplePeriod is 1ms of virtual time.
const DefaultSamplePeriod = sim.Duration(1e6)

// NewSampler builds a sampler over reg. period <= 0 selects
// DefaultSamplePeriod. The first sample lands at one period past
// virtual time zero.
func NewSampler(reg *trace.Registry, period sim.Duration) *Sampler {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Sampler{reg: reg, period: period, next: sim.Time(period)}
}

// SetLimit caps retained samples at n newest (ring mode); n <= 0
// removes the cap. Counting continues; Dropped reports evictions.
func (s *Sampler) SetLimit(n int) {
	if s == nil {
		return
	}
	s.limit = n
	for n > 0 && len(s.ring) > n {
		s.evict()
	}
}

func (s *Sampler) evict() {
	if s.start < len(s.ring) {
		copy(s.ring[s.start:], s.ring[s.start+1:])
		s.ring = s.ring[:len(s.ring)-1]
	}
	s.dropped++
}

func (s *Sampler) push(p Sample) {
	if s.limit > 0 && len(s.ring) >= s.limit {
		s.evict()
	}
	s.ring = append(s.ring, p)
}

// TraceEvent implements trace.Sink. Cost when no boundary is crossed:
// one comparison.
func (s *Sampler) TraceEvent(e trace.Event) {
	if s == nil || s.reg == nil || e.At < s.next {
		return
	}
	// Several boundaries may have elapsed in an idle gap; they all
	// see the same registry state, so snapshot once and share it
	// (Snap is never mutated after creation).
	snap := s.reg.Snapshot()
	for e.At >= s.next {
		s.push(Sample{At: s.next, Snap: snap})
		s.next += sim.Time(s.period)
	}
}

// Flush records a final sample at the run's end time (typically the
// kernel's quiesce instant), so series always cover the whole run.
func (s *Sampler) Flush(at sim.Time) {
	if s == nil || s.reg == nil {
		return
	}
	snap := s.reg.Snapshot()
	for at >= s.next {
		s.push(Sample{At: s.next, Snap: snap})
		s.next += sim.Time(s.period)
	}
	if n := len(s.ring); n == 0 || s.ring[n-1].At < at {
		s.push(Sample{At: at, Snap: snap})
	}
}

// Samples returns the retained series, oldest first.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return append([]Sample(nil), s.ring...)
}

// Len reports retained samples; Dropped reports ring evictions.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ring)
}

func (s *Sampler) Dropped() int {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Period reports the configured sampling period.
func (s *Sampler) Period() sim.Duration {
	if s == nil {
		return 0
	}
	return s.period
}

// WriteCSV dumps the series as CSV: one row per sample, one column
// per instrument (sorted union across samples, absent-then means 0),
// leading at_ns column. Deterministic.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		_, err := fmt.Fprintln(w, "at_ns")
		return err
	}
	cols := map[string]bool{}
	for _, p := range s.ring {
		for k := range p.Snap {
			cols[k] = true
		}
	}
	names := make([]string, 0, len(cols))
	for k := range cols {
		names = append(names, k)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "at_ns"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range s.ring {
		if _, err := fmt.Fprintf(w, "%d", int64(p.At)); err != nil {
			return err
		}
		for _, n := range names {
			if _, err := fmt.Fprintf(w, ",%s", csvVal(p.Snap[n])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func csvVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
