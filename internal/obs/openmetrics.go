package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"hpcvorx/internal/trace"
)

// WriteOpenMetrics renders a metrics Registry in OpenMetrics text
// format: counters with a _total sample, gauges plain, histograms as
// cumulative le-bucketed families with _sum and _count, terminated by
// the mandatory # EOF. Instrument names are prefixed "vorx_" and
// sanitized (dots and other invalid characters become underscores).
// Output is deterministic: families render in name order within
// counter/gauge/histogram sections.
func WriteOpenMetrics(w io.Writer, reg *trace.Registry) error {
	ew := &omWriter{w: w}
	reg.EachCounter(func(name string, c *trace.Counter) {
		n := omName(name)
		ew.printf("# TYPE %s counter\n", n)
		ew.printf("%s_total %s\n", n, omVal(c.V))
	})
	reg.EachGauge(func(name string, g *trace.Gauge) {
		n := omName(name)
		ew.printf("# TYPE %s gauge\n", n)
		ew.printf("%s %s\n", n, omVal(g.V))
	})
	reg.EachHistogram(func(name string, h *trace.Histogram) {
		n := omName(name)
		ew.printf("# TYPE %s histogram\n", n)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			ew.printf("%s_bucket{le=\"%s\"} %d\n", n, omVal(bound), cum)
		}
		ew.printf("%s_bucket{le=\"+Inf\"} %d\n", n, h.N)
		ew.printf("%s_sum %s\n", n, omVal(h.Sum))
		ew.printf("%s_count %d\n", n, h.N)
	})
	ew.printf("# EOF\n")
	return ew.err
}

// omName sanitizes a dotted instrument name into an OpenMetrics
// metric name.
func omName(name string) string {
	var b strings.Builder
	b.WriteString("vorx_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func omVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type omWriter struct {
	w   io.Writer
	err error
}

func (o *omWriter) printf(format string, args ...any) {
	if o.err != nil {
		return
	}
	_, o.err = fmt.Fprintf(o.w, format, args...)
}
