package obs_test

// Full-stack guarantees of the latency observatory: (1) for every
// traced write the component attribution sums exactly to its observed
// end-to-end virtual-time latency, across clean streams, pipelined
// windows, busy-stall congestion, and crash+migration recovery;
// (2) analyzing live through the forward sink and replaying a
// flight-recorder dump produce identical reports; (3) attaching the
// analyzer/sampler perturbs nothing — the simulation and its trace
// are byte-identical with and without them.

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/obs"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
	"hpcvorx/internal/trace"
	"hpcvorx/internal/workload"
)

// tracedStream runs the 64×8KB stream with tracing plus a live
// analyzer and sampler attached, returning everything a test needs.
func tracedStream(t *testing.T, cp core.CommProfile) (*core.System, *obs.Analyzer, *obs.Sampler, sim.Duration) {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1, Comm: cp})
	if err != nil {
		t.Fatal(err)
	}
	sys.Trace.Enable()
	an := obs.NewAnalyzer()
	smp := obs.NewSampler(sys.Trace.Metrics(), 200*sim.Microsecond)
	sys.Trace.SetForward(obs.Tee(an, smp))
	mk := workload.Stream(sys, 8192, 64)
	smp.Flush(sys.K.Now())
	return sys, an, smp, mk
}

func checkExact(t *testing.T, rep *obs.Report) {
	t.Helper()
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamAttributionExact(t *testing.T) {
	_, an, smp, _ := tracedStream(t, core.Classic())
	rep := an.Report()
	checkExact(t, rep)
	if got := rep.CompleteWrites(); got != 64 {
		t.Fatalf("complete writes = %d, want 64 (incomplete %d)", got, rep.Incomplete)
	}
	if rep.CompTotal[obs.CompWire] <= 0 || rep.CompTotal[obs.CompInterrupt] <= 0 {
		t.Fatalf("wire/interrupt components empty: %+v", rep.CompTotal)
	}
	for _, w := range rep.Writes {
		if w.Frags < 1 || w.Hops < w.Frags {
			t.Fatalf("tid %d: frags=%d hops=%d", w.TID, w.Frags, w.Hops)
		}
		if w.Busies != 0 || w.Rexmits != 0 || w.Comp[obs.CompMigration] != 0 {
			t.Fatalf("clean stream shows recovery components: %+v", w)
		}
	}
	if smp.Len() == 0 {
		t.Fatal("sampler recorded no series points")
	}
	// p50 <= p99 <= p999 and all within [0, max total].
	p50 := rep.Quantile("end_to_end", 0.50)
	p99 := rep.Quantile("end_to_end", 0.99)
	p999 := rep.Quantile("end_to_end", 0.999)
	if !(p50 > 0 && p50 <= p99 && p99 <= p999) {
		t.Fatalf("quantiles not monotonic: %v %v %v", p50, p99, p999)
	}
}

func TestPipelinedAttributionExact(t *testing.T) {
	_, anC, _, mkC := tracedStream(t, core.Classic())
	_, anP, _, mkP := tracedStream(t, core.Pipelined())
	repC, repP := anC.Report(), anP.Report()
	checkExact(t, repC)
	checkExact(t, repP)
	if mkP >= mkC {
		t.Fatalf("pipelined makespan %v not faster than classic %v", mkP, mkC)
	}
	if repP.CompleteWrites() != 64 || repC.CompleteWrites() != 64 {
		t.Fatalf("complete: classic %d pipelined %d", repC.CompleteWrites(), repP.CompleteWrites())
	}
}

func TestManyToOneAttributionExact(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sys.Trace.Enable()
	an := obs.NewAnalyzer()
	sys.Trace.SetForward(an)
	workload.ManyToOne(sys, 800, 10)
	rep := an.Report()
	checkExact(t, rep)
	if rep.CompleteWrites() != 190 {
		t.Fatalf("complete writes = %d, want 190", rep.CompleteWrites())
	}
	var busies int
	for _, w := range rep.Writes {
		busies += w.Busies
	}
	if busies > 0 && rep.CompTotal[obs.CompBusy] == 0 {
		t.Fatalf("%d busy refusals but zero busy-stall attribution", busies)
	}
	t.Logf("many-to-one: %d busies, busy share %.1f%%, queue share %.1f%%",
		busies, 100*rep.Share(obs.CompBusy), 100*rep.Share(obs.CompQueue))
}

// --- crash + migration scenario (mirrors trace's heal test) ---

type healState struct {
	read    int
	written int
	log     []string
}

func (hs *healState) Checkpoint() ([]byte, map[string]super.Mark) {
	return []byte(fmt.Sprintf("%d|%d|%s", hs.read, hs.written, strings.Join(hs.log, ","))),
		map[string]super.Mark{"pipe": {Read: hs.read, Written: hs.written}}
}

func restoreHealState(b []byte) *healState {
	hs := &healState{}
	if len(b) == 0 {
		return hs
	}
	parts := strings.SplitN(string(b), "|", 3)
	hs.read, _ = strconv.Atoi(parts[0])
	hs.written, _ = strconv.Atoi(parts[1])
	if parts[2] != "" {
		hs.log = strings.Split(parts[2], ",")
	}
	return hs
}

func runHeal(t *testing.T, n int, attach trace.Sink) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Trace.Enable()
	if attach != nil {
		sys.Trace.SetForward(attach)
	}
	res := resmgr.NewVORX(sys.K, len(sys.Nodes()))
	if _, err := res.Allocate("app", 2); err != nil {
		t.Fatal(err)
	}
	sup := super.New(sys, sys.Host(0), res, super.Config{
		HeartbeatEvery:  500 * sim.Microsecond,
		SuspectAfter:    1 * sim.Millisecond,
		ConfirmAfter:    2 * sim.Millisecond,
		CheckpointEvery: 1 * sim.Millisecond,
		RestartDelay:    500 * sim.Microsecond,
	})
	eng := fault.New(sys.K, 7)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false)
	eng.CrashNodeAt(2*sim.Millisecond, 1)

	var final []string
	writer := sup.NewTask("writer", sys.Node(0), 0, nil)
	reader := sup.NewTask("reader", sys.Node(1), 0, nil)
	writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		hs := restoreHealState(inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			writer.Attach(ch)
		}
		writer.SetCheckpointer(hs)
		for hs.written < n {
			if err := ch.Write(sp, 128, fmt.Sprintf("m%d", hs.written)); err != nil {
				return
			}
			hs.written++
			sp.SleepFor(300 * sim.Microsecond)
		}
	})
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		hs := restoreHealState(inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			reader.Attach(ch)
		}
		reader.SetCheckpointer(hs)
		for hs.read < n {
			m, ok := ch.Read(sp)
			if !ok {
				return
			}
			hs.log = append(hs.log, m.Payload.(string))
			hs.read++
		}
		final = hs.log
	})
	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(60 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(final) != n {
		t.Fatalf("reader finished with %d/%d messages", len(final), n)
	}
	return sys
}

func TestHealAttributionSeesOutageAndReplay(t *testing.T) {
	an := obs.NewAnalyzer()
	runHeal(t, 20, an)
	rep := an.Report()
	checkExact(t, rep)
	recovery := rep.CompTotal[obs.CompMigration] + rep.CompTotal[obs.CompRetransmit] + rep.CompTotal[obs.CompBusy]
	if recovery == 0 {
		t.Fatal("crash+migration run attributed zero recovery time")
	}
	var straddlers int
	for _, w := range rep.Writes {
		if w.Complete && (w.Comp[obs.CompMigration] > 0 || w.Rexmits > 0) {
			straddlers++
		}
	}
	if straddlers == 0 {
		t.Fatal("no write shows migration gap or replay despite mid-stream crash")
	}
	t.Logf("heal: %d/%d writes straddle the outage; migration %v, retransmit %v",
		straddlers, len(rep.Writes), rep.CompTotal[obs.CompMigration], rep.CompTotal[obs.CompRetransmit])
}

func TestLiveAnalysisEqualsFlightReplay(t *testing.T) {
	sys, live, _, _ := tracedStream(t, core.Pipelined())
	var buf bytes.Buffer
	if err := sys.Trace.WriteFlight(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadFlight(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := obs.Analyze(events)
	liveRep := live.Report()
	checkExact(t, replayed)

	if len(liveRep.Writes) != len(replayed.Writes) {
		t.Fatalf("writes: live %d, replay %d", len(liveRep.Writes), len(replayed.Writes))
	}
	for i := range liveRep.Writes {
		if liveRep.Writes[i] != replayed.Writes[i] {
			t.Fatalf("write %d differs:\nlive   %+v\nreplay %+v", i, liveRep.Writes[i], replayed.Writes[i])
		}
	}
	var a, b bytes.Buffer
	liveRep.WriteTable(&a)
	replayed.WriteTable(&b)
	if a.String() != b.String() {
		t.Fatalf("report tables differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestObservatoryDoesNotPerturb is the PR's acceptance gate: the same
// seed with and without the analyzer+sampler attached must quiesce at
// the same virtual instant, produce the same makespan, and emit a
// byte-identical flight recording.
func TestObservatoryDoesNotPerturb(t *testing.T) {
	plainSys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plainSys.Trace.Enable()
	plainMk := workload.Stream(plainSys, 8192, 64)

	obsSys, _, _, obsMk := tracedStream(t, core.Classic())

	if plainMk != obsMk || plainSys.K.Now() != obsSys.K.Now() {
		t.Fatalf("observatory perturbed the run: makespan %v vs %v, quiesce %v vs %v",
			plainMk, obsMk, plainSys.K.Now(), obsSys.K.Now())
	}
	var fa, fb bytes.Buffer
	if err := plainSys.Trace.WriteFlight(&fa); err != nil {
		t.Fatal(err)
	}
	if err := obsSys.Trace.WriteFlight(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa.Bytes(), fb.Bytes()) {
		t.Fatal("flight recordings differ with analyzer attached")
	}

	// And against a fully untraced run.
	bareSys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bareMk := workload.Stream(bareSys, 8192, 64)
	if bareMk != obsMk || bareSys.K.Now() != obsSys.K.Now() {
		t.Fatalf("tracing+analysis perturbed vs untraced: %v vs %v", bareMk, obsMk)
	}
}

func TestReportsAreDeterministic(t *testing.T) {
	_, an1, smp1, _ := tracedStream(t, core.Pipelined())
	_, an2, smp2, _ := tracedStream(t, core.Pipelined())
	var a, b bytes.Buffer
	an1.Report().WriteTable(&a)
	an1.Report().WriteTop(&a, 5)
	if err := smp1.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	an2.Report().WriteTable(&b)
	an2.Report().WriteTop(&b, 5)
	if err := smp2.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("double-run analyze output differs")
	}
}
