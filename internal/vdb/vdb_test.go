package vdb_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vdb"
)

func newSys(t *testing.T, nodes int) *core.System {
	t.Helper()
	vdb.Reset()
	sys, err := core.Build(core.Config{Nodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBreakpointStopsAndContinues(t *testing.T) {
	sys := newSys(t, 1)
	iter := 0
	sys.Spawn(sys.Node(0), "p", 0, func(sp *kern.Subprocess) {
		vdb.RegisterProcess(sp, "solver")
		vdb.Var("solver", "iter", func() string { return fmt.Sprint(iter) })
		sp.SleepFor(sim.Microseconds(10)) // let the debugger arm
		for iter = 0; iter < 5; iter++ {
			vdb.Point(sp, "loop")
			sp.Compute(sim.Microseconds(100))
		}
	})
	d := vdb.New()
	var observed []string
	// Registration happens when the process starts; arm the debugger
	// in an event scheduled after the spawn.
	sys.K.After(0, func() {
		if err := d.Attach("solver"); err != nil {
			t.Error(err)
			return
		}
		if err := d.Break("loop"); err != nil {
			t.Error(err)
		}
		d.OnStop(func(loc string) {
			v, err := d.Print("iter")
			if err != nil {
				t.Error(err)
			}
			observed = append(observed, loc+"="+v)
			// Continue after a small "think time".
			sys.K.After(sim.Milliseconds(1), func() {
				if err := d.Continue(); err != nil {
					t.Error(err)
				}
			})
		})
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Hits() != 5 {
		t.Fatalf("hits = %d", d.Hits())
	}
	want := "[loop=0 loop=1 loop=2 loop=3 loop=4]"
	if fmt.Sprint(observed) != want {
		t.Fatalf("observed %v", observed)
	}
}

func TestAttachToRunningProcessAndSwitch(t *testing.T) {
	// The VORX improvement over Meglos: attach to any process that is
	// already running and switch between processes.
	sys := newSys(t, 2)
	progress := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		sys.Spawn(sys.Node(i), fmt.Sprintf("w%d", i), 0, func(sp *kern.Subprocess) {
			vdb.RegisterProcess(sp, fmt.Sprintf("proc%d", i))
			for j := 0; j < 100; j++ {
				vdb.Point(sp, "tick")
				progress[i]++
				sp.Compute(sim.Microseconds(50))
			}
		})
	}
	d := vdb.New()
	// Attach mid-run: after 2 ms, break proc1 only.
	sys.K.After(sim.Milliseconds(2), func() {
		if err := d.Attach("proc1"); err != nil {
			t.Error(err)
			return
		}
		if got := d.Processes(); len(got) != 2 {
			t.Errorf("processes = %v", got)
		}
		d.Break("tick")
		d.OnStop(func(string) {
			// proc1 is frozen; verify proc0 keeps running, then
			// switch to it, then resume proc1.
			p0 := progress[0]
			sys.K.After(sim.Milliseconds(3), func() {
				if progress[0] <= p0 {
					t.Error("proc0 stalled while proc1 was stopped")
				}
				if err := d.Attach("proc0"); err != nil {
					t.Error(err)
				}
				if d.Current() != "proc0" {
					t.Error("switch failed")
				}
				d.Attach("proc1")
				d.Clear("tick")
				if err := d.Continue(); err != nil {
					t.Error(err)
				}
			})
		})
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if progress[0] != 100 || progress[1] != 100 {
		t.Fatalf("progress = %v", progress)
	}
	if d.Hits() != 1 {
		t.Fatalf("hits = %d, want 1 (breakpoint cleared after first stop)", d.Hits())
	}
}

func TestPointWithoutBreakpointIsFree(t *testing.T) {
	sys := newSys(t, 1)
	var end sim.Time
	sys.Spawn(sys.Node(0), "p", 0, func(sp *kern.Subprocess) {
		vdb.RegisterProcess(sp, "fast")
		for i := 0; i < 1000; i++ {
			vdb.Point(sp, "hot")
		}
		end = sp.Now()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Fatalf("unarmed points consumed %v of virtual time", end)
	}
}

func TestStoppedProcessesView(t *testing.T) {
	sys := newSys(t, 2)
	for i := 0; i < 2; i++ {
		i := i
		sys.Spawn(sys.Node(i), fmt.Sprintf("w%d", i), 0, func(sp *kern.Subprocess) {
			vdb.RegisterProcess(sp, fmt.Sprintf("st%d", i))
			sp.SleepFor(sim.Microseconds(10)) // let the debuggers arm
			vdb.Point(sp, "start")
		})
	}
	d0, d1 := vdb.New(), vdb.New()
	sys.K.After(0, func() {
		d0.Attach("st0")
		d0.Break("start")
		d1.Attach("st1")
		d1.Break("start")
	})
	checked := false
	sys.K.After(sim.Milliseconds(1), func() {
		stopped := vdb.StoppedProcesses()
		if len(stopped) != 2 || stopped["st0"] != "start" {
			t.Errorf("stopped = %v", stopped)
		}
		checked = true
		d0.Continue()
		d1.Continue()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("view never checked")
	}
}

func TestErrors(t *testing.T) {
	vdb.Reset()
	d := vdb.New()
	if err := d.Attach("ghost"); err == nil {
		t.Fatal("attach to unknown process should fail")
	}
	if err := d.Break("x"); err == nil {
		t.Fatal("break without attach should fail")
	}
	if err := d.Continue(); err == nil {
		t.Fatal("continue without attach should fail")
	}
	if _, err := d.Print("v"); err == nil {
		t.Fatal("print without attach should fail")
	}
}
