// Package vdb is the VORX symbolic debugger (paper §6): a
// single-process breakpoint debugger, derived from sdb, extended so
// that the programmer can attach to *any* process that is already
// running and switch between the processes of an application — the
// capability VORX added because "the programmer may not know in
// advance which process needs to be debugged".
//
// Simulated programs cooperate by declaring program locations:
//
//	vdb.Point(sp, "solver.loop")   // a potential breakpoint site
//
// A Debugger attaches to named processes, sets breakpoints on
// locations, and when a process hits one it stops (in virtual time)
// until the debugger continues it. While stopped, registered
// variables can be inspected — the vdb enhancement of examining each
// subprocess's locals. Processes without an attached debugger run at
// full speed; Point costs nothing unless a breakpoint is armed.
package vdb

import (
	"fmt"
	"sort"
	"sync"

	"hpcvorx/internal/kern"
)

// registry connects running subprocesses to debuggers. One registry
// per simulation is typical; it is internally synchronized only in
// the trivial sense (the simulation is single-threaded).
type registry struct {
	procs map[string]*target
}

var defaultRegistry = &registry{procs: map[string]*target{}}

// target is one debuggable process.
type target struct {
	name     string
	sp       *kern.Subprocess
	vars     map[string]func() string
	breaks   map[string]bool
	stopped  bool
	stopLoc  string
	resume   func()
	onStop   func(loc string)
	hits     int
	attached bool
}

// resetForTest clears the registry (tests create many simulations).
var resetMu sync.Mutex

// Reset clears all registered processes; call between independent
// simulations.
func Reset() {
	resetMu.Lock()
	defer resetMu.Unlock()
	defaultRegistry.procs = map[string]*target{}
}

// RegisterProcess makes the calling subprocess debuggable under name.
// Call once at process start.
func RegisterProcess(sp *kern.Subprocess, name string) {
	defaultRegistry.procs[name] = &target{
		name:   name,
		sp:     sp,
		vars:   map[string]func() string{},
		breaks: map[string]bool{},
	}
}

// Var registers a named variable of the process: the closure is
// evaluated when the debugger prints it.
func Var(name, varName string, read func() string) {
	if tg := defaultRegistry.procs[name]; tg != nil {
		tg.vars[varName] = read
	}
}

// Point declares a program location in the process owning sp. If a
// debugger armed a breakpoint there, the process stops until
// continued.
func Point(sp *kern.Subprocess, loc string) {
	var tg *target
	for _, cand := range defaultRegistry.procs {
		if cand.sp == sp {
			tg = cand
			break
		}
	}
	if tg == nil || !tg.breaks[loc] {
		return
	}
	tg.hits++
	tg.stopped = true
	tg.stopLoc = loc
	wake := sp.Block(kern.WaitOther, fmt.Sprintf("vdb-stop %s@%s", tg.name, loc))
	tg.resume = wake
	if tg.onStop != nil {
		tg.onStop(loc)
	}
	sp.BlockNow()
	tg.stopped = false
	tg.stopLoc = ""
}

// Debugger is one vdb session. It can attach to any running process
// and switch between them.
type Debugger struct {
	current string
}

// New creates a debugger session.
func New() *Debugger { return &Debugger{} }

// Processes lists the debuggable processes, sorted.
func (d *Debugger) Processes() []string {
	var out []string
	for name := range defaultRegistry.procs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Attach switches the session to the named process — possible even
// though the process is already running, the key VORX improvement.
func (d *Debugger) Attach(name string) error {
	tg := defaultRegistry.procs[name]
	if tg == nil {
		return fmt.Errorf("vdb: no process %q", name)
	}
	tg.attached = true
	d.current = name
	return nil
}

// Current returns the attached process name.
func (d *Debugger) Current() string { return d.current }

func (d *Debugger) target() (*target, error) {
	tg := defaultRegistry.procs[d.current]
	if tg == nil {
		return nil, fmt.Errorf("vdb: not attached")
	}
	return tg, nil
}

// Break arms a breakpoint at a program location of the attached
// process.
func (d *Debugger) Break(loc string) error {
	tg, err := d.target()
	if err != nil {
		return err
	}
	tg.breaks[loc] = true
	return nil
}

// Clear disarms a breakpoint.
func (d *Debugger) Clear(loc string) error {
	tg, err := d.target()
	if err != nil {
		return err
	}
	delete(tg.breaks, loc)
	return nil
}

// OnStop registers a callback fired (in simulation context) when the
// attached process hits a breakpoint.
func (d *Debugger) OnStop(fn func(loc string)) error {
	tg, err := d.target()
	if err != nil {
		return err
	}
	tg.onStop = fn
	return nil
}

// Stopped reports whether the attached process is stopped, and where.
func (d *Debugger) Stopped() (bool, string) {
	tg, err := d.target()
	if err != nil {
		return false, ""
	}
	return tg.stopped, tg.stopLoc
}

// Hits returns how many breakpoints the attached process has hit.
func (d *Debugger) Hits() int {
	tg, err := d.target()
	if err != nil {
		return 0
	}
	return tg.hits
}

// Print evaluates a registered variable of the attached process.
func (d *Debugger) Print(varName string) (string, error) {
	tg, err := d.target()
	if err != nil {
		return "", err
	}
	read, ok := tg.vars[varName]
	if !ok {
		return "", fmt.Errorf("vdb: %s has no variable %q", tg.name, varName)
	}
	return read(), nil
}

// Vars lists the attached process's registered variables, sorted.
func (d *Debugger) Vars() []string {
	tg, err := d.target()
	if err != nil {
		return nil
	}
	var out []string
	for v := range tg.vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Continue resumes the attached process if it is stopped.
func (d *Debugger) Continue() error {
	tg, err := d.target()
	if err != nil {
		return err
	}
	if !tg.stopped || tg.resume == nil {
		return fmt.Errorf("vdb: %s is not stopped", tg.name)
	}
	r := tg.resume
	tg.resume = nil
	r()
	return nil
}

// StoppedProcesses returns every process currently stopped at a
// breakpoint — the multi-window view of the Meglos workflow, without
// the windows.
func StoppedProcesses() map[string]string {
	out := map[string]string{}
	for name, tg := range defaultRegistry.procs {
		if tg.stopped {
			out[name] = tg.stopLoc
		}
	}
	return out
}
