package multicast_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/multicast"
	"hpcvorx/internal/sim"
)

func build(t *testing.T, nodes int) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMulticastDeliversToEveryMember(t *testing.T) {
	sys := build(t, 5)
	const members = 4
	got := make([]multicast.Msg, members)
	snd := multicast.NewSender(sys.Node(0).IF, sys.Mgr, "grp")
	sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
		for i := 0; i < members; i++ {
			snd.Accept(sp)
		}
		if err := snd.Write(sp, 500, "broadcast"); err != nil {
			t.Error(err)
		}
	})
	for i := 0; i < members; i++ {
		i := i
		sys.Spawn(sys.Node(i+1), fmt.Sprintf("m%d", i), 0, func(sp *kern.Subprocess) {
			r := multicast.Join(sys.Node(i+1).IF, sys.Mgr, sp, "grp")
			got[i] = r.Read(sp)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i, m := range got {
		if m.Size != 500 || m.Payload != "broadcast" {
			t.Errorf("member %d got %+v", i, m)
		}
	}
}

func TestWriteBlocksUntilAllAck(t *testing.T) {
	// Group-wide stop-and-wait: the second write cannot start before
	// every member kernel acknowledged the first.
	sys := build(t, 4)
	snd := multicast.NewSender(sys.Node(0).IF, sys.Mgr, "fc")
	var w1, w2 sim.Time
	sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
		snd.Accept(sp)
		snd.Accept(sp)
		snd.Write(sp, 800, 1)
		w1 = sp.Now()
		snd.Write(sp, 800, 2)
		w2 = sp.Now()
	})
	for i := 1; i <= 2; i++ {
		i := i
		sys.Spawn(sys.Node(i), fmt.Sprintf("m%d", i), 0, func(sp *kern.Subprocess) {
			r := multicast.Join(sys.Node(i).IF, sys.Mgr, sp, "fc")
			r.Read(sp)
			r.Read(sp)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if w2.Sub(w1) < sim.Microseconds(300) {
		t.Fatalf("second write completed after only %v — no group flow control", w2.Sub(w1))
	}
}

func TestFragmentedMulticast(t *testing.T) {
	sys := build(t, 3)
	snd := multicast.NewSender(sys.Node(0).IF, sys.Mgr, "big")
	const size = 3000
	var got multicast.Msg
	sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
		snd.Accept(sp)
		if err := snd.Write(sp, size, "bulk"); err != nil {
			t.Error(err)
		}
	})
	sys.Spawn(sys.Node(1), "m", 0, func(sp *kern.Subprocess) {
		r := multicast.Join(sys.Node(1).IF, sys.Mgr, sp, "big")
		got = r.Read(sp)
		if r.BytesRead != size {
			t.Errorf("bytes read = %d, want %d", r.BytesRead, size)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Size != size || got.Payload != "bulk" {
		t.Fatalf("got %+v", got)
	}
}

func TestEveryReceiverPaysForUnwantedData(t *testing.T) {
	// §4.2's core point: each member's kernel reads the entire
	// multicast even if the application needs a fraction of it.
	sys := build(t, 5)
	const members = 4
	snd := multicast.NewSender(sys.Node(0).IF, sys.Mgr, "waste")
	recvs := make([]*multicast.Receiver, members)
	sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
		for i := 0; i < members; i++ {
			snd.Accept(sp)
		}
		for w := 0; w < 3; w++ {
			snd.Write(sp, 1000, nil)
		}
	})
	for i := 0; i < members; i++ {
		i := i
		sys.Spawn(sys.Node(i+1), fmt.Sprintf("m%d", i), 0, func(sp *kern.Subprocess) {
			recvs[i] = multicast.Join(sys.Node(i+1).IF, sys.Mgr, sp, "waste")
			for w := 0; w < 3; w++ {
				recvs[i].Read(sp)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range recvs {
		if r.BytesRead != 3000 {
			t.Errorf("member %d read %d bytes, want 3000", i, r.BytesRead)
		}
	}
}

func TestWriteWithoutMembersFails(t *testing.T) {
	sys := build(t, 2)
	snd := multicast.NewSender(sys.Node(0).IF, sys.Mgr, "empty")
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		if err := snd.Write(sp, 100, nil); err == nil {
			t.Error("write to empty group should fail")
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any member count and write count, every member
// receives every write exactly once, in order.
func TestMulticastExactlyOnceProperty(t *testing.T) {
	f := func(membersRaw, writesRaw uint8, sizeRaw uint16) bool {
		members := int(membersRaw%5) + 1
		writes := int(writesRaw%6) + 1
		size := int(sizeRaw%2000) + 1
		sys, err := core.Build(core.Config{Nodes: members + 1, Seed: 1})
		if err != nil {
			return false
		}
		snd := multicast.NewSender(sys.Node(0).IF, sys.Mgr, "pr")
		got := make([][]int, members)
		sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
			for i := 0; i < members; i++ {
				snd.Accept(sp)
			}
			for w := 0; w < writes; w++ {
				if err := snd.Write(sp, size, w); err != nil {
					return
				}
			}
		})
		for m := 0; m < members; m++ {
			m := m
			sys.Spawn(sys.Node(m+1), fmt.Sprintf("m%d", m), 0, func(sp *kern.Subprocess) {
				r := multicast.Join(sys.Node(m+1).IF, sys.Mgr, sp, "pr")
				for w := 0; w < writes; w++ {
					msg := r.Read(sp)
					got[m] = append(got[m], msg.Payload.(int))
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		for m := 0; m < members; m++ {
			if len(got[m]) != writes {
				return false
			}
			for i, v := range got[m] {
				if v != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
