// Package multicast implements the flow-controlled multicast primitive
// that is integrated with channels (paper §4.2, citing Katseff 1987):
// one writer sends the identical message to a group of receivers. The
// HPC hardware replicates the message at the sender's cluster, so the
// sender's output section and up-link are charged once; flow control
// is stop-and-wait across the whole group — the write completes when
// every member's kernel has acknowledged.
//
// Group membership uses the same rendezvous mechanism as channels:
// receivers Join the group name through the object manager; the sender
// collects one pairing per member.
//
// The paper's finding — reproduced by experiment E5 — is that
// multicast is usually *inappropriate*: as the number of processors
// grows, each receiver spends more and more time reading data it does
// not need, and a per-receiver message containing only the needed data
// wins.
package multicast

import (
	"fmt"
	"hash/fnv"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Wire overheads (shared with the channel protocol's flavor).
const (
	headerBytes = 32
	ackBytes    = 48
	maxFragment = 1024
)

// Msg is a message received from a multicast group.
type Msg struct {
	Size    int
	Payload any
}

type mcFrag struct {
	gid   uint64
	size  int
	total int
	last  bool
	pay   any
}

type mcAck struct {
	gid  uint64
	from topo.EndpointID
}

// gidFor derives the group id from the group name.
func gidFor(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Sender is the writing end of a multicast group.
type Sender struct {
	f       *netif.IF
	mgr     *objmgr.Manager
	name    string
	gid     uint64
	members []topo.EndpointID

	waitingAcks int
	writerWake  func()

	// Writes counts completed multicast writes.
	Writes int
}

// NewSender creates the group's writing end on node interface f. Call
// Accept once per expected member before writing.
func NewSender(f *netif.IF, mgr *objmgr.Manager, name string) *Sender {
	s := &Sender{f: f, mgr: mgr, name: name, gid: gidFor(name)}
	f.Register("mc.ack."+name, netif.Service{
		Cost: func(*hpc.Message) sim.Duration { return f.Node().Costs().ChanAckProto },
		Handle: func(m *hpc.Message) {
			s.waitingAcks--
			if s.waitingAcks == 0 && s.writerWake != nil {
				w := s.writerWake
				s.writerWake = nil
				w()
			}
		},
	})
	return s
}

// Accept admits one member: it blocks until a receiver Joins the group
// name. Returns the member's endpoint.
func (s *Sender) Accept(sp *kern.Subprocess) topo.EndpointID {
	p := s.mgr.Open(sp, s.f, s.name, objmgr.Serve)
	s.members = append(s.members, p.Peer)
	return p.Peer
}

// Members returns the admitted member endpoints.
func (s *Sender) Members() []topo.EndpointID { return s.members }

// Write multicasts size bytes to every member and blocks until all
// their kernels acknowledge (group-wide stop-and-wait flow control).
func (s *Sender) Write(sp *kern.Subprocess, size int, payload any) error {
	if len(s.members) == 0 {
		return fmt.Errorf("multicast: group %q has no members", s.name)
	}
	if size <= 0 {
		return fmt.Errorf("multicast: write of %d bytes", size)
	}
	costs := s.f.Node().Costs()
	sp.Syscall(costs.ChanSendProto + costs.KernelCopyTime(size))
	s.waitingAcks = len(s.members)
	s.writerWake = sp.Block(kern.WaitOutput, "mc-write "+s.name)
	for off := 0; off < size; off += maxFragment {
		n := size - off
		if n > maxFragment {
			n = maxFragment
		}
		frag := mcFrag{gid: s.gid, size: n, total: size, last: off+n >= size}
		if frag.last {
			frag.pay = payload
		}
		err := s.f.Interconnect().SendMulticast(sp.Proc(), s.f.Endpoint(), s.members,
			n+headerBytes, netif.Envelope{Service: "mc." + s.name, Body: frag}, "mc."+s.name, nil)
		if err != nil {
			return err
		}
	}
	sp.BlockNow()
	sp.System(costs.SchedulerWake)
	s.Writes++
	return nil
}

// Receiver is one member's reading end.
type Receiver struct {
	f    *netif.IF
	mgr  *objmgr.Manager
	name string
	gid  uint64
	peer topo.EndpointID

	ready      []Msg
	assembling int
	reader     func()
	waiting    bool
	pendingMsg Msg
	havePend   bool

	// BytesRead counts all payload bytes this member's kernel read
	// off the wire — including data the application did not need,
	// which is the cost §4.2 warns about.
	BytesRead int64
	// Reads counts messages consumed.
	Reads int
}

// Join creates the member end and rendezvouses with the group sender.
func Join(f *netif.IF, mgr *objmgr.Manager, sp *kern.Subprocess, name string) *Receiver {
	r := &Receiver{f: f, mgr: mgr, name: name, gid: gidFor(name)}
	costs := f.Node().Costs()
	f.Register("mc."+name, netif.Service{
		Cost: func(m *hpc.Message) sim.Duration {
			frag := m.Payload.(netif.Envelope).Body.(mcFrag)
			return costs.ChanRecvProto + costs.KernelCopyTime(frag.size)
		},
		Handle: func(m *hpc.Message) { r.handle(m) },
	})
	p := mgr.Open(sp, f, name, objmgr.Connect)
	r.peer = p.Peer
	return r
}

func (r *Receiver) handle(m *hpc.Message) {
	frag := m.Payload.(netif.Envelope).Body.(mcFrag)
	r.BytesRead += int64(frag.size)
	if !frag.last {
		r.assembling += frag.size
		return
	}
	r.assembling = 0
	msg := Msg{Size: frag.total, Payload: frag.pay}
	// Acknowledge: this member's kernel has the whole write.
	r.f.SendAsync(r.peer, "mc.ack."+r.name, ackBytes, mcAck{gid: r.gid, from: r.f.Endpoint()}, nil)
	if r.waiting {
		r.waiting = false
		r.pendingMsg = msg
		r.havePend = true
		r.reader()
		return
	}
	r.ready = append(r.ready, msg)
}

// Read blocks until the next multicast write arrives and returns it.
func (r *Receiver) Read(sp *kern.Subprocess) Msg {
	costs := r.f.Node().Costs()
	sp.Syscall(0)
	if len(r.ready) > 0 {
		m := r.ready[0]
		r.ready = r.ready[1:]
		sp.System(costs.KernelCopyTime(m.Size))
		r.Reads++
		return m
	}
	wake := sp.Block(kern.WaitInput, "mc-read "+r.name)
	r.reader, r.waiting = wake, true
	sp.BlockNow()
	sp.System(costs.SchedulerWake)
	r.havePend = false
	r.Reads++
	return r.pendingMsg
}
