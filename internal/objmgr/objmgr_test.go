package objmgr_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

func build(t *testing.T, nodes int, central bool) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: nodes, CentralizedManager: central, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRendezvousPairsByName(t *testing.T) {
	sys := build(t, 3, false)
	var a, b objmgr.Pairing
	sys.Spawn(sys.Node(0), "a", 0, func(sp *kern.Subprocess) {
		a = sys.Mgr.Open(sp, sys.Node(0).IF, "meet", objmgr.OpenAny)
	})
	sys.Spawn(sys.Node(1), "b", 0, func(sp *kern.Subprocess) {
		b = sys.Mgr.Open(sp, sys.Node(1).IF, "meet", objmgr.OpenAny)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Chan != b.Chan || a.Chan == 0 {
		t.Fatalf("ids differ: %d vs %d", a.Chan, b.Chan)
	}
	if a.Peer != sys.Node(1).EP || b.Peer != sys.Node(0).EP {
		t.Fatalf("peers: %v / %v", a.Peer, b.Peer)
	}
}

func TestDifferentNamesDoNotPair(t *testing.T) {
	sys := build(t, 2, false)
	sys.Spawn(sys.Node(0), "a", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(0).IF, "alpha", objmgr.OpenAny)
	})
	sys.Spawn(sys.Node(1), "b", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(1).IF, "beta", objmgr.OpenAny)
	})
	if err := sys.Run(); err == nil {
		t.Fatal("mismatched names should deadlock both openers")
	}
	sys.Shutdown()
}

func TestServeConnectSemantics(t *testing.T) {
	// Serve pairs only with Connect; two Serves must not pair.
	sys := build(t, 3, false)
	paired := 0
	sys.Spawn(sys.Node(0), "srv1", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(0).IF, "svc", objmgr.Serve)
		paired++
	})
	sys.Spawn(sys.Node(1), "srv2", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(1).IF, "svc", objmgr.Serve)
		paired++
	})
	sys.Spawn(sys.Node(2), "cli", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(2).IF, "svc", objmgr.Connect)
		paired++
	})
	err := sys.Run() // one Serve left waiting
	if err == nil {
		t.Fatal("one server should remain blocked")
	}
	if paired != 2 {
		t.Fatalf("paired = %d, want 2 (one serve + one connect)", paired)
	}
	sys.Shutdown()
}

func TestSequentialServeReuse(t *testing.T) {
	sys := build(t, 4, false)
	served := 0
	sys.Spawn(sys.Node(0), "server", 0, func(sp *kern.Subprocess) {
		for i := 0; i < 3; i++ {
			sys.Mgr.Open(sp, sys.Node(0).IF, "pool", objmgr.Serve)
			served++
		}
	})
	for c := 1; c <= 3; c++ {
		c := c
		sys.Spawn(sys.Node(c), fmt.Sprintf("c%d", c), 0, func(sp *kern.Subprocess) {
			sys.Mgr.Open(sp, sys.Node(c).IF, "pool", objmgr.Connect)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 3 {
		t.Fatalf("served = %d", served)
	}
}

func TestManagerForIsStableAndCovers(t *testing.T) {
	sys := build(t, 8, false)
	seen := map[topo.EndpointID]int{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("chan-%d", i)
		m1 := sys.Mgr.ManagerFor(name)
		m2 := sys.Mgr.ManagerFor(name)
		if m1 != m2 {
			t.Fatalf("hash unstable for %q", name)
		}
		seen[m1]++
	}
	if len(seen) < 6 {
		t.Fatalf("distributed hashing used only %d of 8 managers", len(seen))
	}
}

func TestCentralizedRoutesEverythingToOneManager(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 4, CentralizedManager: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := sys.Mgr.ManagerFor(fmt.Sprintf("n%d", i)); got != sys.Host(0).EP {
			t.Fatalf("name hashed to %v, want the single host manager", got)
		}
	}
	// And processed counts accumulate there.
	sys.Spawn(sys.Node(0), "a", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(0).IF, "x", objmgr.OpenAny)
	})
	sys.Spawn(sys.Node(1), "b", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(1).IF, "x", objmgr.OpenAny)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Mgr.Processed(sys.Host(0).EP); got != 2 {
		t.Fatalf("processed = %d", got)
	}
}

func TestOpenChargesManagerCPU(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 2, CentralizedManager: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn(sys.Node(0), "a", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(0).IF, "y", objmgr.OpenAny)
	})
	sys.Spawn(sys.Node(1), "b", 0, func(sp *kern.Subprocess) {
		sys.Mgr.Open(sp, sys.Node(1).IF, "y", objmgr.OpenAny)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Two opens × (interrupt entry + manager processing).
	want := 2 * (sys.Costs.InterruptEntry + objmgr.ManagerProcess)
	if got := sys.Host(0).Kern.Totals()[kern.CatSystem]; got != sim.Duration(want) {
		t.Fatalf("manager CPU = %v, want %v", got, want)
	}
}

func TestUniqueChannelIDs(t *testing.T) {
	sys := build(t, 6, false)
	ids := map[uint64]bool{}
	var mu []uint64
	for i := 0; i < 10; i++ {
		i := i
		sys.Spawn(sys.Node(i%6), fmt.Sprintf("a%d", i), 0, func(sp *kern.Subprocess) {
			p := sys.Mgr.Open(sp, sys.Node(i%6).IF, fmt.Sprintf("uniq%d", i), objmgr.OpenAny)
			mu = append(mu, p.Chan)
		})
		sys.Spawn(sys.Node((i+1)%6), fmt.Sprintf("b%d", i), 0, func(sp *kern.Subprocess) {
			sys.Mgr.Open(sp, sys.Node((i+1)%6).IF, fmt.Sprintf("uniq%d", i), objmgr.OpenAny)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range mu {
		if ids[id] {
			t.Fatalf("duplicate channel id %d", id)
		}
		ids[id] = true
	}
}
