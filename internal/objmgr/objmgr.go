// Package objmgr is the VORX communications object manager: the
// rendezvous service that maps channel names to channel ids
// (paper §3.2).
//
// Two processes open a channel by name; the open is handled by the
// manager responsible for that name, which pairs the two opens and
// tells each end who its peer is. Meglos ran one manager on a single
// host — a serialization bottleneck for systems beyond ten processors.
// VORX replicates the manager onto every processing node and uses
// distributed hashing to map a name to the node whose manager performs
// the open, so "because there are as many object managers as
// processing nodes, the channel opening bottleneck is eliminated".
//
// Both placements are available here: pass one manager endpoint for
// the Meglos arrangement or all node endpoints for the VORX one.
// Experiment E8 measures the difference under an open storm.
package objmgr

import (
	"fmt"
	"hash/fnv"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Mode selects rendezvous semantics for an open.
type Mode int

const (
	// OpenAny pairs with the next OpenAny of the same name, in
	// arrival order — the symmetric rendezvous of Meglos channels.
	OpenAny Mode = iota
	// Serve is the server half of the name-reuse mechanism that lets
	// "servers continually reuse a single channel name" (paper §4):
	// each Serve open pairs with one Connect open.
	Serve
	// Connect is the client half matching Serve.
	Connect
)

func (m Mode) String() string {
	switch m {
	case OpenAny:
		return "any"
	case Serve:
		return "serve"
	case Connect:
		return "connect"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Wire costs and sizes of the open protocol.
const (
	OpenRequestBytes = 64
	OpenReplyBytes   = 32
)

var (
	// ManagerProcess is the manager-side CPU cost to process one
	// open request (hash-table work plus reply generation).
	ManagerProcess = sim.Microseconds(45)
	// OpenOverhead is the opener-side kernel cost beyond the bare
	// system call.
	OpenOverhead = sim.Microseconds(25)
	// ReplyISR is the opener-side cost to absorb the reply.
	ReplyISR = sim.Microseconds(12)
)

// Pairing is the result of a successful open.
type Pairing struct {
	Chan uint64 // channel id, unique across the system
	Peer topo.EndpointID
}

// Manager is the collective object-manager service: per-manager
// pending tables plus the client-side reply plumbing on every node.
type Manager struct {
	ifs      map[topo.EndpointID]*netif.IF
	mgrs     []topo.EndpointID
	states   map[topo.EndpointID]*mgrState
	replies  map[uint64]func(Pairing) // client-side, keyed by token
	tokenSeq uint64
}

type mgrState struct {
	idSeq   uint64
	idx     int
	pending map[string]*nameQueue
	// Processed counts opens handled by this manager (the E8 load
	// distribution measurement).
	Processed int
}

type nameQueue struct {
	any, serve, connect []pendingOpen
}

type pendingOpen struct {
	ep    topo.EndpointID
	token uint64
}

type openReq struct {
	name  string
	mode  Mode
	from  topo.EndpointID
	token uint64
}

type openRep struct {
	token   uint64
	pairing Pairing
}

// New creates the object-manager service. all lists every node's
// network interface; managerEps selects which of those endpoints host
// a manager (one entry = Meglos-style centralized; all entries =
// VORX-style fully distributed).
func New(all []*netif.IF, managerEps []topo.EndpointID) *Manager {
	return build(all, managerEps, false)
}

// NewShardView creates one simulation shard's view of the
// object-manager service: names hash over the full managerEps list —
// identical on every shard, so every shard agrees on placement — but
// only the manager endpoints present in all (this shard's interfaces)
// are served locally. Opens addressed to a foreign manager travel the
// fabric to the shard that owns it; its state keeps the global index,
// so the channel IDs it mints match the serial build byte-for-byte.
func NewShardView(all []*netif.IF, managerEps []topo.EndpointID) *Manager {
	return build(all, managerEps, true)
}

func build(all []*netif.IF, managerEps []topo.EndpointID, partial bool) *Manager {
	if len(managerEps) == 0 {
		panic("objmgr: need at least one manager endpoint")
	}
	m := &Manager{
		ifs:     make(map[topo.EndpointID]*netif.IF),
		mgrs:    append([]topo.EndpointID(nil), managerEps...),
		states:  make(map[topo.EndpointID]*mgrState),
		replies: make(map[uint64]func(Pairing)),
	}
	for _, f := range all {
		m.ifs[f.Endpoint()] = f
		f.Register("objmgr.rep", netif.Service{
			Cost:   func(*hpc.Message) sim.Duration { return ReplyISR },
			Handle: m.handleReply,
		})
	}
	for i, ep := range managerEps {
		f, ok := m.ifs[ep]
		if !ok {
			if partial {
				continue // a foreign shard serves this manager
			}
			panic(fmt.Sprintf("objmgr: manager endpoint %d has no interface", ep))
		}
		st := &mgrState{idx: i, pending: make(map[string]*nameQueue)}
		m.states[ep] = st
		f.Register("objmgr", netif.Service{
			Cost:   func(*hpc.Message) sim.Duration { return ManagerProcess },
			Handle: func(msg *hpc.Message) { m.handleOpen(ep, st, msg) },
		})
	}
	return m
}

// Managers returns the manager endpoints.
func (m *Manager) Managers() []topo.EndpointID { return m.mgrs }

// Processed returns how many opens the manager at ep has handled.
func (m *Manager) Processed(ep topo.EndpointID) int {
	st, ok := m.states[ep]
	if !ok {
		return 0
	}
	return st.Processed
}

// ManagerFor maps a channel name to the endpoint whose manager owns it
// ("distributed hashing ... ensures that two processes that open a
// channel with the same name always hash to the same object manager").
func (m *Manager) ManagerFor(name string) topo.EndpointID {
	h := fnv.New32a()
	h.Write([]byte(name))
	return m.mgrs[int(h.Sum32())%len(m.mgrs)]
}

// Open performs a named rendezvous for the subprocess sp on node
// interface from. It blocks until a peer's matching open arrives and
// returns the pairing.
func (m *Manager) Open(sp *kern.Subprocess, from *netif.IF, name string, mode Mode) Pairing {
	sp.Syscall(OpenOverhead)
	token := m.tokenSeq
	m.tokenSeq++
	var result Pairing
	wake := sp.Block(kern.WaitOther, "open "+name)
	m.replies[token] = func(p Pairing) {
		result = p
		wake()
	}
	if err := from.Send(sp, m.ManagerFor(name), "objmgr", OpenRequestBytes,
		openReq{name: name, mode: mode, from: from.Endpoint(), token: token}); err != nil {
		panic(fmt.Sprintf("objmgr: open send: %v", err))
	}
	sp.BlockNow()
	return result
}

// handleOpen runs at interrupt level on the manager node.
func (m *Manager) handleOpen(ep topo.EndpointID, st *mgrState, msg *hpc.Message) {
	req := msg.Payload.(netif.Envelope).Body.(openReq)
	st.Processed++
	q := st.pending[req.name]
	if q == nil {
		q = &nameQueue{}
		st.pending[req.name] = q
	}
	switch req.mode {
	case OpenAny:
		q.any = append(q.any, pendingOpen{ep: req.from, token: req.token})
	case Serve:
		q.serve = append(q.serve, pendingOpen{ep: req.from, token: req.token})
	case Connect:
		q.connect = append(q.connect, pendingOpen{ep: req.from, token: req.token})
	}
	m.match(ep, st, req.name, q)
}

// match pairs pending opens for one name and sends the replies.
func (m *Manager) match(ep topo.EndpointID, st *mgrState, name string, q *nameQueue) {
	f := m.ifs[ep]
	pair := func(a, b pendingOpen) {
		id := uint64(st.idx) | (st.idSeq+1)<<16
		st.idSeq++
		f.SendAsync(a.ep, "objmgr.rep", OpenReplyBytes,
			openRep{token: a.token, pairing: Pairing{Chan: id, Peer: b.ep}}, nil)
		f.SendAsync(b.ep, "objmgr.rep", OpenReplyBytes,
			openRep{token: b.token, pairing: Pairing{Chan: id, Peer: a.ep}}, nil)
	}
	for len(q.any) >= 2 {
		a, b := q.any[0], q.any[1]
		q.any = q.any[2:]
		pair(a, b)
	}
	for len(q.serve) > 0 && len(q.connect) > 0 {
		s, c := q.serve[0], q.connect[0]
		q.serve = q.serve[1:]
		q.connect = q.connect[1:]
		pair(s, c)
	}
	if len(q.any) == 0 && len(q.serve) == 0 && len(q.connect) == 0 {
		delete(st.pending, name)
	}
}

// handleReply runs at interrupt level on the opener's node.
func (m *Manager) handleReply(msg *hpc.Message) {
	rep := msg.Payload.(netif.Envelope).Body.(openRep)
	fn, ok := m.replies[rep.token]
	if !ok {
		return
	}
	delete(m.replies, rep.token)
	fn(rep.pairing)
}
