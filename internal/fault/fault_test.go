package fault_test

import (
	"fmt"
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/dfs"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
)

// stormSchedule exercises every op kind the engine supports except
// DFS (covered separately): link failure and repair, degraded
// bandwidth, node crash and restart.
const stormSchedule = `
# fault storm
500us link-down 0 2
3ms   link-up 0 2
1ms   degrade 0 1 4.0
2ms   crash node8
9ms   restart node8
`

// runStorm builds a 4-cluster system, applies the storm schedule, runs
// cross-cluster channel traffic through it, and returns a full trace
// of what happened.
func runStorm(t *testing.T, seed int64) string {
	t.Helper()
	// 2 hosts + 14 nodes = 16 endpoints = 4 clusters of 4.
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng := fault.New(sys.K, seed)
	eng.Bind(sys)
	ops, err := fault.ParseSchedule(strings.NewReader(stormSchedule))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(ops); err != nil {
		t.Fatal(err)
	}
	// Writer node → reader node, all pairs crossing clusters; the
	// pair 1→8 has its reader crashed mid-storm.
	pairs := [][2]int{{0, 4}, {1, 8}, {2, 12}}
	const msgs = 16
	recv := make([]int, len(pairs))
	werrs := make([]string, len(pairs))
	for pi, pr := range pairs {
		pi, pr := pi, pr
		name := fmt.Sprintf("storm%d", pi)
		wm, rm := sys.Node(pr[0]), sys.Node(pr[1])
		sys.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < msgs; i++ {
				if err := ch.Write(sp, 256, i); err != nil {
					werrs[pi] = err.Error()
					return
				}
			}
		})
		sys.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < msgs; i++ {
				if _, ok := ch.Read(sp); !ok {
					return
				}
				recv[pi]++
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	eng.Report(&b)
	fmt.Fprintf(&b, "recv=%v werrs=%v\n", recv, werrs)
	fmt.Fprintf(&b, "ic=%+v\n", sys.IC.Stats())
	for _, m := range sys.Machines() {
		fmt.Fprintf(&b, "%s: w=%d d=%d tr=%d pd=%d\n", m.Name(),
			m.Chans.Written, m.Chans.Delivered, m.Chans.TimeoutRetransmits, m.Chans.PeerDeaths)
	}
	return b.String()
}

// TestStormDeterminism: same seed + same schedule ⇒ bit-identical
// trace, including every fault firing, recovery action, and counter.
func TestStormDeterminism(t *testing.T) {
	a := runStorm(t, 42)
	b := runStorm(t, 42)
	if a != b {
		t.Fatalf("same seed, different traces:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
	// The storm must actually have bitten: survivors delivered
	// everything, the dead pair's writer got an error.
	if !strings.Contains(a, "recv=[16 ") || !strings.Contains(a, " 16]") {
		t.Fatalf("surviving pairs must deliver all messages:\n%s", a)
	}
	if !strings.Contains(a, "peer closed") {
		t.Fatalf("writer to crashed reader must get a peer error:\n%s", a)
	}
	if !strings.Contains(a, "link-down") || !strings.Contains(a, "restart") {
		t.Fatalf("fault log incomplete:\n%s", a)
	}
}

// TestDifferentSeedsDiverge: the probabilistic S/NET model must fire
// differently under different seeds (and identically under the same
// one).
func seedTrace(t *testing.T, seed int64) string {
	t.Helper()
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	eng := fault.New(k, seed)
	eng.SNETModel(nw, 0.15, 0.10)
	rel := flowctl.NewReliable(k, nw)
	rel.SetDeliver(0, func(m snet.Message) {})
	var transfers []int
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			transfers = append(transfers, rel.Send(p, nw.Station(1), 0, 300, i))
		}
	})
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	if rel.Delivered != 30 {
		t.Fatalf("delivered %d of 30 under loss model", rel.Delivered)
	}
	return fmt.Sprintf("%v %+v", transfers, nw.Stats())
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a1 := seedTrace(t, 1)
	a2 := seedTrace(t, 1)
	b := seedTrace(t, 2)
	if a1 != a2 {
		t.Fatalf("same seed diverged:\n%s\n%s", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds produced identical fault firings:\n%s", a1)
	}
}

// TestCrashForceFreesProcessors: a modeled node crash (not a test
// stub) triggers the §3.1 policy — the resource manager force-frees
// the dead node's processors while the owner keeps the survivors.
func TestCrashForceFreesProcessors(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := resmgr.NewVORX(sys.K, 14)
	if _, err := res.Allocate("alice", 14); err != nil {
		t.Fatal(err)
	}
	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.CrashNodeAt(2*sim.Millisecond, 6)
	var writeErr error
	wm := sys.Node(0)
	sys.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
		ch := wm.Chans.Open(sp, "pipe", objmgr.OpenAny)
		for i := 0; i < 100; i++ {
			if writeErr = ch.Write(sp, 128, i); writeErr != nil {
				return
			}
		}
	})
	rm := sys.Node(6)
	sys.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
		ch := rm.Chans.Open(sp, "pipe", objmgr.OpenAny)
		for {
			if _, ok := ch.Read(sp); !ok {
				return
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if writeErr == nil {
		t.Fatal("writer to crashed node must get an error, not a hang")
	}
	if got := res.OwnerOf(6); got != "" {
		t.Fatalf("crashed node still owned by %q", got)
	}
	if got := res.OwnerOf(5); got != "alice" {
		t.Fatalf("surviving node lost its owner: %q", got)
	}
	if res.ForceFrees != 1 {
		t.Fatalf("ForceFrees = %d, want 1", res.ForceFrees)
	}
	var kinds []string
	for _, r := range eng.Records() {
		kinds = append(kinds, r.Kind)
	}
	want := []string{"crash", "detect", "force-free"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("records %v, want %v", kinds, want)
	}
}

// TestDFSFailoverOnHostCrash: killing the primary's host machine (a
// real crash, not the software-down flag) makes reads fail over to the
// surviving replica.
func TestDFSFailoverOnHostCrash(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(sys, sys.Hosts(), 2)
	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	eng.BindDFS(fs)
	const file = "boot.image"
	primary := fs.ReplicaHosts(file)[0]
	var readBack []byte
	var readErr error
	cm := sys.Node(0)
	client := fs.NewClient(cm)
	sys.Spawn(cm, "client", 0, func(sp *kern.Subprocess) {
		if err := client.Create(sp, file); err != nil {
			t.Error(err)
			return
		}
		if err := client.Append(sp, file, []byte("kernel+apps")); err != nil {
			t.Error(err)
			return
		}
		// Wait out the crash and its detection, then read.
		sp.SleepFor(20 * sim.Millisecond)
		readBack, readErr = client.Read(sp, file)
	})
	eng.CrashHostAt(10*sim.Millisecond, primary)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr != nil {
		t.Fatalf("read after primary host crash: %v", readErr)
	}
	if string(readBack) != "kernel+apps" {
		t.Fatalf("failover read returned %q", readBack)
	}
}

// TestParseSchedule covers the DSL: units, comments, args, errors.
func TestParseSchedule(t *testing.T) {
	ops, err := fault.ParseSchedule(strings.NewReader(stormSchedule))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 {
		t.Fatalf("parsed %d ops, want 5", len(ops))
	}
	if ops[0].At != 500*sim.Microsecond || ops[0].Kind != "link-down" {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[3].Kind != "crash" || ops[3].Args[0] != "node8" {
		t.Fatalf("op3 = %+v", ops[3])
	}
	for _, bad := range []string{
		"5 link-down 0 1",   // missing unit
		"1ms link-down 0",   // missing arg
		"1ms crash cpu3",    // bad machine class
		"1ms frobnicate 1",  // unknown op
		"1ms",               // op missing
	} {
		if _, perr := fault.ParseSchedule(strings.NewReader(bad)); perr == nil {
			if err := func() error {
				ops, _ := fault.ParseSchedule(strings.NewReader(bad))
				k := sim.NewKernel(1)
				e := fault.New(k, 1)
				return e.Apply(ops)
			}(); err == nil {
				t.Errorf("schedule %q must fail to parse or apply", bad)
			}
		}
	}
}
