package fault_test

import (
	"strconv"
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vchan"
)

// vchanEngine builds the 4-cluster system with a started vchan fabric
// (lanes on node2, cluster 1, and node6, cluster 2; balancer on
// host0, cluster 0) and a fault engine bound to both.
func vchanEngine(t *testing.T) (*fault.Engine, *core.System, *vchan.Fabric) {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fab := vchan.Enable(sys, vchan.Config{Brokers: []int{2, 6}})
	fab.Declare("t0", sys.Node(0), sys.Node(1))
	fab.Declare("t1", sys.Node(10), sys.Node(11))
	fab.Start()
	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	eng.BindVChan(fab.Balancer())
	return eng, sys, fab
}

// TestRebalanceScheduleValidation is the whole-schedule hardening
// table for the rebalance op: unknown vchannels, non-lane targets,
// crashed targets, and targets across an active partition cut are all
// rejected before anything is armed; the valid schedules prove those
// rejections aren't over-broad.
func TestRebalanceScheduleValidation(t *testing.T) {
	cases := []struct {
		name     string
		schedule string
		applyErr string // "" = must apply
	}{
		{name: "valid rebalance", schedule: `1ms rebalance t0 node2`},
		{name: "valid repeated with gap", schedule: `
			1ms rebalance t0 node2
			3ms rebalance t0 node6`},
		{name: "valid same-instant different vchans", schedule: `
			1ms rebalance t0 node2
			1ms rebalance t1 node6`},
		{name: "valid same-group target during partition", schedule: `
			1ms partition 0,1|2,3
			2ms rebalance t0 node2
			4ms heal`},
		{name: "valid cross-group target after heal", schedule: `
			1ms partition 0,1|2,3
			2ms heal
			3ms rebalance t0 node6`},
		{name: "valid target after restart", schedule: `
			1ms crash node2
			2ms restart node2
			3ms rebalance t0 node2`},

		{name: "unknown vchan", schedule: `1ms rebalance zz node2`,
			applyErr: `unknown vchannel "zz"`},
		{name: "missing target", schedule: `1ms rebalance t0`,
			applyErr: "want: rebalance"},
		{name: "host target", schedule: `1ms rebalance t0 host0`,
			applyErr: "must be a nodeN"},
		{name: "unknown node", schedule: `1ms rebalance t0 node99`,
			applyErr: "no node99 in this system"},
		{name: "non-lane target", schedule: `1ms rebalance t0 node3`,
			applyErr: "hosts no vchan lanes"},
		{name: "crashed target", schedule: `
			1ms crash node2
			2ms rebalance t0 node2`,
			applyErr: "targets crashed node2"},
		{name: "target across partition cut", schedule: `
			1ms partition 0,1|2,3
			2ms rebalance t0 node6
			4ms heal`,
			applyErr: "across the active partition cut"},
		{name: "same-instant same-vchan", schedule: `
			1ms rebalance t0 node2
			1ms rebalance t0 node6`,
			applyErr: "ambiguous order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops, err := fault.ParseSchedule(strings.NewReader(tc.schedule))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			eng, _, _ := vchanEngine(t)
			err = eng.Apply(ops)
			if tc.applyErr == "" {
				if err != nil {
					t.Fatalf("apply: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.applyErr) {
				t.Fatalf("apply error = %v, want fragment %q", err, tc.applyErr)
			}
		})
	}
}

// TestRebalanceWithoutBalancer: a schedule using rebalance against an
// engine with no balancer bound is rejected whole.
func TestRebalanceWithoutBalancer(t *testing.T) {
	eng := boundEngine(t)
	ops, err := fault.ParseSchedule(strings.NewReader(`1ms rebalance t0 node2`))
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Apply(ops)
	if err == nil || !strings.Contains(err.Error(), "no vchan balancer bound") {
		t.Fatalf("apply error = %v, want balancer-binding rejection", err)
	}
}

// TestRebalanceOpFires: an applied rebalance actually migrates the
// vchannel — the placement moves to the target node and the engine
// records the op.
func TestRebalanceOpFires(t *testing.T) {
	eng, sys, fab := vchanEngine(t)
	bal := fab.Balancer()
	node0, _, _, ok := bal.Placement("t0")
	if !ok {
		t.Fatal("t0 has no initial placement")
	}
	target := 2
	if node0 == 2 {
		target = 6
	}
	ops, err := fault.ParseSchedule(strings.NewReader("1ms rebalance t0 node" + strconv.Itoa(target)))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(ops); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(20 * sim.Millisecond)
	node, _, term, ok := bal.Placement("t0")
	if !ok || node != target || term != 2 {
		t.Fatalf("after rebalance: node=%d term=%d ok=%v, want node=%d term=2", node, term, ok, target)
	}
	recs := eng.Records()
	found := false
	for _, r := range recs {
		if r.Kind == "rebalance" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rebalance record in %v", recs)
	}
}
