package fault_test

import (
	"fmt"
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// boundEngine builds a 4-cluster system (2 hosts + 14 nodes) and an
// engine bound to it, so Apply's target validation is live.
func boundEngine(t *testing.T) *fault.Engine {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	return eng
}

// TestScheduleValidation is the DSL hardening table: every rejection
// class gets a minimal schedule and a distinctive error fragment, and
// the valid schedules prove the rejections aren't over-broad.
func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name     string
		schedule string
		parseErr string // "" = must parse
		applyErr string // "" = must apply
	}{
		{name: "valid classic storm", schedule: stormSchedule},
		{name: "valid partition lifecycle", schedule: `
			1ms partition 0,1|2,3
			4ms heal
			5ms partition 3
			7ms heal`},
		{name: "valid gray lifecycle", schedule: `
			1ms gray node5 4.0 0.25
			3ms ungray node5
			4ms gray node5 2.0 0
			6ms ungray node5`},
		{name: "valid crash after restart", schedule: `
			1ms crash node2
			3ms restart node2
			5ms crash node2`},
		{name: "valid restart without crash", schedule: `2ms restart node3`},
		{name: "valid ungray without gray", schedule: `2ms ungray host1`},

		{name: "zero time", schedule: `0ms crash node1`, parseErr: "time must be positive"},
		{name: "negative time", schedule: `-1ms crash node1`, parseErr: "bad duration"},
		{name: "missing unit", schedule: `5 crash node1`, parseErr: "needs a unit"},
		{name: "unknown op", schedule: `1ms explode node1`, applyErr: `unknown op "explode"`},

		{name: "unknown node", schedule: `1ms crash node99`, applyErr: "no node99 in this system"},
		{name: "unknown host", schedule: `1ms crash host5`, applyErr: "no host5 in this system"},
		{name: "bad machine class", schedule: `1ms crash cpu3`, applyErr: "bad machine"},
		{name: "unknown cluster link", schedule: `1ms link-down 0 9`, applyErr: "no cluster 9"},
		{name: "non-neighbour link", schedule: `1ms link-down 0 3`, applyErr: "no cube link between clusters 0 and 3"},
		{name: "gray unknown node", schedule: `1ms gray node99 2.0 0.1`, applyErr: "no node99 in this system"},
		{name: "gray slowdown below 1", schedule: `1ms gray node5 0.5 0.1`, applyErr: "bad slowdown"},
		{name: "gray drop out of range", schedule: `1ms gray node5 2.0 1.0`, applyErr: "bad drop probability"},

		{name: "double link-down", schedule: `
			1ms link-down 0 1
			2ms link-down 0 1`, applyErr: "already down"},
		{name: "double crash", schedule: `
			1ms crash node2
			2ms crash node2`, applyErr: "already crashed"},
		{name: "double gray", schedule: `
			1ms gray node5 2.0 0
			2ms gray node5 4.0 0`, applyErr: "already gray"},
		{name: "same-instant same-target", schedule: `
			1ms crash node2
			1ms restart node2`, applyErr: "ambiguous order"},

		{name: "nested partition", schedule: `
			1ms partition 0,1|2,3
			2ms partition 0|1,2,3`, applyErr: "already active"},
		{name: "heal without partition", schedule: `2ms heal`, applyErr: "no active partition"},
		{name: "link op during partition", schedule: `
			1ms partition 0,1|2,3
			2ms link-down 0 1
			4ms heal`, applyErr: "partition"},
		{name: "partition of everything in one group", schedule: `1ms partition 0,1,2,3`, applyErr: "only one group"},
		{name: "partition duplicate cluster", schedule: `1ms partition 0,1|1,2`, applyErr: "listed twice"},
		{name: "partition empty group", schedule: `1ms partition 0,1|`, applyErr: "empty group"},
		{name: "partition unknown cluster", schedule: `1ms partition 7`, applyErr: "no cluster 7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops, err := fault.ParseSchedule(strings.NewReader(tc.schedule))
			if tc.parseErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.parseErr) {
					t.Fatalf("parse error = %v, want fragment %q", err, tc.parseErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = boundEngine(t).Apply(ops)
			if tc.applyErr == "" {
				if err != nil {
					t.Fatalf("apply: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.applyErr) {
				t.Fatalf("apply error = %v, want fragment %q", err, tc.applyErr)
			}
		})
	}
}

// TestShardedScheduleRejectsLinkFaults: with SetShards(n > 1) the
// validator refuses link and partition ops before anything is armed —
// the sharded fabric cannot reroute, and the error must name the
// schedule line so the user can fix the file — while crash and gray
// faults (which the shard sweep replays routinely) still pass, and a
// serial engine (shards <= 1) keeps accepting link faults.
func TestShardedScheduleRejectsLinkFaults(t *testing.T) {
	sched := `# comment line
2ms crash node2
1ms link-down 0 1
4ms restart node2`
	ops, err := fault.ParseSchedule(strings.NewReader(sched))
	if err != nil {
		t.Fatal(err)
	}
	eng := boundEngine(t)
	eng.SetShards(4)
	err = eng.Apply(ops)
	if err == nil {
		t.Fatal("link-down with 4 shards must be rejected")
	}
	for _, want := range []string{"line 3", "link-down", "shards"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
	if n := len(eng.Records()); n != 0 {
		t.Fatalf("rejected schedule still armed %d ops", n)
	}

	for _, kind := range []string{"link-up 0 1", "degrade 0 1 4.0", "partition 0,1|2,3", "heal"} {
		one, err := fault.ParseSchedule(strings.NewReader("1ms " + kind))
		if err != nil {
			t.Fatal(err)
		}
		e := boundEngine(t)
		e.SetShards(2)
		if err := e.Apply(one); err == nil || !strings.Contains(err.Error(), "shards") {
			t.Fatalf("%s with 2 shards: error = %v, want shard rejection", kind, err)
		}
	}

	safe, err := fault.ParseSchedule(strings.NewReader(`
		1ms crash node2
		2ms gray node5 2.0 0
		3ms restart node2
		4ms ungray node5`))
	if err != nil {
		t.Fatal(err)
	}
	eng = boundEngine(t)
	eng.SetShards(8)
	if err := eng.Apply(safe); err != nil {
		t.Fatalf("crash/gray schedule must survive the shard restriction: %v", err)
	}

	serial := boundEngine(t)
	serial.SetShards(1)
	linkOps, err := fault.ParseSchedule(strings.NewReader("1ms link-down 0 1\n2ms link-up 0 1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Apply(linkOps); err != nil {
		t.Fatalf("serial engine must keep accepting link faults: %v", err)
	}
}

// TestScheduleRejectionIsAtomic: a schedule that fails validation must
// arm nothing — the engine's record log stays empty after the clock
// runs past every op's time.
func TestScheduleRejectionIsAtomic(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	ops, err := fault.ParseSchedule(strings.NewReader(`
		1ms link-down 0 1
		2ms crash node2
		3ms crash node2`))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(ops); err == nil {
		t.Fatal("overlapping crash must be rejected")
	}
	sys.K.At(sim.Time(10*sim.Millisecond), func() {})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(eng.Records()); n != 0 {
		t.Fatalf("rejected schedule still armed %d ops: %v", n, eng.Records())
	}
}

// TestPartitionCutsAndHeals: during the cut, cross-group links are
// down and same-group routing survives; after the heal, exactly the
// partition's cut-set is restored.
func TestPartitionCutsAndHeals(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	ops, err := fault.ParseSchedule(strings.NewReader(`
		1ms partition 1
		3ms heal`))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(ops); err != nil {
		t.Fatal(err)
	}
	sys.K.At(sim.Time(2*sim.Millisecond), func() {
		if got := sys.IC.DownCubeLinks(); got != 4 {
			t.Errorf("mid-cut down links = %d, want 4 (cluster 1's 0-1 and 1-3, both directions)", got)
		}
	})
	sys.K.At(sim.Time(4*sim.Millisecond), func() {
		if got := sys.IC.DownCubeLinks(); got != 0 {
			t.Errorf("post-heal down links = %d, want 0", got)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	recs := eng.Records()
	if len(recs) != 2 || recs[0].Kind != "partition" || recs[1].Kind != "heal" {
		t.Fatalf("records = %v", recs)
	}
}

// runPairTraffic streams 16 messages from node1 to node8 and logs the
// outcome plus the gray counters into b.
func runPairTraffic(t *testing.T, sys *core.System, b *strings.Builder) {
	t.Helper()
	const msgs = 16
	recv := 0
	wm, rm := sys.Node(1), sys.Node(8)
	sys.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
		ch := wm.Chans.Open(sp, "gray", objmgr.OpenAny)
		for i := 0; i < msgs; i++ {
			if err := ch.Write(sp, 256, i); err != nil {
				return
			}
			sp.SleepFor(300 * sim.Microsecond)
		}
	})
	sys.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
		ch := rm.Chans.Open(sp, "gray", objmgr.OpenAny)
		for i := 0; i < msgs; i++ {
			if _, ok := ch.Read(sp); !ok {
				return
			}
			recv++
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	retrans := 0
	for _, m := range sys.Machines() {
		retrans += m.Chans.TimeoutRetransmits
	}
	fmt.Fprintf(b, "recv=%d retrans=%d dropped=%d quiesce=%v\n",
		recv, retrans, sys.Node(8).IF.GrayDropped, sys.K.Now())
}

// TestGrayDeterminism: the seeded drop pattern is part of the run's
// identity — same seed, same drops; different seed, different run.
func TestGrayDeterminism(t *testing.T) {
	run := func(seed int64) string {
		sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		eng := fault.New(sys.K, seed)
		eng.Bind(sys)
		ops, err := fault.ParseSchedule(strings.NewReader(`
			1ms gray node8 4.0 0.35
			8ms ungray node8`))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Apply(ops); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		runPairTraffic(t, sys, &b)
		eng.Report(&b)
		return b.String()
	}
	a, b := run(3), run(3)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n----\n%s", a, b)
	}
	if c := run(4); c == a {
		t.Fatal("different gray seeds produced identical runs")
	}
}
