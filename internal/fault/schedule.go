package fault

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Op is one line of a fault schedule: what to do and when. Line is
// the 1-based schedule line the op came from (0 for ops built in
// code), so validation errors can point at the offending line.
type Op struct {
	At   sim.Duration
	Kind string
	Args []string
	Line int
}

// ParseSchedule reads a fault schedule, one op per line:
//
//	500us link-down 0 1        # fail cube link between clusters 0 and 1
//	2ms   link-up 0 1
//	1ms   degrade 0 2 4.0      # 4x slower wire on cube link 0-2
//	2ms   crash node3
//	5ms   restart node3
//	2ms   crash host0
//	3ms   dfs-down 1           # DFS server outage (host machine alive)
//	4ms   dfs-up 1
//	2ms   partition 0,1|2,3    # cut topology into reachability groups
//	6ms   heal                 # merge the partition back
//	1ms   gray node5 4.0 0.25  # slow ISR 4x, drop 25% of arrivals
//	7ms   ungray node5
//	3ms   rebalance t4 node9   # move vchannel t4 to a lane on node9
//
// A partition lists cluster groups separated by "|"; clusters in
// different groups cannot reach each other until the matching heal.
// Clusters left unlisted form one implicit final group.
//
// Blank lines and #-comments are ignored. Times are virtual and must
// be positive, with units ns, us (or µs), ms, or s.
func ParseSchedule(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: line %d: want \"<time> <op> [args...]\"", lineNo)
		}
		at, err := parseDur(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %v", lineNo, err)
		}
		if at <= 0 {
			return nil, fmt.Errorf("fault: line %d: time must be positive, got %q", lineNo, fields[0])
		}
		ops = append(ops, Op{At: at, Kind: fields[1], Args: fields[2:], Line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// ParseDuration parses a schedule-DSL duration like "500us", "2ms",
// "1.5s", or "250ns" (exported for command-line flags that share the
// DSL's syntax, e.g. `vorx chaos -detect 2ms`).
func ParseDuration(s string) (sim.Duration, error) { return parseDur(s) }

// parseDur parses "500us", "2ms", "1.5s", "250ns".
func parseDur(s string) (sim.Duration, error) {
	unit := sim.Duration(0)
	num := s
	for _, u := range []struct {
		suffix string
		d      sim.Duration
	}{
		{"ns", sim.Nanosecond}, {"µs", sim.Microsecond}, {"us", sim.Microsecond},
		{"ms", sim.Millisecond}, {"s", sim.Second},
	} {
		if strings.HasSuffix(s, u.suffix) {
			unit = u.d
			num = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	if unit == 0 {
		return 0, fmt.Errorf("duration %q needs a unit (ns/us/ms/s)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Duration(f * float64(unit)), nil
}

// parseMachine parses a "node3"/"host0" target.
func parseMachine(a string) (string, int, error) {
	for _, class := range []string{"node", "host"} {
		if strings.HasPrefix(a, class) {
			i, err := strconv.Atoi(a[len(class):])
			if err != nil || i < 0 {
				return "", 0, fmt.Errorf("bad machine %q", a)
			}
			return class, i, nil
		}
	}
	return "", 0, fmt.Errorf("bad machine %q (want nodeN or hostN)", a)
}

// checkMachine verifies the target machine exists (when a system is
// bound; a standalone engine skips the bounds check).
func (e *Engine) checkMachine(class string, i int) error {
	if e.sys == nil {
		return nil
	}
	n := len(e.sys.Nodes())
	if class == "host" {
		n = len(e.sys.Hosts())
	}
	if i >= n {
		return fmt.Errorf("no %s%d in this system (%d %ss)", class, i, n, class)
	}
	return nil
}

// checkLink verifies clusters a and b exist and are cube neighbours.
func (e *Engine) checkLink(a, b topo.ClusterID) error {
	if e.sys == nil {
		return nil
	}
	tp := e.sys.Topo
	n := topo.ClusterID(tp.Clusters())
	if a < 0 || a >= n || b < 0 || b >= n {
		return fmt.Errorf("no cluster %d in this system (%d clusters)", max(int(a), int(b)), n)
	}
	if !tp.HasLink(a, b) {
		return fmt.Errorf("no cube link between clusters %d and %d", a, b)
	}
	return nil
}

// parseGroups parses a partition spec like "0,1|2,3": groups of
// cluster IDs separated by "|".
func parseGroups(s string) ([][]topo.ClusterID, error) {
	var groups [][]topo.ClusterID
	seen := map[topo.ClusterID]bool{}
	for _, gs := range strings.Split(s, "|") {
		if gs == "" {
			return nil, fmt.Errorf("empty group in partition %q", s)
		}
		var g []topo.ClusterID
		for _, cs := range strings.Split(gs, ",") {
			v, err := strconv.Atoi(cs)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad cluster %q in partition %q", cs, s)
			}
			c := topo.ClusterID(v)
			if seen[c] {
				return nil, fmt.Errorf("cluster %d listed twice in partition %q", v, s)
			}
			seen[c] = true
			g = append(g, c)
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// Apply validates the whole schedule, then arms every op on the
// engine's clock. The engine must already be bound to a system (and
// to a DFS service if the schedule uses dfs-down/dfs-up). Validation
// rejects unknown targets and overlapping entries for the same target
// — a link failed twice without a repair between, a machine crashed
// while already down, nested partitions — before anything is
// scheduled, so a bad schedule never half-applies.
func (e *Engine) Apply(ops []Op) error {
	if err := e.validate(ops); err != nil {
		return err
	}
	for i, op := range ops {
		if err := e.apply(op); err != nil {
			return fmt.Errorf("fault: op %d (%s): %w", i+1, op.Kind, err)
		}
	}
	return nil
}

func (e *Engine) apply(op Op) error {
	argInts := func(n int) ([]int, error) {
		if len(op.Args) < n {
			return nil, fmt.Errorf("want %d args, got %d", n, len(op.Args))
		}
		out := make([]int, n)
		for i := 0; i < n; i++ {
			v, err := strconv.Atoi(op.Args[i])
			if err != nil {
				return nil, fmt.Errorf("bad arg %q", op.Args[i])
			}
			out[i] = v
		}
		return out, nil
	}
	switch op.Kind {
	case "link-down", "link-up":
		v, err := argInts(2)
		if err != nil {
			return err
		}
		a, b := topo.ClusterID(v[0]), topo.ClusterID(v[1])
		if err := e.checkLink(a, b); err != nil {
			return err
		}
		if op.Kind == "link-down" {
			e.CubeLinkDownAt(op.At, a, b)
		} else {
			e.CubeLinkUpAt(op.At, a, b)
		}
	case "degrade":
		v, err := argInts(2)
		if err != nil {
			return err
		}
		if len(op.Args) != 3 {
			return fmt.Errorf("want: degrade <a> <b> <factor>")
		}
		f, err := strconv.ParseFloat(op.Args[2], 64)
		if err != nil {
			return fmt.Errorf("bad factor %q", op.Args[2])
		}
		a, b := topo.ClusterID(v[0]), topo.ClusterID(v[1])
		if err := e.checkLink(a, b); err != nil {
			return err
		}
		e.DegradeCubeLinkAt(op.At, a, b, f)
	case "partition":
		if len(op.Args) != 1 {
			return fmt.Errorf("want: partition <a,b|c,d|...>")
		}
		groups, err := parseGroups(op.Args[0])
		if err != nil {
			return err
		}
		if e.sys != nil {
			n := e.sys.Topo.Clusters()
			if n < 2 {
				return fmt.Errorf("partition needs a multi-cluster topology")
			}
			listed := 0
			for _, g := range groups {
				for _, c := range g {
					if int(c) >= n {
						return fmt.Errorf("no cluster %d in this system (%d clusters)", c, n)
					}
					listed++
				}
			}
			if len(groups) == 1 && listed >= n {
				return fmt.Errorf("partition %q has only one group", op.Args[0])
			}
		}
		e.PartitionAt(op.At, groups)
	case "heal":
		if len(op.Args) != 0 {
			return fmt.Errorf("heal takes no args")
		}
		e.HealAt(op.At)
	case "gray":
		if len(op.Args) != 3 {
			return fmt.Errorf("want: gray <nodeN|hostN> <slowdown> <dropProb>")
		}
		class, i, err := parseMachine(op.Args[0])
		if err != nil {
			return err
		}
		if err := e.checkMachine(class, i); err != nil {
			return err
		}
		slow, err := strconv.ParseFloat(op.Args[1], 64)
		if err != nil || slow < 1 {
			return fmt.Errorf("bad slowdown %q (want >= 1)", op.Args[1])
		}
		drop, err := strconv.ParseFloat(op.Args[2], 64)
		if err != nil || drop < 0 || drop >= 1 {
			return fmt.Errorf("bad drop probability %q (want 0 <= p < 1)", op.Args[2])
		}
		if class == "node" {
			e.GrayNodeAt(op.At, i, slow, drop)
		} else {
			e.GrayHostAt(op.At, i, slow, drop)
		}
	case "ungray":
		if len(op.Args) != 1 {
			return fmt.Errorf("want: ungray <nodeN|hostN>")
		}
		class, i, err := parseMachine(op.Args[0])
		if err != nil {
			return err
		}
		if err := e.checkMachine(class, i); err != nil {
			return err
		}
		if class == "node" {
			e.UngrayNodeAt(op.At, i)
		} else {
			e.UngrayHostAt(op.At, i)
		}
	case "crash", "restart":
		if len(op.Args) != 1 {
			return fmt.Errorf("want one arg like node3 or host0")
		}
		class, i, err := parseMachine(op.Args[0])
		if err != nil {
			return err
		}
		if err := e.checkMachine(class, i); err != nil {
			return err
		}
		switch {
		case op.Kind == "crash" && class == "node":
			e.CrashNodeAt(op.At, i)
		case op.Kind == "crash" && class == "host":
			e.CrashHostAt(op.At, i)
		case op.Kind == "restart" && class == "node":
			e.RestartNodeAt(op.At, i)
		default:
			e.RestartHostAt(op.At, i)
		}
	case "rebalance":
		if len(op.Args) != 2 {
			return fmt.Errorf("want: rebalance <vchan> <nodeN>")
		}
		if e.vb == nil {
			return fmt.Errorf("no vchan balancer bound (BindVChan)")
		}
		name := op.Args[0]
		class, i, err := parseMachine(op.Args[1])
		if err != nil {
			return err
		}
		if class != "node" {
			return fmt.Errorf("rebalance target must be a nodeN (lanes live on nodes)")
		}
		if err := e.checkMachine(class, i); err != nil {
			return err
		}
		if !e.vb.HasVChan(name) {
			return fmt.Errorf("unknown vchannel %q", name)
		}
		e.RebalanceAt(op.At, name, i)
	case "dfs-down", "dfs-up":
		v, err := argInts(1)
		if err != nil {
			return err
		}
		if e.fs == nil {
			return fmt.Errorf("no DFS service bound")
		}
		if v[0] < 0 || v[0] >= e.fs.NumHosts() {
			return fmt.Errorf("no DFS server on host%d (%d hosts)", v[0], e.fs.NumHosts())
		}
		if op.Kind == "dfs-down" {
			e.DFSDownAt(op.At, v[0])
		} else {
			e.DFSUpAt(op.At, v[0])
		}
	default:
		return fmt.Errorf("unknown op %q", op.Kind)
	}
	return nil
}

// validate walks the schedule in virtual-time order and rejects
// overlapping entries for the same target before anything is armed:
// a link must come back up before it can fail again, a machine must
// restart before it can crash again, a gray machine must be restored
// before it can degrade again, and partitions cannot nest (a heal must
// separate them). Two ops for the same target at the same instant are
// rejected as ambiguous, and explicit link ops are rejected while a
// partition owns the cut-set (the heal could not tell whose outage a
// down link is).
func (e *Engine) validate(ops []Op) error {
	type ent struct {
		at  sim.Duration
		idx int // 1-based op number, for error messages
		op  Op
	}
	ordered := make([]ent, 0, len(ops))
	for i, op := range ops {
		ordered = append(ordered, ent{at: op.At, idx: i + 1, op: op})
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].at < ordered[j].at })

	bad := func(en ent, format string, args ...any) error {
		where := fmt.Sprintf("op %d", en.idx)
		if en.op.Line > 0 {
			where = fmt.Sprintf("line %d", en.op.Line)
		}
		return fmt.Errorf("fault: %s (%s at %v): %s", where, en.op.Kind, en.at, fmt.Sprintf(format, args...))
	}
	linkDown := map[[2]int]bool{}    // schedule-owned link outages
	machDown := map[string]bool{}    // schedule-owned crashes
	machGray := map[string]bool{}    // schedule-owned gray degradations
	lastAt := map[string]sim.Duration{} // target -> time of last op on it
	partActive := false
	var partAt sim.Duration
	var partGroups [][]topo.ClusterID // groups of the active partition

	touch := func(en ent, target string) error {
		if at, ok := lastAt[target]; ok && at == en.at {
			return bad(en, "second op for %s at the same instant (ambiguous order)", target)
		}
		lastAt[target] = en.at
		return nil
	}
	linkKey := func(args []string) ([2]int, string, bool) {
		if len(args) < 2 {
			return [2]int{}, "", false
		}
		a, err1 := strconv.Atoi(args[0])
		b, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return [2]int{}, "", false
		}
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}, fmt.Sprintf("link %d-%d", a, b), true
	}

	for _, en := range ordered {
		if e.shards > 1 {
			switch en.op.Kind {
			case "link-down", "link-up", "degrade", "partition", "heal":
				return bad(en, "link and partition faults reroute with zero lookahead and cannot run on a build split over %d shards; drop this op or run serial (-shards=1)", e.shards)
			}
		}
		switch en.op.Kind {
		case "link-down", "link-up", "degrade":
			key, target, ok := linkKey(en.op.Args)
			if !ok {
				continue // apply() reports the malformed args
			}
			if err := touch(en, target); err != nil {
				return err
			}
			switch en.op.Kind {
			case "link-down":
				if partActive {
					return bad(en, "link op while a partition is active (since %v); heal first", partAt)
				}
				if linkDown[key] {
					return bad(en, "%s is already down (overlapping outage; add a link-up between)", target)
				}
				linkDown[key] = true
			case "link-up":
				if partActive {
					return bad(en, "link op while a partition is active (since %v); heal first", partAt)
				}
				delete(linkDown, key)
			}
		case "crash", "restart":
			if len(en.op.Args) != 1 {
				continue
			}
			target := en.op.Args[0]
			if err := touch(en, target); err != nil {
				return err
			}
			if en.op.Kind == "crash" {
				if machDown[target] {
					return bad(en, "%s is already crashed (overlapping crash; add a restart between)", target)
				}
				machDown[target] = true
			} else {
				delete(machDown, target)
			}
		case "gray", "ungray":
			if len(en.op.Args) < 1 {
				continue
			}
			target := "gray " + en.op.Args[0]
			if err := touch(en, target); err != nil {
				return err
			}
			if en.op.Kind == "gray" {
				if machGray[en.op.Args[0]] {
					return bad(en, "%s is already gray (overlapping degradation; add an ungray between)", en.op.Args[0])
				}
				machGray[en.op.Args[0]] = true
			} else {
				delete(machGray, en.op.Args[0])
			}
		case "partition", "heal":
			if err := touch(en, "partition"); err != nil {
				return err
			}
			if en.op.Kind == "partition" {
				if partActive {
					return bad(en, "partition while one is already active (since %v); heal first", partAt)
				}
				partActive = true
				partAt = en.at
				if len(en.op.Args) == 1 {
					partGroups, _ = parseGroups(en.op.Args[0]) // apply() reports a bad spec
				}
			} else {
				if !partActive {
					return bad(en, "heal with no active partition")
				}
				partActive = false
				partGroups = nil
			}
		case "rebalance":
			if len(en.op.Args) != 2 || e.vb == nil {
				continue // apply() reports the malformed op
			}
			name := en.op.Args[0]
			if err := touch(en, "vchan "+name); err != nil {
				return err
			}
			if !e.vb.HasVChan(name) {
				return bad(en, "unknown vchannel %q", name)
			}
			class, i, err := parseMachine(en.op.Args[1])
			if err != nil || class != "node" {
				continue // apply() reports the bad target
			}
			if err := e.checkMachine(class, i); err != nil {
				continue
			}
			target := en.op.Args[1]
			if machDown[target] {
				return bad(en, "rebalance targets crashed %s (restart it first)", target)
			}
			if e.vb.Started() && !e.vb.IsBroker(i) {
				return bad(en, "%s hosts no vchan lanes (lane nodes: %v)", target, e.vb.BrokerNodes())
			}
			if partActive && e.sys != nil {
				tc := e.sys.Topo.AttachmentOf(e.sys.Node(i).EP).Cluster
				bc := e.sys.Topo.AttachmentOf(e.vb.Endpoint()).Cluster
				if groupOf(partGroups, tc) != groupOf(partGroups, bc) {
					return bad(en, "rebalance targets %s across the active partition cut (since %v); heal first",
						target, partAt)
				}
			}
		}
	}
	return nil
}

// groupOf returns the partition-group index holding cluster c;
// clusters left unlisted share the implicit final group.
func groupOf(groups [][]topo.ClusterID, c topo.ClusterID) int {
	for i, g := range groups {
		for _, gc := range g {
			if gc == c {
				return i
			}
		}
	}
	return len(groups)
}
