package fault

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Op is one line of a fault schedule: what to do and when.
type Op struct {
	At   sim.Duration
	Kind string
	Args []string
}

// ParseSchedule reads a fault schedule, one op per line:
//
//	500us link-down 0 1        # fail cube link between clusters 0 and 1
//	2ms   link-up 0 1
//	1ms   degrade 0 2 4.0      # 4x slower wire on cube link 0-2
//	2ms   crash node3
//	5ms   restart node3
//	2ms   crash host0
//	3ms   dfs-down 1           # DFS server outage (host machine alive)
//	4ms   dfs-up 1
//
// Blank lines and #-comments are ignored. Times are virtual, with
// units ns, us (or µs), ms, or s.
func ParseSchedule(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: line %d: want \"<time> <op> [args...]\"", lineNo)
		}
		at, err := parseDur(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %v", lineNo, err)
		}
		ops = append(ops, Op{At: at, Kind: fields[1], Args: fields[2:]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// ParseDuration parses a schedule-DSL duration like "500us", "2ms",
// "1.5s", or "250ns" (exported for command-line flags that share the
// DSL's syntax, e.g. `vorx chaos -detect 2ms`).
func ParseDuration(s string) (sim.Duration, error) { return parseDur(s) }

// parseDur parses "500us", "2ms", "1.5s", "250ns".
func parseDur(s string) (sim.Duration, error) {
	unit := sim.Duration(0)
	num := s
	for _, u := range []struct {
		suffix string
		d      sim.Duration
	}{
		{"ns", sim.Nanosecond}, {"µs", sim.Microsecond}, {"us", sim.Microsecond},
		{"ms", sim.Millisecond}, {"s", sim.Second},
	} {
		if strings.HasSuffix(s, u.suffix) {
			unit = u.d
			num = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	if unit == 0 {
		return 0, fmt.Errorf("duration %q needs a unit (ns/us/ms/s)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Duration(f * float64(unit)), nil
}

// Apply schedules every op on the engine. The engine must already be
// bound to a system (and to a DFS service if the schedule uses
// dfs-down/dfs-up).
func (e *Engine) Apply(ops []Op) error {
	for i, op := range ops {
		if err := e.apply(op); err != nil {
			return fmt.Errorf("fault: op %d (%s): %w", i+1, op.Kind, err)
		}
	}
	return nil
}

func (e *Engine) apply(op Op) error {
	argInts := func(n int) ([]int, error) {
		if len(op.Args) < n {
			return nil, fmt.Errorf("want %d args, got %d", n, len(op.Args))
		}
		out := make([]int, n)
		for i := 0; i < n; i++ {
			v, err := strconv.Atoi(op.Args[i])
			if err != nil {
				return nil, fmt.Errorf("bad arg %q", op.Args[i])
			}
			out[i] = v
		}
		return out, nil
	}
	machine := func() (string, int, error) {
		if len(op.Args) != 1 {
			return "", 0, fmt.Errorf("want one arg like node3 or host0")
		}
		a := op.Args[0]
		for _, class := range []string{"node", "host"} {
			if strings.HasPrefix(a, class) {
				i, err := strconv.Atoi(a[len(class):])
				if err != nil {
					return "", 0, fmt.Errorf("bad machine %q", a)
				}
				return class, i, nil
			}
		}
		return "", 0, fmt.Errorf("bad machine %q (want nodeN or hostN)", a)
	}
	switch op.Kind {
	case "link-down", "link-up":
		v, err := argInts(2)
		if err != nil {
			return err
		}
		a, b := topo.ClusterID(v[0]), topo.ClusterID(v[1])
		if op.Kind == "link-down" {
			e.CubeLinkDownAt(op.At, a, b)
		} else {
			e.CubeLinkUpAt(op.At, a, b)
		}
	case "degrade":
		v, err := argInts(2)
		if err != nil {
			return err
		}
		if len(op.Args) != 3 {
			return fmt.Errorf("want: degrade <a> <b> <factor>")
		}
		f, err := strconv.ParseFloat(op.Args[2], 64)
		if err != nil {
			return fmt.Errorf("bad factor %q", op.Args[2])
		}
		e.DegradeCubeLinkAt(op.At, topo.ClusterID(v[0]), topo.ClusterID(v[1]), f)
	case "crash", "restart":
		class, i, err := machine()
		if err != nil {
			return err
		}
		if e.sys != nil {
			n := len(e.sys.Nodes())
			if class == "host" {
				n = len(e.sys.Hosts())
			}
			if i < 0 || i >= n {
				return fmt.Errorf("no %s%d in this system (%d %ss)", class, i, n, class)
			}
		}
		switch {
		case op.Kind == "crash" && class == "node":
			e.CrashNodeAt(op.At, i)
		case op.Kind == "crash" && class == "host":
			e.CrashHostAt(op.At, i)
		case op.Kind == "restart" && class == "node":
			e.RestartNodeAt(op.At, i)
		default:
			e.RestartHostAt(op.At, i)
		}
	case "dfs-down", "dfs-up":
		v, err := argInts(1)
		if err != nil {
			return err
		}
		if e.fs == nil {
			return fmt.Errorf("no DFS service bound")
		}
		if v[0] < 0 || v[0] >= e.fs.NumHosts() {
			return fmt.Errorf("no DFS server on host%d (%d hosts)", v[0], e.fs.NumHosts())
		}
		if op.Kind == "dfs-down" {
			e.DFSDownAt(op.At, v[0])
		} else {
			e.DFSUpAt(op.At, v[0])
		}
	default:
		return fmt.Errorf("unknown op %q", op.Kind)
	}
	return nil
}
