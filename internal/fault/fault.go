// Package fault is the deterministic fault-injection engine: a seeded
// source of failures scheduled as virtual-time events on the sim
// clock. It can fail and repair HPC cube links, degrade their
// bandwidth, crash and restart nodes and hosts, take DFS servers down,
// and install probabilistic loss/corruption on an S/NET bus — and it
// drives the recovery half of the system: channel peers of a crashed
// machine get errors instead of hangs, the resource manager force-
// frees the dead node's processors (the §3.1 VORX policy), and DFS
// clients fail over to surviving replicas.
//
// Determinism: all fault times are virtual, the probabilistic S/NET
// model draws from the engine's own seeded generator in bus-transfer
// order, and every recovery action is scheduled on the same event
// clock — so one seed plus one schedule yields one bit-identical run.
// An engine with nothing scheduled costs nothing: no timers are armed
// and no hot path consults it.
package fault

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"hpcvorx/internal/core"
	"hpcvorx/internal/dfs"
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/vchan"
)

// Record is one fault or recovery action, in virtual-time order.
type Record struct {
	At     sim.Time
	Kind   string // "link-down", "crash", "detect", "force-free", ...
	Detail string
}

func (r Record) String() string {
	return fmt.Sprintf("%10v  %-11s %s", r.At, r.Kind, r.Detail)
}

// Engine schedules faults and wires recovery. Create with New, attach
// the system with Bind (and optionally BindResmgr/BindDFS), then
// schedule fault events before running the simulation.
type Engine struct {
	k   *sim.Kernel
	rng *rand.Rand
	sys *core.System
	res *resmgr.VORX
	fs  *dfs.Service
	vb  *vchan.Balancer

	// DetectDelay models how long the LAM takes to notice a crashed
	// machine before survivors are told (peer-death errors, force-
	// free). Default 2 ms. Configurable so oracle detection can be
	// compared with the supervisor's heartbeat detection at equal
	// delays (`vorx chaos -detect`).
	DetectDelay sim.Duration
	// oracleOff disables the engine's omniscient crash detection: the
	// engine still crashes machines, but nobody is told — survivors
	// hang on their timeouts unless a supervision layer
	// (internal/super) detects the death by heartbeat loss and drives
	// recovery itself. Kept behind a flag so oracle and heartbeat
	// detection can be A/B-tested on the same schedule.
	oracleOff bool
	// AckTimeout and MaxRetries configure the channel end-to-end
	// recovery Bind installs on every machine. Defaults: 5 ms, 3.
	AckTimeout sim.Duration
	MaxRetries int

	seed int64
	// shards > 1 marks the engine as driving one shard of a split
	// build (SetShards): link and partition faults are rejected at
	// validation time, because zero-lookahead rerouting cannot run
	// under the conservative shard protocol.
	shards int
	// partCut remembers which cube links the active partition cut (and
	// only those: links that were already down stay down across a
	// heal).
	partCut [][2]topo.ClusterID

	recs []Record
}

// New creates an engine on kernel k. seed drives the probabilistic
// models; scheduled (non-probabilistic) faults do not consume it.
func New(k *sim.Kernel, seed int64) *Engine {
	return &Engine{
		k:           k,
		rng:         rand.New(rand.NewSource(seed)),
		seed:        seed,
		DetectDelay: 2 * sim.Millisecond,
		AckTimeout:  5 * sim.Millisecond,
		MaxRetries:  3,
	}
}

// Bind attaches the engine to a system and arms end-to-end channel
// recovery on every machine (writes time out, retransmit, and report
// peer death instead of hanging).
func (e *Engine) Bind(sys *core.System) {
	e.sys = sys
	for _, m := range sys.Machines() {
		m.Chans.SetAckTimeout(e.AckTimeout, e.MaxRetries)
	}
}

// SetOracle turns the engine's omniscient crash detection on or off.
// It is on by default (the PR 1 behaviour: PeerDown and force-free
// fire DetectDelay after every crash). Turn it off when a supervisor
// owns detection, so deaths are noticed by heartbeat loss instead.
func (e *Engine) SetOracle(on bool) { e.oracleOff = !on }

// SetShards declares that the bound system is one simulation split
// over n shards. With n > 1, Apply rejects link and partition faults
// at validation time — the sharded fabric cannot reroute (it would
// panic mid-run) — naming the schedule line carrying the offending op.
func (e *Engine) SetShards(n int) { e.shards = n }

// BindResmgr makes node crashes force-free the dead node's processors.
func (e *Engine) BindResmgr(res *resmgr.VORX) { e.res = res }

// BindDFS attaches a file service for dfs-down/dfs-up schedule ops.
func (e *Engine) BindDFS(fs *dfs.Service) { e.fs = fs }

// BindVChan attaches a virtual-channel balancer so `rebalance`
// schedule ops resolve (and validate against the declared vchannels).
func (e *Engine) BindVChan(b *vchan.Balancer) { e.vb = b }

// RebalanceAt schedules a placement change: move the named vchannel
// to a lane on the given node at virtual time at. The engine records
// the balancer's verdict — a vchannel already mid-migration refuses
// the op, deterministically.
func (e *Engine) RebalanceAt(at sim.Duration, name string, node int) {
	e.k.After(at, func() {
		ok := e.vb.MigrateTo(name, node)
		e.record("rebalance", "%s -> node%d ok=%v", name, node, ok)
	})
}

// Records returns every fault and recovery action so far, in
// virtual-time order.
func (e *Engine) Records() []Record { return e.recs }

// Report writes the fault/recovery log.
func (e *Engine) Report(w io.Writer) {
	fmt.Fprintf(w, "fault log (%d events):\n", len(e.recs))
	for _, r := range e.recs {
		fmt.Fprintln(w, " ", r)
	}
}

func (e *Engine) record(kind, format string, args ...any) {
	e.recs = append(e.recs, Record{At: e.k.Now(), Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// CubeLinkDownAt fails the cube link between clusters a and b at
// virtual time at.
func (e *Engine) CubeLinkDownAt(at sim.Duration, a, b topo.ClusterID) {
	e.k.At(sim.Time(at), func() {
		e.sys.IC.SetCubeLinkDown(a, b, true)
		e.record("link-down", "cube %d-%d", a, b)
	})
}

// CubeLinkUpAt repairs the cube link between a and b at time at.
func (e *Engine) CubeLinkUpAt(at sim.Duration, a, b topo.ClusterID) {
	e.k.At(sim.Time(at), func() {
		e.sys.IC.SetCubeLinkDown(a, b, false)
		e.record("link-up", "cube %d-%d", a, b)
	})
}

// DegradeCubeLinkAt multiplies the a-b link's wire time by factor at
// time at (factor <= 1 restores full bandwidth).
func (e *Engine) DegradeCubeLinkAt(at sim.Duration, a, b topo.ClusterID, factor float64) {
	e.k.At(sim.Time(at), func() {
		e.sys.IC.SetCubeLinkSlowdown(a, b, factor)
		e.record("degrade", "cube %d-%d x%.2f", a, b, factor)
	})
}

// CrashNodeAt crashes processing node i at time at; recovery (peer
// death, force-free) follows after DetectDelay.
func (e *Engine) CrashNodeAt(at sim.Duration, i int) {
	e.k.At(sim.Time(at), func() { e.crashMachine(e.sys.Node(i)) })
}

// RestartNodeAt restarts processing node i at time at.
func (e *Engine) RestartNodeAt(at sim.Duration, i int) {
	e.k.At(sim.Time(at), func() { e.restartMachine(e.sys.Node(i)) })
}

// CrashHostAt crashes host workstation i at time at. Its DFS server
// (if any) dies with it; clients fail over on transport errors.
func (e *Engine) CrashHostAt(at sim.Duration, i int) {
	e.k.At(sim.Time(at), func() { e.crashMachine(e.sys.Host(i)) })
}

// RestartHostAt restarts host workstation i at time at.
func (e *Engine) RestartHostAt(at sim.Duration, i int) {
	e.k.At(sim.Time(at), func() { e.restartMachine(e.sys.Host(i)) })
}

// DFSDownAt marks DFS host server i software-down at time at (the
// host machine stays alive — a server outage, not a crash).
func (e *Engine) DFSDownAt(at sim.Duration, host int) {
	e.k.At(sim.Time(at), func() {
		e.fs.SetDown(host, true)
		e.record("dfs-down", "host %d", host)
	})
}

// DFSUpAt brings DFS host server i back at time at.
func (e *Engine) DFSUpAt(at sim.Duration, host int) {
	e.k.At(sim.Time(at), func() {
		e.fs.SetDown(host, false)
		e.record("dfs-up", "host %d", host)
	})
}

// PartitionAt cuts the cube topology into disjoint reachability groups
// at time at: every cube link whose two clusters land in different
// groups goes down in one atomic step. Clusters not listed in any
// group form an implicit final group. Links that were already down are
// left alone (they belong to whoever failed them), so a later HealAt
// restores exactly the partition's own cut-set and nothing else.
func (e *Engine) PartitionAt(at sim.Duration, groups [][]topo.ClusterID) {
	e.k.At(sim.Time(at), func() { e.partition(groups) })
}

func (e *Engine) partition(groups [][]topo.ClusterID) {
	tp := e.sys.Topo
	groupOf := make(map[topo.ClusterID]int, tp.Clusters())
	for gi, g := range groups {
		for _, c := range g {
			groupOf[c] = gi
		}
	}
	rest := len(groups)
	for c := 0; c < tp.Clusters(); c++ {
		if _, ok := groupOf[topo.ClusterID(c)]; !ok {
			groupOf[topo.ClusterID(c)] = rest
		}
	}
	cut := 0
	for c := 0; c < tp.Clusters(); c++ {
		a := topo.ClusterID(c)
		for _, b := range tp.Neighbors(a) {
			if b <= a || groupOf[a] == groupOf[b] {
				continue
			}
			if e.sys.IC.CubeLinkDown(a, b) {
				continue // already down: not this partition's to heal
			}
			e.sys.IC.SetCubeLinkDown(a, b, true)
			e.partCut = append(e.partCut, [2]topo.ClusterID{a, b})
			cut++
		}
	}
	e.record("partition", "%s: %d links cut", groupsDesc(groups), cut)
}

// HealAt merges the partition back at time at: every link the
// partition cut comes up again in one atomic step. Links failed by
// other means (link-down ops, earlier outages) stay down.
func (e *Engine) HealAt(at sim.Duration) {
	e.k.At(sim.Time(at), func() {
		for _, l := range e.partCut {
			e.sys.IC.SetCubeLinkDown(l[0], l[1], false)
		}
		e.record("heal", "%d links restored", len(e.partCut))
		e.partCut = nil
	})
}

func groupsDesc(groups [][]topo.ClusterID) string {
	var b strings.Builder
	for gi, g := range groups {
		if gi > 0 {
			b.WriteByte('|')
		}
		sorted := append([]topo.ClusterID(nil), g...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for ci, c := range sorted {
			if ci > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", c)
		}
	}
	return b.String()
}

// GrayNodeAt puts processing node i into gray degradation at time at:
// the node stays up and keeps heartbeating, but its interrupt service
// runs slow times slower and — when dropProb > 0 — each arriving
// fabric frame is independently lost with probability dropProb. Drops
// draw from a generator seeded by the engine seed and the node index,
// so each gray node's fate stream is deterministic regardless of how
// arrivals interleave across nodes.
func (e *Engine) GrayNodeAt(at sim.Duration, i int, slow, dropProb float64) {
	e.k.At(sim.Time(at), func() { e.grayMachine(e.sys.Node(i), slow, dropProb, int64(i)) })
}

// UngrayNodeAt restores node i to healthy at time at.
func (e *Engine) UngrayNodeAt(at sim.Duration, i int) {
	e.k.At(sim.Time(at), func() { e.ungrayMachine(e.sys.Node(i)) })
}

// GrayHostAt puts host workstation i into gray degradation at time at.
func (e *Engine) GrayHostAt(at sim.Duration, i int, slow, dropProb float64) {
	e.k.At(sim.Time(at), func() { e.grayMachine(e.sys.Host(i), slow, dropProb, int64(i)+1<<16) })
}

// UngrayHostAt restores host i to healthy at time at.
func (e *Engine) UngrayHostAt(at sim.Duration, i int) {
	e.k.At(sim.Time(at), func() { e.ungrayMachine(e.sys.Host(i)) })
}

func (e *Engine) grayMachine(m *core.Machine, slow, dropProb float64, seedIdx int64) {
	var drop func(*hpc.Message) bool
	if dropProb > 0 {
		rng := rand.New(rand.NewSource(e.seed ^ (seedIdx+1)*0x9E3779B97F4A7C1))
		drop = func(*hpc.Message) bool { return rng.Float64() < dropProb }
	}
	m.IF.SetGray(slow, drop)
	e.record("gray", "%s isr x%.1f drop %.2f", m.Name(), slow, dropProb)
}

func (e *Engine) ungrayMachine(m *core.Machine) {
	m.IF.SetGray(0, nil)
	e.record("ungray", "%s healthy", m.Name())
}

// GrayStationAt applies gray degradation to S/NET station i of nw:
// drain reads run slow times slower, and each incoming transfer is
// lost with probability dropProb (seeded per station, deterministic).
func (e *Engine) GrayStationAt(at sim.Duration, nw *snet.Network, i int, slow, dropProb float64) {
	e.k.At(sim.Time(at), func() {
		var drop func(src, size int) bool
		if dropProb > 0 {
			rng := rand.New(rand.NewSource(e.seed ^ (int64(i)+1)*0x9E3779B97F4A7C1))
			drop = func(src, size int) bool { return rng.Float64() < dropProb }
		}
		nw.Station(i).SetGray(slow, drop)
		e.record("gray", "station %d read x%.1f drop %.2f", i, slow, dropProb)
	})
}

// UngrayStationAt restores S/NET station i of nw to healthy.
func (e *Engine) UngrayStationAt(at sim.Duration, nw *snet.Network, i int) {
	e.k.At(sim.Time(at), func() {
		nw.Station(i).SetGray(0, nil)
		e.record("ungray", "station %d healthy", i)
	})
}

func (e *Engine) crashMachine(m *core.Machine) {
	if m.Kern.Crashed() {
		return
	}
	m.Kern.Crash()
	e.record("crash", "%s", m.Name())
	if e.oracleOff {
		return // detection is somebody else's job (internal/super)
	}
	e.k.After(e.DetectDelay, func() {
		if !m.Kern.Crashed() {
			return // restarted before anyone noticed
		}
		failed := 0
		for _, other := range e.sys.Machines() {
			if other == m || other.Kern.Crashed() {
				continue
			}
			failed += other.Chans.PeerDown(m.EP)
		}
		e.record("detect", "%s dead: %d channel ends failed", m.Name(), failed)
		if e.res != nil && !m.Host {
			owners := e.res.ForceFree([]resmgr.NodeID{resmgr.NodeID(m.Index)})
			e.record("force-free", "node %d (owners %v)", m.Index, owners)
		}
	})
}

func (e *Engine) restartMachine(m *core.Machine) {
	if !m.Kern.Crashed() {
		return
	}
	m.Kern.Restart()
	e.record("restart", "%s", m.Name())
}

// SNETModel installs a probabilistic loss/corruption model on an S/NET
// bus: each accepted transfer is independently destroyed with
// probability lossProb and corrupted with probability corruptProb,
// drawn from the engine's seeded generator in deterministic
// bus-transfer order. Subsumes snet.SetCorruptEvery.
func (e *Engine) SNETModel(nw *snet.Network, lossProb, corruptProb float64) {
	nw.SetInjector(snet.InjectorFunc(func(src, dst, size int) snet.Fate {
		x := e.rng.Float64()
		switch {
		case x < lossProb:
			return snet.FateDrop
		case x < lossProb+corruptProb:
			return snet.FateCorrupt
		}
		return snet.FateDeliver
	}))
}
