package flowctl_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
)

func TestReliableDeliversDespiteCorruption(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 3)
	nw.SetCorruptEvery(4) // every 4th transfer arrives damaged
	rel := flowctl.NewReliable(k, nw)
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 20
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
	})
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: got[%d]=%d", i, v)
		}
	}
	if rel.Retransmissions+rel.Timeouts == 0 {
		t.Fatal("corruption injected but nothing was retransmitted")
	}
	if rel.Delivered != msgs {
		t.Fatalf("exactly-once violated: delivered=%d", rel.Delivered)
	}
}

func TestReliableNoCorruptionNoRetransmit(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	delivered := 0
	rel.SetDeliver(0, func(m snet.Message) { delivered++ })
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if n := rel.Send(p, nw.Station(1), 0, 200, i); n != 1 {
				t.Errorf("msg %d used %d transfers on a clean network", i, n)
			}
		}
	})
	k.RunFor(sim.Seconds(2))
	k.Shutdown()
	if delivered != 10 || rel.Retransmissions != 0 {
		t.Fatalf("delivered=%d retrans=%d", delivered, rel.Retransmissions)
	}
}

func TestReliableMultipleSenders(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 4)
	nw.SetCorruptEvery(7)
	rel := flowctl.NewReliable(k, nw)
	perSrc := map[int]int{}
	rel.SetDeliver(0, func(m snet.Message) { perSrc[m.Src]++ })
	for s := 1; s <= 3; s++ {
		s := s
		k.Spawn(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				rel.Send(p, nw.Station(s), 0, 300, i)
			}
		})
	}
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	for s := 1; s <= 3; s++ {
		if perSrc[s] != 8 {
			t.Fatalf("src %d delivered %d, want 8 (%v)", s, perSrc[s], perSrc)
		}
	}
}
