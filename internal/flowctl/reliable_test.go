package flowctl_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
)

func TestReliableDeliversDespiteCorruption(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 3)
	nw.SetCorruptEvery(4) // every 4th transfer arrives damaged
	rel := flowctl.NewReliable(k, nw)
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 20
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
	})
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: got[%d]=%d", i, v)
		}
	}
	if rel.Retransmissions+rel.Timeouts == 0 {
		t.Fatal("corruption injected but nothing was retransmitted")
	}
	if rel.Delivered != msgs {
		t.Fatalf("exactly-once violated: delivered=%d", rel.Delivered)
	}
}

func TestReliableNoCorruptionNoRetransmit(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	delivered := 0
	rel.SetDeliver(0, func(m snet.Message) { delivered++ })
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if n := rel.Send(p, nw.Station(1), 0, 200, i); n != 1 {
				t.Errorf("msg %d used %d transfers on a clean network", i, n)
			}
		}
	})
	k.RunFor(sim.Seconds(2))
	k.Shutdown()
	if delivered != 10 || rel.Retransmissions != 0 {
		t.Fatalf("delivered=%d retrans=%d", delivered, rel.Retransmissions)
	}
}

func TestReliableMultipleSenders(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 4)
	nw.SetCorruptEvery(7)
	rel := flowctl.NewReliable(k, nw)
	perSrc := map[int]int{}
	rel.SetDeliver(0, func(m snet.Message) { perSrc[m.Src]++ })
	for s := 1; s <= 3; s++ {
		s := s
		k.Spawn(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				rel.Send(p, nw.Station(s), 0, 300, i)
			}
		})
	}
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	for s := 1; s <= 3; s++ {
		if perSrc[s] != 8 {
			t.Fatalf("src %d delivered %d, want 8 (%v)", s, perSrc[s], perSrc)
		}
	}
}

// dropNth drops the nth transfer matching the size predicate (1-based)
// and delivers everything else intact.
func dropNth(n int, match func(size int) bool) snet.Injector {
	count := 0
	return snet.InjectorFunc(func(src, dst, size int) snet.Fate {
		if match(size) {
			count++
			if count == n {
				return snet.FateDrop
			}
		}
		return snet.FateDeliver
	})
}

const ctlBytes = 12 // wire size of relAck, see reliable.go

// TestReliableLostDataRecovered: a data message destroyed in flight is
// recovered by the sender's ack timeout, and delivery stays
// exactly-once.
func TestReliableLostDataRecovered(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	nw.SetInjector(dropNth(2, func(size int) bool { return size > ctlBytes }))
	rel := flowctl.NewReliable(k, nw)
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 5
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
	})
	k.RunFor(sim.Seconds(2))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d (%v)", len(got), msgs, got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: got[%d]=%d", i, v)
		}
	}
	if rel.Timeouts == 0 {
		t.Fatal("a lost data message must be recovered by timeout")
	}
	if rel.Delivered != msgs {
		t.Fatalf("exactly-once violated: Delivered=%d", rel.Delivered)
	}
	if nw.Stats().Lost != 1 {
		t.Fatalf("injected 1 loss, network counted %d", nw.Stats().Lost)
	}
}

// TestReliableLostAckRecovered: the data arrives but its ACK is
// destroyed; the timeout retransmits, the receiver deduplicates, and
// the user sees the message exactly once.
func TestReliableLostAckRecovered(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	nw.SetInjector(dropNth(1, func(size int) bool { return size == ctlBytes }))
	rel := flowctl.NewReliable(k, nw)
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 5
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
	})
	k.RunFor(sim.Seconds(2))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d (%v)", len(got), msgs, got)
	}
	if rel.Timeouts == 0 {
		t.Fatal("a lost ack must trigger a timeout resend")
	}
	if rel.Delivered != msgs {
		t.Fatalf("duplicate delivery after ack loss: Delivered=%d", rel.Delivered)
	}
}

// TestReliablePerInstanceState: two networks in one process keep
// independent sequence spaces and timeouts (the former package-level
// globals leaked across instances).
func TestReliablePerInstanceState(t *testing.T) {
	k := sim.NewKernel(5)
	nwA := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	nwB := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	relA := flowctl.NewReliable(k, nwA)
	relB := flowctl.NewReliable(k, nwB)
	relB.AckTimeout = 9 * sim.Millisecond
	if relA.AckTimeout != 5*sim.Millisecond {
		t.Fatalf("instance A timeout changed by instance B: %v", relA.AckTimeout)
	}
	dA, dB := 0, 0
	relA.SetDeliver(0, func(m snet.Message) { dA++ })
	relB.SetDeliver(0, func(m snet.Message) { dB++ })
	k.Spawn("sa", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			relA.Send(p, nwA.Station(1), 0, 100, i)
		}
	})
	k.Spawn("sb", func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			relB.Send(p, nwB.Station(1), 0, 100, i)
		}
	})
	k.RunFor(sim.Seconds(1))
	k.Shutdown()
	if dA != 4 || dB != 7 {
		t.Fatalf("delivered A=%d B=%d, want 4/7", dA, dB)
	}
}
