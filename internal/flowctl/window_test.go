package flowctl_test

import (
	"testing"

	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
)

// TestWindowedDeliversInOrderCoalescedAcks: on a clean network the
// go-back-N protocol delivers everything exactly once in order with no
// retransmissions, and the delayed cumulative acks cover runs of
// arrivals — strictly fewer acks than messages.
func TestWindowedDeliversInOrderCoalescedAcks(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	// A wide AckDelay makes every flush batch-triggered: one ack per
	// AckBatch arrivals, never a timer flush covering just one.
	rel.SetWindowConfig(flowctl.WindowConfig{Window: 4, AckBatch: 2, AckDelay: 4 * sim.Millisecond})
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 20
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
		rel.Drain(p, nw.Station(1), 0)
	})
	k.RunFor(sim.Seconds(2))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: got[%d]=%d", i, v)
		}
	}
	if rel.Retransmissions != 0 || rel.Timeouts != 0 {
		t.Fatalf("clean network: retrans=%d timeouts=%d", rel.Retransmissions, rel.Timeouts)
	}
	if rel.Delivered != msgs {
		t.Fatalf("exactly-once violated: Delivered=%d", rel.Delivered)
	}
	if rel.AcksCoalesced == 0 {
		t.Fatal("cumulative acks never covered more than one arrival")
	}
}

// TestWindowedLostCoalescedAckGoBackN is the satellite scenario: a
// coalesced ack — one covering a whole run of seqs — is destroyed in
// flight. A lost intermediate ack is masked by the next cumulative one
// (that is the protocol's virtue), so the hard case is the FINAL ack
// of the stream: with nothing after it, only the sender's window
// timeout can recover. It must go back to the lowest unacked seq, the
// receiver answers the duplicates with its cumulative position, and
// the user still sees every message exactly once, in order.
func TestWindowedLostCoalescedAckGoBackN(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	// With AckBatch 2 and a wide AckDelay, 8 messages produce exactly
	// 4 batch-triggered cumulative acks; drop the 4th (covering seqs
	// 6 and 7).
	nw.SetInjector(dropNth(4, func(size int) bool { return size == ctlBytes }))
	rel := flowctl.NewReliable(k, nw)
	rel.SetWindowConfig(flowctl.WindowConfig{Window: 4, AckBatch: 2, AckDelay: 50 * sim.Millisecond})
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 8
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
		rel.Drain(p, nw.Station(1), 0)
	})
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d (%v)", len(got), msgs, got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: got[%d]=%d", i, v)
		}
	}
	if rel.Timeouts == 0 {
		t.Fatal("a lost cumulative ack must fire the window timeout")
	}
	if rel.Retransmissions == 0 {
		t.Fatal("the timeout must go back to the lowest unacked seq")
	}
	if rel.Delivered != msgs {
		t.Fatalf("exactly-once violated after go-back-N: Delivered=%d", rel.Delivered)
	}
	if nw.Stats().Lost != 1 {
		t.Fatalf("injected 1 loss, network counted %d", nw.Stats().Lost)
	}
}

// TestWindowedLostDataGoBackN: a data message in the middle of a
// window train is dropped; everything from it on is retransmitted and
// the receiver's immediate gap-acks keep it exactly-once.
func TestWindowedLostDataGoBackN(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	nw.SetInjector(dropNth(3, func(size int) bool { return size > ctlBytes }))
	rel := flowctl.NewReliable(k, nw)
	rel.SetWindowConfig(flowctl.WindowConfig{Window: 6})
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 10
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
		rel.Drain(p, nw.Station(1), 0)
	})
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d (%v)", len(got), msgs, got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: got[%d]=%d", i, v)
		}
	}
	if rel.Delivered != msgs {
		t.Fatalf("exactly-once violated: Delivered=%d", rel.Delivered)
	}
}

// TestWindowedPiggybackOnReverseTraffic: with data flowing both ways,
// pending cumulative acks ride outgoing data messages instead of
// costing their own control transfers.
func TestWindowedPiggybackOnReverseTraffic(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	rel.SetWindowConfig(flowctl.WindowConfig{Window: 4})
	d0, d1 := 0, 0
	rel.SetDeliver(0, func(m snet.Message) { d0++ })
	rel.SetDeliver(1, func(m snet.Message) { d1++ })
	const msgs = 15
	k.Spawn("east", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 300, i)
		}
		rel.Drain(p, nw.Station(1), 0)
	})
	k.Spawn("west", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(0), 1, 300, i)
		}
		rel.Drain(p, nw.Station(0), 1)
	})
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	if d0 != msgs || d1 != msgs {
		t.Fatalf("delivered %d east / %d west, want %d each", d0, d1, msgs)
	}
	if rel.AcksPiggybacked == 0 {
		t.Fatal("bidirectional traffic: some acks must ride reverse data")
	}
	if rel.Retransmissions != 0 {
		t.Fatalf("clean network retransmitted %d times", rel.Retransmissions)
	}
}

// TestWindowedCorruptDataRecovered: checksum-failed data inside the
// window is answered with the receiver's position and resent; no
// corruption survives into the user stream.
func TestWindowedCorruptDataRecovered(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	nw.SetCorruptEvery(5)
	rel := flowctl.NewReliable(k, nw)
	rel.SetWindowConfig(flowctl.WindowConfig{Window: 4})
	var got []int
	rel.SetDeliver(0, func(m snet.Message) { got = append(got, m.Payload.(int)) })
	const msgs = 16
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			rel.Send(p, nw.Station(1), 0, 400, i)
		}
		rel.Drain(p, nw.Station(1), 0)
	})
	k.RunFor(sim.Seconds(10))
	k.Shutdown()
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: got[%d]=%d", i, v)
		}
	}
	if rel.Retransmissions == 0 {
		t.Fatal("corruption injected but nothing was retransmitted")
	}
}

// TestClassicUnchangedByWindowZero: SetWindowConfig with Window <= 1
// is a no-op — the instance stays on the stop-and-wait protocol and
// reports itself classic.
func TestClassicUnchangedByWindowZero(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	rel.SetWindowConfig(flowctl.WindowConfig{Window: 1})
	if rel.Windowed() {
		t.Fatal("Window=1 must stay classic")
	}
	delivered := 0
	rel.SetDeliver(0, func(m snet.Message) { delivered++ })
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if n := rel.Send(p, nw.Station(1), 0, 200, i); n != 1 {
				t.Errorf("msg %d used %d transfers on a clean network", i, n)
			}
		}
	})
	k.RunFor(sim.Seconds(2))
	k.Shutdown()
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5", delivered)
	}
}
