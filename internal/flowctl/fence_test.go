package flowctl_test

import (
	"testing"

	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
)

// TestFenceStarvesStaleSender: once the receiver fences the sender's
// current incarnation, data frames are dropped without an ACK or NAK —
// the stop-and-wait exchange can only time out, so the zombie burns
// retransmission timeouts and delivers nothing.
func TestFenceStarvesStaleSender(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	delivered := 0
	rel.SetDeliver(0, func(m snet.Message) { delivered++ })
	rel.Fence(0, 1, rel.Incarnation(1)+1)
	done := false
	k.Spawn("zombie", func(p *sim.Proc) {
		rel.Send(p, nw.Station(1), 0, 200, "stale")
		done = true
	})
	k.RunFor(sim.Seconds(1))
	if done {
		t.Fatal("a fenced sender completed a stop-and-wait exchange")
	}
	if delivered != 0 || rel.Delivered != 0 {
		t.Fatalf("fenced frames reached the receiver: %d", delivered)
	}
	if rel.FencedDrops == 0 {
		t.Fatal("nothing was refused at the fence")
	}
	if rel.Timeouts == 0 {
		t.Fatal("the starved sender never timed out")
	}
	k.Shutdown()
}

// TestRebootClearsFence: bumping the sender's incarnation past the
// floor is the recovery path — the rebooted station's frames are
// accepted and the transfer completes exactly once.
func TestRebootClearsFence(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	delivered := 0
	rel.SetDeliver(0, func(m snet.Message) { delivered++ })
	rel.Fence(0, 1, rel.Incarnation(1)+1)
	rel.BumpIncarnation(1)
	k.Spawn("rebooted", func(p *sim.Proc) {
		if n := rel.Send(p, nw.Station(1), 0, 200, "fresh"); n != 1 {
			t.Errorf("rebooted sender used %d transfers on a clean network", n)
		}
	})
	k.RunFor(sim.Seconds(1))
	k.Shutdown()
	if delivered != 1 || rel.FencedDrops != 0 {
		t.Fatalf("delivered=%d fencedDrops=%d", delivered, rel.FencedDrops)
	}
}

// TestFenceOnlyTightens: installing a lower floor than the current one
// must not reopen the fence.
func TestFenceOnlyTightens(t *testing.T) {
	k := sim.NewKernel(5)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
	rel := flowctl.NewReliable(k, nw)
	rel.Fence(0, 1, 5)
	rel.Fence(0, 1, 2) // must be a no-op
	delivered := 0
	rel.SetDeliver(0, func(m snet.Message) { delivered++ })
	k.Spawn("stale", func(p *sim.Proc) {
		rel.Send(p, nw.Station(1), 0, 200, "stale")
	})
	k.RunFor(sim.Seconds(1))
	if delivered != 0 || rel.FencedDrops == 0 {
		t.Fatalf("loosened fence let a stale frame through: delivered=%d drops=%d", delivered, rel.FencedDrops)
	}
	k.Shutdown()
}
