package flowctl

import (
	"fmt"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
	"hpcvorx/internal/trace"
)

// Reliable is the software error detection and recovery the early
// S/NET channel protocol carried (paper §4): every data message is
// checksummed and acknowledged; a corrupted arrival triggers a
// negative acknowledgement and retransmission, and a lost or damaged
// acknowledgement is covered by a sender timeout. The protocol is
// stop-and-wait, which is what makes recovery cheap: "the sending
// process blocks until the message was successfully received,
// eliminating the need for the kernel to make a copy of the message
// before sending it" — on a NAK or timeout the sender re-reads the
// user buffer it still holds. Receivers deduplicate by sequence
// number, so delivery is exactly-once.
type Reliable struct {
	k       *sim.Kernel
	nw      *snet.Network
	pending []*relPend
	userFns []func(m snet.Message)
	seq     int // per-instance sequence counter

	// AckTimeout is how long a sender waits for an acknowledgement
	// before retransmitting. NewReliable defaults it to 5 ms; adjust
	// before traffic flows.
	AckTimeout sim.Duration

	// Retransmissions counts NAK-triggered resends; Timeouts counts
	// resends after a lost or corrupted acknowledgement.
	Retransmissions int
	Timeouts        int
	// Delivered counts messages handed to receivers exactly once.
	Delivered int

	// Incarnation fencing (PR 6): every data frame is stamped with the
	// sending station's incarnation (boot count, starts at 1); a
	// receiver that has fenced a source at a higher floor drops stale
	// frames without acknowledging them, so a zombie sender cannot
	// complete a stop-and-wait exchange. incs is lazily sized; fences
	// maps (receiver, source) to the floor.
	incs   []uint32
	fences []map[int]uint32
	// FencedDrops counts data frames refused by an incarnation fence.
	FencedDrops int

	// Windowed (go-back-N) mode, off unless SetWindowConfig enables
	// it; see window.go. winSend/winRecv hold per-direction stream
	// state and stay nil in classic mode.
	wc      WindowConfig
	winSend map[[2]int]*gbnSend
	winRecv map[[2]int]*gbnRecv
	// Tracer, when set and enabled, counts coalesced and piggybacked
	// acks under "flowctl.acks.*".
	Tracer *trace.Tracer
	// AcksCoalesced counts in-order arrivals whose acknowledgement
	// rode a cumulative ack instead of getting its own; AcksPiggybacked
	// counts acks folded into reverse data traffic.
	AcksCoalesced   int
	AcksPiggybacked int
}

type relPend struct {
	seq    int
	result int // 0 pending, 1 acked, -1 nakked, 2 timed out
	wake   func()
}

type relData struct {
	seq  int
	inc  uint32 // sender incarnation at transmit time
	user any
}
type relAck struct {
	seq int
	ok  bool
}

const relAckBytes = 12

// NewReliable installs the protocol on every station of nw.
func NewReliable(k *sim.Kernel, nw *snet.Network) *Reliable {
	n := nw.Stations()
	r := &Reliable{
		k:          k,
		nw:         nw,
		pending:    make([]*relPend, n),
		userFns:    make([]func(m snet.Message), n),
		incs:       make([]uint32, n),
		fences:     make([]map[int]uint32, n),
		AckTimeout: 5 * sim.Millisecond,
	}
	for i := range r.incs {
		r.incs[i] = 1
	}
	for i := 0; i < n; i++ {
		i := i
		st := nw.Station(i)
		seen := map[int]bool{} // dedupe by seq (unique per Reliable instance)
		st.SetDeliver(func(m snet.Message) {
			switch b := m.Payload.(type) {
			case gbnData:
				r.recvWindowed(st, i, m, b)
			case gbnAck:
				if m.Corrupt {
					return // a damaged ack is garbage; timeout covers it
				}
				r.applyAck(i, m.Src, b.upTo)
			case relData:
				if fl := r.fences[i]; fl != nil {
					if min, ok := fl[m.Src]; ok && b.inc < min {
						// Stale incarnation: refuse silently. No ack means
						// the zombie's stop-and-wait never completes.
						r.FencedDrops++
						return
					}
				}
				if m.Corrupt {
					// Checksum failure: NAK, the sender will resend.
					r.sendCtl(st, m.Src, b.seq, false)
					return
				}
				if !seen[b.seq] {
					seen[b.seq] = true
					r.Delivered++
					if fn := r.userFns[i]; fn != nil {
						fn(snet.Message{Src: m.Src, Size: m.Size, Payload: b.user})
					}
				}
				r.sendCtl(st, m.Src, b.seq, true)
			case relAck:
				if m.Corrupt {
					return // a damaged ack is garbage; timeout covers it
				}
				pd := r.pending[i]
				if pd == nil || pd.seq != b.seq || pd.result != 0 {
					return // stale ack from a retransmission round
				}
				if b.ok {
					pd.result = 1
				} else {
					pd.result = -1
				}
				pd.wake()
			}
		})
		st.StartKernel()
	}
	return r
}

// sendCtl transmits an ACK/NAK from a short-lived kernel process (the
// drain loop must not block on the bus).
func (r *Reliable) sendCtl(st *snet.Station, to, seq int, ok bool) {
	r.k.Spawn("rel-ctl", func(p *sim.Proc) {
		for st.Send(p, to, relAckBytes, relAck{seq: seq, ok: ok}) != snet.Delivered {
			p.Sleep(50 * sim.Microsecond)
		}
	})
}

// SetDeliver installs the exactly-once receive callback for station i.
func (r *Reliable) SetDeliver(i int, fn func(m snet.Message)) { r.userFns[i] = fn }

// Incarnation returns station i's current incarnation (boot count).
func (r *Reliable) Incarnation(i int) uint32 { return r.incs[i] }

// BumpIncarnation models station i rebooting: subsequent frames it
// sends are stamped with the next incarnation.
func (r *Reliable) BumpIncarnation(i int) { r.incs[i]++ }

// Fence makes station at refuse data frames from src stamped below
// min. Fences only tighten; a lower min than the installed floor is a
// no-op.
func (r *Reliable) Fence(at, src int, min uint32) {
	if r.fences[at] == nil {
		r.fences[at] = make(map[int]uint32)
	}
	if r.fences[at][src] < min {
		r.fences[at][src] = min
	}
}

// Send reliably delivers one message: transmit, await the ACK; on NAK,
// timeout, or FIFO overflow retransmit from the still-intact user
// buffer. Returns the number of data transfers used. One outstanding
// Send per station at a time (stop-and-wait).
func (r *Reliable) Send(p *sim.Proc, src *snet.Station, dst, size int, payload any) int {
	if r.Windowed() {
		return r.sendWindowed(p, src, dst, size, payload)
	}
	r.seq++
	seq := r.seq
	transfers := 0
	// One pending record serves every retransmission round: an ack for
	// this seq is equally valid whichever transmission it answers (the
	// previous round's timer is stopped before the record is re-armed).
	pd := &relPend{seq: seq}
	for {
		transfers++
		for src.Send(p, dst, size, relData{seq: seq, inc: r.incs[src.ID()], user: payload}) != snet.Delivered {
			p.Sleep(100 * sim.Microsecond)
			transfers++
		}
		pd.result = 0
		pd.wake = p.Park(fmt.Sprintf("rel-ack %d", src.ID()))
		r.pending[src.ID()] = pd
		timer := r.k.After(r.AckTimeout, func() {
			if pd.result == 0 {
				pd.result = 2
				pd.wake()
			}
		})
		p.Block()
		timer.Stop()
		r.pending[src.ID()] = nil
		switch pd.result {
		case 1:
			return transfers
		case -1:
			r.Retransmissions++
		case 2:
			r.Timeouts++
		}
	}
}

// Name identifies the protocol in reports.
func (r *Reliable) Name() string {
	if r.Windowed() {
		return fmt.Sprintf("reliable-gbn-w%d", r.wc.Window)
	}
	return "reliable-stop-and-wait"
}
