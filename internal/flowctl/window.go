package flowctl

import (
	"fmt"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
)

// WindowConfig switches a Reliable instance from stop-and-wait to the
// pipelined go-back-N protocol: up to Window data messages per
// direction stay in flight, receivers acknowledge cumulatively (one
// ack covers every in-order seq up to it), acks are delayed so one can
// cover a run of arrivals, and a pending ack is piggybacked on reverse
// data traffic when any flows. The zero value (Window <= 1) keeps the
// classic protocol bit-for-bit.
type WindowConfig struct {
	// Window is the per-direction in-flight limit. <= 1 is classic
	// stop-and-wait.
	Window int
	// AckDelay is how long a receiver may sit on a cumulative ack
	// waiting for more arrivals (or reverse traffic to piggyback on).
	// SetWindowConfig defaults it to 100 µs when unset.
	AckDelay sim.Duration
	// AckBatch flushes the delayed ack once this many arrivals are
	// owed. SetWindowConfig defaults it to Window/2 (at least 1).
	AckBatch int
}

// SetWindowConfig enables the windowed protocol. Call before traffic
// flows; per-pair state is created lazily as streams start.
func (r *Reliable) SetWindowConfig(wc WindowConfig) {
	if wc.Window <= 1 {
		return
	}
	if wc.AckDelay <= 0 {
		wc.AckDelay = 100 * sim.Microsecond
	}
	if wc.AckBatch <= 0 {
		wc.AckBatch = wc.Window / 2
		if wc.AckBatch < 1 {
			wc.AckBatch = 1
		}
	}
	r.wc = wc
	r.winSend = make(map[[2]int]*gbnSend)
	r.winRecv = make(map[[2]int]*gbnRecv)
}

// Windowed reports whether the pipelined protocol is active.
func (r *Reliable) Windowed() bool { return r.wc.Window > 1 }

// gbnSend is one direction's sender state: seqs [base, next) are in
// flight, inflight[k] holding seq base+k. One writer proc per
// direction at a time (the same discipline classic Send imposes
// per station).
type gbnSend struct {
	base, next int
	inflight   []gbnItem
	timer      sim.Timer
	fullWake   func() // writer parked on a full window
	idleWake   func() // Drain waiter parked until all acked
	resending  bool   // a go-back-N round is on the wire
}

type gbnItem struct {
	size int
	user any
}

// gbnRecv is one direction's receiver state.
type gbnRecv struct {
	expected int // next in-order seq
	owed     int // in-order arrivals not yet covered by any ack
	armed    bool
	timer    sim.Timer
}

// Wire bodies. gbnData carries the reverse direction's cumulative ack
// when one was owed at transmit time (-1 otherwise); gbnAck is the
// standalone cumulative acknowledgement: every seq <= upTo arrived in
// order.
type gbnData struct {
	seq     int
	user    any
	ackUpTo int
}
type gbnAck struct{ upTo int }

func (r *Reliable) sendState(station, peer int) *gbnSend {
	key := [2]int{station, peer}
	gs := r.winSend[key]
	if gs == nil {
		gs = &gbnSend{}
		r.winSend[key] = gs
	}
	return gs
}

func (r *Reliable) recvState(station, peer int) *gbnRecv {
	key := [2]int{station, peer}
	gr := r.winRecv[key]
	if gr == nil {
		gr = &gbnRecv{}
		r.winRecv[key] = gr
	}
	return gr
}

// sendWindowed is Send under the go-back-N protocol: park while the
// window is full, then transmit and return without waiting for the
// ack — the window, not the RTT, is the brake.
func (r *Reliable) sendWindowed(p *sim.Proc, src *snet.Station, dst, size int, payload any) int {
	gs := r.sendState(src.ID(), dst)
	for gs.next-gs.base >= r.wc.Window {
		gs.fullWake = p.Park(fmt.Sprintf("gbn-window %d->%d", src.ID(), dst))
		p.Block()
	}
	seq := gs.next
	gs.next++
	gs.inflight = append(gs.inflight, gbnItem{size: size, user: payload})
	transfers := 1
	d := gbnData{seq: seq, user: payload, ackUpTo: r.takePiggyback(src.ID(), dst)}
	for src.Send(p, dst, size, d) != snet.Delivered {
		p.Sleep(100 * sim.Microsecond)
		transfers++
	}
	if !gs.timer.Pending() && !gs.resending && gs.next > gs.base {
		r.armWindowTimer(src, dst, gs)
	}
	return transfers
}

// Drain parks p until every windowed send from src to dst has been
// acknowledged. A no-op for streams that never started (or classic
// mode).
func (r *Reliable) Drain(p *sim.Proc, src *snet.Station, dst int) {
	if r.winSend == nil {
		return
	}
	gs := r.winSend[[2]int{src.ID(), dst}]
	if gs == nil {
		return
	}
	for gs.base < gs.next {
		gs.idleWake = p.Park(fmt.Sprintf("gbn-drain %d->%d", src.ID(), dst))
		p.Block()
	}
}

// armWindowTimer (re)arms the retransmit timeout covering the lowest
// unacked seq.
func (r *Reliable) armWindowTimer(src *snet.Station, dst int, gs *gbnSend) {
	gs.timer = r.k.After(r.AckTimeout, func() {
		if gs.base >= gs.next || gs.resending {
			return
		}
		r.Timeouts++
		r.goBackN(src, dst, gs)
	})
}

// goBackN retransmits everything in flight starting from the lowest
// unacked seq — the whole-window resend that makes a lost cumulative
// ack (or a dropped run of data) recoverable with no per-seq state.
//
// The whole-window burst at a fixed AckTimeout is safe HERE because a
// gbnSend covers one station pair with one small window: the resend
// rate is bounded by window/AckTimeout per pair and cannot compound.
// Do not copy this shape to a multiplexed path — when many logical
// streams share one lane, a fixed timeout below the loaded RTT turns
// whole-window resends into congestion collapse (duplicates crowd out
// fresh frames and the acks that would cancel them). vchan's
// retransFire is the multiplexed-scale discipline: head-only resend
// with exponential backoff, reset on ack progress.
func (r *Reliable) goBackN(src *snet.Station, dst int, gs *gbnSend) {
	gs.resending = true
	top := gs.next
	r.k.Spawn("gbn-resend", func(p *sim.Proc) {
		cursor := gs.base
		for cursor < top {
			if cursor < gs.base {
				cursor = gs.base // acks advanced past us mid-round
				continue
			}
			off := cursor - gs.base
			if off >= len(gs.inflight) {
				break
			}
			it := gs.inflight[off]
			r.Retransmissions++
			d := gbnData{seq: cursor, user: it.user, ackUpTo: r.takePiggyback(src.ID(), dst)}
			for src.Send(p, dst, it.size, d) != snet.Delivered {
				p.Sleep(100 * sim.Microsecond)
			}
			cursor++
		}
		gs.resending = false
		if gs.base < gs.next {
			r.armWindowTimer(src, dst, gs)
		}
	})
}

// applyAck advances sender state (station -> peer) through a
// cumulative ack: drop every in-flight item with seq <= upTo, wake a
// window-blocked writer and, when the stream runs dry, the Drain
// waiter.
func (r *Reliable) applyAck(station, peer, upTo int) {
	if r.winSend == nil {
		return
	}
	gs := r.winSend[[2]int{station, peer}]
	if gs == nil || upTo < gs.base {
		return
	}
	n := upTo - gs.base + 1
	if n > len(gs.inflight) {
		n = len(gs.inflight)
	}
	// Copy-shift so the slice keeps its capacity and drops payload refs.
	copy(gs.inflight, gs.inflight[n:])
	for i := len(gs.inflight) - n; i < len(gs.inflight); i++ {
		gs.inflight[i] = gbnItem{}
	}
	gs.inflight = gs.inflight[:len(gs.inflight)-n]
	gs.base += n
	gs.timer.Stop()
	if gs.base < gs.next && !gs.resending {
		r.armWindowTimer(r.nw.Station(station), peer, gs)
	}
	if gs.fullWake != nil && gs.next-gs.base < r.wc.Window {
		w := gs.fullWake
		gs.fullWake = nil
		w()
	}
	if gs.base >= gs.next && gs.idleWake != nil {
		w := gs.idleWake
		gs.idleWake = nil
		w()
	}
}

// recvWindowed handles an arriving gbnData on station i: fold in any
// piggybacked reverse ack, deliver in order exactly once, and either
// delay the cumulative ack (coalescing) or — on a duplicate, a gap, or
// a checksum failure — re-assert the stream position immediately so
// the sender can go back.
func (r *Reliable) recvWindowed(st *snet.Station, i int, m snet.Message, d gbnData) {
	if d.ackUpTo >= 0 && !m.Corrupt {
		r.applyAck(i, m.Src, d.ackUpTo)
	}
	gr := r.recvState(i, m.Src)
	if m.Corrupt {
		// Checksum failure: the immediate cumulative ack is the NAK
		// equivalent — it tells the sender exactly where the in-order
		// stream stands.
		r.flushAck(st, i, m.Src, gr)
		return
	}
	if d.seq == gr.expected {
		gr.expected++
		gr.owed++
		r.Delivered++
		if fn := r.userFns[i]; fn != nil {
			fn(snet.Message{Src: m.Src, Size: m.Size, Payload: d.user})
		}
		if gr.owed >= r.wc.AckBatch {
			r.flushAck(st, i, m.Src, gr)
		} else if !gr.armed {
			gr.armed = true
			gr.timer = r.k.After(r.wc.AckDelay, func() {
				r.flushAck(st, i, m.Src, gr)
			})
		}
		return
	}
	// Duplicate (a go-back-N round re-covering old ground) or a gap
	// (something ahead of a loss): both answered with the current
	// cumulative position, immediately.
	r.flushAck(st, i, m.Src, gr)
}

// flushAck transmits the cumulative ack for everything received in
// order so far and accounts for how many arrivals it covered.
func (r *Reliable) flushAck(st *snet.Station, station, peer int, gr *gbnRecv) {
	gr.timer.Stop()
	gr.armed = false
	r.noteCoalesced(gr)
	upTo := gr.expected - 1
	r.k.Spawn("gbn-ack", func(p *sim.Proc) {
		for st.Send(p, peer, relAckBytes, gbnAck{upTo: upTo}) != snet.Delivered {
			p.Sleep(50 * sim.Microsecond)
		}
	})
}

// takePiggyback consumes a pending delayed ack owed to peer, returning
// the cumulative position to fold into an outgoing data message, or -1
// when nothing is owed.
func (r *Reliable) takePiggyback(station, peer int) int {
	if r.winRecv == nil {
		return -1
	}
	gr := r.winRecv[[2]int{station, peer}]
	if gr == nil || (!gr.armed && gr.owed == 0) {
		return -1
	}
	gr.timer.Stop()
	gr.armed = false
	r.noteCoalesced(gr)
	r.AcksPiggybacked++
	if tr := r.Tracer; tr.Enabled() {
		tr.Count("flowctl.acks.piggyback", 1)
	}
	return gr.expected - 1
}

// noteCoalesced charges the coalescing counters for an ack about to be
// emitted: every owed arrival beyond the first rode along for free.
func (r *Reliable) noteCoalesced(gr *gbnRecv) {
	if gr.owed > 1 {
		r.AcksCoalesced += gr.owed - 1
		if tr := r.Tracer; tr.Enabled() {
			tr.Count("flowctl.acks.coalesced", float64(gr.owed-1))
		}
	}
	gr.owed = 0
}
