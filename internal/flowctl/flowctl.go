// Package flowctl implements the sender recovery strategies that
// paper §2 evaluates for S/NET FIFO overflow:
//
//   - SpinRetry: continuously resend until accepted — the original
//     Meglos plan. Under many-to-one traffic with long messages it
//     livelocks: every retry deposits a junk fragment the receiver
//     must read and discard, so room for a whole message never opens.
//   - RandomBackoff: Ethernet-style randomized waiting. It breaks the
//     livelock but "communications runs at the timeout rate; at least
//     an order of magnitude slower".
//   - Reservation: a request/grant protocol that authorizes one sender
//     at a time. It eliminates overflow but adds software and bus
//     overhead to *every* message — the reason the paper rejected it.
//
// The HPC needs none of these: its hardware flow control refuses a
// message until buffer room exists (see package hpc).
package flowctl

import (
	"fmt"

	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
	"hpcvorx/internal/trace"
)

// Strategy reliably delivers messages over an S/NET, recovering from
// FIFO overflow in its own way.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Send blocks p until the message has been accepted by dst's
	// FIFO, and returns the number of bus transfers used (1 = no
	// retries; reservation counts its control messages).
	Send(p *sim.Proc, src *snet.Station, dst, size int, payload any) int
}

// SpinRetry resends immediately on every fifo-full signal.
type SpinRetry struct {
	// Turnaround is the kernel cost to field the fifo-full signal and
	// reissue the transfer (defaults to 30 µs when zero).
	Turnaround sim.Duration
	// MaxAttempts, when positive, bounds the retry loop so that
	// livelocked experiments terminate; 0 means retry forever.
	MaxAttempts int
	// GaveUp counts sends abandoned at MaxAttempts.
	GaveUp int
	// Tracer, when set and enabled, records each retry as a KFlow
	// event and counts retries under "flowctl.spin.retries".
	Tracer *trace.Tracer
}

// Name implements Strategy.
func (s *SpinRetry) Name() string { return "spin-retry" }

// Send implements Strategy.
func (s *SpinRetry) Send(p *sim.Proc, src *snet.Station, dst, size int, payload any) int {
	attempts := 0
	for {
		attempts++
		if src.Send(p, dst, size, payload) == snet.Delivered {
			return attempts
		}
		if s.MaxAttempts > 0 && attempts >= s.MaxAttempts {
			s.GaveUp++
			s.Tracer.Emit(trace.KFlow, 0, "snet", "flowctl", fmt.Sprintf("spin gave-up dst=%d after %d", dst, attempts))
			return attempts
		}
		if tr := s.Tracer; tr.Enabled() {
			tr.Emit(trace.KFlow, 0, "snet", "flowctl", fmt.Sprintf("spin retry dst=%d attempt=%d", dst, attempts))
			tr.Count("flowctl.spin.retries", 1)
		}
		ta := s.Turnaround
		if ta == 0 {
			ta = 30 * sim.Microsecond
		}
		p.Sleep(ta)
	}
}

// RandomBackoff waits a uniformly random interval in (0, Max] after
// each rejection before retrying.
type RandomBackoff struct {
	// Max is the maximum backoff. The paper's observation is that
	// throughput degenerates to the timeout rate, so Max directly
	// sets the many-to-one bandwidth.
	Max sim.Duration
	// Tracer, when set and enabled, records each backoff wait as a
	// KFlow event and counts them under "flowctl.backoff.waits".
	Tracer *trace.Tracer
}

// Name implements Strategy.
func (b *RandomBackoff) Name() string { return "random-backoff" }

// Send implements Strategy.
func (b *RandomBackoff) Send(p *sim.Proc, src *snet.Station, dst, size int, payload any) int {
	attempts := 0
	for {
		attempts++
		if src.Send(p, dst, size, payload) == snet.Delivered {
			return attempts
		}
		max := int64(b.Max)
		if max <= 0 {
			max = int64(sim.Millisecond)
		}
		wait := sim.Duration(1 + p.Kernel().Rand().Int63n(max))
		if tr := b.Tracer; tr.Enabled() {
			tr.Emit(trace.KFlow, 0, "snet", "flowctl", fmt.Sprintf("backoff dst=%d wait=%v", dst, wait))
			tr.Count("flowctl.backoff.waits", 1)
		}
		p.Sleep(wait)
	}
}

// Control message sizes for the reservation protocol.
const (
	rtsBytes = 16
	ctsBytes = 8
)

type rtsMsg struct{ src int }
type ctsMsg struct{}
type dataMsg struct {
	payload any
	user    func(m snet.Message)
}

// Reservation runs a request-to-send / clear-to-send protocol over the
// S/NET. One Reservation instance owns the whole network: it installs
// a demultiplexing deliver handler and a grant-manager process on
// every station. Construct it before spawning application processes.
type Reservation struct {
	nw *snet.Network
	// per-station state
	reqs    []*sim.Queue[int] // pending RTS sources at each receiver
	grants  []*sim.Cond       // receiver manager wakes when data arrives
	cts     []*sim.Cond       // sender wakes when its CTS arrives
	userFns []func(m snet.Message)
	tracer  *trace.Tracer
}

// SetTracer installs the unified event tracer: RTS, CTS waits, and
// data sends become KFlow events under the "snet"/"flowctl" lane.
func (r *Reservation) SetTracer(t *trace.Tracer) { r.tracer = t }

// NewReservation wires the protocol onto every station of nw and
// starts the per-station grant managers and drain kernels.
func NewReservation(k *sim.Kernel, nw *snet.Network) *Reservation {
	n := nw.Stations()
	r := &Reservation{
		nw:      nw,
		reqs:    make([]*sim.Queue[int], n),
		grants:  make([]*sim.Cond, n),
		cts:     make([]*sim.Cond, n),
		userFns: make([]func(m snet.Message), n),
	}
	for i := 0; i < n; i++ {
		i := i
		r.reqs[i] = sim.NewQueue[int](k, fmt.Sprintf("rsv-req%d", i), 0)
		r.grants[i] = sim.NewCond(k, fmt.Sprintf("rsv-grant%d", i))
		r.cts[i] = sim.NewCond(k, fmt.Sprintf("rsv-cts%d", i))
		st := nw.Station(i)
		st.SetDeliver(func(m snet.Message) {
			switch c := m.Payload.(type) {
			case rtsMsg:
				r.reqs[i].TryPut(c.src)
			case ctsMsg:
				r.cts[i].Signal()
			case dataMsg:
				if c.user != nil {
					c.user(snet.Message{Src: m.Src, Size: m.Size, Payload: c.payload})
				}
				r.grants[i].Signal()
			}
		})
		st.StartKernel()
		mgr := k.Spawn(fmt.Sprintf("rsv-mgr%d", i), func(p *sim.Proc) {
			for {
				src := r.reqs[i].Get(p)
				// Authorize exactly one sender at a time.
				for st.Send(p, src, ctsBytes, ctsMsg{}) != snet.Delivered {
					p.Sleep(10 * sim.Microsecond)
				}
				r.grants[i].Wait(p) // until the data message lands
			}
		})
		mgr.SetDaemon(true)
	}
	return r
}

// SetDeliver installs the user-level receive callback for station i.
func (r *Reservation) SetDeliver(i int, fn func(m snet.Message)) {
	r.userFns[i] = fn
}

// Name implements Strategy.
func (r *Reservation) Name() string { return "reservation" }

// Send implements Strategy: RTS, wait for CTS, then send the data.
func (r *Reservation) Send(p *sim.Proc, src *snet.Station, dst, size int, payload any) int {
	transfers := 0
	// The RTS itself is small; the protocol invariant (FIFO holds one
	// data message plus an RTS from every processor) means it always
	// fits, but retry defensively.
	r.tracer.Emit(trace.KFlow, 0, "snet", "flowctl", fmt.Sprintf("rts %d->%d", src.ID(), dst))
	for {
		transfers++
		if src.Send(p, dst, rtsBytes, rtsMsg{src: src.ID()}) == snet.Delivered {
			break
		}
		p.Sleep(10 * sim.Microsecond)
	}
	r.cts[src.ID()].Wait(p)
	r.tracer.Emit(trace.KFlow, 0, "snet", "flowctl", fmt.Sprintf("cts %d<-%d", src.ID(), dst))
	for {
		transfers++
		if src.Send(p, dst, size, dataMsg{payload: payload, user: r.userFns[dst]}) == snet.Delivered {
			return transfers
		}
		// Cannot happen when the invariant holds; be safe anyway.
		p.Sleep(10 * sim.Microsecond)
	}
}
