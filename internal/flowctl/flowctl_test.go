package flowctl

import (
	"fmt"
	"testing"

	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
)

// runManyToOne has nSenders stations stream msgs messages of size bytes
// each at station 0 using the given strategy, with the run bounded by
// horizon. It returns the number delivered and the finish time.
func runManyToOne(t *testing.T, strat func(k *sim.Kernel, nw *snet.Network) Strategy,
	nSenders, msgs, size int, horizon sim.Duration) (delivered int, elapsed sim.Time) {
	t.Helper()
	k := sim.NewKernel(7)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), nSenders+1)
	s := strat(k, nw)
	if _, isRes := s.(*Reservation); !isRes {
		nw.Station(0).SetDeliver(func(m snet.Message) { delivered++ })
		nw.Station(0).StartKernel()
	} else {
		s.(*Reservation).SetDeliver(0, func(m snet.Message) { delivered++ })
	}
	var done sim.WaitGroup
	done.Add(nSenders)
	var last sim.Time
	for i := 1; i <= nSenders; i++ {
		i := i
		k.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			for j := 0; j < msgs; j++ {
				s.Send(p, nw.Station(i), 0, size, nil)
			}
			last = p.Now()
			done.Done()
		})
	}
	k.RunFor(horizon)
	k.Shutdown()
	return delivered, last
}

func TestSpinRetryLockoutOnLongMessages(t *testing.T) {
	// Paper §2: with several processors continuously resending long
	// messages, "some of the messages were never received" — the
	// receiver cannot free room for an entire message before the next
	// arrives. Expect essentially no deliveries after the initial
	// FIFO fill.
	delivered, _ := runManyToOne(t,
		func(k *sim.Kernel, nw *snet.Network) Strategy { return &SpinRetry{} },
		6, 50, 1000, sim.Seconds(1))
	// 6*50 = 300 offered; the first two fit in the 2048-byte FIFO,
	// a few more may squeak through at startup, then lockout.
	if delivered > 10 {
		t.Fatalf("delivered = %d; lockout should stall many-to-one spin retry", delivered)
	}
}

func TestSpinRetryFineForShortBursts(t *testing.T) {
	// 12 senders × 150 bytes — the Meglos workaround. Everything
	// arrives promptly with plain spin retry.
	delivered, _ := runManyToOne(t,
		func(k *sim.Kernel, nw *snet.Network) Strategy { return &SpinRetry{} },
		12, 1, 150, sim.Seconds(1))
	if delivered != 12 {
		t.Fatalf("delivered = %d, want 12", delivered)
	}
}

func TestRandomBackoffBreaksLockoutButSlowly(t *testing.T) {
	// Backoff must make progress where spin retry livelocks...
	const horizon = 4 * 1000 // ms
	deliveredBackoff, lastB := runManyToOne(t,
		func(k *sim.Kernel, nw *snet.Network) Strategy {
			return &RandomBackoff{Max: sim.Milliseconds(3)}
		},
		6, 10, 1000, sim.Seconds(4))
	if deliveredBackoff != 60 {
		t.Fatalf("backoff delivered = %d, want all 60", deliveredBackoff)
	}
	// ...but slowly: effective per-message time sits far above the
	// ~105 µs an uncontended bus transfer takes, because retries pace
	// at the timeout rate (the benchmark harness reports the exact
	// ratio for experiment E6).
	perMsg := lastB.Sub(0).Microseconds() / 60
	if perMsg < 500 {
		t.Fatalf("backoff per-message time %.0f µs — too fast to be timeout-dominated", perMsg)
	}
	_ = horizon
}

func TestReservationEliminatesOverflow(t *testing.T) {
	k := sim.NewKernel(9)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 7)
	res := NewReservation(k, nw)
	delivered := 0
	res.SetDeliver(0, func(m snet.Message) { delivered++ })
	rejectedBefore := nw.Stats().Rejected
	for i := 1; i <= 6; i++ {
		i := i
		k.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			for j := 0; j < 10; j++ {
				res.Send(p, nw.Station(i), 0, 1000, nil)
			}
		})
	}
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	if delivered != 60 {
		t.Fatalf("delivered = %d, want 60", delivered)
	}
	if nw.Stats().Rejected != rejectedBefore {
		t.Fatalf("reservation produced %d rejects; overflow should be impossible",
			nw.Stats().Rejected-rejectedBefore)
	}
}

func TestReservationAddsLatencyToUncontendedSends(t *testing.T) {
	// Paper §2 rejected reservation because "the extra software and
	// communications overhead would increase latency for all
	// messages". Compare one uncontended 1000-byte send under spin
	// retry (= raw transfer) vs reservation.
	measure := func(strat func(k *sim.Kernel, nw *snet.Network) Strategy) sim.Time {
		k := sim.NewKernel(3)
		nw := snet.NewNetwork(k, m68k.DefaultCosts(), 2)
		s := strat(k, nw)
		var arrived sim.Time
		if res, ok := s.(*Reservation); ok {
			res.SetDeliver(0, func(m snet.Message) { arrived = k.Now() })
		} else {
			nw.Station(0).SetDeliver(func(m snet.Message) { arrived = k.Now() })
			nw.Station(0).StartKernel()
		}
		k.Spawn("s", func(p *sim.Proc) { s.Send(p, nw.Station(1), 0, 1000, nil) })
		k.RunFor(sim.Seconds(1))
		k.Shutdown()
		return arrived
	}
	plain := measure(func(k *sim.Kernel, nw *snet.Network) Strategy { return &SpinRetry{} })
	reserved := measure(func(k *sim.Kernel, nw *snet.Network) Strategy { return NewReservation(k, nw) })
	if reserved <= plain {
		t.Fatalf("reservation latency %v not above plain %v", reserved, plain)
	}
	if reserved < plain+sim.Time(sim.Microseconds(100)) {
		t.Fatalf("reservation overhead suspiciously small: %v vs %v", reserved, plain)
	}
}

func TestSpinRetryMaxAttempts(t *testing.T) {
	k := sim.NewKernel(3)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 3)
	// No drain at station 0: after the FIFO fills, every send rejects.
	s := &SpinRetry{MaxAttempts: 5}
	k.Spawn("s", func(p *sim.Proc) {
		nw.Station(1).Send(p, 0, 2000, nil) // fill the FIFO
		attempts := s.Send(p, nw.Station(1), 0, 1000, nil)
		if attempts != 5 {
			t.Errorf("attempts = %d, want 5", attempts)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.GaveUp != 1 {
		t.Fatalf("GaveUp = %d", s.GaveUp)
	}
}

func TestStrategyNames(t *testing.T) {
	if (&SpinRetry{}).Name() != "spin-retry" {
		t.Error("spin name")
	}
	if (&RandomBackoff{}).Name() != "random-backoff" {
		t.Error("backoff name")
	}
	k := sim.NewKernel(1)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), 1)
	if NewReservation(k, nw).Name() != "reservation" {
		t.Error("reservation name")
	}
}
