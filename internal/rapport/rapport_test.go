package rapport_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/rapport"
	"hpcvorx/internal/sim"
)

func newConf(t *testing.T, hosts int) (*core.System, *rapport.Conference) {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: hosts, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys, rapport.New(sys, sys.Node(0), "conf")
}

// conferee joins, speaks and listens for `frames` frames, then leaves.
func conferee(sys *core.System, c *rapport.Conference, m *core.Machine, name string,
	startDelay sim.Duration, frames int, got *[]rapport.Frame, errs *[]error) {
	sys.Spawn(m, name, 0, func(sp *kern.Subprocess) {
		sp.SleepFor(startDelay)
		mem, err := c.Join(sp, m)
		if err != nil {
			*errs = append(*errs, err)
			return
		}
		for f := 0; f < frames; f++ {
			if err := mem.Speak(sp); err != nil {
				*errs = append(*errs, err)
				return
			}
			fr, err := mem.Listen(sp)
			if err != nil {
				*errs = append(*errs, err)
				return
			}
			*got = append(*got, fr)
		}
		mem.Leave(sp)
	})
}

func TestThreeWayConference(t *testing.T) {
	sys, c := newConf(t, 3)
	got := make([][]rapport.Frame, 3)
	var errs []error
	for i := 0; i < 3; i++ {
		conferee(sys, c, sys.Host(i), fmt.Sprintf("conf%d", i), 0, 10, &got[i], &errs)
	}
	sys.RunFor(sim.Seconds(5))
	sys.Shutdown()
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	for i := 0; i < 3; i++ {
		if len(got[i]) != 10 {
			t.Fatalf("conferee %d heard %d frames", i, len(got[i]))
		}
	}
	// Steady-state mixes should combine all three voices.
	last := got[0][len(got[0])-1]
	if last.Sources != 3 {
		t.Fatalf("final mix had %d sources, want 3", last.Sources)
	}
	if c.PeakMembers != 3 {
		t.Fatalf("peak members = %d", c.PeakMembers)
	}
}

func TestLateJoinerHearsSubsequentMixes(t *testing.T) {
	sys, c := newConf(t, 2)
	var early, late []rapport.Frame
	var errs []error
	conferee(sys, c, sys.Host(0), "early", 0, 12, &early, &errs)
	conferee(sys, c, sys.Host(1), "late", 300*sim.Millisecond, 4, &late, &errs)
	sys.RunFor(sim.Seconds(5))
	sys.Shutdown()
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(late) != 4 {
		t.Fatalf("late joiner heard %d frames", len(late))
	}
	// The late joiner's first frame must be a later sequence number
	// than the conference's first.
	if late[0].Seq <= early[0].Seq {
		t.Fatalf("late joiner got seq %d, early starter seq %d", late[0].Seq, early[0].Seq)
	}
}

func TestLeaverStopsAffectingMix(t *testing.T) {
	sys, c := newConf(t, 2)
	var stay, leave []rapport.Frame
	var errs []error
	conferee(sys, c, sys.Host(0), "stayer", 0, 14, &stay, &errs)
	conferee(sys, c, sys.Host(1), "leaver", 0, 4, &leave, &errs)
	sys.RunFor(sim.Seconds(5))
	sys.Shutdown()
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(stay) != 14 {
		t.Fatalf("stayer heard %d frames", len(stay))
	}
	// After the leaver departs, mixes drop to one source.
	last := stay[len(stay)-1]
	if last.Sources != 1 {
		t.Fatalf("final mix sources = %d, want 1 after leave", last.Sources)
	}
	if c.Members() != 0 {
		t.Fatalf("members after run = %d", c.Members())
	}
}

func TestRealTimeCadence(t *testing.T) {
	// The mix must be produced at the frame period, not drift: N
	// frames take ~N periods end to end.
	sys, c := newConf(t, 2)
	var got []rapport.Frame
	var errs []error
	const frames = 20
	conferee(sys, c, sys.Host(0), "a", 0, frames, &got, &errs)
	var g2 []rapport.Frame
	conferee(sys, c, sys.Host(1), "b", 0, frames, &g2, &errs)
	sys.RunFor(sim.Seconds(10))
	end := sys.K.Now()
	sys.Shutdown()
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	_ = end
	if len(got) != frames {
		t.Fatalf("heard %d frames", len(got))
	}
	// Sequence numbers advance by ~1 per period: no starvation gaps.
	span := got[len(got)-1].Seq - got[0].Seq
	if span < frames-1 || span > frames+3 {
		t.Fatalf("sequence span %d over %d frames — cadence drift", span, frames)
	}
}

func TestMixerOnNodeConfereesOnHosts(t *testing.T) {
	// The LAM property: one application spanning the node pool and
	// the workstations.
	sys, c := newConf(t, 2)
	var got []rapport.Frame
	var errs []error
	conferee(sys, c, sys.Host(0), "ws", 0, 3, &got, &errs)
	sys.RunFor(sim.Seconds(3))
	sys.Shutdown()
	if len(errs) > 0 || len(got) != 3 {
		t.Fatalf("frames=%d errs=%v", len(got), errs)
	}
	if c.Mixed < 3 {
		t.Fatalf("mixed = %d", c.Mixed)
	}
}
