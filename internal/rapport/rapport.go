// Package rapport is the multimedia conferencing substrate the paper
// opens with: "Applications implemented on HPC/VORX range from the
// Rapport multimedia conferencing system to several circuit
// simulators" (§1). HPC/VORX made it possible because workstations
// get the same high-performance communications as the node pool —
// "real-time video and high-fidelity audio transmission between
// conferees".
//
// A Conference runs its mixer on a processing node. Conferees on host
// workstations Join dynamically over channels; every frame period the
// mixer combines the uplinks it has and distributes the mix to each
// member with multiple writes (§4.2's pattern for few receivers).
// Members can Leave at any time; late joiners start receiving from
// the next mix.
package rapport

import (
	"fmt"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// Frame parameters: 8 kHz µ-law audio in frame-period packets.
const (
	// FrameBytes is one audio frame's payload.
	FrameBytes = 512
	// ctlBytes is a control message's wire size.
	ctlBytes = 48
)

// FramePeriod is the real-time frame cadence.
var FramePeriod = 64 * sim.Millisecond

// MixPerByte is the mixer's per-byte cost to sum one conferee's frame
// into the mix.
var MixPerByte = sim.Microseconds(0.28)

type joinMsg struct{ id int }
type leaveMsg struct{ id int }

// Frame is a mixed audio frame delivered to a member.
type Frame struct {
	Seq     int
	Sources int // conferee frames mixed in
}

// Conference is a running conference.
type Conference struct {
	sys   *core.System
	node  *core.Machine
	name  string
	alive bool

	members map[int]*session
	nextID  int

	// Mixed counts frames produced; PeakMembers tracks the largest
	// simultaneous membership.
	Mixed       int
	PeakMembers int
}

// session is the mixer-side state for one conferee.
type session struct {
	id       int
	up, down *channels.Channel
	// latest uplink frame for the current period, if any
	have bool
	gone bool
}

// New starts a conference mixer on the given processing node. The
// name is the rendezvous prefix conferees Join with.
func New(sys *core.System, node *core.Machine, name string) *Conference {
	c := &Conference{sys: sys, node: node, name: name, members: map[int]*session{}, alive: true}

	// Control subprocess: admits joiners forever (Serve reuse, §4).
	ctl := sys.Spawn(node, "rapport-ctl", 1, func(sp *kern.Subprocess) {
		for {
			ch := node.Chans.Open(sp, c.ctlName(), objmgr.Serve)
			m, ok := ch.Read(sp)
			if !ok {
				return
			}
			_ = m
			id := c.nextID
			c.nextID++
			if ch.Write(sp, ctlBytes, joinMsg{id: id}) != nil {
				return
			}
			// Media channels for this member.
			s := &session{id: id}
			s.up = node.Chans.Open(sp, c.upName(id), objmgr.Serve)
			s.down = node.Chans.Open(sp, c.downName(id), objmgr.Serve)
			c.members[id] = s
			if len(c.members) > c.PeakMembers {
				c.PeakMembers = len(c.members)
			}
			// Per-member pump: drains the uplink into the mix slot.
			pump := sys.Spawn(node, fmt.Sprintf("rapport-pump%d", id), 1, func(psp *kern.Subprocess) {
				for {
					m, ok := s.up.Read(psp)
					if !ok {
						return
					}
					if _, isLeave := m.Payload.(leaveMsg); isLeave {
						s.gone = true
						return
					}
					s.have = true
				}
			})
			pump.Proc().SetDaemon(true)
		}
	})
	ctl.Proc().SetDaemon(true)

	// The mixer: every frame period, mix whatever arrived and send it
	// to every member — multiple writes, not multicast, because the
	// receiver set is small and dynamic.
	mixer := sys.Spawn(node, "rapport-mixer", 1, func(sp *kern.Subprocess) {
		for seq := 0; ; seq++ {
			sp.SleepFor(FramePeriod)
			sources := 0
			for id, s := range c.members {
				if s.gone {
					delete(c.members, id)
					continue
				}
				if s.have {
					sources++
					s.have = false
					sp.Compute(sim.Duration(FrameBytes) * MixPerByte)
				}
			}
			if sources == 0 {
				continue
			}
			c.Mixed++
			for _, s := range sortedSessions(c.members) {
				if err := s.down.Write(sp, FrameBytes, Frame{Seq: seq, Sources: sources}); err != nil {
					s.gone = true
				}
			}
		}
	})
	mixer.Proc().SetDaemon(true)
	return c
}

// sortedSessions returns sessions in id order for determinism.
func sortedSessions(m map[int]*session) []*session {
	max := -1
	for id := range m {
		if id > max {
			max = id
		}
	}
	out := make([]*session, 0, len(m))
	for id := 0; id <= max; id++ {
		if s, ok := m[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

func (c *Conference) ctlName() string        { return c.name + ".ctl" }
func (c *Conference) upName(id int) string   { return fmt.Sprintf("%s.up.%d", c.name, id) }
func (c *Conference) downName(id int) string { return fmt.Sprintf("%s.dn.%d", c.name, id) }

// Members returns the current membership count.
func (c *Conference) Members() int { return len(c.members) }

// Member is a conferee's handle.
type Member struct {
	conf     *Conference
	m        *core.Machine
	id       int
	up, down *channels.Channel
	left     bool
}

// Join admits a conferee running on machine m (typically a host
// workstation). Blocks until the mixer accepts.
func (c *Conference) Join(sp *kern.Subprocess, m *core.Machine) (*Member, error) {
	ctl := m.Chans.Open(sp, c.ctlName(), objmgr.Connect)
	if err := ctl.Write(sp, ctlBytes, "join"); err != nil {
		return nil, err
	}
	rep, ok := ctl.Read(sp)
	if !ok {
		return nil, fmt.Errorf("rapport: join refused")
	}
	id := rep.Payload.(joinMsg).id
	mem := &Member{conf: c, m: m, id: id}
	mem.up = m.Chans.Open(sp, c.upName(id), objmgr.Connect)
	mem.down = m.Chans.Open(sp, c.downName(id), objmgr.Connect)
	ctl.Close(sp)
	return mem, nil
}

// ID returns the member's conference id.
func (mem *Member) ID() int { return mem.id }

// Speak sends one captured audio frame to the mixer.
func (mem *Member) Speak(sp *kern.Subprocess) error {
	if mem.left {
		return fmt.Errorf("rapport: member %d left", mem.id)
	}
	return mem.up.Write(sp, FrameBytes, fmt.Sprintf("voice-%d", mem.id))
}

// Listen blocks until the next mixed frame arrives.
func (mem *Member) Listen(sp *kern.Subprocess) (Frame, error) {
	m, ok := mem.down.Read(sp)
	if !ok {
		return Frame{}, fmt.Errorf("rapport: downlink closed")
	}
	return m.Payload.(Frame), nil
}

// Leave exits the conference.
func (mem *Member) Leave(sp *kern.Subprocess) {
	if mem.left {
		return
	}
	mem.left = true
	mem.up.Write(sp, ctlBytes, leaveMsg{id: mem.id})
}
