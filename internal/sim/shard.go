package sim

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Sharded virtual time: a Group couples N kernels (shards), each with
// its own event heap and virtual clock, and runs them on their own OS
// threads under conservative (Chandy-Misra-Bryant style) synchronization.
//
// The contract with the model layer is a single primitive: an event
// running on shard s may Post a callback to shard d, but only at a
// timestamp at least look(s,d) beyond s's current clock, where
// look(s,d) is the group's per-pair lookahead matrix. The lookahead is
// physical: in the HPC cost model every cross-cluster signal rides
// cube hops that cost at minimum HopFixed each (plus 0.05 µs/byte of
// wire time), so shards whose clusters sit k links apart can promise
// k hops of slack — a shard's present can never influence a distant
// neighbor's near future. That bound is what lets a shard dispatch
// ahead without ever having to roll back.
//
// Safety ("no event from the future"): shard d only dispatches an
// event at time t when t < safe(d), where safe(d) is the maximum of
// two independent lower bounds on every future cross-shard arrival:
//
//   - per-pair horizons: each shard s announces
//     H(s→d) = min(next dispatch time of s) + look(s,d), the classic
//     null-message promise. Announcements are batched: a shard
//     publishes only when its dispatch floor has advanced at least one
//     minimum-lookahead quantum since the last announcement (and
//     always on the edge of going idle), and a raise wakes the peer
//     only when it can actually unblock it — the peer is parked and
//     its published front lies below the new promise.
//   - the global floor: G + look_in(d), where G is the minimum
//     timestamp of any undispatched event anywhere (local heaps,
//     staged crosses, and in-flight mailbox entries) and look_in(d)
//     is the smallest lookahead of any pair arriving at d. Anything
//     posted in the future originates from a dispatch at ≥ G, so it
//     lands at ≥ G + look_in(d) — the last edge of any causal chain
//     alone funds the bound. The floor is what makes progress
//     unconditional: the shard holding the globally-earliest event
//     always finds G + look_in > G and can dispatch it, so the horizon
//     exchange can never deadlock or creep in lookahead-sized steps.
//
// Determinism: cross-shard events are merged not in wall-clock arrival
// order but by the total key (at, source shard, per-pair sequence),
// and at equal timestamps staged crosses dispatch before local events.
// Every run of the same program therefore dispatches the same events
// in the same order on every shard, regardless of GOMAXPROCS or
// scheduling jitter. The lookahead matrix and the batched horizon
// protocol change only when synchronization happens, never what order
// events dispatch in.
type Group struct {
	kernels []*Kernel
	n       int
	// look[s][d] is the pairwise promise; minLook the smallest
	// off-diagonal entry (the announcement quantum); lookTo[d] the
	// column minimum funding d's global-floor bound.
	look    [][]Duration
	minLook Duration
	lookTo  []Duration

	// mail[s][d] is the bounded SPSC mailbox from shard s to shard d
	// (nil on the diagonal). staging[d] is the receive-side merge heap,
	// touched only by shard d's loop.
	mail    [][]*mailbox
	staging []crossHeap

	// localMin[i] is shard i's published earliest undispatched event
	// (its heap/now-queue front or staged cross), MaxInt64 when none.
	// Together with the mailboxes' minPending these define G.
	localMin []atomic.Int64
	// horizon[s*n+d] is H(s→d): shard s's promise that no future post
	// to d arrives before it.
	horizon []atomic.Int64

	wake []chan struct{}

	stopFlag atomic.Bool

	// Idle flags are atomics read lock-free by notifiers: a shard that
	// publishes new state (horizon raise, localMin raise, post) only
	// wakes peers currently parked in select. The handshake is sound
	// because enterIdle sets the flag and then re-checks for work under
	// detMu: either the re-check sees the notifier's store, or the
	// store came later and the notifier sees the flag.
	detMu    sync.Mutex
	idle     []atomic.Bool
	nIdle    int
	finished bool
	done     chan struct{}

	// Cross-traffic accounting, owned by the respective shard loops and
	// read only after a run joins.
	posted     []uint64
	dispatched []uint64

	// Synchronization-layer accounting (the sim.sync.* counters), one
	// struct per shard, owned by that shard's loop; annFloor is the
	// dispatch floor the shard last announced horizons from.
	sync     []syncCounters
	annFloor []int64
}

// syncCounters tallies what one shard spends on conservative
// synchronization: every horizon slot actually stored, how many of
// those were pure promises (null messages — no queued traffic to cap
// them), every park/wake signal delivered, and how the dispatched
// events group into grant batches (one safe-bound computation each).
type syncCounters struct {
	horizonPubs uint64
	nullMsgs    uint64
	wakeups     uint64
	drainRuns   uint64
	drainEvents uint64
}

// SyncStats aggregates the sim.sync.* counters over all shards. Read
// only while no run is in progress; counts accumulate across runs.
type SyncStats struct {
	HorizonPublishes uint64 // per-pair horizon raises stored (sim.sync.horizon_publishes)
	NullMessages     uint64 // raises with no queued traffic to the peer (sim.sync.null_messages)
	Wakeups          uint64 // park/wake signals delivered (sim.sync.wakeups)
	DrainRuns        uint64 // grant batches dispatching >= 1 event (sim.sync.drain_runs)
	DrainedEvents    uint64 // events dispatched inside grant batches (sim.sync.drained_events)
}

// AvgDrainRun is the mean number of events dispatched per safe-bound
// computation — the grant-based draining payoff (higher is cheaper).
func (s SyncStats) AvgDrainRun() float64 {
	if s.DrainRuns == 0 {
		return 0
	}
	return float64(s.DrainedEvents) / float64(s.DrainRuns)
}

// SyncStats sums the synchronization counters across shards.
func (g *Group) SyncStats() SyncStats {
	var t SyncStats
	for i := range g.sync {
		t.HorizonPublishes += g.sync[i].horizonPubs
		t.NullMessages += g.sync[i].nullMsgs
		t.Wakeups += g.sync[i].wakeups
		t.DrainRuns += g.sync[i].drainRuns
		t.DrainedEvents += g.sync[i].drainEvents
	}
	return t
}

const (
	noEvent     = int64(math.MaxInt64)
	mailboxCap  = 1 << 15
	maxDeadline = Time(math.MaxInt64)

	// spinPasses bounds the pre-park polling phase. A dry shard that has
	// already announced its horizons yields the processor a few times and
	// re-checks for arriving mail or a raised safe bound before paying
	// for the park/wake handshake (detMu, channel send, scheduler
	// round trip). In a cross-shard dependency ping-pong each yield runs
	// the posting shard, so the handoff lands at runqueue cost; a shard
	// that is genuinely out of work burns the few passes once and parks.
	spinPasses = 4
)

// crossEvent is one cross-shard post: a callback with its timestamp,
// origin shard, and per-pair sequence number. (at, src, seq) is a
// total order over all crosses a shard will ever receive.
type crossEvent struct {
	at  Time
	src int32
	seq uint64
	fn  func()
}

func crossLess(a, b crossEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// mailbox is the bounded queue between one ordered shard pair. The
// source appends under mu; the destination drains under mu. minPending
// mirrors the earliest queued timestamp for lock-free G computation.
type mailbox struct {
	mu         sync.Mutex
	q          []crossEvent
	seq        uint64
	minPending atomic.Int64
}

// crossHeap is a binary min-heap of staged crosses ordered by
// (at, src, seq), owned by the destination shard's loop.
type crossHeap struct {
	h []crossEvent
}

func (c *crossHeap) push(ev crossEvent) {
	c.h = append(c.h, ev)
	i := len(c.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !crossLess(c.h[i], c.h[p]) {
			break
		}
		c.h[i], c.h[p] = c.h[p], c.h[i]
		i = p
	}
}

func (c *crossHeap) pop() crossEvent {
	top := c.h[0]
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h[last] = crossEvent{}
	c.h = c.h[:last]
	i, n := 0, last
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && crossLess(c.h[r], c.h[l]) {
			m = r
		}
		if !crossLess(c.h[m], c.h[i]) {
			break
		}
		c.h[i], c.h[m] = c.h[m], c.h[i]
		i = m
	}
	return top
}

// satAdd adds a duration to a time without wrapping past MaxInt64.
func satAdd(t Time, d Duration) Time {
	if int64(t) > math.MaxInt64-int64(d) {
		return Time(math.MaxInt64)
	}
	return t + Time(d)
}

// UniformLookahead builds the n×n lookahead matrix with every
// off-diagonal entry d — the single-scalar protocol PR 9 shipped,
// still exactly right when no topology separates the shards.
func UniformLookahead(n int, d Duration) [][]Duration {
	m := make([][]Duration, n)
	for i := range m {
		m[i] = make([]Duration, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = d
			}
		}
	}
	return m
}

// NewGroup couples the given kernels into one sharded simulation.
// lookahead is the per-pair promise matrix: lookahead[s][d] bounds how
// soon a post from shard s may land on shard d past s's clock
// (diagonal entries are ignored; off-diagonal entries must be
// positive, and Post panics on any violation). Use UniformLookahead
// when every pair shares one bound. Kernels must be fresh to this
// group (a kernel can belong to at most one).
func NewGroup(lookahead [][]Duration, kernels ...*Kernel) *Group {
	if len(kernels) == 0 {
		panic("sim: group needs at least one kernel")
	}
	n := len(kernels)
	if len(lookahead) != n {
		panic("sim: lookahead matrix must be shards x shards")
	}
	minLook := Duration(math.MaxInt64)
	lookTo := make([]Duration, n)
	for d := range lookTo {
		lookTo[d] = Duration(math.MaxInt64)
	}
	for s := range lookahead {
		if len(lookahead[s]) != n {
			panic("sim: lookahead matrix must be shards x shards")
		}
		for d, v := range lookahead[s] {
			if s == d {
				continue
			}
			if v <= 0 {
				panic("sim: group lookahead must be positive")
			}
			if v < minLook {
				minLook = v
			}
			if v < lookTo[d] {
				lookTo[d] = v
			}
		}
	}
	g := &Group{
		kernels:    kernels,
		n:          n,
		look:       lookahead,
		minLook:    minLook,
		lookTo:     lookTo,
		mail:       make([][]*mailbox, n),
		staging:    make([]crossHeap, n),
		localMin:   make([]atomic.Int64, n),
		horizon:    make([]atomic.Int64, n*n),
		wake:       make([]chan struct{}, n),
		idle:       make([]atomic.Bool, n),
		posted:     make([]uint64, n),
		dispatched: make([]uint64, n),
		sync:       make([]syncCounters, n),
		annFloor:   make([]int64, n),
	}
	for i, k := range kernels {
		if k.group != nil {
			panic("sim: kernel already belongs to a group")
		}
		k.group = g
		k.shard = i
		g.wake[i] = make(chan struct{}, 1)
		g.mail[i] = make([]*mailbox, n)
		for j := 0; j < n; j++ {
			if j != i {
				g.mail[i][j] = &mailbox{}
				g.mail[i][j].minPending.Store(noEvent)
			}
		}
	}
	return g
}

// Size returns the number of shards.
func (g *Group) Size() int { return g.n }

// Lookahead returns the group's minimum pairwise lookahead — the
// tightest promise any shard pair operates under.
func (g *Group) Lookahead() Duration {
	if g.n == 1 {
		return 0
	}
	return g.minLook
}

// PairLookahead returns the conservative promise from shard s to shard
// d (0 on the diagonal).
func (g *Group) PairLookahead(s, d int) Duration { return g.look[s][d] }

// Kernel returns shard i's kernel.
func (g *Group) Kernel(i int) *Kernel { return g.kernels[i] }

// Now returns the trailing virtual clock across shards.
func (g *Group) Now() Time {
	min := maxDeadline
	for _, k := range g.kernels {
		if k.now < min {
			min = k.now
		}
	}
	return min
}

// CrossPosts returns the number of events routed between shards over
// the group's lifetime. Call only while no run is in progress.
func (g *Group) CrossPosts() uint64 {
	var total uint64
	for _, p := range g.posted {
		total += p
	}
	return total
}

// Scheduled sums event-scheduling counters across shards.
func (g *Group) Scheduled() uint64 {
	var total uint64
	for _, k := range g.kernels {
		total += k.Scheduled()
	}
	return total
}

// Stop makes a running Run/RunUntil return after in-flight events
// complete. Safe to call from any shard's event context.
func (g *Group) Stop() {
	g.stopFlag.Store(true)
	for i := range g.wake {
		g.notify(i)
	}
}

// Post enqueues fn to run on shard dst at time at. From a grouped
// kernel, a genuinely cross-shard post must respect the pairwise
// lookahead: at >= now + look(src,dst), measured on the posting
// shard's clock. Posts to the kernel's own shard (and all posts on an
// ungrouped kernel, where dst must be 0) degrade to plain At
// scheduling.
func (k *Kernel) Post(dst int, at Time, fn func()) {
	g := k.group
	if g == nil {
		if dst != 0 {
			panic("sim: Post to a nonzero shard on an ungrouped kernel")
		}
		k.At(at, fn)
		return
	}
	if dst == k.shard {
		k.At(at, fn)
		return
	}
	if at < satAdd(k.now, g.look[k.shard][dst]) {
		panic("sim: cross-shard post violates lookahead")
	}
	g.post(k.shard, dst, at, fn)
}

// Shard returns the kernel's shard index within its group (0 when
// ungrouped).
func (k *Kernel) Shard() int { return k.shard }

// Group returns the group the kernel belongs to, or nil.
func (k *Kernel) Group() *Group { return k.group }

func (g *Group) post(src, dst int, at Time, fn func()) {
	mb := g.mail[src][dst]
	mb.mu.Lock()
	for len(mb.q) >= mailboxCap {
		// Bounded mailbox full: the receiver is behind in wall-clock
		// terms. Drain our own inbound mail (only appends to our
		// staging heap, safe mid-event) and yield until it catches up,
		// so a pair of mutually-posting shards cannot deadlock.
		mb.mu.Unlock()
		g.drain(src)
		runtime.Gosched()
		mb.mu.Lock()
	}
	seq := mb.seq
	mb.seq++
	mb.q = append(mb.q, crossEvent{at: at, src: int32(src), seq: seq, fn: fn})
	if cur := mb.minPending.Load(); int64(at) < cur {
		mb.minPending.Store(int64(at))
	}
	mb.mu.Unlock()
	g.posted[src]++
	g.notifyIdle(src, dst)
}

// notify wakes shard dst unconditionally (Stop, completion sweeps).
func (g *Group) notify(dst int) {
	select {
	case g.wake[dst] <- struct{}{}:
	default:
	}
}

// notifyIdle wakes shard dst only if it is parked, charging the signal
// to src's wakeup counter when one is actually delivered. Callers must
// have already published the state that creates work for dst; a busy
// dst picks that state up at the top of its own loop.
func (g *Group) notifyIdle(src, dst int) {
	if g.idle[dst].Load() {
		select {
		case g.wake[dst] <- struct{}{}:
			g.sync[src].wakeups++
		default:
		}
	}
}

// drain moves every queued inbound cross into shard i's staging heap.
// The lowered localMin is published before minPending is cleared so
// the event is never invisible to a concurrent G computation.
func (g *Group) drain(i int) bool {
	moved := false
	for s := 0; s < g.n; s++ {
		mb := g.mail[s][i]
		if mb == nil || mb.minPending.Load() == noEvent {
			continue
		}
		mb.mu.Lock()
		if len(mb.q) > 0 {
			moved = true
			entryMin := noEvent
			for idx, ev := range mb.q {
				g.staging[i].push(ev)
				if int64(ev.at) < entryMin {
					entryMin = int64(ev.at)
				}
				mb.q[idx] = crossEvent{}
			}
			mb.q = mb.q[:0]
			if cur := g.localMin[i].Load(); entryMin < cur {
				g.localMin[i].Store(entryMin)
			}
			mb.minPending.Store(noEvent)
		}
		mb.mu.Unlock()
	}
	return moved
}

// curMin is shard i's earliest undispatched event: local queue front
// or staged cross. Owned by shard i's loop.
func (g *Group) curMin(i int) int64 {
	min := noEvent
	if ev := g.kernels[i].front(); ev != nil {
		min = int64(ev.at)
	}
	if h := g.staging[i].h; len(h) > 0 && int64(h[0].at) < min {
		min = int64(h[0].at)
	}
	return min
}

// publishLocalMin refreshes shard i's published minimum. A raise lifts
// the global floor, but it only wakes the peers whose safe bound can
// actually move: a parked shard j is unblockable by this raise only if
// its own published front lies below the lifted floor's reach,
// lm + look_in(j) (the floor after the raise is at most G' + look_in(j)
// with G' <= lm, and neither the horizon bound nor the inbound-mail cap
// is touched by a localMin store). Peers the filter skips are exactly
// the ones a wakeup would bounce off; any wake this leaves for later is
// re-evaluated on every subsequent raise and, once all shards park, by
// enterIdle's exact completion sweep.
func (g *Group) publishLocalMin(i int) {
	lm := g.curMin(i)
	prev := g.localMin[i].Load()
	if lm == prev {
		return
	}
	g.localMin[i].Store(lm)
	if lm > prev {
		for j := 0; j < g.n; j++ {
			if j == i || !g.idle[j].Load() {
				continue
			}
			fj := g.localMin[j].Load()
			if fj != noEvent && Time(fj) < satAdd(Time(lm), g.lookTo[j]) {
				g.notifyIdle(i, j)
			}
		}
	}
}

// globalMin computes G: the earliest undispatched event anywhere.
// Every read is individually conservative (events move from mailbox
// coverage to localMin coverage with the new cover stored first), so
// staleness can only lower the result.
func (g *Group) globalMin() int64 {
	min := noEvent
	for i := 0; i < g.n; i++ {
		if v := g.localMin[i].Load(); v < min {
			min = v
		}
		for j := 0; j < g.n; j++ {
			if mb := g.mail[i][j]; mb != nil {
				if v := mb.minPending.Load(); v < min {
					min = v
				}
			}
		}
	}
	return min
}

// safeTime is the bound below which shard i may freely dispatch: no
// future cross-shard arrival can carry a smaller timestamp. Two
// independent bounds are combined; each must itself account for
// crosses already posted to i but not yet drained (a post made before
// this computation is only >= G, not >= G+lookahead, so the global
// floor is capped by the inbound mailboxes — which must be read after
// drain, as the shard loop does). The horizon bound needs no extra
// cap: announceHorizons never raises a promise past the poster's own
// undrained mail.
func (g *Group) safeTime(i int) Time {
	floor := satAdd(Time(g.globalMin()), g.lookTo[i])
	minH := noEvent
	for s := 0; s < g.n; s++ {
		if s == i {
			continue
		}
		if mp := Time(g.mail[s][i].minPending.Load()); mp < floor {
			floor = mp
		}
		if h := g.horizon[s*g.n+i].Load(); h < minH {
			minH = h
		}
	}
	safe := floor
	if g.n > 1 && Time(minH) > safe {
		safe = Time(minH)
	}
	return safe
}

// announceHorizons raises shard i's promise to every peer: no
// not-yet-drained cross from i arrives before H(i→d). Future posts are
// bounded below by (earliest possible next dispatch of i) + look(i,d)
// — next dispatch being no earlier than min(curMin, safe), since every
// event i will ever receive arrives at or after its safe time. Crosses
// already sitting in the d-bound mailbox cap the promise at their own
// timestamps: they arrive whenever d next drains, with no lookahead
// slack left.
//
// Publication is batched. While a shard is actively dispatching
// (force=false) it re-announces only when its floor has advanced at
// least one minimum-lookahead quantum past the last announcement —
// sub-quantum raises cannot cross any peer's next-event threshold that
// a following announcement wouldn't also cross, and the floor bound
// keeps global progress alive between announcements. The force=true
// pass on the edge of going idle always recomputes every pair, which
// also repairs promises that were capped by since-drained outbound
// mail. A raise wakes the beneficiary only when it can unblock it (the
// peer is parked below the new promise); a raise published with no
// queued traffic to cap it is the protocol's explicit null message.
func (g *Group) announceHorizons(i int, safe Time, force bool) {
	floor := g.curMin(i)
	if int64(safe) < floor {
		floor = int64(safe)
	}
	if !force {
		if floor == g.annFloor[i] {
			return
		}
		if Time(floor) < satAdd(Time(g.annFloor[i]), g.minLook) {
			return
		}
	}
	g.annFloor[i] = floor
	for d := 0; d < g.n; d++ {
		if d == i {
			continue
		}
		hd := int64(satAdd(Time(floor), g.look[i][d]))
		mp := g.mail[i][d].minPending.Load()
		if mp < hd {
			hd = mp
		}
		slot := &g.horizon[i*g.n+d]
		if hd > slot.Load() {
			slot.Store(hd)
			g.sync[i].horizonPubs++
			if mp == noEvent {
				g.sync[i].nullMsgs++
			}
			if g.idle[d].Load() && hd > g.localMin[d].Load() {
				g.notifyIdle(i, d)
			}
		}
	}
}

// dispatchOne runs shard i's earliest dispatchable work item — a
// staged cross or a local event — applying the deterministic merge
// rule: at equal timestamps crosses go first, ordered by (src, seq).
// Returns false when the front is not dispatchable under (safe,
// deadline).
func (g *Group) dispatchOne(i int, safe, deadline Time) bool {
	k := g.kernels[i]
	var localAt Time = maxDeadline
	ev := k.front()
	if ev != nil {
		localAt = ev.at
	}
	var crossAt Time = maxDeadline
	if h := g.staging[i].h; len(h) > 0 {
		crossAt = h[0].at
	}
	if crossAt <= localAt {
		if crossAt == maxDeadline || crossAt > deadline || crossAt >= safe {
			return false
		}
		ce := g.staging[i].pop()
		if ce.at < k.now {
			panic("sim: cross-shard event arrived in the past")
		}
		k.now = ce.at
		g.dispatched[i]++
		ce.fn()
		return true
	}
	if localAt > deadline || localAt >= safe {
		return false
	}
	k.popFront(ev)
	if ev.canceled {
		k.nCanceled--
		k.recycle(ev)
		return true
	}
	k.now = ev.at
	fn := ev.fn
	k.recycle(ev)
	fn()
	return true
}

// hasWork reports whether shard i could make progress right now.
// Called under detMu with the system momentarily stable.
func (g *Group) hasWork(i int, deadline Time) bool {
	for s := 0; s < g.n; s++ {
		if mb := g.mail[s][i]; mb != nil && mb.minPending.Load() != noEvent {
			return true
		}
	}
	cand := g.curMin(i)
	if cand == noEvent || Time(cand) > deadline {
		return false
	}
	return Time(cand) < g.safeTime(i)
}

// allQuiescent reports that no undispatched event at or before the
// deadline exists anywhere. Under detMu with all shards idle this is
// exact, and quiescence is stable: events are only created by
// dispatching events.
func (g *Group) allQuiescent(deadline Time) bool {
	for i := 0; i < g.n; i++ {
		if v := g.localMin[i].Load(); v != noEvent && Time(v) <= deadline {
			return false
		}
		for j := 0; j < g.n; j++ {
			if mb := g.mail[i][j]; mb != nil {
				if v := mb.minPending.Load(); v != noEvent && Time(v) <= deadline {
					return false
				}
			}
		}
	}
	return true
}

// enterIdle records shard i as out of dispatchable work. The idle flag
// is set before the final hasWork re-check, so any notifier publishing
// after the re-check sees the flag and wakes i (and one publishing
// before is seen by the re-check). The last shard in either detects
// completion (closing done) or, when events remain but everyone
// stalled on stale bounds, wakes exactly the shards that now have
// dispatchable work — the global floor guarantees the shard holding
// the earliest event is among them.
func (g *Group) enterIdle(i int, deadline Time) (finished, retry bool) {
	g.detMu.Lock()
	defer g.detMu.Unlock()
	if g.finished {
		return true, false
	}
	if !g.idle[i].Load() {
		g.idle[i].Store(true)
		g.nIdle++
	}
	if g.hasWork(i, deadline) {
		g.idle[i].Store(false)
		g.nIdle--
		return false, true
	}
	if g.nIdle == g.n {
		if g.allQuiescent(deadline) {
			g.finished = true
			close(g.done)
			return true, false
		}
		for j := 0; j < g.n; j++ {
			if j != i && g.hasWork(j, deadline) {
				g.notify(j)
			}
		}
	}
	return false, false
}

// spinForWork is the cheap half of the idle handshake: after the
// force-published horizons are out, yield and poll a few times for
// newly-arrived mail or a raised safe bound before parking. Returns
// true when the shard should re-enter its dispatch loop. Purely a
// wall-clock optimization: the spin delays parking, it never changes
// what the protocol promises or the order events dispatch in.
func (g *Group) spinForWork(i int, deadline Time) bool {
	if g.n == 1 {
		return false
	}
	for pass := 0; pass < spinPasses; pass++ {
		runtime.Gosched()
		if g.stopFlag.Load() || g.kernels[i].stopped {
			return true
		}
		if g.drain(i) {
			return true
		}
		if cand := g.curMin(i); cand != noEvent && Time(cand) <= deadline && Time(cand) < g.safeTime(i) {
			return true
		}
	}
	return false
}

func (g *Group) exitIdle(i int) {
	g.detMu.Lock()
	if g.idle[i].Load() {
		g.idle[i].Store(false)
		g.nIdle--
	}
	g.detMu.Unlock()
}

// shardLoop is one shard's dispatch loop for a single run: compute the
// safe-advance bound once, drain every dispatchable event below it in
// one grant run, publish the raised floor, and only then decide
// whether to re-arm or park. Horizon announcements ride the quantized
// fast path while the shard is making progress and the exhaustive
// force path just before it parks; between the two sits the bounded
// yield-and-poll spin that resolves most handoffs without parking.
func (g *Group) shardLoop(i int, deadline Time) {
	k := g.kernels[i]
	for {
		if g.stopFlag.Load() || k.stopped {
			g.Stop()
			return
		}
		g.drain(i)
		safe := g.safeTime(i)
		ran := uint64(0)
		for g.dispatchOne(i, safe, deadline) {
			ran++
			if g.stopFlag.Load() || k.stopped {
				g.Stop()
				return
			}
		}
		g.publishLocalMin(i)
		if ran > 0 {
			g.sync[i].drainRuns++
			g.sync[i].drainEvents += ran
			g.announceHorizons(i, safe, false)
			continue
		}
		if g.drain(i) {
			continue
		}
		g.announceHorizons(i, safe, true)
		if g.spinForWork(i, deadline) {
			continue
		}
		finished, retry := g.enterIdle(i, deadline)
		if finished {
			return
		}
		if retry {
			continue
		}
		select {
		case <-g.wake[i]:
			g.exitIdle(i)
		case <-g.done:
			return
		}
	}
}

// run executes one parallel episode until quiescence-at-deadline or
// Stop. Setup and teardown happen on the caller's goroutine.
func (g *Group) run(deadline Time) {
	g.stopFlag.Store(false)
	g.finished = false
	g.nIdle = 0
	g.done = make(chan struct{})
	for i := range g.idle {
		g.idle[i].Store(false)
	}
	for i, k := range g.kernels {
		k.stopped = false
		g.localMin[i].Store(g.curMin(i))
		g.annFloor[i] = math.MinInt64
		for d := 0; d < g.n; d++ {
			if d != i {
				g.horizon[i*g.n+d].Store(int64(satAdd(k.now, g.look[i][d])))
			}
		}
		// Drain any stale wakeup from a prior run.
		select {
		case <-g.wake[i]:
		default:
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < g.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.shardLoop(i, deadline)
		}(i)
	}
	wg.Wait()
}

// Run dispatches across all shards until every queue and mailbox
// drains or Stop is called. Mirrors Kernel.Run: if non-daemon
// processes remain blocked at quiescence it returns a *DeadlockError
// aggregated over every shard.
func (g *Group) Run() error {
	g.run(maxDeadline)
	if g.stopFlag.Load() {
		return nil
	}
	var blocked []BlockedProc
	var at Time
	for _, k := range g.kernels {
		if k.now > at {
			at = k.now
		}
		for _, p := range k.procs {
			if (p.state == procParked || p.state == procNew) && !p.daemon {
				blocked = append(blocked, BlockedProc{Name: p.name, Reason: p.waitReason})
			}
		}
	}
	if len(blocked) == 0 {
		return nil
	}
	sort.Slice(blocked, func(i, j int) bool { return blocked[i].Name < blocked[j].Name })
	return &DeadlockError{At: at, Procs: blocked}
}

// RunUntil dispatches events with timestamps <= deadline on every
// shard, then advances all clocks to the deadline, exactly like the
// serial Kernel.RunUntil.
func (g *Group) RunUntil(deadline Time) {
	g.run(deadline)
	if g.stopFlag.Load() {
		return
	}
	for _, k := range g.kernels {
		if k.now < deadline {
			k.now = deadline
		}
	}
}

// RunFor advances all shards by at most d past the trailing clock.
func (g *Group) RunFor(d Duration) { g.RunUntil(g.Now().Add(d)) }

// Shutdown kills parked processes on every shard. Call only after a
// run has returned.
func (g *Group) Shutdown() {
	for _, k := range g.kernels {
		k.Shutdown()
	}
}
