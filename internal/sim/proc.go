package sim

import "errors"

// errKilled is panicked inside a parked proc by Shutdown so that its
// goroutine unwinds and exits.
var errKilled = errors.New("sim: proc killed")

type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
)

// Proc is a simulated process: a goroutine scheduled cooperatively by
// the Kernel in virtual time. All Proc methods must be called from the
// proc's own goroutine while it holds the run token (i.e. from within
// the function passed to Spawn, directly or indirectly).
type Proc struct {
	k          *Kernel
	id         int
	name       string
	resume     chan struct{}
	state      procState
	waitReason string
	killed     bool
	panicked   any
	daemon     bool

	// parkPending holds the reason for an armed Park awaiting Block.
	parkPending string

	// resumeFn is the proc's switch-in thunk, bound once at spawn so
	// the hot wake paths (unpark, Sleep, Yield) schedule it without
	// allocating a fresh closure each time.
	resumeFn func()
}

// SetDaemon marks the proc as a background service: a simulation where
// only daemons remain blocked is complete, not deadlocked. Use it for
// kernel drain loops and other forever-servers.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Daemon reports whether the proc is a daemon.
func (p *Proc) Daemon() bool { return p.daemon }

// Kernel returns the kernel this proc runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// ID returns the proc's unique id (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// WaitReason returns why the proc is blocked ("" when running).
func (p *Proc) WaitReason() string { return p.waitReason }

// park blocks the proc until some kernel-side event resumes it.
// reason is recorded for deadlock reports.
func (p *Proc) park(reason string) {
	p.waitReason = reason
	p.state = procParked
	p.k.yield <- struct{}{}
	<-p.resume
	p.state = procRunning
	p.waitReason = ""
	if p.killed {
		panic(errKilled)
	}
}

// unpark schedules the proc to resume at the current virtual time,
// after events already queued at this instant. It must be called from
// kernel context or from another running proc.
func (p *Proc) unpark() {
	p.k.At(p.k.now, p.resumeFn)
}

// Sleep blocks the proc for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.k.At(p.k.now.Add(d), p.resumeFn)
	p.park("sleep")
}

// SleepUntil blocks the proc until the given instant.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		p.Yield()
		return
	}
	p.k.At(t, p.resumeFn)
	p.park("sleep-until")
}

// Yield relinquishes the token until all other work scheduled at the
// current instant has run.
func (p *Proc) Yield() {
	p.k.At(p.k.now, p.resumeFn)
	p.park("yield")
}

// Park blocks the proc until another process or event calls the
// returned wake function. Calling wake more than once is a no-op; the
// wake function may be called from any simulation context.
//
// Park is the escape hatch used to build higher-level primitives.
func (p *Proc) Park(reason string) (wake func()) {
	woken := false
	wake = func() {
		if woken {
			return
		}
		woken = true
		p.unpark()
	}
	// The caller arms wake *before* blocking, so return first and let
	// the caller invoke Block.
	p.parkPending = reason
	return wake
}

// Block parks the proc; it must follow a Park call that armed a waker.
func (p *Proc) Block() {
	reason := p.parkPending
	p.parkPending = ""
	p.park(reason)
}
