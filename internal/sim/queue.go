package sim

// Queue is a FIFO message queue in virtual time. A capacity of zero
// means unbounded. Put blocks while the queue is full; Get blocks
// while it is empty. Waiters on each side are served in FIFO order.
type Queue[T any] struct {
	k       *Kernel
	name    string
	cap     int
	items   []T
	getters []*Proc
	putters []*Proc
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](k *Kernel, name string, capacity int) *Queue[T] {
	return &Queue[T]{k: k, name: name, cap: capacity}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the queue capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// Name returns the queue's name.
func (q *Queue[T]) Name() string { return q.name }

// GetWaiters returns the number of processes blocked in Get.
func (q *Queue[T]) GetWaiters() int { return len(q.getters) }

// PutWaiters returns the number of processes blocked in Put.
func (q *Queue[T]) PutWaiters() int { return len(q.putters) }

// Put appends v, blocking p while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.putters = append(q.putters, p)
		p.park("queue-put " + q.name)
	}
	q.push(v)
}

// TryPut appends v if there is room, reporting whether it did.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.push(v)
	return true
}

func (q *Queue[T]) push(v T) {
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		w := q.getters[0]
		q.getters = q.getters[1:]
		w.unpark()
	}
}

// Get removes and returns the oldest item, blocking p while the queue
// is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.park("queue-get " + q.name)
	}
	return q.pop()
}

// TryGet removes and returns the oldest item if one is present.
func (q *Queue[T]) TryGet() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	return q.pop(), true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	return q.items[0], true
}

func (q *Queue[T]) pop() T {
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.unpark()
	}
	return v
}
