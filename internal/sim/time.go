// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel maintains a virtual clock and an event queue. Simulated
// processes are ordinary goroutines, but exactly one of them runs at a
// time: the kernel hands a run token to a process and waits for the
// process to block on a simulation primitive (Sleep, Queue, Semaphore,
// ...) before dispatching the next event. Events that fire at the same
// virtual instant are ordered by their scheduling sequence number, so a
// simulation is fully deterministic and repeatable.
//
// All of HPC/VORX — the interconnect, the node kernels, the protocols —
// runs on this kernel, which is how microsecond-scale 1988 latencies
// are reproduced exactly on modern hardware.
package sim

import "fmt"

// Time is an instant in virtual time, measured in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Microseconds returns a Duration of us microseconds. Fractional
// microseconds are preserved at nanosecond resolution.
func Microseconds(us float64) Duration {
	return Duration(us * float64(Microsecond))
}

// Milliseconds returns a Duration of ms milliseconds.
func Milliseconds(ms float64) Duration {
	return Duration(ms * float64(Millisecond))
}

// Seconds returns a Duration of s seconds.
func Seconds(s float64) Duration {
	return Duration(s * float64(Second))
}

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports t as a float64 number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds reports d as a float64 number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds reports d as a float64 number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (t Time) String() string {
	return fmt.Sprintf("t=%.3fµs", t.Microseconds())
}

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	}
}
