package sim

// Semaphore is a counting semaphore in virtual time. Waiters are
// served in FIFO order, which keeps simulations deterministic.
type Semaphore struct {
	k       *Kernel
	name    string
	count   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(k *Kernel, name string, count int) *Semaphore {
	return &Semaphore{k: k, name: name, count: count}
}

// Value returns the current count (negative values never occur; a
// zero count with waiters means contention).
func (s *Semaphore) Value() int { return s.count }

// Waiters returns the number of blocked acquirers.
func (s *Semaphore) Waiters() int { return len(s.waiters) }

// Acquire decrements the semaphore, blocking p while the count is zero.
func (s *Semaphore) Acquire(p *Proc) {
	if s.count > 0 {
		s.count--
		return
	}
	s.waiters = append(s.waiters, p)
	p.park("semaphore " + s.name)
}

// TryAcquire decrements the semaphore if possible without blocking and
// reports whether it succeeded.
func (s *Semaphore) TryAcquire() bool {
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// Release increments the semaphore, waking the oldest waiter if any.
// A released token handed directly to a waiter does not pass through
// the count, so Release-then-Acquire pairs are fair.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.unpark()
		return
	}
	s.count++
}

// Cond is a condition-variable-like wait list: processes Wait on it,
// and any simulation context can Signal (wake one, FIFO) or Broadcast
// (wake all). Unlike sync.Cond there is no associated lock — the
// simulation is single-threaded in virtual time.
type Cond struct {
	k       *Kernel
	name    string
	waiters []*Proc
}

// NewCond returns an empty wait list.
func NewCond(k *Kernel, name string) *Cond {
	return &Cond{k: k, name: name}
}

// Wait blocks p until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park("cond " + c.name)
}

// Signal wakes the oldest waiter, if any, and reports whether one was
// woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.unpark()
	return true
}

// Broadcast wakes every waiter, in arrival order.
func (c *Cond) Broadcast() int {
	n := len(c.waiters)
	for _, w := range c.waiters {
		w.unpark()
	}
	c.waiters = nil
	return n
}

// Waiters returns the number of blocked processes.
func (c *Cond) Waiters() int { return len(c.waiters) }

// WaitGroup counts outstanding work in virtual time.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add adds delta to the counter. It panics if the counter goes
// negative.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			w.unpark()
		}
		wg.waiters = nil
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park("waitgroup")
}
