package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// shardSim abstracts "n logical shards" so the same logical program
// can run on a real Group or collapsed onto one serial kernel. The
// serial run is the reference the sharded run must reproduce in
// virtual time.
type shardSim interface {
	kernel(shard int) *Kernel
	post(src, dst int, at Time, fn func())
	run() error
}

type groupSim struct{ g *Group }

func (s groupSim) kernel(i int) *Kernel { return s.g.Kernel(i) }
func (s groupSim) post(src, dst int, at Time, fn func()) {
	s.g.Kernel(src).Post(dst, at, fn)
}
func (s groupSim) run() error { return s.g.Run() }

type serialSim struct{ k *Kernel }

func (s serialSim) kernel(int) *Kernel { return s.k }
func (s serialSim) post(_, _ int, at Time, fn func()) {
	s.k.At(at, fn)
}
func (s serialSim) run() error { return s.k.Run() }

// relayEntry records one hop firing: which chain, which hop index, and
// the virtual time it ran. Each shard appends only to its own log, so
// the logs are race-free under parallel execution and their per-shard
// order is exactly that shard's dispatch order.
type relayEntry struct {
	chain, hop int
	at         Time
}

// relayProgram builds a deterministic cross-shard relay mesh: chains of
// events that wander between shards with per-hop delays at or above
// the lookahead. All mutable state (a chain's rng, its hop counter)
// travels along the chain, ordered by the happens-before of delivery,
// and every chain's timestamps are congruent to its index modulo the
// chain count, so no two events anywhere ever tie. Both the virtual
// timeline and each shard's dispatch order are therefore fixed no
// matter how the shards are scheduled — and must match a serial run.
func relayProgram(s shardSim, shards int, seed int64, logs [][]relayEntry) {
	const L = Duration(1000)
	nChains := shards * 4
	base := (int(L) + nChains - 1) / nChains // ceil: every delay clears the lookahead
	for c := 0; c < nChains; c++ {
		c := c
		home := c % shards
		rng := rand.New(rand.NewSource(seed*997 + int64(c)))
		hops := 30 + c%4
		var hop func(cur, remaining int, at Time)
		hop = func(cur, remaining int, at Time) {
			logs[cur] = append(logs[cur], relayEntry{chain: c, hop: hops - remaining, at: at})
			if remaining == 0 {
				return
			}
			next := (cur + 1 + rng.Intn(shards)) % shards
			delay := Duration(nChains * (base + rng.Intn(50)))
			nat := at.Add(delay)
			if next == cur {
				s.kernel(cur).At(nat, func() { hop(cur, remaining-1, nat) })
			} else {
				s.post(cur, next, nat, func() { hop(next, remaining-1, nat) })
			}
		}
		start := Time(nChains + c)
		s.kernel(home).At(start, func() { hop(home, hops, start) })
	}
}

// runRelay executes the relay program and returns the per-shard
// dispatch logs. The rng consumption along each chain depends on its
// dispatch history, so log equality proves both that every event fired
// at the serial run's virtual time and that each shard dispatched its
// share in the serial run's relative order.
func runRelay(t *testing.T, s shardSim, shards int, seed int64) [][]relayEntry {
	t.Helper()
	logs := make([][]relayEntry, shards)
	relayProgram(s, shards, seed, logs)
	if err := s.run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return logs
}

// diffLogs fails the test at the first per-shard divergence.
func diffLogs(t *testing.T, label string, want, got [][]relayEntry) {
	t.Helper()
	for sh := range want {
		if len(got[sh]) != len(want[sh]) {
			t.Fatalf("%s: shard %d dispatched %d events, reference %d", label, sh, len(got[sh]), len(want[sh]))
		}
		for x, w := range want[sh] {
			if got[sh][x] != w {
				t.Fatalf("%s: shard %d pos %d: got %+v, reference %+v", label, sh, x, got[sh][x], w)
			}
		}
	}
}

func newTestGroup(shards int) *Group {
	ks := make([]*Kernel, shards)
	for i := range ks {
		ks[i] = NewKernel(1)
	}
	return NewGroup(UniformLookahead(shards, Duration(1000)), ks...)
}

func TestGroupMatchesSerialReference(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8} {
		for seed := int64(1); seed <= 5; seed++ {
			want := runRelay(t, serialSim{NewKernel(1)}, shards, seed)
			g := newTestGroup(shards)
			got := runRelay(t, groupSim{g}, shards, seed)
			diffLogs(t, fmt.Sprintf("shards=%d seed=%d", shards, seed), want, got)
			if g.CrossPosts() == 0 {
				t.Fatalf("shards=%d seed=%d: relay mesh routed no cross-shard events", shards, seed)
			}
		}
	}
}

func TestGroupRepeatedRunsIdentical(t *testing.T) {
	ref := runRelay(t, groupSim{newTestGroup(4)}, 4, 42)
	for rep := 0; rep < 10; rep++ {
		got := runRelay(t, groupSim{newTestGroup(4)}, 4, 42)
		diffLogs(t, fmt.Sprintf("rep %d", rep), ref, got)
	}
}

// TestGroupSameInstantMergeOrder engineers a three-way tie at one
// destination: two crosses from different shards and a local event,
// all at the same instant. The deterministic rule is crosses first in
// shard order, then per-pair sequence order, then local events.
func TestGroupSameInstantMergeOrder(t *testing.T) {
	for rep := 0; rep < 20; rep++ {
		g := newTestGroup(3)
		var order []string
		at := Time(5000)
		g.Kernel(1).At(100, func() {
			g.Kernel(1).Post(0, at, func() { order = append(order, "cross-1a") })
			g.Kernel(1).Post(0, at, func() { order = append(order, "cross-1b") })
		})
		g.Kernel(2).At(50, func() {
			g.Kernel(2).Post(0, at, func() { order = append(order, "cross-2") })
		})
		g.Kernel(0).At(at, func() { order = append(order, "local") })
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		want := []string{"cross-1a", "cross-1b", "cross-2", "local"}
		if fmt.Sprint(order) != fmt.Sprint(want) {
			t.Fatalf("rep %d: merge order %v, want %v", rep, order, want)
		}
	}
}

func TestGroupPostLookaheadEnforced(t *testing.T) {
	g := newTestGroup(2)
	g.Kernel(0).At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("post below lookahead did not panic")
			}
			g.Stop()
		}()
		g.Kernel(0).Post(1, Time(100+999), func() {})
	})
	g.Run()
}

func TestGroupRunUntilAdvancesAndResumes(t *testing.T) {
	g := newTestGroup(2)
	var fired []Time
	g.Kernel(0).At(500, func() {
		g.Kernel(0).Post(1, 2000, func() { fired = append(fired, 2000) })
	})
	g.Kernel(1).At(9000, func() { fired = append(fired, 9000) })
	g.RunUntil(3000)
	if len(fired) != 1 || fired[0] != 2000 {
		t.Fatalf("after RunUntil(3000): fired=%v", fired)
	}
	for i := 0; i < g.Size(); i++ {
		if now := g.Kernel(i).Now(); now != 3000 {
			t.Fatalf("shard %d clock %v, want 3000", i, now)
		}
	}
	g.RunUntil(10000)
	if len(fired) != 2 || fired[1] != 9000 {
		t.Fatalf("after RunUntil(10000): fired=%v", fired)
	}
	if g.Now() != 10000 {
		t.Fatalf("group now %v", g.Now())
	}
}

func TestGroupDeadlockAggregation(t *testing.T) {
	g := newTestGroup(2)
	g.Kernel(0).Spawn("stuck-a", func(p *Proc) {
		p.Park("waiting-forever")
		p.Block()
	})
	g.Kernel(1).Spawn("stuck-b", func(p *Proc) {
		p.Park("also-waiting")
		p.Block()
	})
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Procs) != 2 {
		t.Fatalf("expected 2 blocked procs, got %v", de.Procs)
	}
	names := []string{de.Procs[0].Name, de.Procs[1].Name}
	sort.Strings(names)
	if names[0] != "stuck-a" || names[1] != "stuck-b" {
		t.Fatalf("blocked procs %v", names)
	}
	g.Shutdown()
}

func TestGroupStopFromShard(t *testing.T) {
	g := newTestGroup(2)
	ran := 0
	g.Kernel(0).At(10, func() { ran++; g.Stop() })
	g.Kernel(1).At(1000000, func() { ran++ })
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
}

// TestGroupProcsAcrossShards runs token-passing proc coroutines on
// every shard with cross-shard wakeups threaded through Post.
func TestGroupProcsAcrossShards(t *testing.T) {
	const shards = 4
	g := newTestGroup(shards)
	var wakes [shards]int
	var chain func(sh int, hops int)
	chain = func(sh int, hops int) {
		k := g.Kernel(sh)
		k.Spawn(fmt.Sprintf("worker%d-%d", sh, hops), func(p *Proc) {
			wake := p.Park("await-relay")
			k.After(Duration(1500), wake)
			p.Block()
			wakes[sh]++
			if hops > 0 {
				next := (sh + 1) % shards
				k.Post(next, p.Now().Add(Duration(2000)), func() { chain(next, hops-1) })
			}
		})
	}
	g.Kernel(0).At(0, func() { chain(0, 20) })
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range wakes {
		total += w
	}
	if total != 21 {
		t.Fatalf("chain woke %d times, want 21 (%v)", total, wakes)
	}
}

type countingProbe struct{ compactions, swept int }

func (c *countingProbe) ProcEvent(Time, string, string) {}
func (c *countingProbe) QueueCompaction(at Time, n int) { c.compactions++; c.swept += n }

func TestCompactionsCounter(t *testing.T) {
	k := NewKernel(1)
	probe := &countingProbe{}
	k.SetProbe(probe)
	var timers []Timer
	for i := 0; i < 100000; i++ {
		timers = append(timers, k.After(Duration(1000+i), func() {}))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if k.Compactions() == 0 {
		t.Fatal("100k cancels triggered no compaction")
	}
	if uint64(probe.compactions) != k.Compactions() {
		t.Fatalf("probe saw %d compactions, kernel counted %d", probe.compactions, k.Compactions())
	}
	if probe.swept == 0 {
		t.Fatal("compactions swept nothing")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGroupCrossRelay(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g := newTestGroup(shards)
			b.ReportAllocs()
			b.ResetTimer()
			var hop func(sh int, n int, at Time)
			hop = func(sh, n int, at Time) {
				if n == 0 {
					return
				}
				next := (sh + 1) % shards
				nat := at.Add(Duration(1001))
				if next == sh {
					g.Kernel(sh).At(nat, func() { hop(sh, n-1, nat) })
				} else {
					g.Kernel(sh).Post(next, nat, func() { hop(next, n-1, nat) })
				}
			}
			start := g.Now()
			for sh := 0; sh < shards; sh++ {
				sh := sh
				g.Kernel(sh).At(start.Add(Duration(1+sh)), func() { hop(sh, b.N, start.Add(Duration(1+sh))) })
			}
			if err := g.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestGroupMatrixLookaheadDeterminism runs a ring relay on a
// non-uniform lookahead matrix (promise = 1000 x shard distance in the
// ring's line order) and checks the dispatch logs against the serial
// reference, so the widened promises provably change only when shards
// synchronize, never what they dispatch.
func lineMatrixGroup(shards int, step Duration) *Group {
	look := make([][]Duration, shards)
	for s := range look {
		look[s] = make([]Duration, shards)
		for d := range look[s] {
			if s != d {
				dist := s - d
				if dist < 0 {
					dist = -dist
				}
				look[s][d] = step * Duration(dist)
			}
		}
	}
	ks := make([]*Kernel, shards)
	for i := range ks {
		ks[i] = NewKernel(1)
	}
	return NewGroup(look, ks...)
}

func TestGroupMatrixLookaheadDeterminism(t *testing.T) {
	const shards = 4
	type entry struct {
		hop int
		at  Time
	}
	run := func(post func(src, dst int, at Time, fn func()), k func(int) *Kernel, logs [][]entry, done func() error) {
		// One chain hopping around the ring; every delay clears the
		// widest pair promise (3 x 1000).
		var hop func(cur, n int, at Time)
		hop = func(cur, n int, at Time) {
			logs[cur] = append(logs[cur], entry{hop: n, at: at})
			if n == 0 {
				return
			}
			next := (cur + 1) % shards
			nat := at.Add(Duration(3100 + n%7))
			post(cur, next, nat, func() { hop(next, n-1, nat) })
		}
		k(0).At(10, func() { hop(0, 40, 10) })
		if err := done(); err != nil {
			t.Fatal(err)
		}
	}
	serialLogs := make([][]entry, shards)
	sk := NewKernel(1)
	run(func(_, _ int, at Time, fn func()) { sk.At(at, fn) },
		func(int) *Kernel { return sk },
		serialLogs, sk.Run)
	// The serial "shard" log is keyed by the ring position the hop ran
	// at, which the closure records into logs[cur] identically.
	g := lineMatrixGroup(shards, Duration(1000))
	groupLogs := make([][]entry, shards)
	run(func(src, dst int, at Time, fn func()) { g.Kernel(src).Post(dst, at, fn) },
		func(i int) *Kernel { return g.Kernel(i) },
		groupLogs, g.Run)
	for sh := range serialLogs {
		if fmt.Sprint(groupLogs[sh]) != fmt.Sprint(serialLogs[sh]) {
			t.Fatalf("shard %d diverged:\nserial %v\ngroup  %v", sh, serialLogs[sh], groupLogs[sh])
		}
	}
	if g.PairLookahead(0, 3) != Duration(3000) || g.PairLookahead(0, 1) != Duration(1000) {
		t.Fatalf("matrix promises wrong: %v, %v", g.PairLookahead(0, 3), g.PairLookahead(0, 1))
	}
	if g.Lookahead() != Duration(1000) {
		t.Fatalf("group min lookahead %v, want 1000", g.Lookahead())
	}
}

// TestGroupMatrixPostEnforcedPerPair: the Post floor is the pair's own
// matrix entry, not the group minimum — a post that clears the minimum
// but undercuts its pair promise must panic.
func TestGroupMatrixPostEnforcedPerPair(t *testing.T) {
	g := lineMatrixGroup(3, Duration(1000))
	g.Kernel(0).At(100, func() {
		// Distance-1 pair at exactly the promise: legal.
		g.Kernel(0).Post(1, Time(100+1000), func() {})
		defer func() {
			if recover() == nil {
				t.Error("post below the pair promise did not panic")
			}
			g.Stop()
		}()
		// Distance-2 pair beyond the group minimum but below the pair's
		// 2000 promise: must panic.
		g.Kernel(0).Post(2, Time(100+1999), func() {})
	})
	g.Run()
}

// TestGroupSyncStatsCounters: a cross-shard run populates every
// sim.sync.* counter, the drained-event total covers all dispatched
// events (every event dispatches inside some grant run), and a
// one-shard group reports zero synchronization.
func TestGroupSyncStatsCounters(t *testing.T) {
	g := newTestGroup(4)
	runRelay(t, groupSim{g}, 4, 7)
	st := g.SyncStats()
	if st.DrainRuns == 0 || st.DrainedEvents == 0 {
		t.Fatalf("no grant runs recorded: %+v", st)
	}
	if st.HorizonPublishes == 0 {
		t.Fatalf("no horizon publishes recorded: %+v", st)
	}
	// The relay cancels nothing, so every locally scheduled event and
	// every cross post dispatches inside some grant run.
	if got, want := st.DrainedEvents, g.Scheduled()+g.CrossPosts(); got != want {
		t.Fatalf("drained %d events, kernels scheduled %d + %d crosses", got, g.Scheduled(), g.CrossPosts())
	}
	if avg := st.AvgDrainRun(); avg < 1 {
		t.Fatalf("average drain run %.2f < 1", avg)
	}

	single := newTestGroup(1)
	single.Kernel(0).At(50, func() {})
	if err := single.Run(); err != nil {
		t.Fatal(err)
	}
	st = single.SyncStats()
	if st.HorizonPublishes != 0 || st.NullMessages != 0 || st.Wakeups != 0 {
		t.Fatalf("one-shard group recorded synchronization: %+v", st)
	}
}
