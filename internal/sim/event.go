package sim

// event is a scheduled callback. Events at equal times fire in
// scheduling order (seq), which makes the simulation deterministic.
//
// Event shells are pooled: when an event fires, is skipped as
// canceled, or is swept by compaction, the shell goes back to the
// kernel's free list and its gen is bumped. A Timer remembers the gen
// it was issued with, so a stale handle held across a recycle can
// neither stop nor observe the shell's next occupant. Steady-state
// scheduling therefore allocates nothing: the working set of shells is
// bounded by the peak number of simultaneously pending events.
type event struct {
	k        *Kernel
	at       Time
	seq      uint64
	gen      uint64
	fn       func()
	index    int32 // heap position, or nowIdx / freeIdx
	canceled bool
}

const (
	nowIdx  int32 = -2 // resident in the same-instant FIFO
	freeIdx int32 = -1 // fired, recycled, or never scheduled
)

// Timer is a handle to a scheduled event that can be canceled before it
// fires. The zero Timer is invalid.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the timer was still
// pending (true) or had already fired or been stopped (false).
// Stopping an already-stopped timer is a no-op. The event shell stays
// queued but inert until dispatch or compaction sweeps it; its closure
// is released immediately.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.canceled || ev.index == freeIdx {
		return false
	}
	ev.canceled = true
	ev.fn = nil
	k := ev.k
	k.nCanceled++
	if k.nCanceled >= compactMin && k.nCanceled*2 > k.pendingLen() {
		k.compact()
	}
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled && t.ev.index != freeIdx
}

// eventLess orders events by (at, seq). seq is unique, so this is a
// total order: any heap arrangement pops in exactly the same sequence.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The pending-event store is a 4-ary min-heap indexed through
// event.index, plus a FIFO of events scheduled for the current instant
// (kernel.nowQ). A 4-ary heap halves the tree depth of the binary
// container/heap it replaces and keeps the four children of a node on
// one cache line of pointers; indexing through the shells lets
// compaction rebuild the heap without searching.

// heapPush inserts ev into the pending heap.
func (k *Kernel) heapPush(ev *event) {
	k.events = append(k.events, ev)
	k.siftUp(int32(len(k.events) - 1), ev)
}

// heapPop removes and returns the earliest heap event.
func (k *Kernel) heapPop() *event {
	h := k.events
	ev := h[0]
	last := len(h) - 1
	tail := h[last]
	h[last] = nil
	k.events = h[:last]
	if last > 0 {
		k.siftDown(0, tail)
	}
	ev.index = freeIdx
	return ev
}

// siftUp places ev at position i, bubbling it toward the root.
func (k *Kernel) siftUp(i int32, ev *event) {
	h := k.events
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
}

// siftDown places ev at position i, sinking it below smaller children.
func (k *Kernel) siftDown(i int32, ev *event) {
	h := k.events
	n := int32(len(h))
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = ev
	ev.index = i
}

const (
	// compactMin is the floor below which canceled events are not worth
	// sweeping; past it, a sweep triggers whenever canceled shells
	// outnumber live ones. The trigger depends only on event counts —
	// never on host time or memory — so a given schedule compacts at
	// identical points on every run.
	compactMin = 64
	// maxFreeEvents bounds the free list so a one-off burst does not
	// pin its peak working set forever.
	maxFreeEvents = 1 << 14
)

// pendingLen is the number of resident shells, canceled included.
func (k *Kernel) pendingLen() int {
	return len(k.events) + len(k.nowQ) - k.nowHead
}

// alloc takes an event shell from the free list, or mints one.
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return ev
	}
	return &event{k: k, index: freeIdx}
}

// recycle returns a shell to the free list. Bumping gen invalidates
// every outstanding Timer for the shell's previous life.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	ev.index = freeIdx
	if len(k.free) < maxFreeEvents {
		k.free = append(k.free, ev)
	}
}

// compact sweeps canceled shells out of the heap and the same-instant
// FIFO, recycling them, then rebuilds the heap in place. (at, seq) is
// a total order, so the rebuilt heap pops in exactly the order the old
// one would have; the FIFO keeps its relative order.
func (k *Kernel) compact() {
	swept := k.nCanceled
	k.compactions++
	if cp, ok := k.probe.(CompactionProbe); ok {
		cp.QueueCompaction(k.now, swept)
	}
	h := k.events
	w := 0
	for _, ev := range h {
		if ev.canceled {
			k.recycle(ev)
			continue
		}
		h[w] = ev
		ev.index = int32(w)
		w++
	}
	for i := w; i < len(h); i++ {
		h[i] = nil
	}
	k.events = h[:w]
	for i := (int32(w) - 2) >> 2; i >= 0; i-- {
		k.siftDown(i, k.events[i])
	}

	q := k.nowQ[k.nowHead:]
	w = 0
	for _, ev := range q {
		if ev.canceled {
			k.recycle(ev)
			continue
		}
		q[w] = ev
		w++
	}
	for i := w; i < len(q); i++ {
		q[i] = nil
	}
	k.nowQ = q[:w]
	k.nowHead = 0
	k.nCanceled = 0
}
