package sim

import "container/heap"

// event is a scheduled callback. Events at equal times fire in
// scheduling order (seq), which makes the simulation deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// Timer is a handle to a scheduled event that can be canceled before it
// fires. The zero Timer is invalid.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the timer was still
// pending (true) or had already fired or been stopped (false).
// Stopping an already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
func (t Timer) Pending() bool {
	return t.ev != nil && !t.ev.canceled && t.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventHeap)(nil)
