package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kernel is a deterministic discrete-event simulation kernel.
// Create one with NewKernel, spawn processes with Spawn, and drive the
// simulation with Run or RunUntil. A Kernel must not be shared between
// host goroutines: all access happens either before Run or from within
// simulated processes and scheduled events.
type Kernel struct {
	now Time
	seq uint64
	rng *rand.Rand

	// Pending events live in two places: a 4-ary min-heap for future
	// timestamps, and a FIFO (nowQ[nowHead:]) for events scheduled at
	// the current instant. The FIFO is the fast path — process wakeups,
	// token handoffs, and Spawn all schedule "at now" — and it is
	// already in (at, seq) order because seq is monotonic and the queue
	// only ever receives events stamped with the current time. Every
	// event in the heap predates every event in the FIFO that shares
	// its timestamp (it was pushed while now was still earlier, hence
	// with a smaller seq), so dispatch just compares the two fronts.
	events  []*event
	nowQ    []*event
	nowHead int

	// free is the event shell pool; nCanceled counts canceled shells
	// still resident, for compaction.
	free      []*event
	nCanceled int

	running *Proc // the proc currently holding the run token, if any
	yield   chan struct{}
	procs   []*Proc // all procs ever spawned
	alive   int     // procs spawned but not yet finished
	nextID  int
	stopped bool
	probe   Probe

	// compactions counts lazy-cancel sweeps over the kernel's lifetime
	// (see event.go); exposed so the trace registry can verify the
	// compaction policy under cancel-heavy loads.
	compactions uint64

	// Sharded execution (see shard.go): the group this kernel belongs
	// to and its shard index, nil/0 for a standalone kernel.
	group *Group
	shard int
}

// Probe observes process lifecycle transitions. It exists so a tracing
// layer can watch the kernel without sim importing it; observation must
// not schedule events or touch the clock.
type Probe interface {
	ProcEvent(at Time, proc string, what string)
}

// CompactionProbe is an optional extension of Probe: a probe that also
// implements it observes every lazy-cancel compaction sweep (at the
// virtual time it ran, with the number of canceled shells swept).
type CompactionProbe interface {
	QueueCompaction(at Time, swept int)
}

// SetProbe installs (or, with nil, removes) the lifecycle probe.
func (k *Kernel) SetProbe(p Probe) { k.probe = p }

// Compactions returns how many lazy-cancel compaction sweeps the
// kernel has performed over its lifetime.
func (k *Kernel) Compactions() uint64 { return k.compactions }

// NewKernel returns a kernel with its virtual clock at zero. The seed
// feeds the kernel's random source, which is used only by components
// that explicitly ask for randomness (e.g. random backoff); the kernel
// itself is deterministic for a given seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// At schedules fn to run at time at (clamped to the present) and
// returns a Timer that can cancel it. Steady-state scheduling is
// allocation-free: the shell comes from the kernel's pool.
func (k *Kernel) At(at Time, fn func()) Timer {
	if at < k.now {
		at = k.now
	}
	ev := k.alloc()
	ev.at = at
	ev.seq = k.seq
	ev.fn = fn
	k.seq++
	if at == k.now {
		ev.index = nowIdx
		k.nowQ = append(k.nowQ, ev)
	} else {
		k.heapPush(ev)
	}
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Spawn creates a new simulated process running fn. The process starts
// at the current virtual time, after already-scheduled work at this
// instant. The name appears in deadlock reports and traces.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
		state:  procNew,
	}
	p.resumeFn = func() { k.switchTo(p) }
	k.nextID++
	k.procs = append(k.procs, p)
	k.alive++
	if k.probe != nil {
		k.probe.ProcEvent(k.now, name, "spawn")
	}
	k.At(k.now, func() { k.startProc(p, fn) })
	return p
}

// startProc launches the goroutine backing p and gives it the token.
// Must be called from kernel-loop context.
func (k *Kernel) startProc(p *Proc, fn func(p *Proc)) {
	go func() {
		<-p.resume
		defer func() {
			p.state = procDone
			k.alive--
			if k.probe != nil {
				k.probe.ProcEvent(k.now, p.name, "done")
			}
			if r := recover(); r != nil && r != errKilled {
				p.panicked = r
			}
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.switchTo(p)
}

// switchTo hands the run token to p and waits until p blocks or
// finishes. Must only be called from kernel-loop context (inside an
// event callback), never from a running proc.
func (k *Kernel) switchTo(p *Proc) {
	if p.state == procDone {
		return
	}
	prev := k.running
	k.running = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-k.yield
	k.running = prev
	if p.panicked != nil {
		panic(fmt.Sprintf("sim: proc %q panicked: %v", p.name, p.panicked))
	}
}

// Running returns the proc currently holding the run token, or nil when
// the kernel loop itself is running.
func (k *Kernel) Running() *Proc { return k.running }

// Alive reports the number of spawned processes that have not finished.
func (k *Kernel) Alive() int { return k.alive }

// Scheduled returns how many events have been scheduled over the
// kernel's lifetime (including later-canceled ones). It is the
// host-side work proxy behind events-per-message efficiency metrics:
// fewer scheduled events for the same delivered traffic means a
// cheaper simulation.
func (k *Kernel) Scheduled() uint64 { return k.seq }

// Stop makes Run return after the current event completes. Pending
// events remain queued; a subsequent Run resumes them.
func (k *Kernel) Stop() { k.stopped = true }

// front returns the earliest pending event without removing it, or
// nil when nothing is queued. Canceled shells are still visible here;
// the dispatch loops sweep them.
func (k *Kernel) front() *event {
	hasNow := k.nowHead < len(k.nowQ)
	hasHeap := len(k.events) > 0
	switch {
	case hasNow && hasHeap:
		if eventLess(k.nowQ[k.nowHead], k.events[0]) {
			return k.nowQ[k.nowHead]
		}
		return k.events[0]
	case hasNow:
		return k.nowQ[k.nowHead]
	case hasHeap:
		return k.events[0]
	}
	return nil
}

// popFront removes ev, which must be the event front() just returned.
func (k *Kernel) popFront(ev *event) {
	if ev.index == nowIdx {
		k.nowQ[k.nowHead] = nil
		k.nowHead++
		if k.nowHead == len(k.nowQ) {
			k.nowQ = k.nowQ[:0]
			k.nowHead = 0
		}
		ev.index = freeIdx
		return
	}
	k.heapPop()
}

// Run dispatches events until the event queue drains or Stop is
// called. If processes remain blocked when the queue drains, Run
// returns a *DeadlockError describing them; the processes stay parked
// and can be cleaned up with Shutdown.
func (k *Kernel) Run() error {
	k.stopped = false
	for !k.stopped {
		ev := k.front()
		if ev == nil {
			break
		}
		k.popFront(ev)
		if ev.canceled {
			k.nCanceled--
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		fn := ev.fn
		k.recycle(ev)
		fn()
	}
	if k.stopped {
		return nil
	}
	for _, p := range k.procs {
		if (p.state == procParked || p.state == procNew) && !p.daemon {
			return k.deadlockError()
		}
	}
	return nil
}

// RunFor advances the simulation by at most d, then returns. Parked
// processes are not a deadlock under RunFor: they may be awaiting
// events that the caller will inject later.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

// RunUntil dispatches events with timestamps <= deadline and then sets
// the clock to deadline (if it is in the future). An event scheduled
// exactly at the deadline fires.
func (k *Kernel) RunUntil(deadline Time) {
	k.stopped = false
	for !k.stopped {
		ev := k.front()
		if ev == nil || ev.at > deadline {
			break
		}
		k.popFront(ev)
		if ev.canceled {
			k.nCanceled--
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		fn := ev.fn
		k.recycle(ev)
		fn()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
}

// Shutdown kills all parked processes so their goroutines exit. It is
// safe to call after Run returns (including after a deadlock).
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if p.state == procParked {
			p.killed = true
			k.switchTo(p)
		}
	}
}

// Blocked returns the processes currently parked on a simulation
// primitive, in spawn order. Useful for debugging tools (cdb).
func (k *Kernel) Blocked() []*Proc {
	var out []*Proc
	for _, p := range k.procs {
		if p.state == procParked {
			out = append(out, p)
		}
	}
	return out
}

func (k *Kernel) deadlockError() *DeadlockError {
	err := &DeadlockError{At: k.now}
	for _, p := range k.procs {
		if (p.state == procParked || p.state == procNew) && !p.daemon {
			err.Procs = append(err.Procs, BlockedProc{
				Name:   p.name,
				Reason: p.waitReason,
			})
		}
	}
	sort.Slice(err.Procs, func(i, j int) bool { return err.Procs[i].Name < err.Procs[j].Name })
	return err
}

// BlockedProc describes one process stuck at deadlock time.
type BlockedProc struct {
	Name   string
	Reason string
}

// DeadlockError reports that the event queue drained while processes
// were still blocked — the simulated application is deadlocked.
type DeadlockError struct {
	At    Time
	Procs []BlockedProc
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at %v with %d blocked proc(s):", e.At, len(e.Procs))
	for _, p := range e.Procs {
		fmt.Fprintf(&b, " [%s: %s]", p.Name, p.Reason)
	}
	return b.String()
}
