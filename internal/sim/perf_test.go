package sim

import "testing"

// TestCanceledTimerSweep is the regression test for the canceled-timer
// leak: a workload that schedules and immediately stops a million
// timers must not accumulate their shells in the pending store (the
// old heap kept every canceled entry until its timestamp came up).
func TestCanceledTimerSweep(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	for i := 0; i < 1_000_000; i++ {
		tm := k.After(Duration(i%1000+1)*Microsecond, func() { fired++ })
		if !tm.Stop() {
			t.Fatalf("timer %d: Stop reported not pending", i)
		}
	}
	if got := k.pendingLen(); got > 2*compactMin {
		t.Fatalf("pending store holds %d shells after 1M cancels, want <= %d", got, 2*compactMin)
	}
	if len(k.free) > maxFreeEvents {
		t.Fatalf("free list grew to %d, cap is %d", len(k.free), maxFreeEvents)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("%d canceled timers fired", fired)
	}
}

// TestCanceledSweepKeepsLiveOrder verifies compaction never reorders
// the survivors: live timers interleaved with a flood of cancels still
// fire in exact (time, schedule-order) sequence.
func TestCanceledSweepKeepsLiveOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	n := 0
	for i := 0; i < 10_000; i++ {
		i := i
		tm := k.At(k.Now().Add(Duration(10_000-i)*Microsecond), func() { got = append(got, i) })
		if i%10 != 0 {
			tm.Stop()
		} else {
			n++
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("fired %d, want %d", len(got), n)
	}
	for j := 1; j < len(got); j++ {
		if got[j-1] < got[j] { // times descend with i, so i must descend
			t.Fatalf("out of order at %d: %d before %d", j, got[j-1], got[j])
		}
	}
}

// TestRunUntilEventExactlyAtDeadline: an event scheduled exactly at
// the deadline fires, and the clock lands on the deadline.
func TestRunUntilEventExactlyAtDeadline(t *testing.T) {
	k := NewKernel(1)
	deadline := k.Now().Add(5 * Millisecond)
	fired := false
	k.At(deadline, func() { fired = true })
	after := false
	k.At(deadline.Add(1), func() { after = true })
	k.RunUntil(deadline)
	if !fired {
		t.Fatal("event at the deadline did not fire")
	}
	if after {
		t.Fatal("event past the deadline fired")
	}
	if k.Now() != deadline {
		t.Fatalf("clock at %v, want %v", k.Now(), deadline)
	}
}

// TestStopMidDispatchSameInstant: Stop called from inside an event
// leaves the rest of that instant's events queued, and the next Run
// dispatches them in the original order.
func TestStopMidDispatchSameInstant(t *testing.T) {
	k := NewKernel(1)
	var got []int
	at := k.Now().Add(Millisecond)
	k.At(at, func() { got = append(got, 1); k.Stop() })
	k.At(at, func() { got = append(got, 2) })
	k.At(at, func() { got = append(got, 3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("first run dispatched %v, want [1]", got)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("resume dispatched %v, want [1 2 3]", got)
	}
}

// TestStaleTimerHandleAfterReuse: a Timer stopped and swept keeps
// reporting dead even after its pooled shell is reissued to a new
// event — the stale handle must not be able to stop the new occupant.
func TestStaleTimerHandleAfterReuse(t *testing.T) {
	k := NewKernel(1)
	t1 := k.After(Millisecond, func() {})
	t1.Stop()
	if err := k.Run(); err != nil { // sweeps and recycles the shell
		t.Fatal(err)
	}
	fired := false
	t2 := k.After(Millisecond, func() { fired = true })
	if t1.Pending() {
		t.Fatal("stale handle reports pending after shell reuse")
	}
	if t1.Stop() {
		t.Fatal("stale handle stopped the shell's new occupant")
	}
	if !t2.Pending() {
		t.Fatal("new timer lost its pending state")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("new occupant did not fire")
	}
}

// TestRescheduleWhileCanceled: stopping a timer and immediately
// scheduling a replacement (the arm-timer idiom) must leave exactly
// the replacement live, across enough iterations to force shell reuse
// and compaction underneath.
func TestRescheduleWhileCanceled(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	var tm Timer
	for i := 0; i < 10_000; i++ {
		tm.Stop()
		tm = k.After(Duration(i+1)*Microsecond, func() { fired++ })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("%d timers fired, want exactly the last one", fired)
	}
}

// TestTimerStopInsideOwnCallback: Stop from within the firing callback
// reports false (it already fired) and must not corrupt the pool.
func TestTimerStopInsideOwnCallback(t *testing.T) {
	k := NewKernel(1)
	var tm Timer
	stopped := true
	tm = k.After(Millisecond, func() { stopped = tm.Stop() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if stopped {
		t.Fatal("Stop inside the firing callback reported pending")
	}
}

// TestSchedulingZeroAllocSteadyState is the allocation guard for the
// core scheduling path: once the pools are warm, At/After plus
// dispatch allocate nothing.
func TestSchedulingZeroAllocSteadyState(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	for i := 0; i < 128; i++ {
		k.After(Microsecond, fn)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.After(Microsecond, fn)
		k.After(2*Microsecond, fn)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+dispatch allocates %v/op, want 0", allocs)
	}
}

// TestStopZeroAlloc: cancel path allocates nothing either.
func TestStopZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	for i := 0; i < 128; i++ {
		k.After(Microsecond, fn).Stop()
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.After(Microsecond, fn).Stop()
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %v/op, want 0", allocs)
	}
}
