package sim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	k := NewKernel(1)
	var at []Time
	k.Spawn("sleeper", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(10 * Microsecond)
		at = append(at, p.Now())
		p.Sleep(Microseconds(2.5))
		at = append(at, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, Time(10 * Microsecond), Time(Microseconds(12.5))}
	if len(at) != len(want) {
		t.Fatalf("got %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("step %d: at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestEventsFireInOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.After(5*Microsecond, func() { order = append(order, 2) })
	k.After(1*Microsecond, func() { order = append(order, 1) })
	k.After(5*Microsecond, func() { order = append(order, 3) }) // same time: seq order
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.After(Microsecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(Microsecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	if tm.Pending() {
		t.Fatal("fired timer should not be pending")
	}
}

func TestSpawnOrderingAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) { order = append(order, name) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var log []string
		q := NewQueue[int](k, "q", 2)
		for i := 0; i < 3; i++ {
			i := i
			k.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 4; j++ {
					q.Put(p, i*10+j)
					p.Sleep(Duration(i+1) * Microsecond)
				}
			})
		}
		k.Spawn("cons", func(p *Proc) {
			for n := 0; n < 12; n++ {
				v := q.Get(p)
				log = append(log, fmt.Sprintf("%v:%d", p.Now(), v))
				p.Sleep(500 * Nanosecond)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nondeterministic:\n%v\n%v", a, b)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "never", 0)
	k.Spawn("waiter", func(p *Proc) { q.Get(p) })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(dl.Procs) != 1 || dl.Procs[0].Name != "waiter" {
		t.Fatalf("bad deadlock report: %+v", dl)
	}
	if dl.Procs[0].Reason != "queue-get never" {
		t.Fatalf("reason = %q", dl.Procs[0].Reason)
	}
	k.Shutdown()
	if k.Alive() != 0 {
		t.Fatalf("alive after shutdown: %d", k.Alive())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	k := NewKernel(1)
	s := NewSemaphore(k, "s", 1)
	var order []string
	hold := func(name string, work Duration) {
		k.Spawn(name, func(p *Proc) {
			s.Acquire(p)
			order = append(order, name)
			p.Sleep(work)
			s.Release()
		})
	}
	hold("first", 10*Microsecond)
	hold("second", Microsecond)
	hold("third", Microsecond)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[first second third]" {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel(1)
	s := NewSemaphore(k, "s", 1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	s.Release()
	if s.Value() != 1 {
		t.Fatalf("value = %d", s.Value())
	}
}

func TestCondSignalAndBroadcast(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "c")
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(Microsecond)
		if !c.Signal() {
			t.Error("Signal found no waiter")
		}
		p.Sleep(Microsecond)
		if n := c.Broadcast(); n != 2 {
			t.Errorf("Broadcast woke %d, want 2", n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	var wg WaitGroup
	done := false
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * Microsecond)
			wg.Done()
		})
	}
	k.Spawn("main", func(p *Proc) {
		wg.Wait(p)
		done = true
		if p.Now() != Time(3*Microsecond) {
			t.Errorf("woke at %v, want 3µs", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("main never woke")
	}
}

func TestQueueCapacityBlocksPutter(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q", 1)
	var events []string
	k.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		events = append(events, "put1")
		q.Put(p, 2) // blocks until consumer takes item 1
		events = append(events, fmt.Sprintf("put2@%v", p.Now()))
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		if v := q.Get(p); v != 1 {
			t.Errorf("got %d, want 1", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[put1 put2@t=5.000µs]"
	if fmt.Sprint(events) != want {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

func TestQueueTryOps(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[string](k, "q", 2)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut("a") || !q.TryPut("b") {
		t.Fatal("TryPut should succeed below capacity")
	}
	if q.TryPut("c") {
		t.Fatal("TryPut above capacity succeeded")
	}
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q, %v", v, ok)
	}
	if v, ok := q.TryGet(); !ok || v != "a" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.After(10*Microsecond, func() { fired++ })
	k.After(30*Microsecond, func() { fired++ })
	k.RunUntil(Time(20 * Microsecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != Time(20*Microsecond) {
		t.Fatalf("now = %v", k.Now())
	}
	k.RunFor(15 * Microsecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestStopPausesRun(t *testing.T) {
	k := NewKernel(1)
	var hits []Time
	k.After(Microsecond, func() {
		hits = append(hits, k.Now())
		k.Stop()
	})
	k.After(2*Microsecond, func() { hits = append(hits, k.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits after resume = %v", hits)
	}
}

func TestParkBlockWake(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	var wake func()
	k.Spawn("blocker", func(p *Proc) {
		wake = p.Park("custom-wait")
		p.Block()
		woke = p.Now()
	})
	k.After(7*Microsecond, func() { wake() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(7*Microsecond) {
		t.Fatalf("woke at %v", woke)
	}
}

func TestDoubleWakeIsNoop(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("blocker", func(p *Proc) {
		wake := p.Park("w")
		k.After(Microsecond, func() { wake(); wake() })
		p.Block()
		p.Sleep(10 * Microsecond) // would panic if resumed twice
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("bomb", func(p *Proc) { panic("boom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
	}()
	_ = k.Run()
}

// Property: a FIFO queue delivers every item exactly once, in order,
// regardless of producer/consumer interleaving parameters.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(capRaw uint8, prodDelay, consDelay uint8, nRaw uint8) bool {
		capacity := int(capRaw % 8)
		n := int(nRaw%50) + 1
		k := NewKernel(7)
		q := NewQueue[int](k, "q", capacity)
		var got []int
		k.Spawn("prod", func(p *Proc) {
			for i := 0; i < n; i++ {
				q.Put(p, i)
				p.Sleep(Duration(prodDelay) * Nanosecond)
			}
		})
		k.Spawn("cons", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, q.Get(p))
				p.Sleep(Duration(consDelay) * Nanosecond)
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual time never goes backwards across any sequence of
// sleeps with arbitrary durations.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(3)
		ok := true
		k.Spawn("walker", func(p *Proc) {
			last := p.Now()
			for _, d := range delays {
				p.Sleep(Duration(d) * Nanosecond)
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{Microseconds(303), "303.000µs"},
		{Milliseconds(12), "12.000ms"},
		{Seconds(2), "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d: got %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestBlockedListsParkedProcs(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "gate")
	k.Spawn("a", func(p *Proc) { c.Wait(p) })
	k.Spawn("b", func(p *Proc) {
		p.Sleep(Microsecond)
		if got := len(k.Blocked()); got != 1 {
			t.Errorf("blocked = %d, want 1", got)
		}
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonDoesNotDeadlock(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "dq", 0)
	d := k.Spawn("daemon", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	d.SetDaemon(true)
	k.Spawn("worker", func(p *Proc) {
		q.Put(p, 1)
		p.Sleep(Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("daemon should not count as deadlock: %v", err)
	}
	if !d.Daemon() {
		t.Fatal("daemon flag lost")
	}
	k.Shutdown()
}

func TestRunForWithEmptyQueueAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(50 * Microsecond)
	if k.Now() != Time(50*Microsecond) {
		t.Fatalf("now = %v", k.Now())
	}
}

func TestSleepUntilPastIsYield(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Spawn("w", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		p.SleepUntil(Time(5 * Microsecond)) // already past
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(10*Microsecond) {
		t.Fatalf("woke at %v", woke)
	}
}

func TestMicrosecondHelpers(t *testing.T) {
	if Microseconds(1.5) != 1500*Nanosecond {
		t.Fatal("Microseconds fraction lost")
	}
	if d := Seconds(0.25); d.Seconds() != 0.25 {
		t.Fatalf("Seconds round trip: %v", d.Seconds())
	}
	if tm := Time(Milliseconds(2)); tm.Microseconds() != 2000 {
		t.Fatalf("Time.Microseconds = %v", tm.Microseconds())
	}
	if tm := Time(Seconds(3)); tm.Seconds() != 3 {
		t.Fatalf("Time.Seconds = %v", tm.Seconds())
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a := NewKernel(99).Rand().Int63()
	b := NewKernel(99).Rand().Int63()
	c := NewKernel(100).Rand().Int63()
	if a != b {
		t.Fatal("same seed differs")
	}
	if a == c {
		t.Fatal("different seeds collide (suspicious)")
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel(1)
	p1 := k.Spawn("first", func(p *Proc) {
		if p.Kernel() != k || p.Name() != "first" || p.ID() != 0 {
			t.Error("accessors broken")
		}
	})
	_ = p1
	k.Spawn("second", func(p *Proc) {
		if p.ID() != 1 {
			t.Errorf("id = %d", p.ID())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Running() != nil {
		t.Fatal("running should be nil outside dispatch")
	}
}
