package workload_test

import (
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/workload"
)

func TestChannelLatencyMatchesTable2(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	us := workload.ChannelLatency(sys, sys.Node(0), sys.Node(1), 4, 500)
	if us < 295 || us > 311 {
		t.Fatalf("latency = %.1f, want ~303", us)
	}
}

func TestOpenStormDistributionSpread(t *testing.T) {
	sysC, err := core.Build(core.Config{Hosts: 1, Nodes: 8, CentralizedManager: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resC := workload.OpenStorm(sysC, 4)
	if resC.Opens != 32 || resC.Managers != 1 || resC.MaxPerManager != 32 {
		t.Fatalf("centralized = %+v", resC)
	}

	sysD, err := core.Build(core.Config{Hosts: 1, Nodes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resD := workload.OpenStorm(sysD, 4)
	if resD.Managers != 8 {
		t.Fatalf("distributed managers = %d", resD.Managers)
	}
	if resD.MaxPerManager >= resC.MaxPerManager/2 {
		t.Fatalf("distributed max share %d not clearly below centralized %d",
			resD.MaxPerManager, resC.MaxPerManager)
	}
	if resD.Elapsed >= resC.Elapsed {
		t.Fatalf("distributed storm (%v) should beat centralized (%v)", resD.Elapsed, resC.Elapsed)
	}
}

func TestManyToOneDeliversEverything(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := workload.ManyToOne(sys, 500, 8)
	if mk <= 0 {
		t.Fatalf("makespan = %v", mk)
	}
	// 4 senders × 8 messages with ~0.7ms serialized receiver work
	// each: the makespan is bounded.
	if mk > sim.Seconds(1) {
		t.Fatalf("makespan %v absurdly long", mk)
	}
}
