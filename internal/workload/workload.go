// Package workload provides reusable traffic generators for the
// benchmark harness: channel ping-pong, many-to-one bursts, and the
// channel-open storm that exposes the Meglos resource-manager
// bottleneck (paper §3.2).
package workload

import (
	"fmt"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// ChannelLatency measures the paper's channel benchmark: `rounds`
// writes of `size` bytes from node a to node b over one channel,
// returning µs per message.
func ChannelLatency(sys *core.System, a, b *core.Machine, size, rounds int) float64 {
	var start, end sim.Time
	name := fmt.Sprintf("wl.lat.%d.%d.%d", a.EP, b.EP, size)
	sys.Spawn(a, "wl-writer", 0, func(sp *kern.Subprocess) {
		ch := a.Chans.Open(sp, name, objmgr.OpenAny)
		start = sp.Now()
		for i := 0; i < rounds; i++ {
			if err := ch.Write(sp, size, nil); err != nil {
				panic(err)
			}
		}
		end = sp.Now()
	})
	sys.Spawn(b, "wl-reader", 0, func(sp *kern.Subprocess) {
		ch := b.Chans.Open(sp, name, objmgr.OpenAny)
		for i := 0; i < rounds; i++ {
			if _, ok := ch.Read(sp); !ok {
				panic("wl: read failed")
			}
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start).Microseconds() / float64(rounds)
}

// OpenStormResult reports a rendezvous storm.
type OpenStormResult struct {
	Elapsed sim.Duration
	// Opens is the total number of opens performed.
	Opens int
	// MaxPerManager is the largest share any single manager handled.
	MaxPerManager int
	// Managers is the manager count.
	Managers int
}

// OpenStorm has every processing-node pair (2i, 2i+1) open
// `opensPerPair` channels simultaneously — the application-startup
// pattern whose opens all funneled through Meglos's single host
// manager. Build the system with CentralizedManager true or false to
// compare.
func OpenStorm(sys *core.System, opensPerPair int) OpenStormResult {
	nodes := sys.Nodes()
	pairs := len(nodes) / 2
	var start, end sim.Time
	first := true
	for pr := 0; pr < pairs; pr++ {
		for side := 0; side < 2; side++ {
			m := nodes[2*pr+side]
			pr := pr
			sys.Spawn(m, fmt.Sprintf("storm%d.%d", pr, side), 0, func(sp *kern.Subprocess) {
				if first {
					first = false
					start = sp.Now()
				}
				for i := 0; i < opensPerPair; i++ {
					ch := m.Chans.Open(sp, fmt.Sprintf("storm.%d.%d", pr, i), objmgr.OpenAny)
					_ = ch
				}
				if sp.Now() > end {
					end = sp.Now()
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	res := OpenStormResult{
		Elapsed:  end.Sub(start),
		Opens:    2 * pairs * opensPerPair,
		Managers: len(sys.Mgr.Managers()),
	}
	for _, ep := range sys.Mgr.Managers() {
		if n := sys.Mgr.Processed(ep); n > res.MaxPerManager {
			res.MaxPerManager = n
		}
	}
	return res
}

// Stream has node 0 write `msgs` messages of `size` bytes to node 1
// over a single channel while node 1 reads them as fast as it can;
// returns the virtual makespan from the first write starting to the
// last read completing. Sizes above the hardware fragment limit
// exercise kernel fragmentation; with a write window above 1 the
// fragment trains of successive writes pipeline through the fabric
// instead of stop-and-waiting per message.
func Stream(sys *core.System, size, msgs int) sim.Duration {
	nodes := sys.Nodes()
	if len(nodes) < 2 {
		panic("wl: stream needs at least 2 nodes")
	}
	var start, end sim.Time
	sys.Spawn(nodes[1], "stream-sink", 0, func(sp *kern.Subprocess) {
		ch := nodes[1].Chans.Open(sp, "stream", objmgr.OpenAny)
		for n := 0; n < msgs; n++ {
			if _, ok := ch.Read(sp); !ok {
				panic("wl: stream read failed")
			}
		}
		end = sp.Now()
	})
	sys.Spawn(nodes[0], "stream-src", 0, func(sp *kern.Subprocess) {
		ch := nodes[0].Chans.Open(sp, "stream", objmgr.OpenAny)
		start = sp.Now()
		for m := 0; m < msgs; m++ {
			if err := ch.Write(sp, size, nil); err != nil {
				panic(err)
			}
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start)
}

// ManyToOne has every node except the first write `msgs` messages of
// `size` bytes to node 0 over channels; returns the makespan.
func ManyToOne(sys *core.System, size, msgs int) sim.Duration {
	nodes := sys.Nodes()
	if len(nodes) < 2 {
		panic("wl: many-to-one needs at least 2 nodes")
	}
	var start, end sim.Time
	started := false
	senders := len(nodes) - 1
	sys.Spawn(nodes[0], "sink", 0, func(sp *kern.Subprocess) {
		var chs []*channels.Channel
		for i := 1; i <= senders; i++ {
			chs = append(chs, nodes[0].Chans.Open(sp, fmt.Sprintf("m2o.%d", i), objmgr.OpenAny))
		}
		// Round-robin reads keep all senders flowing.
		for n := 0; n < senders*msgs; n++ {
			if _, ok := chs[n%senders].Read(sp); !ok {
				panic("wl: sink read failed")
			}
		}
		end = sp.Now()
	})
	for i := 1; i <= senders; i++ {
		i := i
		sys.Spawn(nodes[i], fmt.Sprintf("src%d", i), 0, func(sp *kern.Subprocess) {
			ch := nodes[i].Chans.Open(sp, fmt.Sprintf("m2o.%d", i), objmgr.OpenAny)
			if !started {
				started = true
				start = sp.Now()
			}
			for m := 0; m < msgs; m++ {
				if err := ch.Write(sp, size, nil); err != nil {
					panic(err)
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start)
}
