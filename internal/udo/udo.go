// Package udo implements VORX user-defined communications objects
// (paper §4.1): a general interface that lets applications bypass the
// channel protocol entirely. Processes access the hardware registers
// from their applications — eliminating the overhead of supervisor
// calls into the kernel — and either specify interrupt service
// routines for incoming messages or disable communications interrupts
// and poll for input at convenient places in the program.
//
// On top of raw objects, the package provides the two protocol styles
// the paper shows outperforming channels:
//
//   - NoProtocol: no flow control at all, relying on the HPC's
//     hardware flow control plus application-level synchronization —
//     the parallel-SPICE configuration that reached 60 µs software
//     latency for 64-byte messages, and the bitmap-streaming
//     configuration that reached 3.2 Mbyte/s.
//   - Sliding window (reader-active): the benchmarked protocol of
//     Table 1, with k initial buffer-available credits and one credit
//     returned per message received.
//
// User-defined objects rendezvous through the same object manager as
// channels, so both coexist (paper: "User-defined communications
// objects are integrated with the object manager").
package udo

import (
	"fmt"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Msg is a message received through a user-defined object.
type Msg struct {
	Src     topo.EndpointID
	Size    int
	Payload any
}

// RawHeader is the minimal framing raw objects put on the wire.
const RawHeader = 4

// PollCheck is the user-level cost of one test-for-input when
// interrupts are disabled.
var PollCheck = sim.Microseconds(10)

// PolledDepth bounds how many undelivered messages a polled object
// absorbs before hardware backpressure reaches the sender.
const PolledDepth = 8

// Object is one endpoint of a user-defined communications object.
type Object struct {
	f      *netif.IF
	name   string
	polled bool

	queue   []Msg
	pending []*hpc.Delivery // polled mode: deliveries held for backpressure
	waiter  func()
	waiting bool

	// Received counts messages accepted.
	Received int
}

// New creates a user-defined object named name on node interface f.
// With polled=false incoming messages raise an interrupt service
// routine (entry + read cost); with polled=true interrupts are
// disabled and the application must call TryRecv/Recv to poll.
func New(f *netif.IF, name string, polled bool) *Object {
	o := &Object{f: f, name: name, polled: polled}
	costs := f.Node().Costs()
	svcName := "udo." + name
	if polled {
		f.Register(svcName, netif.Service{
			NoInterrupt: true,
			HandleRaw: func(d *hpc.Delivery) {
				if len(o.queue)+len(o.pending) < PolledDepth {
					o.accept(d.Msg)
					d.Release()
				} else {
					o.pending = append(o.pending, d)
				}
				if o.waiting {
					o.waiting = false
					o.waiter()
				}
			},
		})
		return o
	}
	f.Register(svcName, netif.Service{
		Cost: func(m *hpc.Message) sim.Duration {
			return costs.UDORecvISR + costs.CopyTime(m.Size-RawHeader)
		},
		Handle: func(m *hpc.Message) {
			o.accept(m)
			if o.waiting {
				o.waiting = false
				o.waiter()
			}
		},
	})
	return o
}

func (o *Object) accept(m *hpc.Message) {
	env := m.Payload.(netif.Envelope)
	o.queue = append(o.queue, Msg{Src: m.Src, Size: m.Size - RawHeader, Payload: env.Body})
	o.Received++
}

// Name returns the object's rendezvous name.
func (o *Object) Name() string { return o.name }

// Send transmits size data bytes directly at the hardware: no system
// call, just the user-level setup cost plus the copy into the output
// section. It blocks only on hardware output backpressure.
func (o *Object) Send(sp *kern.Subprocess, dst topo.EndpointID, size int, payload any) error {
	costs := o.f.Node().Costs()
	sp.Compute(costs.UDOSend + costs.CopyTime(size))
	return o.f.Send(sp, dst, "udo."+o.name, size+RawHeader, payload)
}

// SendAsync transmits from interrupt context (for ISR-driven
// protocols); no CPU is charged here.
func (o *Object) SendAsync(dst topo.EndpointID, size int, payload any) {
	o.f.SendAsync(dst, "udo."+o.name, size+RawHeader, payload, nil)
}

// TryRecv polls for input: one poll-check of user CPU; if a message is
// present it is returned (polled mode pays the user-level copy here).
func (o *Object) TryRecv(sp *kern.Subprocess) (Msg, bool) {
	costs := o.f.Node().Costs()
	sp.Compute(PollCheck)
	if len(o.queue) == 0 {
		return Msg{}, false
	}
	m := o.popLocked()
	if o.polled {
		sp.Compute(costs.CopyTime(m.Size))
	}
	return m, true
}

// Recv returns the next message. In ISR mode it blocks until the ISR
// delivers one; in polled mode it spin-polls (interrupts stay off).
func (o *Object) Recv(sp *kern.Subprocess) Msg {
	costs := o.f.Node().Costs()
	if o.polled {
		for {
			sp.Compute(PollCheck)
			if len(o.queue) > 0 {
				m := o.popLocked()
				sp.Compute(costs.CopyTime(m.Size))
				return m
			}
			// Idle-wait for arrival without charging CPU (the real
			// code would spin; the result is the same in virtual
			// time because nothing else wants this CPU).
			wake := sp.Block(kern.WaitInput, "udo-poll "+o.name)
			o.waiter, o.waiting = wake, true
			sp.BlockNow()
		}
	}
	if len(o.queue) > 0 {
		return o.popLocked()
	}
	wake := sp.Block(kern.WaitInput, "udo-recv "+o.name)
	o.waiter, o.waiting = wake, true
	sp.BlockNow()
	sp.System(costs.SchedulerWake)
	if len(o.queue) == 0 {
		panic(fmt.Sprintf("udo: woken with empty queue on %q", o.name))
	}
	return o.popLocked()
}

func (o *Object) popLocked() Msg {
	m := o.queue[0]
	o.queue = o.queue[1:]
	if len(o.pending) > 0 {
		d := o.pending[0]
		o.pending = o.pending[1:]
		o.accept(d.Msg)
		d.Release()
	}
	return m
}

// Pending reports queued-but-unread messages.
func (o *Object) Pending() int { return len(o.queue) }

// Remote is a send-only handle to a user-defined object registered on
// another node: the local process writes at its own hardware
// registers, addressed to the remote object's service.
type Remote struct {
	f    *netif.IF
	name string
}

// NewRemote returns a sender handle on node interface f for the
// object registered elsewhere under name. Nothing is registered
// locally.
func NewRemote(f *netif.IF, name string) *Remote {
	return &Remote{f: f, name: name}
}

// Send transmits size data bytes to the remote object on dst with the
// same direct-access cost model as Object.Send.
func (r *Remote) Send(sp *kern.Subprocess, dst topo.EndpointID, size int, payload any) error {
	costs := r.f.Node().Costs()
	sp.Compute(costs.UDOSend + costs.CopyTime(size))
	return r.f.Send(sp, dst, "udo."+r.name, size+RawHeader, payload)
}
