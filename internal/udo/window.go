package udo

import (
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Sliding-window (reader-active) protocol, exactly as benchmarked for
// Table 1 of the paper:
//
//	"The receiver initially sends k buffer-available messages to the
//	sender, where k is the maximum number of messages that fit in its
//	available buffer space, and thereafter sends one buffer-available
//	message each time a message is received. The sender keeps its own
//	count of the number of receiver buffers available... If the count
//	is greater than zero, the sender can send a message immediately,
//	otherwise it blocks until the count becomes greater than zero."
//
// Both halves are user-level code using interrupt-driven user-defined
// objects; the calibrated bookkeeping costs below reproduce the
// table's 414 µs (1 buffer) → ~165 µs (64 buffers) curve at 4 bytes.

// Calibrated user-level protocol costs (see DESIGN.md). In steady
// state the *sender* is the bottleneck stage (per-message send cost
// plus credit-ISR processing ≈ 164 µs at 4 bytes), so with enough
// buffers credits accumulate, the sender never stalls, and the
// per-message time converges to the Table 1 floor; with one buffer
// every message pays the full serialized round trip (414 µs).
var (
	// WindowSendBookkeeping is the sender's per-message window
	// accounting before touching the hardware.
	WindowSendBookkeeping = sim.Microseconds(84)
	// WindowSendFormatPerByte is the sender's per-byte cost to build
	// the outgoing message in its transmit ring.
	WindowSendFormatPerByte = sim.Microseconds(0.053)
	// CreditISR is the sender-side user ISR cost to process one
	// buffer-available message (user-mode interrupt trampoline plus
	// counter update), beyond the fixed interrupt entry.
	CreditISR = sim.Microseconds(40)
	// WindowDeliverISR is the receiver-side user ISR cost to file an
	// arrived message into the window buffer ring.
	WindowDeliverISR = sim.Microseconds(30)
	// WindowReadBookkeeping is the receiver's per-message user-level
	// cost to take a message out of the ring.
	WindowReadBookkeeping = sim.Microseconds(74)
	// CreditBytes is the wire size of a buffer-available message.
	CreditBytes = 8
)

// WindowSender is the sending half of the protocol.
type WindowSender struct {
	f       *netif.IF
	name    string
	dst     topo.EndpointID
	msgSize int

	credits int
	blocked func()
	waiting bool

	// Sent counts messages transmitted; Stalls counts the times the
	// sender ran out of credits and blocked.
	Sent   int
	Stalls int
}

// NewWindowSender creates the sender half; name must match the
// receiver half on dst.
func NewWindowSender(f *netif.IF, name string, dst topo.EndpointID, msgSize int) *WindowSender {
	ws := &WindowSender{f: f, name: name, dst: dst, msgSize: msgSize}
	f.Register("udw.c."+name, netif.Service{
		Cost: func(*hpc.Message) sim.Duration { return CreditISR },
		Handle: func(*hpc.Message) {
			ws.credits++
			if ws.waiting {
				ws.waiting = false
				ws.blocked()
			}
		},
	})
	return ws
}

// Send transmits one fixed-size message, blocking while no receiver
// buffer is available.
func (ws *WindowSender) Send(sp *kern.Subprocess, payload any) {
	costs := ws.f.Node().Costs()
	for ws.credits == 0 {
		ws.Stalls++
		wake := sp.Block(kern.WaitOutput, "window-credit "+ws.name)
		ws.blocked, ws.waiting = wake, true
		sp.BlockNow()
		sp.System(costs.SchedulerWake)
	}
	ws.credits--
	sp.Compute(WindowSendBookkeeping)
	sp.Compute(costs.UDOSend + costs.CopyTime(ws.msgSize) + sim.Duration(ws.msgSize)*WindowSendFormatPerByte)
	if err := ws.f.Send(sp, ws.dst, "udw.d."+ws.name, ws.msgSize+RawHeader, payload); err != nil {
		panic(err)
	}
	ws.Sent++
}

// Credits returns the sender's current credit count.
func (ws *WindowSender) Credits() int { return ws.credits }

// WindowReceiver is the receiving half.
type WindowReceiver struct {
	f       *netif.IF
	name    string
	src     topo.EndpointID
	msgSize int
	buffers int

	ring    []Msg
	waiting bool
	waiter  func()

	// Received counts messages consumed by Recv.
	Received int
}

// NewWindowReceiver creates the receiver half with k message buffers.
func NewWindowReceiver(f *netif.IF, name string, src topo.EndpointID, msgSize, k int) *WindowReceiver {
	wr := &WindowReceiver{f: f, name: name, src: src, msgSize: msgSize, buffers: k}
	costs := f.Node().Costs()
	f.Register("udw.d."+name, netif.Service{
		Cost: func(m *hpc.Message) sim.Duration {
			return costs.UDORecvISR + costs.CopyTime(msgSize) + WindowDeliverISR
		},
		Handle: func(m *hpc.Message) {
			env := m.Payload.(netif.Envelope)
			wr.ring = append(wr.ring, Msg{Src: m.Src, Size: msgSize, Payload: env.Body})
			if wr.waiting {
				wr.waiting = false
				wr.waiter()
			}
		},
	})
	return wr
}

// Start issues the k initial buffer-available messages.
func (wr *WindowReceiver) Start(sp *kern.Subprocess) {
	costs := wr.f.Node().Costs()
	for i := 0; i < wr.buffers; i++ {
		sp.Compute(costs.UDOSend + costs.CopyTime(CreditBytes))
		if err := wr.f.Send(sp, wr.src, "udw.c."+wr.name, CreditBytes+RawHeader, nil); err != nil {
			panic(err)
		}
	}
}

// Recv consumes the next message: user-level bookkeeping, a per-byte
// examination of the data, and one buffer-available message back to
// the sender.
func (wr *WindowReceiver) Recv(sp *kern.Subprocess) Msg {
	costs := wr.f.Node().Costs()
	if len(wr.ring) == 0 {
		wake := sp.Block(kern.WaitInput, "window-data "+wr.name)
		wr.waiter, wr.waiting = wake, true
		sp.BlockNow()
		sp.System(costs.SchedulerWake)
	}
	m := wr.ring[0]
	wr.ring = wr.ring[1:]
	sp.Compute(WindowReadBookkeeping)
	sp.Compute(costs.UDOSend + costs.CopyTime(CreditBytes))
	if err := wr.f.Send(sp, wr.src, "udw.c."+wr.name, CreditBytes+RawHeader, nil); err != nil {
		panic(err)
	}
	wr.Received++
	return m
}
