package udo_test

import (
	"testing"
	"testing/quick"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/udo"
)

func build(t *testing.T, nodes int) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRawObjectISRDelivery(t *testing.T) {
	sys := build(t, 2)
	snd := udo.New(sys.Node(0).IF, "raw", false)
	rcv := udo.New(sys.Node(1).IF, "raw", false)
	var got udo.Msg
	sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
		if err := snd.Send(sp, sys.Node(1).EP, 64, "ping"); err != nil {
			t.Error(err)
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		got = rcv.Recv(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Size != 64 || got.Payload != "ping" {
		t.Fatalf("got %+v", got)
	}
}

func TestSPICESoftwareLatency60us(t *testing.T) {
	// Paper §4.1: parallel SPICE "was able to obtain 60 µsec software
	// latencies for 64 byte messages with direct access to the
	// communications hardware and no low-level protocol" — polled
	// receive, no interrupts, no kernel.
	sys := build(t, 2)
	s2 := udo.New(sys.Node(0).IF, "spice", true)
	r2 := udo.New(sys.Node(1).IF, "spice", true)
	var t0, t1 sim.Time
	sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
		s2.Send(sp, sys.Node(1).EP, 64, nil) // warm up (first dispatch)
		sp.SleepFor(sim.Milliseconds(1))
		t0 = sp.Now()
		s2.Send(sp, sys.Node(1).EP, 64, nil)
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		r2.Recv(sp)
		r2.Recv(sp)
		t1 = sp.Now()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	costs := sys.Costs
	wire := 2 * (costs.HopFixed + costs.WireTime(64+udo.RawHeader))
	software := t1.Sub(t0) - wire
	if us := software.Microseconds(); us < 52 || us > 68 {
		t.Fatalf("software latency = %.1f µs, paper reports 60", us)
	}
}

// windowLatency runs the paper's Table 1 benchmark: the sender
// transmits `rounds` fixed-size messages under a k-buffer
// reader-active sliding window; latency is elapsed time at the sender
// divided by the message count.
func windowLatency(t *testing.T, size, k, rounds int) float64 {
	t.Helper()
	sys := build(t, 2)
	ws := udo.NewWindowSender(sys.Node(0).IF, "w", sys.Node(1).EP, size)
	wr := udo.NewWindowReceiver(sys.Node(1).IF, "w", sys.Node(0).EP, size, k)
	var start, end sim.Time
	sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(2)) // let initial credits arrive
		start = sp.Now()
		for i := 0; i < rounds; i++ {
			ws.Send(sp, nil)
		}
		end = sp.Now()
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		wr.Start(sp)
		for i := 0; i < rounds; i++ {
			wr.Recv(sp)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return end.Sub(start).Microseconds() / float64(rounds)
}

func TestTable1Endpoints(t *testing.T) {
	// Paper Table 1 anchors: 1 buffer and 64 buffers, 4- and
	// 1024-byte messages.
	cases := []struct {
		size, k int
		paper   float64
		tol     float64
	}{
		{4, 1, 414, 25},
		{4, 64, 164, 20},
		{1024, 1, 1071, 85}, // our t1 slope is a little above the paper's
		{1024, 64, 504, 30},
	}
	for _, c := range cases {
		got := windowLatency(t, c.size, c.k, 1000)
		if got < c.paper-c.tol || got > c.paper+c.tol {
			t.Errorf("size=%d k=%d: %.1f µs, paper %.0f (±%.0f)", c.size, c.k, got, c.paper, c.tol)
		}
	}
}

func TestTable1MonotoneInBuffers(t *testing.T) {
	prev := 1e18
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		got := windowLatency(t, 64, k, 1000)
		if got > prev+5 {
			t.Fatalf("latency not monotone: k=%d gives %.1f after %.1f", k, got, prev)
		}
		prev = got
	}
}

func TestSlidingWindowBeatsChannelsEvenWithTwoBuffers(t *testing.T) {
	// Paper §4.1: "Even with a simple protocol and two buffers, a
	// sliding-window protocol obtained better latencies than the
	// highly optimized channel protocol" (290 vs 303 µs at 4 bytes).
	got := windowLatency(t, 4, 2, 1000)
	if got >= 303 {
		t.Fatalf("2-buffer window latency %.1f µs, should beat the 303 µs channel", got)
	}
}

func TestWindowNeverExceedsCredits(t *testing.T) {
	// Flow-control invariant: messages in flight + receiver ring
	// never exceed k.
	sys := build(t, 2)
	const k = 4
	ws := udo.NewWindowSender(sys.Node(0).IF, "inv", sys.Node(1).EP, 256)
	wr := udo.NewWindowReceiver(sys.Node(1).IF, "inv", sys.Node(0).EP, 256, k)
	sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(2))
		for i := 0; i < 100; i++ {
			ws.Send(sp, i)
			if ws.Credits() > k {
				t.Errorf("credits %d exceed k=%d", ws.Credits(), k)
			}
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		wr.Start(sp)
		for i := 0; i < 100; i++ {
			m := wr.Recv(sp)
			if m.Payload != i {
				t.Errorf("out of order: got %v want %d", m.Payload, i)
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if ws.Stalls == 0 {
		t.Error("sender never stalled with k=4 — suspicious")
	}
}

func TestPolledBackpressureThrottlesSender(t *testing.T) {
	// With a polled object and a receiver that never polls, the
	// sender must eventually block on hardware backpressure rather
	// than buffer unboundedly.
	sys := build(t, 2)
	snd := udo.New(sys.Node(0).IF, "bp", true)
	rcv := udo.New(sys.Node(1).IF, "bp", true)
	sent := 0
	sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
		for i := 0; i < 100; i++ {
			snd.Send(sp, sys.Node(1).EP, 1000, nil)
			sent++
		}
	})
	sys.RunFor(sim.Seconds(1))
	if sent >= 100 {
		t.Fatalf("sender completed %d sends with no consumer; backpressure missing", sent)
	}
	if rcv.Pending() > udo.PolledDepth {
		t.Fatalf("polled queue grew to %d (> depth %d)", rcv.Pending(), udo.PolledDepth)
	}
	sys.Shutdown()
}

func TestTryRecvPolling(t *testing.T) {
	sys := build(t, 2)
	snd := udo.New(sys.Node(0).IF, "try", true)
	rcv := udo.New(sys.Node(1).IF, "try", true)
	polls, got := 0, 0
	sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(1))
		snd.Send(sp, sys.Node(1).EP, 32, "x")
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		for got == 0 && polls < 10000 {
			polls++
			if _, ok := rcv.TryRecv(sp); ok {
				got++
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("got = %d after %d polls", got, polls)
	}
	if polls < 2 {
		t.Fatalf("expected some empty polls, got %d", polls)
	}
}

// Property: the sliding-window protocol delivers every message, in
// order, for any (size, buffer count, message count).
func TestWindowDeliveryProperty(t *testing.T) {
	f := func(sizeRaw uint16, kRaw, countRaw uint8) bool {
		size := int(sizeRaw%1000) + 1
		k := int(kRaw%10) + 1
		count := int(countRaw%40) + 1
		sys := buildQ(t)
		ws := udo.NewWindowSender(sys.Node(0).IF, "pw", sys.Node(1).EP, size)
		wr := udo.NewWindowReceiver(sys.Node(1).IF, "pw", sys.Node(0).EP, size, k)
		var got []int
		sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Milliseconds(2))
			for i := 0; i < count; i++ {
				ws.Send(sp, i)
			}
		})
		sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
			wr.Start(sp)
			for i := 0; i < count; i++ {
				got = append(got, wr.Recv(sp).Payload.(int))
			}
		})
		if err := sys.Run(); err != nil {
			return false
		}
		if len(got) != count {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func buildQ(t *testing.T) *core.System {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
