package udo

import (
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Scatter/gather I/O — one of the "other application-specific input
// and output techniques" §4.1 says user-defined objects permit. A
// gathered send pushes several non-contiguous buffers at the hardware
// as one message, paying a small per-segment setup instead of first
// coalescing everything into a staging buffer (a full extra copy).

// GatherSegment is one source buffer of a gathered send.
type GatherSegment struct {
	Size    int
	Payload any
}

// GatherSetup is the per-segment address-setup cost of a gathered
// send.
var GatherSetup = sim.Microseconds(3)

// SendGather transmits the segments as a single message. Cost: the
// fixed direct-access send, one copy of each segment, and the
// per-segment setup — no staging copy.
func (o *Object) SendGather(sp *kern.Subprocess, dst topo.EndpointID, segs []GatherSegment) error {
	costs := o.f.Node().Costs()
	total := 0
	cost := costs.UDOSend
	for _, s := range segs {
		total += s.Size
		cost += costs.CopyTime(s.Size) + GatherSetup
	}
	sp.Compute(cost)
	payload := make([]any, len(segs))
	for i, s := range segs {
		payload[i] = s.Payload
	}
	return o.f.Send(sp, dst, "udo."+o.name, total+RawHeader, payload)
}

// SendCoalesced transmits the same segments the naive way: copy them
// into a staging buffer first, then send the staging buffer. Cost:
// one extra full copy. Provided for the ablation benchmark.
func (o *Object) SendCoalesced(sp *kern.Subprocess, dst topo.EndpointID, segs []GatherSegment) error {
	costs := o.f.Node().Costs()
	total := 0
	for _, s := range segs {
		total += s.Size
	}
	// Staging copy, then the normal direct send (which copies again).
	sp.Compute(costs.CopyTime(total))
	payload := make([]any, len(segs))
	for i, s := range segs {
		payload[i] = s.Payload
	}
	sp.Compute(costs.UDOSend + costs.CopyTime(total))
	return o.f.Send(sp, dst, "udo."+o.name, total+RawHeader, payload)
}

// SendGatherRemote is the Remote-handle variant of SendGather.
func (r *Remote) SendGather(sp *kern.Subprocess, dst topo.EndpointID, segs []GatherSegment) error {
	costs := r.f.Node().Costs()
	total := 0
	cost := costs.UDOSend
	for _, s := range segs {
		total += s.Size
		cost += costs.CopyTime(s.Size) + GatherSetup
	}
	sp.Compute(cost)
	payload := make([]any, len(segs))
	for i, s := range segs {
		payload[i] = s.Payload
	}
	return r.f.Send(sp, dst, "udo."+r.name, total+RawHeader, payload)
}
