package udo_test

import (
	"testing"

	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/udo"
)

func TestGatherDeliversAllSegments(t *testing.T) {
	sys := build(t, 2)
	snd := udo.New(sys.Node(0).IF, "g", false)
	rcv := udo.New(sys.Node(1).IF, "g", false)
	var got udo.Msg
	sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
		err := snd.SendGather(sp, sys.Node(1).EP, []udo.GatherSegment{
			{Size: 100, Payload: "header"},
			{Size: 400, Payload: "body"},
			{Size: 12, Payload: "trailer"},
		})
		if err != nil {
			t.Error(err)
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		got = rcv.Recv(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Size != 512 {
		t.Fatalf("size = %d", got.Size)
	}
	segs, ok := got.Payload.([]any)
	if !ok || len(segs) != 3 || segs[0] != "header" || segs[2] != "trailer" {
		t.Fatalf("payload = %#v", got.Payload)
	}
}

func TestGatherCheaperThanCoalesce(t *testing.T) {
	// Gather avoids the staging copy: for S segments of total T
	// bytes, it saves CopyTime(T) minus S·GatherSetup of sender CPU.
	measure := func(coalesce bool) sim.Duration {
		sys := build(t, 2)
		name := "gc"
		snd := udo.New(sys.Node(0).IF, name, false)
		rcv := udo.New(sys.Node(1).IF, name, false)
		segs := []udo.GatherSegment{{Size: 300}, {Size: 300}, {Size: 300}}
		var cost sim.Duration
		sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
			sp.Compute(sim.Microseconds(1)) // absorb first-dispatch switch
			start := sp.Now()
			var err error
			if coalesce {
				err = snd.SendCoalesced(sp, sys.Node(1).EP, segs)
			} else {
				err = snd.SendGather(sp, sys.Node(1).EP, segs)
			}
			if err != nil {
				t.Error(err)
			}
			cost = sp.Now().Sub(start)
		})
		sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) { rcv.Recv(sp) })
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return cost
	}
	gather := measure(false)
	coalesce := measure(true)
	if gather >= coalesce {
		t.Fatalf("gather (%v) should beat coalesce (%v)", gather, coalesce)
	}
	// The saving is the 900-byte staging copy (252 µs) minus 3 setups
	// (9 µs).
	saving := coalesce - gather
	want := sys0Costs(t).CopyTime(900) - 3*udo.GatherSetup
	if saving != want {
		t.Fatalf("saving = %v, want %v", saving, want)
	}
}

func sys0Costs(t *testing.T) interface{ CopyTime(int) sim.Duration } {
	t.Helper()
	sys := build(t, 1)
	return sys.Costs
}
