package channels_test

import (
	"testing"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// TestTimeoutRetransmitRecoversFromOutage: a write issued while the
// receiving node is down is recovered by the end-to-end timeout once
// the node restarts, and the receiver delivers it exactly once.
func TestTimeoutRetransmitRecoversFromOutage(t *testing.T) {
	sys := build(t, 2)
	w, r := sys.Node(0), sys.Node(1)
	w.Chans.SetAckTimeout(2*sim.Millisecond, 10)
	var writeErr error
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		ch := w.Chans.Open(sp, "pipe", objmgr.OpenAny)
		if err := ch.Write(sp, 100, "m0"); err != nil {
			t.Error(err)
			return
		}
		sp.SleepFor(10 * sim.Millisecond) // outage happens here
		writeErr = ch.Write(sp, 100, "m1")
	})
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		ch := r.Chans.Open(sp, "pipe", objmgr.OpenAny)
		ch.Read(sp)
	})
	sys.K.At(sim.Time(6*sim.Millisecond), func() { r.Kern.Crash() })
	sys.K.At(sim.Time(13*sim.Millisecond), func() { r.Kern.Restart() })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if writeErr != nil {
		t.Fatalf("write across outage should recover, got %v", writeErr)
	}
	if w.Chans.TimeoutRetransmits == 0 {
		t.Fatal("recovery must have used the end-to-end timeout")
	}
	if r.Chans.Delivered != 2 {
		t.Fatalf("receiver delivered %d messages, want exactly 2", r.Chans.Delivered)
	}
}

// TestPeerDeathAfterRetriesFailsWrite: when the peer stays dead, retry
// exhaustion turns the blocked write into an error, not a hang.
func TestPeerDeathAfterRetriesFailsWrite(t *testing.T) {
	sys := build(t, 2)
	w, r := sys.Node(0), sys.Node(1)
	w.Chans.SetAckTimeout(1*sim.Millisecond, 3)
	var writeErr error
	done := false
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		ch := w.Chans.Open(sp, "pipe", objmgr.OpenAny)
		if err := ch.Write(sp, 100, "m0"); err != nil {
			t.Error(err)
			return
		}
		sp.SleepFor(10 * sim.Millisecond)
		writeErr = ch.Write(sp, 100, "m1") // peer is dead by now
		done = true
	})
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		ch := r.Chans.Open(sp, "pipe", objmgr.OpenAny)
		ch.Read(sp)
	})
	sys.K.At(sim.Time(6*sim.Millisecond), func() { r.Kern.Crash() })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("writer never unblocked")
	}
	if writeErr == nil {
		t.Fatal("write to a dead peer must fail after retries")
	}
	if w.Chans.PeerDeaths != 1 {
		t.Fatalf("PeerDeaths = %d, want 1", w.Chans.PeerDeaths)
	}
	if w.Chans.TimeoutRetransmits != 3 {
		t.Fatalf("TimeoutRetransmits = %d, want 3 (maxRetries)", w.Chans.TimeoutRetransmits)
	}
}

// TestPeerDownFailsBlockedReader: the fault engine's PeerDown fails a
// blocked Read with ok=false instead of leaving it hung.
func TestPeerDownFailsBlockedReader(t *testing.T) {
	sys := build(t, 2)
	w, r := sys.Node(0), sys.Node(1)
	readReturned, readOK := false, true
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		w.Chans.Open(sp, "pipe", objmgr.OpenAny)
	})
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		ch := r.Chans.Open(sp, "pipe", objmgr.OpenAny)
		_, readOK = ch.Read(sp)
		readReturned = true
	})
	sys.K.At(sim.Time(5*sim.Millisecond), func() {
		if n := r.Chans.PeerDown(w.EP); n != 1 {
			t.Errorf("PeerDown failed %d ends, want 1", n)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !readReturned {
		t.Fatal("reader never unblocked")
	}
	if readOK {
		t.Fatal("read from a dead peer must return ok=false")
	}
	if r.Chans.PeerDeaths != 1 {
		t.Fatalf("PeerDeaths = %d, want 1", r.Chans.PeerDeaths)
	}
}

// TestCloseWakesMuxReader: a peer close reaches a multiplexed reader
// too (it used to wake only plain readers and writers).
func TestCloseWakesMuxReader(t *testing.T) {
	sys := build(t, 2)
	w, r := sys.Node(0), sys.Node(1)
	muxReturned, muxOK := false, true
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		ch := w.Chans.Open(sp, "pipe", objmgr.OpenAny)
		sp.SleepFor(2 * sim.Millisecond) // let the mux reader block first
		ch.Close(sp)
	})
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		ch := r.Chans.Open(sp, "pipe", objmgr.OpenAny)
		_, _, muxOK = channels.MuxRead(sp, ch)
		muxReturned = true
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !muxReturned {
		t.Fatal("mux reader never unblocked")
	}
	if muxOK {
		t.Fatal("mux read after peer close must return ok=false")
	}
}
