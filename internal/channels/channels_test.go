package channels_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

func build(t *testing.T, nodes int) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenRendezvousAndTransfer(t *testing.T) {
	sys := build(t, 2)
	var got channels.Msg
	sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "pipe", objmgr.OpenAny)
		if err := ch.Write(sp, 100, "hello"); err != nil {
			t.Error(err)
		}
	})
	sys.Spawn(sys.Node(1), "reader", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "pipe", objmgr.OpenAny)
		m, ok := ch.Read(sp)
		if !ok {
			t.Error("read failed")
		}
		got = m
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Size != 100 || got.Payload != "hello" {
		t.Fatalf("got %+v", got)
	}
}

// measureChannelLatency runs the paper's channel benchmark: rounds
// messages of the given size over one channel, reporting µs/message.
func measureChannelLatency(t *testing.T, size, rounds int) float64 {
	t.Helper()
	sys := build(t, 2)
	var start, end sim.Time
	sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "bench", objmgr.OpenAny)
		start = sp.Now()
		for i := 0; i < rounds; i++ {
			if err := ch.Write(sp, size, nil); err != nil {
				t.Error(err)
			}
		}
		end = sp.Now()
	})
	sys.Spawn(sys.Node(1), "reader", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "bench", objmgr.OpenAny)
		for i := 0; i < rounds; i++ {
			if _, ok := ch.Read(sp); !ok {
				t.Error("read failed")
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return end.Sub(start).Microseconds() / float64(rounds)
}

func TestTable2Calibration(t *testing.T) {
	// Paper Table 2: message latency for channel communications.
	want := map[int]float64{4: 303, 64: 341, 256: 474, 1024: 997}
	for size, paper := range want {
		got := measureChannelLatency(t, size, 200)
		if diff := got - paper; diff > 12 || diff < -12 {
			t.Errorf("%d-byte channel latency = %.1f µs, paper %.0f µs", size, got, paper)
		}
	}
}

func TestChannelThroughputNear1027KBs(t *testing.T) {
	// Paper §4: "1024 byte messages can be sent at the rate of 1027
	// kbyte/sec".
	us := measureChannelLatency(t, 1024, 200)
	rate := 1024.0 / us // bytes per µs == Mbyte/s
	if rate < 0.98 || rate > 1.08 {
		t.Fatalf("throughput = %.3f Mbyte/s, paper 1.027", rate)
	}
}

func TestLargeWriteFragmentsAndAssembles(t *testing.T) {
	sys := build(t, 2)
	const size = 5000 // 5 fragments
	var got channels.Msg
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "big", objmgr.OpenAny)
		if err := ch.Write(sp, size, "bulk"); err != nil {
			t.Error(err)
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "big", objmgr.OpenAny)
		got, _ = ch.Read(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Size != size || got.Payload != "bulk" {
		t.Fatalf("got %+v", got)
	}
}

func TestStopAndWaitBlocksSecondWrite(t *testing.T) {
	// Flow control property: a second Write cannot complete before
	// the receiver's kernel has taken the first message.
	sys := build(t, 2)
	var w1, w2 sim.Time
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "fc", objmgr.OpenAny)
		ch.Write(sp, 1000, nil)
		w1 = sp.Now()
		ch.Write(sp, 1000, nil)
		w2 = sp.Now()
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "fc", objmgr.OpenAny)
		ch.Read(sp)
		ch.Read(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Each write must take at least one full protocol round trip.
	if w2.Sub(w1) < sim.Microseconds(500) {
		t.Fatalf("second write completed after only %v", w2.Sub(w1))
	}
}

func TestSideBufferingWhenNoReader(t *testing.T) {
	// The receiving kernel has side buffers: writes complete without
	// a reader, and a later Read pays the extra kernel-to-user copy.
	sys := build(t, 2)
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "buf", objmgr.OpenAny)
		for i := 0; i < 5; i++ {
			if err := ch.Write(sp, 200, i); err != nil {
				t.Error(err)
			}
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "buf", objmgr.OpenAny)
		sp.SleepFor(sim.Milliseconds(50)) // writer finishes first
		for i := 0; i < 5; i++ {
			m, ok := ch.Read(sp)
			if !ok || m.Payload != i {
				t.Errorf("read %d: %+v ok=%v", i, m, ok)
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Node(1).Chans.SideBuffersFree() != channels.DefaultSideBuffers {
		t.Fatalf("side buffers leaked: %d", sys.Node(1).Chans.SideBuffersFree())
	}
}

func TestSideBufferExhaustionTriggersRetransmit(t *testing.T) {
	// Rare path: receiver out of side buffers requests retransmission
	// when space becomes available. Nothing is lost.
	sys := build(t, 3)
	const writers = 2
	// Shrink the pool via many channels from two writer nodes to one
	// reader that sleeps: exhaust 64 side buffers, then drain.
	total := channels.DefaultSideBuffers + 10
	var received int
	var done sim.WaitGroup
	done.Add(writers)
	for w := 0; w < writers; w++ {
		w := w
		sys.Spawn(sys.Node(w), "w", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(w).Chans.Open(sp, fmt.Sprintf("st%d", w), objmgr.OpenAny)
			for i := 0; i < total/writers; i++ {
				if err := ch.Write(sp, 100, nil); err != nil {
					t.Error(err)
				}
			}
			done.Done()
		})
	}
	sys.Spawn(sys.Node(2), "r", 0, func(sp *kern.Subprocess) {
		ch0 := sys.Node(2).Chans.Open(sp, "st0", objmgr.OpenAny)
		ch1 := sys.Node(2).Chans.Open(sp, "st1", objmgr.OpenAny)
		sp.SleepFor(sim.Milliseconds(100)) // let the pool fill
		for received < total {
			_, _, ok := channels.MuxRead(sp, ch0, ch1)
			if !ok {
				t.Error("mux read failed")
				return
			}
			received++
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
	if sys.Node(2).Chans.Busies == 0 || sys.Node(2).Chans.Retransmits == 0 {
		t.Fatalf("expected busy/retransmit path: busies=%d retrans=%d",
			sys.Node(2).Chans.Busies, sys.Node(2).Chans.Retransmits)
	}
}

func TestMuxRead(t *testing.T) {
	sys := build(t, 3)
	var from string
	sys.Spawn(sys.Node(0), "w0", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "mux-a", objmgr.OpenAny)
		sp.SleepFor(sim.Milliseconds(5))
		ch.Write(sp, 10, "a")
	})
	sys.Spawn(sys.Node(1), "w1", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "mux-b", objmgr.OpenAny)
		sp.SleepFor(sim.Milliseconds(1))
		ch.Write(sp, 10, "b")
	})
	sys.Spawn(sys.Node(2), "r", 0, func(sp *kern.Subprocess) {
		a := sys.Node(2).Chans.Open(sp, "mux-a", objmgr.OpenAny)
		b := sys.Node(2).Chans.Open(sp, "mux-b", objmgr.OpenAny)
		ch, m, ok := channels.MuxRead(sp, a, b)
		if !ok {
			t.Error("mux failed")
			return
		}
		from = fmt.Sprint(m.Payload)
		if ch != b {
			t.Errorf("expected first arrival from b, got %s", ch.Name())
		}
		// The other message must still arrive normally.
		if m2, ok := a.Read(sp); !ok || m2.Payload != "a" {
			t.Errorf("second read: %+v %v", m2, ok)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if from != "b" {
		t.Fatalf("first = %q", from)
	}
}

func TestServerNameReuse(t *testing.T) {
	// Paper §4: "a mechanism that allows servers to continually reuse
	// a single channel name". Three clients connect to one server
	// name sequentially.
	sys := build(t, 4)
	served := 0
	sys.Spawn(sys.Node(0), "server", 0, func(sp *kern.Subprocess) {
		for i := 0; i < 3; i++ {
			ch := sys.Node(0).Chans.Open(sp, "service", objmgr.Serve)
			m, ok := ch.Read(sp)
			if !ok {
				t.Error("server read failed")
				return
			}
			served++
			ch.Write(sp, 10, fmt.Sprintf("reply-to-%v", m.Payload))
			ch.Close(sp)
		}
	})
	for c := 1; c <= 3; c++ {
		c := c
		sys.Spawn(sys.Node(c), fmt.Sprintf("client%d", c), 0, func(sp *kern.Subprocess) {
			ch := sys.Node(c).Chans.Open(sp, "service", objmgr.Connect)
			ch.Write(sp, 10, c)
			if _, ok := ch.Read(sp); !ok {
				t.Errorf("client %d reply read failed", c)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 3 {
		t.Fatalf("served = %d", served)
	}
}

func TestCloseUnblocksPeerReader(t *testing.T) {
	sys := build(t, 2)
	readerOK := true
	sys.Spawn(sys.Node(0), "closer", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "c", objmgr.OpenAny)
		sp.SleepFor(sim.Milliseconds(2))
		ch.Close(sp)
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "c", objmgr.OpenAny)
		_, readerOK = ch.Read(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if readerOK {
		t.Fatal("read on closed channel should report !ok")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	sys := build(t, 2)
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "c", objmgr.OpenAny)
		ch.Close(sp)
		if err := ch.Write(sp, 10, nil); err == nil {
			t.Error("write after close should fail")
		}
	})
	sys.Spawn(sys.Node(1), "peer", 0, func(sp *kern.Subprocess) {
		sys.Node(1).Chans.Open(sp, "c", objmgr.OpenAny)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotReportsChannelState(t *testing.T) {
	sys := build(t, 2)
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "snap", objmgr.OpenAny)
		ch.Write(sp, 10, nil)
		ch.Write(sp, 10, nil)
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "snap", objmgr.OpenAny)
		ch.Read(sp)
		ch.Read(sp)
		ch.Read(sp) // blocks forever: deadlock visible in snapshot
	})
	err := sys.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	snap := sys.Node(1).Chans.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	st := snap[0]
	if st.Name != "snap" || st.Received != 2 || !st.ReaderBlocked {
		t.Fatalf("state = %+v", st)
	}
	wsnap := sys.Node(0).Chans.Snapshot()
	if wsnap[0].Sent != 2 || wsnap[0].WriterBlocked {
		t.Fatalf("writer state = %+v", wsnap[0])
	}
	sys.Shutdown()
}

func TestManyChannelsBetweenSamePair(t *testing.T) {
	sys := build(t, 2)
	const n = 8
	var got [n]bool
	for i := 0; i < n; i++ {
		i := i
		sys.Spawn(sys.Node(0), fmt.Sprintf("w%d", i), 0, func(sp *kern.Subprocess) {
			ch := sys.Node(0).Chans.Open(sp, fmt.Sprintf("multi%d", i), objmgr.OpenAny)
			ch.Write(sp, 50, i)
		})
		sys.Spawn(sys.Node(1), fmt.Sprintf("r%d", i), 0, func(sp *kern.Subprocess) {
			ch := sys.Node(1).Chans.Open(sp, fmt.Sprintf("multi%d", i), objmgr.OpenAny)
			m, ok := ch.Read(sp)
			if ok && m.Payload == i {
				got[i] = true
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ok := range got {
		if !ok {
			t.Errorf("channel %d failed", i)
		}
	}
}

func TestCentralizedManagerAlsoWorks(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 2, CentralizedManager: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "central", objmgr.OpenAny)
		ch.Write(sp, 10, nil)
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "central", objmgr.OpenAny)
		_, ok = ch.Read(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("transfer failed under centralized manager")
	}
}

// measureWindowed is measureChannelLatency with a sender-side window.
func measureWindowed(t *testing.T, size, rounds, window int) float64 {
	t.Helper()
	sys := build(t, 2)
	var start, end sim.Time
	sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "wbench", objmgr.OpenAny)
		ch.SetWindow(window)
		start = sp.Now()
		for i := 0; i < rounds; i++ {
			if err := ch.Write(sp, size, nil); err != nil {
				t.Error(err)
			}
		}
		end = sp.Now()
	})
	sys.Spawn(sys.Node(1), "reader", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "wbench", objmgr.OpenAny)
		for i := 0; i < rounds; i++ {
			if _, ok := ch.Read(sp); !ok {
				t.Error("read failed")
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return end.Sub(start).Microseconds() / float64(rounds)
}

func TestWindowedChannelsBeatStopAndWait(t *testing.T) {
	// §4.1's conclusion: "we should consider the use of a
	// sliding-window protocol for channels". With a window of 4 the
	// kernel keeps writes in flight and per-message time drops well
	// below the 303 µs stop-and-wait figure.
	sw := measureWindowed(t, 4, 400, 1)
	w4 := measureWindowed(t, 4, 400, 4)
	if sw < 295 || sw > 311 {
		t.Fatalf("window=1 latency %.1f, want ~303 (stop-and-wait baseline)", sw)
	}
	if w4 >= sw*0.85 {
		t.Fatalf("window=4 latency %.1f not clearly below stop-and-wait %.1f", w4, sw)
	}
}

func TestWindowedOrderingUnderStarvation(t *testing.T) {
	// Force the busy/retransmit path with a tiny side-buffer pool and
	// a windowed writer: messages must still arrive exactly once, in
	// order.
	sys := build(t, 2)
	sys.Node(1).Chans.SetSideBuffers(1)
	const msgs = 30
	var got []int
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "ord", objmgr.OpenAny)
		ch.SetWindow(4)
		for i := 0; i < msgs; i++ {
			if err := ch.Write(sp, 300, i); err != nil {
				t.Error(err)
			}
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "ord", objmgr.OpenAny)
		for i := 0; i < msgs; i++ {
			sp.SleepFor(sim.Milliseconds(2)) // stay behind the writer
			m, ok := ch.Read(sp)
			if !ok {
				t.Error("read failed")
				return
			}
			got = append(got, m.Payload.(int))
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != msgs {
		t.Fatalf("got %d messages, want %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
	if sys.Node(1).Chans.Busies == 0 {
		t.Fatal("test did not exercise the busy path")
	}
}

func TestWindowRespectsLimit(t *testing.T) {
	// A window of 2 must never allow a third un-acked write: with the
	// receiver wedged (never reading, pool exhausted by other
	// channels... here simply no reader and tiny pool), the writer
	// stalls after filling the window.
	sys := build(t, 2)
	sys.Node(1).Chans.SetSideBuffers(1)
	written := 0
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "lim", objmgr.OpenAny)
		ch.SetWindow(2)
		for i := 0; i < 10; i++ {
			if err := ch.Write(sp, 100, i); err != nil {
				return
			}
			written++
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		sys.Node(1).Chans.Open(sp, "lim", objmgr.OpenAny)
		// Never reads.
	})
	sys.RunFor(sim.Seconds(2))
	// First write side-buffers (acked), then one more is in flight;
	// the window lets at most 2 complete beyond the buffered one.
	if written > 3 {
		t.Fatalf("writer completed %d writes into a wedged receiver (window 2)", written)
	}
	sys.Shutdown()
}
