// Package channels implements VORX channels: named, low-latency,
// flow-controlled message-passing connections between processes
// (paper §4).
//
// Channels are set up with a single Open call (rendezvous by name
// through the object manager) and used with Read and Write. The
// kernel protocol is stop-and-wait: a Write sends the data and blocks
// the writing subprocess until the receiving kernel acknowledges it —
// which is also the flow control, since a second message cannot be
// sent until the first is processed. If the receiving kernel is out
// of side buffers (rare: "the kernel has many side buffers"), it asks
// the sender to retransmit when space frees.
//
// Writes larger than the hardware's 1060-byte limit are fragmented by
// the kernel and acknowledged as a unit. Specialized operations the
// paper mentions are provided too: multiplexed read (block until data
// arrives on any of several channels) and server name reuse (via
// objmgr's Serve/Connect modes).
//
// The calibrated cost constants reproduce Table 2: 303/341/474/997 µs
// per message at 4/64/256/1024 bytes.
package channels

import (
	"fmt"
	"sort"
	"sync"

	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Wire-format constants.
const (
	// HeaderBytes is the kernel protocol header carried by every
	// fragment on the wire.
	HeaderBytes = 32
	// AckBytes is the wire size of the software acknowledgement.
	AckBytes = 48
	// MaxFragment is the data payload carried per hardware message.
	MaxFragment = 1024
	// DefaultSideBuffers is the per-node side-buffer pool size.
	DefaultSideBuffers = 64
)

// WindowInflightGauge is the metrics gauge tracking current sliding-
// window occupancy. Both the channel layer (per-channel pending
// writes) and the vchan lane layer (per-lane unacked frames) publish
// under this name, so one dashboard signal covers window pressure at
// either protocol generation; the vchan balancer's load decisions use
// the same per-lane occupancy, fed through broker reports rather than
// the host-side registry so checked runs stay deterministic.
const WindowInflightGauge = "channels.window.inflight"

// Msg is an application-level message received from a channel.
type Msg struct {
	Size    int
	Payload any
}

// Service is the per-node channel machinery: the kernel's channel
// table, side-buffer pool, and protocol handlers.
type Service struct {
	f     *netif.IF
	mgr   *objmgr.Manager
	chans map[uint64]*Channel
	// preopen stashes fragments that arrived before the local end's
	// Open finished registering (the opener's reply can beat the
	// subprocess getting scheduled).
	preopen map[uint64][]dataFrag

	// outFree recycles write records. A Service is single-kernel, so a
	// plain slice suffices; a record is recycled only once its ack
	// timer is stopped and no pending or retained list can reach it.
	outFree []*outMsg

	sideBufFree int
	// starved lists (channel, message) pairs whose peer was told
	// "busy" and must be resumed when a side buffer frees, in
	// arrival order.
	starved []starveRec

	// End-to-end recovery. The base protocol's acks are flow control,
	// not fault tolerance: the HPC never drops, so no timeout was
	// needed. Under fault injection (message loss, peer crash) a write
	// can wait forever, so an optional end-to-end timeout retransmits
	// unacknowledged writes and, after maxRetries, declares the peer
	// dead. Zero (the default) keeps the original timerless behaviour.
	ackTimeout sim.Duration
	maxRetries int

	// winCfg is the sliding-window default applied to every channel
	// end this service opens or reincarnates (the pipelined profile).
	// The zero value keeps the classic stop-and-wait window of 1.
	winCfg WindowConfig

	// Stats.
	Written      int
	Delivered    int
	Busies       int
	Retransmits  int
	BytesWritten int64
	// TimeoutRetransmits counts writes re-sent by the end-to-end
	// timeout; PeerDeaths counts channel ends failed by retry
	// exhaustion or PeerDown.
	TimeoutRetransmits int
	PeerDeaths         int

	// verifier, when non-nil, observes every protocol step the chaos
	// harness's invariants need. Nil costs one predicate per step.
	verifier Verifier
}

// Verifier observes channel protocol steps; the invariant checker
// (internal/verify) implements it. All hooks run at the simulation
// layer and must not block or schedule events.
type Verifier interface {
	// ChanWrite fires when a write enters the pending window on the
	// sending end.
	ChanWrite(id uint64, name string, from topo.EndpointID, inc uint32, seq, size int, payload any)
	// ChanDeliver fires when a last fragment reaches the receiving
	// end's sequencer: dup marks a duplicate that was re-acked, not
	// re-delivered. from/inc are the fabric's provenance stamp.
	ChanDeliver(id uint64, name string, from topo.EndpointID, inc uint32, seq int, payload any, dup bool)
	// ChanAck fires when an ack matches a pending write on the sending
	// end at endpoint at.
	ChanAck(id uint64, at topo.EndpointID, seq int)
	// ChanRetain fires when an acknowledged write is retained at
	// endpoint at for possible replay.
	ChanRetain(id uint64, at topo.EndpointID, seq int)
	// ChanRelease fires when a retained write leaves the retained
	// list: requeued means it went back to pending for a rebind
	// replay, otherwise the stable mark released it.
	ChanRelease(id uint64, at topo.EndpointID, seq int, requeued bool)
	// ChanReincarnate fires when a channel end is reinstalled at
	// endpoint at (facing peer) from a checkpoint with the given
	// sequence cursors: deliveries from peer legitimately resume at
	// recvSeq, re-covering anything the checkpoint did not fold in.
	ChanReincarnate(id uint64, at, peer topo.EndpointID, sendSeq, recvSeq int)
}

// SetVerifier installs the invariant checker's protocol observer (nil
// to remove).
func (s *Service) SetVerifier(v Verifier) { s.verifier = v }

// wire message bodies
type dataFrag struct {
	ch         uint64
	seq        int // per-channel message sequence number
	size       int // payload bytes in this fragment
	total      int // total write size
	last       bool
	payload    any // carried on the last fragment
	retransmit bool
	tid        uint64 // originating write's trace ID (0 untraced)
	// src and inc are filled by the *receiver* from the fabric
	// message's source endpoint and incarnation stamp (netif stamps
	// every send), so held and replayed fragments keep their
	// provenance for the invariant checker.
	src topo.EndpointID
	inc uint32
}

type ackMsg struct {
	ch  uint64
	seq int
}

// fragPool and ackPool recycle the wire-body shells of the two
// per-write messages. Shells are sent as pointers (boxing a pointer
// into an interface allocates nothing), the receiver copies the fields
// out at interrupt level and returns the shell. The pools are shared
// process-wide: sender and receiver are different nodes, and under
// parallel replication different kernels, so they need the
// synchronized pool rather than a per-Service free list. A shell that
// dies en route (crashed node, dropped service) simply falls to the
// garbage collector.
var (
	fragPool = sync.Pool{New: func() any { return new(dataFrag) }}
	ackPool  = sync.Pool{New: func() any { return new(ackMsg) }}
)

func putFrag(f *dataFrag) {
	*f = dataFrag{} // drop the app payload reference
	fragPool.Put(f)
}

type busyMsg struct {
	ch  uint64
	seq int
}
type resumeMsg struct {
	ch  uint64
	seq int
}
type closeMsg struct{ ch uint64 }

// starveRec is one busy-discarded message awaiting a resume.
type starveRec struct {
	ch  *Channel
	seq int
	tid uint64
}

// NewService attaches the channel service to a node's network
// interface.
func NewService(f *netif.IF, mgr *objmgr.Manager) *Service {
	s := &Service{f: f, mgr: mgr, chans: make(map[uint64]*Channel),
		preopen: make(map[uint64][]dataFrag), sideBufFree: DefaultSideBuffers}
	costs := f.Node().Costs()
	f.Register("chan", netif.Service{
		Cost: func(m *hpc.Message) sim.Duration {
			frag := m.Payload.(netif.Envelope).Body.(*dataFrag)
			return costs.ChanRecvProto + costs.KernelCopyTime(frag.size)
		},
		// Fragments riding a coalesced interrupt amortize the protocol
		// entry: only the kernel copy is per-message.
		BatchCost: func(m *hpc.Message) sim.Duration {
			frag := m.Payload.(netif.Envelope).Body.(*dataFrag)
			return costs.KernelCopyTime(frag.size)
		},
		Handle: s.handleData,
	})
	f.Register("chan.ack", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return costs.ChanAckProto },
		Handle: s.handleAck,
	})
	f.Register("chan.busy", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return costs.ChanAckProto },
		Handle: s.handleBusy,
	})
	f.Register("chan.resume", netif.Service{
		Cost: func(m *hpc.Message) sim.Duration {
			rm := m.Payload.(netif.Envelope).Body.(resumeMsg)
			if ch := s.chans[rm.ch]; ch != nil {
				if om := ch.pendingBySeq(rm.seq); om != nil {
					return costs.ChanSendProto + costs.KernelCopyTime(om.size)
				}
			}
			return costs.ChanAckProto
		},
		Handle: s.handleResume,
	})
	f.Register("chan.close", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return costs.ChanAckProto },
		Handle: s.handleClose,
	})
	return s
}

// Interface returns the node interface the service runs on.
func (s *Service) Interface() *netif.IF { return s.f }

// tracer returns the node's unified event tracer (possibly nil).
func (s *Service) tracer() *trace.Tracer { return s.f.Node().Tracer() }

// lane is the trace lane a channel's events land on.
func (ch *Channel) lane() string { return "chan/" + ch.name }

// SetSideBuffers resizes the side-buffer pool (for ablation studies;
// the paper's kernel had "many"). Call before traffic flows.
func (s *Service) SetSideBuffers(n int) {
	if n < 1 {
		n = 1
	}
	s.sideBufFree = n
}

// SideBuffersFree returns the current side-buffer pool headroom.
func (s *Service) SideBuffersFree() int { return s.sideBufFree }

// SetAckTimeout enables the end-to-end timeout: a write unacknowledged
// after d is retransmitted, and after maxRetries retransmissions the
// peer is declared dead — every channel to it fails with an error
// instead of hanging. d <= 0 disables (the default); maxRetries <= 0
// retries forever.
func (s *Service) SetAckTimeout(d sim.Duration, maxRetries int) {
	s.ackTimeout = d
	s.maxRetries = maxRetries
}

// PeerDown fails every open channel to endpoint ep: blocked readers
// and writers get an error return, pending timers stop. Called by the
// fault engine when a node is known crashed (the §3.1 policy: tell the
// survivors instead of letting them hang). Returns the number of
// channel ends failed.
func (s *Service) PeerDown(ep topo.EndpointID) int {
	ids := make([]uint64, 0, len(s.chans))
	for id := range s.chans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := 0
	for _, id := range ids {
		ch := s.chans[id]
		if ch.peer == ep && !ch.closedRemote && !ch.managed {
			s.failPeer(ch)
			n++
		}
	}
	return n
}

// Channel is one end of a VORX channel.
type Channel struct {
	svc  *Service
	id   uint64
	name string
	peer topo.EndpointID

	// reader side
	ready      []Msg       // side-buffered complete messages
	assembling map[int]int // bytes received per in-flight message seq
	reader     *blockedReader
	mux        *Mux

	// writer side. window is the number of un-acknowledged writes
	// allowed in flight: 1 is the classic stop-and-wait; larger
	// values are the kernel-level sliding window §4.1 suggests the
	// system should consider ("we should consider the use of a
	// sliding-window protocol for channels").
	window     int
	pending    []*outMsg // un-acknowledged writes, oldest first
	writerWake func()
	sendSeq    int

	// receiver-side sequencing: messages are accepted strictly in
	// order; anything ahead of recvSeq is busy-discarded and
	// retransmitted after its predecessors, which restores order.
	recvSeq int

	closedLocal  bool
	closedRemote bool

	// Supervision (internal/super). A managed end's peer death is
	// handled by checkpoint/restart migration: retry exhaustion keeps
	// retransmitting instead of failing the end, and PeerDown skips
	// it. With retain set, acknowledged writes are kept — payload and
	// all — until the supervisor advances the peer's stable checkpoint
	// mark, so a reincarnated peer can be replayed every message its
	// checkpoint missed.
	managed  bool
	retain   bool
	retained []*outMsg // acknowledged but not yet checkpoint-stable, oldest first

	// cdb-visible counters
	sent, received int
}

type blockedReader struct {
	wake func()
	msg  Msg
	ok   bool
}

type outMsg struct {
	seq     int
	size    int
	payload any
	timer   sim.Timer // end-to-end ack timeout (zero when disabled)
	tries   int       // timeout retransmissions so far
	tid     uint64    // trace ID threading this write through the stack
}

// maxFreeOut bounds the write-record free list.
const maxFreeOut = 1024

func (s *Service) getOut() *outMsg {
	if n := len(s.outFree); n > 0 {
		om := s.outFree[n-1]
		s.outFree[n-1] = nil
		s.outFree = s.outFree[:n-1]
		return om
	}
	return &outMsg{}
}

func (s *Service) putOut(om *outMsg) {
	*om = outMsg{}
	if len(s.outFree) < maxFreeOut {
		s.outFree = append(s.outFree, om)
	}
}

// WindowConfig is the service-wide sliding-window configuration: every
// channel end subsequently opened (or reincarnated after migration)
// starts with Window un-acknowledged writes allowed in flight instead
// of 1. The zero value is the classic stop-and-wait protocol.
type WindowConfig struct {
	Window int
}

// SetWindowConfig installs the service-wide window default. Existing
// channel ends are untouched; use Channel.SetWindow for those.
func (s *Service) SetWindowConfig(wc WindowConfig) { s.winCfg = wc }

// defaultWindow is the window a freshly created channel end starts with.
func (s *Service) defaultWindow() int {
	if s.winCfg.Window > 1 {
		return s.winCfg.Window
	}
	return 1
}

// SetWindow sets the channel end's write window (>=1). Call before
// writing; both ends keep their own windows independently.
func (ch *Channel) SetWindow(k int) {
	if k < 1 {
		k = 1
	}
	ch.window = k
}

// Window returns the write window.
func (ch *Channel) Window() int { return ch.window }

// Open rendezvouses on name and returns the local channel end. It
// blocks sp until the peer's open arrives (paper: "two processes
// rendezvous on a channel by specifying its name in an open call").
func (s *Service) Open(sp *kern.Subprocess, name string, mode objmgr.Mode) *Channel {
	p := s.mgr.Open(sp, s.f, name, mode)
	ch := &Channel{svc: s, id: p.Chan, name: name, peer: p.Peer, window: s.defaultWindow()}
	s.chans[p.Chan] = ch
	if frags := s.preopen[p.Chan]; len(frags) > 0 {
		delete(s.preopen, p.Chan)
		for _, frag := range frags {
			s.deliverFrag(ch, frag)
		}
	}
	return ch
}

// Name returns the channel's rendezvous name.
func (ch *Channel) Name() string { return ch.name }

// ID returns the channel id shared by both ends.
func (ch *Channel) ID() uint64 { return ch.id }

// Peer returns the endpoint of the other end.
func (ch *Channel) Peer() topo.EndpointID { return ch.peer }

// Write sends size bytes (with payload attached for the application)
// and blocks sp until the protocol window has room again. With the
// default window of 1 this is the classic stop-and-wait: the write
// returns only when the receiving kernel has acknowledged. A larger
// window (SetWindow) keeps several writes in flight — the kernel-level
// sliding window §4.1 suggests considering. Either way the
// still-pending user buffers are what retransmission re-reads, so no
// kernel safety copy is ever needed.
func (ch *Channel) Write(sp *kern.Subprocess, size int, payload any) error {
	if ch.closedLocal {
		return fmt.Errorf("channels: write on closed channel %q", ch.name)
	}
	if ch.closedRemote {
		return fmt.Errorf("channels: peer closed channel %q", ch.name)
	}
	if size <= 0 {
		return fmt.Errorf("channels: write of %d bytes", size)
	}
	costs := ch.svc.f.Node().Costs()
	sp.Syscall(costs.ChanSendProto + costs.KernelCopyTime(size))
	om := ch.svc.getOut()
	om.seq, om.size, om.payload = ch.sendSeq, size, payload
	ch.sendSeq++
	ch.pending = append(ch.pending, om)
	if tr := ch.svc.tracer(); tr.Enabled() {
		om.tid = tr.NewTraceID()
		node := ch.svc.f.Node().Name()
		tr.Emit(trace.KWrite, om.tid, node, ch.lane(),
			fmt.Sprintf("seq=%d %dB ->ep%d", om.seq, size, ch.peer))
		tr.Count("chan.written", 1)
		tr.Count("chan.bytes_written", float64(size))
		if ch.window > 1 {
			tr.Emit(trace.KWindow, om.tid, node, ch.lane(),
				fmt.Sprintf("credit seq=%d inflight=%d/%d", om.seq, len(ch.pending), ch.window))
			tr.GaugeSet(WindowInflightGauge, float64(len(ch.pending)))
		}
	}
	if v := ch.svc.verifier; v != nil {
		v.ChanWrite(ch.id, ch.name, ch.svc.f.Endpoint(), ch.svc.f.Node().Incarnation(),
			om.seq, size, payload)
	}
	if err := ch.sendFragments(sp, om, false); err != nil {
		retryForever := ch.svc.ackTimeout > 0 && ch.svc.maxRetries <= 0
		if !ch.managed && !retryForever {
			ch.dropPending(om)
			name := ch.name
			ch.svc.putOut(om) // timer never armed, no list reaches it
			return fmt.Errorf("channels: write on %q: %w", name, err)
		}
		// Managed end (or an end configured to retry forever),
		// destination unreachable: that may be a transient partition,
		// and the supervisor — not this end — owns the death verdict.
		// Keep the write pending; the end-to-end timer retransmits it
		// until the fabric heals or the end is rebound.
	}
	ch.svc.armTimer(ch, om)
	for len(ch.pending) >= ch.window && !ch.closedRemote {
		ch.writerWake = sp.Block(kern.WaitOutput, fmt.Sprintf("chan-write %s", ch.name))
		sp.BlockNow()
		sp.System(costs.SchedulerWake)
	}
	if ch.closedRemote {
		return fmt.Errorf("channels: peer closed channel %q", ch.name)
	}
	ch.sent++
	ch.svc.Written++
	ch.svc.BytesWritten += int64(size)
	return nil
}

// sendFragments pushes the write onto the wire in hardware-sized
// fragments. The subprocess blocks per fragment only on hardware
// output-section backpressure. An error (destination unreachable)
// aborts the remaining fragments.
func (ch *Channel) sendFragments(sp *kern.Subprocess, om *outMsg, retrans bool) error {
	for off := 0; off < om.size; off += MaxFragment {
		n := om.size - off
		if n > MaxFragment {
			n = MaxFragment
		}
		last := off+n >= om.size
		frag := fragPool.Get().(*dataFrag)
		*frag = dataFrag{ch: ch.id, seq: om.seq, size: n, total: om.size, last: last, retransmit: retrans, tid: om.tid}
		if last {
			frag.payload = om.payload
		}
		if tr := ch.svc.tracer(); tr.Enabled() {
			tr.Emit(trace.KFragment, om.tid, ch.svc.f.Node().Name(), ch.lane(),
				fmt.Sprintf("seq=%d off=%d %dB", om.seq, off, n))
		}
		if err := ch.svc.f.SendCtx(sp, om.tid, ch.peer, "chan", n+HeaderBytes, frag); err != nil {
			putFrag(frag) // never entered the fabric
			return err
		}
	}
	return nil
}

// dropPending removes om from the un-acknowledged list.
func (ch *Channel) dropPending(om *outMsg) {
	for i, p := range ch.pending {
		if p == om {
			ch.pending = append(ch.pending[:i:i], ch.pending[i+1:]...)
			return
		}
	}
}

// armTimer (re)starts om's end-to-end ack timeout, if enabled. The
// timer is pinned to the node's current incarnation: a crash wipes the
// machine's memory, so if the node reboots before the timer fires, the
// pending write it guards no longer exists and must not retransmit
// under the new incarnation's stamp.
func (s *Service) armTimer(ch *Channel, om *outMsg) {
	if s.ackTimeout <= 0 {
		return
	}
	om.timer.Stop()
	inc := s.f.Node().Incarnation()
	om.timer = s.f.Node().Kernel().After(s.ackTimeout, func() {
		if s.f.Node().Incarnation() != inc {
			return // armed by a previous incarnation; its state died with it
		}
		s.timeoutFire(ch, om)
	})
}

// timeoutFire handles an expired ack timeout: retransmit the write, or
// after maxRetries declare the peer dead.
func (s *Service) timeoutFire(ch *Channel, om *outMsg) {
	if ch.pendingBySeq(om.seq) != om || ch.closedRemote || s.f.Node().Crashed() {
		return
	}
	om.tries++
	if s.maxRetries > 0 && om.tries > s.maxRetries && !ch.managed {
		// A managed end never declares its peer dead on its own: the
		// supervisor owns that verdict and will Rebind the end to the
		// reincarnated peer, at which point these retransmissions land.
		s.failPeer(ch)
		return
	}
	s.TimeoutRetransmits++
	s.retransmitAsync(ch, om)
	s.armTimer(ch, om)
}

// retransmitAsync re-sends every fragment of om from the kernel (the
// writing process is still blocked, so its buffer is intact).
func (s *Service) retransmitAsync(ch *Channel, om *outMsg) {
	if tr := s.tracer(); tr.Enabled() {
		tr.Emit(trace.KRetransmit, om.tid, s.f.Node().Name(), ch.lane(),
			fmt.Sprintf("seq=%d %dB tries=%d ->ep%d", om.seq, om.size, om.tries, ch.peer))
		tr.Count("chan.retransmits_sent", 1)
	}
	for off := 0; off < om.size; off += MaxFragment {
		n := om.size - off
		if n > MaxFragment {
			n = MaxFragment
		}
		last := off+n >= om.size
		frag := fragPool.Get().(*dataFrag)
		*frag = dataFrag{ch: ch.id, seq: om.seq, size: n, total: om.size, last: last, retransmit: true, tid: om.tid}
		if last {
			frag.payload = om.payload
		}
		s.f.SendAsyncCtx(om.tid, ch.peer, "chan", n+HeaderBytes, frag, nil)
	}
}

// remoteGone marks the remote end gone (graceful close or death) and
// fails every blocked operation on the channel.
func (ch *Channel) remoteGone() {
	ch.closedRemote = true
	for _, om := range ch.pending {
		om.timer.Stop()
	}
	// A gone peer can never honor a resume: purge its busy-discarded
	// messages from the starve list, else a freed side buffer is spent
	// asking a dead sender to retransmit while a live starved channel
	// waits for the next free — which may never come.
	ch.svc.dropStarved(ch)
	// Partially assembled messages will never complete either.
	ch.assembling = nil
	if ch.reader != nil {
		r := ch.reader
		ch.reader = nil
		r.ok = false
		r.wake()
	}
	if ch.writerWake != nil {
		w := ch.writerWake
		ch.writerWake = nil
		w()
	}
	if mx := ch.mux; mx != nil && mx.waiting {
		mx.waiting = false
		mx.from = ch
		mx.failed = true
		mx.wake()
	}
}

// failPeer declares ch's peer dead: the channel fails as if the peer
// had closed it, so blocked readers and writers get an error return
// instead of a hang.
func (s *Service) failPeer(ch *Channel) {
	if ch.closedRemote {
		return
	}
	s.PeerDeaths++
	ch.remoteGone()
}

// SetManaged marks the channel end as supervised: its peer's death is
// the supervisor's verdict (confirmed by heartbeat timeouts), answered
// with Rebind to a reincarnated peer rather than a peer-death error.
// With retain set, acknowledged writes are kept until ReleaseRetained
// advances the peer's stable checkpoint mark, so a restart from
// checkpoint can be replayed everything the checkpoint missed.
// Retention can only be turned on, not off: the two ends of a
// supervised channel enable each other's retention in either order.
func (ch *Channel) SetManaged(retain bool) {
	ch.managed = true
	ch.retain = ch.retain || retain
}

// Managed reports whether the end is under supervision.
func (ch *Channel) Managed() bool { return ch.managed }

// RetainedWrites reports how many acknowledged writes the end is
// holding for possible replay (0 unless retention is on).
func (ch *Channel) RetainedWrites() int { return len(ch.retained) }

// ByID returns the channel end with the given id on this node, or nil.
func (s *Service) ByID(id uint64) *Channel { return s.chans[id] }

// Rebind repoints channel id's local end at the reincarnated peer
// endpoint and replays, in sequence order, every retained or pending
// write with seq >= resumeFrom — the peer checkpoint's high-water
// mark. Retained writes below the mark are released (the restored
// state already accounts for them); pending writes below it will be
// re-acknowledged as duplicates by the peer's reincarnated sequence
// state. Returns false when this node has no end of that channel.
func (s *Service) Rebind(id uint64, newPeer topo.EndpointID, resumeFrom int) bool {
	ch := s.chans[id]
	if ch == nil {
		return false
	}
	ch.peer = newPeer
	s.releaseRetained(ch, resumeFrom)
	// Retained survivors become pending again: they are unacknowledged
	// as far as the reincarnated peer is concerned, and pending is what
	// the busy/resume and timeout machinery knows how to re-send.
	if len(ch.retained) > 0 {
		if v := s.verifier; v != nil {
			for _, om := range ch.retained {
				v.ChanRelease(ch.id, s.f.Endpoint(), om.seq, true)
			}
		}
		ch.pending = append(ch.retained, ch.pending...)
		ch.retained = nil
	}
	for _, om := range ch.pending {
		s.retransmitAsync(ch, om)
		s.armTimer(ch, om)
	}
	return true
}

// FailEnd fails channel id's local end with a peer-death error — the
// supervisor's path for a managed end whose confirmed-dead peer has no
// checkpointed task to reincarnate, so no Rebind is coming. Reports
// whether an end was actually failed.
func (s *Service) FailEnd(id uint64) bool {
	ch := s.chans[id]
	if ch == nil || ch.closedRemote {
		return false
	}
	s.failPeer(ch)
	return true
}

// Reincarnate installs a channel end with pre-seeded protocol state on
// this node — the supervisor's half of endpoint migration. The end
// keeps its system-wide id and rendezvous name (no objmgr rendezvous:
// the supervisor already knows the pairing); sendSeq and recvSeq come
// from the checkpoint's high-water marks, so the restored subprocess's
// first write carries the next expected sequence number and duplicate
// replays from the surviving peer are re-acknowledged, not
// re-delivered.
func (s *Service) Reincarnate(id uint64, name string, peer topo.EndpointID, sendSeq, recvSeq int) *Channel {
	ch := &Channel{svc: s, id: id, name: name, peer: peer, window: s.defaultWindow(),
		sendSeq: sendSeq, recvSeq: recvSeq, managed: true}
	s.chans[id] = ch
	if v := s.verifier; v != nil {
		v.ChanReincarnate(id, s.f.Endpoint(), peer, sendSeq, recvSeq)
	}
	if frags := s.preopen[id]; len(frags) > 0 {
		// The peer's rebind replay raced ahead of the reincarnation;
		// deliver the held fragments in arrival order.
		delete(s.preopen, id)
		for _, frag := range frags {
			s.deliverFrag(ch, frag)
		}
	}
	return ch
}

// ReleaseRetained drops channel id's retained writes with seq below
// stable — the peer's checkpoint has captured their effects, so no
// future restart can need them.
func (s *Service) ReleaseRetained(id uint64, stable int) {
	if ch := s.chans[id]; ch != nil {
		s.releaseRetained(ch, stable)
	}
}

func (s *Service) releaseRetained(ch *Channel, stable int) {
	keep := ch.retained[:0]
	for _, om := range ch.retained {
		if om.seq >= stable {
			keep = append(keep, om)
		} else {
			if v := s.verifier; v != nil {
				v.ChanRelease(ch.id, s.f.Endpoint(), om.seq, false)
			}
			s.putOut(om) // acked and checkpoint-stable: fully dead
		}
	}
	for i := len(keep); i < len(ch.retained); i++ {
		ch.retained[i] = nil
	}
	ch.retained = keep
}

// pendingBySeq finds an un-acknowledged write.
func (ch *Channel) pendingBySeq(seq int) *outMsg {
	for _, om := range ch.pending {
		if om.seq == seq {
			return om
		}
	}
	return nil
}

// Read blocks sp until a message arrives and returns it. ok is false
// when the channel is closed and drained.
func (ch *Channel) Read(sp *kern.Subprocess) (Msg, bool) {
	costs := ch.svc.f.Node().Costs()
	sp.Syscall(0)
	if len(ch.ready) > 0 {
		m := ch.takeReady()
		// Side-buffered data costs an extra kernel-to-user copy.
		sp.System(costs.KernelCopyTime(m.Size))
		ch.received++
		ch.svc.tracer().Emit(trace.KRead, 0, ch.svc.f.Node().Name(), ch.lane(),
			fmt.Sprintf("%dB buffered", m.Size))
		return m, true
	}
	if ch.closedRemote || ch.closedLocal {
		return Msg{}, false
	}
	br := &blockedReader{}
	br.wake = sp.Block(kern.WaitInput, fmt.Sprintf("chan-read %s", ch.name))
	ch.reader = br
	ch.svc.resumeIfStarved(ch)
	sp.BlockNow()
	sp.System(costs.SchedulerWake)
	if !br.ok {
		return Msg{}, false
	}
	ch.received++
	ch.svc.tracer().Emit(trace.KRead, 0, ch.svc.f.Node().Name(), ch.lane(),
		fmt.Sprintf("%dB", br.msg.Size))
	return br.msg, true
}

// takeReady pops the oldest side-buffered message and releases its
// side buffer, resuming a starved sender if one is waiting.
func (ch *Channel) takeReady() Msg {
	m := ch.ready[0]
	ch.ready = ch.ready[1:]
	ch.svc.releaseSideBuf()
	return m
}

func (s *Service) releaseSideBuf() {
	s.sideBufFree++
	s.traceSideBuf()
	if len(s.starved) > 0 {
		r := s.starved[0]
		s.starved = s.starved[1:]
		s.sendResume(r)
	}
}

// sendResume asks a starved sender to retransmit its busy-discarded
// message.
func (s *Service) sendResume(r starveRec) {
	s.tracer().Emit(trace.KResume, r.tid, s.f.Node().Name(), r.ch.lane(),
		fmt.Sprintf("seq=%d ->ep%d", r.seq, r.ch.peer))
	s.f.SendAsyncCtx(r.tid, r.ch.peer, "chan.resume", AckBytes, resumeMsg{ch: r.ch.id, seq: r.seq}, nil)
}

// dropStarved removes every starve record for ch (its peer is gone and
// can never retransmit).
func (s *Service) dropStarved(ch *Channel) {
	keep := s.starved[:0]
	for _, r := range s.starved {
		if r.ch != ch {
			keep = append(keep, r)
		}
	}
	s.starved = keep
}

// resumeIfStarved sends the retransmission request for ch's oldest
// busy-discarded message, if any: a newly blocked reader is as good as
// a free side buffer, since arriving data takes the fast path straight
// to it.
func (s *Service) resumeIfStarved(ch *Channel) {
	for i, r := range s.starved {
		if r.ch == ch {
			s.starved = append(s.starved[:i], s.starved[i+1:]...)
			s.sendResume(r)
			return
		}
	}
}

// handleData runs at interrupt level on the receiving node.
func (s *Service) handleData(m *hpc.Message) {
	fr := m.Payload.(netif.Envelope).Body.(*dataFrag)
	frag := *fr
	putFrag(fr)
	frag.src, frag.inc = m.Src, m.Inc
	ch := s.chans[frag.ch]
	if ch == nil {
		// The local Open has not finished registering; hold the
		// fragment and replay it when it does.
		s.preopen[frag.ch] = append(s.preopen[frag.ch], frag)
		return
	}
	s.deliverFrag(ch, frag)
}

// deliverFrag is the interrupt-level delivery logic for one fragment.
func (s *Service) deliverFrag(ch *Channel, frag dataFrag) {
	if frag.retransmit {
		s.Retransmits++
	}
	if !frag.last {
		if ch.assembling == nil {
			ch.assembling = map[int]int{}
		}
		ch.assembling[frag.seq] += frag.size
		return
	}
	delete(ch.assembling, frag.seq)
	msg := Msg{Size: frag.total, Payload: frag.payload}

	if frag.seq < ch.recvSeq {
		// Duplicate of an already-accepted message: re-acknowledge.
		if v := s.verifier; v != nil {
			v.ChanDeliver(ch.id, ch.name, frag.src, frag.inc, frag.seq, frag.payload, true)
		}
		s.ack(ch, frag.seq, frag.tid)
		return
	}
	if frag.seq > ch.recvSeq {
		// Ahead of the stream (a predecessor was busy-discarded):
		// discard and schedule a retransmission behind it, which
		// restores order.
		s.busy(ch, frag.seq, frag.tid)
		return
	}

	if ch.reader != nil {
		// Fast path: the ISR copies straight to the waiting reader,
		// then the kernel acknowledges.
		r := ch.reader
		ch.reader = nil
		r.msg, r.ok = msg, true
		r.wake()
		s.accept(ch, frag, "fast-path")
		return
	}
	if ch.mux != nil {
		mx := ch.mux
		mx.deliver(ch, msg)
		s.accept(ch, frag, "mux")
		return
	}
	// No reader: side-buffer the message.
	if s.sideBufFree > 0 {
		s.sideBufFree--
		s.traceSideBuf()
		ch.ready = append(ch.ready, msg)
		s.accept(ch, frag, "side-buffer")
		return
	}
	// Out of side buffers: ask the sender to retransmit later.
	s.busy(ch, frag.seq, frag.tid)
}

// accept finishes an in-order delivery: counters, sequencing, ack.
func (s *Service) accept(ch *Channel, frag dataFrag, how string) {
	s.Delivered++
	ch.recvSeq++
	if v := s.verifier; v != nil {
		v.ChanDeliver(ch.id, ch.name, frag.src, frag.inc, frag.seq, frag.payload, false)
	}
	if tr := s.tracer(); tr.Enabled() {
		tr.Emit(trace.KChanDel, frag.tid, s.f.Node().Name(), ch.lane(),
			fmt.Sprintf("seq=%d %dB %s", frag.seq, frag.total, how))
		tr.Count("chan.delivered", 1)
	}
	s.ack(ch, frag.seq, frag.tid)
}

func (s *Service) ack(ch *Channel, seq int, tid uint64) {
	a := ackPool.Get().(*ackMsg)
	a.ch, a.seq = ch.id, seq
	s.f.SendAsyncCtx(tid, ch.peer, "chan.ack", AckBytes, a, nil)
}

func (s *Service) busy(ch *Channel, seq int, tid uint64) {
	// Suppress duplicate starve records for the same message (a
	// retransmission can race a second busy).
	for _, r := range s.starved {
		if r.ch == ch && r.seq == seq {
			return
		}
	}
	s.Busies++
	if tr := s.tracer(); tr.Enabled() {
		tr.Emit(trace.KBusy, tid, s.f.Node().Name(), ch.lane(),
			fmt.Sprintf("seq=%d sidebuf-free=%d", seq, s.sideBufFree))
		tr.Count("chan.busies", 1)
	}
	s.starved = append(s.starved, starveRec{ch: ch, seq: seq, tid: tid})
	s.f.SendAsyncCtx(tid, ch.peer, "chan.busy", AckBytes, busyMsg{ch: ch.id, seq: seq}, nil)
}

// traceSideBuf exports the side-buffer pool headroom as a gauge.
func (s *Service) traceSideBuf() {
	if tr := s.tracer(); tr.Enabled() {
		tr.GaugeSet("chan.sidebuf."+s.f.Node().Name(), float64(s.sideBufFree))
	}
}

// handleAck runs at interrupt level on the writer's node.
func (s *Service) handleAck(m *hpc.Message) {
	ap := m.Payload.(netif.Envelope).Body.(*ackMsg)
	a := *ap
	ackPool.Put(ap)
	ch := s.chans[a.ch]
	if ch == nil {
		return
	}
	for i, om := range ch.pending {
		if om.seq == a.seq {
			om.timer.Stop()
			ch.pending = append(ch.pending[:i:i], ch.pending[i+1:]...)
			if v := s.verifier; v != nil {
				v.ChanAck(ch.id, s.f.Endpoint(), a.seq)
			}
			s.tracer().Emit(trace.KAck, om.tid, s.f.Node().Name(), ch.lane(),
				fmt.Sprintf("seq=%d", a.seq))
			if ch.window > 1 {
				if tr := s.tracer(); tr.Enabled() {
					tr.Emit(trace.KWindow, om.tid, s.f.Node().Name(), ch.lane(),
						fmt.Sprintf("advance seq=%d inflight=%d/%d", a.seq, len(ch.pending), ch.window))
					tr.GaugeSet(WindowInflightGauge, float64(len(ch.pending)))
				}
			}
			if ch.retain {
				// Keep the acknowledged write until the supervisor's
				// stable checkpoint mark passes it: an ack only means
				// the peer's kernel delivered it, not that the peer's
				// checkpoint captured it.
				ch.retained = append(ch.retained, om)
				if v := s.verifier; v != nil {
					v.ChanRetain(ch.id, s.f.Endpoint(), om.seq)
				}
			} else {
				// Timer stopped, off every list: recycle the record.
				s.putOut(om)
			}
			break
		}
	}
	if ch.writerWake != nil && len(ch.pending) < ch.window {
		w := ch.writerWake
		ch.writerWake = nil
		w()
	}
}

// handleBusy marks the pending write as awaiting a resume; the writer
// stays blocked (stop-and-wait already holds it).
func (s *Service) handleBusy(m *hpc.Message) {
	// Nothing to do beyond bookkeeping: the data was discarded by the
	// receiver; the write will be retransmitted on resume.
	_ = m
}

// handleResume retransmits the pending write from the kernel: the ISR
// cost already covered re-copying the user buffer (the process is
// still blocked, so the buffer is intact — no safety copy needed).
func (s *Service) handleResume(m *hpc.Message) {
	rm := m.Payload.(netif.Envelope).Body.(resumeMsg)
	ch := s.chans[rm.ch]
	if ch == nil {
		return
	}
	pw := ch.pendingBySeq(rm.seq)
	if pw == nil {
		return
	}
	// Asynchronous kernel-level retransmission of each fragment.
	s.retransmitAsync(ch, pw)
	s.armTimer(ch, pw)
}

// handleClose marks the remote end closed and fails any blocked
// reader, writer, or mux waiter.
func (s *Service) handleClose(m *hpc.Message) {
	cm := m.Payload.(netif.Envelope).Body.(closeMsg)
	ch := s.chans[cm.ch]
	if ch == nil {
		return
	}
	ch.remoteGone()
}

// Close tears the channel down and notifies the peer. Reads of
// already side-buffered data still succeed at the peer.
func (ch *Channel) Close(sp *kern.Subprocess) {
	if ch.closedLocal {
		return
	}
	costs := ch.svc.f.Node().Costs()
	sp.Syscall(costs.ChanAckProto)
	ch.closedLocal = true
	ch.svc.tracer().Emit(trace.KClose, 0, ch.svc.f.Node().Name(), ch.lane(), "")
	ch.svc.f.SendAsync(ch.peer, "chan.close", AckBytes, closeMsg{ch: ch.id}, nil)
}

// Closed reports whether either end has closed the channel.
func (ch *Channel) Closed() bool { return ch.closedLocal || ch.closedRemote }

// Mux is a multiplexed read: "a process blocks until data arrives
// from one of several channels" (paper §4).
type Mux struct {
	waiting bool
	wake    func()
	from    *Channel
	msg     Msg
	failed  bool // from's peer died or closed while we waited
}

// MuxRead blocks sp until any of the given channels has data, then
// returns the channel and message. Side-buffered data is consumed
// first (in argument order). If one channel's peer dies or closes
// while the reader waits, MuxRead returns that channel with ok=false
// — the others may still be live, so callers can drop the dead one
// and mux again. A nil channel with ok=false means every channel in
// the set is closed.
func MuxRead(sp *kern.Subprocess, chans ...*Channel) (*Channel, Msg, bool) {
	if len(chans) == 0 {
		return nil, Msg{}, false
	}
	svc := chans[0].svc
	costs := svc.f.Node().Costs()
	sp.Syscall(0)
	for _, ch := range chans {
		if len(ch.ready) > 0 {
			m := ch.takeReady()
			sp.System(costs.KernelCopyTime(m.Size))
			ch.received++
			return ch, m, true
		}
	}
	allClosed := true
	for _, ch := range chans {
		if !ch.closedRemote && !ch.closedLocal {
			allClosed = false
		}
	}
	if allClosed {
		return nil, Msg{}, false
	}
	mx := &Mux{waiting: true}
	mx.wake = sp.Block(kern.WaitInput, "chan-mux")
	for _, ch := range chans {
		ch.mux = mx
		svc.resumeIfStarved(ch)
	}
	sp.BlockNow()
	for _, ch := range chans {
		ch.mux = nil
	}
	sp.System(costs.SchedulerWake)
	if mx.from == nil {
		return nil, Msg{}, false
	}
	if mx.failed {
		// One muxed channel's peer died (or closed) mid-wait: return
		// it with ok=false so the caller can drop that channel and
		// re-mux on the survivors instead of treating the whole set as
		// dead.
		return mx.from, Msg{}, false
	}
	mx.from.received++
	return mx.from, mx.msg, true
}

// deliver hands an arriving message to the mux waiter.
func (mx *Mux) deliver(ch *Channel, m Msg) {
	if !mx.waiting {
		return
	}
	mx.waiting = false
	mx.from = ch
	mx.msg = m
	mx.wake()
}

// EndState is the per-channel-end state cdb reports (paper §6.1): the
// channel name, which endpoints it connects, message counts in each
// direction, and whether the application is blocked on it.
type EndState struct {
	Name          string
	ID            uint64
	Local, Peer   topo.EndpointID
	Sent          int
	Received      int
	Buffered      int // side-buffered messages awaiting a read
	ReaderBlocked bool
	WriterBlocked bool
	Closed        bool
}

// Snapshot returns the state of every channel end on this node, for
// the communications debugger.
func (s *Service) Snapshot() []EndState {
	var out []EndState
	for _, ch := range s.chans {
		out = append(out, EndState{
			Name:          ch.name,
			ID:            ch.id,
			Local:         s.f.Endpoint(),
			Peer:          ch.peer,
			Sent:          ch.sent,
			Received:      ch.received,
			Buffered:      len(ch.ready),
			ReaderBlocked: ch.reader != nil || ch.mux != nil,
			WriterBlocked: ch.writerWake != nil,
			Closed:        ch.Closed(),
		})
	}
	return out
}
