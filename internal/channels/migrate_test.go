package channels_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// TestSideBufferAccountingAfterPeerCrash audits the side-buffer pool
// across a peer crash with in-flight (multi-fragment) messages: once
// the survivor's reader drains what was delivered before the crash,
// every side buffer must be back in the pool — partially assembled
// fragments and starve records for the dead peer must not pin any.
func TestSideBufferAccountingAfterPeerCrash(t *testing.T) {
	sys := build(t, 2)
	w, r := sys.Node(0), sys.Node(1)
	initial := r.Chans.SideBuffersFree()

	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	eng.CrashNodeAt(5*sim.Millisecond, 0)

	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		ch := w.Chans.Open(sp, "pa", objmgr.OpenAny)
		for i := 0; i < 8; i++ {
			// 2500 bytes = 3 fragments, so the crash lands with
			// assembly state in flight on the receiver.
			if err := ch.Write(sp, 2500, fmt.Sprintf("m%d", i)); err != nil {
				return // killed mid-stream, as intended
			}
		}
	})
	drained := 0
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		ch := r.Chans.Open(sp, "pa", objmgr.OpenAny)
		sp.SleepFor(20 * sim.Millisecond) // crash + detection happen first
		for {
			if _, ok := ch.Read(sp); !ok {
				return
			}
			drained++
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if drained == 0 {
		t.Fatal("nothing delivered before the crash; the scenario is vacuous")
	}
	if free := r.Chans.SideBuffersFree(); free != initial {
		t.Fatalf("SideBuffersFree = %d after drain, want initial %d (leak of %d)",
			free, initial, initial-free)
	}
}

// TestStarvedResumeSkipsDeadPeer: when a starved sender's node dies,
// its starve record must be purged — otherwise the next freed side
// buffer is spent asking the dead node to retransmit while a live
// starved channel waits forever. The live channel's message must be
// side-buffered (resumed by the freed buffer, not rescued by its own
// blocked reader) before the reader ever touches that channel.
func TestStarvedResumeSkipsDeadPeer(t *testing.T) {
	sys := build(t, 4)
	w1, w2, w3, r := sys.Node(0), sys.Node(1), sys.Node(2), sys.Node(3)
	r.Chans.SetSideBuffers(1)

	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	eng.CrashNodeAt(2*sim.Millisecond, 1) // w2 dies; detection at +2ms

	errs := make([]error, 3)
	write := func(m *core.Machine, idx int, name string, delay sim.Duration) {
		sys.Spawn(m, "writer-"+name, 0, func(sp *kern.Subprocess) {
			ch := m.Chans.Open(sp, name, objmgr.OpenAny)
			sp.SleepFor(delay)
			errs[idx] = ch.Write(sp, 256, name)
		})
	}
	write(w1, 0, "pa", 0)                   // takes the only side buffer
	write(w2, 1, "pb", 200*sim.Microsecond) // busy-discarded, starved, then dies
	write(w3, 2, "pc", 400*sim.Microsecond) // busy-discarded, starved, must survive

	var got []string
	buffered := -1
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		cha := r.Chans.Open(sp, "pa", objmgr.OpenAny)
		chb := r.Chans.Open(sp, "pb", objmgr.OpenAny)
		chc := r.Chans.Open(sp, "pc", objmgr.OpenAny)
		_ = chb
		sp.SleepFor(10 * sim.Millisecond) // let the crash be detected
		m, ok := cha.Read(sp)             // frees the buffer -> resume pc, not dead pb
		if !ok {
			t.Error("pa read failed")
			return
		}
		got = append(got, m.Payload.(string))
		sp.SleepFor(5 * sim.Millisecond) // pc's retransmission lands here
		for _, es := range r.Chans.Snapshot() {
			if es.Name == "pc" {
				buffered = es.Buffered
			}
		}
		if m, ok := chc.Read(sp); ok {
			got = append(got, m.Payload.(string))
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if buffered != 1 {
		t.Fatalf("pc had %d side-buffered messages before its read; the freed buffer's resume went to the dead peer", buffered)
	}
	if len(got) != 2 || got[0] != "pa" || got[1] != "pc" {
		t.Fatalf("reader got %v, want [pa pc]", got)
	}
	if free := r.Chans.SideBuffersFree(); free != 1 {
		t.Fatalf("SideBuffersFree = %d, want 1", free)
	}
	if errs[2] != nil {
		t.Fatalf("live starved writer failed: %v", errs[2])
	}
}

// TestMuxReadPeerDeathMidRead: one of two muxed channels' peers dies
// while the reader is blocked in MuxRead. The mux must wake, identify
// the dead channel with ok=false, and leave the surviving channel
// usable for the next mux.
func TestMuxReadPeerDeathMidRead(t *testing.T) {
	sys := build(t, 3)
	w1, w2, r := sys.Node(0), sys.Node(1), sys.Node(2)

	sys.Spawn(w1, "writer-a", 0, func(sp *kern.Subprocess) {
		w1.Chans.Open(sp, "pa", objmgr.OpenAny)
		// Never writes: its node dies below.
	})
	sys.Spawn(w2, "writer-b", 0, func(sp *kern.Subprocess) {
		ch := w2.Chans.Open(sp, "pb", objmgr.OpenAny)
		sp.SleepFor(8 * sim.Millisecond)
		if err := ch.Write(sp, 128, "survivor"); err != nil {
			t.Error(err)
		}
	})

	var firstCh, secondCh string
	firstOK, secondOK := true, false
	var payload string
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		cha := r.Chans.Open(sp, "pa", objmgr.OpenAny)
		chb := r.Chans.Open(sp, "pb", objmgr.OpenAny)
		ch, _, ok := channels.MuxRead(sp, cha, chb)
		firstOK = ok
		if ch != nil {
			firstCh = ch.Name()
		}
		// Drop the dead channel, mux again on the survivor.
		ch, m, ok := channels.MuxRead(sp, chb)
		secondOK = ok
		if ch != nil {
			secondCh = ch.Name()
			payload, _ = m.Payload.(string)
		}
	})

	sys.K.At(sim.Time(4*sim.Millisecond), func() {
		w1.Kern.Crash()
		r.Chans.PeerDown(w1.EP)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if firstOK {
		t.Fatal("first mux must fail when a muxed peer dies")
	}
	if firstCh != "pa" {
		t.Fatalf("first mux identified %q as failed, want pa", firstCh)
	}
	if !secondOK || secondCh != "pb" || payload != "survivor" {
		t.Fatalf("surviving channel unusable after mux failure: ok=%v ch=%q payload=%q",
			secondOK, secondCh, payload)
	}
}

// TestRebindReplaysRetainedWrites exercises the migration primitives
// directly at the channels layer: a managed, retaining writer end is
// rebound to a reincarnated peer end, and exactly the writes at or
// above the peer's checkpoint mark are replayed and delivered.
func TestRebindReplaysRetainedWrites(t *testing.T) {
	sys := build(t, 3)
	w, r1, r2 := sys.Node(0), sys.Node(1), sys.Node(2)
	w.Chans.SetAckTimeout(2*sim.Millisecond, 3)

	var wch *channels.Channel
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		wch = w.Chans.Open(sp, "pipe", objmgr.OpenAny)
		wch.SetManaged(true) // retain acknowledged writes
		for i := 0; i < 4; i++ {
			if err := wch.Write(sp, 128, fmt.Sprintf("m%d", i)); err != nil {
				t.Errorf("write m%d: %v", i, err)
				return
			}
		}
		// m4 is written after the original reader died: it must ride
		// the rebind to the reincarnated end without an error.
		sp.SleepFor(10 * sim.Millisecond)
		if err := wch.Write(sp, 128, "m4"); err != nil {
			t.Errorf("write m4: %v", err)
		}
	})
	consumed := 0
	sys.Spawn(r1, "reader", 0, func(sp *kern.Subprocess) {
		ch := r1.Chans.Open(sp, "pipe", objmgr.OpenAny)
		for i := 0; i < 4; i++ {
			if _, ok := ch.Read(sp); !ok {
				return
			}
			consumed++
		}
	})

	// The "checkpoint" captured the reader after 2 messages; it dies
	// after consuming 4. The reincarnated end restarts at recvSeq 2 and
	// the rebind replays retained m2, m3 (m0, m1 were released as
	// checkpoint-stable) plus pending m4.
	var got []string
	sys.K.At(sim.Time(6*sim.Millisecond), func() {
		if consumed != 4 {
			t.Fatalf("original reader consumed %d, want 4", consumed)
		}
		r1.Kern.Crash()
		w.Chans.ReleaseRetained(wch.ID(), 2)
		if n := wch.RetainedWrites(); n != 2 {
			t.Fatalf("RetainedWrites = %d after release, want 2", n)
		}
	})
	sys.K.At(sim.Time(8*sim.Millisecond), func() {
		r2.Chans.Reincarnate(wch.ID(), "pipe", w.EP, 0, 2)
		if !w.Chans.Rebind(wch.ID(), r2.EP, 2) {
			t.Fatal("rebind found no channel")
		}
	})
	sys.Spawn(r2, "reader2", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(9 * sim.Millisecond) // wait for the reincarnation
		ch := r2.Chans.ByID(wch.ID())
		for i := 0; i < 3; i++ {
			m, ok := ch.Read(sp)
			if !ok {
				t.Error("reincarnated read failed")
				return
			}
			got = append(got, m.Payload.(string))
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "m2" || got[1] != "m3" || got[2] != "m4" {
		t.Fatalf("reincarnated reader got %v, want [m2 m3 m4]", got)
	}
}
