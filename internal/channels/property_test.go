package channels_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// Property: for any message size, count, sender window, and receiver
// side-buffer pool, every message arrives exactly once, in order, with
// the right size — even when the busy/retransmit path fires.
func TestChannelExactlyOnceInOrderProperty(t *testing.T) {
	f := func(sizeRaw uint16, countRaw, windowRaw, bufsRaw, readerLagRaw uint8) bool {
		size := int(sizeRaw%3000) + 1
		count := int(countRaw%20) + 1
		window := int(windowRaw%6) + 1
		bufs := int(bufsRaw%8) + 1
		lag := sim.Duration(readerLagRaw%4) * sim.Milliseconds(1)

		sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
		if err != nil {
			return false
		}
		sys.Node(1).Chans.SetSideBuffers(bufs)
		var got []int
		sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(0).Chans.Open(sp, "prop", objmgr.OpenAny)
			ch.SetWindow(window)
			for i := 0; i < count; i++ {
				if err := ch.Write(sp, size, i); err != nil {
					t.Logf("write: %v", err)
					return
				}
			}
		})
		sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(1).Chans.Open(sp, "prop", objmgr.OpenAny)
			for i := 0; i < count; i++ {
				if lag > 0 {
					sp.SleepFor(lag)
				}
				m, ok := ch.Read(sp)
				if !ok {
					return
				}
				if m.Size != size {
					t.Logf("size %d != %d", m.Size, size)
					return
				}
				got = append(got, m.Payload.(int))
			}
		})
		if err := sys.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if len(got) != count {
			t.Logf("got %d of %d (size=%d window=%d bufs=%d lag=%v)", len(got), count, size, window, bufs, lag)
			return false
		}
		for i, v := range got {
			if v != i {
				t.Logf("order broken at %d: %v", i, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: side buffers are never leaked — after any traffic pattern
// fully drains, the pool is back to its configured size.
func TestSideBufferConservationProperty(t *testing.T) {
	f := func(countRaw, bufsRaw, chansRaw uint8) bool {
		count := int(countRaw%12) + 1
		bufs := int(bufsRaw%6) + 2
		nch := int(chansRaw%3) + 1

		sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
		if err != nil {
			return false
		}
		sys.Node(1).Chans.SetSideBuffers(bufs)
		for c := 0; c < nch; c++ {
			c := c
			sys.Spawn(sys.Node(0), fmt.Sprintf("w%d", c), 0, func(sp *kern.Subprocess) {
				ch := sys.Node(0).Chans.Open(sp, fmt.Sprintf("sb%d", c), objmgr.OpenAny)
				for i := 0; i < count; i++ {
					if err := ch.Write(sp, 64, nil); err != nil {
						return
					}
				}
			})
			sys.Spawn(sys.Node(1), fmt.Sprintf("r%d", c), 0, func(sp *kern.Subprocess) {
				ch := sys.Node(1).Chans.Open(sp, fmt.Sprintf("sb%d", c), objmgr.OpenAny)
				sp.SleepFor(sim.Milliseconds(3)) // let writes buffer first
				for i := 0; i < count; i++ {
					if _, ok := ch.Read(sp); !ok {
						return
					}
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return sys.Node(1).Chans.SideBuffersFree() == bufs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: interconnect message conservation — everything the
// channel layer sends is eventually delivered by the hardware (the
// HPC cannot lose messages), across arbitrary small workloads.
func TestFabricConservationProperty(t *testing.T) {
	f := func(countRaw uint8, sizesRaw uint16) bool {
		count := int(countRaw%10) + 1
		size := int(sizesRaw%1500) + 1
		sys, err := core.Build(core.Config{Nodes: 3, Seed: 1})
		if err != nil {
			return false
		}
		for w := 0; w < 2; w++ {
			w := w
			sys.Spawn(sys.Node(w), "w", 0, func(sp *kern.Subprocess) {
				ch := sys.Node(w).Chans.Open(sp, fmt.Sprintf("fc%d", w), objmgr.OpenAny)
				for i := 0; i < count; i++ {
					if err := ch.Write(sp, size, nil); err != nil {
						return
					}
				}
			})
			sys.Spawn(sys.Node(2), fmt.Sprintf("r%d", w), 0, func(sp *kern.Subprocess) {
				ch := sys.Node(2).Chans.Open(sp, fmt.Sprintf("fc%d", w), objmgr.OpenAny)
				for i := 0; i < count; i++ {
					if _, ok := ch.Read(sp); !ok {
						return
					}
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		st := sys.IC.Stats()
		return st.MessagesSent == st.MessagesDelivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
