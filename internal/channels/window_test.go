package channels_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// buildComm is build with a communication profile applied.
func buildComm(t *testing.T, nodes int, cp core.CommProfile) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: nodes, Seed: 1, Comm: cp})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// Property: under the pipelined profile — any window, output depth,
// coalescing on or off, any fragment count — the channel still
// delivers every message exactly once, in per-channel FIFO order, with
// the right size.
func TestWindowedExactlyOnceInOrderProperty(t *testing.T) {
	f := func(sizeRaw uint16, countRaw, windowRaw, depthRaw, coalesceRaw uint8) bool {
		size := int(sizeRaw%5000) + 1
		count := int(countRaw%12) + 1
		cp := core.CommProfile{
			Window:      int(windowRaw%7) + 2, // 2..8
			OutputDepth: int(depthRaw%4) + 1,  // 1..4
			Coalesce:    coalesceRaw%2 == 0,
		}
		sys := buildComm(t, 2, cp)
		var got []int
		sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(0).Chans.Open(sp, "wprop", objmgr.OpenAny)
			for i := 0; i < count; i++ {
				if err := ch.Write(sp, size, i); err != nil {
					t.Logf("write: %v", err)
					return
				}
			}
		})
		sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(1).Chans.Open(sp, "wprop", objmgr.OpenAny)
			for i := 0; i < count; i++ {
				m, ok := ch.Read(sp)
				if !ok {
					return
				}
				if m.Size != size {
					t.Logf("size %d != %d", m.Size, size)
					return
				}
				got = append(got, m.Payload.(int))
			}
		})
		if err := sys.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if len(got) != count {
			t.Logf("got %d of %d (%+v)", len(got), count, cp)
			return false
		}
		for i, v := range got {
			if v != i {
				t.Logf("order broken at %d: %v (%+v)", i, got, cp)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowedLinkOutageMidTrain: a cube link goes down in the middle
// of a windowed multi-fragment stream and comes back later. Reroutes
// and end-to-end recovery must preserve per-channel FIFO and
// exactly-once delivery.
func TestWindowedLinkOutageMidTrain(t *testing.T) {
	sys := buildComm(t, 16, core.Pipelined())
	w, r := sys.Node(0), sys.Node(8) // different hypercube clusters
	w.Chans.SetAckTimeout(2*sim.Millisecond, 20)

	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	eng.CubeLinkDownAt(1*sim.Millisecond, 0, 2)
	eng.CubeLinkUpAt(9*sim.Millisecond, 0, 2)

	const msgs, size = 24, 3000 // 3 fragments per message
	var writeErr error
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		ch := w.Chans.Open(sp, "train", objmgr.OpenAny)
		for i := 0; i < msgs; i++ {
			if writeErr = ch.Write(sp, size, i); writeErr != nil {
				return
			}
		}
	})
	var got []int
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		ch := r.Chans.Open(sp, "train", objmgr.OpenAny)
		for i := 0; i < msgs; i++ {
			m, ok := ch.Read(sp)
			if !ok {
				return
			}
			got = append(got, m.Payload.(int))
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if writeErr != nil {
		t.Fatalf("writer failed across the outage: %v", writeErr)
	}
	if len(got) != msgs {
		t.Fatalf("reader got %d of %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO broken at %d: %v", i, got)
		}
	}
	if r.Chans.Delivered != msgs {
		t.Fatalf("exactly-once violated: Delivered=%d, want %d", r.Chans.Delivered, msgs)
	}
}

// TestWindowedPeerCrashInFlightWindow: the receiving node dies with a
// full window of fragment trains in flight, then restarts (a blind
// outage — no death oracle, so the writer keeps retrying). End-to-end
// timeouts replay the unacknowledged writes; the service must account
// every message exactly once.
func TestWindowedPeerCrashInFlightWindow(t *testing.T) {
	sys := buildComm(t, 2, core.CommProfile{Window: 8, OutputDepth: 4})
	w, r := sys.Node(0), sys.Node(1)
	w.Chans.SetAckTimeout(2*sim.Millisecond, 20)

	sys.K.At(sim.Time(3*sim.Millisecond), func() { r.Kern.Crash() })
	sys.K.At(sim.Time(10*sim.Millisecond), func() { r.Kern.Restart() })

	const msgs, size = 10, 2000
	var writeErr error
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		ch := w.Chans.Open(sp, "cw", objmgr.OpenAny)
		for i := 0; i < msgs; i++ {
			if writeErr = ch.Write(sp, size, i); writeErr != nil {
				return
			}
		}
	})
	drained := 0
	sys.Spawn(r, "reader", 0, func(sp *kern.Subprocess) {
		ch := r.Chans.Open(sp, "cw", objmgr.OpenAny)
		for {
			if _, ok := ch.Read(sp); !ok {
				return
			}
			drained++
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if writeErr != nil {
		t.Fatalf("writer failed across the crash: %v", writeErr)
	}
	if w.Chans.TimeoutRetransmits == 0 {
		t.Fatal("crash with an in-flight window must exercise the end-to-end timeout")
	}
	if r.Chans.Delivered != msgs {
		t.Fatalf("exactly-once violated: Delivered=%d, want %d", r.Chans.Delivered, msgs)
	}
}

// TestWindowedRebindReplaysRetainedWrites: migration replay under a
// write window and multi-fragment messages — a managed, retaining
// writer is rebound to a reincarnated end and replays exactly the
// writes at or above the checkpoint mark, in order.
func TestWindowedRebindReplaysRetainedWrites(t *testing.T) {
	sys := buildComm(t, 3, core.CommProfile{Window: 4})
	w, r1, r2 := sys.Node(0), sys.Node(1), sys.Node(2)
	w.Chans.SetAckTimeout(2*sim.Millisecond, 3)

	const size = 2500 // 3 fragments: replay replays whole trains
	var wch *channels.Channel
	sys.Spawn(w, "writer", 0, func(sp *kern.Subprocess) {
		wch = w.Chans.Open(sp, "mig", objmgr.OpenAny)
		wch.SetManaged(true)
		for i := 0; i < 4; i++ {
			if err := wch.Write(sp, size, fmt.Sprintf("m%d", i)); err != nil {
				t.Errorf("write m%d: %v", i, err)
				return
			}
		}
		sp.SleepFor(10 * sim.Millisecond)
		if err := wch.Write(sp, size, "m4"); err != nil {
			t.Errorf("write m4: %v", err)
		}
	})
	consumed := 0
	sys.Spawn(r1, "reader", 0, func(sp *kern.Subprocess) {
		ch := r1.Chans.Open(sp, "mig", objmgr.OpenAny)
		for i := 0; i < 4; i++ {
			if _, ok := ch.Read(sp); !ok {
				return
			}
			consumed++
		}
	})
	var got []string
	sys.K.At(sim.Time(6*sim.Millisecond), func() {
		if consumed != 4 {
			t.Fatalf("original reader consumed %d, want 4", consumed)
		}
		r1.Kern.Crash()
		w.Chans.ReleaseRetained(wch.ID(), 2)
	})
	sys.K.At(sim.Time(8*sim.Millisecond), func() {
		r2.Chans.Reincarnate(wch.ID(), "mig", w.EP, 0, 2)
		if !w.Chans.Rebind(wch.ID(), r2.EP, 2) {
			t.Fatal("rebind found no channel")
		}
	})
	sys.Spawn(r2, "reader2", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(9 * sim.Millisecond)
		ch := r2.Chans.ByID(wch.ID())
		for i := 0; i < 3; i++ {
			m, ok := ch.Read(sp)
			if !ok {
				t.Error("reincarnated read failed")
				return
			}
			got = append(got, m.Payload.(string))
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "m2" || got[1] != "m3" || got[2] != "m4" {
		t.Fatalf("reincarnated reader got %v, want [m2 m3 m4]", got)
	}
}
