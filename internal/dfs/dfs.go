// Package dfs is the distributed file service the paper's resource
// decentralization implies: "Program downloading, file access, and
// other system services are also spread among the host workstations"
// (§3.2). Files hash by name to a host server — the same distributed-
// hashing idea the object manager uses — and replicate to the next R-1
// hosts by issuing multiple writes, which is exactly how §4.2 says
// LAN-style servers should reach "a few receivers" instead of using
// multicast.
//
// Node processes access files through a Client over channels. A host
// can be marked down; clients fail over to the next replica.
package dfs

import (
	"fmt"
	"hash/fnv"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// OpCost is the host-side fixed cost per file operation beyond the
// per-byte copying.
var OpCost = sim.Microseconds(350)

// request/reply wire bodies
type req struct {
	op   string // "create", "append", "read", "stat"
	name string
	data []byte
}

type rep struct {
	err  string
	data []byte
	size int
}

const (
	reqHeader = 64
	repHeader = 48
)

// Service is the distributed file service: one server per host.
type Service struct {
	sys      *core.System
	hosts    []*core.Machine
	replicas int
	uid      int

	files []map[string][]byte
	down  []bool

	// Ops counts operations served per host.
	Ops []int
}

// New starts file servers on the given hosts with the given
// replication factor (clamped to the host count).
func New(sys *core.System, hosts []*core.Machine, replicas int) *Service {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(hosts) {
		replicas = len(hosts)
	}
	s := &Service{
		sys: sys, hosts: hosts, replicas: replicas, uid: sys.NextUID("dfs"),
		files: make([]map[string][]byte, len(hosts)),
		down:  make([]bool, len(hosts)),
		Ops:   make([]int, len(hosts)),
	}
	for hi, h := range hosts {
		hi, h := hi, h
		s.files[hi] = map[string][]byte{}
		acceptor := sys.Spawn(h, fmt.Sprintf("dfs-accept%d", hi), 0, func(sp *kern.Subprocess) {
			for conn := 0; ; conn++ {
				ch := h.Chans.Open(sp, s.chanName(hi), objmgr.Serve)
				worker := sys.Spawn(h, fmt.Sprintf("dfs%d.%d", hi, conn), 0, func(wsp *kern.Subprocess) {
					s.serve(wsp, hi, h, ch)
				})
				worker.Proc().SetDaemon(true)
			}
		})
		acceptor.Proc().SetDaemon(true)
	}
	return s
}

func (s *Service) chanName(host int) string {
	return fmt.Sprintf("dfs.%d.%d", s.uid, host)
}

// serve handles one client connection on host hi.
func (s *Service) serve(sp *kern.Subprocess, hi int, h *core.Machine, ch *channels.Channel) {
	costs := h.Kern.Costs()
	for {
		m, ok := ch.Read(sp)
		if !ok {
			return
		}
		r := m.Payload.(req)
		if s.down[hi] {
			if ch.Write(sp, repHeader, rep{err: "host unavailable"}) != nil {
				return
			}
			continue
		}
		s.Ops[hi]++
		sp.Compute(OpCost)
		var out rep
		switch r.op {
		case "create":
			if _, exists := s.files[hi][r.name]; exists {
				out.err = "file exists"
			} else {
				s.files[hi][r.name] = nil
			}
		case "append":
			f, exists := s.files[hi][r.name]
			if !exists {
				out.err = "no such file"
			} else {
				sp.Compute(costs.HostCopyTime(len(r.data)))
				s.files[hi][r.name] = append(f, r.data...)
			}
		case "read":
			f, exists := s.files[hi][r.name]
			if !exists {
				out.err = "no such file"
			} else {
				sp.Compute(costs.HostCopyTime(len(f)))
				out.data = append([]byte(nil), f...)
				out.size = len(f)
			}
		case "stat":
			f, exists := s.files[hi][r.name]
			if !exists {
				out.err = "no such file"
			} else {
				out.size = len(f)
			}
		default:
			out.err = "bad op"
		}
		size := repHeader + len(out.data)
		if ch.Write(sp, size, out) != nil {
			return
		}
	}
}

// ReplicaHosts returns the hosts holding the file, primary first.
func (s *Service) ReplicaHosts(name string) []int {
	h := fnv.New32a()
	h.Write([]byte(name))
	first := int(h.Sum32()) % len(s.hosts)
	out := make([]int, 0, s.replicas)
	for i := 0; i < s.replicas; i++ {
		out = append(out, (first+i)%len(s.hosts))
	}
	return out
}

// SetDown marks a host's server unavailable (true) or back up (false)
// — the failure-injection hook.
func (s *Service) SetDown(host int, down bool) { s.down[host] = down }

// NumHosts returns how many hosts run a file server.
func (s *Service) NumHosts() int { return len(s.hosts) }

// StoredOn reports the file's size on a specific host replica, and
// whether it exists there.
func (s *Service) StoredOn(host int, name string) (int, bool) {
	f, ok := s.files[host][name]
	return len(f), ok
}

// Client is one process's connection set to the file service.
type Client struct {
	s     *Service
	m     *core.Machine
	conns []*channels.Channel
}

// NewClient prepares a client for a process on machine m.
func (s *Service) NewClient(m *core.Machine) *Client {
	return &Client{s: s, m: m, conns: make([]*channels.Channel, len(s.hosts))}
}

func (c *Client) conn(sp *kern.Subprocess, host int) *channels.Channel {
	if c.conns[host] == nil {
		c.conns[host] = c.m.Chans.Open(sp, c.s.chanName(host), objmgr.Connect)
	}
	return c.conns[host]
}

// call performs one request against a specific host.
func (c *Client) call(sp *kern.Subprocess, host int, r req) (rep, error) {
	ch := c.conn(sp, host)
	size := reqHeader + len(r.data)
	if err := ch.Write(sp, size, r); err != nil {
		return rep{}, err
	}
	m, ok := ch.Read(sp)
	if !ok {
		return rep{}, fmt.Errorf("dfs: connection to host %d closed", host)
	}
	return m.Payload.(rep), nil
}

// Create makes the file on every replica (multiple writes — §4.2's
// few-receiver pattern).
func (c *Client) Create(sp *kern.Subprocess, name string) error {
	return c.writeAll(sp, req{op: "create", name: name})
}

// Append appends data on every replica.
func (c *Client) Append(sp *kern.Subprocess, name string, data []byte) error {
	return c.writeAll(sp, req{op: "append", name: name, data: data})
}

// writeAll issues the mutation to all replicas; it fails if any live
// replica rejects it, and tolerates down replicas as long as one
// accepts. A transport error (the host crashed or became unreachable)
// counts as a down replica, not a client failure.
func (c *Client) writeAll(sp *kern.Subprocess, r req) error {
	accepted := 0
	var lastErr error
	for _, host := range c.s.ReplicaHosts(r.name) {
		out, err := c.call(sp, host, r)
		if err != nil {
			lastErr = err
			continue
		}
		switch out.err {
		case "":
			accepted++
		case "host unavailable":
			lastErr = fmt.Errorf("dfs: %s", out.err)
		default:
			return fmt.Errorf("dfs: %s: %s", r.name, out.err)
		}
	}
	if accepted == 0 {
		if lastErr != nil {
			return lastErr
		}
		return fmt.Errorf("dfs: no replica accepted %s", r.op)
	}
	return nil
}

// Read returns the file contents, failing over from a down or crashed
// primary to the other replicas.
func (c *Client) Read(sp *kern.Subprocess, name string) ([]byte, error) {
	var lastErr error
	for _, host := range c.s.ReplicaHosts(name) {
		out, err := c.call(sp, host, req{op: "read", name: name})
		if err != nil {
			lastErr = err
			continue
		}
		if out.err == "" {
			return out.data, nil
		}
		lastErr = fmt.Errorf("dfs: %s: %s", name, out.err)
		if out.err != "host unavailable" {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// Stat returns the file size, with the same failover as Read.
func (c *Client) Stat(sp *kern.Subprocess, name string) (int, error) {
	var lastErr error
	for _, host := range c.s.ReplicaHosts(name) {
		out, err := c.call(sp, host, req{op: "stat", name: name})
		if err != nil {
			lastErr = err
			continue
		}
		if out.err == "" {
			return out.size, nil
		}
		lastErr = fmt.Errorf("dfs: %s: %s", name, out.err)
		if out.err != "host unavailable" {
			return 0, lastErr
		}
	}
	return 0, lastErr
}
