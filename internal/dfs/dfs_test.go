package dfs_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"hpcvorx/internal/core"
	"hpcvorx/internal/dfs"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

func newDFS(t *testing.T, hosts, nodes, replicas int) (*core.System, *dfs.Service) {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: hosts, Nodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys, dfs.New(sys, sys.Hosts(), replicas)
}

// runApp runs fn as a process on node 0 and drives the simulation.
func runApp(t *testing.T, sys *core.System, fn func(sp *kern.Subprocess)) {
	t.Helper()
	done := false
	sys.Spawn(sys.Node(0), "app", 0, func(sp *kern.Subprocess) {
		fn(sp)
		done = true
	})
	sys.RunFor(sim.Seconds(30))
	sys.Shutdown()
	if !done {
		t.Fatal("application did not finish")
	}
}

func TestCreateAppendRead(t *testing.T) {
	sys, svc := newDFS(t, 2, 1, 1)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		if err := c.Create(sp, "/results/run1"); err != nil {
			t.Error(err)
		}
		if err := c.Append(sp, "/results/run1", []byte("hello ")); err != nil {
			t.Error(err)
		}
		if err := c.Append(sp, "/results/run1", []byte("world")); err != nil {
			t.Error(err)
		}
		data, err := c.Read(sp, "/results/run1")
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(data, []byte("hello world")) {
			t.Errorf("read %q", data)
		}
		n, err := c.Stat(sp, "/results/run1")
		if err != nil || n != 11 {
			t.Errorf("stat = %d, %v", n, err)
		}
	})
}

func TestErrors(t *testing.T) {
	sys, svc := newDFS(t, 1, 1, 1)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		if _, err := c.Read(sp, "/missing"); err == nil {
			t.Error("read of missing file should fail")
		}
		if err := c.Append(sp, "/missing", []byte("x")); err == nil {
			t.Error("append to missing file should fail")
		}
		if err := c.Create(sp, "/f"); err != nil {
			t.Error(err)
		}
		if err := c.Create(sp, "/f"); err == nil {
			t.Error("double create should fail")
		}
	})
}

func TestFilesSpreadAcrossHosts(t *testing.T) {
	sys, svc := newDFS(t, 4, 1, 1)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		for i := 0; i < 24; i++ {
			if err := c.Create(sp, fmt.Sprintf("/f%d", i)); err != nil {
				t.Error(err)
			}
		}
	})
	busyHosts := 0
	for h := 0; h < 4; h++ {
		if svc.Ops[h] > 0 {
			busyHosts++
		}
	}
	if busyHosts < 3 {
		t.Fatalf("files concentrated on %d hosts: %v", busyHosts, svc.Ops)
	}
}

func TestReplicationWritesAllCopies(t *testing.T) {
	sys, svc := newDFS(t, 3, 1, 2)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		c.Create(sp, "/r")
		c.Append(sp, "/r", []byte("abc"))
	})
	replicas := svc.ReplicaHosts("/r")
	if len(replicas) != 2 {
		t.Fatalf("replicas = %v", replicas)
	}
	for _, h := range replicas {
		if n, ok := svc.StoredOn(h, "/r"); !ok || n != 3 {
			t.Fatalf("host %d copy: %d bytes, ok=%v", h, n, ok)
		}
	}
}

func TestFailoverToReplica(t *testing.T) {
	sys, svc := newDFS(t, 3, 1, 2)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		c.Create(sp, "/ha")
		c.Append(sp, "/ha", []byte("survives"))
		// Primary goes down; reads must come from the replica.
		primary := svc.ReplicaHosts("/ha")[0]
		svc.SetDown(primary, true)
		data, err := c.Read(sp, "/ha")
		if err != nil {
			t.Errorf("failover read: %v", err)
		}
		if !bytes.Equal(data, []byte("survives")) {
			t.Errorf("failover read got %q", data)
		}
		// Writes still accepted by the surviving replica.
		if err := c.Append(sp, "/ha", []byte("!")); err != nil {
			t.Errorf("degraded append: %v", err)
		}
		// Primary recovers; it missed the degraded write (the model
		// has no re-sync), but service continues.
		svc.SetDown(primary, false)
		if _, err := c.Stat(sp, "/ha"); err != nil {
			t.Errorf("stat after recovery: %v", err)
		}
	})
}

func TestUnreplicatedFileUnavailableWhenHostDown(t *testing.T) {
	sys, svc := newDFS(t, 2, 1, 1)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		c.Create(sp, "/single")
		svc.SetDown(svc.ReplicaHosts("/single")[0], true)
		if _, err := c.Read(sp, "/single"); err == nil {
			t.Error("read should fail with the only replica down")
		}
	})
}

// Property (model-based): any sequence of creates and appends matches
// an in-memory map model on read-back.
func TestDFSModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 20 {
			ops = ops[:20]
		}
		sys, err := core.Build(core.Config{Hosts: 3, Nodes: 1, Seed: 1})
		if err != nil {
			return false
		}
		svc := dfs.New(sys, sys.Hosts(), 2)
		c := svc.NewClient(sys.Node(0))
		model := map[string][]byte{}
		okAll := true
		done := false
		sys.Spawn(sys.Node(0), "app", 0, func(sp *kern.Subprocess) {
			defer func() { done = true }()
			for _, op := range ops {
				name := fmt.Sprintf("/p%d", op%5)
				switch {
				case op%3 == 0: // create
					err := c.Create(sp, name)
					_, exists := model[name]
					if (err == nil) == exists {
						okAll = false
						return
					}
					if !exists {
						model[name] = []byte{}
					}
				case op%3 == 1: // append
					payload := []byte{op}
					err := c.Append(sp, name, payload)
					_, exists := model[name]
					if (err == nil) != exists {
						okAll = false
						return
					}
					if exists {
						model[name] = append(model[name], payload...)
					}
				default: // read
					data, err := c.Read(sp, name)
					want, exists := model[name]
					if (err == nil) != exists {
						okAll = false
						return
					}
					if exists && !bytes.Equal(data, want) {
						okAll = false
						return
					}
				}
			}
		})
		sys.RunFor(sim.Seconds(60))
		sys.Shutdown()
		return done && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatErrors(t *testing.T) {
	sys, svc := newDFS(t, 2, 1, 1)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		if _, err := c.Stat(sp, "/absent"); err == nil {
			t.Error("stat of missing file should fail")
		}
		c.Create(sp, "/present")
		svc.SetDown(svc.ReplicaHosts("/present")[0], true)
		if _, err := c.Stat(sp, "/present"); err == nil {
			t.Error("stat with sole replica down should fail")
		}
		svc.SetDown(svc.ReplicaHosts("/present")[0], false)
		if n, err := c.Stat(sp, "/present"); err != nil || n != 0 {
			t.Errorf("stat after recovery: %d, %v", n, err)
		}
	})
}

func TestWriteAllToleratesDownReplica(t *testing.T) {
	sys, svc := newDFS(t, 3, 1, 2)
	c := svc.NewClient(sys.Node(0))
	runApp(t, sys, func(sp *kern.Subprocess) {
		c.Create(sp, "/tol")
		reps := svc.ReplicaHosts("/tol")
		svc.SetDown(reps[1], true)
		// One replica down: the write still succeeds on the other.
		if err := c.Append(sp, "/tol", []byte("x")); err != nil {
			t.Errorf("degraded append: %v", err)
		}
		svc.SetDown(reps[0], true)
		// Both down: the write must fail.
		if err := c.Append(sp, "/tol", []byte("y")); err == nil {
			t.Error("append with all replicas down should fail")
		}
	})
}
