package vchan_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vchan"
	"hpcvorx/internal/verify"
)

// stormParams is one sampled point of the property space.
type stormParams struct {
	lanes  int // lanes per broker: 1..3
	vchans int // declared vchannels: 1..8
	rebals int // forced migrations during the run: 0..5
	window int // per-lane sliding window: 1..8
}

// Generate maps testing/quick's raw randomness into the small ranges
// the property sweeps.
func (stormParams) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(stormParams{
		lanes:  1 + r.Intn(3),
		vchans: 1 + r.Intn(8),
		rebals: r.Intn(6),
		window: 1 + r.Intn(8),
	})
}

// TestStormProperty is the satellite property: for every sampled
// (lanes × vchannels × rebalance rate × window depth) point, a run
// with that shape and mid-stream forced migrations delivers every
// vchannel's stream exactly once in FIFO order, with the full
// invariant checker attached and silent.
func TestStormProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is a long test")
	}
	prop := func(p stormParams) bool { return stormRun(t, p) }
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// stormRun executes one sampled configuration and reports whether
// every invariant held. Failures are logged with the full parameter
// point so the seed reproduces them.
func stormRun(t *testing.T, p stormParams) bool {
	const (
		msgs    = 15
		brokerA = 10
		brokerB = 11
	)
	seed := int64(1 + p.lanes*1000 + p.vchans*100 + p.rebals*10 + p.window)
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 12, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	fab := vchan.Enable(sys, vchan.Config{
		Brokers:        []int{brokerA, brokerB},
		LanesPerBroker: p.lanes,
		Window:         p.window,
	})
	type reg struct {
		name       string
		prod, cons *core.Machine
	}
	var regs []reg
	for i := 0; i < p.vchans; i++ {
		r := reg{
			name: fmt.Sprintf("t%d", i),
			prod: sys.Node((2 * i) % 8),
			cons: sys.Node((2*i + 1) % 8),
		}
		fab.Declare(r.name, r.prod, r.cons)
		regs = append(regs, r)
	}
	chk := verify.AttachAll(sys, fab)
	fab.Start()

	got := make(map[string][]int)
	for _, r := range regs {
		r := r
		sys.Spawn(r.prod, "w/"+r.name, 1, func(sp *kern.Subprocess) {
			w := fab.On(r.prod).OpenWriter(sp, r.name)
			for k := 0; k < msgs; k++ {
				if err := w.Write(sp, 64, k); err != nil {
					return
				}
				sp.SleepFor(30 * sim.Microsecond)
			}
		})
		sys.Spawn(r.cons, "r/"+r.name, 1, func(sp *kern.Subprocess) {
			rd := fab.On(r.cons).OpenReader(sp, r.name)
			for k := 0; k < msgs; k++ {
				m, err := rd.Read(sp)
				if err != nil {
					return
				}
				got[r.name] = append(got[r.name], m.Payload.(int))
			}
		})
	}

	bal := fab.Balancer()
	for k := 0; k < p.rebals; k++ {
		k := k
		name := regs[k%len(regs)].name
		sys.K.After(sim.Duration(200+400*k)*sim.Microsecond, func() {
			node, _, _, ok := bal.Placement(name)
			if !ok {
				return
			}
			target := brokerA
			if node == brokerA {
				target = brokerB
			}
			bal.MigrateTo(name, target)
		})
	}

	sys.RunFor(120 * sim.Millisecond)

	ok := true
	if !chk.Ok() {
		t.Logf("params %+v: checker violations:\n%v", p, chk.Violations())
		ok = false
	}
	for _, r := range regs {
		seqs := got[r.name]
		if len(seqs) != msgs {
			t.Logf("params %+v: %s delivered %d of %d", p, r.name, len(seqs), msgs)
			ok = false
			continue
		}
		for i, v := range seqs {
			if v != i {
				t.Logf("params %+v: %s position %d got %d", p, r.name, i, v)
				ok = false
				break
			}
		}
	}
	if bal.ActiveMigrations() != 0 {
		t.Logf("params %+v: %d migrations never completed", p, bal.ActiveMigrations())
		ok = false
	}
	return ok
}
