package vchan_test

import (
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/vchan"
	"hpcvorx/internal/verify"
)

// TestConfirmedDeathBeatsSilence wires the supervisor's quorum
// confirmation into the balancer (super.OnConfirm →
// BrokerConfirmedDead): a crashed broker is evacuated as soon as the
// heartbeat protocol confirms it dead, not after the balancer's own
// much longer report-silence window, and the stream completes exactly
// once in FIFO order across the forced move.
func TestConfirmedDeathBeatsSilence(t *testing.T) {
	const (
		msgs    = 20
		brokerA = 10
		brokerB = 11
	)
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fab := vchan.Enable(sys, vchan.Config{Brokers: []int{brokerA, brokerB}, LanesPerBroker: 1})
	fab.Declare("t0", sys.Node(0), sys.Node(1))
	chk := verify.AttachAll(sys, fab)
	fab.Start()

	sup := super.New(sys, sys.Host(0), nil, super.Config{
		HeartbeatEvery: 500 * sim.Microsecond,
		SuspectAfter:   1 * sim.Millisecond,
		ConfirmAfter:   2 * sim.Millisecond,
	})
	bal := fab.Balancer()
	sup.OnConfirm(func(ep topo.EndpointID, _ uint32) { bal.BrokerConfirmedDead(ep) })

	eng := fault.New(sys.K, 5)
	eng.Bind(sys)
	eng.SetOracle(false) // detection must come from heartbeats
	crashAt := 3 * sim.Millisecond
	eng.CrashNodeAt(crashAt, brokerA)

	var got []int
	sys.Spawn(sys.Node(0), "w/t0", 1, func(sp *kern.Subprocess) {
		w := fab.On(sys.Node(0)).OpenWriter(sp, "t0")
		for k := 0; k < msgs; k++ {
			if err := w.Write(sp, 64, k); err != nil {
				return
			}
			sp.SleepFor(200 * sim.Microsecond)
		}
	})
	sys.Spawn(sys.Node(1), "r/t0", 1, func(sp *kern.Subprocess) {
		r := fab.On(sys.Node(1)).OpenReader(sp, "t0")
		for k := 0; k < msgs; k++ {
			m, err := r.Read(sp)
			if err != nil {
				return
			}
			got = append(got, m.Payload.(int))
		}
	})

	sup.Start()
	sup.StopAt(40 * sim.Millisecond)
	sys.RunFor(40 * sim.Millisecond)

	if !chk.Ok() {
		t.Fatalf("checker violations:\n%v", chk.Violations())
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for k, v := range got {
		if v != k {
			t.Fatalf("FIFO broken at %d: got %v", k, got)
		}
	}
	node, _, term, ok := bal.Placement("t0")
	if !ok || node != brokerB || term < 2 {
		t.Fatalf("placement = node%d term=%d ok=%v, want node%d term>=2", node, term, ok, brokerB)
	}

	// The move must be confirm-driven: a "(confirmed)" death record,
	// no "(silent)" one, and the evacuation starting well before the
	// balancer's own silence window (25 report periods = 12.5ms after
	// the crash) could have fired.
	var confirmedAt sim.Time
	for _, r := range bal.Records() {
		if strings.Contains(r.What, "dead (silent)") {
			t.Fatalf("broker written off by silence, not confirmation: %v", r)
		}
		if strings.Contains(r.What, "dead (confirmed)") {
			confirmedAt = r.At
		}
	}
	if confirmedAt == 0 {
		t.Fatalf("no confirmed-death record:\n%v", bal.Records())
	}
	// Crash + ConfirmAfter + sweep granularity + fabric slop.
	bound := crashAt + 2*sim.Millisecond + 2*sim.Millisecond
	if confirmedAt.Sub(0) > bound {
		t.Fatalf("confirmed at %v, want within %v of the crash", confirmedAt, bound)
	}
}
