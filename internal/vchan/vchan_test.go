package vchan

import (
	"fmt"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

// testRig builds a system with nProd producer nodes, nCons consumer
// nodes, and enough spare nodes for brokers, declares nv vchannels
// round-robin over the producer/consumer machines, and returns
// everything needed to drive traffic.
type testRig struct {
	sys  *core.System
	fab  *Fabric
	regs []rigChan
}

type rigChan struct {
	name string
	prod *core.Machine
	cons *core.Machine
}

func newRig(t *testing.T, nodes, nv int, cfg Config) *testRig {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: nodes, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fab := Enable(sys, cfg)
	rig := &testRig{sys: sys, fab: fab}
	// Producers on even low nodes, consumers on odd low nodes;
	// brokers auto-picked from the top.
	for i := 0; i < nv; i++ {
		prod := sys.Node((2 * i) % (nodes - cfg.brokerNeed()))
		cons := sys.Node((2*i + 1) % (nodes - cfg.brokerNeed()))
		name := fmt.Sprintf("t%d", i)
		fab.Declare(name, prod, cons)
		rig.regs = append(rig.regs, rigChan{name: name, prod: prod, cons: cons})
	}
	fab.Start()
	return rig
}

func (c Config) brokerNeed() int {
	if len(c.Brokers) > 0 {
		return len(c.Brokers)
	}
	if c.BrokerCount > 0 {
		return c.BrokerCount
	}
	return 2
}

// drive spawns a paced writer and a reader for every vchannel;
// returns a map of received payload sequences filled as the run
// progresses.
func (r *testRig) drive(msgs int, size int, pace sim.Duration) map[string][]int {
	got := make(map[string][]int)
	for _, rc := range r.regs {
		rc := rc
		got[rc.name] = nil
		r.sys.Spawn(rc.prod, "w/"+rc.name, 1, func(sp *kern.Subprocess) {
			w := r.fab.On(rc.prod).OpenWriter(sp, rc.name)
			for i := 0; i < msgs; i++ {
				if err := w.Write(sp, size, i); err != nil {
					return
				}
				if pace > 0 {
					sp.SleepFor(pace)
				}
			}
		})
		r.sys.Spawn(rc.cons, "r/"+rc.name, 1, func(sp *kern.Subprocess) {
			rd := r.fab.On(rc.cons).OpenReader(sp, rc.name)
			for i := 0; i < msgs; i++ {
				m, err := rd.Read(sp)
				if err != nil {
					return
				}
				got[rc.name] = append(got[rc.name], m.Payload.(int))
			}
		})
	}
	return got
}

func checkFIFO(t *testing.T, got map[string][]int, msgs int) {
	t.Helper()
	for name, seqs := range got {
		if len(seqs) != msgs {
			t.Errorf("%s: delivered %d of %d", name, len(seqs), msgs)
			continue
		}
		for i, v := range seqs {
			if v != i {
				t.Errorf("%s: position %d got payload %d", name, i, v)
				break
			}
		}
	}
}

func TestBasicFIFOExactlyOnce(t *testing.T) {
	rig := newRig(t, 8, 4, Config{})
	got := rig.drive(20, 64, 50*sim.Microsecond)
	rig.sys.RunFor(50 * sim.Millisecond)
	checkFIFO(t, got, 20)
	for _, rc := range rig.regs {
		w := rig.fab.On(rc.prod).writers[rig.fab.byName[rc.name].id]
		if len(w.pending) != 0 {
			t.Errorf("%s: %d writes never acked", rc.name, len(w.pending))
		}
	}
}

func TestManualMigrationUnderLoad(t *testing.T) {
	rig := newRig(t, 8, 3, Config{BrokerCount: 2})
	got := rig.drive(40, 128, 40*sim.Microsecond)
	bal := rig.fab.Balancer()
	// Move t0 to the other broker mid-stream.
	rig.sys.K.After(400*sim.Microsecond, func() {
		n0, _, _, _ := bal.Placement("t0")
		var target int
		for _, n := range bal.BrokerNodes() {
			if n != n0 {
				target = n
			}
		}
		if !bal.MigrateTo("t0", target) {
			t.Error("MigrateTo refused")
		}
	})
	rig.sys.RunFor(80 * sim.Millisecond)
	checkFIFO(t, got, 40)
	_, _, term, ok := bal.Placement("t0")
	if !ok || term < 2 {
		t.Errorf("t0 term = %d after migration, want >= 2", term)
	}
	if bal.Migrations < 1 {
		t.Errorf("Migrations = %d, want >= 1", bal.Migrations)
	}
	if bal.ActiveMigrations() != 0 {
		t.Errorf("%d migrations still active", bal.ActiveMigrations())
	}
}

func TestBrokerCrashEvacuation(t *testing.T) {
	rig := newRig(t, 8, 3, Config{BrokerCount: 2})
	got := rig.drive(40, 128, 40*sim.Microsecond)
	bal := rig.fab.Balancer()
	// Crash whichever broker holds t0 mid-stream; the balancer's
	// silence sweep must evacuate and traffic must complete.
	rig.sys.K.After(500*sim.Microsecond, func() {
		n0, _, _, _ := bal.Placement("t0")
		rig.sys.Node(n0).Kern.Crash()
	})
	rig.sys.RunFor(100 * sim.Millisecond)
	checkFIFO(t, got, 40)
	if bal.Migrations < 1 {
		t.Errorf("no migrations after broker crash")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		rig := newRig(t, 8, 3, Config{BrokerCount: 2})
		rig.drive(30, 64, 30*sim.Microsecond)
		bal := rig.fab.Balancer()
		rig.sys.K.After(300*sim.Microsecond, func() {
			n0, _, _, _ := bal.Placement("t1")
			var target int
			for _, n := range bal.BrokerNodes() {
				if n != n0 {
					target = n
				}
			}
			bal.MigrateTo("t1", target)
		})
		rig.sys.RunFor(60 * sim.Millisecond)
		out := ""
		for _, r := range bal.Records() {
			out += r.String() + "\n"
		}
		for _, m := range rig.sys.Machines() {
			s := rig.fab.On(m)
			out += fmt.Sprintf("%s: fwd=%d stale=%d dup=%d gap=%d rx=%d\n",
				m.Name(), s.Forwarded, s.StaleRefused, s.Dups, s.Gaps, s.Retransmits)
		}
		return out
	}
	a, bout := run(), run()
	if a != bout {
		t.Errorf("two identical runs diverged:\n--- a ---\n%s--- b ---\n%s", a, bout)
	}
}
