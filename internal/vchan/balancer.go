package vchan

import (
	"fmt"
	"io"
	"sort"

	"hpcvorx/internal/core"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Balancer is the deterministic placement authority: it mints terms,
// drives the seal → drain → revoke/assign → expect → place migration
// protocol, watches broker load reports (per-lane byte counters and
// report silence), and — in auto mode — rebalances the hottest lane.
// It runs entirely on one simulated machine: every decision is a
// kernel timer or a fabric message, so checked runs are
// bit-reproducible.
type Balancer struct {
	fab     *Fabric
	m       *core.Machine
	ep      topo.EndpointID
	started bool

	brokers []*brokerInfo
	lanes   []*laneInfo
	places  map[uint64]*placement
	migs    map[uint64]*migration

	outstanding map[uint64]*ctrlOut
	nextCtrl    uint64

	stopSweep func()
	stopAuto  func()

	recs []Record

	// Stats.
	Migrations  int // placements moved (incl. initial placement = 0)
	CtrlRetries int // control messages retransmitted
}

type brokerInfo struct {
	node    int
	m       *core.Machine
	lanes   []*laneInfo
	lastRep sim.Time
	lastInc uint32
	heard   bool // at least one report received
	down    bool // silence-declared dead
}

type laneInfo struct {
	id       uint32
	broker   *brokerInfo
	bytes    int64 // forwarded bytes, cumulative from reports
	recent   int64 // forwarded bytes since the last auto sweep
	assigned int
}

type placement struct {
	v    uint64
	name string
	term uint32
	lane *laneInfo
	prod topo.EndpointID
	cons topo.EndpointID
	// vbytes accumulates this vchannel's forwarded bytes (for the
	// heaviest-tenant pick).
	vbytes int64
}

const (
	phaseSealing = iota + 1
	phaseMoving // revoke sent (non-blocking), assign/expect/place chain running
)

type migration struct {
	p       *placement
	to      *laneInfo
	newTerm uint32
	reason  string
	phase   int
	start   sim.Time
	drainT  sim.Timer
	drainOn bool
}

// ctrlOut is one in-flight control message, retransmitted until its
// ack returns.
type ctrlOut struct {
	id    uint64
	dst   topo.EndpointID
	msg   *ctrlMsg
	timer sim.Timer
	onAck func()
}

// Record is one balancer decision, for reports and tests.
type Record struct {
	At   sim.Time
	What string
}

func (r Record) String() string {
	return fmt.Sprintf("%8.1fµs  %s", r.At.Microseconds(), r.What)
}

func newBalancer(f *Fabric, m *core.Machine) *Balancer {
	return &Balancer{
		fab:         f,
		m:           m,
		ep:          m.EP,
		places:      make(map[uint64]*placement),
		migs:        make(map[uint64]*migration),
		outstanding: make(map[uint64]*ctrlOut),
	}
}

func (b *Balancer) tracer() *trace.Tracer { return b.m.Kern.Tracer() }

func (b *Balancer) record(format string, args ...any) {
	b.recs = append(b.recs, Record{At: b.m.Kern.Kernel().Now(), What: fmt.Sprintf(format, args...)})
}

// Records returns the balancer's decision log.
func (b *Balancer) Records() []Record { return b.recs }

// Report writes the decision log.
func (b *Balancer) Report(w io.Writer) {
	for _, r := range b.recs {
		fmt.Fprintln(w, r)
	}
}

// Endpoint returns the balancer's machine endpoint.
func (b *Balancer) Endpoint() topo.EndpointID { return b.ep }

// HasVChan reports whether a vchannel name is declared (fault DSL
// validation).
func (b *Balancer) HasVChan(name string) bool { return b.fab.byName[name] != nil }

// Started reports whether Start has run (lane set resolved).
func (b *Balancer) Started() bool { return b.started }

// IsBroker reports whether node index i hosts lanes (fault DSL
// validation). Only meaningful after Start.
func (b *Balancer) IsBroker(i int) bool {
	for _, bi := range b.brokers {
		if bi.node == i {
			return true
		}
	}
	return false
}

// BrokerNodes returns the lane-hosting node indices, ascending.
func (b *Balancer) BrokerNodes() []int {
	out := make([]int, len(b.brokers))
	for i, bi := range b.brokers {
		out[i] = bi.node
	}
	sort.Ints(out)
	return out
}

// start picks brokers, builds lanes, places every declared vchannel,
// and arms the sweep beacons.
func (b *Balancer) start() {
	if b.started {
		panic("vchan: Start twice")
	}
	b.started = true
	nodes := b.pickBrokers()
	var laneID uint32
	for _, n := range nodes {
		bi := &brokerInfo{node: n, m: b.fab.sys.Node(n)}
		for i := 0; i < b.fab.cfg.LanesPerBroker; i++ {
			laneID++
			li := &laneInfo{id: laneID, broker: bi}
			bi.lanes = append(bi.lanes, li)
			b.lanes = append(b.lanes, li)
		}
		b.brokers = append(b.brokers, bi)
		b.fab.svcs[bi.m.EP].startReports()
	}
	b.record("brokers %v, %d lanes", nodes, len(b.lanes))
	// Initial placement: declaration order onto the least-assigned
	// lane, term 1, via the same assign→expect→place chain a
	// migration uses (minus seal/revoke — there is nothing to drain).
	for _, r := range b.fab.regs {
		lane := b.pickLane(nil)
		p := &placement{v: r.id, name: r.name, term: 1, lane: lane,
			prod: r.prod.EP, cons: r.cons.EP}
		b.places[r.id] = p
		lane.assigned++
		if v := b.fab.vf; v != nil {
			v.VChanTermMint(p.v, p.name, p.term)
		}
		b.tracer().GaugeSet("vchan.term", float64(p.term))
		b.installChain(p, nil)
	}
	b.stopSweep = b.m.Kern.Beacon(b.fab.cfg.ReportEvery, b.sweep)
	if b.fab.cfg.AutoEvery > 0 {
		b.stopAuto = b.m.Kern.Beacon(b.fab.cfg.AutoEvery, b.autoSweep)
	}
}

// pickBrokers resolves the broker node set: explicit config, resmgr
// allocation, or the highest-numbered nodes hosting no declared
// endpoint.
func (b *Balancer) pickBrokers() []int {
	if len(b.fab.cfg.Brokers) > 0 {
		out := append([]int(nil), b.fab.cfg.Brokers...)
		sort.Ints(out)
		return out
	}
	busy := make(map[int]bool)
	for _, r := range b.fab.regs {
		if !r.prod.Host {
			busy[r.prod.Index] = true
		}
		if !r.cons.Host {
			busy[r.cons.Index] = true
		}
	}
	if b.fab.res != nil {
		ids, err := b.fab.res.AllocateWhere("vchan", b.fab.cfg.BrokerCount,
			func(id resmgr.NodeID) bool { return !busy[int(id)] })
		if err == nil {
			out := make([]int, len(ids))
			for i, id := range ids {
				out[i] = int(id)
			}
			sort.Ints(out)
			return out
		}
		// Fall through: not enough free nodes under the resource
		// manager; take the static pick instead.
	}
	var out []int
	for i := len(b.fab.sys.Nodes()) - 1; i >= 0 && len(out) < b.fab.cfg.BrokerCount; i-- {
		if !busy[i] {
			out = append(out, i)
		}
	}
	if len(out) < b.fab.cfg.BrokerCount {
		panic("vchan: not enough free nodes for brokers")
	}
	sort.Ints(out)
	return out
}

// pickLane chooses the least-loaded live lane (fewest assignments,
// then fewest bytes, then lowest id), excluding lanes on `not`'s
// broker when not is non-nil.
func (b *Balancer) pickLane(not *laneInfo) *laneInfo {
	var best *laneInfo
	for _, l := range b.lanes {
		if l.broker.down {
			continue
		}
		if not != nil && l.broker == not.broker {
			continue
		}
		if best == nil ||
			l.assigned < best.assigned ||
			(l.assigned == best.assigned && l.bytes < best.bytes) ||
			(l.assigned == best.assigned && l.bytes == best.bytes && l.id < best.id) {
			best = l
		}
	}
	if best == nil && not != nil {
		// Every other broker is down: stay put rather than stall.
		return not
	}
	return best
}

// control-plane reliability ------------------------------------------

// sendCtrl transmits a control message and retransmits it every
// CtrlRetry until the machine's ack returns, then runs onAck.
func (b *Balancer) sendCtrl(dst topo.EndpointID, msg *ctrlMsg, onAck func()) {
	b.nextCtrl++
	msg.id = b.nextCtrl
	msg.from = b.ep
	out := &ctrlOut{id: msg.id, dst: dst, msg: msg, onAck: onAck}
	b.outstanding[out.id] = out
	b.xmit(out)
}

func (b *Balancer) xmit(out *ctrlOut) {
	b.fab.svcs[b.ep].f.SendAsyncCtx(0, out.dst, "vchan.ctrl", CtrlBytes, out.msg, nil)
	out.timer = b.m.Kern.Kernel().After(b.fab.cfg.CtrlRetry, func() {
		if b.outstanding[out.id] == nil {
			return
		}
		b.CtrlRetries++
		b.xmit(out)
	})
}

func (b *Balancer) handleCtrlAck(id uint64) {
	out := b.outstanding[id]
	if out == nil {
		return
	}
	out.timer.Stop()
	delete(b.outstanding, id)
	if out.onAck != nil {
		out.onAck()
	}
}

// migration protocol -------------------------------------------------

// MigrateTo moves a vchannel (by name) to a lane on the given node.
// The fault DSL's `rebalance` op lands here. Returns false if the
// vchannel is unknown, the node hosts no lanes, or a migration for it
// is already running.
func (b *Balancer) MigrateTo(name string, node int) bool {
	r := b.fab.byName[name]
	if r == nil {
		b.record("rebalance %s: unknown vchannel", name)
		return false
	}
	var bi *brokerInfo
	for _, cand := range b.brokers {
		if cand.node == node {
			bi = cand
		}
	}
	if bi == nil {
		b.record("rebalance %s: node%d hosts no lanes", name, node)
		return false
	}
	// Least-loaded lane on the requested broker.
	var lane *laneInfo
	for _, l := range bi.lanes {
		if lane == nil || l.assigned < lane.assigned ||
			(l.assigned == lane.assigned && l.bytes < lane.bytes) {
			lane = l
		}
	}
	return b.migrate(r.id, lane, "manual")
}

// BrokerConfirmedDead evacuates every placement on the broker at the
// given endpoint immediately — the supervisor's confirm hook
// (super.OnConfirm) binds here so quorum-confirmed deaths skip the
// report-silence wait.
func (b *Balancer) BrokerConfirmedDead(ep topo.EndpointID) {
	for _, bi := range b.brokers {
		if bi.m.EP == ep && !bi.down {
			b.markDead(bi, "confirmed")
		}
	}
}

func (b *Balancer) migrate(v uint64, to *laneInfo, reason string) bool {
	p := b.places[v]
	if p == nil || to == nil {
		return false
	}
	if b.migs[v] != nil {
		b.record("rebalance %s: migration already running", p.name)
		return false
	}
	if to == p.lane {
		b.record("rebalance %s: already on lane%d", p.name, to.id)
		return false
	}
	mg := &migration{p: p, to: to, newTerm: p.term + 1, reason: reason,
		phase: phaseSealing, start: b.m.Kern.Kernel().Now()}
	b.migs[v] = mg
	b.Migrations++
	b.tracer().Count("vchan.migrations", 1)
	if vf := b.fab.vf; vf != nil {
		vf.VChanTermMint(p.v, p.name, mg.newTerm)
	}
	b.tracer().GaugeSet("vchan.term", float64(mg.newTerm))
	b.tracer().Emit(trace.KMigrate, 0, b.m.Name(), "vchan/"+p.name,
		fmt.Sprintf("mint term=%d lane%d→lane%d (%s)", mg.newTerm, p.lane.id, to.id, reason))
	b.record("migrate %s lane%d→lane%d term=%d (%s)", p.name, p.lane.id, to.id, mg.newTerm, reason)
	// Phase 1: seal the producer at the current term and wait for the
	// drain (or its timeout). A dead old broker doesn't block the
	// drain: acks flow consumer→producer directly, so whatever was
	// already forwarded still drains, and the rest replays later.
	b.sendCtrl(p.prod, &ctrlMsg{kind: ctrlSeal, v: p.v, name: p.name, term: p.term},
		func() {
			if cur := b.migs[v]; cur == mg && mg.phase == phaseSealing && !mg.drainOn {
				mg.drainOn = true
				mg.drainT = b.m.Kern.Kernel().After(b.fab.cfg.DrainTimeout, func() {
					mg.drainOn = false
					b.drainDone(v, mg, false)
				})
			}
		})
	return true
}

func (b *Balancer) handleDrained(c *ctrlMsg) {
	mg := b.migs[c.v]
	if mg == nil || mg.phase != phaseSealing || c.term != mg.p.term {
		return
	}
	if mg.drainOn {
		mg.drainT.Stop()
		mg.drainOn = false
	}
	b.drainDone(c.v, mg, true)
}

// drainDone advances a migration past the drain barrier: revoke the
// old assignment (non-blocking retransmit — the old broker may be
// dead or cut off; the consumer's term fence covers the gap), then
// assign → expect → place, each gated on the previous ack.
func (b *Balancer) drainDone(v uint64, mg *migration, clean bool) {
	if b.migs[v] != mg || mg.phase != phaseSealing {
		return
	}
	mg.phase = phaseMoving
	p := mg.p
	b.record("drain %s term=%d clean=%v", p.name, p.term, clean)
	b.tracer().Emit(trace.KMigrate, 0, b.m.Name(), "vchan/"+p.name,
		fmt.Sprintf("drain term=%d clean=%v", p.term, clean))
	oldBroker := p.lane.broker
	if !oldBroker.down {
		b.sendCtrl(oldBroker.m.EP, &ctrlMsg{kind: ctrlRevoke, v: p.v, name: p.name, term: p.term}, nil)
	}
	b.installChain(p, mg)
}

// installChain runs assign(broker) → expect(consumer) → place
// (producer) for a placement. For a migration mg the chain commits
// the new lane and term; for the initial placement mg is nil and the
// placement's fields are already final.
func (b *Balancer) installChain(p *placement, mg *migration) {
	lane, term := p.lane, p.term
	if mg != nil {
		lane, term = mg.to, mg.newTerm
	}
	b.sendCtrl(lane.broker.m.EP,
		&ctrlMsg{kind: ctrlAssign, v: p.v, name: p.name, term: term, lane: lane.id, consumer: p.cons},
		func() {
			b.sendCtrl(p.cons,
				&ctrlMsg{kind: ctrlExpect, v: p.v, name: p.name, term: term},
				func() {
					b.sendCtrl(p.prod,
						&ctrlMsg{kind: ctrlPlace, v: p.v, name: p.name, term: term,
							lane: lane.id, broker: lane.broker.m.EP},
						func() { b.installed(p, mg) })
				})
		})
}

func (b *Balancer) installed(p *placement, mg *migration) {
	if mg == nil {
		b.record("placed %s lane%d term=%d", p.name, p.lane.id, p.term)
		return
	}
	if b.migs[p.v] != mg {
		return
	}
	p.lane.assigned--
	mg.to.assigned++
	p.lane = mg.to
	p.term = mg.newTerm
	delete(b.migs, p.v)
	took := b.m.Kern.Kernel().Now().Sub(mg.start)
	b.record("moved %s to lane%d term=%d in %.1fµs (%s)",
		p.name, p.lane.id, p.term, took.Microseconds(), mg.reason)
	b.tracer().Emit(trace.KMigrate, 0, b.m.Name(), "vchan/"+p.name,
		fmt.Sprintf("moved lane=%d term=%d µs=%.1f", p.lane.id, p.term, took.Microseconds()))
}

// load reports and failure detection ---------------------------------

func (b *Balancer) handleReport(c *ctrlMsg) {
	var bi *brokerInfo
	for _, cand := range b.brokers {
		if cand.m.EP == c.from {
			bi = cand
		}
	}
	if bi == nil {
		return
	}
	now := b.m.Kern.Kernel().Now()
	rebooted := bi.heard && c.inc > bi.lastInc
	wasDown := bi.down
	bi.lastRep = now
	bi.lastInc = c.inc
	bi.heard = true
	bi.down = false
	for _, lb := range c.laneBytes {
		for _, l := range bi.lanes {
			if l.id == lb.lane {
				l.bytes += lb.bytes
				l.recent += lb.bytes
			}
		}
	}
	for _, vb := range c.vBytes {
		if p := b.places[vb.v]; p != nil {
			p.vbytes += vb.bytes
		}
	}
	if rebooted || wasDown {
		// The broker lost its assignments (crash wipe) or we wrote it
		// off and it came back: re-teach every placement we believe
		// it holds, at the current term. Idempotent on the broker.
		b.reteach(bi, rebooted)
	}
}

func (b *Balancer) reteach(bi *brokerInfo, rebooted bool) {
	vs := b.placementsOn(bi)
	if len(vs) == 0 {
		return
	}
	b.record("re-teach node%d (%d placements, rebooted=%v)", bi.node, len(vs), rebooted)
	for _, v := range vs {
		p := b.places[v]
		if b.migs[v] != nil {
			continue // the running migration will install fresh state
		}
		b.sendCtrl(bi.m.EP,
			&ctrlMsg{kind: ctrlAssign, v: p.v, name: p.name, term: p.term,
				lane: p.lane.id, consumer: p.cons}, nil)
	}
}

// placementsOn lists vchannel ids currently placed on a broker,
// ascending for determinism.
func (b *Balancer) placementsOn(bi *brokerInfo) []uint64 {
	var vs []uint64
	for v, p := range b.places {
		if p.lane.broker == bi {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// sweep runs on the report period: a broker silent past SilenceAfter
// is written off and its placements evacuated (the crash-driven
// migration path).
func (b *Balancer) sweep() {
	now := b.m.Kern.Kernel().Now()
	for _, bi := range b.brokers {
		if bi.down {
			continue
		}
		last := bi.lastRep
		if !bi.heard {
			continue // never reported yet: give it the first window
		}
		if now.Sub(last) > b.fab.cfg.SilenceAfter {
			b.markDead(bi, "silent")
		}
	}
}

func (b *Balancer) markDead(bi *brokerInfo, why string) {
	bi.down = true
	b.record("broker node%d dead (%s)", bi.node, why)
	b.tracer().Emit(trace.KMigrate, 0, b.m.Name(), "vchan",
		fmt.Sprintf("broker node%d dead (%s)", bi.node, why))
	for _, v := range b.placementsOn(bi) {
		p := b.places[v]
		if b.migs[v] != nil {
			continue
		}
		b.migrate(v, b.pickLane(p.lane), "broker-"+why)
	}
}

// autoSweep is load-driven rebalancing: when the hottest lane's
// recent bytes exceed AutoRatio × the coldest live lane's, move the
// heaviest vchannel off the hot lane.
func (b *Balancer) autoSweep() {
	var hot, cold *laneInfo
	for _, l := range b.lanes {
		if l.broker.down {
			continue
		}
		if hot == nil || l.recent > hot.recent {
			hot = l
		}
		if cold == nil || l.recent < cold.recent {
			cold = l
		}
	}
	defer func() {
		for _, l := range b.lanes {
			l.recent = 0
		}
	}()
	if hot == nil || cold == nil || hot == cold || hot.assigned < 2 {
		return
	}
	if float64(hot.recent) < b.fab.cfg.AutoRatio*float64(cold.recent+1) {
		return
	}
	// Heaviest tenant on the hot lane, lowest id on ties.
	var pick *placement
	for _, v := range b.placementsOnLane(hot) {
		p := b.places[v]
		if b.migs[v] != nil {
			continue
		}
		if pick == nil || p.vbytes > pick.vbytes {
			pick = p
		}
	}
	if pick == nil {
		return
	}
	b.record("auto: lane%d hot (%dB) vs lane%d (%dB), moving %s",
		hot.id, hot.recent, cold.id, cold.recent, pick.name)
	b.migrate(pick.v, cold, "auto")
}

func (b *Balancer) placementsOnLane(l *laneInfo) []uint64 {
	var vs []uint64
	for v, p := range b.places {
		if p.lane == l {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Placement reports a vchannel's current node and term (tests,
// reports).
func (b *Balancer) Placement(name string) (node int, lane uint32, term uint32, ok bool) {
	r := b.fab.byName[name]
	if r == nil {
		return 0, 0, 0, false
	}
	p := b.places[r.id]
	if p == nil {
		return 0, 0, 0, false
	}
	return p.lane.broker.node, p.lane.id, p.term, true
}

// ActiveMigrations reports how many placements are mid-move.
func (b *Balancer) ActiveMigrations() int { return len(b.migs) }
