// Package vchan virtualizes VORX channels: a bounded set of physical
// lanes hosted on broker nodes, onto which thousands of logical
// vchannels are multiplexed, each placement identified by a
// monotonically increasing term minted by a deterministic balancer
// (the Milvus PChannel/VChannel/Term model mapped onto the HPC/VORX
// stack).
//
// The paper's channels are point-to-point objects pinned to the node
// pair that created them; "millions of users" on a finite fabric
// needs many logical channels per physical resource and the ability
// to move them while traffic flows. A vchannel is a named
// producer→consumer stream. Its frames travel producer → broker →
// consumer: the broker hop is what makes placement a first-class,
// movable assignment. Placement changes — crash-driven or
// load-driven — follow one discipline: seal the producer, drain the
// old lane to a stable mark (every write acked end-to-end), bump the
// term, and replay the retained suffix on the new lane. Frames
// carrying a stale term are refused structurally at the broker and at
// the consumer, the same fencing PR 6 applied to incarnations, so a
// slow writer that missed the move cannot interleave stale data.
//
// Reliability is end-to-end: the consumer acks cumulatively straight
// back to the producer (delayed/coalesced, PR 5 style), the producer
// retains every unacked write and retransmits go-back-N on the
// current placement. A lane bounds the unacked frames each producing
// machine may have on it (the per-lane window), so tenants sharing a
// lane contend for window credit — the multiplexing cost E17
// measures.
//
// Everything here is deterministic: the balancer runs on a simulated
// machine, all control traffic is ordinary fabric messages with
// retransmit-until-acked delivery, and load signals come from broker
// reports in virtual time, never from host-side metrics.
package vchan

import (
	"fmt"
	"io"
	"sort"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Wire-format constants.
const (
	// FrameHeaderBytes is the virtualization header on every data
	// frame: vchannel id, term, sequence, provenance.
	FrameHeaderBytes = 40
	// AckBytes is the wire size of the cumulative end-to-end ack.
	AckBytes = 48
	// CtrlBytes is the wire size of a balancer control message.
	CtrlBytes = 64
)

// Config tunes the fabric. The zero value of any field selects the
// documented default.
type Config struct {
	// Brokers lists node indices that host lanes. Nil means allocate
	// BrokerCount nodes (via resmgr when one is bound, else the
	// highest-numbered nodes not hosting a declared endpoint).
	Brokers []int
	// BrokerCount is how many brokers to allocate when Brokers is nil
	// (default 2).
	BrokerCount int
	// LanesPerBroker is the number of physical lanes each broker
	// hosts (default 2).
	LanesPerBroker int
	// Window caps unacked frames per (producing machine, lane)
	// (default 8, mirroring the pipelined profile).
	Window int
	// AckDelay is the consumer's ack-coalescing horizon (default
	// 100µs); AckBatch flushes early after that many deliveries
	// (default Window/2, min 1).
	AckDelay sim.Duration
	AckBatch int
	// RetransTimeout is the producer's go-back-N timer (default
	// 1.5ms).
	RetransTimeout sim.Duration
	// CtrlRetry is the balancer's control-message retransmit period
	// (default 400µs).
	CtrlRetry sim.Duration
	// DrainTimeout bounds how long a migration waits for the old
	// placement to drain before forcing the move (default 2ms).
	DrainTimeout sim.Duration
	// ReportEvery is the broker load-report period, which is also the
	// balancer's failure-sweep period (default 500µs). SilenceAfter
	// is how long without a report before a broker is deemed dead
	// (default 25×ReportEvery). Reports share the wire with data, so
	// under saturation a healthy broker's report can queue behind a
	// full window of frames; the silence default must sit above that
	// worst case or load itself looks like death and the balancer
	// churns placements between equally-congested brokers. Silence is
	// the slow fallback — quorum-confirmed death via
	// super.OnConfirm → BrokerConfirmedDead is the fast path.
	ReportEvery  sim.Duration
	SilenceAfter sim.Duration
	// AutoEvery enables the automatic load balancer: every AutoEvery
	// the hottest lane is compared against the coldest and one
	// vchannel migrated when the byte ratio exceeds AutoRatio
	// (default 4.0). Zero AutoEvery means manual/DSL rebalance only.
	AutoEvery sim.Duration
	AutoRatio float64
}

func (c *Config) fill() {
	if c.BrokerCount == 0 {
		c.BrokerCount = 2
	}
	if c.LanesPerBroker == 0 {
		c.LanesPerBroker = 2
	}
	if c.Window == 0 {
		c.Window = 8
	}
	if c.AckDelay == 0 {
		c.AckDelay = 100 * sim.Microsecond
	}
	if c.AckBatch == 0 {
		c.AckBatch = c.Window / 2
	}
	if c.AckBatch < 1 {
		c.AckBatch = 1
	}
	if c.RetransTimeout == 0 {
		c.RetransTimeout = 1500 * sim.Microsecond
	}
	if c.CtrlRetry == 0 {
		c.CtrlRetry = 400 * sim.Microsecond
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 2 * sim.Millisecond
	}
	if c.ReportEvery == 0 {
		c.ReportEvery = 500 * sim.Microsecond
	}
	if c.SilenceAfter == 0 {
		c.SilenceAfter = 25 * c.ReportEvery
	}
	if c.AutoRatio == 0 {
		c.AutoRatio = 4.0
	}
}

// Verifier observes vchannel protocol steps; the invariant checker
// (internal/verify) implements it. Hooks are host-side observers and
// must not block or schedule events.
type Verifier interface {
	// VChanWrite fires when the producer assigns a sequence number to
	// a write, at the term it will first be sent under.
	VChanWrite(v uint64, name string, seq, size int, payload any, term uint32)
	// VChanDeliver fires at the consumer. dup marks a redundant frame
	// that was suppressed and re-acked, not handed to the
	// application.
	VChanDeliver(v uint64, name string, seq int, payload any, term uint32, dup bool)
	// VChanAck fires when the producer processes a cumulative ack
	// releasing everything through upTo.
	VChanAck(v uint64, name string, upTo int)
	// VChanTermMint fires when the balancer mints a new term for a
	// placement.
	VChanTermMint(v uint64, name string, term uint32)
	// VChanExpect fires when the consumer adopts a new term; resume
	// is its delivery cursor at that instant (the next sequence it
	// will accept).
	VChanExpect(v uint64, name string, term uint32, resume int)
	// VChanReplay fires when the producer replays its retained suffix
	// [from,to] on a new placement at term.
	VChanReplay(v uint64, name string, term uint32, from, to int)
	// VChanStale fires when a frame is structurally refused for
	// carrying term < cur at the named point ("broker" or
	// "consumer").
	VChanStale(v uint64, where string, term, cur uint32)
}

// wire bodies

// vFrame is one data frame. hop 0 is producer→broker, hop 1 is
// broker→consumer; the explicit hop removes any ambiguity when one
// machine plays both roles.
type vFrame struct {
	v    uint64
	name string
	term uint32
	seq  int
	size int
	pay  any
	src  topo.EndpointID // producer endpoint, for acks and nacks
	hop  uint8
	tid  uint64
}

// vAck is the consumer's cumulative ack: everything through upTo is
// delivered.
type vAck struct {
	v    uint64
	upTo int
}

// vNack tells a producer its frame was refused: minTerm is the
// lowest term the refuser would accept (0 for "no assignment here").
// Nacks are advisory — correctness rests on the retransmit timer and
// the balancer's control plane — but they quiet a stale writer's
// timer until its new placement arrives.
type vNack struct {
	v       uint64
	minTerm uint32
}

type ctrlKind uint8

const (
	ctrlSeal ctrlKind = iota + 1
	ctrlPlace
	ctrlAssign
	ctrlRevoke
	ctrlExpect
	ctrlAck
	ctrlDrained
	ctrlReport
)

func (k ctrlKind) String() string {
	switch k {
	case ctrlSeal:
		return "seal"
	case ctrlPlace:
		return "place"
	case ctrlAssign:
		return "assign"
	case ctrlRevoke:
		return "revoke"
	case ctrlExpect:
		return "expect"
	case ctrlAck:
		return "ctrl-ack"
	case ctrlDrained:
		return "drained"
	case ctrlReport:
		return "report"
	}
	return "?"
}

// ctrlMsg is the single control-plane wire body; which fields are
// meaningful depends on kind.
type ctrlMsg struct {
	kind ctrlKind
	id   uint64 // ctrl correlation id (seal/place/assign/revoke/expect ↔ ack)
	v    uint64
	name string
	term uint32
	lane uint32
	// broker is the new placement's broker (place); consumer is the
	// delivery target (assign); from is the reply-to endpoint.
	broker   topo.EndpointID
	consumer topo.EndpointID
	from     topo.EndpointID
	// drained: stable is the highest acked sequence at the seal.
	stable int
	// report payload.
	inc       uint32
	laneBytes []laneBytes
	vBytes    []vchanBytes
}

type laneBytes struct {
	lane     uint32
	bytes    int64
	inflight int
}

type vchanBytes struct {
	v     uint64
	bytes int64
}

// Msg is one application-level message read from a vchannel.
type Msg struct {
	Size    int
	Payload any
	Seq     int
	Term    uint32
}

// reg is one declared vchannel: name, fixed producer and consumer
// machines, and the fabric-wide id.
type reg struct {
	id   uint64
	name string
	prod *core.Machine
	cons *core.Machine
}

// Fabric is the system-wide virtualization layer: one Service per
// machine plus the balancer.
type Fabric struct {
	sys    *core.System
	cfg    Config
	res    *resmgr.VORX
	bal    *Balancer
	svcs   map[topo.EndpointID]*Service
	order  []*Service // deterministic iteration order
	regs   []*reg
	byName map[string]*reg
	vf     Verifier
	nextID uint64
}

// Enable attaches the virtualization layer to every machine in the
// system. Declare vchannels next, then Start.
func Enable(sys *core.System, cfg Config) *Fabric {
	return EnableWith(sys, cfg, nil)
}

// EnableWith is Enable with a resource manager: broker nodes are then
// allocated through it (owner "vchan") so placement respects node
// ownership.
func EnableWith(sys *core.System, cfg Config, res *resmgr.VORX) *Fabric {
	cfg.fill()
	f := &Fabric{
		sys:    sys,
		cfg:    cfg,
		res:    res,
		svcs:   make(map[topo.EndpointID]*Service),
		byName: make(map[string]*reg),
	}
	for _, m := range sys.Machines() {
		s := newService(f, m)
		f.svcs[m.EP] = s
		f.order = append(f.order, s)
	}
	f.bal = newBalancer(f, sys.Host(0))
	return f
}

// Declare registers a vchannel by name with fixed producer and
// consumer machines. Must run before Start. Returns the vchannel id.
func (f *Fabric) Declare(name string, prod, cons *core.Machine) uint64 {
	if f.byName[name] != nil {
		panic("vchan: duplicate Declare " + name)
	}
	if f.bal.started {
		panic("vchan: Declare after Start")
	}
	f.nextID++
	r := &reg{id: f.nextID, name: name, prod: prod, cons: cons}
	f.regs = append(f.regs, r)
	f.byName[name] = r
	// Producer and consumer state exist from declaration so frames
	// and control messages can never race an Open.
	f.svcs[prod.EP].addWriter(r, cons.EP)
	f.svcs[cons.EP].addReader(r, prod.EP)
	return r.id
}

// Start chooses brokers, builds lanes, places every declared
// vchannel, and arms the report/sweep beacons. Traffic may start
// immediately after; writers block until their first placement
// arrives (microseconds of control traffic).
func (f *Fabric) Start() {
	f.bal.start()
}

// On returns the machine's vchan service.
func (f *Fabric) On(m *core.Machine) *Service { return f.svcs[m.EP] }

// Balancer returns the placement balancer.
func (f *Fabric) Balancer() *Balancer { return f.bal }

// SetVerifier installs the invariant checker's observer on every
// service and the balancer (nil to remove).
func (f *Fabric) SetVerifier(v Verifier) { f.vf = v }

// Names returns the declared vchannel names in declaration order.
func (f *Fabric) Names() []string {
	out := make([]string, len(f.regs))
	for i, r := range f.regs {
		out[i] = r.name
	}
	return out
}

// Service is the per-machine vchan machinery: producer windows and
// retained writes, consumer cursors and ack coalescing, and — on
// broker machines — lane assignments with term fencing.
type Service struct {
	fab *Fabric
	m   *core.Machine
	f   *netif.IF

	writers map[uint64]*Writer
	readers map[uint64]*Reader
	worder  []*Writer
	rorder  []*Reader

	// lanes is producer-side window accounting per lane this machine
	// currently sends on.
	lanes map[uint32]*laneState

	// broker state: assignments and term floors. Wiped on crash — a
	// rebooted broker holds nothing until the balancer re-assigns.
	assigns map[uint64]*assignment
	floors  map[uint64]uint32
	// per-lane and per-vchan forwarded bytes since the last report.
	fwdLane  map[uint32]int64
	fwdVChan map[uint64]int64
	stopRep  func()

	// Stats.
	StaleRefused int // frames refused for a stale term (broker+consumer)
	EarlyDropped int // frames ahead of the consumer's term (ctrl in flight)
	Unassigned   int // frames for a vchannel this broker no longer owns
	Forwarded    int // frames relayed broker→consumer
	Dups         int // redundant frames suppressed at the consumer
	Gaps         int // out-of-order frames dropped (go-back-N restores)
	Retransmits  int // producer window retransmissions
}

type laneState struct {
	id       uint32
	inflight int
	waiters  []func()
}

// Dump writes the service's live protocol state — writer windows,
// reader cursors, lane occupancy, broker assignments — for debugging
// and the `vorx vchan` report.
func (s *Service) Dump(out io.Writer) {
	for _, w := range s.worder {
		fmt.Fprintf(out, "%s: writer %s term=%d lane=%d seq=%d ackHigh=%d pending=%d placed=%v sealed=%v stale=%v timer=%v\n",
			s.m.Name(), w.name, w.term, w.lane, w.seq, w.ackHigh, len(w.pending), w.placed, w.sealed, w.stale, w.timerOn)
	}
	for _, r := range s.rorder {
		fmt.Fprintf(out, "%s: reader %s term=%d expect=%d ready=%d delivered=%d\n",
			s.m.Name(), r.name, r.term, r.expect, len(r.ready), r.Delivered)
	}
	ids := make([]uint32, 0, len(s.lanes))
	for id := range s.lanes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := s.lanes[id]
		if l.inflight != 0 || len(l.waiters) != 0 {
			fmt.Fprintf(out, "%s: lane%d inflight=%d waiters=%d\n", s.m.Name(), id, l.inflight, len(l.waiters))
		}
	}
	vs := make([]uint64, 0, len(s.assigns))
	for v := range s.assigns {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		a := s.assigns[v]
		fmt.Fprintf(out, "%s: assign v=%d term=%d lane=%d\n", s.m.Name(), v, a.term, a.lane)
	}
}

type assignment struct {
	term     uint32
	lane     uint32
	consumer topo.EndpointID
}

// Writer is the producing end of a vchannel. One writing subprocess
// at a time.
type Writer struct {
	svc  *Service
	id   uint64
	name string
	cons topo.EndpointID

	seq     int // next sequence to mint
	ackHigh int // highest cumulatively acked
	pending []*vWrite

	term   uint32
	lane   uint32
	broker topo.EndpointID
	placed bool
	sealed bool
	stale  bool // nacked above our term: hold fire until the next place

	timer   sim.Timer
	timerOn bool
	backoff uint8 // consecutive timeouts without ack progress
}

type vWrite struct {
	seq     int
	size    int
	pay     any
	tid     uint64
	charged bool
	lane    uint32
}

// Reader is the consuming end of a vchannel.
type Reader struct {
	svc  *Service
	id   uint64
	name string
	prod topo.EndpointID

	expect int // next sequence to accept
	term   uint32
	ready  []Msg
	wake   func()

	owed    int
	ackOn   bool
	ackTick sim.Timer

	// Delivered counts in-order application deliveries.
	Delivered int
}

func newService(f *Fabric, m *core.Machine) *Service {
	s := &Service{
		fab:      f,
		m:        m,
		f:        m.IF,
		writers:  make(map[uint64]*Writer),
		readers:  make(map[uint64]*Reader),
		lanes:    make(map[uint32]*laneState),
		assigns:  make(map[uint64]*assignment),
		floors:   make(map[uint64]uint32),
		fwdLane:  make(map[uint32]int64),
		fwdVChan: make(map[uint64]int64),
	}
	costs := m.Kern.Costs()
	m.IF.Register("vchan.data", netif.Service{
		Cost: func(m *hpc.Message) sim.Duration {
			fr := m.Payload.(netif.Envelope).Body.(*vFrame)
			return costs.ChanRecvProto + costs.KernelCopyTime(fr.size)
		},
		BatchCost: func(m *hpc.Message) sim.Duration {
			fr := m.Payload.(netif.Envelope).Body.(*vFrame)
			return costs.KernelCopyTime(fr.size)
		},
		Handle: s.handleData,
	})
	m.IF.Register("vchan.ack", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return costs.ChanAckProto },
		Handle: s.handleAck,
	})
	m.IF.Register("vchan.nack", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return costs.ChanAckProto },
		Handle: s.handleNack,
	})
	m.IF.Register("vchan.ctrl", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return costs.ChanAckProto },
		Handle: s.handleCtrl,
	})
	// A crash wipes broker assignments, floors, producer placements,
	// and consumer cursors: a rebooted machine knows nothing until
	// the balancer re-teaches it.
	m.Kern.OnCrash(s.onCrash)
	return s
}

func (s *Service) tracer() *trace.Tracer { return s.m.Kern.Tracer() }

func (s *Service) vf() Verifier { return s.fab.vf }

func (s *Service) addWriter(r *reg, cons topo.EndpointID) *Writer {
	// ackHigh is -1 until the first cumulative ack: sequence numbers
	// start at 0, so the zero value would swallow the ack for seq 0 —
	// fatal at window 1, where that ack is the only source of credit.
	w := &Writer{svc: s, id: r.id, name: r.name, cons: cons, ackHigh: -1}
	s.writers[r.id] = w
	s.worder = append(s.worder, w)
	return w
}

func (s *Service) addReader(r *reg, prod topo.EndpointID) *Reader {
	rd := &Reader{svc: s, id: r.id, name: r.name, prod: prod}
	s.readers[r.id] = rd
	s.rorder = append(s.rorder, rd)
	return rd
}

// OpenWriter returns the producing end of a declared vchannel. Must
// be called on the declared producer machine.
func (s *Service) OpenWriter(sp *kern.Subprocess, name string) *Writer {
	r := s.fab.byName[name]
	if r == nil || r.prod.EP != s.f.Endpoint() {
		panic("vchan: OpenWriter(" + name + ") on the wrong machine")
	}
	sp.Syscall(s.m.Kern.Costs().Syscall)
	return s.writers[r.id]
}

// OpenReader returns the consuming end of a declared vchannel. Must
// be called on the declared consumer machine.
func (s *Service) OpenReader(sp *kern.Subprocess, name string) *Reader {
	r := s.fab.byName[name]
	if r == nil || r.cons.EP != s.f.Endpoint() {
		panic("vchan: OpenReader(" + name + ") on the wrong machine")
	}
	sp.Syscall(s.m.Kern.Costs().Syscall)
	return s.readers[r.id]
}

// lane returns this machine's window accounting for a lane id.
func (s *Service) lane(id uint32) *laneState {
	l := s.lanes[id]
	if l == nil {
		l = &laneState{id: id}
		s.lanes[id] = l
	}
	return l
}

// producer side ------------------------------------------------------

func (w *Writer) canSend() bool {
	if !w.placed || w.sealed || w.stale {
		return false
	}
	return w.svc.lane(w.lane).inflight < w.svc.fab.cfg.Window
}

// Write sends one message on the vchannel. It blocks while the
// placement is unsettled (sealed for migration, fenced stale, or not
// yet placed) and while the lane window is full — lane contention is
// the multiplexing cost. The write is retained until the consumer's
// cumulative ack covers it; a placement change replays it at the new
// term.
func (w *Writer) Write(sp *kern.Subprocess, size int, payload any) error {
	s := w.svc
	costs := s.m.Kern.Costs()
	sp.Syscall(costs.ChanSendProto + costs.KernelCopyTime(size))
	for !w.canSend() {
		l := s.lane(w.lane)
		wake := sp.Block(kern.WaitOutput, "vchan/"+w.name)
		l.waiters = append(l.waiters, wake)
		sp.BlockNow()
	}
	tid := s.tracer().NewTraceID()
	rec := &vWrite{seq: w.seq, size: size, pay: payload, tid: tid}
	w.seq++
	w.pending = append(w.pending, rec)
	if v := s.vf(); v != nil {
		v.VChanWrite(w.id, w.name, rec.seq, size, payload, w.term)
	}
	s.charge(w, rec)
	s.tracer().Emit(trace.KWrite, tid, s.m.Name(), "vchan/"+w.name,
		fmt.Sprintf("seq=%d term=%d lane=%d", rec.seq, w.term, w.lane))
	fr := &vFrame{v: w.id, name: w.name, term: w.term, seq: rec.seq,
		size: size, pay: payload, src: s.f.Endpoint(), hop: 0, tid: tid}
	if err := s.f.SendCtx(sp, tid, w.broker, "vchan.data", size+FrameHeaderBytes, fr); err != nil {
		// Routing failure (downed link, partition): the write is
		// already retained, so the window timer re-offers it until the
		// path heals or the balancer moves the placement. Loss, not an
		// application error.
		s.tracer().Emit(trace.KBlocked, tid, s.m.Name(), "vchan/"+w.name,
			fmt.Sprintf("seq=%d unroutable", rec.seq))
	}
	w.armTimer()
	return nil
}

// Pending reports retained, unacked writes.
func (w *Writer) Pending() int { return len(w.pending) }

// Term reports the writer's current placement term.
func (w *Writer) Term() uint32 { return w.term }

// AckHigh reports the highest cumulatively acked sequence.
func (w *Writer) AckHigh() int { return w.ackHigh }

func (s *Service) charge(w *Writer, rec *vWrite) {
	l := s.lane(w.lane)
	l.inflight++
	rec.charged = true
	rec.lane = w.lane
	s.tracer().GaugeSet(channels.WindowInflightGauge, float64(l.inflight))
}

func (s *Service) uncharge(rec *vWrite) {
	if !rec.charged {
		return
	}
	rec.charged = false
	l := s.lane(rec.lane)
	l.inflight--
	s.tracer().GaugeSet(channels.WindowInflightGauge, float64(l.inflight))
	s.wakeLane(l)
}

// wakeLane releases blocked writers while window credit is free. The
// woken writer re-checks canSend itself, so spurious wakes are safe.
func (s *Service) wakeLane(l *laneState) {
	for len(l.waiters) > 0 && l.inflight < s.fab.cfg.Window {
		wake := l.waiters[0]
		l.waiters = l.waiters[1:]
		wake()
	}
}

// wakeAll releases every blocked writer on every lane (placement
// changed; canSend is re-evaluated by each).
func (s *Service) wakeAll() {
	ids := make([]uint32, 0, len(s.lanes))
	for id := range s.lanes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := s.lanes[id]
		for len(l.waiters) > 0 {
			wake := l.waiters[0]
			l.waiters = l.waiters[1:]
			wake()
		}
	}
}

func (w *Writer) armTimer() {
	s := w.svc
	if w.timerOn {
		w.timer.Stop()
	}
	w.timerOn = true
	rto := s.fab.cfg.RetransTimeout << w.backoff
	w.timer = s.m.Kern.Kernel().After(rto, func() {
		w.timerOn = false
		s.retransFire(w)
	})
}

func (w *Writer) stopTimer() {
	if w.timerOn {
		w.timer.Stop()
		w.timerOn = false
	}
}

// retransFire is the producer's recovery timer: re-offer the OLDEST
// retained write on the current placement at the current term, with
// exponential backoff until an ack makes progress. Head-only, not a
// full go-back-N burst: the fabric never silently drops, so under
// congestion the whole window is merely late, and resending all of it
// every timeout amplifies the overload until duplicate traffic crowds
// out fresh frames and acks entirely (congestion collapse). One head
// frame per timeout plus the consumer's cumulative ack recovers real
// loss (crash, partition, gray) one hole at a time. Runs while sealed
// too — retransmission is what drains a lossy lane — but not while
// stale (the placement is known dead; wait for the balancer).
func (s *Service) retransFire(w *Writer) {
	if s.m.Kern.Crashed() || len(w.pending) == 0 || !w.placed || w.stale {
		return
	}
	rec := w.pending[0]
	fr := &vFrame{v: w.id, name: w.name, term: w.term, seq: rec.seq,
		size: rec.size, pay: rec.pay, src: s.f.Endpoint(), hop: 0, tid: rec.tid}
	s.f.SendAsyncCtx(rec.tid, w.broker, "vchan.data", rec.size+FrameHeaderBytes, fr, nil)
	s.tracer().Emit(trace.KRetransmit, rec.tid, s.m.Name(), "vchan/"+w.name,
		fmt.Sprintf("seq=%d term=%d backoff=%d", rec.seq, w.term, w.backoff))
	s.Retransmits++
	if w.backoff < 5 {
		w.backoff++
	}
	w.armTimer()
}

func (s *Service) handleAck(m *hpc.Message) {
	a := m.Payload.(netif.Envelope).Body.(*vAck)
	w := s.writers[a.v]
	if w == nil || a.upTo <= w.ackHigh {
		return
	}
	for len(w.pending) > 0 && w.pending[0].seq <= a.upTo {
		rec := w.pending[0]
		copy(w.pending, w.pending[1:])
		w.pending[len(w.pending)-1] = nil
		w.pending = w.pending[:len(w.pending)-1]
		s.uncharge(rec)
		s.tracer().Emit(trace.KAck, rec.tid, s.m.Name(), "vchan/"+w.name,
			fmt.Sprintf("seq=%d", rec.seq))
	}
	w.ackHigh = a.upTo
	w.backoff = 0 // ack progress: the path is alive, retransmit briskly again
	if v := s.vf(); v != nil {
		v.VChanAck(w.id, w.name, a.upTo)
	}
	if len(w.pending) == 0 {
		w.stopTimer()
		if w.sealed {
			s.sendDrained(w)
		}
	} else {
		w.armTimer()
	}
}

func (s *Service) handleNack(m *hpc.Message) {
	n := m.Payload.(netif.Envelope).Body.(*vNack)
	w := s.writers[n.v]
	if w == nil {
		return
	}
	// Only a nack proving our term is superseded silences the timer;
	// a "no assignment" nack (minTerm 0, broker rebooted) keeps the
	// timer running until the balancer re-teaches the broker — and
	// resets the backoff: a nack is proof the path is alive, so the
	// earlier silence was loss, not congestion.
	if n.minTerm > w.term {
		w.stale = true
		w.stopTimer()
		return
	}
	if w.backoff > 0 {
		w.backoff = 0
		if w.timerOn {
			w.armTimer()
		}
	}
}

// sendDrained tells the balancer the sealed placement reached its
// stable mark: every retained write is acked. Unreliable by design —
// the balancer's drain timeout is the fallback.
func (s *Service) sendDrained(w *Writer) {
	s.f.SendAsyncCtx(0, s.fab.bal.ep, "vchan.ctrl", CtrlBytes,
		&ctrlMsg{kind: ctrlDrained, v: w.id, name: w.name, term: w.term,
			stable: w.ackHigh, from: s.f.Endpoint()}, nil)
	s.tracer().Emit(trace.KMigrate, 0, s.m.Name(), "vchan/"+w.name,
		fmt.Sprintf("drained term=%d stable=%d", w.term, w.ackHigh))
}

// broker side --------------------------------------------------------

func (s *Service) handleData(m *hpc.Message) {
	fr := m.Payload.(netif.Envelope).Body.(*vFrame)
	if fr.hop == 0 {
		s.brokerData(fr)
	} else {
		s.consumerData(fr)
	}
}

func (s *Service) brokerData(fr *vFrame) {
	a := s.assigns[fr.v]
	cur := s.floors[fr.v]
	if a != nil && a.term > cur {
		cur = a.term
	}
	if a == nil || fr.term != a.term {
		if fr.term < cur {
			s.refuseStale(fr, "broker", cur)
		} else {
			// No (current) assignment: either this broker rebooted
			// and awaits re-assignment, or the control plane is ahead
			// of the producer. Nack with what we know.
			s.Unassigned++
			s.f.SendAsyncCtx(fr.tid, fr.src, "vchan.nack", AckBytes,
				&vNack{v: fr.v, minTerm: cur}, nil)
		}
		return
	}
	s.fwdLane[a.lane] += int64(fr.size)
	s.fwdVChan[fr.v] += int64(fr.size)
	s.Forwarded++
	fwd := *fr
	fwd.hop = 1
	s.tracer().Emit(trace.KHop, fr.tid, s.m.Name(), laneName(a.lane),
		fmt.Sprintf("fwd %s seq=%d term=%d", fr.name, fr.seq, fr.term))
	s.f.SendAsyncCtx(fr.tid, a.consumer, "vchan.data", fr.size+FrameHeaderBytes, &fwd, nil)
}

func (s *Service) refuseStale(fr *vFrame, where string, cur uint32) {
	s.StaleRefused++
	s.tracer().Count("vchan.stale_refused", 1)
	s.tracer().Emit(trace.KMigrate, fr.tid, s.m.Name(), "vchan/"+fr.name,
		fmt.Sprintf("refused stale term=%d cur=%d at=%s seq=%d", fr.term, cur, where, fr.seq))
	if v := s.vf(); v != nil {
		v.VChanStale(fr.v, where, fr.term, cur)
	}
	s.f.SendAsyncCtx(fr.tid, fr.src, "vchan.nack", AckBytes,
		&vNack{v: fr.v, minTerm: cur}, nil)
}

func laneName(id uint32) string { return fmt.Sprintf("lane%d", id) }

// consumer side ------------------------------------------------------

func (s *Service) consumerData(fr *vFrame) {
	r := s.readers[fr.v]
	if r == nil {
		return // misrouted; nothing sane to do
	}
	if fr.term < r.term {
		s.refuseStale(fr, "consumer", r.term)
		return
	}
	if fr.term > r.term {
		// Our expect ctrl is still in flight; the producer's timer
		// will re-offer this frame after we adopt the term.
		s.EarlyDropped++
		return
	}
	switch {
	case fr.seq < r.expect:
		// Redundant (retransmit or cross-term replay of delivered
		// data): suppress, re-assert our cumulative position.
		s.Dups++
		if v := s.vf(); v != nil {
			v.VChanDeliver(fr.v, r.name, fr.seq, fr.pay, fr.term, true)
		}
		s.flushAck(r)
	case fr.seq > r.expect:
		// Gap: go-back-N will restore order; remind the producer
		// where we stand.
		s.Gaps++
		s.flushAck(r)
	default:
		if v := s.vf(); v != nil {
			v.VChanDeliver(fr.v, r.name, fr.seq, fr.pay, fr.term, false)
		}
		r.expect++
		r.Delivered++
		r.ready = append(r.ready, Msg{Size: fr.size, Payload: fr.pay, Seq: fr.seq, Term: fr.term})
		s.tracer().Emit(trace.KChanDel, fr.tid, s.m.Name(), "vchan/"+r.name,
			fmt.Sprintf("seq=%d term=%d", fr.seq, fr.term))
		if r.wake != nil {
			wake := r.wake
			r.wake = nil
			wake()
		}
		r.owed++
		if r.owed >= s.fab.cfg.AckBatch {
			s.flushAck(r)
		} else {
			s.armAck(r)
		}
	}
}

func (s *Service) armAck(r *Reader) {
	if r.ackOn {
		return
	}
	r.ackOn = true
	r.ackTick = s.m.Kern.Kernel().After(s.fab.cfg.AckDelay, func() {
		r.ackOn = false
		if s.m.Kern.Crashed() {
			return
		}
		if r.owed > 0 {
			s.flushAck(r)
		}
	})
}

func (s *Service) flushAck(r *Reader) {
	r.owed = 0
	if r.ackOn {
		r.ackTick.Stop()
		r.ackOn = false
	}
	s.f.SendAsyncCtx(0, r.prod, "vchan.ack", AckBytes,
		&vAck{v: r.id, upTo: r.expect - 1}, nil)
}

// Read consumes the next in-order message, blocking until one
// arrives.
func (r *Reader) Read(sp *kern.Subprocess) (Msg, error) {
	s := r.svc
	costs := s.m.Kern.Costs()
	sp.Syscall(costs.ChanRecvProto)
	for len(r.ready) == 0 {
		r.wake = sp.Block(kern.WaitInput, "vchan/"+r.name)
		sp.BlockNow()
	}
	msg := r.ready[0]
	copy(r.ready, r.ready[1:])
	r.ready[len(r.ready)-1] = Msg{}
	r.ready = r.ready[:len(r.ready)-1]
	sp.System(costs.KernelCopyTime(msg.Size))
	s.tracer().Emit(trace.KRead, 0, s.m.Name(), "vchan/"+r.name,
		fmt.Sprintf("seq=%d", msg.Seq))
	return msg, nil
}

// Expect reports the reader's delivery cursor (next sequence).
func (r *Reader) Expect() int { return r.expect }

// Term reports the reader's current term.
func (r *Reader) Term() uint32 { return r.term }

// control plane (machine side) --------------------------------------

func (s *Service) handleCtrl(m *hpc.Message) {
	c := m.Payload.(netif.Envelope).Body.(*ctrlMsg)
	if s.fab.bal != nil && s.f.Endpoint() == s.fab.bal.ep {
		switch c.kind {
		case ctrlAck:
			s.fab.bal.handleCtrlAck(c.id)
			return
		case ctrlDrained:
			s.fab.bal.handleDrained(c)
			return
		case ctrlReport:
			s.fab.bal.handleReport(c)
			return
		}
	}
	switch c.kind {
	case ctrlSeal:
		if w := s.writers[c.v]; w != nil && c.term == w.term && w.placed {
			if !w.sealed {
				w.sealed = true
				s.tracer().Emit(trace.KMigrate, 0, s.m.Name(), "vchan/"+w.name,
					fmt.Sprintf("sealed term=%d pending=%d", w.term, len(w.pending)))
			}
			if len(w.pending) == 0 {
				s.sendDrained(w)
			}
		}
	case ctrlPlace:
		s.applyPlace(c)
	case ctrlAssign:
		s.assigns[c.v] = &assignment{term: c.term, lane: c.lane, consumer: c.consumer}
		if c.term > s.floors[c.v] {
			s.floors[c.v] = c.term
		}
		s.tracer().Emit(trace.KMigrate, 0, s.m.Name(), laneName(c.lane),
			fmt.Sprintf("assign %s term=%d", c.name, c.term))
	case ctrlRevoke:
		if a := s.assigns[c.v]; a != nil && a.term <= c.term {
			delete(s.assigns, c.v)
		}
		if c.term+1 > s.floors[c.v] {
			s.floors[c.v] = c.term + 1
		}
		s.tracer().Emit(trace.KMigrate, 0, s.m.Name(), "vchan/"+c.name,
			fmt.Sprintf("revoke term<=%d", c.term))
	case ctrlExpect:
		if r := s.readers[c.v]; r != nil && c.term > r.term {
			r.term = c.term
			if v := s.vf(); v != nil {
				v.VChanExpect(r.id, r.name, c.term, r.expect)
			}
			s.tracer().Emit(trace.KMigrate, 0, s.m.Name(), "vchan/"+r.name,
				fmt.Sprintf("expect term=%d resume=%d", c.term, r.expect))
		}
	default:
		return
	}
	// Every machine-side ctrl is idempotent and always acked; the
	// balancer retransmits until this lands.
	s.f.SendAsyncCtx(0, c.from, "vchan.ctrl", CtrlBytes,
		&ctrlMsg{kind: ctrlAck, id: c.id, from: s.f.Endpoint()}, nil)
}

// applyPlace installs a new placement at the producer and replays the
// retained suffix under the new term.
func (s *Service) applyPlace(c *ctrlMsg) {
	w := s.writers[c.v]
	if w == nil || c.term <= w.term {
		return
	}
	w.term = c.term
	w.lane = c.lane
	w.broker = c.broker
	w.placed = true
	w.sealed = false
	w.stale = false
	w.backoff = 0
	s.tracer().GaugeSet("vchan.term", float64(c.term))
	// Re-home the window charge: retained writes move with the
	// placement. The new lane may transiently exceed its window —
	// migration does not drop retained data — but no new write is
	// admitted until the charge falls below the window again.
	for _, rec := range w.pending {
		if rec.charged {
			l := s.lane(rec.lane)
			l.inflight--
			s.wakeLane(l)
		}
		rec.charged = true
		rec.lane = w.lane
	}
	nl := s.lane(w.lane)
	nl.inflight += len(w.pending)
	s.tracer().Emit(trace.KMigrate, 0, s.m.Name(), "vchan/"+w.name,
		fmt.Sprintf("placed term=%d lane=%d replay=%d", w.term, w.lane, len(w.pending)))
	if len(w.pending) > 0 {
		if v := s.vf(); v != nil {
			v.VChanReplay(w.id, w.name, w.term,
				w.pending[0].seq, w.pending[len(w.pending)-1].seq)
		}
		for _, rec := range w.pending {
			fr := &vFrame{v: w.id, name: w.name, term: w.term, seq: rec.seq,
				size: rec.size, pay: rec.pay, src: s.f.Endpoint(), hop: 0, tid: rec.tid}
			s.f.SendAsyncCtx(rec.tid, w.broker, "vchan.data", rec.size+FrameHeaderBytes, fr, nil)
		}
		w.armTimer()
	}
	s.wakeAll()
}

// crash handling -----------------------------------------------------

// onCrash wipes everything a dead machine knew. Producers and
// consumers lose their vchannel state for good (an application-level
// restart story is out of scope — the storm schedules crash brokers);
// brokers lose assignments and floors, which is safe: the balancer
// re-assigns at the current term, and anything older is refused once
// the floor is re-taught.
func (s *Service) onCrash() {
	s.assigns = make(map[uint64]*assignment)
	s.floors = make(map[uint64]uint32)
	s.fwdLane = make(map[uint32]int64)
	s.fwdVChan = make(map[uint64]int64)
	for _, w := range s.worder {
		w.stopTimer()
		w.placed = false
		w.pending = nil
	}
	for _, r := range s.rorder {
		if r.ackOn {
			r.ackTick.Stop()
			r.ackOn = false
		}
		r.ready = nil
		r.wake = nil
	}
	for _, l := range s.lanes {
		l.inflight = 0
		l.waiters = nil
	}
}

// startReports arms the broker's load-report beacon (called by the
// balancer for machines hosting lanes). Report ticks skip while
// crashed and resume after restart, carrying the new incarnation so
// the balancer can detect the reboot and re-teach assignments.
func (s *Service) startReports() {
	if s.stopRep != nil {
		return
	}
	s.stopRep = s.m.Kern.Beacon(s.fab.cfg.ReportEvery, s.sendReport)
}

func (s *Service) sendReport() {
	lanes := make([]uint32, 0, len(s.fwdLane))
	for id := range s.fwdLane {
		lanes = append(lanes, id)
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	lb := make([]laneBytes, 0, len(lanes))
	for _, id := range lanes {
		lb = append(lb, laneBytes{lane: id, bytes: s.fwdLane[id]})
	}
	vs := make([]uint64, 0, len(s.fwdVChan))
	for v := range s.fwdVChan {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	vb := make([]vchanBytes, 0, len(vs))
	for _, v := range vs {
		vb = append(vb, vchanBytes{v: v, bytes: s.fwdVChan[v]})
	}
	s.fwdLane = make(map[uint32]int64)
	s.fwdVChan = make(map[uint64]int64)
	s.f.SendAsyncCtx(0, s.fab.bal.ep, "vchan.ctrl", CtrlBytes,
		&ctrlMsg{kind: ctrlReport, from: s.f.Endpoint(),
			inc: s.m.Kern.Incarnation(), laneBytes: lb, vBytes: vb}, nil)
}
