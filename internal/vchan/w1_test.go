package vchan

import (
	"testing"

	"hpcvorx/internal/sim"
)

// TestWindowOneRegression pins the ackHigh initialization bug the
// storm property surfaced: with a 1-deep lane window, the cumulative
// ack for seq 0 is the writer's only source of credit, and a writer
// whose ackHigh starts at 0 instead of -1 drops it and deadlocks
// after one delivery per vchannel.
func TestWindowOneRegression(t *testing.T) {
	rig := newRig(t, 8, 4, Config{BrokerCount: 2, LanesPerBroker: 1, Window: 1})
	got := rig.drive(15, 64, 30*sim.Microsecond)
	rig.sys.RunFor(120 * sim.Millisecond)
	checkFIFO(t, got, 15)
}
