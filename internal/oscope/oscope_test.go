package oscope_test

import (
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/oscope"
	"hpcvorx/internal/sim"
)

// imbalancedSystem runs a 2-node app where node0 computes for 10 ms
// while node1 waits for input the whole time.
func imbalancedSystem(t *testing.T) (*core.System, *oscope.Scope) {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := oscope.Attach(sys)
	sys.Spawn(sys.Node(0), "busy", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "result", objmgr.OpenAny)
		sp.Compute(sim.Milliseconds(10))
		ch.Write(sp, 100, nil)
	})
	sys.Spawn(sys.Node(1), "idle", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "result", objmgr.OpenAny)
		ch.Read(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sc.Finalize()
	return sys, sc
}

func TestUtilizationPartition(t *testing.T) {
	sys, sc := imbalancedSystem(t)
	end := sys.K.Now()
	u0 := sc.Utilization("node0", 0, end)
	u1 := sc.Utilization("node1", 0, end)
	if u0[kern.CatUser] < 0.9 {
		t.Fatalf("node0 user fraction = %.2f, want ~1", u0[kern.CatUser])
	}
	if u1[kern.CatIdleInput] < 0.9 {
		t.Fatalf("node1 idle-input fraction = %.2f (%v)", u1[kern.CatIdleInput], u1)
	}
	// Fractions sum to ~1 on both.
	for name, u := range map[string]map[kern.Category]float64{"node0": u0, "node1": u1} {
		sum := 0.0
		for _, f := range u {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s fractions sum to %.3f", name, sum)
		}
	}
}

func TestImbalanceDetectsBadLoadBalance(t *testing.T) {
	sys, sc := imbalancedSystem(t)
	if im := sc.Imbalance(0, sys.K.Now()); im < 0.8 {
		t.Fatalf("imbalance = %.2f, want near 1 for this pathological app", im)
	}
}

func TestRenderShowsSynchronizedRows(t *testing.T) {
	sys, sc := imbalancedSystem(t)
	var b strings.Builder
	sc.Render(&b, 0, sys.K.Now(), 40)
	out := b.String()
	if !strings.Contains(out, "node0") || !strings.Contains(out, "node1") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if !strings.Contains(out, "U") {
		t.Fatalf("no user time rendered:\n%s", out)
	}
	if !strings.Contains(out, "i") {
		t.Fatalf("no idle-input rendered:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Every node row must have identical width (synchronized graphs).
	var widths []int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			bar := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			widths = append(widths, len(bar))
		}
	}
	if len(widths) < 2 || widths[0] != widths[1] {
		t.Fatalf("rows not synchronized: %v", widths)
	}
}

func TestWindowedRender(t *testing.T) {
	_, sc := imbalancedSystem(t)
	var b strings.Builder
	// Zoom into the first millisecond only.
	sc.Render(&b, 0, sim.Time(sim.Milliseconds(1)), 20)
	if !strings.Contains(b.String(), "node0") {
		t.Fatalf("windowed render failed:\n%s", b.String())
	}
	var empty strings.Builder
	sc.Render(&empty, 100, 100, 20)
	if !strings.Contains(empty.String(), "empty window") {
		t.Fatalf("zero window should say so: %s", empty.String())
	}
}

func TestRenderAllCoversWholeRun(t *testing.T) {
	_, sc := imbalancedSystem(t)
	out := sc.String()
	if !strings.Contains(out, "oscope:") {
		t.Fatalf("render-all output:\n%s", out)
	}
}

func TestIdleMixedGlyph(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := oscope.Attach(sys)
	sys.Spawn(sys.Node(0), "in", 0, func(sp *kern.Subprocess) {
		wake := sp.Block(kern.WaitInput, "in")
		sys.K.After(sim.Milliseconds(5), wake)
		sp.BlockNow()
	})
	sys.Spawn(sys.Node(0), "out", 0, func(sp *kern.Subprocess) {
		wake := sp.Block(kern.WaitOutput, "out")
		sys.K.After(sim.Milliseconds(5), wake)
		sp.BlockNow()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sc.Finalize()
	var b strings.Builder
	sc.Render(&b, 0, sys.K.Now(), 30)
	if !strings.Contains(b.String(), "m") {
		t.Fatalf("idle-mixed glyph missing:\n%s", b.String())
	}
}

func TestRenderGroupedFoldsRows(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := oscope.Attach(sys)
	for i := 0; i < 8; i++ {
		i := i
		sys.Spawn(sys.Node(i), "w", 0, func(sp *kern.Subprocess) {
			sp.Compute(sim.Milliseconds(float64(1 + i)))
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sc.Finalize()
	var b strings.Builder
	sc.RenderGrouped(&b, 0, sys.K.Now(), 40, 4)
	out := b.String()
	// 8 hosts grouped by 4 -> 2 rows plus header and legend.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			rows++
		}
	}
	if rows != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", rows, out)
	}
	if !strings.Contains(out, "node0..node3") {
		t.Fatalf("group label missing:\n%s", out)
	}
	if !strings.Contains(out, "density:") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestDensityRampMonotone(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := oscope.Attach(sys)
	// node0 busy the whole window, node1 idle.
	sys.Spawn(sys.Node(0), "busy", 0, func(sp *kern.Subprocess) {
		sp.Compute(sim.Milliseconds(10))
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sc.Finalize()
	var b strings.Builder
	sc.RenderGrouped(&b, 0, sys.K.Now(), 10, 1)
	lines := strings.Split(b.String(), "\n")
	var busyRow, idleRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "node0") {
			busyRow = l
		}
		if strings.HasPrefix(l, "node1") {
			idleRow = l
		}
	}
	if !strings.Contains(busyRow, "@") {
		t.Fatalf("busy row shows no density: %q", busyRow)
	}
	if strings.ContainsAny(idleRow[strings.Index(idleRow, "|"):], "@#*") {
		t.Fatalf("idle row shows density: %q", idleRow)
	}
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	sys, sc := imbalancedSystem(t)
	var buf strings.Builder
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := oscope.Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	end := sys.K.Now()
	for _, name := range []string{"node0", "node1"} {
		a := sc.Utilization(name, 0, end)
		b := loaded.Utilization(name, 0, end)
		for _, cat := range kern.Categories() {
			if a[cat] != b[cat] {
				t.Fatalf("%s %v: %.4f vs %.4f after round trip", name, cat, a[cat], b[cat])
			}
		}
	}
	// A loaded trace renders identically.
	var r1, r2 strings.Builder
	sc.Render(&r1, 0, end, 30)
	loaded.Render(&r2, 0, end, 30)
	if r1.String() != r2.String() {
		t.Fatalf("render differs after round trip:\n%s\nvs\n%s", r1.String(), r2.String())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := oscope.Load(strings.NewReader("")); err == nil {
		t.Fatal("empty trace should fail")
	}
	if _, err := oscope.Load(strings.NewReader("not-a-trace\n")); err == nil {
		t.Fatal("bad header should fail")
	}
	if _, err := oscope.Load(strings.NewReader("oscope-trace 9 0\n")); err == nil {
		t.Fatal("future version should fail")
	}
	if _, err := oscope.Load(strings.NewReader("oscope-trace 1 1\nnodeX 0 bad 0\n")); err == nil {
		t.Fatal("bad line should fail")
	}
	if _, err := oscope.Load(strings.NewReader("oscope-trace 2 1\nnot an event line\n")); err == nil {
		t.Fatal("bad v2 line should fail")
	}
	if _, err := oscope.Load(strings.NewReader("oscope-trace 2 1\n0 0 10 hop 0 node0 cpu user\n")); err == nil {
		t.Fatal("non-accounting v2 event should fail")
	}
}

// TestFromTracerMatchesLiveScope checks the unification satellite: the
// KAccount spans the system tracer records reproduce exactly what a
// live-attached oscilloscope saw, and survive a v1 file round trip too.
func TestFromTracerMatchesLiveScope(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Trace.Enable()
	sc := oscope.Attach(sys)
	sys.Spawn(sys.Node(0), "busy", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "result", objmgr.OpenAny)
		sp.Compute(sim.Milliseconds(10))
		ch.Write(sp, 100, nil)
	})
	sys.Spawn(sys.Node(1), "idle", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "result", objmgr.OpenAny)
		ch.Read(sp)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sc.Finalize() // flushes the open intervals into the tracer too
	end := sys.K.Now()
	from := oscope.FromTracer(sys.Trace)
	var live, replay strings.Builder
	sc.Render(&live, 0, end, 30)
	from.Render(&replay, 0, end, 30)
	if live.String() != replay.String() {
		t.Fatalf("tracer replay differs from live scope:\n%s\nvs\n%s", live.String(), replay.String())
	}
	// The legacy v1 format must stay loadable.
	v1 := "oscope-trace 1 1\nnode9 0 1000 0\n"
	loaded, err := oscope.Load(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Intervals("node9"); len(got) != 1 || got[0].End != sim.Time(1000) {
		t.Fatalf("v1 load: %v", got)
	}
}
