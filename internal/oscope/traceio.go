package oscope

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

// Recording and playback: "Execution data is recorded while the
// application is running and later the software oscilloscope is used
// to display the data" (§6.2). Save writes the recorded trace in a
// line-oriented text format; Load reconstructs a Scope from it, so a
// run on one machine can be examined elsewhere, frozen, and seeked at
// will.

// Save writes the recorded intervals. Format: one header line, then
// "node start end cat" per interval, nanosecond timestamps.
func (s *Scope) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	withData := 0
	for _, name := range names {
		if len(s.recs[name]) > 0 {
			withData++
		}
	}
	fmt.Fprintf(bw, "oscope-trace 1 %d\n", withData)
	for _, name := range names {
		for _, iv := range s.recs[name] {
			fmt.Fprintf(bw, "%s %d %d %d\n", name, int64(iv.Start), int64(iv.End), int(iv.Cat))
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save into a detached Scope (no live
// nodes; Finalize is a no-op).
func Load(r io.Reader) (*Scope, error) {
	s := &Scope{recs: map[string][]kern.Interval{}, nodes: map[string]*kern.Node{}}
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("oscope: empty trace")
	}
	var version, count int
	if _, err := fmt.Sscanf(sc.Text(), "oscope-trace %d %d", &version, &count); err != nil {
		return nil, fmt.Errorf("oscope: bad trace header %q", sc.Text())
	}
	if version != 1 {
		return nil, fmt.Errorf("oscope: unsupported trace version %d", version)
	}
	seen := map[string]bool{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var name string
		var start, end int64
		var cat int
		if _, err := fmt.Sscanf(line, "%s %d %d %d", &name, &start, &end, &cat); err != nil {
			return nil, fmt.Errorf("oscope: bad trace line %q", line)
		}
		if !seen[name] {
			seen[name] = true
			s.order = append(s.order, name)
		}
		s.recs[name] = append(s.recs[name], kern.Interval{
			Start: sim.Time(start), End: sim.Time(end), Cat: kern.Category(cat),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.order) != count {
		return nil, fmt.Errorf("oscope: trace names %d, header says %d", len(s.order), count)
	}
	return s, nil
}
