package oscope

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/trace"
)

// Recording and playback: "Execution data is recorded while the
// application is running and later the software oscilloscope is used
// to display the data" (§6.2). Save writes the recorded trace in a
// line-oriented text format; Load reconstructs a Scope from it, so a
// run on one machine can be examined elsewhere, frozen, and seeked at
// will.
//
// Two versions exist. Version 1 is the original private format
// ("node start end cat" per interval). Version 2 unifies the payload
// with the flight-recorder lines of package trace: each body line is
// one trace.FormatEventLine KAccount span, so the same accounting
// events can be dumped by the unified tracer and rendered here, and an
// oscope file is readable by any tool that parses trace event lines.

// Save writes the recorded intervals in the version-2 (unified trace
// event line) format. The header counts the nodes with data.
func (s *Scope) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	withData := 0
	for _, name := range names {
		if len(s.recs[name]) > 0 {
			withData++
		}
	}
	fmt.Fprintf(bw, "oscope-trace 2 %d\n", withData)
	seq := uint64(0)
	for _, name := range names {
		for _, iv := range s.recs[name] {
			e := trace.Event{
				Seq: seq, At: iv.Start, Dur: iv.End.Sub(iv.Start),
				Kind: trace.KAccount, Node: name, Lane: "cpu",
				Detail: iv.Cat.String(),
			}
			seq++
			fmt.Fprintf(bw, "%s\n", trace.FormatEventLine(e))
		}
	}
	return bw.Flush()
}

// FromTracer builds a detached Scope from the KAccount spans a unified
// tracer recorded (Finalize is a no-op on it). Other event kinds are
// ignored, so the tracer may have recorded the whole stack.
func FromTracer(tr *trace.Tracer) *Scope { return FromEvents(tr.Events()) }

// FromEvents builds a detached Scope from trace events, keeping only
// KAccount spans whose detail names a kernel accounting category.
func FromEvents(evs []trace.Event) *Scope {
	s := &Scope{recs: map[string][]kern.Interval{}, nodes: map[string]*kern.Node{}}
	for _, e := range evs {
		if e.Kind != trace.KAccount {
			continue
		}
		cat, ok := kern.ParseCategory(e.Detail)
		if !ok {
			continue
		}
		if _, seen := s.recs[e.Node]; !seen {
			s.order = append(s.order, e.Node)
		}
		s.recs[e.Node] = append(s.recs[e.Node], kern.Interval{
			Start: e.At, End: e.At.Add(e.Dur), Cat: cat,
		})
	}
	return s
}

// Load reads a trace written by Save — either version — into a
// detached Scope (no live nodes; Finalize is a no-op).
func Load(r io.Reader) (*Scope, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("oscope: empty trace")
	}
	var version, count int
	if _, err := fmt.Sscanf(sc.Text(), "oscope-trace %d %d", &version, &count); err != nil {
		return nil, fmt.Errorf("oscope: bad trace header %q", sc.Text())
	}
	var s *Scope
	var err error
	switch version {
	case 1:
		s, err = loadV1(sc)
	case 2:
		s, err = loadV2(sc)
	default:
		return nil, fmt.Errorf("oscope: unsupported trace version %d", version)
	}
	if err != nil {
		return nil, err
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.order) != count {
		return nil, fmt.Errorf("oscope: trace names %d, header says %d", len(s.order), count)
	}
	return s, nil
}

func loadV1(sc *bufio.Scanner) (*Scope, error) {
	s := &Scope{recs: map[string][]kern.Interval{}, nodes: map[string]*kern.Node{}}
	seen := map[string]bool{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var name string
		var start, end int64
		var cat int
		if _, err := fmt.Sscanf(line, "%s %d %d %d", &name, &start, &end, &cat); err != nil {
			return nil, fmt.Errorf("oscope: bad trace line %q", line)
		}
		if !seen[name] {
			seen[name] = true
			s.order = append(s.order, name)
		}
		s.recs[name] = append(s.recs[name], kern.Interval{
			Start: sim.Time(start), End: sim.Time(end), Cat: kern.Category(cat),
		})
	}
	return s, nil
}

func loadV2(sc *bufio.Scanner) (*Scope, error) {
	s := &Scope{recs: map[string][]kern.Interval{}, nodes: map[string]*kern.Node{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := trace.ParseEventLine(line)
		if err != nil {
			return nil, fmt.Errorf("oscope: %v", err)
		}
		if e.Kind != trace.KAccount {
			return nil, fmt.Errorf("oscope: non-accounting event in trace: %q", line)
		}
		cat, ok := kern.ParseCategory(e.Detail)
		if !ok {
			return nil, fmt.Errorf("oscope: unknown category %q in %q", e.Detail, line)
		}
		if _, seen := s.recs[e.Node]; !seen {
			s.order = append(s.order, e.Node)
		}
		s.recs[e.Node] = append(s.recs[e.Node], kern.Interval{
			Start: e.At, End: e.At.Add(e.Dur), Cat: cat,
		})
	}
	return s, nil
}
