// Package oscope is the VORX software oscilloscope (paper §6.2): a
// tool that visualizes how well the processors of an application are
// utilized and how well the computational load is balanced.
//
// Execution data is recorded while the application runs (the node
// kernels emit accounting intervals); the oscilloscope later displays
// one synchronized graph per processor, partitioning time into user,
// system, and the idle flavors: waiting for input, waiting for
// output, mixed (some threads on input, some on output), and other.
// The display can be windowed to any interval of execution time and
// rendered at any resolution — the freeze / faster / slower / seek
// controls of the original, in batch form.
package oscope

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

// glyphs maps each time category to its display character.
var glyphs = map[kern.Category]byte{
	kern.CatUser:       'U',
	kern.CatSystem:     's',
	kern.CatIdleInput:  'i',
	kern.CatIdleOutput: 'o',
	kern.CatIdleMixed:  'm',
	kern.CatIdleOther:  '.',
}

// Scope records execution data for a set of nodes.
type Scope struct {
	order []string
	recs  map[string][]kern.Interval
	nodes map[string]*kern.Node
}

// Attach starts recording on every machine of the system. Call before
// running the application.
func Attach(sys *core.System) *Scope {
	s := &Scope{recs: map[string][]kern.Interval{}, nodes: map[string]*kern.Node{}}
	for _, m := range sys.Machines() {
		name := m.Name()
		s.order = append(s.order, name)
		s.nodes[name] = m.Kern
		m.Kern.SetTraceSink(func(n *kern.Node, iv kern.Interval) {
			s.recs[name] = append(s.recs[name], iv)
		})
	}
	return s
}

// AttachNodes records only the given kernel nodes.
func AttachNodes(nodes ...*kern.Node) *Scope {
	s := &Scope{recs: map[string][]kern.Interval{}, nodes: map[string]*kern.Node{}}
	for _, n := range nodes {
		name := n.Name()
		s.order = append(s.order, name)
		s.nodes[name] = n
		n.SetTraceSink(func(_ *kern.Node, iv kern.Interval) {
			s.recs[name] = append(s.recs[name], iv)
		})
	}
	return s
}

// Finalize closes each node's in-progress interval; call after the
// run, before rendering.
func (s *Scope) Finalize() {
	for _, n := range s.nodes {
		n.Totals()
	}
}

// Nodes returns the recorded node names in attach order.
func (s *Scope) Nodes() []string { return append([]string(nil), s.order...) }

// Intervals returns the recorded intervals for a node.
func (s *Scope) Intervals(node string) []kern.Interval { return s.recs[node] }

// Utilization returns the fraction of [from,to) each category
// occupies on the node.
func (s *Scope) Utilization(node string, from, to sim.Time) map[kern.Category]float64 {
	total := to.Sub(from)
	if total <= 0 {
		return nil
	}
	out := map[kern.Category]float64{}
	for _, iv := range s.recs[node] {
		a, b := iv.Start, iv.End
		if a < from {
			a = from
		}
		if b > to {
			b = to
		}
		if b > a {
			out[iv.Cat] += float64(b.Sub(a)) / float64(total)
		}
	}
	return out
}

// dominant returns the category occupying the most of [a,b) on the
// node, defaulting to idle-other.
func (s *Scope) dominant(node string, a, b sim.Time) kern.Category {
	best := kern.CatIdleOther
	var bestD sim.Duration
	var acc [8]sim.Duration
	for _, iv := range s.recs[node] {
		x, y := iv.Start, iv.End
		if x < a {
			x = a
		}
		if y > b {
			y = b
		}
		if y > x {
			acc[iv.Cat] += y.Sub(x)
		}
	}
	for _, c := range kern.Categories() {
		if acc[c] > bestD {
			best, bestD = c, acc[c]
		}
	}
	return best
}

// Render draws one row per node covering [from,to) in width columns;
// every row shows the same interval of execution time (the graphs are
// synchronized). Each cell shows the dominant category: U=user,
// s=system, i=idle-input, o=idle-output, m=idle-mixed, .=idle-other.
func (s *Scope) Render(w io.Writer, from, to sim.Time, width int) {
	if width <= 0 {
		width = 60
	}
	span := to.Sub(from)
	if span <= 0 {
		fmt.Fprintln(w, "oscope: empty window")
		return
	}
	fmt.Fprintf(w, "oscope: %v .. %v (%v per column)\n", from, to, sim.Duration(int64(span)/int64(width)))
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	for _, name := range names {
		row := make([]byte, width)
		for c := 0; c < width; c++ {
			a := from.Add(sim.Duration(int64(span) * int64(c) / int64(width)))
			b := from.Add(sim.Duration(int64(span) * int64(c+1) / int64(width)))
			row[c] = glyphs[s.dominant(name, a, b)]
		}
		u := s.Utilization(name, from, to)
		fmt.Fprintf(w, "%-8s |%s| %3.0f%% busy\n", name, row,
			100*(u[kern.CatUser]+u[kern.CatSystem]))
	}
	fmt.Fprintln(w, "legend: U=user s=system i=idle-input o=idle-output m=idle-mixed .=idle-other")
}

// RenderAll renders the full recorded time range.
func (s *Scope) RenderAll(w io.Writer, width int) {
	var lo, hi sim.Time
	first := true
	for _, ivs := range s.recs {
		for _, iv := range ivs {
			if first || iv.Start < lo {
				lo = iv.Start
			}
			if first || iv.End > hi {
				hi = iv.End
			}
			first = false
		}
	}
	if first {
		fmt.Fprintln(w, "oscope: no data recorded")
		return
	}
	s.Render(w, lo, hi, width)
}

// Imbalance reports the busy-fraction spread across nodes over
// [from,to): max minus min of (user+system). A well balanced
// application has a small imbalance.
func (s *Scope) Imbalance(from, to sim.Time) float64 {
	minB, maxB := 2.0, -1.0
	for _, name := range s.order {
		u := s.Utilization(name, from, to)
		busy := u[kern.CatUser] + u[kern.CatSystem]
		if busy < minB {
			minB = busy
		}
		if busy > maxB {
			maxB = busy
		}
	}
	if maxB < 0 {
		return 0
	}
	return maxB - minB
}

// String renders the full range at default width.
func (s *Scope) String() string {
	var b strings.Builder
	s.RenderAll(&b, 60)
	return b.String()
}
