package oscope

import (
	"fmt"
	"io"
	"sort"

	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

// The paper closes §6.2 with "This tool works well when the
// application has few enough processors so that all the graphs fit on
// the screen. We are studying ways to effectively display data for
// more processors." RenderGrouped is one such way: consecutive
// processors are folded into one row each, and every cell shows the
// group's average busy fraction as a density ramp instead of a single
// dominant category.

// densityRamp maps a busy fraction to a glyph, low to high.
const densityRamp = " .:-=+*#@"

func densityGlyph(busy float64) byte {
	if busy < 0 {
		busy = 0
	}
	if busy > 1 {
		busy = 1
	}
	idx := int(busy * float64(len(densityRamp)-1))
	return densityRamp[idx]
}

// RenderGrouped draws the window with groupSize processors per row;
// each cell is the group's mean busy (user+system) fraction over that
// time slice. All rows remain synchronized.
func (s *Scope) RenderGrouped(w io.Writer, from, to sim.Time, width, groupSize int) {
	if width <= 0 {
		width = 60
	}
	if groupSize <= 0 {
		groupSize = 1
	}
	span := to.Sub(from)
	if span <= 0 {
		fmt.Fprintln(w, "oscope: empty window")
		return
	}
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	fmt.Fprintf(w, "oscope (grouped x%d): %v .. %v\n", groupSize, from, to)
	for g := 0; g < len(names); g += groupSize {
		end := g + groupSize
		if end > len(names) {
			end = len(names)
		}
		group := names[g:end]
		row := make([]byte, width)
		for c := 0; c < width; c++ {
			a := from.Add(sim.Duration(int64(span) * int64(c) / int64(width)))
			b := from.Add(sim.Duration(int64(span) * int64(c+1) / int64(width)))
			busy := 0.0
			for _, name := range group {
				busy += s.busyFraction(name, a, b)
			}
			row[c] = densityGlyph(busy / float64(len(group)))
		}
		label := group[0]
		if len(group) > 1 {
			label = fmt.Sprintf("%s..%s", group[0], group[len(group)-1])
		}
		fmt.Fprintf(w, "%-16s |%s|\n", label, row)
	}
	fmt.Fprintf(w, "density: '%s' = 0%%..100%% busy\n", densityRamp)
}

// busyFraction returns the (user+system)/window fraction for one node
// over [a,b).
func (s *Scope) busyFraction(node string, a, b sim.Time) float64 {
	total := b.Sub(a)
	if total <= 0 {
		return 0
	}
	var busy sim.Duration
	for _, iv := range s.recs[node] {
		if iv.Cat != kern.CatUser && iv.Cat != kern.CatSystem {
			continue
		}
		x, y := iv.Start, iv.End
		if x < a {
			x = a
		}
		if y > b {
			y = b
		}
		if y > x {
			busy += y.Sub(x)
		}
	}
	return float64(busy) / float64(total)
}
