package vorxbench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// E20 is the multi-core scaling table: a denser cross-cluster workload
// than E19 (twice the pool, more pairs, tighter pacing) swept over
// shard counts, reporting the sim.sync.* counters next to throughput
// so the cost of conservative synchronization is visible in the same
// row as the speedup it buys. The digest column is deterministic and
// must read "yes" at every shard count; the events/sec note is
// wall-clock and scales with host CPUs, so E20 joins E14/E18/E19
// outside the replication identity check.

// E20 geometry: 1 host + 63 nodes is 16 clusters of 4 — twice E19's
// pool, with cluster pairs up to 4 cube hops apart, so the route-aware
// lookahead matrix has real spread (1..4 x HopFixed).
const (
	e20Nodes = 63
	e20Pairs = 30
	e20Msgs  = 12
)

// e20Run drives the dense pair workload at one shard count.
func e20Run(shards int) ShardMeasure {
	sh, err := core.BuildSharded(core.Config{Hosts: 1, Nodes: e20Nodes, Seed: 20, Shards: shards})
	if err != nil {
		panic(err)
	}
	out := make([]e19Outcome, e20Pairs)
	for pi := 0; pi < e20Pairs; pi++ {
		pi := pi
		name := fmt.Sprintf("e20-%d", pi)
		wm, rm := sh.Node(pi), sh.Node(pi+e20Pairs)
		size := 128 + 8*pi
		sh.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(1+11*pi) * sim.Microsecond)
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < e20Msgs; i++ {
				if err := ch.Write(sp, size, fmt.Sprintf("m%d.%d", pi, i)); err != nil {
					return
				}
				sp.SleepFor(sim.Duration(170+5*pi) * sim.Microsecond)
			}
		})
		sh.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(5+11*pi) * sim.Microsecond)
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < e20Msgs; i++ {
				if _, ok := ch.Read(sp); !ok {
					return
				}
				out[pi].recv++
				out[pi].done = rm.Kern.Kernel().Now()
			}
		})
	}
	t0 := time.Now()
	if err := sh.Run(); err != nil {
		panic(err)
	}
	wall := time.Since(t0)

	var b strings.Builder
	for pi, o := range out {
		fmt.Fprintf(&b, "pair%d recv=%d done=%d\n", pi, o.recv, int64(o.done))
	}
	var makespan sim.Time
	for _, sys := range sh.Sys {
		if n := sys.K.Now(); n > makespan {
			makespan = n
		}
	}
	return ShardMeasure{
		Shards:   shards,
		Digest:   b.String(),
		Events:   sh.Group.Scheduled(),
		Cross:    sh.Group.CrossPosts(),
		Handoffs: sh.FabricStats().HandoffsOut,
		Makespan: makespan,
		Wall:     wall,
		Sync:     sh.Group.SyncStats(),
	}
}

// E20MultiCoreScaling sweeps shard counts over the dense 16-cluster
// pool. The table rows are deterministic (virtual-time event counts,
// digests); the sim.sync.* counters depend on how the host scheduler
// interleaved the shards (a shard that happens to park draws extra
// wakeups and promise repairs), so they ride in the host-dependent
// notes next to the wall clock, outside CI's double-run diff.
func E20MultiCoreScaling() *Table {
	t := &Table{
		ID:    "E20",
		Title: "multi-core scaling: dense 16-cluster pool over shard counts",
		Header: []string{"shards", "events", "cross posts", "handoffs",
			"cross/events (%)", "makespan (us)", "identical"},
	}
	serialDigest := ""
	var serialWall time.Duration
	var runs []ShardMeasure
	for _, shards := range []int{1, 2, 4, 8} {
		r := e20Run(shards)
		identical := "yes"
		if shards == 1 {
			serialDigest, serialWall = r.Digest, r.Wall
		} else if r.Digest != serialDigest {
			identical = "NO"
		}
		t.AddRow(
			fmt.Sprint(shards),
			fmt.Sprint(r.Events),
			fmt.Sprint(r.Cross),
			fmt.Sprint(r.Handoffs),
			fmt.Sprintf("%.2f", 100*float64(r.Cross)/float64(r.Events)),
			us(float64(r.Makespan)/1e3),
			identical,
		)
		runs = append(runs, r)
	}
	t.Note("identical = per-pair delivery digest byte-equal to shards=1, the parallel kernel's " +
		"contract at every shard count")
	var sync []string
	for _, r := range runs[1:] {
		sync = append(sync, fmt.Sprintf("shards=%d pubs=%d null=%d wakes=%d drain=%.1f",
			r.Shards, r.Sync.HorizonPublishes, r.Sync.NullMessages,
			r.Sync.Wakeups, r.Sync.AvgDrainRun()))
	}
	t.Note("sync counters (host-dependent, this run): %s — pubs = per-pair promise raises "+
		"stored, null = raises with no queued traffic to cap them, wakes = park/wake signals, "+
		"drain = events dispatched per safe-bound computation (grant batching, higher is cheaper)",
		strings.Join(sync, "; "))
	var parts []string
	for _, r := range runs {
		evps := float64(r.Events) / r.Wall.Seconds()
		parts = append(parts, fmt.Sprintf("shards=%d %.0fk ev/s (%.2fx)",
			r.Shards, evps/1e3, serialWall.Seconds()/r.Wall.Seconds()))
	}
	t.Note("wall clock (host-dependent, this run, GOMAXPROCS=%d, %d CPUs): %s",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), strings.Join(parts, ", "))
	return t
}
