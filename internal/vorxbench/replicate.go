package vorxbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hpcvorx/internal/core"
	"hpcvorx/internal/workload"
)

// Replication support: every experiment builds its own core.System —
// its own sim.Kernel, interconnect, machines, and services — and
// communicates with nothing outside it. Kernels are share-nothing, so
// independent replications can run on independent goroutines with no
// locking at all; the only coordination is handing out job indices and
// waiting for completion. Results are collected by index, so the
// rendered output is byte-identical to the serial run regardless of
// which worker finished first.

// Workers resolves a worker-count request: n < 1 means one worker per
// available CPU. Requests are clamped to the machine's CPU count —
// share-nothing simulation workers are pure compute, so oversubscribing
// cores only adds scheduling overhead (BENCH_pr4.json measured the
// pool costing 14% on a 1-CPU builder; the callers' serial path makes
// an effective worker count of 1 free).
func Workers(n int) int {
	cpus := runtime.NumCPU()
	if g := runtime.GOMAXPROCS(0); g < cpus {
		cpus = g
	}
	if n < 1 || n > cpus {
		return cpus
	}
	return n
}

// RunIDs generates the named experiments across a pool of workers and
// returns the tables in the requested order. workers <= 1 runs
// serially on the calling goroutine. Unknown ids yield nil entries,
// exactly as ByID would.
func RunIDs(ids []string, workers int) []*Table {
	out := make([]*Table, len(ids))
	workers = Workers(workers)
	if workers == 1 || len(ids) <= 1 {
		for i, id := range ids {
			out[i] = ByID(id)
		}
		return out
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = ByID(ids[i])
			}
		}()
	}
	for i := range ids {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// AllParallel is All() across a worker pool: same tables, same order,
// same bytes.
func AllParallel(workers int) []*Table {
	return RunIDs(IDs(), workers)
}

// DeterministicIDs lists the experiments whose rendered output is a
// pure function of the experiment — everything except E14, E18, E19,
// and E20, whose notes report host wall-clock times. Byte-identity
// checks (serial vs parallel, run vs rerun) should use this set.
func DeterministicIDs() []string {
	var out []string
	for _, id := range IDs() {
		if id != "E14" && id != "E18" && id != "E19" && id != "E20" {
			out = append(out, id)
		}
	}
	return out
}

// SeededRun is one independent replication of the standard all-to-one
// macro workload (20 nodes, 800-byte messages, 10 per sender) at a
// given seed. The returned digest captures everything the run decided
// in virtual time, so comparing digests across serial and parallel
// execution proves the worker pool changed nothing.
func SeededRun(seed int64) string {
	sys, err := core.Build(core.Config{Nodes: 20, Seed: seed})
	if err != nil {
		panic(err)
	}
	mk := workload.ManyToOne(sys, 800, 10)
	return fmt.Sprintf("seed=%d makespan=%v quiesce=%v", seed, mk, sys.K.Now())
}

// ReplicateSeeds runs fn once per seed across a pool of workers and
// returns the outputs in seed order. workers <= 1 runs serially.
func ReplicateSeeds(seeds []int64, workers int, fn func(seed int64) string) []string {
	out := make([]string, len(seeds))
	workers = Workers(workers)
	if workers == 1 || len(seeds) <= 1 {
		for i, s := range seeds {
			out[i] = fn(s)
		}
		return out
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = fn(seeds[i])
			}
		}()
	}
	for i := range seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// TimedRun renders the named experiments (serially if workers <= 1)
// and returns the concatenated output plus the wall-clock time spent.
func TimedRun(ids []string, workers int) (string, time.Duration) {
	start := time.Now()
	tables := RunIDs(ids, workers)
	wall := time.Since(start)
	var b []byte
	for _, t := range tables {
		if t != nil {
			b = append(b, t.String()...)
		}
	}
	return string(b), wall
}
