package vorxbench

import (
	"fmt"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
)

// e13Metrics is one supervised crash/heal run's outcome.
type e13Metrics struct {
	heartbeat   sim.Duration // H
	confirm     sim.Duration // T (confirm timeout)
	detect      sim.Duration // crash -> confirmed dead
	unavail     sim.Duration // delivery gap around the crash
	bound       sim.Duration // T + 2H + restart + slop
	recovered   float64      // checkpointed progress / progress at crash
	consumedAt  int          // messages consumed when the node died
	restoredAt  int          // read cursor in the restored checkpoint
	dups, lost  int
	checkpoints int
}

// e13Run crashes a supervised reader mid-stream under heartbeat period
// h (confirm timeout 4h) and measures the unavailability window and
// recovered-work ratio. Deterministic: same h, same numbers.
func e13Run(h sim.Duration) e13Metrics {
	const (
		msgs    = 30
		pace    = 300 * sim.Microsecond
		crashAt = 3 * sim.Millisecond
	)
	cfg := super.Config{
		HeartbeatEvery:  h,
		SuspectAfter:    2 * h,
		ConfirmAfter:    4 * h,
		CheckpointEvery: 1 * sim.Millisecond,
		RestartDelay:    1 * sim.Millisecond,
	}
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 5, Seed: 13})
	if err != nil {
		panic(err)
	}
	res := resmgr.NewVORX(sys.K, 5)
	if _, err := res.Allocate("app", 2); err != nil {
		panic(err)
	}
	sup := super.New(sys, sys.Host(0), res, cfg)
	eng := fault.New(sys.K, 13)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false)
	eng.CrashNodeAt(crashAt, 1)

	var (
		deliveries []sim.Time
		consumed   int // live read cursor, sampled at the crash
		sampledC   int
		restoredK  = -1
		final      []string
	)
	writer := sup.NewTask("writer", sys.Node(0), 0, nil)
	reader := sup.NewTask("reader", sys.Node(1), 0, nil)
	writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ss := super.RestoreStream("e13", inc.State)
		ch := inc.Chan("e13")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "e13", objmgr.OpenAny)
			writer.Attach(ch)
		}
		writer.SetCheckpointer(ss)
		for ss.Written < msgs {
			if err := ch.Write(sp, 256, fmt.Sprintf("m%d", ss.Written)); err != nil {
				return
			}
			ss.Written++
			sp.SleepFor(pace)
		}
	})
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ss := super.RestoreStream("e13", inc.State)
		if inc.Gen > 0 && restoredK < 0 {
			restoredK = ss.Read
		}
		ch := inc.Chan("e13")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "e13", objmgr.OpenAny)
			reader.Attach(ch)
		}
		reader.SetCheckpointer(ss)
		for ss.Read < msgs {
			m, ok := ch.Read(sp)
			if !ok {
				return
			}
			ss.Log = append(ss.Log, m.Payload.(string))
			ss.Read++
			consumed = ss.Read
			deliveries = append(deliveries, sp.Now())
		}
		final = ss.Log
	})
	sys.K.At(sim.Time(crashAt), func() { sampledC = consumed })
	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(100 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		panic(err)
	}

	m := e13Metrics{heartbeat: h, confirm: cfg.ConfirmAfter, checkpoints: sup.Checkpoints}
	if confirm, ok := sup.FirstRecord("confirm"); ok {
		m.detect = confirm.At.Sub(sim.Time(crashAt))
	}
	// Unavailability: the largest delivery gap (the stream pauses from
	// the last pre-crash delivery to the first post-restart one).
	for i := 1; i < len(deliveries); i++ {
		if gap := deliveries[i].Sub(deliveries[i-1]); gap > m.unavail {
			m.unavail = gap
		}
	}
	m.bound = cfg.ConfirmAfter + 2*h + cfg.RestartDelay + 1*sim.Millisecond
	m.consumedAt = sampledC
	m.restoredAt = restoredK
	if sampledC > 0 && restoredK >= 0 {
		m.recovered = float64(restoredK) / float64(sampledC)
	}
	// Exactly-once audit of the final log.
	seen := map[string]int{}
	for _, p := range final {
		seen[p]++
	}
	for i := 0; i < msgs; i++ {
		switch n := seen[fmt.Sprintf("m%d", i)]; {
		case n == 0:
			m.lost++
		case n > 1:
			m.dups += n - 1
		}
	}
	if len(final) == 0 {
		m.lost = msgs // the reader never finished at all
	}
	return m
}

// E13Supervision sweeps the supervisor's detection interval and
// reports the unavailability window (delivery gap around a node crash)
// and the recovered-work ratio (checkpointed progress at restart over
// progress at the moment of death). Faster heartbeats shrink the
// window; the checkpoint interval, not detection, governs how much
// work survives. Every row is exactly-once: zero duplicates, zero
// losses.
func E13Supervision() *Table {
	t := &Table{
		ID:    "E13",
		Title: "Supervised checkpoint/restart: unavailability vs. detection interval (extension)",
		Header: []string{"heartbeat", "confirm", "detect latency", "unavail window",
			"bound", "recovered work", "dup", "lost"},
	}
	for _, h := range []sim.Duration{250 * sim.Microsecond, 500 * sim.Microsecond,
		1 * sim.Millisecond, 2 * sim.Millisecond} {
		m := e13Run(h)
		t.AddRow(
			fmt.Sprintf("%v", m.heartbeat),
			fmt.Sprintf("%v", m.confirm),
			fmt.Sprintf("%v", m.detect),
			fmt.Sprintf("%v", m.unavail),
			fmt.Sprintf("%v", m.bound),
			fmt.Sprintf("%d/%d (%.0f%%)", m.restoredAt, m.consumedAt, 100*m.recovered),
			fmt.Sprintf("%d", m.dups),
			fmt.Sprintf("%d", m.lost),
		)
	}
	t.Note("a supervised reader node dies at 3 ms mid-stream; heartbeat detection (confirm = 4H), checkpoint every 1 ms, restart cost 1 ms")
	t.Note("unavail window = largest delivery gap at the reader; bound = confirm + 2H sweep slop + restart + 1 ms replay slop")
	t.Note("recovered work = checkpointed read cursor at restart / messages consumed at the crash — set by the checkpoint interval, not by detection")
	return t
}
