package vorxbench

import "testing"

// TestStormScheduleDeterminism: the generated storm is a pure
// function of its seed, and every generated schedule passes the
// DSL's whole-schedule validation (StormVerifyRun panics otherwise).
func TestStormScheduleDeterminism(t *testing.T) {
	if a, b := StormSchedule(42), StormSchedule(42); a != b {
		t.Fatalf("seed 42 diverged:\n%s----\n%s", a, b)
	}
	if a, c := StormSchedule(42), StormSchedule(43); a == c {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestStormSweepInvariantClean runs a slice of the CI storm sweep
// in-repo: 100 seeded rebalance storms, every run invariant-checked
// at both the channel and virtualization layers. Zero violations is
// the bar, and the sweep must actually migrate and fence.
func TestStormSweepInvariantClean(t *testing.T) {
	if testing.Short() {
		t.Skip("storm sweep is the long way around; CI runs the full 1000")
	}
	sw := RunStormSweep(1, 100)
	if sw.Violations != 0 {
		t.Fatalf("%d violations across seeds %v", sw.Violations, sw.BadSeeds)
	}
	if sw.Migrations == 0 {
		t.Fatal("storm sweep migrated nothing — rebalance ops not biting")
	}
	if sw.Delivered < sw.Expected*9/10 {
		t.Fatalf("delivered %d of %d expected — storms are killing runs outright", sw.Delivered, sw.Expected)
	}
}

// TestStormVerifyRunDeterminism: one full storm run is bit-stable.
func TestStormVerifyRunDeterminism(t *testing.T) {
	a, b := StormVerifyRun(7), StormVerifyRun(7)
	if a.Delivered != b.Delivered || a.Migrations != b.Migrations ||
		a.Stale != b.Stale || a.Dups != b.Dups ||
		len(a.Violations) != len(b.Violations) {
		t.Fatalf("seed 7 diverged: %+v vs %+v", a, b)
	}
}
