package vorxbench

import (
	"testing"
)

func TestSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, id := range IDs() {
		tb := ByID(id)
		if tb == nil {
			t.Fatalf("missing experiment %s", id)
		}
		t.Logf("\n%s", tb.String())
	}
}
