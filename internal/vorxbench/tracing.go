package vorxbench

import (
	"fmt"
	"sort"
	"time"

	"hpcvorx/internal/core"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/workload"
)

// e14run is one all-to-one run with or without the unified tracer.
type e14run struct {
	makespan sim.Duration  // workload start..finish in virtual time
	quiesce  sim.Time      // kernel time at quiescence
	wall     time.Duration // host wall clock for the whole run
	events   int
	sys      *core.System
}

func e14Run(traced bool) e14run {
	sys, err := core.Build(core.Config{Nodes: 20, Seed: 1})
	if err != nil {
		panic(err)
	}
	if traced {
		sys.Trace.Enable()
	}
	w0 := time.Now()
	mk := workload.ManyToOne(sys, 800, 10)
	return e14run{makespan: mk, quiesce: sys.K.Now(), wall: time.Since(w0), events: sys.Trace.Len(), sys: sys}
}

// E14TracingOverhead measures the cost of the unified event tracer on
// the standard all-to-one workload (the vorx links demo: 20 nodes,
// 800-byte messages, 10 per sender). The design claim is that tracing
// is recorded host-side only, so virtual time must be bit-identical
// with tracing on; only wall clock and memory may pay.
func E14TracingOverhead() *Table {
	off := e14Run(false)
	on := e14Run(true)
	t := &Table{
		ID:     "E14",
		Title:  "Unified tracing overhead, all-to-one on 20 nodes (extension)",
		Header: []string{"metric", "tracing off", "tracing on"},
	}
	t.AddRow("virtual makespan", fmt.Sprintf("%v", off.makespan), fmt.Sprintf("%v", on.makespan))
	t.AddRow("virtual quiesce", fmt.Sprintf("%v", off.quiesce), fmt.Sprintf("%v", on.quiesce))
	t.AddRow("events recorded", fmt.Sprintf("%d", off.events), fmt.Sprintf("%d", on.events))
	t.AddRow("wall clock", fmt.Sprintf("%.1f ms", float64(off.wall.Microseconds())/1000),
		fmt.Sprintf("%.1f ms", float64(on.wall.Microseconds())/1000))
	if off.makespan == on.makespan && off.quiesce == on.quiesce {
		t.Note("virtual-time perturbation: zero — the traced run is bit-identical in virtual time")
	} else {
		t.Note("virtual-time perturbation DETECTED: makespan %v vs %v — tracing must not alter the simulation",
			off.makespan, on.makespan)
	}
	if off.wall > 0 {
		t.Note("wall-clock overhead: %.0f%% (host-side recording only; varies run to run)",
			100*(float64(on.wall)-float64(off.wall))/float64(off.wall))
	}

	// Metrics the traced run collected: fabric refusals and the
	// utilization of the busiest links over the run.
	snap := on.sys.Trace.Metrics().Snapshot()
	t.Note("fabric flow control: %.0f blocked link requests while delivering %.0f messages (%.0f KB)",
		snap["hpc.blocked"], snap["hpc.delivered"], snap["hpc.bytes"]/1024)
	stats := on.sys.IC.LinkStats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Busy > stats[j].Busy })
	span := on.quiesce.Sub(sim.Time(0))
	for i, ls := range stats {
		if i >= 3 || ls.Busy == 0 {
			break
		}
		t.Note("link utilization #%d: %-6s %5.1f%% busy, %d messages",
			i+1, ls.Name, 100*float64(ls.Busy)/float64(span), ls.Messages)
	}
	return t
}
