package vorxbench

import (
	"fmt"
	"time"

	"hpcvorx/internal/core"
	"hpcvorx/internal/obs"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/workload"
)

// E18 is the latency observatory's showcase: the same comm-profile
// sweep E15 times end-to-end, but decomposed — each write's
// virtual-time latency attributed to wire / queue / interrupt /
// recovery components by the causal critical-path analyzer, so the
// table shows not just that the pipelined generation is faster but
// where the time it saved used to go. A congested all-to-one row
// exercises the busy-stall component. The analyzer and series sampler
// ride the tracer's forward sink; the overhead notes price that
// host-side cost and assert it perturbs virtual time not at all.

// e18point is one analyzed run.
type e18point struct {
	rep     *obs.Report
	mk      sim.Duration // workload virtual makespan
	quiesce sim.Time
	wall    time.Duration
	samples int
}

// e18Run executes wl on a fresh system, optionally with the full
// observatory (tracer + analyzer + series sampler) attached.
func e18Run(cfg core.Config, analyzed bool, wl func(sys *core.System) sim.Duration) e18point {
	sys, err := core.Build(cfg)
	if err != nil {
		panic(err)
	}
	var an *obs.Analyzer
	var smp *obs.Sampler
	if analyzed {
		sys.Trace.Enable()
		an = obs.NewAnalyzer()
		smp = obs.NewSampler(sys.Trace.Metrics(), 500*sim.Microsecond)
		sys.Trace.SetForward(obs.Tee(an, smp))
	}
	w0 := time.Now()
	mk := wl(sys)
	p := e18point{mk: mk, quiesce: sys.K.Now(), wall: time.Since(w0)}
	if analyzed {
		smp.Flush(sys.K.Now())
		p.rep = an.Report()
		p.samples = smp.Len()
	}
	return p
}

func e18Stream(cp core.CommProfile, analyzed bool) e18point {
	return e18Run(core.Config{Nodes: 2, Seed: 1, Comm: cp}, analyzed, func(sys *core.System) sim.Duration {
		return workload.Stream(sys, 8192, 64)
	})
}

func e18ManyToOne(analyzed bool) e18point {
	return e18Run(core.Config{Nodes: 20, Seed: 1}, analyzed, func(sys *core.System) sim.Duration {
		return workload.ManyToOne(sys, 800, 10)
	})
}

// e18Decomp renders wire/queue/interrupt shares; e18Recovery the
// busy+retransmit+migration share.
func e18Decomp(rep *obs.Report) string {
	return fmt.Sprintf("%.0f/%.0f/%.0f",
		100*rep.Share(obs.CompWire), 100*rep.Share(obs.CompQueue), 100*rep.Share(obs.CompInterrupt))
}

// decompCell is e18Decomp for tables whose rows may carry no traced
// channel writes at all (e.g. the UDO transport).
func decompCell(rep *obs.Report) string {
	if rep == nil || rep.CompleteWrites() == 0 {
		return "-"
	}
	return e18Decomp(rep)
}

func e18Recovery(rep *obs.Report) string {
	return fmt.Sprintf("%.1f",
		100*(rep.Share(obs.CompBusy)+rep.Share(obs.CompRetransmit)+rep.Share(obs.CompMigration)))
}

// E18LatencyObservatory sweeps comm profiles under the critical-path
// analyzer and reports the latency decomposition per profile.
func E18LatencyObservatory() *Table {
	t := &Table{
		ID:    "E18",
		Title: "latency observatory: per-component attribution across comm profiles",
		Header: []string{"workload", "profile", "writes", "p50 (us)", "p99 (us)",
			"wire/queue/intr (%)", "recovery (%)"},
	}

	cases := []struct {
		label string
		cp    core.CommProfile
	}{
		{"classic", core.Classic()},
		{"window 8", core.CommProfile{Window: 8}},
		{"window 8 depth 4", core.CommProfile{Window: 8, OutputDepth: 4}},
		{"pipelined", core.Pipelined()},
	}
	exact, total, pipeSamples := 0, 0, 0
	for _, c := range cases {
		p := e18Stream(c.cp, true)
		rep := p.rep
		if c.label == "pipelined" {
			pipeSamples = p.samples
		}
		t.AddRow(
			"stream 64x8KB",
			c.label,
			fmt.Sprint(rep.CompleteWrites()),
			us(rep.Quantile("end_to_end", 0.50)/1e3),
			us(rep.Quantile("end_to_end", 0.99)/1e3),
			e18Decomp(rep),
			e18Recovery(rep),
		)
		if rep.Check() == nil {
			exact += rep.CompleteWrites()
		}
		total += rep.CompleteWrites()
	}

	many := e18ManyToOne(true)
	t.AddRow(
		"all-to-one 19x10",
		"classic",
		fmt.Sprint(many.rep.CompleteWrites()),
		us(many.rep.Quantile("end_to_end", 0.50)/1e3),
		us(many.rep.Quantile("end_to_end", 0.99)/1e3),
		e18Decomp(many.rep),
		e18Recovery(many.rep),
	)
	if many.rep.Check() == nil {
		exact += many.rep.CompleteWrites()
	}
	total += many.rep.CompleteWrites()

	t.Note("decomposition is an accounting identity: component sums equal end-to-end "+
		"virtual latency exactly for %d/%d writes", exact, total)
	t.Note("the pipelined generation converts the stream's queueing share into overlap; " +
		"the congested all-to-one pays in busy/retransmit recovery instead")
	t.Note("series sampler: %d virtual-time samples at 500us over the pipelined stream run", pipeSamples)

	// Observatory overhead: same run with and without the analyzer.
	// Virtual time must be bit-identical; only host wall clock pays.
	plain := e18Stream(core.Classic(), false)
	analyzed := e18Stream(core.Classic(), true)
	if plain.mk == analyzed.mk && plain.quiesce == analyzed.quiesce {
		t.Note("virtual-time perturbation: zero — analyzed run is bit-identical in virtual time")
	} else {
		t.Note("virtual-time perturbation DETECTED: %v vs %v — the observatory must not alter the simulation",
			plain.mk, analyzed.mk)
	}
	if plain.wall > 0 {
		t.Note("analyzer wall-clock overhead: %.0f%% on this host (host-side only; varies run to run)",
			100*(float64(analyzed.wall)-float64(plain.wall))/float64(plain.wall))
	}
	return t
}
