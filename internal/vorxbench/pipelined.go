package vorxbench

import (
	"fmt"

	"hpcvorx/internal/core"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/spice"
	"hpcvorx/internal/workload"
)

// E15Pipelined evaluates the pipelined communication fast path against
// the classic stop-and-wait stack: a virtual-time sweep over window
// size × output buffer depth × interrupt-coalesce horizon for a
// large-write stream (the paper's retrospective lesson that the system
// got fast by evolving its protocols), plus the SPICE fine-grain
// boundary-exchange workload under both profiles with the UDO
// transport as the paper's 60 µs reference point.
func E15Pipelined() *Table {
	t := &Table{
		ID:     "E15",
		Title:  "Pipelined fast path: window x depth x coalesce (virtual time)",
		Header: []string{"workload", "window", "depth", "coalesce", "result", "speedup", "wire/queue/intr (%)"},
	}

	// Large-write stream: 64 writes of 8 KB (8 fragments each) down one
	// channel. Classic stop-and-waits a full kernel round-trip per
	// write; the window keeps fragment trains on the wire. Each run
	// carries the critical-path analyzer (virtual time is unperturbed;
	// E18 asserts that) so every row also shows where the latency went.
	const size, msgs = 8192, 64
	stream := func(cp core.CommProfile) e18point {
		return e18Run(core.Config{Nodes: 2, Seed: 1, Comm: cp}, true, func(sys *core.System) sim.Duration {
			return workload.Stream(sys, size, msgs)
		})
	}
	type cfg struct {
		coalesce string
		cp       core.CommProfile
	}
	cases := []cfg{
		{"off", core.Classic()},
		{"off", core.CommProfile{Window: 2}},
		{"off", core.CommProfile{Window: 4}},
		{"off", core.CommProfile{Window: 8}},
		{"off", core.CommProfile{Window: 8, OutputDepth: 2}},
		{"off", core.CommProfile{Window: 8, OutputDepth: 4}},
		{"0", core.Pipelined()},
		{"200µs", core.CommProfile{Window: 8, OutputDepth: 4, Coalesce: true, CoalesceHorizon: 200 * sim.Microsecond}},
		{"500µs", core.CommProfile{Window: 8, OutputDepth: 4, Coalesce: true, CoalesceHorizon: 500 * sim.Microsecond}},
	}
	var base float64
	for _, c := range cases {
		p := stream(c.cp)
		el := p.mk
		mbps := float64(size*msgs) / el.Seconds() / 1e6
		perMsg := el.Microseconds() / msgs
		if base == 0 {
			base = el.Seconds()
		}
		t.AddRow(
			fmt.Sprintf("stream %dx%dB", msgs, size),
			fmt.Sprintf("%d", max(c.cp.Window, 1)),
			fmt.Sprintf("%d", max(c.cp.OutputDepth, 1)),
			c.coalesce,
			fmt.Sprintf("%.2f MB/s (%.0f µs/msg)", mbps, perMsg),
			fmt.Sprintf("%.2fx", base/el.Seconds()),
			decompCell(p.rep),
		)
	}

	// SPICE fine-grain: 4 procs exchanging tiny boundary messages every
	// Jacobi iteration — the workload whose per-message software
	// overhead drove the paper to UDOs.
	const gridN, procs, iters = 16, 4, 12
	solve := func(cp core.CommProfile, tr spice.Transport) e18point {
		return e18Run(core.Config{Nodes: procs, Seed: 1, Comm: cp}, true, func(sys *core.System) sim.Duration {
			g := spice.NewGrid(gridN)
			res, _, err := spice.Solve(sys, g, procs, iters, tr)
			if err != nil {
				panic(err)
			}
			return res.Elapsed
		})
	}
	spiceRow := func(label string, cp core.CommProfile, tr spice.Transport, base sim.Duration) sim.Duration {
		p := solve(cp, tr)
		el := p.mk
		if base == 0 {
			base = el
		}
		t.AddRow(
			fmt.Sprintf("spice %s", label),
			fmt.Sprintf("%d", max(cp.Window, 1)),
			fmt.Sprintf("%d", max(cp.OutputDepth, 1)),
			coalesceLabel(cp),
			fmt.Sprintf("%.2f ms solve", el.Milliseconds()),
			fmt.Sprintf("%.2fx", base.Seconds()/el.Seconds()),
			decompCell(p.rep),
		)
		return base
	}
	spiceBase := spiceRow("chan classic", core.Classic(), spice.Channels, 0)
	spiceRow("chan pipelined", core.Pipelined(), spice.Channels, spiceBase)
	spiceRow("udo classic", core.Classic(), spice.UDO, spiceBase)
	t.Note("stream speedups are vs the classic stop-and-wait row; spice speedups vs chan classic")
	t.Note("wire/queue/intr is the critical-path analyzer's latency decomposition (E18); " +
		"the UDO transport bypasses channel writes, so it has nothing to attribute")
	return t
}

// coalesceLabel renders a profile's interrupt-coalescing setting.
func coalesceLabel(cp core.CommProfile) string {
	if !cp.Coalesce {
		return "off"
	}
	if cp.CoalesceHorizon == 0 {
		return "0"
	}
	return fmt.Sprintf("%dµs", int(cp.CoalesceHorizon.Microseconds()))
}
