package vorxbench

import (
	"strings"
	"testing"
)

func TestShardSweepIdentity(t *testing.T) {
	s := RunShardSweep(1, 5, 4)
	if !s.OK() {
		var b strings.Builder
		s.Format(&b)
		t.Fatalf("sharded digests diverged from serial:\n%s", b.String())
	}
	if s.CrossPosts == 0 || s.Handoffs == 0 {
		t.Fatalf("sweep exercised no cross-shard work (posts=%d handoffs=%d)", s.CrossPosts, s.Handoffs)
	}
	if s.Delivered == 0 {
		t.Fatal("sweep delivered nothing")
	}
}

func TestShardRunCrashSurvivesBoundary(t *testing.T) {
	// Any seed crashes one node mid-traffic; the run must complete
	// (in-flight cross-shard messages freed, peers fenced or retried)
	// with most traffic delivered.
	r := ShardChaosRun(3, 4)
	if r.Delivered == 0 {
		t.Fatal("crash schedule delivered nothing")
	}
	if r.Shards != 4 {
		t.Fatalf("built %d shards, want 4", r.Shards)
	}
}
