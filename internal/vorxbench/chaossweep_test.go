package vorxbench

import "testing"

// TestChaosScheduleDeterminism: the generated schedule is a pure
// function of its seed.
func TestChaosScheduleDeterminism(t *testing.T) {
	if a, b := ChaosSchedule(42), ChaosSchedule(42); a != b {
		t.Fatalf("seed 42 diverged:\n%s----\n%s", a, b)
	}
	if a, c := ChaosSchedule(42), ChaosSchedule(43); a == c {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestChaosSweepInvariantClean runs a slice of the CI sweep in-repo:
// 200 seeded schedules mixing partitions, gray degradation, and
// crashes, every run invariant-checked. Zero violations is the bar.
func TestChaosSweepInvariantClean(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is the long way around; CI runs the full 1000")
	}
	sw := RunChaosSweep(1, 200)
	if sw.Violations != 0 {
		t.Fatalf("%d violations across seeds %v", sw.Violations, sw.BadSeeds)
	}
	if sw.Delivered == 0 || sw.Dups == 0 {
		t.Fatalf("sweep too tame to mean anything: delivered=%d dups=%d (faults not biting?)",
			sw.Delivered, sw.Dups)
	}
	if sw.Delivered < sw.Expected*9/10 {
		t.Fatalf("delivered %d of %d expected — schedules are killing runs outright", sw.Delivered, sw.Expected)
	}
}

// TestChaosVerifyRunDeterminism: one full chaos-verify run is
// bit-stable — same seed, same deliveries, same retransmits, same
// (empty) violation list.
func TestChaosVerifyRunDeterminism(t *testing.T) {
	a, b := ChaosVerifyRun(7), ChaosVerifyRun(7)
	if a.Delivered != b.Delivered || a.Dups != b.Dups || a.Retrans != b.Retrans ||
		len(a.Violations) != len(b.Violations) {
		t.Fatalf("seed 7 diverged: %+v vs %+v", a, b)
	}
}
