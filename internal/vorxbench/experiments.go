package vorxbench

import (
	"fmt"
	"math/rand"

	"hpcvorx/internal/bitmap"
	"hpcvorx/internal/core"
	"hpcvorx/internal/fft"
	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
	"hpcvorx/internal/spice"
	"hpcvorx/internal/stub"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/udo"
	"hpcvorx/internal/workload"
)

// Table1Sizes and Table1Buffers are the paper's sweep axes.
var (
	Table1Sizes   = []int{4, 64, 256, 1024}
	Table1Buffers = []int{1, 2, 4, 8, 16, 32, 64}
	// Table1Paper holds the published values, [buffer][size] µs/msg.
	Table1Paper = map[int]map[int]float64{
		1:  {4: 414, 64: 451, 256: 574, 1024: 1071},
		2:  {4: 290, 64: 317, 256: 412, 1024: 787},
		4:  {4: 227, 64: 251, 256: 330, 1024: 644},
		8:  {4: 196, 64: 218, 256: 289, 1024: 573},
		16: {4: 179, 64: 200, 256: 267, 1024: 535},
		32: {4: 172, 64: 192, 256: 257, 1024: 518},
		64: {4: 164, 64: 184, 256: 248, 1024: 504},
	}
	// Table2Paper holds the published channel latencies by size.
	Table2Paper = map[int]float64{4: 303, 64: 341, 256: 474, 1024: 997}
)

// WindowLatency measures the Table 1 benchmark for one (size, buffers)
// point: 1000 messages, elapsed at the sender divided by the count.
func WindowLatency(size, buffers, rounds int) float64 {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	ws := udo.NewWindowSender(sys.Node(0).IF, "t1", sys.Node(1).EP, size)
	wr := udo.NewWindowReceiver(sys.Node(1).IF, "t1", sys.Node(0).EP, size, buffers)
	var start, end sim.Time
	sys.Spawn(sys.Node(0), "sender", 0, func(sp *kern.Subprocess) {
		sp.SleepFor(sim.Milliseconds(2))
		start = sp.Now()
		for i := 0; i < rounds; i++ {
			ws.Send(sp, nil)
		}
		end = sp.Now()
	})
	sys.Spawn(sys.Node(1), "receiver", 0, func(sp *kern.Subprocess) {
		wr.Start(sp)
		for i := 0; i < rounds; i++ {
			wr.Recv(sp)
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start).Microseconds() / float64(rounds)
}

// Table1 reproduces "Message Latency for Reader-Active Communications
// Protocol".
func Table1() *Table {
	t := &Table{
		ID:    "T1",
		Title: "Message latency for reader-active (sliding-window) protocol, µs/msg",
		Header: []string{"buffers",
			"4B", "4B(paper)", "64B", "64B(paper)",
			"256B", "256B(paper)", "1024B", "1024B(paper)"},
	}
	for _, k := range Table1Buffers {
		row := []string{fmt.Sprint(k)}
		for _, size := range Table1Sizes {
			got := WindowLatency(size, k, 1000)
			row = append(row, us1(got), us(Table1Paper[k][size]))
		}
		t.AddRow(row...)
	}
	t.Note("1000 messages per point, elapsed measured at the sender, as in the paper")
	return t
}

// ChannelLatency measures the Table 2 benchmark for one size.
func ChannelLatency(size, rounds int) float64 {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	return workload.ChannelLatency(sys, sys.Node(0), sys.Node(1), size, rounds)
}

// Table2 reproduces "Message Latency for Channel Communications".
func Table2() *Table {
	t := &Table{
		ID:     "T2",
		Title:  "Message latency for channel communications (stop-and-wait), µs/msg",
		Header: []string{"size", "measured", "paper"},
	}
	for _, size := range Table1Sizes {
		got := ChannelLatency(size, 1000)
		t.AddRow(fmt.Sprintf("%dB", size), us1(got), us(Table2Paper[size]))
	}
	return t
}

// Figure1 reproduces the conceptual system diagram and the paper's
// flagship interconnect constructions.
func Figure1() *Table {
	t := &Table{
		ID:     "F1",
		Title:  "A typical local area multicomputer system (topology constructions)",
		Header: []string{"construction", "clusters", "cube-dim", "endpoints", "diameter", "ports-used/cluster"},
	}
	add := func(label string, tp *topo.Topology) {
		max := 0
		for c := 0; c < tp.Clusters(); c++ {
			if u := tp.PortsUsed(topo.ClusterID(c)); u > max {
				max = u
			}
		}
		t.AddRow(label, fmt.Sprint(tp.Clusters()), fmt.Sprint(tp.Dimension()),
			fmt.Sprint(tp.Endpoints()), fmt.Sprint(tp.Diameter()), fmt.Sprint(max))
	}
	single, _ := topo.SingleCluster(12)
	add("single cluster (12 ports)", single)
	paper1988, _ := topo.IncompleteHypercube(20, 4) // 10 hosts + 70 nodes = 80 endpoints
	add("1988 installation (10 hosts + 70 nodes)", paper1988)
	big, _ := topo.IncompleteHypercube(256, 4)
	add("1024-node construction (paper §1)", big)
	odd, _ := topo.IncompleteHypercube(37, 4)
	add("incomplete: 37 clusters", odd)
	t.Note("paper §1: 1024 nodes from 256 clusters, 8 cube ports + 4 node ports each")
	return t
}

// E1ChannelThroughput reproduces the §4 intro numbers: 303 µs
// end-to-end latency and 1027 kbyte/s at 1024 bytes.
func E1ChannelThroughput() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Channel latency and throughput (paper §4)",
		Header: []string{"metric", "measured", "paper"},
	}
	lat := ChannelLatency(4, 1000)
	thr := 1024.0 / ChannelLatency(1024, 1000) * 1000 // kbyte/s
	t.AddRow("4-byte latency (µs)", us1(lat), "303")
	t.AddRow("1024-byte rate (kbyte/s)", us(thr), "1027")
	return t
}

// E2Download reproduces §3.3: 12 s per-process download vs 2 s tree
// download for 70 processes, with a node-count sweep.
func E2Download() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Download and start N processes (paper §3.3)",
		Header: []string{"processes", "per-process stubs (s)", "tree download (s)", "paper"},
	}
	run := func(n int, mode stub.Mode) float64 {
		sys, err := core.Build(core.Config{Hosts: 1, Nodes: n, Seed: 1})
		if err != nil {
			panic(err)
		}
		app := stub.Launch(sys, sys.Host(0), sys.Nodes(), stub.DefaultImage(), mode, nil)
		sys.RunFor(sim.Seconds(120))
		if !app.Ready() {
			panic("download did not complete")
		}
		sys.Shutdown()
		return app.StartedAt.Seconds()
	}
	for _, n := range []int{10, 40, 70} {
		paper := ""
		if n == 70 {
			paper = "12 vs 2"
		}
		t.AddRow(fmt.Sprint(n), secs(run(n, stub.PerProcess)), secs(run(n, stub.SharedTree)), paper)
	}
	t.Note("per-process time grows linearly with N (host-centralized work); the tree pipeline does not")
	return t
}

// E3UDOLatency reproduces the SPICE result of §4.1: 60 µs software
// latency for 64-byte messages with direct hardware access.
func E3UDOLatency() *Table {
	t := &Table{
		ID:     "E3",
		Title:  "User-defined object latency, direct access, no protocol (paper §4.1)",
		Header: []string{"size", "software latency (µs)", "paper"},
	}
	for _, size := range []int{4, 64, 256} {
		sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
		if err != nil {
			panic(err)
		}
		tx := udo.New(sys.Node(0).IF, "e3", true)
		rx := udo.New(sys.Node(1).IF, "e3", true)
		var t0, t1 sim.Time
		sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
			tx.Send(sp, sys.Node(1).EP, size, nil) // warm-up
			sp.SleepFor(sim.Milliseconds(1))
			t0 = sp.Now()
			tx.Send(sp, sys.Node(1).EP, size, nil)
		})
		sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
			rx.Recv(sp)
			rx.Recv(sp)
			t1 = sp.Now()
		})
		if err := sys.Run(); err != nil {
			panic(err)
		}
		wire := 2 * (sys.Costs.HopFixed + sys.Costs.WireTime(size+udo.RawHeader))
		sw := t1.Sub(t0) - wire
		paper := ""
		if size == 64 {
			paper = "60"
		}
		t.AddRow(fmt.Sprintf("%dB", size), us1(sw.Microseconds()), paper)
	}
	return t
}

// E4Bitmap reproduces the real-time bitmap experiment of §4.1.
func E4Bitmap() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Real-time bitmap transmission to a workstation (paper §4.1)",
		Header: []string{"metric", "measured", "paper"},
	}
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	res, err := bitmap.Stream(sys, sys.Node(0), sys.Host(0), bitmap.Width, bitmap.Height, 10)
	if err != nil {
		panic(err)
	}
	t.AddRow("bandwidth (Mbyte/s)", fmt.Sprintf("%.2f", res.MBytesPerSec), "3.2")
	t.AddRow("900x900 mono refresh (Hz)", fmt.Sprintf("%.1f", res.FPS), "30")
	return t
}

// E5FFT reproduces the 2DFFT distribution comparison of §4.2.
func E5FFT() *Table {
	t := &Table{
		ID:    "E5",
		Title: "2DFFT redistribution: multicast vs per-receiver messages (paper §4.2)",
		Header: []string{"n", "procs", "strategy", "numbers read/proc", "paper(n=256,P=256)",
			"elapsed (ms)", "comm (ms)"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct{ n, p int }{{64, 4}, {64, 8}, {128, 8}, {128, 16}} {
		in := fft.NewMatrix(cfg.n)
		for i := range in.Data {
			in.Data[i] = complex(rng.Float64(), rng.Float64())
		}
		for _, strat := range []fft.Strategy{fft.Multicast, fft.Scatter} {
			sys, err := core.Build(core.Config{Nodes: cfg.p, Seed: 1})
			if err != nil {
				panic(err)
			}
			res, _, err := fft.Run2DFFT(sys, in, cfg.p, strat)
			if err != nil {
				panic(err)
			}
			paper := ""
			if strat == fft.Multicast {
				paper = "65536"
			} else {
				paper = "256"
			}
			comm := res.Elapsed - res.IdealCompute
			t.AddRow(fmt.Sprint(cfg.n), fmt.Sprint(cfg.p), strat.String(),
				fmt.Sprint(res.NumbersRead[0]), paper,
				fmt.Sprintf("%.1f", res.Elapsed.Milliseconds()),
				fmt.Sprintf("%.1f", comm.Milliseconds()))
		}
	}
	t.Note("multicast reads grow ~P-fold per processor; per-receiver messages carry only what is needed")
	return t
}

// E6SNETFlowControl reproduces §2: S/NET many-to-one overflow under
// the three recovery schemes, and the HPC hardware flow control.
func E6SNETFlowControl() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "Many-to-one flow control: S/NET schemes vs HPC hardware (paper §2)",
		Header: []string{"scheme", "workload", "delivered", "offered", "makespan (ms)", "paper's verdict"},
	}
	costs := m68k.DefaultCosts()
	runSNET := func(strategy func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy,
		senders, msgs, size int, horizon sim.Duration) (int, sim.Time) {
		k := sim.NewKernel(7)
		nw := snet.NewNetwork(k, costs, senders+1)
		s := strategy(k, nw)
		delivered := 0
		if res, ok := s.(*flowctl.Reservation); ok {
			res.SetDeliver(0, func(m snet.Message) { delivered++ })
		} else {
			nw.Station(0).SetDeliver(func(m snet.Message) { delivered++ })
			nw.Station(0).StartKernel()
		}
		var last sim.Time
		for i := 1; i <= senders; i++ {
			i := i
			k.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
				for j := 0; j < msgs; j++ {
					s.Send(p, nw.Station(i), 0, size, nil)
				}
				last = p.Now()
			})
		}
		k.RunFor(horizon)
		k.Shutdown()
		return delivered, last
	}

	var last sim.Time
	d, _ := runSNET(func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy { return &flowctl.SpinRetry{} },
		6, 20, 1000, sim.Seconds(2))
	t.AddRow("S/NET spin-retry", "6x20 msgs, 1000B", fmt.Sprint(d), "120", "-", "lockout: messages never received")

	d, _ = runSNET(func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy { return &flowctl.SpinRetry{} },
		12, 1, 150, sim.Seconds(2))
	t.AddRow("S/NET spin-retry", "12x1 msgs, 150B", fmt.Sprint(d), "12", "-", "fits the 2048B fifo: OK")

	d, last = runSNET(func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy {
		return &flowctl.RandomBackoff{Max: sim.Milliseconds(3)}
	}, 6, 20, 1000, sim.Seconds(8))
	t.AddRow("S/NET random backoff", "6x20 msgs, 1000B", fmt.Sprint(d), "120",
		fmt.Sprintf("%.1f", last.Sub(0).Milliseconds()), "works, at the timeout rate")

	d, last = runSNET(func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy {
		return flowctl.NewReservation(k, nw)
	}, 6, 20, 1000, sim.Seconds(8))
	t.AddRow("S/NET reservation", "6x20 msgs, 1000B", fmt.Sprint(d), "120",
		fmt.Sprintf("%.1f", last.Sub(0).Milliseconds()), "no overflow; taxes every message")

	// HPC: hardware flow control, channels on top.
	sys, err := core.Build(core.Config{Nodes: 7, Seed: 1})
	if err != nil {
		panic(err)
	}
	mk := workload.ManyToOne(sys, 1000, 20)
	t.AddRow("HPC hardware", "6x20 msgs, 1000B", "120", "120",
		fmt.Sprintf("%.1f", mk.Milliseconds()), "loss impossible, fair, no deadlock")
	return t
}

// E7Structuring reproduces §5: the 80 µs context switch and the
// cheaper program-structuring techniques.
func E7Structuring() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Program structuring overheads (paper §5)",
		Header: []string{"technique", "per-event overhead (µs)", "paper"},
	}
	costs := m68k.DefaultCosts()

	// Subprocess handoff via semaphores.
	{
		k := sim.NewKernel(1)
		n := kern.NewNode(k, costs, "n")
		const rounds = 200
		semA := n.NewSemaphore("a", 0)
		semB := n.NewSemaphore("b", 0)
		var start, end sim.Time
		n.SpawnSubprocess("ping", 0, func(sp *kern.Subprocess) {
			start = sp.Now()
			for i := 0; i < rounds; i++ {
				semA.V(sp)
				semB.P(sp)
			}
			end = sp.Now()
		})
		n.SpawnSubprocess("pong", 0, func(sp *kern.Subprocess) {
			for i := 0; i < rounds; i++ {
				semA.P(sp)
				semB.V(sp)
			}
		})
		if err := k.Run(); err != nil {
			panic(err)
		}
		perSwitch := end.Sub(start).Microseconds() / (2 * rounds)
		t.AddRow("subprocess context switch", us1(perSwitch), "80 (plus semaphores)")
	}

	// Coroutine switch.
	{
		k := sim.NewKernel(1)
		n := kern.NewNode(k, costs, "n")
		const rounds = 200
		var elapsed sim.Duration
		n.SpawnSubprocess("host", 0, func(sp *kern.Subprocess) {
			g := kern.NewCoroutineGroup(sp)
			for c := 0; c < 2; c++ {
				g.Add(fmt.Sprint(c), func(co *kern.Coroutine) {
					for i := 0; i < rounds; i++ {
						co.Yield()
					}
				})
			}
			s := sp.Now()
			g.Run()
			elapsed = sp.Now().Sub(s)
		})
		if err := k.Run(); err != nil {
			panic(err)
		}
		t.AddRow("coroutine switch", us1(elapsed.Microseconds()/(2*rounds)), "much less than 80")
	}

	// Interrupt-level programming: per-event cost is the interrupt
	// entry plus handler, with no register image to restore.
	{
		k := sim.NewKernel(1)
		n := kern.NewNode(k, costs, "n")
		const events = 200
		served := 0
		for i := 0; i < events; i++ {
			k.After(sim.Duration(i)*sim.Microseconds(200), func() {
				n.Interrupt(sim.Microseconds(5), func() { served++ })
			})
		}
		if err := k.Run(); err != nil {
			panic(err)
		}
		tot := n.Totals()
		t.AddRow("interrupt-level event", us1(tot[kern.CatSystem].Microseconds()/events),
			"no save/restore overhead")
	}
	return t
}

// E8OpenStorm reproduces §3.2: channel-open storm under the Meglos
// centralized manager vs the VORX distributed object managers.
func E8OpenStorm() *Table {
	t := &Table{
		ID:    "E8",
		Title: "Channel-open storm: centralized vs distributed object manager (paper §3.2)",
		Header: []string{"nodes", "manager", "opens", "elapsed (ms)",
			"max opens on one manager"},
	}
	for _, n := range []int{8, 16, 32} {
		for _, central := range []bool{true, false} {
			sys, err := core.Build(core.Config{Hosts: 1, Nodes: n, CentralizedManager: central, Seed: 1})
			if err != nil {
				panic(err)
			}
			res := workload.OpenStorm(sys, 6)
			label := "distributed"
			if central {
				label = "centralized"
			}
			t.AddRow(fmt.Sprint(n), label, fmt.Sprint(res.Opens),
				fmt.Sprintf("%.2f", res.Elapsed.Milliseconds()), fmt.Sprint(res.MaxPerManager))
		}
	}
	t.Note("distributed hashing spreads opens over as many managers as nodes, removing the bottleneck")
	return t
}

// E9Allocation demonstrates §3.1's allocation-policy trade-offs.
func E9Allocation() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Processor allocation policies (paper §3.1)",
		Header: []string{"scenario", "Meglos (allocate-at-run)", "VORX (allocate-before-run)"},
	}
	k := sim.NewKernel(1)
	mg := resmgr.NewMeglos(k, 8)
	vx := resmgr.NewVORX(k, 8)

	// Scenario: run, finish, recompile, rerun while a rival grabs all.
	app, _ := mg.StartApp("alice", 8, true)
	mg.EndApp(app)
	mine, _ := vx.Allocate("alice", 8)
	_, _ = mg.StartApp("bob", 8, true)
	_, bobErr := vx.Allocate("bob", 1)
	_, rerunErr := mg.StartApp("alice", 8, true)
	rerunVORX := len(vx.Owned("alice")) == 8

	t.AddRow("rival grabs processors during recompile",
		fmt.Sprintf("rerun fails: %v", rerunErr),
		fmt.Sprintf("rival refused (%v); rerun OK: %v", bobErr != nil, rerunVORX))

	// Scenario: user forgets to free.
	owners := vx.ForceFree(mine)
	t.AddRow("user forgets to free",
		"n/a (freed automatically at exit)",
		fmt.Sprintf("force-free reclaims from %v (use carefully)", owners))
	return t
}

// spiceComparison is exported for the benchmarks: UDO vs channels
// solve time (supporting E3's story).
func SpiceComparison(gridN, procs, iters int) (chMS, udoMS float64) {
	run := func(tr spice.Transport) float64 {
		sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
		if err != nil {
			panic(err)
		}
		g := spice.NewGrid(gridN)
		res, _, err := spice.Solve(sys, g, procs, iters, tr)
		if err != nil {
			panic(err)
		}
		return res.Elapsed.Milliseconds()
	}
	return run(spice.Channels), run(spice.UDO)
}
