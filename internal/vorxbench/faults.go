package vorxbench

import (
	"fmt"

	"hpcvorx/internal/core"
	"hpcvorx/internal/dfs"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
)

// E12FaultStorm measures the LAM's recovery behaviour under a seeded
// fault storm: an HPC cube-link failure (traffic reroutes, nothing is
// lost), a node crash (channel peers get errors, the resource manager
// force-frees the dead node's processors — §3.1), and a DFS host crash
// (clients fail over to the surviving replica). All faults fire from
// the deterministic fault engine, so the row is reproducible
// bit-for-bit.
func E12FaultStorm() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "Fault storm: recovery latency and exactly-once delivery (extension)",
		Header: []string{"scenario", "injected fault", "recovery observed"},
	}

	// --- One storm over a 4-cluster LAM (2 hosts + 14 nodes). ---
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 14, Seed: 12})
	if err != nil {
		panic(err)
	}
	res := resmgr.NewVORX(sys.K, 14)
	if _, err := res.Allocate("alice", 14); err != nil {
		panic(err)
	}
	eng := fault.New(sys.K, 12)
	eng.Bind(sys)
	eng.BindResmgr(res)
	linkDownAt := 1 * sim.Millisecond
	crashAt := 2 * sim.Millisecond
	eng.CubeLinkDownAt(linkDownAt, 0, 2)
	eng.CubeLinkUpAt(8*sim.Millisecond, 0, 2)
	eng.CrashNodeAt(crashAt, 6)

	// Pair A crosses the failed link (node1 on cluster 0 → node8 on
	// cluster 2); pair B's reader is the crashed node6; pair C is an
	// unaffected control (cluster 1 → cluster 3).
	const msgs = 24
	const size = 512
	type pairRes struct {
		recv     int
		dups     int
		deliverT []sim.Time
		writeErr error
		errAt    sim.Time
	}
	pairs := [][2]int{{1, 8}, {0, 6}, {2, 12}}
	results := make([]pairRes, len(pairs))
	for pi, pr := range pairs {
		pi, pr := pi, pr
		name := fmt.Sprintf("e12-%d", pi)
		wm, rm := sys.Node(pr[0]), sys.Node(pr[1])
		sys.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < msgs; i++ {
				if err := ch.Write(sp, size, i); err != nil {
					results[pi].writeErr = err
					results[pi].errAt = sp.Now()
					return
				}
			}
		})
		sys.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			want := 0
			for i := 0; i < msgs; i++ {
				m, ok := ch.Read(sp)
				if !ok {
					return
				}
				if m.Payload.(int) < want {
					results[pi].dups++
				}
				want = m.Payload.(int) + 1
				results[pi].recv++
				results[pi].deliverT = append(results[pi].deliverT, sp.Now())
			}
		})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}

	// Link failure: every message arrived, via the detour while down.
	var firstDetour sim.Duration = -1
	for _, at := range results[0].deliverT {
		if at > sim.Time(linkDownAt) {
			firstDetour = at.Sub(sim.Time(linkDownAt))
			break
		}
	}
	detourMsgs := 0
	for _, ls := range sys.IC.LinkStats() {
		if ls.Name == "cube3-2" {
			detourMsgs = ls.Messages
		}
	}
	t.AddRow("HPC link failure",
		"cube link 0-2 down 1-8 ms",
		fmt.Sprintf("%d/%d delivered, 0 lost; %d msgs detoured 0-1-3-2; first detour delivery +%.0f µs after failure",
			results[0].recv, msgs, detourMsgs, firstDetour.Microseconds()))

	// Node crash: the writer got an error (not a hang) and the dead
	// node's processor was force-freed.
	errLatency := results[1].errAt.Sub(sim.Time(crashAt))
	t.AddRow("node crash",
		"node6 dies at 2 ms",
		fmt.Sprintf("writer unblocked with error +%.0f µs after crash; processors force-freed: %d (node6 owner now %q, node5 still \"alice\")",
			errLatency.Microseconds(), res.ForceFrees, res.OwnerOf(6)))

	// Exactly-once: surviving pairs saw every message once, in order.
	t.AddRow("exactly-once under storm",
		"all of the above",
		fmt.Sprintf("surviving pairs received %d+%d/%d each, %d duplicates, %d timeout retransmits",
			results[0].recv, results[2].recv, msgs,
			results[0].dups+results[2].dups, totalTimeoutRetrans(sys)))

	// --- DFS failover: separate small system. ---
	dsys, err := core.Build(core.Config{Hosts: 2, Nodes: 2, Seed: 9})
	if err != nil {
		panic(err)
	}
	fs := dfs.New(dsys, dsys.Hosts(), 2)
	deng := fault.New(dsys.K, 9)
	deng.Bind(dsys)
	deng.BindDFS(fs)
	const file = "boot.image"
	primary := fs.ReplicaHosts(file)[0]
	var normal, failover sim.Duration
	var failErr error
	cm := dsys.Node(0)
	client := fs.NewClient(cm)
	dsys.Spawn(cm, "client", 0, func(sp *kern.Subprocess) {
		if err := client.Create(sp, file); err != nil {
			failErr = err
			return
		}
		if err := client.Append(sp, file, make([]byte, 4096)); err != nil {
			failErr = err
			return
		}
		t0 := sp.Now()
		if _, err := client.Read(sp, file); err != nil {
			failErr = err
			return
		}
		normal = sp.Now().Sub(t0)
		sp.SleepFor(20 * sim.Millisecond) // host crash + detection pass
		t1 := sp.Now()
		_, failErr = client.Read(sp, file)
		failover = sp.Now().Sub(t1)
	})
	deng.CrashHostAt(10*sim.Millisecond, primary)
	if err := dsys.Run(); err != nil {
		panic(err)
	}
	if failErr != nil {
		panic(fmt.Sprintf("E12 dfs failover: %v", failErr))
	}
	t.AddRow("DFS host crash",
		fmt.Sprintf("host%d (primary replica) dies at 10 ms", primary),
		fmt.Sprintf("4 KB read fails over to surviving replica: %.0f µs vs %.0f µs normal",
			failover.Microseconds(), normal.Microseconds()))

	t.Note("seeded fault engine (internal/fault): same seed + schedule reproduces this table bit-for-bit")
	t.Note("reproduce interactively: go run ./cmd/vorx chaos")
	return t
}

// totalTimeoutRetrans sums channel end-to-end timeout retransmissions
// across the system.
func totalTimeoutRetrans(sys *core.System) int {
	n := 0
	for _, m := range sys.Machines() {
		n += m.Chans.TimeoutRetransmits
	}
	return n
}
