package vorxbench

import (
	"runtime"
	"testing"
)

// TestWorkersClampedToCPUs: the resolved worker count never exceeds
// the CPUs actually available — share-nothing simulation workers are
// pure compute, and oversubscribing a small builder measurably slowed
// the suite (BENCH_pr4.json recorded a 0.86x "speedup" on one CPU).
func TestWorkersClampedToCPUs(t *testing.T) {
	cpus := runtime.NumCPU()
	if g := runtime.GOMAXPROCS(0); g < cpus {
		cpus = g
	}
	for _, req := range []int{0, -3, 1, 2, cpus, cpus + 1, 1000} {
		got := Workers(req)
		if got > cpus {
			t.Fatalf("Workers(%d) = %d, exceeds %d available CPUs", req, got, cpus)
		}
		if got < 1 {
			t.Fatalf("Workers(%d) = %d, want >= 1", req, got)
		}
	}
	if cpus >= 2 {
		if got := Workers(2); got != 2 {
			t.Fatalf("Workers(2) = %d on a %d-CPU machine, want 2", Workers(2), cpus)
		}
	}
	if got := Workers(0); got != cpus {
		t.Fatalf("Workers(0) = %d, want one per CPU (%d)", got, cpus)
	}
}

// TestRunIDsSerialParallelIdentical: the worker pool changes nothing
// about the rendered experiments, regardless of worker count.
func TestRunIDsSerialParallelIdentical(t *testing.T) {
	ids := []string{"E1", "E15"}
	serial := RunIDs(ids, 1)
	parallel := RunIDs(ids, 4)
	for i := range ids {
		if serial[i].String() != parallel[i].String() {
			t.Fatalf("experiment %s diverged between serial and parallel runs", ids[i])
		}
	}
}
