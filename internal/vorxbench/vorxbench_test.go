package vorxbench

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %s = %q: %v", row, col, tb.ID, tb.Rows[row][col], err)
	}
	return v
}

func TestTable2WithinOnePercentOfPaper(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		got := cell(t, tb, i, 1)
		paper := cell(t, tb, i, 2)
		if math.Abs(got-paper)/paper > 0.01 {
			t.Errorf("%s: %.1f vs paper %.0f", tb.Rows[i][0], got, paper)
		}
	}
}

func TestTable1EndpointsAndShape(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != len(Table1Buffers) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Columns: buffers, then (measured, paper) pairs per size.
	for sizeIdx := range Table1Sizes {
		col := 1 + 2*sizeIdx
		prev := math.Inf(1)
		for r := range tb.Rows {
			v := cell(t, tb, r, col)
			if v > prev+6 {
				t.Errorf("size %d: not monotone at row %d (%.1f after %.1f)",
					Table1Sizes[sizeIdx], r, v, prev)
			}
			prev = v
		}
		// Endpoints within 10%.
		first := cell(t, tb, 0, col)
		last := cell(t, tb, len(tb.Rows)-1, col)
		if p := Table1Paper[1][Table1Sizes[sizeIdx]]; math.Abs(first-p)/p > 0.10 {
			t.Errorf("size %d k=1: %.1f vs paper %.0f", Table1Sizes[sizeIdx], first, p)
		}
		if p := Table1Paper[64][Table1Sizes[sizeIdx]]; math.Abs(last-p)/p > 0.10 {
			t.Errorf("size %d k=64: %.1f vs paper %.0f", Table1Sizes[sizeIdx], last, p)
		}
	}
}

func TestE2DownloadAgreement(t *testing.T) {
	tb := E2Download()
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "70" {
		t.Fatalf("last row = %v", last)
	}
	per, _ := strconv.ParseFloat(last[1], 64)
	tree, _ := strconv.ParseFloat(last[2], 64)
	if per < 10.5 || per > 13.5 {
		t.Errorf("per-process = %.2f s, paper 12", per)
	}
	if tree < 0.8 || tree > 3.2 {
		t.Errorf("tree = %.2f s, paper 2", tree)
	}
	if per/tree < 4 {
		t.Errorf("speedup only %.1fx", per/tree)
	}
}

func TestE8CentralizedScalesWorseThanDistributed(t *testing.T) {
	tb := E8OpenStorm()
	// Rows alternate centralized/distributed for n = 8, 16, 32.
	var cent, dist []float64
	for _, row := range tb.Rows {
		ms, _ := strconv.ParseFloat(row[3], 64)
		if row[1] == "centralized" {
			cent = append(cent, ms)
		} else {
			dist = append(dist, ms)
		}
	}
	if len(cent) != 3 || len(dist) != 3 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	centGrowth := cent[2] / cent[0]
	distGrowth := dist[2] / dist[0]
	if centGrowth < 2.5 {
		t.Errorf("centralized growth 8→32 nodes = %.2fx, should be ~linear (4x)", centGrowth)
	}
	if distGrowth > 2.0 {
		t.Errorf("distributed growth = %.2fx, should be nearly flat", distGrowth)
	}
}

func TestSpiceComparisonFavorsUDO(t *testing.T) {
	ch, udo := SpiceComparison(16, 4, 30)
	if udo >= ch {
		t.Fatalf("udo %.1fms not below channels %.1fms", udo, ch)
	}
}

func TestByIDAndIDs(t *testing.T) {
	if ByID("nope") != nil {
		t.Fatal("unknown id should be nil")
	}
	if tb := ByID("t2"); tb == nil || tb.ID != "T2" {
		t.Fatal("case-insensitive lookup failed")
	}
	if len(IDs()) != 29 {
		t.Fatalf("ids = %v", IDs())
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Note("hello %d", 7)
	out := tb.String()
	for _, want := range []string{"== X: demo ==", "a  bb", "1  2", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
