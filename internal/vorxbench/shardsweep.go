package vorxbench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// The shard sweep is the determinism gate for the parallel kernel:
// every seeded schedule runs once on a single shard and once split
// over four, and the two outcome digests must match byte-for-byte.
// Schedules stick to crash/restart and gray slowdowns — the faults a
// sharded build supports. Partitions and link faults need
// zero-lookahead rerouting and are rejected by the sharded fabric
// (SetCubeLinkDown panics), and gray frame-dropping draws on the fault
// engine's own random stream, which a split simulation does not share;
// neither belongs in a byte-identity check.

const (
	shardSweepPairs = 7
	shardSweepMsgs  = 10
)

// ShardRun is one seeded schedule's outcome on one shard count.
type ShardRun struct {
	Seed      int64
	Shards    int
	Digest    string
	Delivered int
	Expected  int
	// CrossPosts counts kernel events posted across shard boundaries;
	// Handoffs counts fabric messages that crossed a boundary link.
	CrossPosts uint64
	Handoffs   int
}

// ShardChaosRun replays a seeded crash/gray schedule against paced
// cross-cluster channel traffic on a build split over the given shard
// count. Faults are armed directly on the victim machines' own shard
// kernels. Deterministic: one (seed, shards) pair, one digest.
func ShardChaosRun(seed int64, shards int) ShardRun {
	sh, err := core.BuildSharded(core.Config{Hosts: 1, Nodes: sweepNodes, Seed: 7, Shards: shards})
	if err != nil {
		panic(err)
	}
	// End-to-end recovery, same knobs the fault engine installs:
	// writes to a dead or reincarnated peer retransmit and then error
	// out instead of hanging.
	for _, m := range sh.Machines() {
		m.Chans.SetAckTimeout(5*sim.Millisecond, 3)
	}
	rng := rand.New(rand.NewSource(seed))

	// Crash/restart on one reader-side node, always: cross-shard
	// messages in flight toward the victim must be freed, and its
	// writer must ride out the outage on retransmits until the fenced
	// reincarnation declares the peer dead. (Writer-side nodes stay
	// up: with no fault-engine oracle and no supervisor, a reader
	// whose writer died would block forever.) Times are odd to stay
	// off the workload's pacing grid.
	victim := shardSweepPairs + rng.Intn(sweepNodes-shardSweepPairs)
	cAt := sim.Time(1501+2*rng.Intn(1000)) * sim.Time(sim.Microsecond)
	rAt := cAt + sim.Time(2101+2*rng.Intn(1450))*sim.Time(sim.Microsecond)
	vm := sh.Node(victim)
	vk := vm.Kern.Kernel()
	vk.At(cAt, func() { vm.Kern.Crash() })
	vk.At(rAt, func() { vm.Kern.Restart() })

	// Gray slowdown (no drops) on another node, usually.
	if rng.Float64() < 0.7 {
		g := rng.Intn(sweepNodes)
		if g == victim {
			g = (g + 1) % sweepNodes
		}
		slow := []float64{2, 4, 8}[rng.Intn(3)]
		gAt := sim.Time(1503+2*rng.Intn(1000)) * sim.Time(sim.Microsecond)
		gEnd := gAt + sim.Time(1501+2*rng.Intn(1250))*sim.Time(sim.Microsecond)
		gm := sh.Node(g)
		gk := gm.Kern.Kernel()
		gk.At(gAt, func() { gm.IF.SetGray(slow, nil) })
		gk.At(gEnd, func() { gm.IF.SetGray(0, nil) })
	}

	type outcome struct {
		recv int
		done sim.Time
	}
	out := make([]outcome, shardSweepPairs)
	for pi := 0; pi < shardSweepPairs; pi++ {
		pi := pi
		name := fmt.Sprintf("shard%d", pi)
		wm, rm := sh.Node(pi), sh.Node(pi+shardSweepPairs)
		size := 192 + 16*pi
		sh.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(1+17*pi) * sim.Microsecond)
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < shardSweepMsgs; i++ {
				if err := ch.Write(sp, size, fmt.Sprintf("s%d.%d", pi, i)); err != nil {
					return
				}
				sp.SleepFor(sim.Duration(310+7*pi) * sim.Microsecond)
			}
		})
		sh.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(9+17*pi) * sim.Microsecond)
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < shardSweepMsgs; i++ {
				if _, ok := ch.Read(sp); !ok {
					return
				}
				out[pi].recv++
				out[pi].done = rm.Kern.Kernel().Now()
			}
		})
	}
	if err := sh.Run(); err != nil {
		panic(fmt.Sprintf("vorxbench: shard run (seed %d, shards %d): %v", seed, shards, err))
	}

	r := ShardRun{Seed: seed, Shards: sh.Shards(), Expected: shardSweepPairs * shardSweepMsgs,
		CrossPosts: sh.Group.CrossPosts()}
	var b strings.Builder
	for pi, o := range out {
		fmt.Fprintf(&b, "pair%d recv=%d done=%d\n", pi, o.recv, int64(o.done))
		r.Delivered += o.recv
	}
	retr, incs := 0, uint32(0)
	for _, m := range sh.Machines() {
		retr += m.Chans.TimeoutRetransmits
		incs += m.Kern.Incarnation()
	}
	st := sh.FabricStats()
	r.Handoffs = st.HandoffsOut
	fmt.Fprintf(&b, "retrans=%d incarnations=%d\n", retr, incs)
	fmt.Fprintf(&b, "fabric sent=%d delivered=%d bytes=%d\n",
		st.MessagesSent, st.MessagesDelivered, st.BytesDelivered)
	r.Digest = b.String()
	return r
}

// ShardSweep aggregates the sharded-vs-serial identity check over a
// seed range.
type ShardSweep struct {
	Start      int64
	Seeds      int
	Shards     int // the parallel shard count diffed against 1
	Matched    int
	Delivered  int
	Expected   int
	CrossPosts uint64
	Handoffs   int
	BadSeeds   []int64 // seeds whose digests diverged
	Diffs      []string
}

// RunShardSweep runs every seed at shards=1 and shards=want and
// byte-compares the outcome digests.
func RunShardSweep(start int64, n, want int) ShardSweep {
	s := ShardSweep{Start: start, Seeds: n, Shards: want}
	for i := 0; i < n; i++ {
		seed := start + int64(i)
		serial := ShardChaosRun(seed, 1)
		split := ShardChaosRun(seed, want)
		s.Shards = split.Shards
		s.Delivered += split.Delivered
		s.Expected += split.Expected
		s.CrossPosts += split.CrossPosts
		s.Handoffs += split.Handoffs
		if serial.Digest == split.Digest {
			s.Matched++
		} else {
			s.BadSeeds = append(s.BadSeeds, seed)
			s.Diffs = append(s.Diffs, fmt.Sprintf("seed %d:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
				seed, serial.Digest, split.Shards, split.Digest))
		}
	}
	return s
}

// OK reports whether every seed's digests matched.
func (s ShardSweep) OK() bool { return s.Matched == s.Seeds }

// Format renders the sweep summary, including diverging digests.
func (s ShardSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "shard sweep: %d seeded crash/gray schedules (seeds %d..%d), shards=1 vs shards=%d on 1 host + %d nodes\n",
		s.Seeds, s.Start, s.Start+int64(s.Seeds)-1, s.Shards, sweepNodes)
	fmt.Fprintf(w, "  digests byte-identical: %d/%d; delivered %d/%d; %d cross-shard posts, %d boundary handoffs\n",
		s.Matched, s.Seeds, s.Delivered, s.Expected, s.CrossPosts, s.Handoffs)
	for _, d := range s.Diffs {
		fmt.Fprintf(w, "  DIVERGED %s", d)
	}
}
