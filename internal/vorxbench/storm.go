package vorxbench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vchan"
	"hpcvorx/internal/verify"
)

// The rebalance storm drives seeded schedules of forced placement
// changes — interleaved with partitions, gray brokers, and broker
// crashes — through the channel-virtualization layer with the full
// invariant checker attached. `vorx chaos -sweep N` runs this sweep
// alongside the classic one, so the CI gate covers live migration
// under the same faults the channel layer already survives.

// Storm geometry: same 1 host + 15 nodes hypercube as the classic
// sweep (4 clusters of 4). Lanes live on node13 and node14 (cluster
// 3); the balancer rides host0 (cluster 0); tenants span clusters 0-2.
const (
	stormNodes   = 15
	stormTenants = 4
	stormMsgs    = 12
	stormPace    = 300 * sim.Microsecond
	stormBrokerA = 13
	stormBrokerB = 14
)

// StormSchedule derives a rebalance-storm schedule from seed: always
// 2-4 forced migrations, usually a partition (cut from clusters 1-2,
// so the balancer and its lane nodes stay mutually reachable and
// every rebalance stays valid mid-cut), often a gray broker, half the
// time a broker crash/restart — in which case every rebalance targets
// the surviving broker, piling the whole storm onto one node. The
// text goes through ParseSchedule like a user file, so the sweep also
// exercises the DSL's whole-schedule validation.
func StormSchedule(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var lines []string
	used := map[int]bool{}
	at := func(t int) int {
		for used[t] {
			t++
		}
		used[t] = true
		return t
	}

	// Broker crash/restart, half the time. The restart lands after
	// the balancer's silence window (5 x 500us reports), so the sweep
	// covers both quick blips and full evacuations.
	crashed := -1
	if rng.Intn(2) == 1 {
		crashed = []int{stormBrokerA, stormBrokerB}[rng.Intn(2)]
		cAt := at(1200 + rng.Intn(2001))
		rAt := at(cAt + 1500 + rng.Intn(4001))
		lines = append(lines,
			fmt.Sprintf("%dus crash node%d", cAt, crashed),
			fmt.Sprintf("%dus restart node%d", rAt, crashed))
	}

	// The storm itself: 2-4 forced migrations over the run. Targets
	// alternate between the lane nodes unless one is scheduled to
	// crash, in which case the survivor takes everything.
	nReb := 2 + rng.Intn(3)
	for i := 0; i < nReb; i++ {
		tenant := rng.Intn(stormTenants)
		target := []int{stormBrokerA, stormBrokerB}[rng.Intn(2)]
		if crashed >= 0 {
			target = stormBrokerA + stormBrokerB - crashed
		}
		lines = append(lines,
			fmt.Sprintf("%dus rebalance t%d node%d", at(500+rng.Intn(5501)), tenant, target))
	}

	// Partition: cut 1-2 of clusters {1,2} from the rest. Producers
	// and consumers live there, so frames and acks stall mid-cut and
	// the drain/replay machinery has to ride it out.
	if rng.Float64() < 0.8 {
		pStart := at(1800 + rng.Intn(1201))
		pDur := 1000 + rng.Intn(3001)
		minority := []string{"1", "2", "1,2"}[rng.Intn(3)]
		lines = append(lines,
			fmt.Sprintf("%dus partition %s", pStart, minority),
			fmt.Sprintf("%dus heal", at(pStart+pDur)))
	}

	// Gray degradation on a lane node, sometimes: slow, lossy
	// forwarding without ever going silent.
	if rng.Float64() < 0.5 {
		g := []int{stormBrokerA, stormBrokerB}[rng.Intn(2)]
		gStart := at(1500 + rng.Intn(1501))
		gDur := 1500 + rng.Intn(2501)
		slow := []float64{2, 4}[rng.Intn(2)]
		drop := []float64{0, 0.15, 0.3}[rng.Intn(3)]
		lines = append(lines,
			fmt.Sprintf("%dus gray node%d %g %g", gStart, g, slow, drop),
			fmt.Sprintf("%dus ungray node%d", at(gStart+gDur), g))
	}
	return strings.Join(lines, "\n") + "\n"
}

// StormRun is one seeded storm's outcome.
type StormRun struct {
	Seed       int64
	Schedule   string
	Delivered  int // messages read across all tenants
	Expected   int // tenants * msgs
	Migrations int // placements the balancer moved (forced + evacuations)
	Stale      int // stale-term frames structurally refused
	Dups       int // duplicate frames the consumers absorbed
	Violations []verify.Violation
}

// StormVerifyRun replays StormSchedule(seed) against paced vchannel
// traffic with the invariant checker attached to both the channel
// layer and the virtualization layer. Deterministic: one seed, one
// outcome.
func StormVerifyRun(seed int64) StormRun {
	sched := StormSchedule(seed)
	ops, err := fault.ParseSchedule(strings.NewReader(sched))
	if err != nil {
		panic(fmt.Sprintf("vorxbench: generated storm schedule rejected (seed %d): %v", seed, err))
	}
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: stormNodes, Seed: 7})
	if err != nil {
		panic(err)
	}
	fab := vchan.Enable(sys, vchan.Config{Brokers: []int{stormBrokerA, stormBrokerB}})
	type tenant struct {
		name       string
		prod, cons *core.Machine
	}
	tenants := make([]tenant, stormTenants)
	for i := range tenants {
		tenants[i] = tenant{name: fmt.Sprintf("t%d", i), prod: sys.Node(i), cons: sys.Node(i + stormTenants)}
		fab.Declare(tenants[i].name, tenants[i].prod, tenants[i].cons)
	}
	chk := verify.AttachAll(sys, fab)
	fab.Start()

	eng := fault.New(sys.K, seed)
	eng.MaxRetries = 0
	eng.Bind(sys)
	eng.BindVChan(fab.Balancer())
	if err := eng.Apply(ops); err != nil {
		panic(fmt.Sprintf("vorxbench: storm schedule failed to apply (seed %d): %v", seed, err))
	}

	recv := make([]int, stormTenants)
	for i, tn := range tenants {
		i, tn := i, tn
		sys.Spawn(tn.prod, "w/"+tn.name, 1, func(sp *kern.Subprocess) {
			w := fab.On(tn.prod).OpenWriter(sp, tn.name)
			for k := 0; k < stormMsgs; k++ {
				if err := w.Write(sp, 128, k); err != nil {
					return
				}
				sp.SleepFor(stormPace)
			}
		})
		sys.Spawn(tn.cons, "r/"+tn.name, 1, func(sp *kern.Subprocess) {
			r := fab.On(tn.cons).OpenReader(sp, tn.name)
			for k := 0; k < stormMsgs; k++ {
				if _, err := r.Read(sp); err != nil {
					return
				}
				recv[i]++
			}
		})
	}
	// The balancer's beacons tick forever; run to a horizon that
	// comfortably covers every heal, restart, and ctrl retry.
	sys.RunFor(60 * sim.Millisecond)

	r := StormRun{Seed: seed, Schedule: sched, Expected: stormTenants * stormMsgs,
		Migrations: fab.Balancer().Migrations, Dups: chk.VDups, Violations: chk.Violations()}
	for _, n := range recv {
		r.Delivered += n
	}
	for _, m := range sys.Machines() {
		r.Stale += fab.On(m).StaleRefused
	}
	return r
}

// StormSweep aggregates StormVerifyRun over seeds start..start+n-1.
type StormSweep struct {
	Start      int64
	Seeds      int
	Full       int // runs that delivered every message
	Delivered  int
	Expected   int
	Migrations int
	Stale      int
	Dups       int
	Violations int
	BadSeeds   []int64 // seeds with at least one violation
}

// RunStormSweep runs n seeded rebalance storms and tallies the
// results.
func RunStormSweep(start int64, n int) StormSweep {
	s := StormSweep{Start: start, Seeds: n}
	for i := 0; i < n; i++ {
		r := StormVerifyRun(start + int64(i))
		s.Delivered += r.Delivered
		s.Expected += r.Expected
		s.Migrations += r.Migrations
		s.Stale += r.Stale
		s.Dups += r.Dups
		if r.Delivered == r.Expected {
			s.Full++
		}
		if len(r.Violations) > 0 {
			s.Violations += len(r.Violations)
			s.BadSeeds = append(s.BadSeeds, r.Seed)
		}
	}
	return s
}

// Format renders the storm-sweep summary.
func (s StormSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "rebalance storm: %d seeded schedules (seeds %d..%d), %d tenants x %d messages over 2 lane nodes\n",
		s.Seeds, s.Start, s.Start+int64(s.Seeds)-1, stormTenants, stormMsgs)
	fmt.Fprintf(w, "  delivered %d/%d messages (%d runs complete), %d migrations, %d stale frames refused, %d dups absorbed\n",
		s.Delivered, s.Expected, s.Full, s.Migrations, s.Stale, s.Dups)
	if s.Violations == 0 {
		fmt.Fprintf(w, "  invariants: 0 violations\n")
		return
	}
	fmt.Fprintf(w, "  invariants: %d VIOLATIONS in seeds %v\n", s.Violations, s.BadSeeds)
}
