// Package vorxbench regenerates every table, figure, and quantitative
// claim of the paper's evaluation. Each experiment builds a fresh
// simulated HPC/VORX installation, runs the paper's workload, and
// emits a table with the paper's reported numbers alongside the
// measured ones. cmd/benchtables prints them; bench_test.go wraps each
// in a testing.B benchmark; EXPERIMENTS.md records the comparison.
package vorxbench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced table or figure.
type Table struct {
	ID     string // "T1", "F1", "E4", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Format(&b)
	return b.String()
}

// All runs every experiment and returns the tables in paper order.
func All() []*Table {
	return []*Table{
		Figure1(),
		Table1(),
		Table2(),
		E1ChannelThroughput(),
		E2Download(),
		E3UDOLatency(),
		E4Bitmap(),
		E5FFT(),
		E6SNETFlowControl(),
		E7Structuring(),
		E8OpenStorm(),
		E9Allocation(),
		A1SideBuffers(),
		A2TreeFanout(),
		A3FewReceivers(),
		A4TopologyTransparency(),
		A5WindowedChannels(),
		A6SpiceTransport(),
		A7CEMUScaling(),
		F2Scaling(),
		E12FaultStorm(),
		E13Supervision(),
		E14TracingOverhead(),
		E15Pipelined(),
		E16Partitions(),
		E17VChan(),
		E18LatencyObservatory(),
		E19ShardScaling(),
		E20MultiCoreScaling(),
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Table {
	gens := map[string]func() *Table{
		"F1": Figure1, "T1": Table1, "T2": Table2,
		"E1": E1ChannelThroughput, "E2": E2Download, "E3": E3UDOLatency,
		"E4": E4Bitmap, "E5": E5FFT, "E6": E6SNETFlowControl,
		"E7": E7Structuring, "E8": E8OpenStorm, "E9": E9Allocation,
		"A1": A1SideBuffers, "A2": A2TreeFanout,
		"A3": A3FewReceivers, "A4": A4TopologyTransparency,
		"A5": A5WindowedChannels,
		"A6": A6SpiceTransport, "A7": A7CEMUScaling,
		"F2": F2Scaling, "E12": E12FaultStorm, "E13": E13Supervision,
		"E14": E14TracingOverhead, "E15": E15Pipelined, "E16": E16Partitions,
		"E17": E17VChan, "E18": E18LatencyObservatory,
		"E19": E19ShardScaling, "E20": E20MultiCoreScaling,
	}
	if g, ok := gens[strings.ToUpper(id)]; ok {
		return g()
	}
	return nil
}

// IDs lists the experiment ids in paper order.
func IDs() []string {
	return []string{"F1", "T1", "T2", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "F2", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
}

func us(f float64) string   { return fmt.Sprintf("%.0f", f) }
func us1(f float64) string  { return fmt.Sprintf("%.1f", f) }
func secs(f float64) string { return fmt.Sprintf("%.2f", f) }
