package vorxbench

import (
	"fmt"

	"hpcvorx/internal/cemu"
	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/multicast"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/stub"
)

// Ablation experiments for the design choices DESIGN.md calls out:
// they vary one mechanism at a time and show why the system is built
// the way it is.

// A1SideBuffers varies the kernel side-buffer pool under many-to-one
// channel traffic: the paper's "many side buffers" make the
// busy/retransmit path rare; a small pool makes it constant.
func A1SideBuffers() *Table {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: kernel side-buffer pool under 6-to-1 channel traffic",
		Header: []string{"side buffers", "makespan (ms)", "busies", "retransmits"},
	}
	for _, bufs := range []int{2, 8, 64} {
		sys, err := core.Build(core.Config{Nodes: 7, Seed: 1})
		if err != nil {
			panic(err)
		}
		for _, m := range sys.Machines() {
			m.Chans.SetSideBuffers(bufs)
		}
		// Slow reader: senders race ahead into the side buffers.
		const senders, msgs = 6, 10
		var end sim.Time
		sink := sys.Node(0)
		sys.Spawn(sink, "sink", 0, func(sp *kern.Subprocess) {
			var chs []*chanRef
			for i := 1; i <= senders; i++ {
				chs = append(chs, &chanRef{sink.Chans.Open(sp, fmt.Sprintf("a1.%d", i), objmgr.OpenAny)})
			}
			for n := 0; n < senders*msgs; n++ {
				sp.Compute(sim.Microseconds(800)) // slow consumer
				if _, ok := chs[n%senders].ch.Read(sp); !ok {
					panic("a1 read")
				}
			}
			end = sp.Now()
		})
		for i := 1; i <= senders; i++ {
			i := i
			src := sys.Node(i)
			sys.Spawn(src, fmt.Sprintf("src%d", i), 0, func(sp *kern.Subprocess) {
				ch := src.Chans.Open(sp, fmt.Sprintf("a1.%d", i), objmgr.OpenAny)
				for m := 0; m < msgs; m++ {
					if err := ch.Write(sp, 800, nil); err != nil {
						panic(err)
					}
				}
			})
		}
		if err := sys.Run(); err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprint(bufs), fmt.Sprintf("%.1f", end.Sub(0).Milliseconds()),
			fmt.Sprint(sink.Chans.Busies), fmt.Sprint(sink.Chans.Retransmits))
	}
	t.Note("a starved pool forces busy/retransmit rounds; with many buffers the path never triggers")
	return t
}

// A2TreeFanout varies the download tree's fan-out. Fan-out 1 is a
// chain (no parallel forwarding); the paper chose 2; wider trees cost
// more per-node forwarding time per chunk.
func A2TreeFanout() *Table {
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: download tree fan-out, 40 processes",
		Header: []string{"fan-out", "startup (s)"},
	}
	for _, f := range []int{1, 2, 4} {
		sys, err := core.Build(core.Config{Hosts: 1, Nodes: 40, Seed: 1})
		if err != nil {
			panic(err)
		}
		app := stub.LaunchTree(sys, sys.Host(0), sys.Nodes(), stub.DefaultImage(), f, nil)
		sys.RunFor(sim.Seconds(200))
		if !app.Ready() {
			panic(fmt.Sprintf("fanout %d did not complete", f))
		}
		t.AddRow(fmt.Sprint(f), secs(app.StartedAt.Seconds()))
		sys.Shutdown()
	}
	t.Note("per-node forwarding work scales with fan-out, depth with its inverse; in this cost model")
	t.Note("the chunk pipeline hides depth, so narrow trees win — fan-out 2 is a safe middle ground")
	return t
}

// A3FewReceivers compares the flow-controlled multicast primitive
// against issuing multiple channel writes for small receiver counts —
// the paper's advice for LAN-style servers (§4.2: "only to a few
// receivers ... with reasonable efficiency by issuing multiple
// writes").
func A3FewReceivers() *Table {
	t := &Table{
		ID:     "A3",
		Title:  "Ablation: multicast vs multiple writes, 1000-byte message",
		Header: []string{"receivers", "multicast (µs)", "multiple writes (µs)"},
	}
	for _, m := range []int{2, 4, 8} {
		mc := timeMulticast(m, 20)
		mw := timeMultiWrites(m, 20)
		t.AddRow(fmt.Sprint(m), us1(mc), us1(mw))
	}
	t.Note("multicast amortizes the sender's work; multiple writes are acceptable for few receivers")
	return t
}

func timeMulticast(members, rounds int) float64 {
	sys, err := core.Build(core.Config{Nodes: members + 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	snd := multicast.NewSender(sys.Node(0).IF, sys.Mgr, "a3")
	var start, end sim.Time
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		for i := 0; i < members; i++ {
			snd.Accept(sp)
		}
		start = sp.Now()
		for r := 0; r < rounds; r++ {
			if err := snd.Write(sp, 1000, nil); err != nil {
				panic(err)
			}
		}
		end = sp.Now()
	})
	for i := 1; i <= members; i++ {
		i := i
		m := sys.Node(i)
		sys.Spawn(m, fmt.Sprintf("m%d", i), 0, func(sp *kern.Subprocess) {
			r := multicast.Join(m.IF, sys.Mgr, sp, "a3")
			for j := 0; j < rounds; j++ {
				r.Read(sp)
			}
		})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start).Microseconds() / float64(rounds)
}

func timeMultiWrites(members, rounds int) float64 {
	sys, err := core.Build(core.Config{Nodes: members + 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	var start, end sim.Time
	w := sys.Node(0)
	sys.Spawn(w, "w", 0, func(sp *kern.Subprocess) {
		var chs []*chanRef
		for i := 1; i <= members; i++ {
			chs = append(chs, &chanRef{w.Chans.Open(sp, fmt.Sprintf("a3w.%d", i), objmgr.OpenAny)})
		}
		start = sp.Now()
		for r := 0; r < rounds; r++ {
			for _, c := range chs {
				if err := c.ch.Write(sp, 1000, nil); err != nil {
					panic(err)
				}
			}
		}
		end = sp.Now()
	})
	for i := 1; i <= members; i++ {
		i := i
		m := sys.Node(i)
		sys.Spawn(m, fmt.Sprintf("r%d", i), 0, func(sp *kern.Subprocess) {
			ch := m.Chans.Open(sp, fmt.Sprintf("a3w.%d", i), objmgr.OpenAny)
			for j := 0; j < rounds; j++ {
				ch.Read(sp)
			}
		})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start).Microseconds() / float64(rounds)
}

// A4TopologyTransparency measures channel latency within one cluster
// versus across the full diameter of the 1024-node hypercube: the
// software overhead dwarfs the per-hop hardware latency, which is why
// "applications programmers need not be concerned with the hardware
// topology" (paper §1).
func A4TopologyTransparency() *Table {
	t := &Table{
		ID:     "A4",
		Title:  "Ablation: topology transparency — 4-byte channel latency vs hop count",
		Header: []string{"placement", "cluster hops", "latency (µs)", "added by hardware"},
	}
	sys, err := core.Build(core.Config{Nodes: 1024, NodesPerCluster: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	// Same cluster: nodes 0..3 share cluster 0.
	same := measurePair(sys, 0, 1, "a4same")
	// Full diameter: endpoint of cluster 0 to endpoint of cluster 255.
	sys2, err := core.Build(core.Config{Nodes: 1024, NodesPerCluster: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	far := measurePair(sys2, 0, 1023, "a4far")
	hops := sys2.Topo.Hops(sys2.Node(0).EP, sys2.Node(1023).EP)
	t.AddRow("same cluster", "0", us1(same), "-")
	t.AddRow("cube corner to corner", fmt.Sprint(hops), us1(far), fmt.Sprintf("+%.1f µs (%.1f%%)",
		far-same, 100*(far-same)/same))
	t.Note("per-hop hardware latency is tiny next to the ~300 µs software path")
	return t
}

func measurePair(sys *core.System, a, b int, name string) float64 {
	const rounds = 200
	var start, end sim.Time
	na, nb := sys.Node(a), sys.Node(b)
	sys.Spawn(na, "w", 0, func(sp *kern.Subprocess) {
		ch := na.Chans.Open(sp, name, objmgr.OpenAny)
		start = sp.Now()
		for i := 0; i < rounds; i++ {
			if err := ch.Write(sp, 4, nil); err != nil {
				panic(err)
			}
		}
		end = sp.Now()
	})
	sys.Spawn(nb, "r", 0, func(sp *kern.Subprocess) {
		ch := nb.Chans.Open(sp, name, objmgr.OpenAny)
		for i := 0; i < rounds; i++ {
			ch.Read(sp)
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start).Microseconds() / rounds
}

// chanRef keeps slices of channel ends tidy inside closures.
type chanRef struct{ ch *channels.Channel }

// A5WindowedChannels implements the improvement §4.1 suggests ("This
// result suggests that we should consider the use of a sliding-window
// protocol for channels") and measures what it buys: the kernel keeps
// k writes in flight per channel instead of one.
func A5WindowedChannels() *Table {
	t := &Table{
		ID:     "A5",
		Title:  "Ablation: kernel-level sliding window for channels (paper §4.1's suggestion)",
		Header: []string{"window", "4B (µs/msg)", "1024B (µs/msg)"},
	}
	measure := func(size, window int) float64 {
		sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
		if err != nil {
			panic(err)
		}
		const rounds = 500
		var start, end sim.Time
		sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(0).Chans.Open(sp, "a5", objmgr.OpenAny)
			ch.SetWindow(window)
			start = sp.Now()
			for i := 0; i < rounds; i++ {
				if err := ch.Write(sp, size, nil); err != nil {
					panic(err)
				}
			}
			end = sp.Now()
		})
		sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(1).Chans.Open(sp, "a5", objmgr.OpenAny)
			for i := 0; i < rounds; i++ {
				ch.Read(sp)
			}
		})
		if err := sys.Run(); err != nil {
			panic(err)
		}
		return end.Sub(start).Microseconds() / rounds
	}
	for _, w := range []int{1, 2, 4, 8} {
		t.AddRow(fmt.Sprint(w), us1(measure(4, w)), us1(measure(1024, w)))
	}
	t.Note("window 1 is Table 2's stop-and-wait; compare the user-level protocol's Table 1")
	t.Note("small messages gain ~2x (latency-bound); 1024B is receiver-CPU-bound, so extra")
	t.Note("in-flight writes only add busy/retransmit churn once the side buffers fill")
	return t
}

// A6SpiceTransport compares the SPICE solve over channels vs
// user-defined objects at several processor counts — the application-
// level consequence of E3's latency gap.
func A6SpiceTransport() *Table {
	t := &Table{
		ID:     "A6",
		Title:  "Ablation: SPICE solve transport — channels vs user-defined objects",
		Header: []string{"procs", "channels (ms)", "udo (ms)", "udo speedup"},
	}
	for _, p := range []int{2, 4, 8} {
		ch, udoMS := SpiceComparison(16, p, 40)
		t.AddRow(fmt.Sprint(p), fmt.Sprintf("%.1f", ch), fmt.Sprintf("%.1f", udoMS),
			fmt.Sprintf("%.2fx", ch/udoMS))
	}
	t.Note("fine-grain boundary exchange amplifies the per-message fixed-cost difference")
	return t
}

// A7CEMUScaling measures the CEMU-style timing simulator's speedup
// with processor count.
func A7CEMUScaling() *Table {
	t := &Table{
		ID:     "A7",
		Title:  "Ablation: CEMU timing-simulation scaling (64 gates, 12 steps, window 4)",
		Header: []string{"procs", "elapsed (ms)", "boundary msgs", "speedup"},
	}
	circuit := cemu.RandomCircuit(6, 64, 5)
	initial := make([]bool, circuit.Signals)
	var base float64
	for _, p := range []int{1, 2, 4, 8} {
		sys, err := core.Build(core.Config{Nodes: p, Seed: 1})
		if err != nil {
			panic(err)
		}
		res, err := cemu.Run(sys, circuit, initial, 12, p, 4)
		if err != nil {
			panic(err)
		}
		ms := res.Elapsed.Milliseconds()
		if p == 1 {
			base = ms
		}
		t.AddRow(fmt.Sprint(p), fmt.Sprintf("%.1f", ms), fmt.Sprint(res.PairMessages),
			fmt.Sprintf("%.2fx", base/ms))
	}
	t.Note("boundary traffic grows with the cut size, capping the speedup — the load-balance story §6.2's oscilloscope exists to diagnose")
	return t
}

// F2Scaling backs §1's scalability claim ("The system can easily be
// expanded to more than a thousand nodes by replicating the
// interconnect hardware"): the same operations at machine sizes from
// one cluster to the 1024-node construction.
func F2Scaling() *Table {
	t := &Table{
		ID:    "F2",
		Title: "Scaling from one cluster to a thousand nodes (paper §1)",
		Header: []string{"nodes", "clusters", "diameter",
			"4B latency, worst pair (µs)", "tree boot (s)", "open storm (ms)"},
	}
	for _, n := range []int{10, 70, 254, 1022} {
		// +1 host; sizes chosen so hosts+nodes fill clusters evenly.
		sys, err := core.Build(core.Config{Hosts: 1, Nodes: n, Seed: 1})
		if err != nil {
			panic(err)
		}
		lat := measurePair(sys, 0, n-1, "f2lat")

		sys2, err := core.Build(core.Config{Hosts: 1, Nodes: n, Seed: 1})
		if err != nil {
			panic(err)
		}
		app := stub.LaunchTree(sys2, sys2.Host(0), sys2.Nodes(), stub.DefaultImage(), 2, nil)
		sys2.RunFor(sim.Seconds(300))
		if !app.Ready() {
			panic("f2 boot incomplete")
		}
		boot := app.StartedAt.Seconds()
		sys2.Shutdown()

		sys3, err := core.Build(core.Config{Hosts: 1, Nodes: n, Seed: 1})
		if err != nil {
			panic(err)
		}
		// Fixed-size storm regardless of machine size (clamped on the
		// single-cluster machine): up to 12 pairs.
		pairs := 12
		if n/2 < pairs {
			pairs = n / 2
		}
		storm := stormOnFirstPairs(sys3, pairs, 1)

		t.AddRow(fmt.Sprint(n), fmt.Sprint(sys.Topo.Clusters()), fmt.Sprint(sys.Topo.Diameter()),
			us1(lat), secs(boot), fmt.Sprintf("%.2f", storm.Milliseconds()))
	}
	t.Note("latency grows only by per-hop hardware time; boot and rendezvous stay sublinear —")
	t.Note("the decentralized designs §3 argues for are what make the large sizes usable")
	return t
}

// stormOnFirstPairs opens `opens` channels between each of `pairs`
// node pairs and returns the makespan.
func stormOnFirstPairs(sys *core.System, pairs, opens int) sim.Duration {
	var start, end sim.Time
	first := true
	for pr := 0; pr < pairs; pr++ {
		for side := 0; side < 2; side++ {
			m := sys.Nodes()[2*pr+side]
			pr := pr
			sys.Spawn(m, fmt.Sprintf("f2storm%d.%d", pr, side), 0, func(sp *kern.Subprocess) {
				if first {
					first = false
					start = sp.Now()
				}
				for i := 0; i < opens; i++ {
					m.Chans.Open(sp, fmt.Sprintf("f2.%d.%d", pr, i), objmgr.OpenAny)
				}
				if sp.Now() > end {
					end = sp.Now()
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return end.Sub(start)
}
