package vorxbench

import (
	"fmt"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/verify"
)

// e16Metrics is one partitioned supervised run's outcome.
type e16Metrics struct {
	cut        string       // clusters isolated from the rest
	dur        sim.Duration // partition duration
	quorum     bool         // did the supervisor keep quorum?
	detect     sim.Duration // partition start -> first confirm (0 if held)
	unavail    sim.Duration // largest delivery gap
	restarts   int
	holds      int // quorum-holds (suspects parked, no restart)
	falseSusp  int // suspicions cleared by returning heartbeats
	refused    int // frames structurally refused below a fence floor
	reboots    int // zombie self-fences (reboot above the floor)
	dups, lost int
	violations int
}

// e16Run streams writer(node3, cluster 1) -> reader(node7, cluster 2)
// under fence-mode supervision from host0 (cluster 0), cuts the given
// minority clusters out of the fabric at 3ms for dur, heals, and
// audits the delivered log. Deterministic: same cut and dur, same
// numbers.
func e16Run(minority []topo.ClusterID, dur sim.Duration) e16Metrics {
	const (
		msgs    = 30
		pace    = 300 * sim.Microsecond
		cutAt   = 3 * sim.Millisecond
		writerN = 3 // cluster 1
		readerN = 7 // cluster 2
	)
	cfg := super.Config{
		HeartbeatEvery:  500 * sim.Microsecond,
		SuspectAfter:    1 * sim.Millisecond,
		ConfirmAfter:    2 * sim.Millisecond,
		CheckpointEvery: 1 * sim.Millisecond,
		RestartDelay:    1 * sim.Millisecond,
		Fence:           true,
	}
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 15, Seed: 16})
	if err != nil {
		panic(err)
	}
	chk := verify.Attach(sys)
	res := resmgr.NewVORX(sys.K, 15)
	if _, err := res.AllocateWhere("app", 2, func(id resmgr.NodeID) bool {
		return id == writerN || id == readerN
	}); err != nil {
		panic(err)
	}
	sup := super.New(sys, sys.Host(0), res, cfg)
	sup.SetVerifier(chk)
	eng := fault.New(sys.K, 16)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false)
	eng.PartitionAt(cutAt, [][]topo.ClusterID{minority})
	eng.HealAt(cutAt + dur)

	var (
		deliveries []sim.Time
		final      []string
	)
	writer := sup.NewTask("writer", sys.Node(writerN), 0, nil)
	reader := sup.NewTask("reader", sys.Node(readerN), 0, nil)
	writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ss := super.RestoreStream("e16", inc.State)
		ch := inc.Chan("e16")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "e16", objmgr.OpenAny)
			writer.Attach(ch)
		}
		writer.SetCheckpointer(ss)
		for ss.Written < msgs {
			if err := ch.Write(sp, 256, fmt.Sprintf("m%d", ss.Written)); err != nil {
				return
			}
			ss.Written++
			sp.SleepFor(pace)
		}
	})
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ss := super.RestoreStream("e16", inc.State)
		ch := inc.Chan("e16")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "e16", objmgr.OpenAny)
			reader.Attach(ch)
		}
		reader.SetCheckpointer(ss)
		for ss.Read < msgs {
			m, ok := ch.Read(sp)
			if !ok {
				return
			}
			ss.Log = append(ss.Log, m.Payload.(string))
			ss.Read++
			deliveries = append(deliveries, sp.Now())
		}
		final = ss.Log
	})
	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(100 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		panic(err)
	}

	cut := ""
	for i, c := range minority {
		if i > 0 {
			cut += ","
		}
		cut += fmt.Sprint(c)
	}
	m := e16Metrics{
		cut: cut, dur: dur,
		restarts: sup.Restarts, holds: sup.QuorumHolds, falseSusp: sup.FalseSuspects,
		violations: len(chk.Violations()),
	}
	m.quorum = sup.Restarts > 0 || sup.QuorumHolds == 0
	if confirm, ok := sup.FirstRecord("confirm"); ok {
		m.detect = confirm.At.Sub(sim.Time(cutAt))
	}
	for i := 1; i < len(deliveries); i++ {
		if gap := deliveries[i].Sub(deliveries[i-1]); gap > m.unavail {
			m.unavail = gap
		}
	}
	for _, mm := range sys.Machines() {
		m.refused += mm.IF.FencedDrops
		m.reboots += mm.IF.SelfFences
	}
	seen := map[string]int{}
	for _, p := range final {
		seen[p]++
	}
	for i := 0; i < msgs; i++ {
		switch n := seen[fmt.Sprintf("m%d", i)]; {
		case n == 0:
			m.lost++
		case n > 1:
			m.dups += n - 1
		}
	}
	if len(final) == 0 {
		m.lost = msgs
	}
	return m
}

// E16Partitions sweeps unavailability against partition size and
// duration under fence-mode supervision. Majority-side cuts are
// detected and healed by migration; cuts that cost the supervisor its
// quorum are held (suspects parked, nothing restarted) until the
// fabric merges back.
func E16Partitions() *Table {
	t := &Table{
		ID:    "E16",
		Title: "partition tolerance: unavailability vs. partition size and duration (fence-mode supervision)",
		Header: []string{"cut clusters", "duration", "quorum", "detect", "unavail",
			"restarts", "holds", "cleared", "refused", "reboots", "dup", "lost", "violations"},
	}
	rows := []struct {
		minority []topo.ClusterID
		dur      sim.Duration
	}{
		{[]topo.ClusterID{1}, 2 * sim.Millisecond},
		{[]topo.ClusterID{1}, 4 * sim.Millisecond},
		{[]topo.ClusterID{1}, 6 * sim.Millisecond},
		{[]topo.ClusterID{1, 2}, 3 * sim.Millisecond},
		{[]topo.ClusterID{1, 2, 3}, 3 * sim.Millisecond},
	}
	for _, r := range rows {
		m := e16Run(r.minority, r.dur)
		q := "held"
		if m.quorum {
			q = "kept"
		}
		detect := "-"
		if m.detect > 0 {
			detect = fmt.Sprint(m.detect)
		}
		t.AddRow(m.cut, fmt.Sprint(m.dur), q, detect, fmt.Sprint(m.unavail),
			fmt.Sprint(m.restarts), fmt.Sprint(m.holds), fmt.Sprint(m.falseSusp),
			fmt.Sprint(m.refused), fmt.Sprint(m.reboots),
			fmt.Sprint(m.dups), fmt.Sprint(m.lost), fmt.Sprint(m.violations))
	}
	t.Note("1 host + 15 nodes (4 clusters of 4); writer on node3 (cluster 1), reader on node7 (cluster 2), supervisor on host0 (cluster 0)")
	t.Note("cutting cluster 1 isolates the writer: the majority confirms it, fences its incarnation, and migrates the task; the healed zombie is refused and reboots above the floor")
	t.Note("cutting clusters 1,2 (no surviving 1<->2 link) stalls the stream and costs the supervisor its quorum: suspects are held, nothing restarts, the merge clears them")
	t.Note("cutting clusters 1,2,3 also drops quorum, but 1-3-2 routing keeps the stream moving: the app outlives its own supervisor's blackout")
	t.Note("violations column is the internal/verify invariant checker (incarnation fencing, exactly-once, FIFO, retention conservation)")
	return t
}
