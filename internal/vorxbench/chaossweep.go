package vorxbench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/verify"
)

// The chaos sweep drives many seeded fault schedules through one
// installation shape and checks the communication invariants (verify
// package) after every run. `vorx chaos -sweep N` and the CI sweep
// both call into this file, so the coverage the gate enforces is the
// coverage a developer can reproduce locally with one command.

// Sweep geometry: 1 host + 15 nodes is the smallest build that yields
// a multi-cluster hypercube (4 clusters of 4), which partitions need.
const (
	sweepNodes = 15
	sweepPairs = 7
	sweepMsgs  = 10
	sweepPace  = 350 * sim.Microsecond
)

// ChaosSchedule derives a fault schedule from seed: always one
// partition (1-2 minority clusters) with its heal, usually a gray
// node, often a crash/restart. The text goes through ParseSchedule
// like a user-supplied file, so the sweep also exercises the DSL.
func ChaosSchedule(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var lines []string
	used := map[int]bool{}
	at := func(t int) int {
		for used[t] {
			t++
		}
		used[t] = true
		return t
	}

	// Partition: cut 1-2 of the non-host clusters from the rest.
	pStart := at(1800 + rng.Intn(1201))
	pDur := 1000 + rng.Intn(3001)
	perm := rng.Perm(3)
	minority := []int{perm[0] + 1}
	if rng.Intn(2) == 1 {
		minority = append(minority, perm[1]+1)
		sort.Ints(minority)
	}
	spec := make([]string, len(minority))
	for i, c := range minority {
		spec[i] = fmt.Sprint(c)
	}
	lines = append(lines,
		fmt.Sprintf("%dus partition %s", pStart, strings.Join(spec, ",")),
		fmt.Sprintf("%dus heal", at(pStart+pDur)))

	// Gray degradation on one node, usually.
	if rng.Float64() < 0.7 {
		g := rng.Intn(sweepNodes)
		slow := []float64{2, 4, 8}[rng.Intn(3)]
		drop := []float64{0, 0.15, 0.35}[rng.Intn(3)]
		gStart := at(1500 + rng.Intn(1501))
		gDur := 1500 + rng.Intn(2501)
		lines = append(lines,
			fmt.Sprintf("%dus gray node%d %g %g", gStart, g, slow, drop),
			fmt.Sprintf("%dus ungray node%d", at(gStart+gDur), g))
	}

	// Crash/restart on one node, half the time. The restart lands
	// strictly after the oracle's 2ms detect delay: a node that comes
	// back before anyone noticed keeps its channels open, but its
	// killed subprocesses do not come back — that needs a supervisor
	// (internal/super), which the sweep deliberately runs without.
	if rng.Intn(2) == 1 {
		c := rng.Intn(sweepNodes)
		cAt := at(1500 + rng.Intn(2001))
		rAt := at(cAt + 2100 + rng.Intn(2901))
		lines = append(lines,
			fmt.Sprintf("%dus crash node%d", cAt, c),
			fmt.Sprintf("%dus restart node%d", rAt, c))
	}
	return strings.Join(lines, "\n") + "\n"
}

// ChaosRun is one seeded run's outcome.
type ChaosRun struct {
	Seed       int64
	Schedule   string
	Delivered  int // messages read across all pairs
	Expected   int // pairs * msgs
	Dups       int // duplicate data frames the channel layer absorbed
	Retrans    int // timeout retransmits
	Violations []verify.Violation
}

// ChaosVerifyRun replays ChaosSchedule(seed) against paced channel
// traffic with the invariant checker attached. Deterministic: one
// seed, one outcome.
func ChaosVerifyRun(seed int64) ChaosRun {
	sched := ChaosSchedule(seed)
	ops, err := fault.ParseSchedule(strings.NewReader(sched))
	if err != nil {
		panic(fmt.Sprintf("vorxbench: generated schedule rejected (seed %d): %v", seed, err))
	}
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: sweepNodes, Seed: 7})
	if err != nil {
		panic(err)
	}
	chk := verify.Attach(sys)
	eng := fault.New(sys.K, seed)
	eng.MaxRetries = 0 // partitions heal: retry forever rather than give up mid-cut
	eng.Bind(sys)
	if err := eng.Apply(ops); err != nil {
		panic(fmt.Sprintf("vorxbench: schedule failed to apply (seed %d): %v", seed, err))
	}

	recv := make([]int, sweepPairs)
	for pi := 0; pi < sweepPairs; pi++ {
		pi := pi
		name := fmt.Sprintf("sweep%d", pi)
		wm, rm := sys.Node(pi), sys.Node(pi+sweepPairs)
		sys.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < sweepMsgs; i++ {
				if err := ch.Write(sp, 256, fmt.Sprintf("s%d.%d", pi, i)); err != nil {
					return
				}
				sp.SleepFor(sweepPace)
			}
		})
		sys.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < sweepMsgs; i++ {
				if _, ok := ch.Read(sp); !ok {
					return
				}
				recv[pi]++
			}
		})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	r := ChaosRun{Seed: seed, Schedule: sched, Expected: sweepPairs * sweepMsgs,
		Dups: chk.Dups, Violations: chk.Violations()}
	for _, n := range recv {
		r.Delivered += n
	}
	for _, m := range sys.Machines() {
		r.Retrans += m.Chans.TimeoutRetransmits
	}
	return r
}

// ChaosSweep aggregates ChaosVerifyRun over seeds start..start+n-1.
type ChaosSweep struct {
	Start      int64
	Seeds      int
	Full       int // runs that delivered every message
	Delivered  int
	Expected   int
	Dups       int
	Retrans    int
	Violations int
	BadSeeds   []int64 // seeds with at least one violation
}

// RunChaosSweep runs n seeded schedules and tallies the results.
func RunChaosSweep(start int64, n int) ChaosSweep {
	s := ChaosSweep{Start: start, Seeds: n}
	for i := 0; i < n; i++ {
		r := ChaosVerifyRun(start + int64(i))
		s.Delivered += r.Delivered
		s.Expected += r.Expected
		s.Dups += r.Dups
		s.Retrans += r.Retrans
		if r.Delivered == r.Expected {
			s.Full++
		}
		if len(r.Violations) > 0 {
			s.Violations += len(r.Violations)
			s.BadSeeds = append(s.BadSeeds, r.Seed)
		}
	}
	return s
}

// Format renders the sweep summary.
func (s ChaosSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "chaos sweep: %d seeded schedules (seeds %d..%d) on 1 host + %d nodes, %d pairs x %d messages\n",
		s.Seeds, s.Start, s.Start+int64(s.Seeds)-1, sweepNodes, sweepPairs, sweepMsgs)
	fmt.Fprintf(w, "  delivered %d/%d messages (%d runs complete), %d dup frames absorbed, %d retransmits\n",
		s.Delivered, s.Expected, s.Full, s.Dups, s.Retrans)
	if s.Violations == 0 {
		fmt.Fprintf(w, "  invariants: 0 violations\n")
		return
	}
	fmt.Fprintf(w, "  invariants: %d VIOLATIONS in seeds %v\n", s.Violations, s.BadSeeds)
}
