package vorxbench

import (
	"fmt"
	"sort"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/obs"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vchan"
)

// E17 measures what channel virtualization costs and what live
// migration interrupts: tenants multiplexed per physical lane versus
// p99 write→deliver latency, plus the delivery gap a forced mid-run
// placement change opens on the migrated tenant (against the largest
// gap any undisturbed tenant sees, which prices ordinary lane
// contention).

// e17Metrics is one tenant-density point.
type e17Metrics struct {
	perLane    int
	writes     int
	p99All     sim.Duration // p99 write→deliver across every tenant
	p99Moved   sim.Duration // p99 for the migrated tenant alone
	gapMoved   sim.Duration // migrated tenant's largest delivery gap
	gapControl sim.Duration // largest gap on any undisturbed tenant
	stale      int          // stale-term frames structurally refused
	migrations int
	rep        *obs.Report // critical-path attribution over every vchan write
}

// e17Run packs perLane tenants onto each of two single-lane brokers
// (node13, node14), streams paced writes on every tenant, and at 3ms
// forces t0 onto the other broker mid-stream. Payloads carry their
// send time, so the reader side observes full write→deliver latency
// including window blocking — the multiplexing cost under test.
func e17Run(perLane int) e17Metrics {
	const (
		msgs = 40
		pace = 200 * sim.Microsecond
		size = 128
	)
	nTenants := 2 * perLane
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 15, Seed: 17})
	if err != nil {
		panic(err)
	}
	// The critical-path analyzer rides the tracer's forward sink;
	// vchan threads its write IDs through the fabric, so every tenant
	// write gets a full decomposition — including the migration pause.
	sys.Trace.Enable()
	an := obs.NewAnalyzer()
	sys.Trace.SetForward(an)
	fab := vchan.Enable(sys, vchan.Config{
		Brokers:        []int{13, 14},
		LanesPerBroker: 1,
	})
	type tenant struct {
		name       string
		prod, cons *core.Machine
	}
	tenants := make([]tenant, nTenants)
	for i := range tenants {
		tenants[i] = tenant{
			name: fmt.Sprintf("t%d", i),
			prod: sys.Node(i % 6),
			cons: sys.Node(6 + i%6),
		}
		fab.Declare(tenants[i].name, tenants[i].prod, tenants[i].cons)
	}
	fab.Start()

	lats := make([][]sim.Duration, nTenants)
	delAt := make([][]sim.Time, nTenants)
	for i, tn := range tenants {
		i, tn := i, tn
		sys.Spawn(tn.prod, "w/"+tn.name, 1, func(sp *kern.Subprocess) {
			w := fab.On(tn.prod).OpenWriter(sp, tn.name)
			for k := 0; k < msgs; k++ {
				if err := w.Write(sp, size, sp.Now()); err != nil {
					return
				}
				sp.SleepFor(pace)
			}
		})
		sys.Spawn(tn.cons, "r/"+tn.name, 1, func(sp *kern.Subprocess) {
			r := fab.On(tn.cons).OpenReader(sp, tn.name)
			for k := 0; k < msgs; k++ {
				m, err := r.Read(sp)
				if err != nil {
					return
				}
				now := sp.Now()
				lats[i] = append(lats[i], sim.Duration(now-m.Payload.(sim.Time)))
				delAt[i] = append(delAt[i], now)
			}
		})
	}

	bal := fab.Balancer()
	sys.K.After(3*sim.Millisecond, func() {
		node, _, _, ok := bal.Placement("t0")
		if !ok {
			return
		}
		target := 13
		if node == 13 {
			target = 14
		}
		bal.MigrateTo("t0", target)
	})
	// Widest point (8/lane) is broker-throughput-bound and finishes
	// around 70ms; 120ms leaves slack without hiding a stall — the
	// writes column is checked against the expected total below.
	sys.RunFor(120 * sim.Millisecond)

	m := e17Metrics{perLane: perLane, migrations: bal.Migrations}
	var all, moved []sim.Duration
	for i := range tenants {
		m.writes += len(lats[i])
		all = append(all, lats[i]...)
		gap := maxGap(delAt[i])
		if i == 0 {
			moved = lats[i]
			m.gapMoved = gap
		} else if gap > m.gapControl {
			m.gapControl = gap
		}
	}
	m.p99All = p99(all)
	m.p99Moved = p99(moved)
	for _, mach := range sys.Machines() {
		m.stale += fab.On(mach).StaleRefused
	}
	m.rep = an.Report()
	return m
}

// p99 returns the 99th-percentile duration (nearest-rank).
func p99(ds []sim.Duration) sim.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]sim.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// maxGap returns the largest interval between successive times.
func maxGap(ts []sim.Time) sim.Duration {
	var g sim.Duration
	for i := 1; i < len(ts); i++ {
		if d := sim.Duration(ts[i] - ts[i-1]); d > g {
			g = d
		}
	}
	return g
}

// E17VChan reproduces the channel-virtualization density/latency
// trade: tenants per lane versus p99 write→deliver latency, with the
// unavailability window a live migration opens on the moved tenant.
func E17VChan() *Table {
	t := &Table{
		ID:    "E17",
		Title: "channel virtualization: tenants per lane vs p99 latency and migration gap",
		Header: []string{"tenants/lane", "writes", "p99 all (us)", "p99 moved (us)",
			"moved gap (us)", "control gap (us)", "stale refused",
			"wire/queue/intr (%)", "recovery (%)"},
	}
	for _, perLane := range []int{1, 2, 4, 8} {
		m := e17Run(perLane)
		t.AddRow(
			fmt.Sprint(m.perLane),
			fmt.Sprint(m.writes),
			us(float64(m.p99All)/float64(sim.Microsecond)),
			us(float64(m.p99Moved)/float64(sim.Microsecond)),
			us(float64(m.gapMoved)/float64(sim.Microsecond)),
			us(float64(m.gapControl)/float64(sim.Microsecond)),
			fmt.Sprint(m.stale),
			decompCell(m.rep),
			e18Recovery(m.rep),
		)
		if err := m.rep.Check(); err != nil {
			t.Note("tenants/lane %d: attribution not exact: %v", perLane, err)
		}
		if m.migrations != 1 {
			t.Note("tenants/lane %d: expected exactly 1 migration, saw %d", perLane, m.migrations)
		}
		if m.writes != 80*perLane {
			t.Note("tenants/lane %d: only %d of %d writes completed in the horizon", perLane, m.writes, 80*perLane)
		}
	}
	t.Note("two single-lane brokers; t0 force-migrated at 3ms; payloads carry send time, so p99 includes window blocking")
	t.Note("moved gap vs control gap separates the drain-and-replay pause from ordinary lane contention")
	t.Note("wire/queue/intr and recovery are the critical-path analyzer's shares of attributed " +
		"virtual time (E18); recovery = busy + retransmit + migration")
	return t
}
