package vorxbench

import (
	"fmt"
	"strings"
	"time"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// E19 measures the parallel discrete-event kernel: the same
// installation and workload run at increasing shard counts, checking
// that every split dispatches byte-identically to the serial run and
// reporting how the event volume divides across shards. Virtual-time
// columns are deterministic; the events/sec note is wall-clock and
// scales with host CPUs, so E19 sits with E14/E18 outside the
// replication identity check.

// E19 geometry: 1 host + 31 nodes is 8 clusters of 4, the largest
// power-of-two cluster count the default pool shape yields, so the
// sweep can halve cleanly from 8 shards down to 1.
const (
	e19Nodes = 31
	e19Pairs = 14
	e19Msgs  = 10
)

// ShardMeasure is one measured execution of a sharded workload: the
// deterministic outcome digest (byte-comparable across shard counts),
// the virtual-time event volume, and the host-dependent wall clock
// plus conservative-synchronization counters.
type ShardMeasure struct {
	Shards   int
	Digest   string
	Events   uint64
	Cross    uint64
	Handoffs int
	Makespan sim.Time
	Wall     time.Duration
	Sync     sim.SyncStats
}

type e19Outcome struct {
	recv int
	done sim.Time
}

// e19Run drives the cross-cluster pair workload at one shard count.
func e19Run(shards int) ShardMeasure {
	sh, err := core.BuildSharded(core.Config{Hosts: 1, Nodes: e19Nodes, Seed: 19, Shards: shards})
	if err != nil {
		panic(err)
	}
	out := make([]e19Outcome, e19Pairs)
	for pi := 0; pi < e19Pairs; pi++ {
		pi := pi
		name := fmt.Sprintf("e19-%d", pi)
		wm, rm := sh.Node(pi), sh.Node(pi+e19Pairs)
		size := 192 + 16*pi
		sh.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(1+17*pi) * sim.Microsecond)
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < e19Msgs; i++ {
				if err := ch.Write(sp, size, fmt.Sprintf("m%d.%d", pi, i)); err != nil {
					return
				}
				sp.SleepFor(sim.Duration(310+7*pi) * sim.Microsecond)
			}
		})
		sh.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(9+17*pi) * sim.Microsecond)
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < e19Msgs; i++ {
				if _, ok := ch.Read(sp); !ok {
					return
				}
				out[pi].recv++
				out[pi].done = rm.Kern.Kernel().Now()
			}
		})
	}
	t0 := time.Now()
	if err := sh.Run(); err != nil {
		panic(err)
	}
	wall := time.Since(t0)

	var b strings.Builder
	for pi, o := range out {
		fmt.Fprintf(&b, "pair%d recv=%d done=%d\n", pi, o.recv, int64(o.done))
	}
	// Group.Now is the trailing clock (a shard with no late events
	// parks early); the makespan is the leading one.
	var makespan sim.Time
	for _, sys := range sh.Sys {
		if n := sys.K.Now(); n > makespan {
			makespan = n
		}
	}
	return ShardMeasure{
		Shards:   shards,
		Digest:   b.String(),
		Events:   sh.Group.Scheduled(),
		Cross:    sh.Group.CrossPosts(),
		Handoffs: sh.FabricStats().HandoffsOut,
		Makespan: makespan,
		Wall:     wall,
		Sync:     sh.Group.SyncStats(),
	}
}

// ShardBench runs the E19 workload once at the given shard count, for
// `vorx bench`'s shard section.
func ShardBench(shards int) ShardMeasure { return e19Run(shards) }

// E19ShardScaling sweeps shard counts over one installation.
func E19ShardScaling() *Table {
	t := &Table{
		ID:    "E19",
		Title: "parallel kernel: sharded virtual time vs serial, 8-cluster pool",
		Header: []string{"shards", "events", "cross posts", "handoffs",
			"cross/events (%)", "makespan (us)", "identical"},
	}
	serialDigest := ""
	var serialWall time.Duration
	var runs []ShardMeasure
	for _, shards := range []int{1, 2, 4, 8} {
		r := e19Run(shards)
		identical := "yes"
		if shards == 1 {
			serialDigest, serialWall = r.Digest, r.Wall
		} else if r.Digest != serialDigest {
			identical = "NO"
		}
		t.AddRow(
			fmt.Sprint(shards),
			fmt.Sprint(r.Events),
			fmt.Sprint(r.Cross),
			fmt.Sprint(r.Handoffs),
			fmt.Sprintf("%.2f", 100*float64(r.Cross)/float64(r.Events)),
			us(float64(r.Makespan)/1e3),
			identical,
		)
		runs = append(runs, r)
	}
	t.Note("identical = per-pair delivery digest byte-equal to shards=1; the CI shard sweep " +
		"(vorx chaos -shardsweep) enforces the same identity under crash/gray fault schedules")
	t.Note("route-aware lookahead: the promise between two shards is HopFixed (1us) times the " +
		"minimum cube distance between their clusters; a shard advances to " +
		"min(neighbor horizons, global floor + column lookahead), both capped by in-flight mail")
	var parts []string
	for _, r := range runs {
		evps := float64(r.Events) / r.Wall.Seconds()
		parts = append(parts, fmt.Sprintf("shards=%d %.0fk ev/s (%.2fx)",
			r.Shards, evps/1e3, serialWall.Seconds()/r.Wall.Seconds()))
	}
	t.Note("wall clock (host-dependent, this run): %s", strings.Join(parts, ", "))
	t.Note("speedup needs real cores: on a 1-CPU host the shard goroutines serialize and " +
		"cross-shard synchronization is pure overhead, exactly as Workers reporting in vorx bench")
	return t
}
