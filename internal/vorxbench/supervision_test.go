package vorxbench

import (
	"testing"

	"hpcvorx/internal/sim"
)

// TestE13BoundedUnavailabilityExactlyOnce pins the supervision
// experiment's contract: for every detection interval in the sweep,
// the unavailability window stays within detection + restart cost, the
// final stream has zero duplicates and zero losses, and at least one
// checkpoint was committed before the crash.
func TestE13BoundedUnavailabilityExactlyOnce(t *testing.T) {
	for _, h := range []sim.Duration{250 * sim.Microsecond, 1 * sim.Millisecond} {
		m := e13Run(h)
		if m.dups != 0 {
			t.Errorf("H=%v: %d duplicate deliveries, want 0", h, m.dups)
		}
		if m.lost != 0 {
			t.Errorf("H=%v: %d lost messages, want 0", h, m.lost)
		}
		if m.detect <= 0 {
			t.Errorf("H=%v: crash never confirmed", h)
		}
		if m.unavail > m.bound {
			t.Errorf("H=%v: unavailability %v exceeds bound %v", h, m.unavail, m.bound)
		}
		if m.checkpoints == 0 {
			t.Errorf("H=%v: no checkpoints committed", h)
		}
		if m.restoredAt < 0 {
			t.Errorf("H=%v: reader was never restarted from checkpoint", h)
		}
		// Faster detection must not cost correctness; the recovered
		// ratio is governed by the 1 ms checkpoint interval.
		if m.recovered <= 0 || m.recovered > 1 {
			t.Errorf("H=%v: recovered-work ratio %.2f out of (0,1]", h, m.recovered)
		}
	}
}

// TestE13Deterministic: one detection interval, two runs, identical
// metrics — the experiment is seed-stable.
func TestE13Deterministic(t *testing.T) {
	a, b := e13Run(500*sim.Microsecond), e13Run(500*sim.Microsecond)
	if a != b {
		t.Fatalf("two identical E13 runs diverged:\n a=%+v\n b=%+v", a, b)
	}
}
