// Package trace is the unified event-tracing and metrics layer of the
// simulated LAM: the tooling substrate paper §6.2 credits for HPC/VORX
// being operable at all ("the tools are what made the system usable").
// Where oscope sees CPU accounting and the profiler sees program
// phases, trace sees *everything* — every HPC message, S/NET bus
// transfer, channel write/fragment/retransmit, and supervisor
// heartbeat/checkpoint emits span events carrying a trace ID, so one
// message can be followed hop-by-hop through switch clusters, across
// backpressure stalls, and even across a node crash and endpoint
// migration.
//
// Three design rules:
//
//  1. Zero cost when disabled. Every hook is a method on *Tracer that
//     is safe on a nil receiver and returns immediately when tracing
//     is off; a disabled tracer allocates nothing and assigns no trace
//     IDs, so the instrumented system is byte-identical to the
//     uninstrumented one (asserted by test and by vorxbench E14).
//  2. No virtual-time perturbation. Recording is host-side only: no
//     simulated CPU is charged, no events are scheduled. Virtual
//     timestamps, delivery order, and every bench table are identical
//     with tracing on or off.
//  3. Deterministic output. Events carry a global sequence number,
//     exporters iterate in recorded order, and metrics render sorted,
//     so two traced runs with the same seed produce identical files.
//
// Exporters: WriteChrome emits Chrome trace_event JSON (one "process"
// per node, one "thread" per link/channel — load it in chrome://tracing
// or Perfetto); WriteFlight emits a plain-text flight-recorder dump
// that ReadFlight parses back. SetLimit turns the tracer into a
// bounded-memory flight recorder that keeps only the newest events.
package trace

import (
	"fmt"

	"hpcvorx/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds, grouped by subsystem.
const (
	// Channel protocol (internal/channels).
	KWrite      Kind = iota // application write enqueued (span root)
	KFragment               // fragment handed to the fabric
	KChanDel                // message delivered to the application end
	KAck                    // software acknowledgement matched a pending write
	KBusy                   // receiver out of side buffers, fragment discarded
	KResume                 // retransmission requested after a busy
	KRetransmit             // fragment re-sent (resume or timeout or rebind replay)
	KRead                   // application read consumed a message
	KClose                  // channel closed
	// HPC fabric (internal/hpc).
	KEnqueue // message accepted into the sender's output section
	KBlocked // transfer stalled behind a busy/backpressured/failed link
	KAcquire // link arbitration won, transmission starting
	KHop     // transmission completed into the downstream buffer (span)
	KDeliver // message arrived in the destination input section
	// Node interface (internal/netif).
	KService // envelope demultiplexed to a registered service
	// S/NET (internal/snet).
	KBus      // one bus transfer (span)
	KFifoFull // receive FIFO overflowed, fragment retained as junk
	// Sender recovery (internal/flowctl).
	KFlow // strategy-level control: retry, backoff, rts, cts
	// Node kernel (internal/kern).
	KAccount // one CPU accounting interval (span)
	KCrash   // node crashed
	KRestart // node restarted
	// Supervision (internal/super).
	KHeartbeat  // heartbeat emitted by a monitored node
	KCheckpoint // checkpoint snapshot shipped
	KSuper      // supervisor decision (suspect, confirm, spare, rebind, ...)
	// Simulation kernel (internal/sim).
	KProc // proc lifecycle (spawn, done)
	// Profiler (internal/profiler).
	KPhase // one profiled program phase (span)
	// Pipelined fast path (PR 5).
	KWindow // sliding-window credit consumed / advanced
	// Incarnation fencing (PR 6).
	KFence // frame refused by a fence, or a machine self-fencing
	// Channel virtualization (PR 7).
	KMigrate // vchannel placement change: mint, seal, drain, place, refuse
	numKinds
)

var kindNames = [numKinds]string{
	KWrite: "write", KFragment: "fragment", KChanDel: "chan-deliver",
	KAck: "ack", KBusy: "busy", KResume: "resume", KRetransmit: "retransmit",
	KRead: "read", KClose: "close",
	KEnqueue: "enqueue", KBlocked: "blocked", KAcquire: "link-acquire",
	KHop: "hop", KDeliver: "deliver",
	KService: "service",
	KBus:     "bus", KFifoFull: "fifo-full",
	KFlow:    "flow",
	KAccount: "acct", KCrash: "crash", KRestart: "restart",
	KHeartbeat: "heartbeat", KCheckpoint: "checkpoint", KSuper: "super",
	KProc:   "proc",
	KPhase:  "phase",
	KWindow:  "window",
	KFence:   "fence",
	KMigrate: "migrate",
}

var kindCats = [numKinds]string{
	KWrite: "chan", KFragment: "chan", KChanDel: "chan", KAck: "chan",
	KBusy: "chan", KResume: "chan", KRetransmit: "chan", KRead: "chan",
	KClose:   "chan",
	KEnqueue: "hpc", KBlocked: "hpc", KAcquire: "hpc", KHop: "hpc",
	KDeliver: "hpc",
	KService: "netif",
	KBus:     "snet", KFifoFull: "snet",
	KFlow:    "flowctl",
	KAccount: "kern", KCrash: "kern", KRestart: "kern",
	KHeartbeat: "super", KCheckpoint: "super", KSuper: "super",
	KProc:   "sim",
	KPhase:  "prof",
	KWindow:  "chan",
	KFence:   "netif",
	KMigrate: "vchan",
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Category returns the subsystem the kind belongs to ("chan", "hpc",
// "snet", "netif", "flowctl", "kern", "super", "sim", "prof").
func (k Kind) Category() string {
	if int(k) < len(kindCats) {
		return kindCats[k]
	}
	return "?"
}

// KindByName resolves a wire name back to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one recorded occurrence. Dur is zero for instant events and
// positive for spans (the event covers [At, At+Dur)). TID is the trace
// ID threading one message's journey through the stack; 0 means the
// event belongs to no message.
type Event struct {
	Seq    uint64
	At     sim.Time
	Dur    sim.Duration
	Kind   Kind
	TID    uint64
	Node   string // Chrome "process": machine name, "fabric", or "snet"
	Lane   string // Chrome "thread": link, channel, "cpu", "bus", ...
	Detail string
}

// Sink consumes trace events as they are recorded. The Tracer itself
// is a Sink, so components that produce their own event streams (the
// profiler, a replayed recording) can pour them into a live tracer.
type Sink interface {
	TraceEvent(e Event)
}

// Tracer records events and metrics for one simulation. The zero of
// usefulness is built in: a nil *Tracer, or one that is disabled, is a
// valid no-op sink for every hook.
type Tracer struct {
	k       *sim.Kernel
	enabled bool
	reg     *Registry
	forward Sink

	limit   int // >0: ring buffer of this many events
	events  []Event
	start   int // ring read position once wrapped
	wrapped bool
	seq     uint64
	nextTID uint64
	dropped uint64
}

// New creates a disabled tracer bound to the simulation kernel's
// virtual clock. Call Enable to start recording.
func New(k *sim.Kernel) *Tracer {
	t := &Tracer{k: k}
	t.reg = NewRegistry(func() sim.Time {
		if k == nil {
			return 0
		}
		return k.Now()
	})
	return t
}

// Enable starts recording. Safe on nil (no-op).
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled = true
	}
}

// Disable stops recording; already-recorded events are kept.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled = false
	}
}

// Enabled reports whether the tracer is recording. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetLimit bounds memory: only the newest n events are kept (the
// flight-recorder ring). 0 restores unbounded recording. Changing the
// limit drops events already recorded.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.limit = n
	t.events = nil
	t.start = 0
	t.wrapped = false
}

// SetForward installs a secondary sink that receives every recorded
// event as it happens (live consumers like an attached oscilloscope).
func (t *Tracer) SetForward(s Sink) {
	if t != nil {
		t.forward = s
	}
}

// NewTraceID allocates the next message trace ID, or 0 when tracing is
// disabled — callers propagate the 0 and every hook ignores it, which
// is what keeps the disabled path allocation-free.
func (t *Tracer) NewTraceID() uint64 {
	if t == nil || !t.enabled {
		return 0
	}
	t.nextTID++
	return t.nextTID
}

// Emit records an instant event at the current virtual time. Nil-safe,
// no-op when disabled.
func (t *Tracer) Emit(kind Kind, tid uint64, node, lane, detail string) {
	if t == nil || !t.enabled {
		return
	}
	t.record(Event{At: t.k.Now(), Kind: kind, TID: tid, Node: node, Lane: lane, Detail: detail})
}

// EmitSpan records a span event covering [start, now).
func (t *Tracer) EmitSpan(kind Kind, tid uint64, node, lane string, start sim.Time, detail string) {
	if t == nil || !t.enabled {
		return
	}
	now := t.k.Now()
	t.record(Event{At: start, Dur: now.Sub(start), Kind: kind, TID: tid, Node: node, Lane: lane, Detail: detail})
}

// TraceEvent implements Sink: the event is recorded as-is (its At/Dur
// are preserved) with a fresh sequence number.
func (t *Tracer) TraceEvent(e Event) {
	if t == nil || !t.enabled {
		return
	}
	t.record(e)
}

func (t *Tracer) record(e Event) {
	t.seq++
	e.Seq = t.seq
	if t.forward != nil {
		t.forward.TraceEvent(e)
	}
	if t.limit > 0 && len(t.events) == t.limit {
		t.events[t.start] = e
		t.start = (t.start + 1) % t.limit
		t.wrapped = true
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in order (oldest first; under a
// ring limit, the newest retained window).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.events...)
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Len returns the number of retained events. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events the ring limit has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Metrics returns the tracer's registry (nil on a nil tracer).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// ProcEvent implements sim.Probe: proc lifecycle transitions land in
// the event stream under the "sim" process.
func (t *Tracer) ProcEvent(at sim.Time, proc string, what string) {
	if t == nil || !t.enabled {
		return
	}
	t.record(Event{At: at, Kind: KProc, Node: "sim", Lane: "procs", Detail: what + " " + proc})
}

// QueueCompaction implements sim.CompactionProbe: every lazy-cancel
// sweep lands in the metrics registry, so cancel-heavy workloads can
// verify the event queue is actually reclaiming canceled shells.
func (t *Tracer) QueueCompaction(at sim.Time, swept int) {
	if t == nil || !t.enabled {
		return
	}
	t.reg.Counter("sim.queue.compactions").Add(1)
	t.reg.Counter("sim.queue.compacted_events").Add(float64(swept))
}

// Count adds d to the named counter. Nil-safe, no-op when disabled.
func (t *Tracer) Count(name string, d float64) {
	if t == nil || !t.enabled {
		return
	}
	t.reg.Counter(name).Add(d)
}

// GaugeSet sets the named gauge. Nil-safe, no-op when disabled.
func (t *Tracer) GaugeSet(name string, v float64) {
	if t == nil || !t.enabled {
		return
	}
	t.reg.Gauge(name).Set(v)
}

// Observe records v into the named histogram. Nil-safe, no-op when
// disabled.
func (t *Tracer) Observe(name string, v float64) {
	if t == nil || !t.enabled {
		return
	}
	t.reg.Histogram(name).Observe(v)
}
