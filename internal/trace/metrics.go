package trace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"hpcvorx/internal/sim"
)

// Registry holds the metrics of one traced run: counters, gauges, and
// histograms, each stamped with the virtual time of its last update.
// Instrument names are dotted paths ("hpc.link.up5.busy_ns",
// "chan.retransmits") so the rendered table groups naturally.
type Registry struct {
	clock    func() sim.Time
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry. clock supplies the virtual
// timestamp for updates; nil means all timestamps stay zero.
func NewRegistry(clock func() sim.Time) *Registry {
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	return &Registry{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically growing sum.
type Counter struct {
	clock func() sim.Time
	V     float64
	At    sim.Time // virtual time of the last Add
}

// Add increments the counter.
func (c *Counter) Add(d float64) {
	c.V += d
	c.At = c.clock()
}

// Gauge is a sampled level with its observed extremes.
type Gauge struct {
	clock    func() sim.Time
	V        float64
	Min, Max float64
	At       sim.Time
	set      bool
}

// Set records the gauge's current level.
func (g *Gauge) Set(v float64) {
	g.V = v
	if !g.set || v < g.Min {
		g.Min = v
	}
	if !g.set || v > g.Max {
		g.Max = v
	}
	g.set = true
	g.At = g.clock()
}

// DefaultBounds is the bucket layout Observe-created histograms use:
// decades from 1µs to 100ms, in nanoseconds — a fit for the latency
// distributions this simulator produces.
var DefaultBounds = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// Histogram accumulates a value distribution into fixed buckets.
type Histogram struct {
	clock    func() sim.Time
	Bounds   []float64 // bucket i counts v <= Bounds[i]; one overflow bucket
	Buckets  []uint64
	N        uint64
	Sum      float64
	Min, Max float64
	At       sim.Time
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Buckets[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
	h.At = h.clock()
}

// Mean returns the average of all samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket that contains the target rank. The
// first bucket interpolates up from the observed minimum and the
// overflow bucket up to the observed maximum, so estimates never leave
// [Min, Max]. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.N)
	var cum float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := h.Min
			if i > 0 && h.Bounds[i-1] > lo {
				lo = h.Bounds[i-1]
			}
			hi := h.Max
			if i < len(h.Bounds) && h.Bounds[i] < hi {
				hi = h.Bounds[i]
			}
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.Max
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{clock: r.clock}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{clock: r.clock}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Bounds
// apply only on creation; omitted, DefaultBounds is used.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultBounds
		}
		h = &Histogram{
			clock:   r.clock,
			Bounds:  append([]float64(nil), bounds...),
			Buckets: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// EachCounter visits every counter in name order. The sorted walk is
// what exporters (OpenMetrics, CSV) build on: same registry, same
// bytes.
func (r *Registry) EachCounter(fn func(name string, c *Counter)) {
	for _, n := range sortedKeys(r.counters) {
		fn(n, r.counters[n])
	}
}

// EachGauge visits every gauge in name order.
func (r *Registry) EachGauge(fn func(name string, g *Gauge)) {
	for _, n := range sortedKeys(r.gauges) {
		fn(n, r.gauges[n])
	}
}

// EachHistogram visits every histogram in name order.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	for _, n := range sortedKeys(r.hists) {
		fn(n, r.hists[n])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snap is a point-in-time flattening of every instrument: counters and
// gauges by name, histograms as name.count and name.sum.
type Snap map[string]float64

// Snapshot flattens the registry's current values.
func (r *Registry) Snapshot() Snap {
	s := make(Snap, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for n, c := range r.counters {
		s[n] = c.V
	}
	for n, g := range r.gauges {
		s[n] = g.V
	}
	for n, h := range r.hists {
		s[n+".count"] = float64(h.N)
		s[n+".sum"] = h.Sum
	}
	return s
}

// Diff returns this snapshot minus an earlier one: the activity in the
// interval between them. Keys present in either side appear; zero
// deltas are dropped.
func (s Snap) Diff(prev Snap) Snap {
	out := make(Snap)
	for k, v := range s {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range prev {
		if _, ok := s[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	return out
}

// Names returns the snapshot's keys sorted.
func (s Snap) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// WriteTable renders every instrument, sorted by name within section,
// with virtual-time stamps of the last update. Deterministic.
func (r *Registry) WriteTable(w io.Writer) {
	if len(r.counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		names := make([]string, 0, len(r.counters))
		for n := range r.counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			c := r.counters[n]
			fmt.Fprintf(w, "  %-44s %14s  (last %s)\n", n, fmtVal(c.V), c.At)
		}
	}
	if len(r.gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		names := make([]string, 0, len(r.gauges))
		for n := range r.gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			g := r.gauges[n]
			fmt.Fprintf(w, "  %-44s %14s  min %s max %s  (last %s)\n",
				n, fmtVal(g.V), fmtVal(g.Min), fmtVal(g.Max), g.At)
		}
	}
	if len(r.hists) > 0 {
		fmt.Fprintf(w, "histograms:\n")
		names := make([]string, 0, len(r.hists))
		for n := range r.hists {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := r.hists[n]
			fmt.Fprintf(w, "  %-44s n=%d mean=%s min=%s max=%s\n",
				n, h.N, fmtVal(h.Mean()), fmtVal(h.Min), fmtVal(h.Max))
		}
	}
}
