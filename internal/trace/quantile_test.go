package trace

import (
	"math"
	"testing"
)

func newHist(bounds ...float64) *Histogram {
	return NewRegistry(nil).Histogram("h", bounds...)
}

func TestQuantileEmptyAndExtremes(t *testing.T) {
	h := newHist(10, 20, 30)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	h.Observe(5)
	h.Observe(15)
	h.Observe(25)
	h.Observe(35)
	if h.Quantile(0) != 5 || h.Quantile(-1) != 5 {
		t.Fatalf("q<=0 must clamp to Min, got %v", h.Quantile(0))
	}
	if h.Quantile(1) != 35 || h.Quantile(2) != 35 {
		t.Fatalf("q>=1 must clamp to Max, got %v", h.Quantile(1))
	}
}

func TestQuantileInterpolatesWithinBuckets(t *testing.T) {
	h := newHist(10, 20, 30)
	for _, v := range []float64{5, 15, 25, 35} {
		h.Observe(v)
	}
	// rank 2 of 4 lands exactly at the top of bucket (10,20].
	if got := h.Quantile(0.5); got != 20 {
		t.Fatalf("p50 = %v, want 20", got)
	}
	// rank 1 of 4: top of the first bucket, which interpolates up
	// from the observed minimum (5), not from 0.
	if got := h.Quantile(0.25); got != 10 {
		t.Fatalf("p25 = %v, want 10", got)
	}
	// rank 0.5 of 4: halfway into the first bucket: 5 + (10-5)*0.5.
	if got := h.Quantile(0.125); got != 7.5 {
		t.Fatalf("p12.5 = %v, want 7.5", got)
	}
	// Deep tail lands in the overflow bucket, which interpolates up
	// to the observed maximum: 30 + (35-30)*(3.996-3)/1.
	if got, want := h.Quantile(0.999), 30+5*0.996; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p99.9 = %v, want %v", got, want)
	}
}

func TestQuantileDegenerateDistributions(t *testing.T) {
	// All samples identical: every quantile is that value.
	h := newHist(10, 20)
	for i := 0; i < 5; i++ {
		h.Observe(15)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 0.999} {
		if got := h.Quantile(q); got != 15 {
			t.Fatalf("constant distribution: q%.3f = %v, want 15", q, got)
		}
	}
	// Single sample above every bound.
	h2 := newHist(10)
	h2.Observe(100)
	if got := h2.Quantile(0.5); got < 10 || got > 100 {
		t.Fatalf("overflow-only p50 = %v, outside [10,100]", got)
	}
}

func TestQuantileMonotonicInQ(t *testing.T) {
	h := newHist(DefaultBounds...)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 997)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic: q=%.2f gives %v after %v", q, v, prev)
		}
		if v < h.Min || v > h.Max {
			t.Fatalf("q=%.2f gives %v outside [%v,%v]", q, v, h.Min, h.Max)
		}
		prev = v
	}
	// Sanity: p50 of a uniform 997..997000 spread sits mid-range
	// (bucket interpolation, so approximately).
	p50 := h.Quantile(0.5)
	if p50 < 300e3 || p50 > 700e3 {
		t.Fatalf("uniform p50 = %v, expected mid-range", p50)
	}
}
