package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hpcvorx/internal/sim"
)

// The flight-recorder dump is a line-oriented text format, one event
// per line after a version header:
//
//	vorx-trace 1 <event count>
//	<seq> <at-ns> <dur-ns> <kind> <tid> <node> <lane> [detail...]
//
// Node and lane are written with spaces escaped as underscores are NOT
// assumed — instead "-" substitutes for an empty field and detail,
// which may contain spaces, is always last. The format doubles as the
// oscope trace-file v2 payload (see internal/oscope/traceio.go).

// FormatEventLine renders one event as a flight-recorder line.
func FormatEventLine(e Event) string {
	node, lane, detail := e.Node, e.Lane, e.Detail
	if node == "" {
		node = "-"
	}
	if lane == "" {
		lane = "-"
	}
	s := fmt.Sprintf("%d %d %d %s %d %s %s", e.Seq, int64(e.At), int64(e.Dur), e.Kind, e.TID, node, lane)
	if detail != "" {
		s += " " + detail
	}
	return s
}

// ParseEventLine parses a line produced by FormatEventLine.
func ParseEventLine(line string) (Event, error) {
	var e Event
	fields := strings.SplitN(line, " ", 8)
	if len(fields) < 7 {
		return e, fmt.Errorf("trace: short event line %q", line)
	}
	seq, err1 := strconv.ParseUint(fields[0], 10, 64)
	at, err2 := strconv.ParseInt(fields[1], 10, 64)
	dur, err3 := strconv.ParseInt(fields[2], 10, 64)
	kind, ok := KindByName(fields[3])
	tid, err4 := strconv.ParseUint(fields[4], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || !ok {
		return e, fmt.Errorf("trace: bad event line %q", line)
	}
	e.Seq = seq
	e.At = sim.Time(at)
	e.Dur = sim.Duration(dur)
	e.Kind = kind
	e.TID = tid
	if fields[5] != "-" {
		e.Node = fields[5]
	}
	if fields[6] != "-" {
		e.Lane = fields[6]
	}
	if len(fields) == 8 {
		e.Detail = fields[7]
	}
	return e, nil
}

// WriteFlight dumps the recorded events as a flight-recorder text file.
func (t *Tracer) WriteFlight(w io.Writer) error {
	events := t.Events()
	ew := &errWriter{w: w}
	ew.printf("vorx-trace 1 %d\n", len(events))
	for _, e := range events {
		ew.printf("%s\n", FormatEventLine(e))
	}
	return ew.err
}

// ReadFlight parses a flight-recorder dump back into events.
func ReadFlight(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty flight file")
	}
	var version, count int
	if _, err := fmt.Sscanf(sc.Text(), "vorx-trace %d %d", &version, &count); err != nil {
		return nil, fmt.Errorf("trace: bad flight header %q", sc.Text())
	}
	if version != 1 {
		return nil, fmt.Errorf("trace: unsupported flight version %d", version)
	}
	events := make([]Event, 0, count)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseEventLine(line)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(events) != count {
		return nil, fmt.Errorf("trace: flight file has %d events, header says %d", len(events), count)
	}
	return events, nil
}
