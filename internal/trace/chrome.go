package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteChrome emits the recorded events as Chrome trace_event JSON
// (the format chrome://tracing and ui.perfetto.dev load). Mapping:
// each distinct Event.Node becomes a trace "process" and each distinct
// (Node, Lane) a "thread", so the viewer shows one row per link,
// channel, or CPU grouped under its machine. Span events (Dur > 0)
// render as ph "X" complete slices; instants as ph "i". Events that
// carry a trace ID additionally participate in an async flow: KWrite
// opens a ph "b" span named msg<tid> and KAck closes it with ph "e",
// so selecting the flow highlights the message's whole journey.
//
// Output is deterministic: pids/tids are assigned in first-appearance
// order and events are written in recorded order.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()

	type laneKey struct{ node, lane string }
	pids := map[string]int{}
	var pidOrder []string
	tids := map[laneKey]int{}
	var tidOrder []laneKey
	for _, e := range events {
		if _, ok := pids[e.Node]; !ok {
			pids[e.Node] = len(pids) + 1
			pidOrder = append(pidOrder, e.Node)
		}
		k := laneKey{e.Node, e.Lane}
		if _, ok := tids[k]; !ok {
			tids[k] = len(tids) + 1
			tidOrder = append(tidOrder, k)
		}
	}

	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.printf(",")
		}
		first = false
		bw.printf("\n"+format, args...)
	}

	for _, n := range pidOrder {
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pids[n], jstr(n))
	}
	for _, k := range tidOrder {
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pids[k.node], tids[k], jstr(k.lane))
	}

	for _, e := range events {
		pid := pids[e.Node]
		tid := tids[laneKey{e.Node, e.Lane}]
		ts := float64(e.At) / 1e3 // ns → µs
		name := e.Kind.String()
		if e.Detail != "" {
			name = name + " " + e.Detail
		}
		args := fmt.Sprintf(`{"seq":%d`, e.Seq)
		if e.TID != 0 {
			args += fmt.Sprintf(`,"trace_id":%d`, e.TID)
		}
		args += "}"
		if e.Dur > 0 {
			emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"cat":%s,"name":%s,"args":%s}`,
				pid, tid, ts, float64(e.Dur)/1e3, jstr(e.Kind.Category()), jstr(name), args)
		} else {
			emit(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f,"cat":%s,"name":%s,"args":%s}`,
				pid, tid, ts, jstr(e.Kind.Category()), jstr(name), args)
		}
		if e.TID != 0 {
			switch e.Kind {
			case KWrite:
				emit(`{"ph":"b","id":%d,"pid":%d,"tid":%d,"ts":%.3f,"cat":"msg","name":%s,"args":%s}`,
					e.TID, pid, tid, ts, jstr(fmt.Sprintf("msg%d", e.TID)), args)
			case KAck:
				emit(`{"ph":"e","id":%d,"pid":%d,"tid":%d,"ts":%.3f,"cat":"msg","name":%s,"args":%s}`,
					e.TID, pid, tid, ts, jstr(fmt.Sprintf("msg%d", e.TID)), args)
			}
		}
	}
	bw.printf("\n]}\n")
	return bw.err
}

func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
