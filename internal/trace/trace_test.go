package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hpcvorx/internal/sim"
)

func TestNilAndDisabledTracerAreNoOps(t *testing.T) {
	var nilT *Tracer
	nilT.Enable()
	nilT.Emit(KWrite, 1, "m0", "chan/x", "w")
	nilT.EmitSpan(KHop, 1, "fabric", "up0", 0, "")
	nilT.Count("c", 1)
	nilT.GaugeSet("g", 1)
	nilT.Observe("h", 1)
	nilT.ProcEvent(0, "p", "spawn")
	if nilT.NewTraceID() != 0 || nilT.Len() != 0 || nilT.Enabled() {
		t.Fatal("nil tracer must be inert")
	}

	k := sim.NewKernel(1)
	tr := New(k)
	tr.Emit(KWrite, 1, "m0", "chan/x", "w")
	tr.Count("c", 1)
	if tr.NewTraceID() != 0 {
		t.Fatal("disabled tracer must not allocate trace IDs")
	}
	if tr.Len() != 0 || len(tr.Metrics().Snapshot()) != 0 {
		t.Fatal("disabled tracer must record nothing")
	}
}

func TestEmitAndSpanCarryVirtualTime(t *testing.T) {
	k := sim.NewKernel(1)
	tr := New(k)
	tr.Enable()
	start := k.Now()
	k.After(5*sim.Microsecond, func() {
		tr.EmitSpan(KHop, 7, "fabric", "up0", start, "m0->m1")
		tr.Emit(KDeliver, 7, "m1", "in", "")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != 0 || evs[0].Dur != 5*sim.Microsecond || evs[0].Kind != KHop {
		t.Fatalf("span = %+v", evs[0])
	}
	if evs[1].At != sim.Time(5*sim.Microsecond) || evs[1].Dur != 0 {
		t.Fatalf("instant = %+v", evs[1])
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatal("seq not monotonic")
	}
}

func TestRingLimitKeepsNewest(t *testing.T) {
	tr := New(sim.NewKernel(1))
	tr.Enable()
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.Emit(KFlow, 0, "n", "l", strings.Repeat("x", i))
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d", len(evs))
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	// Newest three, in order, with original sequence numbers.
	if evs[0].Seq != 8 || evs[1].Seq != 9 || evs[2].Seq != 10 {
		t.Fatalf("seqs = %d %d %d", evs[0].Seq, evs[1].Seq, evs[2].Seq)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if strings.Contains(name, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("round trip %q: %v %v", name, got, ok)
		}
		if k.Category() == "?" {
			t.Fatalf("kind %s has no category", name)
		}
	}
}

func TestMetricsRegistry(t *testing.T) {
	k := sim.NewKernel(1)
	tr := New(k)
	tr.Enable()
	tr.Count("a.count", 2)
	tr.Count("a.count", 3)
	tr.GaugeSet("b.level", 4)
	tr.GaugeSet("b.level", 1)
	tr.Observe("c.lat", 2000)
	tr.Observe("c.lat", 4000)

	reg := tr.Metrics()
	if v := reg.Counter("a.count").V; v != 5 {
		t.Fatalf("counter = %v", v)
	}
	g := reg.Gauge("b.level")
	if g.V != 1 || g.Min != 1 || g.Max != 4 {
		t.Fatalf("gauge = %+v", g)
	}
	h := reg.Histogram("c.lat")
	if h.N != 2 || h.Mean() != 3000 || h.Min != 2000 || h.Max != 4000 {
		t.Fatalf("hist = %+v", h)
	}

	snap := reg.Snapshot()
	tr.Count("a.count", 10)
	diff := reg.Snapshot().Diff(snap)
	if len(diff) != 1 || diff["a.count"] != 10 {
		t.Fatalf("diff = %v", diff)
	}

	var b bytes.Buffer
	reg.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"a.count", "b.level", "c.lat", "counters:", "gauges:", "histograms:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var b2 bytes.Buffer
	reg.WriteTable(&b2)
	if b.String() != b2.String() {
		t.Fatal("table render not deterministic")
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	k := sim.NewKernel(1)
	tr := New(k)
	tr.Enable()
	tid := tr.NewTraceID()
	tr.Emit(KWrite, tid, "m0", "chan/x", "128B")
	k.After(3*sim.Microsecond, func() {
		tr.EmitSpan(KHop, tid, "fabric", "up0", 0, `m0->"m1"`)
		tr.Emit(KAck, tid, "m0", "chan/x", "")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		phases = append(phases, e["ph"].(string))
	}
	joined := strings.Join(phases, "")
	for _, want := range []string{"M", "X", "i", "b", "e"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing phase %q in %v", want, phases)
		}
	}
}

func TestFlightRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	tr := New(k)
	tr.Enable()
	tid := tr.NewTraceID()
	tr.Emit(KWrite, tid, "m0", "chan/x", "size=128 detail with spaces")
	tr.Emit(KProc, 0, "", "", "")
	k.After(sim.Microsecond, func() {
		tr.EmitSpan(KBus, 0, "snet", "bus", 0, "h0->h1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := tr.WriteFlight(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlight(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("len = %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], want[i])
		}
	}

	if _, err := ReadFlight(strings.NewReader("")); err == nil {
		t.Fatal("empty file must fail")
	}
	if _, err := ReadFlight(strings.NewReader("vorx-trace 9 0\n")); err == nil {
		t.Fatal("future version must fail")
	}
	if _, err := ReadFlight(strings.NewReader("vorx-trace 1 1\n1 0 0 nope 0 - -\n")); err == nil {
		t.Fatal("bad kind must fail")
	}
}

func TestForwardSinkSeesEvents(t *testing.T) {
	k := sim.NewKernel(1)
	tr := New(k)
	tr.Enable()
	var got []Event
	tr.SetForward(sinkFunc(func(e Event) { got = append(got, e) }))
	tr.Emit(KSuper, 0, "host0", "super", "confirm n3")
	if len(got) != 1 || got[0].Kind != KSuper {
		t.Fatalf("forwarded = %+v", got)
	}
}

type sinkFunc func(Event)

func (f sinkFunc) TraceEvent(e Event) { f(e) }

func TestProbeIntegration(t *testing.T) {
	k := sim.NewKernel(1)
	tr := New(k)
	tr.Enable()
	k.SetProbe(tr)
	k.Spawn("worker", func(p *sim.Proc) { p.Sleep(sim.Microsecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Detail != "spawn worker" || evs[1].Detail != "done worker" {
		t.Fatalf("proc events = %+v", evs)
	}
}
