package trace_test

// End-to-end guarantees of the unified tracer, tested on the full
// stack: (1) enabling tracing does not perturb the simulation at all,
// (2) traced runs are deterministic — two same-seed runs emit
// byte-identical trace files, (3) one channel write is followable by
// its trace ID from Write through fragments, hops, delivery, and ack,
// across a node crash and endpoint migration.

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
	"hpcvorx/internal/trace"
)

// healState is the Checkpointer for the supervised pipe tasks.
type healState struct {
	read    int
	written int
	log     []string
}

func (hs *healState) Checkpoint() ([]byte, map[string]super.Mark) {
	return []byte(fmt.Sprintf("%d|%d|%s", hs.read, hs.written, strings.Join(hs.log, ","))),
		map[string]super.Mark{"pipe": {Read: hs.read, Written: hs.written}}
}

func restoreHealState(b []byte) *healState {
	hs := &healState{}
	if len(b) == 0 {
		return hs
	}
	parts := strings.SplitN(string(b), "|", 3)
	hs.read, _ = strconv.Atoi(parts[0])
	hs.written, _ = strconv.Atoi(parts[1])
	if parts[2] != "" {
		hs.log = strings.Split(parts[2], ",")
	}
	return hs
}

// runHeal drives the full heal pipeline — a supervised writer on node0
// streams n messages to a supervised reader on node1, the reader node
// crashes mid-stream, the supervisor restarts it from checkpoint on a
// spare and rebinds the channel — with tracing on or off. It returns
// the system and the reader's final log.
func runHeal(t *testing.T, traced bool, n int) (*core.System, *super.Supervisor, []string) {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if traced {
		sys.Trace.Enable()
	}
	res := resmgr.NewVORX(sys.K, len(sys.Nodes()))
	if _, err := res.Allocate("app", 2); err != nil {
		t.Fatal(err)
	}
	cfg := super.Config{
		HeartbeatEvery:  500 * sim.Microsecond,
		SuspectAfter:    1 * sim.Millisecond,
		ConfirmAfter:    2 * sim.Millisecond,
		CheckpointEvery: 1 * sim.Millisecond,
		RestartDelay:    500 * sim.Microsecond,
	}
	sup := super.New(sys, sys.Host(0), res, cfg)

	eng := fault.New(sys.K, 7)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false)
	eng.CrashNodeAt(2*sim.Millisecond, 1) // the reader's node

	var final []string
	writer := sup.NewTask("writer", sys.Node(0), 0, nil)
	reader := sup.NewTask("reader", sys.Node(1), 0, nil)
	writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		hs := restoreHealState(inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			writer.Attach(ch)
		}
		writer.SetCheckpointer(hs)
		for hs.written < n {
			if err := ch.Write(sp, 128, fmt.Sprintf("m%d", hs.written)); err != nil {
				return
			}
			hs.written++
			sp.SleepFor(300 * sim.Microsecond)
		}
	})
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		hs := restoreHealState(inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			reader.Attach(ch)
		}
		reader.SetCheckpointer(hs)
		for hs.read < n {
			m, ok := ch.Read(sp)
			if !ok {
				return
			}
			hs.log = append(hs.log, m.Payload.(string))
			hs.read++
		}
		final = hs.log
	})
	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(60 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(final) != n {
		t.Fatalf("reader finished with %d/%d messages", len(final), n)
	}
	return sys, sup, final
}

// TestTracingDoesNotPerturbSimulation: the same seed with tracing on
// and off must quiesce at the same virtual instant with identical
// application-visible behaviour.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	off, offSup, offLog := runHeal(t, false, 20)
	on, onSup, onLog := runHeal(t, true, 20)
	if off.K.Now() != on.K.Now() {
		t.Fatalf("quiesce differs: off %v, on %v", off.K.Now(), on.K.Now())
	}
	if strings.Join(offLog, ",") != strings.Join(onLog, ",") {
		t.Fatalf("reader logs differ:\noff %v\non  %v", offLog, onLog)
	}
	offStats, onStats := off.IC.Stats(), on.IC.Stats()
	if offStats != onStats {
		t.Fatalf("interconnect stats differ:\noff %+v\non  %+v", offStats, onStats)
	}
	if offSup.Heartbeats != onSup.Heartbeats || offSup.Checkpoints != onSup.Checkpoints ||
		offSup.Restarts != onSup.Restarts || offSup.Rebinds != onSup.Rebinds {
		t.Fatalf("supervisor counters differ: off %d/%d/%d/%d, on %d/%d/%d/%d",
			offSup.Heartbeats, offSup.Checkpoints, offSup.Restarts, offSup.Rebinds,
			onSup.Heartbeats, onSup.Checkpoints, onSup.Restarts, onSup.Rebinds)
	}
	if off.Trace.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d events", off.Trace.Len())
	}
	if on.Trace.Len() == 0 {
		t.Fatal("enabled tracer recorded nothing")
	}
}

// TestTracedRunsEmitIdenticalFiles: two traced same-seed runs produce
// byte-identical Chrome and flight-recorder dumps.
func TestTracedRunsEmitIdenticalFiles(t *testing.T) {
	a, _, _ := runHeal(t, true, 20)
	b, _, _ := runHeal(t, true, 20)
	var ca, cb, fa, fb bytes.Buffer
	if err := a.Trace.WriteChrome(&ca); err != nil {
		t.Fatal(err)
	}
	if err := b.Trace.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("Chrome exports differ between same-seed runs")
	}
	if err := a.Trace.WriteFlight(&fa); err != nil {
		t.Fatal(err)
	}
	if err := b.Trace.WriteFlight(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa.Bytes(), fb.Bytes()) {
		t.Fatal("flight exports differ between same-seed runs")
	}
}

// TestWriteFollowableAcrossCrashAndMigration: trace IDs thread one
// causal chain through every wire message a channel write produces.
// At least one write must be followable write → fragment → hop →
// deliver → ack, and at least one retransmitted write must complete
// on the migrated endpoint — its delivery lands after the crash on a
// node other than the one that died.
func TestWriteFollowableAcrossCrashAndMigration(t *testing.T) {
	sys, _, _ := runHeal(t, true, 20)
	events := sys.Trace.Events()

	var crashAt sim.Time
	for _, e := range events {
		if e.Kind == trace.KCrash && e.Node == "node1" {
			crashAt = e.At
			break
		}
	}
	if crashAt == 0 {
		t.Fatal("no crash event for node1")
	}

	byTID := map[uint64]map[trace.Kind][]trace.Event{}
	for _, e := range events {
		if e.TID == 0 {
			continue
		}
		m := byTID[e.TID]
		if m == nil {
			m = map[trace.Kind][]trace.Event{}
			byTID[e.TID] = m
		}
		m[e.Kind] = append(m[e.Kind], e)
	}

	full := 0     // writes followable end to end
	migrated := 0 // retransmitted writes delivered on the spare after the crash
	for _, kinds := range byTID {
		if len(kinds[trace.KWrite]) == 0 {
			continue
		}
		complete := len(kinds[trace.KFragment]) > 0 && len(kinds[trace.KHop]) > 0 &&
			len(kinds[trace.KChanDel]) > 0 && len(kinds[trace.KAck]) > 0
		if complete {
			full++
		}
		if complete && len(kinds[trace.KRetransmit]) > 0 {
			for _, d := range kinds[trace.KChanDel] {
				if d.At > crashAt && d.Node != "node1" {
					migrated++
					break
				}
			}
		}
	}
	if full == 0 {
		t.Fatal("no write followable write -> fragment -> hop -> deliver -> ack by one trace ID")
	}
	if migrated == 0 {
		t.Fatal("no retransmitted write followable across the crash onto the migrated endpoint")
	}
}
