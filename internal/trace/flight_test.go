package trace

// Flight-recorder edge cases: dumps written from a wrapped ring, and
// damaged files. The live-vs-replay analyzer equivalence rides in
// internal/obs (which owns the analyzer).

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hpcvorx/internal/sim"
)

func TestFlightFromWrappedRing(t *testing.T) {
	tr := New(sim.NewKernel(1))
	tr.Enable()
	tr.SetLimit(4)
	for i := 0; i < 10; i++ {
		tr.Emit(KFlow, uint64(i+1), "n", "l", fmt.Sprintf("m%d", i))
	}
	var b bytes.Buffer
	if err := tr.WriteFlight(&b); err != nil {
		t.Fatal(err)
	}
	// The header must count what survived the ring, not what was
	// emitted, and the retained events must come back in emit order
	// with their original sequence numbers.
	if !strings.HasPrefix(b.String(), "vorx-trace 1 4\n") {
		t.Fatalf("header = %q", strings.SplitN(b.String(), "\n", 2)[0])
	}
	evs, err := ReadFlight(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("read %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if evs[0].TID != 7 || evs[3].Detail != "m9" {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
}

func TestFlightTruncatedFileFails(t *testing.T) {
	tr := New(sim.NewKernel(1))
	tr.Enable()
	for i := 0; i < 5; i++ {
		tr.Emit(KFlow, 0, "n", "l", "x")
	}
	var b bytes.Buffer
	if err := tr.WriteFlight(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-2], "\n") + "\n"
	_, err := ReadFlight(strings.NewReader(truncated))
	if err == nil || !strings.Contains(err.Error(), "header says") {
		t.Fatalf("truncated dump must fail the count check, got %v", err)
	}

	// A line cut mid-field is a parse error, not a silent skip.
	cut := b.String()[:len(b.String())-assumeTailLen(lines)]
	if _, err := ReadFlight(strings.NewReader(cut)); err == nil {
		t.Fatal("mid-line truncation must fail")
	}
}

// assumeTailLen chops the last line roughly in half so the final
// event line is cut mid-field.
func assumeTailLen(lines []string) int {
	last := lines[len(lines)-1]
	return len(last)/2 + 1
}
